// Thermal feasibility: how many layers of the 16-core processor can be
// stacked under conventional air cooling before the hotspot passes 100 °C
// (the paper's Sec. 4.1 argument for studying 2-8 layer systems).
package main

import (
	"fmt"
	"log"

	"voltstack/internal/floorplan"
	"voltstack/internal/power"
	"voltstack/internal/thermal"
	"voltstack/internal/viz"
)

func main() {
	chip := power.Example16Core()
	die := chip.Die()

	// Rasterize the fully active chip's power map onto the thermal mesh.
	fp, err := chip.Floorplan()
	if err != nil {
		log.Fatal(err)
	}
	acts := make([]float64, chip.NumCores())
	for i := range acts {
		acts[i] = 1
	}
	pm, err := chip.PowerMap(acts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := thermal.DefaultConfig(die, 1)
	raster := floorplan.NewRaster(die, cfg.Nx, cfg.Ny)
	cells, err := raster.Distribute(fp.Blocks, pm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("16-core layer: %.1f W peak, %.2f mm² die, air cooling (%.2f K/W sink)\n",
		chip.PeakPower(), chip.Area()*1e6, cfg.SinkR)
	fmt.Println()
	fmt.Println("layers  hotspot  sink base  verdict")
	for layers := 1; layers <= 10; layers++ {
		c := cfg
		c.Layers = layers
		maps := make([][]float64, layers)
		for i := range maps {
			maps[i] = cells
		}
		r, err := thermal.Solve(c, maps)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK"
		if r.MaxC >= 100 {
			verdict = "exceeds 100 C"
		}
		fmt.Printf("%6d %7.1fC %9.1fC  %s\n", layers, r.MaxC, r.SinkC, verdict)
	}

	n, err := thermal.MaxLayersUnder(cfg, cells, 100, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax stack depth under 100 C with air cooling: %d layers (paper: 8)\n", n)

	// Temperature map of the critical (bottom) layer at 8 layers.
	c8 := cfg
	c8.Layers = 8
	maps := make([][]float64, 8)
	for i := range maps {
		maps[i] = cells
	}
	r8, err := thermal.Solve(c8, maps)
	if err != nil {
		log.Fatal(err)
	}
	lo, mean, hi := viz.Stats(r8.TempsC[0])
	fmt.Printf("\nbottom-layer temperature map at 8 layers (min %.1fC, mean %.1fC, max %.1fC):\n", lo, mean, hi)
	fmt.Print(viz.Heatmap(r8.TempsC[0], c8.Nx, c8.Ny, viz.Options{FlipY: true, ShowScale: true}))
}
