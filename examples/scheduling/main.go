// Scheduling: the paper's closing observation is that placing instances of
// the same application in the same core stack reduces workload imbalance
// and therefore V-S noise. This example schedules a mixed batch of Parsec
// jobs onto an 8-layer voltage-stacked processor under three policies and
// solves the PDN for each — including the cautionary "layer-banded" policy
// whose coherent vertical gradient is far worse than random placement.
package main

import (
	"fmt"
	"log"

	"voltstack/internal/core"
	"voltstack/internal/pdngrid"
	"voltstack/internal/sched"
)

func main() {
	study := core.NewStudy().Coarse()
	layers := 8
	cores := study.Chip.NumCores()

	// One job per (layer, core) slot, drawn from the Parsec populations.
	jobs := sched.JobsFromSuite(study.Workloads(), layers*cores, 1)

	policies := []struct {
		name  string
		build func() (*sched.Assignment, error)
	}{
		{"random", func() (*sched.Assignment, error) { return sched.Random(jobs, layers, cores, 2) }},
		{"stack-aware", func() (*sched.Assignment, error) { return sched.StackAware(jobs, layers, cores) }},
		{"layer-banded", func() (*sched.Assignment, error) { return sched.LayerBanded(jobs, layers, cores) }},
	}

	pdn, err := study.VoltageStackedPDN(layers, 2, pdngrid.FewTSV(), 0.5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8-layer V-S processor, lean 2-converter/core allocation, mixed Parsec batch")
	fmt.Println()
	fmt.Println("policy         mean adj-layer imbalance   max IR drop   worst converter")
	for _, pol := range policies {
		a, err := pol.build()
		if err != nil {
			log.Fatal(err)
		}
		r, err := pdn.Solve(a.Activities())
		if err != nil {
			log.Fatal(err)
		}
		status := ""
		if r.OverLimit {
			status = "  <- exceeds the 100 mA rating"
		}
		fmt.Printf("%-14s %23.0f%% %12.2f%% %12.1f mA%s\n",
			pol.name, 100*a.MeanStackImbalance(), 100*r.MaxIRDropFrac,
			1000*r.MaxConverterCurrent, status)
	}
	fmt.Println()
	fmt.Println("Grouping similar jobs per vertical stack (stack-aware) minimizes converter")
	fmt.Println("stress; sorting jobs into layers (layer-banded) creates a coherent vertical")
	fmt.Println("gradient whose same-sign mismatches accumulate across the stack — the one")
	fmt.Println("workload shape a voltage stack cannot tolerate.")
}
