// Noise sweep: the voltage-stacked PDN's central design tradeoff (the
// paper's Fig. 6 and Fig. 8). Sweeps workload imbalance for several
// converter allocations and reports both the on-chip IR drop and the
// system power efficiency, marking operating points where a converter
// would exceed its 100 mA rating.
package main

import (
	"fmt"
	"log"

	"voltstack/internal/core"
)

func main() {
	study := core.NewStudy().Coarse()

	imbalances := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	fmt.Println("8-layer voltage-stacked PDN under the interleaved high/low pattern")
	fmt.Println()
	fmt.Println("conv/core  imbalance  max IR drop  efficiency  worst converter")
	for _, n := range []int{2, 4, 8} {
		pts, err := study.VSSweep(n, imbalances)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pts {
			status := fmt.Sprintf("%5.1f mA", p.MaxConvMA)
			if p.OverLimit {
				status += "  OVER LIMIT (dropped in Fig. 6)"
			}
			fmt.Printf("%9d %9.0f%% %11.2f%% %10.1f%%  %s\n",
				n, 100*p.Imbalance, p.MaxIRPct, 100*p.Efficiency, status)
		}
		fmt.Println()
	}
	fmt.Println("More converters per core cut the noise (shorter load-to-regulator")
	fmt.Println("distance, smaller per-converter current) but cost efficiency, since")
	fmt.Println("every open-loop converter burns a fixed switching loss.")
}
