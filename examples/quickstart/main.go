// Quickstart: build the paper's 8-layer, 16-core 3D processor with a
// charge-recycled voltage-stacked PDN, run it at the application-average
// 65% workload imbalance, and compare it against the equal-area regular
// PDN — the core result of the paper in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
)

func main() {
	chip := power.Example16Core() // 16 ARM-class cores, 7.6 W, 44.12 mm²
	params := pdngrid.DefaultParams()
	params.GridNx, params.GridNy = 16, 16 // coarse mesh: runs in ~1 s

	converter := sc.Default28nm() // the paper's 2:1 push-pull SC cell
	converter.Cap = sc.Trench     // high-density capacitors: 3% of a core each

	// Voltage-stacked PDN: 8 layers in series, fed at 8 V, with 8
	// converters per core regulating every intermediate rail.
	vs, err := pdngrid.New(pdngrid.Config{
		Kind:              pdngrid.VoltageStacked,
		Layers:            8,
		Chip:              chip,
		Params:            params,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 8,
		Converter:         converter,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The equal-area alternative: a regular PDN spending the same silicon
	// on a dense TSV array instead of converters.
	reg, err := pdngrid.New(pdngrid.Config{
		Kind:             pdngrid.Regular,
		Layers:           8,
		Chip:             chip,
		Params:           params,
		TSV:              pdngrid.DenseTSV(),
		PadPowerFraction: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Workload: interleaved high/low layers at the 65% average imbalance
	// the paper extracts from Parsec.
	const imbalance = 0.65
	rv, err := vs.Solve(pdngrid.InterleavedActivities(8, chip.NumCores(), imbalance))
	if err != nil {
		log.Fatal(err)
	}
	rr, err := reg.Solve(pdngrid.UniformActivities(8, chip.NumCores(), 1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8-layer 3D processor, 65% workload imbalance")
	fmt.Printf("  V-S PDN:     max IR drop %.2f%% Vdd, efficiency %.1f%%, off-chip draw %.1f W at %d V\n",
		100*rv.MaxIRDropFrac, 100*rv.Efficiency, rv.InputPower, 8)
	fmt.Printf("  regular PDN: max IR drop %.2f%% Vdd (worst case), off-chip draw %.1f W at 1 V\n",
		100*rr.MaxIRDropFrac, rr.InputPower)
	fmt.Printf("  charge recycling cuts off-chip current from %.1f A to %.1f A\n",
		rr.InputPower/1.0, rv.InputPower/8.0)
	fmt.Printf("  worst converter carries %.1f mA of the %.0f mA rating\n",
		1000*rv.MaxConverterCurrent, 1000*converter.MaxLoad)
}
