// EM lifetime scaling: how stacking more layers wears out the power
// delivery conductors (the paper's Fig. 5). Builds regular and
// voltage-stacked PDNs from 2 to 8 layers, extracts per-pad and per-TSV
// currents from the grid solve, and runs the Black's-equation weakest-link
// lifetime model on each array.
package main

import (
	"fmt"
	"log"

	"voltstack/internal/core"
	"voltstack/internal/pdngrid"
)

func main() {
	study := core.NewStudy().Coarse()

	fmt.Println("Expected EM-damage-free lifetime vs. layer count")
	fmt.Println("(normalized to the 2-layer voltage-stacked design)")
	fmt.Println()
	fmt.Println("layers | reg TSV | V-S TSV | reg C4 | V-S C4")

	// Baselines: the 2-layer V-S design point.
	baseTSV, baseC4 := solve(study, pdngrid.VoltageStacked, 2)

	for layers := 2; layers <= 8; layers += 2 {
		regTSV, regC4 := solve(study, pdngrid.Regular, layers)
		vsTSV, vsC4 := solve(study, pdngrid.VoltageStacked, layers)
		fmt.Printf("%6d | %7.2f | %7.2f | %6.2f | %6.2f\n",
			layers, regTSV/baseTSV, vsTSV/baseTSV, regC4/baseC4, vsC4/baseC4)
	}
	fmt.Println()
	fmt.Println("The regular PDN's conductors carry N layers' worth of current and")
	fmt.Println("wear out rapidly; the stacked PDN recycles charge between layers,")
	fmt.Println("so its current density — and lifetime — is almost layer-independent.")
}

// solve builds one scenario, runs it fully active, and returns the TSV and
// C4 array lifetimes.
func solve(study *core.Study, kind pdngrid.Kind, layers int) (tsvLife, c4Life float64) {
	var p *pdngrid.PDN
	var err error
	if kind == pdngrid.Regular {
		p, err = study.RegularPDN(layers, pdngrid.FewTSV(), 0.25)
	} else {
		p, err = study.VoltageStackedPDN(layers, 4, pdngrid.FewTSV(), 0.25)
	}
	if err != nil {
		log.Fatal(err)
	}
	r, err := p.Solve(pdngrid.UniformActivities(layers, study.Chip.NumCores(), 1))
	if err != nil {
		log.Fatal(err)
	}
	if tsvLife, err = study.TSVLifetime(r); err != nil {
		log.Fatal(err)
	}
	if c4Life, err = study.C4Lifetime(r); err != nil {
		log.Fatal(err)
	}
	return tsvLife, c4Life
}
