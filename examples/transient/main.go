// Transient: the RLC extension of the DC-only noise analysis. A
// synchronized load step (every layer jumping from 10% to full activity)
// rings through the package inductance and on-die decap; because a
// voltage-stacked PDN draws ~1/N the off-chip current, its L·di/dt kick
// is a fraction of the regular PDN's.
package main

import (
	"fmt"
	"log"

	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
)

func main() {
	chip := power.Example16Core()
	params := pdngrid.DefaultParams()
	params.GridNx, params.GridNy = 16, 16

	converter := sc.Default28nm()
	converter.Cap = sc.Trench

	build := func(kind pdngrid.Kind, tsv pdngrid.TSVTopology, conv int) *pdngrid.PDN {
		p, err := pdngrid.New(pdngrid.Config{
			Kind:              kind,
			Layers:            4,
			Chip:              chip,
			Params:            params,
			TSV:               tsv,
			PadPowerFraction:  0.5,
			ConvertersPerCore: conv,
			Converter:         converter,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	tc := pdngrid.DefaultTransient()
	tc.Steps = 1600

	fmt.Printf("synchronized load step %.0f%% -> %.0f%% activity, 4-layer stacks\n",
		100*tc.RestActivity, 100*tc.StepActivity)
	fmt.Printf("package: %.0f pH per polarity; on-die decap: %.1f nF/mm² per layer\n\n",
		tc.PkgL*1e12, tc.DecapPerArea*1e9/1e6)

	for _, c := range []struct {
		name string
		pdn  *pdngrid.PDN
	}{
		{"regular (Dense TSV)", build(pdngrid.Regular, pdngrid.DenseTSV(), 0)},
		{"voltage-stacked (Few TSV, 8 conv/core)", build(pdngrid.VoltageStacked, pdngrid.FewTSV(), 8)},
	} {
		r, err := c.pdn.SolveTransient(tc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s first droop %.2f%% Vdd (worst layer %d), %.2f%% at window end\n",
			c.name, 100*r.WorstDroopFrac, r.WorstLayer, 100*r.FinalDroopFrac)
	}

	fmt.Println()
	fmt.Println("The regular PDN's full N-layer current step slams the package inductance;")
	fmt.Println("the stack's off-chip step is ~1/N as large, and so is its first droop.")
}
