module voltstack

go 1.22
