// Command vsctl is the client for the vsserved evaluation daemon.
//
// Usage:
//
//	vsctl [-addr URL] [-poll D] <command> [flags]
//
// Commands:
//
//	submit    submit a job, print its accepted status JSON
//	status    print a job's status JSON              (vsctl status <id>)
//	result    write a done job's output to stdout    (vsctl result <id>)
//	wait      poll until terminal, print status JSON (vsctl wait <id>)
//	cancel    request cancellation, print status     (vsctl cancel <id>)
//	list      print every job's status JSON
//	run       submit + wait + result in one step
//	evaluate  evaluate a single design synchronously
//	stats     print a job's resource-attribution JSON (vsctl stats <id>)
//	health    render a job's solver-health report     (vsctl health <id>)
//	top       rank all jobs by attributed CPU time
//	fleet     render a coordinator's fleet status (workers, dispatch tallies)
//
// Every invocation mints a W3C trace context and sends it as a
// traceparent header, so a vsserved running with -trace records the
// client's requests, the queue wait and the nested solver spans under
// one trace ID (see the trace_id field of status and stats output).
//
// Job requests come either from -f FILE (raw JSON, "-" for stdin) or
// from flags mirroring cmd/vsexplore:
//
//	vsctl run -exp fig5a -csv -coarse      # byte-identical to: vsexplore -exp fig5a -csv -coarse
//	vsctl run -exp table1,table2 -coarse   # vsexplore's stdout minus its timing line
//	vsctl run -sweep -layers 8 -grid 16    # design-space sweep, canonical-JSON result
//	vsctl run -trials 4000                 # EM Monte Carlo cross-check
//
// The daemon caches by content address, so re-running an identical
// request returns the cached bytes without solver work (see the
// cache_hit field of the status).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"voltstack/internal/fleet"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
)

func main() {
	addr := flag.String("addr", defaultAddr(), "vsserved base URL (or VSSERVED_ADDR)")
	poll := flag.Duration("poll", 200*time.Millisecond, "initial status polling delay for wait/run (grows exponentially)")
	pollMax := flag.Duration("poll-max", 5*time.Second, "polling delay cap")
	hedge := flag.Duration("hedge", 0, "hedge idempotent GETs still unanswered after this long (0: off)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	c := &server.Client{
		Base:    *addr,
		Backoff: server.Backoff{Initial: *poll, Max: *pollMax},
		Hedge:   *hedge,
		Trace:   telemetry.NewTrace(),
	}
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args, false)
	case "run":
		err = cmdSubmit(ctx, c, args, true)
	case "status":
		err = withJobID(args, func(id string) error {
			st, err := c.Status(ctx, id)
			return printStatus(st, err)
		})
	case "wait":
		err = withJobID(args, func(id string) error {
			st, err := c.Wait(ctx, id)
			return printStatus(st, err)
		})
	case "cancel":
		err = withJobID(args, func(id string) error {
			st, err := c.Cancel(ctx, id)
			return printStatus(st, err)
		})
	case "result":
		err = withJobID(args, func(id string) error {
			res, err := c.Result(ctx, id)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(res)
			return err
		})
	case "list":
		var jobs []server.JobStatus
		if jobs, err = c.List(ctx); err == nil {
			err = printJSON(jobs)
		}
	case "evaluate":
		err = cmdEvaluate(ctx, c, args)
	case "stats":
		err = withJobID(args, func(id string) error {
			b, err := c.Stats(ctx, id)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(b)
			return err
		})
	case "health":
		err = withJobID(args, func(id string) error { return cmdHealth(ctx, c, id) })
	case "top":
		err = cmdTop(ctx, c)
	case "fleet":
		err = cmdFleet(ctx, c)
	default:
		fmt.Fprintf(os.Stderr, "vsctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: vsctl [-addr URL] [-poll D] <command> [flags]

commands:
  submit [job flags]    submit a job, print its status JSON
  run    [job flags]    submit, wait, write the result to stdout
  status <id>           print a job's status JSON
  wait   <id>           poll until the job is terminal, print its status
  result <id>           write a done job's output to stdout
  cancel <id>           request cancellation
  list                  print every job's status JSON
  evaluate [flags]      evaluate one design synchronously
  stats  <id>           print a job's resource-attribution JSON
  health <id>           render a job's solver-health report (condition
                        estimate, residual curve, detector verdicts)
  top                   rank all jobs by attributed CPU time
  fleet                 render a coordinator's fleet status

job flags (submit/run):
  -f FILE               raw request JSON ("-": stdin); overrides the rest
  -exp LIST             experiment job: comma-separated experiment names
  -csv                  CSV rendering (experiment job)
  -sweep                design-space sweep job
  -layers N -imbalance X -pads LIST -converters LIST -tsvs LIST -grid N
                        sweep axes (defaults: the paper's space)
  -trials N             EM Monte Carlo job
  -coarse -seed N -workers N
                        study knobs, as in vsexplore
`)
	flag.PrintDefaults()
}

func defaultAddr() string {
	if v := os.Getenv("VSSERVED_ADDR"); v != "" {
		return v
	}
	return "http://localhost:8324"
}

func withJobID(args []string, f func(id string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job id, got %d arguments", len(args))
	}
	return f(args[0])
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printStatus(st server.JobStatus, err error) error {
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdSubmit(ctx context.Context, c *server.Client, args []string, wait bool) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	file := fs.String("f", "", "read the request JSON from this file (\"-\": stdin)")
	exp := fs.String("exp", "", "comma-separated experiments (experiment job)")
	csv := fs.Bool("csv", false, "CSV rendering (experiment job)")
	sweep := fs.Bool("sweep", false, "design-space sweep job")
	layers := fs.Int("layers", 0, "sweep: stack depth (0: 8)")
	imbalance := fs.Float64("imbalance", -1, "sweep: workload imbalance in [0,1] (-1: 0.65)")
	pads := fs.String("pads", "", "sweep: comma-separated pad power fractions")
	converters := fs.String("converters", "", "sweep: comma-separated converters-per-core counts")
	tsvs := fs.String("tsvs", "", "sweep: comma-separated TSV topologies (dense,sparse,few)")
	grid := fs.Int("grid", 0, "sweep: PDN mesh resolution NxN (0: 32, 16 with -coarse)")
	trials := fs.Int("trials", 0, "EM Monte Carlo job: trial count")
	coarse := fs.Bool("coarse", false, "coarse 16x16 PDN mesh")
	seed := fs.Int64("seed", 0, "study RNG seed (0: 1)")
	workers := fs.Int("workers", 0, "evaluation concurrency (0: server default)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments after job flags: %v", fs.Args())
	}

	var req server.JobRequest
	if *file != "" {
		r := io.Reader(os.Stdin)
		if *file != "-" {
			f, err := os.Open(*file)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		p, err := server.DecodeJobRequest(r)
		if err != nil {
			return err
		}
		req = *p
	} else {
		req = server.JobRequest{Coarse: *coarse, Seed: *seed, Workers: *workers}
		switch {
		case *exp != "":
			req.Kind = server.KindExperiment
			for _, name := range strings.Split(*exp, ",") {
				if name = strings.TrimSpace(name); name != "" {
					req.Experiments = append(req.Experiments, name)
				}
			}
			req.CSV = *csv
		case *sweep:
			req.Kind = server.KindSweep
			spec := &server.SweepSpec{Layers: *layers, GridNx: *grid}
			if *imbalance >= 0 {
				imb := *imbalance
				spec.Imbalance = &imb
			}
			var err error
			if spec.PadFractions, err = parseFloats(*pads); err != nil {
				return fmt.Errorf("-pads: %v", err)
			}
			if spec.ConverterCount, err = parseInts(*converters); err != nil {
				return fmt.Errorf("-converters: %v", err)
			}
			if *tsvs != "" {
				spec.TSVs = splitList(*tsvs)
			}
			req.Sweep = spec
		case *trials > 0:
			req.Kind = server.KindEMMC
			req.Trials = *trials
		default:
			return fmt.Errorf("nothing to submit: use -exp, -sweep, -trials or -f (see vsctl -h)")
		}
	}

	if !wait {
		st, err := c.Submit(ctx, req)
		return printStatus(st, err)
	}
	res, st, err := c.Run(ctx, req)
	if err != nil {
		return err
	}
	if st.CacheHit {
		fmt.Fprintf(os.Stderr, "vsctl: job %s served from cache\n", st.ID)
	}
	_, err = os.Stdout.Write(res)
	return err
}

func cmdEvaluate(ctx context.Context, c *server.Client, args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	kind := fs.String("kind", "regular", "PDN kind: regular or vs")
	layers := fs.Int("layers", 8, "stack depth")
	tsv := fs.String("tsv", "dense", "TSV topology: dense, sparse or few")
	padFraction := fs.Float64("pad-fraction", 0.5, "power-pad fraction in (0,1]")
	converters := fs.Int("converters", 4, "converters per core (vs only)")
	imbalance := fs.Float64("imbalance", 0.65, "workload imbalance in [0,1]")
	grid := fs.Int("grid", 16, "PDN mesh resolution NxN")
	workers := fs.Int("workers", 0, "evaluation concurrency (0: server default)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	q := url.Values{}
	q.Set("kind", *kind)
	q.Set("layers", strconv.Itoa(*layers))
	q.Set("tsv", *tsv)
	q.Set("pad_fraction", strconv.FormatFloat(*padFraction, 'g', -1, 64))
	q.Set("converters", strconv.Itoa(*converters))
	q.Set("imbalance", strconv.FormatFloat(*imbalance, 'g', -1, 64))
	q.Set("grid", strconv.Itoa(*grid))
	if *workers > 0 {
		q.Set("workers", strconv.Itoa(*workers))
	}
	out, err := c.Evaluate(ctx, q)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(out, '\n'))
	return err
}

// cmdHealth renders a job's solver-health report from its stats document:
// the job-scoped convergence instruments (condition estimate, per-iteration
// reduction factor, detector trip counts) and the residual curve of the
// slowest probed solve, drawn on a log scale. It needs nothing beyond what
// GET /v1/jobs/{id}/stats already serves, so it works on frozen terminal
// documents across daemon restarts too.
func cmdHealth(ctx context.Context, c *server.Client, id string) error {
	b, err := c.Stats(ctx, id)
	if err != nil {
		return err
	}
	var st server.JobStats
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("stats %s: %v", id, err)
	}
	counter := func(name string) int64 { return st.Registry.Counters[name] }
	gauge := func(name string) (float64, bool) {
		v, ok := st.Registry.Gauges[name]
		return v, ok
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "job\t%s (%s, %s)\n", st.ID, st.Kind, st.State)
	fmt.Fprintf(w, "solves\t%d PDN solves, %d probed, %d total iterations\n",
		counter("job_pdn_solves_total"), counter("job_health_reports_total"),
		counter("job_solver_iterations_total"))
	if probed := counter("job_health_reports_total"); probed == 0 {
		fmt.Fprintf(w, "health\tno probed solves recorded (run vsserved with convergence probes; older jobs predate them)\n")
		return w.Flush()
	}
	if cond, ok := gauge("job_health_cond_estimate"); ok && cond > 0 {
		lmin, _ := gauge("job_health_lambda_min")
		lmax, _ := gauge("job_health_lambda_max")
		fmt.Fprintf(w, "conditioning\tcond(M^-1 A) ~ %.4g  (lambda in [%.4g, %.4g], last probed solve)\n", cond, lmin, lmax)
	} else {
		fmt.Fprintf(w, "conditioning\tno estimate (solves converged before the Lanczos window filled)\n")
	}
	if rf, ok := gauge("job_health_reduction_factor"); ok && rf > 0 {
		fmt.Fprintf(w, "reduction\tresidual x%.4g per iteration (geometric mean, last probed solve)\n", rf)
	}
	verdict := func(name string) string {
		if n := counter(name); n > 0 {
			return fmt.Sprintf("TRIPPED x%d", n)
		}
		return "ok"
	}
	fmt.Fprintf(w, "detectors\tstagnation %s\tplateau %s\tprecond-degradation %s\n",
		verdict("job_health_stagnation_total"), verdict("job_health_plateau_total"),
		verdict("job_health_degradation_total"))
	if err := w.Flush(); err != nil {
		return err
	}

	// Residual curve: the slowest solve's exemplar carries the probe's
	// per-iteration residual timeline (head + tail; long solves elide the
	// middle, which the iteration numbering makes visible).
	for _, ex := range st.Exemplars {
		if len(ex.Residuals) == 0 {
			continue
		}
		fmt.Printf("\nresidual curve (slowest probed solve: %d iterations, %.3fs):\n",
			ex.Iterations, ex.Value)
		printResidualCurve(ex.Residuals, ex.Iterations)
		break
	}
	return nil
}

// printResidualCurve draws residuals on a log10 scale, one bar per sampled
// iteration, at most 24 rows. res[0] is the initial residual; when the
// probe elided the middle of a long solve, the tail rows are numbered from
// the end so the gap is explicit.
func printResidualCurve(res []float64, iters int) {
	const maxRows, width = 24, 40
	idx := make([]int, len(res))
	for i := range res {
		idx[i] = i
		if iters+1 > len(res) && i >= len(res)/2 {
			// Head+tail window: the second half holds the final iterations.
			idx[i] = iters + 1 - (len(res) - i)
		}
	}
	step := 1
	if len(res) > maxRows {
		step = (len(res) + maxRows - 1) / maxRows
	}
	lo, hi := res[0], res[0]
	for _, r := range res {
		if r > 0 && (lo <= 0 || r < lo) {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo <= 0 || hi <= 0 || lo == hi {
		lo, hi = hi/10+1e-300, hi+1e-300
	}
	llo, lhi := mathLog10(lo), mathLog10(hi)
	for i := 0; i < len(res); i += step {
		frac := (mathLog10(res[i]) - llo) / (lhi - llo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		n := int(frac*float64(width) + 0.5)
		fmt.Printf("  iter %6d  %10.3e  |%s\n", idx[i], res[i], strings.Repeat("#", n))
	}
	if last := len(res) - 1; (len(res)-1)%step != 0 {
		fmt.Printf("  iter %6d  %10.3e  |\n", idx[last], res[last])
	}
}

func mathLog10(v float64) float64 {
	if v <= 0 {
		return -300
	}
	return math.Log10(v)
}

// cmdTop fetches every job's stats and prints a table ranked by
// attributed CPU time (then wall time), one row per job.
func cmdTop(ctx context.Context, c *server.Client) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	type row struct {
		st    server.JobStatus
		stats server.JobStats
	}
	rows := make([]row, 0, len(jobs))
	for _, st := range jobs {
		b, err := c.Stats(ctx, st.ID)
		if err != nil {
			return fmt.Errorf("stats %s: %w", st.ID, err)
		}
		r := row{st: st}
		if err := json.Unmarshal(b, &r.stats); err != nil {
			return fmt.Errorf("stats %s: %v", st.ID, err)
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].stats.CPUSeconds != rows[b].stats.CPUSeconds {
			return rows[a].stats.CPUSeconds > rows[b].stats.CPUSeconds
		}
		return rows[a].stats.WallSeconds > rows[b].stats.WallSeconds
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "JOB\tSTATE\tKIND\tCPU(S)\tWALL(S)\tQUEUE(S)\tITERS\tPOINTS\tALLOC(MB)\tCACHE")
	for _, r := range rows {
		counter := func(name string) int64 { return r.stats.Registry.Counters[name] }
		cache := "-"
		if r.stats.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%.2f\t%.3f\t%d\t%d\t%.1f\t%s\n",
			r.st.ID, r.st.State, r.st.Kind,
			r.stats.CPUSeconds, r.stats.WallSeconds, r.stats.QueueWaitSeconds,
			counter("job_solver_iterations_total"),
			counter("job_points_total")+counter("job_points_replayed_total"),
			float64(r.stats.AllocBytes)/(1<<20), cache)
	}
	return w.Flush()
}

// cmdFleet renders the coordinator's fleet status document: the worker
// registry and the dispatch/steal/requeue/cache-tier tallies. Pointing it
// at a standalone daemon just reports an empty fleet.
func cmdFleet(ctx context.Context, c *server.Client) error {
	b, err := c.Get(ctx, "/fleet/v1/status")
	if err != nil {
		return err
	}
	var st fleet.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("fleet status: %v", err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "role\t%s (build %s)\n", st.Role, st.Build)
	fmt.Fprintf(w, "units\t%d dispatched, %d stolen, %d requeued, %d failed, %d jobs forwarded\n",
		st.UnitsDispatched, st.UnitsStolen, st.UnitsRequeued, st.UnitFailures, st.JobsForwarded)
	fmt.Fprintf(w, "tier\t%d hits, %d misses, %d writes\n", st.TierHits, st.TierMisses, st.TierWrites)
	if err := w.Flush(); err != nil {
		return err
	}
	if len(st.Workers) == 0 {
		fmt.Println("no workers registered")
		return nil
	}
	w = tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "WORKER\tADDR\tALIVE\tRUNNING\tQUEUED\tINFLIGHT\tDONE\tFAILED\tSTEALS\tLAST BEAT")
	for _, wk := range st.Workers {
		alive := "yes"
		if !wk.Alive {
			alive = "NO"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			wk.Name, wk.Addr, alive, wk.Running, wk.Queued, wk.UnitsInflight,
			wk.UnitsDone, wk.UnitsFailed, wk.Steals, wk.LastBeat)
	}
	return w.Flush()
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, v := range splitList(s) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, v := range splitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
