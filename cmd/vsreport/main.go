// Command vsreport inspects and compares run provenance manifests written
// by the other binaries' -manifest flag, and analyzes persistent telemetry
// history stores for solver-health trends.
//
// Usage:
//
//	vsreport MANIFEST            show one manifest (summary to stdout)
//	vsreport A.json B.json       diff two manifests: config delta, metric
//	                             delta, and per-output hash match/mismatch
//	vsreport -json A.json B.json emit the structured diff as JSON
//	vsreport trend DIR           analyze a history store (vsserved -history,
//	                             CLI -history): per-group iteration and
//	                             conditioning trends, regressions flagged
//
// The exit status of a two-manifest diff reflects reproducibility: 0 when
// every output present in both runs hashed identically, 1 on any mismatch,
// 2 on usage or read errors. Two identical-seed runs of a deterministic
// binary must exit 0. `trend` mirrors that contract: 0 when no tracked
// metric regressed, 1 on any flagged regression, 2 on usage/read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"voltstack/internal/telemetry"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the diff (or single-manifest view) as JSON")
	flag.Parse()

	args := flag.Args()
	if len(args) > 0 && args[0] == "trend" {
		cmdTrend(args[1:], *jsonOut)
		return
	}
	switch len(args) {
	case 1:
		m, err := telemetry.LoadManifest(args[0])
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(m)
			return
		}
		printManifest(m)
	case 2:
		a, err := telemetry.LoadManifest(args[0])
		if err != nil {
			fatal(err)
		}
		b, err := telemetry.LoadManifest(args[1])
		if err != nil {
			fatal(err)
		}
		d := telemetry.DiffManifests(a, b)
		if *jsonOut {
			emitJSON(d)
		} else {
			fmt.Print(d.Render())
		}
		if !d.OutputsMatch() {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: vsreport [-json] MANIFEST [MANIFEST]\n       vsreport trend [-json] [flags] HISTORY-DIR")
		os.Exit(2)
	}
}

func printManifest(m *telemetry.Manifest) {
	rev := m.VCSRevision
	if rev == "" {
		rev = "(no vcs stamp)"
	}
	fmt.Printf("%s  schema %d\n", m.Binary, m.Schema)
	fmt.Printf("  revision:  %s (modified: %v)\n", rev, m.VCSModified)
	fmt.Printf("  toolchain: %s %s/%s\n", m.GoVersion, m.OS, m.Arch)
	fmt.Printf("  started:   %s  wall %.1fs\n", m.StartTime, m.WallSeconds)
	if m.ExitError != "" {
		fmt.Printf("  FAILED:    %s\n", m.ExitError)
	}
	fmt.Printf("  args:      %v\n", m.Args)
	if len(m.Seeds) > 0 {
		fmt.Printf("  seeds:\n")
		for _, k := range sortedKeys(m.Seeds) {
			fmt.Printf("    %s = %d\n", k, m.Seeds[k])
		}
	}
	fmt.Printf("  outputs:\n")
	if len(m.Outputs) == 0 {
		fmt.Printf("    (none recorded)\n")
	}
	for _, o := range m.Outputs {
		status := fmt.Sprintf("sha256 %s (%d bytes)", o.SHA256, o.Bytes)
		if o.Missing {
			status = "MISSING"
		}
		loc := ""
		if o.Path != "" {
			loc = "  " + o.Path
		}
		fmt.Printf("    %-10s %s%s\n", o.Name, status, loc)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsreport:", err)
	os.Exit(2)
}
