package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"voltstack/internal/telemetry/history"
)

// trackedMetric is one solver-health quantity the trend report follows
// through a history store. Each record may carry the quantity under any of
// several keys (vsserved job snapshots flatten the job registry; CLI run
// snapshots use health_* names), so lookup is by preference order.
type trackedMetric struct {
	name string
	keys []string
	// threshold flags a regression when latest/median-of-prior exceeds it;
	// zero means informational only (never gates the exit status).
	threshold float64
}

// trendMetric is one metric's verdict within a group, as emitted by -json.
type trendMetric struct {
	Metric     string  `json:"metric"`
	Records    int     `json:"records"`
	Median     float64 `json:"median"`
	Latest     float64 `json:"latest"`
	Ratio      float64 `json:"ratio"`
	Threshold  float64 `json:"threshold,omitempty"`
	Regression bool    `json:"regression"`
}

type trendGroup struct {
	Group   string        `json:"group"`
	Records int           `json:"records"`
	Metrics []trendMetric `json:"metrics"`
}

type trendReport struct {
	Dir        string       `json:"dir"`
	Records    int          `json:"records"`
	Groups     []trendGroup `json:"groups"`
	Regressed  bool         `json:"regressed"`
	iterThresh float64
	condThresh float64
}

// cmdTrend analyzes a history store: it groups records by producer, tracks
// iteration counts and condition estimates over time, and flags the latest
// snapshot as a regression when it exceeds the median of the prior ones by
// the configured factor. Exit: 0 clean, 1 regression, 2 usage/read error.
func cmdTrend(args []string, jsonOut bool) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	iterThresh := fs.Float64("iter-threshold", 1.20, "flag a regression when latest iterations exceed the prior median by this factor")
	condThresh := fs.Float64("cond-threshold", 1.50, "flag a regression when the latest condition estimate exceeds the prior median by this factor")
	buckets := fs.Int("buckets", 8, "downsample each group's iteration timeline to this many buckets for display (0: off)")
	jsonFlag := fs.Bool("json", false, "emit the trend report as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vsreport trend [-json] [-iter-threshold X] [-cond-threshold X] [-buckets N] HISTORY-DIR")
		os.Exit(2)
	}
	dir := fs.Arg(0)
	recs, err := history.Read(dir)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no history records under %s", dir))
	}
	rep := buildTrend(dir, recs, *iterThresh, *condThresh)
	if jsonOut || *jsonFlag {
		emitJSON(rep)
	} else {
		renderTrend(rep, recs, *buckets)
	}
	if rep.Regressed {
		os.Exit(1)
	}
}

// trendGroupKey merges records that are comparable over time: CLI runs of
// the same binary recur under one key, while vsserved jobs (unique IDs)
// pool by kind so a slow job stands out against the fleet's history.
func trendGroupKey(r history.Record) string {
	if r.Kind == "run" && r.ID != "" {
		return "run/" + r.ID
	}
	if r.Kind == "" {
		return "(unknown)"
	}
	return r.Kind
}

var trackedMetrics = []trackedMetric{
	{name: "iterations", keys: []string{"health_iterations", "job_solver_iterations_total", "sparse_pcg_iterations_total"}},
	{name: "cond_estimate", keys: []string{"health_cond_estimate", "job_health_cond_estimate"}},
	{name: "reduction_factor", keys: []string{"health_reduction_factor", "job_health_reduction_factor"}, threshold: 0},
}

func pickValue(r history.Record, keys []string) (float64, bool) {
	for _, k := range keys {
		if v, ok := r.Values[k]; ok {
			return v, true
		}
	}
	return 0, false
}

func buildTrend(dir string, recs []history.Record, iterThresh, condThresh float64) *trendReport {
	sorted := append([]history.Record(nil), recs...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].T < sorted[b].T })
	byGroup := map[string][]history.Record{}
	var order []string
	for _, r := range sorted {
		k := trendGroupKey(r)
		if _, seen := byGroup[k]; !seen {
			order = append(order, k)
		}
		byGroup[k] = append(byGroup[k], r)
	}
	rep := &trendReport{Dir: dir, Records: len(recs), iterThresh: iterThresh, condThresh: condThresh}
	for _, k := range order {
		group := trendGroup{Group: k, Records: len(byGroup[k])}
		for _, tm := range trackedMetrics {
			thresh := tm.threshold
			switch tm.name {
			case "iterations":
				thresh = iterThresh
			case "cond_estimate":
				thresh = condThresh
			}
			var series []float64
			for _, r := range byGroup[k] {
				if v, ok := pickValue(r, tm.keys); ok && v > 0 {
					series = append(series, v)
				}
			}
			if len(series) < 2 {
				continue // nothing prior to compare against
			}
			latest := series[len(series)-1]
			med := median(series[:len(series)-1])
			m := trendMetric{
				Metric:    tm.name,
				Records:   len(series),
				Median:    med,
				Latest:    latest,
				Ratio:     latest / med,
				Threshold: thresh,
			}
			if thresh > 0 && m.Ratio > thresh {
				m.Regression = true
				rep.Regressed = true
			}
			group.Metrics = append(group.Metrics, m)
		}
		rep.Groups = append(rep.Groups, group)
	}
	return rep
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func renderTrend(rep *trendReport, recs []history.Record, buckets int) {
	gplural := "s"
	if len(rep.Groups) == 1 {
		gplural = ""
	}
	fmt.Printf("history: %d records under %s (%d group%s)\n", rep.Records, rep.Dir, len(rep.Groups), gplural)
	byGroup := map[string][]history.Record{}
	for _, r := range recs {
		k := trendGroupKey(r)
		byGroup[k] = append(byGroup[k], r)
	}
	for _, g := range rep.Groups {
		plural := "s"
		if g.Records == 1 {
			plural = ""
		}
		fmt.Printf("\n%s  (%d record%s)\n", g.Group, g.Records, plural)
		if len(g.Metrics) == 0 {
			fmt.Printf("  (no comparable solver-health series: need >= 2 records carrying the same metric)\n")
			continue
		}
		for _, m := range g.Metrics {
			verdict := "ok"
			if m.Regression {
				verdict = fmt.Sprintf("REGRESSION (threshold x%.2f)", m.Threshold)
			} else if m.Threshold == 0 {
				verdict = "info"
			}
			fmt.Printf("  %-18s prior median %.6g, latest %.6g (x%.3f)  %s\n",
				m.Metric, m.Median, m.Latest, m.Ratio, verdict)
		}
		if buckets > 0 {
			printIterTimeline(byGroup[g.Group], buckets)
		}
	}
	if rep.Regressed {
		fmt.Printf("\nverdict: REGRESSION\n")
	} else {
		fmt.Printf("\nverdict: ok\n")
	}
}

// printIterTimeline shows the group's iteration series downsampled to the
// display budget, so a drift is visible at a glance without dumping every
// record.
func printIterTimeline(recs []history.Record, buckets int) {
	iterKeys := trackedMetrics[0].keys
	var with []history.Record
	for _, r := range recs {
		if v, ok := pickValue(r, iterKeys); ok && v > 0 {
			with = append(with, history.Record{T: r.T, Kind: r.Kind, ID: r.ID,
				Values: map[string]float64{"iterations": v}})
		}
	}
	if len(with) < 2 {
		return
	}
	ds := history.Downsample(with, buckets)
	fmt.Printf("  iteration timeline (%d records -> %d buckets):", len(with), len(ds))
	for _, r := range ds {
		fmt.Printf(" %.0f", r.Values["iterations"])
	}
	fmt.Println()
}
