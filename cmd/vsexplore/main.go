// Command vsexplore regenerates every table and figure of the paper's
// evaluation in text form.
//
// Usage:
//
//	vsexplore [-exp all|table1|table2|fig3a|fig3b|fig5a|fig5b|fig6|fig7|fig8|thermal|headlines] [-coarse] [-workers N]
//	          [-metrics PATH] [-trace PATH] [-events PATH] [-serve ADDR] [-pprof ADDR]
//	          [-cpuprofile PATH] [-manifest PATH] [-postmortem DIR] [-progress]
//
// -coarse runs the PDN experiments on a 16x16 mesh (seconds instead of
// tens of seconds); headline numbers are stable across both resolutions.
//
// Independent experiments run concurrently, and each experiment's inner
// fan-out (scenario grids, imbalance sweeps, Monte Carlo trials) is
// parallel too; -workers (or VOLTSTACK_WORKERS) bounds the concurrency.
// Every number printed is identical for any worker count, and identical
// with telemetry on or off (metrics, traces and progress go to files and
// stderr, never stdout).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"voltstack/internal/core"
	"voltstack/internal/parallel"
	"voltstack/internal/telemetry"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of text tables (fig3a/fig3b/fig5a/fig5b/fig6/fig7/fig8 only)")
	exp := flag.String("exp", "all", "comma-separated experiments to run (all, table1, table2, fig3a, fig3b, fig5a, fig5b, fig6, fig7, fig8, thermal, headlines, ext-transient, ext-converters, ext-scheduling, ext-electrothermal, ext-thermal-em, ext-guardband, ext-trace-noise, ext-scaling, ext-dvfs, ext-decap-split, ext-em-mc)")
	coarse := flag.Bool("coarse", false, "use a coarse 16x16 PDN mesh for speed")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS, or VOLTSTACK_WORKERS if set)")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsexplore:", err)
		os.Exit(1)
	}
	// fail routes error exits through flush: os.Exit skips deferred calls,
	// and flush is what restores stdout, stops the servers and writes the
	// manifest with the failure recorded.
	fail := func(code int, err error) {
		tf.RunManifest().SetExitError(err)
		flush()
		fmt.Fprintln(os.Stderr, "vsexplore:", err)
		os.Exit(code)
	}

	s := core.NewStudy()
	if *coarse {
		s.Coarse()
	}
	s.Workers = *workers
	tf.RunManifest().AddSeed("study", s.Seed)

	csvRunners := map[string]func() (string, error){
		"fig3a": func() (string, error) {
			pts, err := s.Fig3a()
			if err != nil {
				return "", err
			}
			return core.CSVFig3(pts), nil
		},
		"fig3b": func() (string, error) {
			pts, err := s.Fig3b()
			if err != nil {
				return "", err
			}
			return core.CSVFig3(pts), nil
		},
		"fig5a": func() (string, error) {
			fig, err := s.Fig5a()
			if err != nil {
				return "", err
			}
			return core.CSVFig5(fig), nil
		},
		"fig5b": func() (string, error) {
			fig, err := s.Fig5b()
			if err != nil {
				return "", err
			}
			return core.CSVFig5(fig), nil
		},
		"fig6": func() (string, error) {
			fig, err := s.Fig6()
			if err != nil {
				return "", err
			}
			return core.CSVFig6(fig), nil
		},
		"fig7": func() (string, error) { return core.CSVFig7(s.Fig7()), nil },
		"fig8": func() (string, error) {
			fig, err := s.Fig8()
			if err != nil {
				return "", err
			}
			return core.CSVFig8(fig), nil
		},
	}

	runners := map[string]func() (string, error){
		"table1": func() (string, error) { return core.RenderTable1(s.Table1()), nil },
		"table2": func() (string, error) { return core.RenderTable2(s.Table2()), nil },
		"fig3a": func() (string, error) {
			pts, err := s.Fig3a()
			if err != nil {
				return "", err
			}
			return core.RenderFig3("Fig. 3a: closed-loop SC converter validation (model vs. switch-level simulation)", pts, false), nil
		},
		"fig3b": func() (string, error) {
			pts, err := s.Fig3b()
			if err != nil {
				return "", err
			}
			return core.RenderFig3("Fig. 3b: open-loop SC converter validation (model vs. switch-level simulation)", pts, true), nil
		},
		"fig5a": func() (string, error) {
			f, err := s.Fig5a()
			if err != nil {
				return "", err
			}
			return core.RenderFig5("Fig. 5a: normalized power-supply TSV EM-free MTTF (base: 2-layer V-S)", f), nil
		},
		"fig5b": func() (string, error) {
			f, err := s.Fig5b()
			if err != nil {
				return "", err
			}
			return core.RenderFig5("Fig. 5b: normalized power-supply C4 EM-free MTTF (base: 2-layer V-S)", f), nil
		},
		"fig6": func() (string, error) {
			f, err := s.Fig6()
			if err != nil {
				return "", err
			}
			return core.RenderFig6(f), nil
		},
		"fig7": func() (string, error) { return core.RenderFig7(s.Fig7()), nil },
		"fig8": func() (string, error) {
			f, err := s.Fig8()
			if err != nil {
				return "", err
			}
			return core.RenderFig8(f), nil
		},
		"thermal": func() (string, error) {
			tc, err := s.Thermal()
			if err != nil {
				return "", err
			}
			return core.RenderThermal(tc), nil
		},
		"headlines": func() (string, error) {
			h, err := s.Headlines()
			if err != nil {
				return "", err
			}
			return core.RenderHeadlines(h), nil
		},
		"ext-transient": func() (string, error) {
			r, err := s.ExtTransient()
			if err != nil {
				return "", err
			}
			return core.RenderExtTransient(r), nil
		},
		"ext-converters": func() (string, error) {
			return core.RenderExtConverters(s.ExtConverters()), nil
		},
		"ext-scheduling": func() (string, error) {
			r, err := s.ExtScheduling()
			if err != nil {
				return "", err
			}
			return core.RenderExtScheduling(r), nil
		},
		"ext-decap-split": func() (string, error) {
			r, err := s.ExtDecapSplit(1200)
			if err != nil {
				return "", err
			}
			return core.RenderExtDecapSplit(r), nil
		},
		"ext-dvfs": func() (string, error) {
			r, err := s.ExtDVFS()
			if err != nil {
				return "", err
			}
			return core.RenderExtDVFS(r), nil
		},
		"ext-scaling": func() (string, error) {
			r, err := s.ExtScaling()
			if err != nil {
				return "", err
			}
			return core.RenderExtScaling(r), nil
		},
		"ext-trace-noise": func() (string, error) {
			r, err := s.ExtTraceNoise(100)
			if err != nil {
				return "", err
			}
			return core.RenderExtTraceNoise(r), nil
		},
		"ext-guardband": func() (string, error) {
			r, err := s.ExtGuardband()
			if err != nil {
				return "", err
			}
			return core.RenderExtGuardband(r), nil
		},
		"ext-thermal-em": func() (string, error) {
			r, err := s.ExtThermalEM()
			if err != nil {
				return "", err
			}
			return core.RenderExtThermalEM(r), nil
		},
		"ext-em-mc": func() (string, error) {
			r, err := s.ExtEMMonteCarlo(4000)
			if err != nil {
				return "", err
			}
			return core.RenderExtEMMonteCarlo(r), nil
		},
		"ext-electrothermal": func() (string, error) {
			var rows []*core.ExtElectrothermalResult
			for layers := 2; layers <= 8; layers += 2 {
				r, err := s.ExtElectrothermal(layers)
				if err != nil {
					return "", err
				}
				rows = append(rows, r)
			}
			return core.RenderExtElectrothermal(rows), nil
		},
	}
	order := []string{"table1", "table2", "fig3a", "fig3b", "fig5a", "fig5b", "fig6", "fig7", "fig8",
		"thermal", "headlines", "ext-transient", "ext-converters", "ext-scheduling", "ext-electrothermal", "ext-thermal-em", "ext-guardband", "ext-trace-noise", "ext-scaling", "ext-dvfs", "ext-decap-split", "ext-em-mc"}

	var selected []string
	switch strings.ToLower(*exp) {
	case "all":
		selected = order
	default:
		for _, name := range strings.Split(strings.ToLower(*exp), ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := runners[name]; !ok {
				fail(2, fmt.Errorf("unknown experiment %q (have: all %s)", name, strings.Join(order, " ")))
			}
			selected = append(selected, name)
		}
		if len(selected) == 0 {
			fail(2, fmt.Errorf("-exp selected no experiments"))
		}
	}

	start := time.Now()
	if *csvOut {
		for _, name := range selected {
			if _, ok := csvRunners[name]; !ok {
				fail(2, fmt.Errorf("no CSV form for %q", name))
			}
		}
	}

	// Independent experiments run concurrently on the shared pool; the
	// rendered outputs come back in selection order, so stdout is
	// byte-identical to a serial run.
	prog := telemetry.NewProgress("experiments", len(selected))
	pool := parallel.NewPool(*workers)
	outputs, err := parallel.Map(context.Background(), pool, selected, func(_ int, name string) (string, error) {
		run := runners[name]
		if *csvOut {
			run = csvRunners[name]
		}
		out, err := run()
		if err != nil {
			return "", fmt.Errorf("%s: %v", name, err)
		}
		prog.Add(1)
		return out, nil
	})
	if err != nil {
		fail(1, err)
	}
	prog.Finish()
	for _, out := range outputs {
		fmt.Print(out)
		if !*csvOut {
			fmt.Println()
		}
	}
	if !*csvOut {
		fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vsexplore: telemetry:", err)
		os.Exit(1)
	}
}
