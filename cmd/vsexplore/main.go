// Command vsexplore regenerates every table and figure of the paper's
// evaluation in text form.
//
// Usage:
//
//	vsexplore [-exp all|table1|table2|fig3a|fig3b|fig5a|fig5b|fig6|fig7|fig8|thermal|headlines] [-coarse] [-workers N]
//	          [-metrics PATH] [-trace PATH] [-events PATH] [-serve ADDR] [-pprof ADDR]
//	          [-cpuprofile PATH] [-manifest PATH] [-postmortem DIR] [-progress]
//
// -coarse runs the PDN experiments on a 16x16 mesh (seconds instead of
// tens of seconds); headline numbers are stable across both resolutions.
//
// Independent experiments run concurrently, and each experiment's inner
// fan-out (scenario grids, imbalance sweeps, Monte Carlo trials) is
// parallel too; -workers (or VOLTSTACK_WORKERS) bounds the concurrency.
// Every number printed is identical for any worker count, and identical
// with telemetry on or off (metrics, traces and progress go to files and
// stderr, never stdout).
//
// The experiment drivers live in the internal/core registry, which the
// evaluation service (cmd/vsserved) shares — a job submitted through
// cmd/vsctl renders the same bytes this command prints.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"voltstack/internal/core"
	"voltstack/internal/parallel"
	"voltstack/internal/telemetry"
)

func main() {
	csvOut := flag.Bool("csv", false, "emit CSV instead of text tables (fig3a/fig3b/fig5a/fig5b/fig6/fig7/fig8 only)")
	exp := flag.String("exp", "all", "comma-separated experiments to run (all, "+strings.Join(core.ExperimentNames(), ", ")+")")
	coarse := flag.Bool("coarse", false, "use a coarse 16x16 PDN mesh for speed")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS, or VOLTSTACK_WORKERS if set)")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsexplore:", err)
		os.Exit(1)
	}
	// fail routes error exits through flush: os.Exit skips deferred calls,
	// and flush is what restores stdout, stops the servers and writes the
	// manifest with the failure recorded.
	fail := func(code int, err error) {
		tf.RunManifest().SetExitError(err)
		flush()
		fmt.Fprintln(os.Stderr, "vsexplore:", err)
		os.Exit(code)
	}

	s := core.NewStudy()
	if *coarse {
		s.Coarse()
	}
	s.Workers = *workers
	tf.RunManifest().AddSeed("study", s.Seed)

	order := core.ExperimentNames()
	var selected []string
	switch strings.ToLower(*exp) {
	case "all":
		selected = order
	default:
		for _, name := range strings.Split(strings.ToLower(*exp), ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !core.IsExperiment(name) {
				fail(2, fmt.Errorf("unknown experiment %q (have: all %s)", name, strings.Join(order, " ")))
			}
			selected = append(selected, name)
		}
		if len(selected) == 0 {
			fail(2, fmt.Errorf("-exp selected no experiments"))
		}
	}

	start := time.Now()
	if *csvOut {
		for _, name := range selected {
			if !core.HasCSV(name) {
				fail(2, fmt.Errorf("no CSV form for %q", name))
			}
		}
	}

	// Independent experiments run concurrently on the shared pool; the
	// rendered outputs come back in selection order, so stdout is
	// byte-identical to a serial run.
	prog := telemetry.NewProgress("experiments", len(selected))
	pool := parallel.NewPool(*workers)
	outputs, err := parallel.Map(context.Background(), pool, selected, func(_ int, name string) (string, error) {
		out, err := core.RunExperiment(s, name, *csvOut)
		if err != nil {
			return "", fmt.Errorf("%s: %v", name, err)
		}
		prog.Add(1)
		return out, nil
	})
	if err != nil {
		fail(1, err)
	}
	prog.Finish()
	for _, out := range outputs {
		fmt.Print(out)
		if !*csvOut {
			fmt.Println()
		}
	}
	if !*csvOut {
		fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vsexplore: telemetry:", err)
		os.Exit(1)
	}
}
