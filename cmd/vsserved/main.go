// Command vsserved is the voltstack evaluation daemon: it serves the
// HTTP/JSON job API (submit, status, result, cancel, plus synchronous
// single-design evaluation) backed by a content-addressed result cache,
// bounded admission control and a job journal.
//
// Usage:
//
//	vsserved [-addr HOST:PORT] [-state-dir DIR] [-cache-dir DIR]
//	         [-cache-entries N] [-cache-bytes N] [-max-inflight N]
//	         [-queue N] [-retry-after D] [-drain-timeout D]
//	         [-metrics PATH] [-trace PATH] [-events PATH] [-manifest PATH] ...
//
// The API listener also serves the observability endpoints (/metrics,
// /healthz, /statusz, /debug/pprof), so the daemon's server_* and
// rescache_* metrics are always one curl away. With -state-dir, job
// state is journaled: completed results survive a restart and jobs
// interrupted mid-run resume from their checkpoints, replaying finished
// sweep points bit-identically instead of recomputing them.
//
// SIGINT/SIGTERM drains gracefully — admission stops (new submissions
// get 503), queued and running jobs finish, then the process exits. A
// second signal (or -drain-timeout expiring) hard-cancels in-flight
// jobs; they stay resumable in the journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"voltstack/internal/rescache"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
	"voltstack/internal/telemetry/history"
)

func main() {
	addr := flag.String("addr", "localhost:8324", "listen address for the job API and observability endpoints")
	stateDir := flag.String("state-dir", "", "journal job state here (enables restart resume; empty: in-memory only)")
	cacheDir := flag.String("cache-dir", "", "spill the result cache to this directory (shared across restarts and daemons)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entry budget (0: 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache byte budget (0: 256 MiB)")
	maxInflight := flag.Int("max-inflight", 2, "jobs running concurrently")
	queueDepth := flag.Int("queue", 8, "queued-job bound; submissions beyond it get 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 rejections")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "graceful-shutdown budget before in-flight jobs are hard-cancelled")
	historySegBytes := flag.Int64("history-segment-bytes", 0, "history segment rotation budget in bytes (0: 1 MiB)")
	historySegments := flag.Int("history-segments", 0, "history segments retained (0: 8)")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	// A daemon always records metrics: the /metrics endpoint it exposes
	// should never silently read zero. Convergence probes ride along: the
	// daemon is exactly where "is the solver healthy?" must be answerable
	// live, and the probes are guaranteed not to perturb results.
	telemetry.Enable()
	telemetry.EnableConvergenceProbes()
	// The daemon shares the -history store of the common flag set: Init
	// opens it, the job manager appends one record per finished job, and
	// the telemetry flush appends the daemon's own run record on exit.
	tf.HistoryOptions = history.Options{
		SegmentBytes: *historySegBytes,
		MaxSegments:  *historySegments,
	}
	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsserved:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		flush()
		fmt.Fprintln(os.Stderr, "vsserved:", err)
		os.Exit(1)
	}

	cache, err := rescache.New(rescache.Config{
		MaxEntries: *cacheEntries,
		MaxBytes:   *cacheBytes,
		Dir:        *cacheDir,
	})
	if err != nil {
		fail(err)
	}
	hist := tf.HistoryStore()
	if hist != nil {
		fmt.Fprintf(os.Stderr, "vsserved: appending job history under %s\n", tf.History)
	}
	mgr, err := server.NewManager(server.Config{
		MaxInFlight: *maxInflight,
		QueueDepth:  *queueDepth,
		Cache:       cache,
		StateDir:    *stateDir,
		RetryAfter:  *retryAfter,
		History:     hist,
	})
	if err != nil {
		fail(err)
	}
	srv, err := server.Start(*addr, mgr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "vsserved: serving http://%s/v1/jobs (build %s)\n", srv.Addr(), telemetry.BuildStamp())
	if *stateDir != "" {
		fmt.Fprintf(os.Stderr, "vsserved: journaling job state under %s\n", *stateDir)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "vsserved: %s: draining (budget %s; signal again to force)\n", s, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "vsserved: forcing shutdown; interrupted jobs stay resumable")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "vsserved: drain:", err)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vsserved: telemetry:", err)
		os.Exit(1)
	}
}
