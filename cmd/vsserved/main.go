// Command vsserved is the voltstack evaluation daemon: it serves the
// HTTP/JSON job API (submit, status, result, cancel, plus synchronous
// single-design evaluation) backed by a content-addressed result cache,
// bounded admission control and a job journal.
//
// Usage:
//
//	vsserved [-addr HOST:PORT] [-state-dir DIR] [-cache-dir DIR]
//	         [-cache-entries N] [-cache-bytes N] [-max-inflight N]
//	         [-queue N] [-retry-after D] [-drain-timeout D]
//	         [-metrics PATH] [-trace PATH] [-events PATH] [-manifest PATH] ...
//
// The API listener also serves the observability endpoints (/metrics,
// /healthz, /statusz, /debug/pprof), so the daemon's server_* and
// rescache_* metrics are always one curl away. With -state-dir, job
// state is journaled: completed results survive a restart and jobs
// interrupted mid-run resume from their checkpoints, replaying finished
// sweep points bit-identically instead of recomputing them.
//
// SIGINT/SIGTERM drains gracefully — admission stops (new submissions
// get 503), queued and running jobs finish, then the process exits. A
// second signal (or -drain-timeout expiring) hard-cancels in-flight
// jobs; they stay resumable in the journal.
//
// With -role, daemons form a fleet: a coordinator accepts the same
// /v1/jobs API but shards sweep jobs across workers that joined it
// (-role worker -join URL), sharing one content-addressed cache tier.
// See internal/fleet for the protocol and the byte-identity contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"voltstack/internal/fleet"
	"voltstack/internal/rescache"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
	"voltstack/internal/telemetry/history"
)

// dispatcher adapts an optional coordinator to the engine's Dispatcher
// seam without smuggling a typed nil into the interface.
func dispatcher(c *fleet.Coordinator) server.Dispatcher {
	if c == nil {
		return nil
	}
	return c
}

func main() {
	addr := flag.String("addr", "localhost:8324", "listen address for the job API and observability endpoints")
	stateDir := flag.String("state-dir", "", "journal job state here (enables restart resume; empty: in-memory only)")
	cacheDir := flag.String("cache-dir", "", "spill the result cache to this directory (shared across restarts and daemons)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entry budget (0: 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory result cache byte budget (0: 256 MiB)")
	maxInflight := flag.Int("max-inflight", 2, "jobs running concurrently")
	queueDepth := flag.Int("queue", 8, "queued-job bound; submissions beyond it get 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 rejections")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "graceful-shutdown budget before in-flight jobs are hard-cancelled")
	historySegBytes := flag.Int64("history-segment-bytes", 0, "history segment rotation budget in bytes (0: 1 MiB)")
	historySegments := flag.Int("history-segments", 0, "history segments retained (0: 8)")
	role := flag.String("role", "standalone", "fleet role: standalone, coordinator, or worker")
	join := flag.String("join", "", "coordinator base URL a worker joins, e.g. http://host:8324 (worker role only)")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this worker at (default http://<-addr>)")
	workerName := flag.String("name", "", "worker name in the coordinator's registry (default the advertise URL)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker heartbeat period")
	workerTimeout := flag.Duration("worker-timeout", 6*time.Second, "coordinator declares a silent worker dead after this long")
	unitSize := flag.Int("unit-size", 1, "sweep points per dispatched work unit")
	workerWait := flag.Duration("worker-wait", 10*time.Second, "coordinator waits this long for a live worker before computing locally")
	unitTimeout := flag.Duration("unit-timeout", 10*time.Minute, "one work unit's round-trip budget before it is re-dispatched")
	tf := telemetry.RegisterFlags()
	flag.Parse()
	switch *role {
	case "standalone", "coordinator", "worker":
	default:
		fmt.Fprintf(os.Stderr, "vsserved: -role must be standalone, coordinator or worker, got %q\n", *role)
		os.Exit(2)
	}
	if *role == "worker" && *join == "" {
		fmt.Fprintln(os.Stderr, "vsserved: -role worker requires -join")
		os.Exit(2)
	}

	// A daemon always records metrics: the /metrics endpoint it exposes
	// should never silently read zero. Convergence probes ride along: the
	// daemon is exactly where "is the solver healthy?" must be answerable
	// live, and the probes are guaranteed not to perturb results.
	telemetry.Enable()
	telemetry.EnableConvergenceProbes()
	// The daemon shares the -history store of the common flag set: Init
	// opens it, the job manager appends one record per finished job, and
	// the telemetry flush appends the daemon's own run record on exit.
	tf.HistoryOptions = history.Options{
		SegmentBytes: *historySegBytes,
		MaxSegments:  *historySegments,
	}
	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsserved:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		flush()
		fmt.Fprintln(os.Stderr, "vsserved:", err)
		os.Exit(1)
	}

	cache, err := rescache.New(rescache.Config{
		MaxEntries: *cacheEntries,
		MaxBytes:   *cacheBytes,
		Dir:        *cacheDir,
	})
	if err != nil {
		fail(err)
	}
	hist := tf.HistoryStore()
	if hist != nil {
		fmt.Fprintf(os.Stderr, "vsserved: appending job history under %s\n", tf.History)
	}
	var coord *fleet.Coordinator
	if *role == "coordinator" {
		coord = fleet.NewCoordinator(cache, fleet.CoordinatorConfig{
			Registry:    fleet.NewRegistry(*workerTimeout),
			UnitSize:    *unitSize,
			WorkerWait:  *workerWait,
			UnitTimeout: *unitTimeout,
			History:     hist,
		})
	}
	mgr, err := server.NewManager(server.Config{
		MaxInFlight: *maxInflight,
		QueueDepth:  *queueDepth,
		Cache:       cache,
		StateDir:    *stateDir,
		RetryAfter:  *retryAfter,
		History:     hist,
		Dispatcher:  dispatcher(coord),
	})
	if err != nil {
		fail(err)
	}
	mux := server.NewHandler(mgr)
	var agent *fleet.Agent
	agentCtx, agentStop := context.WithCancel(context.Background())
	defer agentStop()
	switch *role {
	case "coordinator":
		coord.Mount(mux)
	case "worker":
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		name := *workerName
		if name == "" {
			name = adv
		}
		agent = fleet.NewAgent(mgr, fleet.AgentConfig{
			Name:      name,
			Join:      *join,
			Advertise: adv,
			Interval:  *heartbeat,
		})
		agent.Mount(mux)
	}
	srv, err := server.StartHandler(*addr, mgr, mux)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "vsserved: serving http://%s/v1/jobs as %s (build %s)\n", srv.Addr(), *role, telemetry.BuildStamp())
	if *stateDir != "" {
		fmt.Fprintf(os.Stderr, "vsserved: journaling job state under %s\n", *stateDir)
	}
	if agent != nil {
		fmt.Fprintf(os.Stderr, "vsserved: joining fleet at %s\n", *join)
		go agent.Run(agentCtx)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	agentStop() // stop heartbeating so the coordinator drops us promptly
	fmt.Fprintf(os.Stderr, "vsserved: %s: draining (budget %s; signal again to force)\n", s, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "vsserved: forcing shutdown; interrupted jobs stay resumable")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "vsserved: drain:", err)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vsserved: telemetry:", err)
		os.Exit(1)
	}
}
