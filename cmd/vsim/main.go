// Command vsim solves one 3D-IC PDN scenario and reports voltage noise,
// converter state, power efficiency and conductor current statistics.
//
// Usage:
//
//	vsim [-kind regular|vs] [-layers N] [-tsv dense|sparse|few]
//	     [-conv N] [-padfrac F] [-imbalance F] [-grid N]
//	     [-metrics PATH] [-trace PATH] [-events PATH] [-serve ADDR] [-pprof ADDR]
//	     [-cpuprofile PATH] [-manifest PATH] [-postmortem DIR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
	"voltstack/internal/telemetry"
	"voltstack/internal/viz"
)

func main() {
	kind := flag.String("kind", "vs", "PDN kind: regular or vs (voltage-stacked)")
	layers := flag.Int("layers", 8, "number of stacked silicon layers")
	tsvName := flag.String("tsv", "few", "TSV topology: dense, sparse or few")
	conv := flag.Int("conv", 8, "SC converters per core per intermediate rail (V-S only)")
	padFrac := flag.Float64("padfrac", 0.5, "fraction of C4 pad sites used for power")
	imbalance := flag.Float64("imbalance", 0.65, "interleaved high/low workload imbalance (0..1)")
	grid := flag.Int("grid", 32, "PDN mesh resolution (NxN)")
	showMap := flag.Bool("map", false, "print an ASCII voltage heatmap of the worst layer")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, "vsim: telemetry:", err)
		}
	}()
	// fail routes error exits through flush: os.Exit skips deferred calls,
	// and flush is what restores stdout, stops the servers and writes the
	// manifest with the failure recorded.
	fail := func(code int, err error) {
		tf.RunManifest().SetExitError(err)
		flush()
		fmt.Fprintln(os.Stderr, "vsim:", err)
		os.Exit(code)
	}

	var tsv pdngrid.TSVTopology
	switch strings.ToLower(*tsvName) {
	case "dense":
		tsv = pdngrid.DenseTSV()
	case "sparse":
		tsv = pdngrid.SparseTSV()
	case "few":
		tsv = pdngrid.FewTSV()
	default:
		fail(2, fmt.Errorf("unknown TSV topology %q", *tsvName))
	}

	params := pdngrid.DefaultParams()
	params.GridNx, params.GridNy = *grid, *grid
	converter := sc.Default28nm()
	converter.Cap = sc.Trench

	cfg := pdngrid.Config{
		Layers:            *layers,
		Chip:              power.Example16Core(),
		Params:            params,
		TSV:               tsv,
		PadPowerFraction:  *padFrac,
		ConvertersPerCore: *conv,
		Converter:         converter,
	}
	switch strings.ToLower(*kind) {
	case "regular":
		cfg.Kind = pdngrid.Regular
		cfg.ConvertersPerCore = 0
	case "vs", "voltage-stacked":
		cfg.Kind = pdngrid.VoltageStacked
	default:
		fail(2, fmt.Errorf("unknown kind %q", *kind))
	}

	p, err := pdngrid.New(cfg)
	if err != nil {
		fail(1, err)
	}

	cores := cfg.Chip.NumCores()
	var acts [][]float64
	if cfg.Kind == pdngrid.VoltageStacked {
		acts = pdngrid.InterleavedActivities(*layers, cores, *imbalance)
	} else {
		acts = pdngrid.UniformActivities(*layers, cores, 1) // regular worst case
	}
	r, err := p.Solve(acts)
	if err != nil {
		fail(1, err)
	}

	if *jsonOut {
		summary := map[string]interface{}{
			"kind":                cfg.Kind.String(),
			"layers":              *layers,
			"tsv_topology":        tsv.Name,
			"pad_power_fraction":  *padFrac,
			"converters_per_core": cfg.ConvertersPerCore,
			"imbalance":           *imbalance,
			"power_pads":          p.NumPowerPads(),
			"vdd_pads":            p.NumVddPads(),
			"tsvs_per_boundary":   p.NumTSVsPerBoundary(),
			"area_overhead_frac":  p.AreaOverheadFrac(),
			"max_ir_drop_frac":    r.MaxIRDropFrac,
			"max_rise_frac":       r.MaxRiseFrac,
			"worst_layer":         r.WorstLayer,
			"input_power_w":       r.InputPower,
			"load_power_w":        r.LoadPower,
			"converter_loss_w":    r.ConverterLoss,
			"wire_loss_w":         r.WireLoss,
			"efficiency":          r.Efficiency,
			"max_converter_a":     r.MaxConverterCurrent,
			"over_limit":          r.OverLimit,
			"solver_iterations":   r.SolverIterations,
			"solver_residual":     r.SolverResidual,
			"outer_iterations":    r.OuterIterations,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fail(1, err)
		}
		return
	}

	fmt.Printf("scenario: %s PDN, %d layers, %s TSV, %.0f%% power pads\n",
		cfg.Kind, *layers, tsv.Name, 100**padFrac)
	if cfg.Kind == pdngrid.VoltageStacked {
		fmt.Printf("          %d converters/core/rail, interleaved imbalance %.0f%%\n",
			*conv, 100**imbalance)
	}
	fmt.Printf("power pads: %d (%d Vdd), TSVs/boundary: %d, PDN area overhead: %.1f%% of each layer\n",
		p.NumPowerPads(), p.NumVddPads(), p.NumTSVsPerBoundary(), 100*p.AreaOverheadFrac())
	fmt.Printf("max IR drop: %.2f%% Vdd (worst layer %d); max rise: %.2f%% Vdd\n",
		100*r.MaxIRDropFrac, r.WorstLayer, 100*r.MaxRiseFrac)
	fmt.Printf("power: in %.2f W, loads %.2f W, converters %.2f W, wires %.2f W -> efficiency %.1f%%\n",
		r.InputPower, r.LoadPower, r.ConverterLoss, r.WireLoss, 100*r.Efficiency)
	if cfg.Kind == pdngrid.VoltageStacked {
		fmt.Printf("converters: %d total, max |J| = %.1f mA (limit %.0f mA, over: %v)\n",
			p.ConverterCount(), 1000*r.MaxConverterCurrent, 1000*converter.MaxLoad, r.OverLimit)
	}
	fmt.Printf("pad currents (mA):  %s\n", statLine(r.PadCurrents))
	fmt.Printf("TSV currents (mA):  %s\n", statLine(r.TSVCurrents))
	if r.SolverIterations > 0 {
		fmt.Printf("solver: %d PCG iterations (residual %.2e) over %d outer pass(es)\n",
			r.TotalSolverIterations, r.SolverResidual, r.OuterIterations)
	}

	if *showMap {
		cv := r.CellVoltages[r.WorstLayer]
		lo, mean, hi := viz.Stats(cv)
		fmt.Printf("\nsupply-voltage map, layer %d (min %.4f V, mean %.4f V, max %.4f V):\n",
			r.WorstLayer, lo, mean, hi)
		fmt.Print(viz.Heatmap(cv, *grid, *grid, viz.Options{FlipY: true, ShowScale: true}))
	}
}

func statLine(v []float64) string {
	if len(v) == 0 {
		return "none"
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		len(s), 1000*sum/float64(len(s)), 1000*q(0.5), 1000*q(0.95), 1000*s[len(s)-1])
}
