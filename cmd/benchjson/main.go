// Command benchjson turns `go test -bench` output on stdin into a JSON
// report on stdout, pairing Fresh/Prepared benchmark variants and computing
// their speedups. It backs the `make bench-solve` target:
//
//	go test -bench '^BenchmarkSolve' -run '^$' . | go run ./cmd/benchjson > BENCH_solve.json
//
// Lines that are not benchmark results (headers, PASS/ok, metrics the
// benchmarks attach via ReportMetric) are carried into the report where
// relevant and otherwise ignored, so the tool is safe to run on the full
// `go test` output.
//
// With -diff it compares two reports instead of reading stdin:
//
//	benchjson -diff old.json new.json -tolerance 0.30
//
// Every Fresh/Prepared, Serial/Batch and Workers1/Workers8 speedup
// present in both reports is compared; the exit status is 1 when any
// speedup regressed by more than the tolerance fraction (default 0.30).
// Raw ns/op is machine- and load-dependent, so only the speedup ratios —
// which divide that noise out — gate. The ProbesOff/ProbesOn pairs gate
// on the disabled variant's allocs/op, which is machine-independent: the
// zero-alloc-when-disabled contract fails loudly if the disabled path
// starts allocating. Their on/off time ratio hovers at ~1.0x and is
// reported informationally only — single-iteration smokes are too noisy
// to gate a ratio that close to unity.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkSolveClosedLoopFresh-8   5   252909369 ns/op   10.00 outer-passes
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPart matches trailing custom metrics: "10.00 outer-passes".
var metricPart = regexp.MustCompile(`([\d.eE+-]+) ([\w%/-]+)`)

// Entry is one benchmark result.
type Entry struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Pair couples a Fresh benchmark with its Prepared twin.
type Pair struct {
	Name       string  `json:"name"`
	FreshNs    float64 `json:"fresh_ns_per_op"`
	PreparedNs float64 `json:"prepared_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// BatchPair couples a Serial benchmark with its Batch twin (the multi-RHS
// scaling pairs); Nodes and Lanes carry the scaling-curve coordinates when
// the benchmarks report them.
type BatchPair struct {
	Name     string  `json:"name"`
	SerialNs float64 `json:"serial_ns_per_op"`
	BatchNs  float64 `json:"batch_ns_per_op"`
	Speedup  float64 `json:"speedup"`
	Nodes    float64 `json:"nodes,omitempty"`
	Lanes    float64 `json:"lanes,omitempty"`
}

// KernelPair couples a Workers1 benchmark with its Workers8 twin (the
// intra-solve kernel scaling pairs): the same solve with the kernel
// worker count at 1 and 8, bit-identical by construction, so the ratio
// is the pure kernel speedup.
type KernelPair struct {
	Name       string  `json:"name"`
	Workers1Ns float64 `json:"workers1_ns_per_op"`
	Workers8Ns float64 `json:"workers8_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	Nodes      float64 `json:"nodes,omitempty"`
}

// ProbePair couples a ProbesOff benchmark with its ProbesOn twin (the
// solver-health pairs): the same solve with the convergence probes
// disabled and enabled. Overhead is on/off ns (>= 1 when the disabled
// path is the cheap one); OffAllocs pins the zero-alloc-when-disabled
// contract in a machine-independent number.
type ProbePair struct {
	Name      string  `json:"name"`
	OffNs     float64 `json:"probes_off_ns_per_op"`
	OnNs      float64 `json:"probes_on_ns_per_op"`
	Overhead  float64 `json:"overhead"`
	OffAllocs float64 `json:"probes_off_allocs_per_op,omitempty"`
	OnAllocs  float64 `json:"probes_on_allocs_per_op,omitempty"`
}

// FleetPair couples a Standalone benchmark with its Sharded twin (the
// evaluation-fleet pairs): the same sweep submitted to one daemon and to
// a coordinator dispatching over loopback workers. On a many-core host
// the speedup approaches the worker count; on a starved one it degrades
// toward the dispatch overhead (speedup < 1) — either way the recorded
// ratio pins the fleet's overhead against regression.
type FleetPair struct {
	Name         string  `json:"name"`
	StandaloneNs float64 `json:"standalone_ns_per_op"`
	ShardedNs    float64 `json:"sharded_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Points       float64 `json:"points,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoOS        string       `json:"goos,omitempty"`
	GoArch      string       `json:"goarch,omitempty"`
	CPU         string       `json:"cpu,omitempty"`
	Benchmarks  []Entry      `json:"benchmarks"`
	Pairs       []Pair       `json:"pairs"`
	BatchPairs  []BatchPair  `json:"batch_pairs,omitempty"`
	KernelPairs []KernelPair `json:"kernel_pairs,omitempty"`
	ProbePairs  []ProbePair  `json:"probe_pairs,omitempty"`
	FleetPairs  []FleetPair  `json:"fleet_pairs,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: strings.TrimPrefix(m[1], "Benchmark"), Iters: iters, NsPerOp: ns}
		for _, mm := range metricPart.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[mm[2]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	// Pair suffix-twinned variants by common stem: *Fresh with *Prepared
	// (the prepared-engine pairs) and *Serial with *Batch (the multi-RHS
	// scaling pairs). When -count ran a benchmark several times, the mean
	// ns/op of each variant is paired; scaling metrics (nodes, lanes) take
	// the last reported value.
	type acc struct {
		sum     float64
		n       int
		metrics map[string]float64
	}
	add := func(m map[string]*acc, order *[]string, other map[string]*acc, stem string, e Entry) {
		a := m[stem]
		if a == nil {
			if other[stem] == nil {
				*order = append(*order, stem)
			}
			a = &acc{}
			m[stem] = a
		}
		a.sum += e.NsPerOp
		a.n++
		if e.Metrics != nil {
			a.metrics = e.Metrics
		}
	}
	fresh, prepared := map[string]*acc{}, map[string]*acc{}
	serial, batch := map[string]*acc{}, map[string]*acc{}
	workers1, workers8 := map[string]*acc{}, map[string]*acc{}
	probesOff, probesOn := map[string]*acc{}, map[string]*acc{}
	standalone, sharded := map[string]*acc{}, map[string]*acc{}
	var order, batchOrder, kernelOrder, probeOrder, fleetOrder []string
	for _, e := range rep.Benchmarks {
		switch {
		case strings.HasSuffix(e.Name, "Fresh"):
			add(fresh, &order, prepared, strings.TrimSuffix(e.Name, "Fresh"), e)
		case strings.HasSuffix(e.Name, "Prepared"):
			add(prepared, &order, fresh, strings.TrimSuffix(e.Name, "Prepared"), e)
		case strings.HasSuffix(e.Name, "Serial"):
			add(serial, &batchOrder, batch, strings.TrimSuffix(e.Name, "Serial"), e)
		case strings.HasSuffix(e.Name, "Batch"):
			add(batch, &batchOrder, serial, strings.TrimSuffix(e.Name, "Batch"), e)
		case strings.HasSuffix(e.Name, "Workers1"):
			add(workers1, &kernelOrder, workers8, strings.TrimSuffix(e.Name, "Workers1"), e)
		case strings.HasSuffix(e.Name, "Workers8"):
			add(workers8, &kernelOrder, workers1, strings.TrimSuffix(e.Name, "Workers8"), e)
		case strings.HasSuffix(e.Name, "ProbesOff"):
			add(probesOff, &probeOrder, probesOn, strings.TrimSuffix(e.Name, "ProbesOff"), e)
		case strings.HasSuffix(e.Name, "ProbesOn"):
			add(probesOn, &probeOrder, probesOff, strings.TrimSuffix(e.Name, "ProbesOn"), e)
		case strings.HasSuffix(e.Name, "Standalone"):
			add(standalone, &fleetOrder, sharded, strings.TrimSuffix(e.Name, "Standalone"), e)
		case strings.HasSuffix(e.Name, "Sharded"):
			add(sharded, &fleetOrder, standalone, strings.TrimSuffix(e.Name, "Sharded"), e)
		}
	}
	for _, stem := range order {
		f, p := fresh[stem], prepared[stem]
		if f == nil || p == nil || f.n == 0 || p.n == 0 {
			continue
		}
		fm, pm := f.sum/float64(f.n), p.sum/float64(p.n)
		rep.Pairs = append(rep.Pairs, Pair{
			Name:       stem,
			FreshNs:    fm,
			PreparedNs: pm,
			Speedup:    fm / pm,
		})
	}
	for _, stem := range batchOrder {
		s, bt := serial[stem], batch[stem]
		if s == nil || bt == nil || s.n == 0 || bt.n == 0 {
			continue
		}
		sm, bm := s.sum/float64(s.n), bt.sum/float64(bt.n)
		bp := BatchPair{
			Name:     stem,
			SerialNs: sm,
			BatchNs:  bm,
			Speedup:  sm / bm,
		}
		if s.metrics != nil {
			bp.Nodes = s.metrics["nodes"]
			bp.Lanes = s.metrics["lanes"]
		}
		rep.BatchPairs = append(rep.BatchPairs, bp)
	}
	for _, stem := range kernelOrder {
		w1, w8 := workers1[stem], workers8[stem]
		if w1 == nil || w8 == nil || w1.n == 0 || w8.n == 0 {
			continue
		}
		m1, m8 := w1.sum/float64(w1.n), w8.sum/float64(w8.n)
		kp := KernelPair{
			Name:       stem,
			Workers1Ns: m1,
			Workers8Ns: m8,
			Speedup:    m1 / m8,
		}
		if w1.metrics != nil {
			kp.Nodes = w1.metrics["nodes"]
		}
		rep.KernelPairs = append(rep.KernelPairs, kp)
	}
	for _, stem := range probeOrder {
		off, on := probesOff[stem], probesOn[stem]
		if off == nil || on == nil || off.n == 0 || on.n == 0 {
			continue
		}
		om, nm := off.sum/float64(off.n), on.sum/float64(on.n)
		pp := ProbePair{
			Name:     stem,
			OffNs:    om,
			OnNs:     nm,
			Overhead: nm / om,
		}
		if off.metrics != nil {
			pp.OffAllocs = off.metrics["allocs/op"]
		}
		if on.metrics != nil {
			pp.OnAllocs = on.metrics["allocs/op"]
		}
		rep.ProbePairs = append(rep.ProbePairs, pp)
	}

	for _, stem := range fleetOrder {
		sa, sh := standalone[stem], sharded[stem]
		if sa == nil || sh == nil || sa.n == 0 || sh.n == 0 {
			continue
		}
		am, hm := sa.sum/float64(sa.n), sh.sum/float64(sh.n)
		fp := FleetPair{
			Name:         stem,
			StandaloneNs: am,
			ShardedNs:    hm,
			Speedup:      am / hm,
		}
		if sa.metrics != nil {
			fp.Points = sa.metrics["points/op"]
		}
		rep.FleetPairs = append(rep.FleetPairs, fp)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runDiff implements `benchjson -diff old.json new.json [-tolerance F]`.
// Returns the process exit code: 0 when no paired speedup regressed past
// the tolerance, 1 on a regression, 2 on usage or read errors.
func runDiff(args []string) int {
	tol := 0.30
	var files []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-tolerance" || a == "--tolerance":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -tolerance needs a value")
				return 2
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 || v >= 1 {
				fmt.Fprintf(os.Stderr, "benchjson: -tolerance must be a fraction in [0, 1), got %q\n", args[i])
				return 2
			}
			tol = v
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "benchjson: unknown diff flag %q\n", a)
			return 2
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json [-tolerance F]")
		return 2
	}
	old, err := readReport(files[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	cur, err := readReport(files[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}

	type speedup struct {
		kind string
		old  float64
	}
	base := map[string]speedup{}
	for _, p := range old.Pairs {
		base["pair/"+p.Name] = speedup{"fresh/prepared", p.Speedup}
	}
	for _, p := range old.BatchPairs {
		base["batch/"+p.Name] = speedup{"serial/batch", p.Speedup}
	}
	for _, p := range old.KernelPairs {
		base["kernel/"+p.Name] = speedup{"workers1/workers8", p.Speedup}
	}
	for _, p := range old.FleetPairs {
		base["fleet/"+p.Name] = speedup{"standalone/sharded", p.Speedup}
	}
	// Probe pairs gate on the disabled variant's allocs/op (deterministic
	// per toolchain); the on/off time ratio is expected to hover at ~1.0x
	// and single-iteration CI smokes put tens of percent of noise on it,
	// so it is reported informationally rather than gated.
	baseProbeAllocs := map[string]float64{}
	for _, p := range old.ProbePairs {
		baseProbeAllocs["probes/"+p.Name] = p.OffAllocs
	}
	check := func(key, name string, now float64) bool {
		b, ok := base[key]
		if !ok || b.old <= 0 {
			fmt.Printf("NEW    %-40s speedup %.2fx (no baseline)\n", name, now)
			return true
		}
		floor := b.old * (1 - tol)
		if now < floor {
			fmt.Printf("REGRESS %-40s speedup %.2fx -> %.2fx (floor %.2fx at %.0f%% tolerance)\n",
				name, b.old, now, floor, 100*tol)
			return false
		}
		fmt.Printf("OK     %-40s speedup %.2fx -> %.2fx\n", name, b.old, now)
		return true
	}
	ok, compared := true, 0
	for _, p := range cur.Pairs {
		ok = check("pair/"+p.Name, p.Name, p.Speedup) && ok
		compared++
	}
	for _, p := range cur.BatchPairs {
		ok = check("batch/"+p.Name, p.Name, p.Speedup) && ok
		compared++
	}
	for _, p := range cur.KernelPairs {
		ok = check("kernel/"+p.Name, p.Name, p.Speedup) && ok
		compared++
	}
	for _, p := range cur.FleetPairs {
		ok = check("fleet/"+p.Name, p.Name, p.Speedup) && ok
		compared++
	}
	for _, p := range cur.ProbePairs {
		fmt.Printf("INFO   %-40s probe overhead %.2fx (not gated)\n", p.Name, p.Overhead)
		// Zero-alloc-when-disabled: allocs/op is deterministic per
		// toolchain, so the disabled variant may not allocate beyond the
		// baseline plus tolerance (which absorbs Go-version inlining
		// shifts, not feature regressions).
		if was, okb := baseProbeAllocs["probes/"+p.Name]; okb && was > 0 && p.OffAllocs > 0 {
			ceil := was * (1 + tol)
			if p.OffAllocs > ceil {
				fmt.Printf("REGRESS %-40s probes-off allocs/op %.0f -> %.0f (ceiling %.0f)\n",
					p.Name, was, p.OffAllocs, ceil)
				ok = false
			} else {
				fmt.Printf("OK     %-40s probes-off allocs/op %.0f -> %.0f\n", p.Name, was, p.OffAllocs)
			}
			compared++
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no speedup pairs in the new report — nothing compared")
		return 2
	}
	if !ok {
		return 1
	}
	return 0
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}
