// Command benchjson turns `go test -bench` output on stdin into a JSON
// report on stdout, pairing Fresh/Prepared benchmark variants and computing
// their speedups. It backs the `make bench-solve` target:
//
//	go test -bench '^BenchmarkSolve' -run '^$' . | go run ./cmd/benchjson > BENCH_solve.json
//
// Lines that are not benchmark results (headers, PASS/ok, metrics the
// benchmarks attach via ReportMetric) are carried into the report where
// relevant and otherwise ignored, so the tool is safe to run on the full
// `go test` output.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkSolveClosedLoopFresh-8   5   252909369 ns/op   10.00 outer-passes
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPart matches trailing custom metrics: "10.00 outer-passes".
var metricPart = regexp.MustCompile(`([\d.eE+-]+) ([\w%/-]+)`)

// Entry is one benchmark result.
type Entry struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Pair couples a Fresh benchmark with its Prepared twin.
type Pair struct {
	Name       string  `json:"name"`
	FreshNs    float64 `json:"fresh_ns_per_op"`
	PreparedNs float64 `json:"prepared_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// BatchPair couples a Serial benchmark with its Batch twin (the multi-RHS
// scaling pairs); Nodes and Lanes carry the scaling-curve coordinates when
// the benchmarks report them.
type BatchPair struct {
	Name     string  `json:"name"`
	SerialNs float64 `json:"serial_ns_per_op"`
	BatchNs  float64 `json:"batch_ns_per_op"`
	Speedup  float64 `json:"speedup"`
	Nodes    float64 `json:"nodes,omitempty"`
	Lanes    float64 `json:"lanes,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Entry     `json:"benchmarks"`
	Pairs      []Pair      `json:"pairs"`
	BatchPairs []BatchPair `json:"batch_pairs,omitempty"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{Name: strings.TrimPrefix(m[1], "Benchmark"), Iters: iters, NsPerOp: ns}
		for _, mm := range metricPart.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[mm[2]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	// Pair suffix-twinned variants by common stem: *Fresh with *Prepared
	// (the prepared-engine pairs) and *Serial with *Batch (the multi-RHS
	// scaling pairs). When -count ran a benchmark several times, the mean
	// ns/op of each variant is paired; scaling metrics (nodes, lanes) take
	// the last reported value.
	type acc struct {
		sum     float64
		n       int
		metrics map[string]float64
	}
	add := func(m map[string]*acc, order *[]string, other map[string]*acc, stem string, e Entry) {
		a := m[stem]
		if a == nil {
			if other[stem] == nil {
				*order = append(*order, stem)
			}
			a = &acc{}
			m[stem] = a
		}
		a.sum += e.NsPerOp
		a.n++
		if e.Metrics != nil {
			a.metrics = e.Metrics
		}
	}
	fresh, prepared := map[string]*acc{}, map[string]*acc{}
	serial, batch := map[string]*acc{}, map[string]*acc{}
	var order, batchOrder []string
	for _, e := range rep.Benchmarks {
		switch {
		case strings.HasSuffix(e.Name, "Fresh"):
			add(fresh, &order, prepared, strings.TrimSuffix(e.Name, "Fresh"), e)
		case strings.HasSuffix(e.Name, "Prepared"):
			add(prepared, &order, fresh, strings.TrimSuffix(e.Name, "Prepared"), e)
		case strings.HasSuffix(e.Name, "Serial"):
			add(serial, &batchOrder, batch, strings.TrimSuffix(e.Name, "Serial"), e)
		case strings.HasSuffix(e.Name, "Batch"):
			add(batch, &batchOrder, serial, strings.TrimSuffix(e.Name, "Batch"), e)
		}
	}
	for _, stem := range order {
		f, p := fresh[stem], prepared[stem]
		if f == nil || p == nil || f.n == 0 || p.n == 0 {
			continue
		}
		fm, pm := f.sum/float64(f.n), p.sum/float64(p.n)
		rep.Pairs = append(rep.Pairs, Pair{
			Name:       stem,
			FreshNs:    fm,
			PreparedNs: pm,
			Speedup:    fm / pm,
		})
	}
	for _, stem := range batchOrder {
		s, bt := serial[stem], batch[stem]
		if s == nil || bt == nil || s.n == 0 || bt.n == 0 {
			continue
		}
		sm, bm := s.sum/float64(s.n), bt.sum/float64(bt.n)
		bp := BatchPair{
			Name:     stem,
			SerialNs: sm,
			BatchNs:  bm,
			Speedup:  sm / bm,
		}
		if s.metrics != nil {
			bp.Nodes = s.metrics["nodes"]
			bp.Lanes = s.metrics["lanes"]
		}
		rep.BatchPairs = append(rep.BatchPairs, bp)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
