// Command vsdse runs the cross-layer design-space exploration: every
// combination of PDN kind, TSV topology, pad allocation and converter
// count is evaluated for area, noise, efficiency, EM lifetime and
// off-chip current, and the Pareto-efficient designs are reported.
//
// Usage:
//
//	vsdse [-layers N] [-imbalance F] [-grid N] [-all]
//	      [-metrics PATH] [-trace PATH] [-events PATH] [-serve ADDR] [-pprof ADDR]
//	      [-cpuprofile PATH] [-manifest PATH] [-postmortem DIR] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"voltstack/internal/explore"
	"voltstack/internal/telemetry"
)

func main() {
	layers := flag.Int("layers", 8, "number of stacked silicon layers")
	imbalance := flag.Float64("imbalance", 0.65, "workload imbalance for the noise/efficiency metrics")
	grid := flag.Int("grid", 16, "PDN mesh resolution (NxN)")
	all := flag.Bool("all", false, "print every feasible design, not only the Pareto set")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS, or VOLTSTACK_WORKERS if set)")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsdse:", err)
		os.Exit(1)
	}
	// fail routes error exits through flush: os.Exit skips deferred calls,
	// and flush is what restores stdout, stops the servers and writes the
	// manifest with the failure recorded.
	fail := func(code int, err error) {
		tf.RunManifest().SetExitError(err)
		flush()
		fmt.Fprintln(os.Stderr, "vsdse:", err)
		os.Exit(code)
	}

	space := explore.DefaultSpace()
	space.Layers = *layers
	space.Imbalance = *imbalance
	space.Params.GridNx, space.Params.GridNy = *grid, *grid
	space.Workers = *workers

	start := time.Now()
	res, err := space.Run()
	if err != nil {
		fail(1, err)
	}

	fmt.Printf("design space: %d layers, %.0f%% imbalance, %d designs evaluated (%d infeasible dropped)\n",
		*layers, 100**imbalance, len(res.Points)+res.Dropped, res.Dropped)
	fmt.Println()
	header := fmt.Sprintf("%-26s %8s %9s %6s %8s %8s %9s %6s",
		"design", "area%", "noise%Vdd", "eff%", "TSVlife", "C4life", "Iboard(A)", "pads")

	inPareto := map[int]bool{}
	for _, pi := range res.Pareto {
		inPareto[pi] = true
	}

	fmt.Println("Pareto-efficient designs (area↓ noise↓ eff↑ lifetimes↑):")
	fmt.Println(header)
	for _, pi := range res.Pareto {
		printRow(res.Points[pi])
	}

	if *all {
		fmt.Println()
		fmt.Println("dominated designs:")
		fmt.Println(header)
		for i, m := range res.Points {
			if !inPareto[i] {
				printRow(m)
			}
		}
	}
	fmt.Printf("\ndone in %.1fs\n", time.Since(start).Seconds())
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vsdse: telemetry:", err)
		os.Exit(1)
	}
}

func printRow(m *explore.Metrics) {
	fmt.Printf("%-26s %8.1f %9.2f %6.1f %8.2f %8.2f %9.2f %6d\n",
		m.Design.Name(), m.AreaOverheadPct, m.MaxIRDropPct,
		100*m.Efficiency, m.TSVLifetime, m.C4Lifetime, m.OffChipCurrentA, m.PowerPads)
}
