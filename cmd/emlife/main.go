// Command emlife compares the EM-induced lifetime of the C4 pad and TSV
// arrays between a regular and a voltage-stacked PDN at one design point.
//
// Usage:
//
//	emlife [-layers N] [-tsv dense|sparse|few] [-padfrac F] [-grid N] [-workers N]
//
// The regular and voltage-stacked scenarios are solved concurrently.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"voltstack/internal/core"
	"voltstack/internal/parallel"
	"voltstack/internal/pdngrid"
)

func main() {
	layers := flag.Int("layers", 8, "number of stacked silicon layers")
	tsvName := flag.String("tsv", "few", "TSV topology: dense, sparse or few")
	padFrac := flag.Float64("padfrac", 0.25, "fraction of C4 pad sites used for power")
	grid := flag.Int("grid", 32, "PDN mesh resolution (NxN)")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS, or VOLTSTACK_WORKERS if set)")
	flag.Parse()

	var tsv pdngrid.TSVTopology
	switch strings.ToLower(*tsvName) {
	case "dense":
		tsv = pdngrid.DenseTSV()
	case "sparse":
		tsv = pdngrid.SparseTSV()
	case "few":
		tsv = pdngrid.FewTSV()
	default:
		fmt.Fprintf(os.Stderr, "emlife: unknown TSV topology %q\n", *tsvName)
		os.Exit(2)
	}

	s := core.NewStudy()
	s.Params.GridNx, s.Params.GridNy = *grid, *grid
	s.Workers = *workers

	type point struct {
		name  string
		build func() (*pdngrid.PDN, error)
	}
	points := []point{
		{"regular", func() (*pdngrid.PDN, error) { return s.RegularPDN(*layers, tsv, *padFrac) }},
		{"voltage-stacked", func() (*pdngrid.PDN, error) { return s.VoltageStackedPDN(*layers, 4, tsv, *padFrac) }},
	}

	fmt.Printf("EM lifetime comparison: %d layers, %s TSV, %.0f%% power pads (all layers active)\n",
		*layers, tsv.Name, 100**padFrac)
	type res struct{ tsvLife, c4Life float64 }
	results, err := parallel.Map(context.Background(), parallel.NewPool(*workers), points, func(_ int, pt point) (res, error) {
		p, err := pt.build()
		if err != nil {
			return res{}, err
		}
		r, err := p.Solve(pdngrid.UniformActivities(*layers, s.Chip.NumCores(), 1))
		if err != nil {
			return res{}, err
		}
		tl, err := s.TSVLifetime(r)
		if err != nil {
			return res{}, err
		}
		cl, err := s.C4Lifetime(r)
		if err != nil {
			return res{}, err
		}
		return res{tl, cl}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "emlife:", err)
		os.Exit(1)
	}
	for i, pt := range points {
		fmt.Printf("  %-16s TSV-array lifetime %.3g, C4-array lifetime %.3g (arbitrary units)\n",
			pt.name, results[i].tsvLife, results[i].c4Life)
	}
	reg, vs := results[0], results[1]
	fmt.Printf("  V-S advantage: TSV %.2fx, C4 %.2fx\n",
		vs.tsvLife/reg.tsvLife, vs.c4Life/reg.c4Life)
}
