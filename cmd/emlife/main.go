// Command emlife compares the EM-induced lifetime of the C4 pad and TSV
// arrays between a regular and a voltage-stacked PDN at one design point.
//
// Usage:
//
//	emlife [-layers N] [-tsv dense|sparse|few] [-padfrac F] [-grid N] [-workers N]
//	       [-mc-trials N] [-metrics PATH] [-trace PATH] [-events PATH] [-serve ADDR]
//	       [-pprof ADDR] [-cpuprofile PATH] [-manifest PATH] [-postmortem DIR] [-progress]
//
// The regular and voltage-stacked scenarios are solved concurrently.
// -mc-trials additionally cross-checks each analytic lifetime with the
// Monte Carlo estimator at the given trial budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"voltstack/internal/core"
	"voltstack/internal/em"
	"voltstack/internal/parallel"
	"voltstack/internal/pdngrid"
	"voltstack/internal/telemetry"
	"voltstack/internal/units"
)

func main() {
	layers := flag.Int("layers", 8, "number of stacked silicon layers")
	tsvName := flag.String("tsv", "few", "TSV topology: dense, sparse or few")
	padFrac := flag.Float64("padfrac", 0.25, "fraction of C4 pad sites used for power")
	grid := flag.Int("grid", 32, "PDN mesh resolution (NxN)")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS, or VOLTSTACK_WORKERS if set)")
	mcTrials := flag.Int("mc-trials", 0, "cross-check lifetimes by Monte Carlo with this many trials (0: analytic only)")
	tf := telemetry.RegisterFlags()
	flag.Parse()

	flush, err := tf.Init()
	if err != nil {
		fmt.Fprintln(os.Stderr, "emlife:", err)
		os.Exit(1)
	}
	// fail routes error exits through flush: os.Exit skips deferred calls,
	// and flush is what restores stdout, stops the servers and writes the
	// manifest with the failure recorded.
	fail := func(code int, err error) {
		tf.RunManifest().SetExitError(err)
		flush()
		fmt.Fprintln(os.Stderr, "emlife:", err)
		os.Exit(code)
	}

	var tsv pdngrid.TSVTopology
	switch strings.ToLower(*tsvName) {
	case "dense":
		tsv = pdngrid.DenseTSV()
	case "sparse":
		tsv = pdngrid.SparseTSV()
	case "few":
		tsv = pdngrid.FewTSV()
	default:
		fail(2, fmt.Errorf("unknown TSV topology %q", *tsvName))
	}

	s := core.NewStudy()
	s.Params.GridNx, s.Params.GridNy = *grid, *grid
	s.Workers = *workers
	tf.RunManifest().AddSeed("study", s.Seed)

	type point struct {
		name  string
		build func() (*pdngrid.PDN, error)
	}
	points := []point{
		{"regular", func() (*pdngrid.PDN, error) { return s.RegularPDN(*layers, tsv, *padFrac) }},
		{"voltage-stacked", func() (*pdngrid.PDN, error) { return s.VoltageStackedPDN(*layers, 4, tsv, *padFrac) }},
	}

	fmt.Printf("EM lifetime comparison: %d layers, %s TSV, %.0f%% power pads (all layers active)\n",
		*layers, tsv.Name, 100**padFrac)
	type res struct{ tsvLife, c4Life, tsvMC, c4MC float64 }
	mc := func(currents []float64, bp em.BlackParams) (float64, error) {
		if *mcTrials < 1 {
			return 0, nil
		}
		g := em.NewGroup(bp.SigmaLog)
		tempK := units.CelsiusToKelvin(s.Params.TempCelsius)
		for _, c := range currents {
			g.AddConductor(bp, c, tempK)
		}
		return g.SimulateMedianLifetimeWorkers(*mcTrials, s.Seed, *workers)
	}
	results, err := parallel.Map(context.Background(), parallel.NewPool(*workers), points, func(_ int, pt point) (res, error) {
		p, err := pt.build()
		if err != nil {
			return res{}, err
		}
		r, err := p.Solve(pdngrid.UniformActivities(*layers, s.Chip.NumCores(), 1))
		if err != nil {
			return res{}, err
		}
		tl, err := s.TSVLifetime(r)
		if err != nil {
			return res{}, err
		}
		cl, err := s.C4Lifetime(r)
		if err != nil {
			return res{}, err
		}
		tmc, err := mc(r.TSVCurrents, s.EMTsv)
		if err != nil {
			return res{}, err
		}
		cmc, err := mc(r.PadCurrents, s.EMC4)
		if err != nil {
			return res{}, err
		}
		return res{tl, cl, tmc, cmc}, nil
	})
	if err != nil {
		fail(1, err)
	}
	for i, pt := range points {
		fmt.Printf("  %-16s TSV-array lifetime %.3g, C4-array lifetime %.3g (arbitrary units)\n",
			pt.name, results[i].tsvLife, results[i].c4Life)
		if *mcTrials > 0 {
			fmt.Printf("  %-16s Monte Carlo (%d trials): TSV %.3g, C4 %.3g\n",
				"", *mcTrials, results[i].tsvMC, results[i].c4MC)
		}
	}
	reg, vs := results[0], results[1]
	fmt.Printf("  V-S advantage: TSV %.2fx, C4 %.2fx\n",
		vs.tsvLife/reg.tsvLife, vs.c4Life/reg.c4Life)
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "emlife: telemetry:", err)
		os.Exit(1)
	}
}
