// Standalone-vs-sharded benchmark pair for the evaluation fleet. The same
// small sweep runs end to end over HTTP twice — once against a standalone
// daemon, once against a coordinator dispatching to two loopback workers —
// so the fleet's throughput gain (and its dispatch overhead) is directly
// measurable:
//
//	go test -bench 'BenchmarkSolveSweepFleet' -run '^$' .
//	make bench-solve   # rides in BENCH_solve.json as the fleet pair
//
// Each iteration perturbs the sweep's imbalance, which changes every
// per-point content address: no iteration is served from any cache, so the
// ratio is pure evaluation throughput, not cache behavior.
package voltstack_test

import (
	"context"
	"testing"
	"time"

	"voltstack/internal/fleet"
	"voltstack/internal/rescache"
	"voltstack/internal/server"
)

// benchFleetRequest is a 6-point sweep (4 VS designs + 2 regular-PDN
// baselines) on the 16×16 mesh — heavy enough per point that evaluation,
// not dispatch, dominates — evaluated serially per daemon so the
// standalone/sharded ratio reflects fleet parallelism alone.
func benchFleetRequest(imbalance float64) server.JobRequest {
	return server.JobRequest{
		Kind: server.KindSweep,
		Sweep: &server.SweepSpec{
			Layers:         4,
			Imbalance:      &imbalance,
			PadFractions:   []float64{0.25, 0.5},
			ConverterCount: []int{2, 4},
			TSVs:           []string{"dense"},
			GridNx:         16,
			GridNy:         16,
		},
		Workers: 1,
	}
}

func benchCache(b *testing.B) *rescache.Cache {
	b.Helper()
	c, err := rescache.New(rescache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchRunSweeps(b *testing.B, base string) {
	// Tight, capped polling: the measured quantity is sweep throughput,
	// not the wait loop's backoff schedule.
	c := &server.Client{Base: base, Backoff: server.Backoff{
		Initial: 2 * time.Millisecond, Max: 10 * time.Millisecond, Jitter: -1,
	}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A distinct imbalance per iteration defeats every cache tier.
		_, st, err := c.Run(ctx, benchFleetRequest(0.6+float64(i)*1e-4))
		if err != nil {
			b.Fatal(err)
		}
		if st.State != server.StateDone {
			b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
	}
	b.StopTimer()
	b.ReportMetric(6, "points/op")
}

// BenchmarkSolveSweepFleetStandalone is the baseline: the sweep submitted
// over loopback HTTP to one standalone daemon.
func BenchmarkSolveSweepFleetStandalone(b *testing.B) {
	mgr, err := server.NewManager(server.Config{Cache: benchCache(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := server.Start("127.0.0.1:0", mgr)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	benchRunSweeps(b, srv.URL())
}

// BenchmarkSolveSweepFleetSharded runs the identical sweep through a
// coordinator dispatching single-point units to two loopback workers.
func BenchmarkSolveSweepFleetSharded(b *testing.B) {
	cache := benchCache(b)
	coord := fleet.NewCoordinator(cache, fleet.CoordinatorConfig{
		Registry: fleet.NewRegistry(time.Hour),
		UnitSize: 1,
	})
	mgr, err := server.NewManager(server.Config{Cache: cache, Dispatcher: coord})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	mux := server.NewHandler(mgr)
	coord.Mount(mux)
	srv, err := server.StartHandler("127.0.0.1:0", mgr, mux)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	for _, name := range []string{"bw1", "bw2"} {
		wmgr, err := server.NewManager(server.Config{Cache: benchCache(b)})
		if err != nil {
			b.Fatal(err)
		}
		defer wmgr.Close()
		wmux := server.NewHandler(wmgr)
		wsrv, err := server.StartHandler("127.0.0.1:0", wmgr, wmux)
		if err != nil {
			b.Fatal(err)
		}
		defer wsrv.Close()
		agent := fleet.NewAgent(wmgr, fleet.AgentConfig{
			Name: name, Join: srv.URL(), Advertise: wsrv.URL(),
		})
		agent.Mount(wmux)
		if err := agent.BeatOnce(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	benchRunSweeps(b, srv.URL())
}
