package core

import (
	"fmt"
	"math"
	"strings"

	"voltstack/internal/em"
	"voltstack/internal/pdngrid"
	"voltstack/internal/units"
)

// ExtEMMonteCarloResult cross-checks the analytic first-failure lifetime
// (the CDF-product closed form behind every Fig. 5 number) against the
// Monte Carlo estimator at one design point. The two converge as trials
// grow; the relative gap is the sampling error a trial budget buys.
type ExtEMMonteCarloResult struct {
	Trials     int
	TSVClosed  float64 // analytic TSV-array lifetime (arbitrary units)
	TSVMonte   float64 // Monte Carlo estimate, same units
	TSVGapPct  float64 // |MC - closed| / closed, %
	C4Closed   float64
	C4Monte    float64
	C4GapPct   float64
	Conductors int // stressed conductors in the TSV group
}

// ExtEMMonteCarlo solves the 8-layer V-S design point (4 conv/core, Few
// TSV, full power pads) and compares closed-form and Monte Carlo lifetimes
// for both conductor arrays. Deterministic for a fixed study seed and any
// worker count.
func (s *Study) ExtEMMonteCarlo(trials int) (*ExtEMMonteCarloResult, error) {
	defer s.observe("ext-em-mc")()
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least 1 Monte Carlo trial")
	}
	p, err := s.VoltageStackedPDN(s.MaxLayers, 4, pdngrid.FewTSV(), 1.0)
	if err != nil {
		return nil, err
	}
	r, err := solveUniform(p)
	if err != nil {
		return nil, err
	}

	res := &ExtEMMonteCarloResult{Trials: trials}
	tempK := units.CelsiusToKelvin(s.Params.TempCelsius)
	eval := func(currents []float64, bp em.BlackParams) (closed, monte float64, n int, err error) {
		g := em.NewGroup(bp.SigmaLog)
		for _, c := range currents {
			g.AddConductor(bp, c, tempK)
		}
		if closed, err = g.MedianLifetime(); err != nil {
			return 0, 0, 0, err
		}
		if monte, err = g.SimulateMedianLifetime(trials, s.Seed); err != nil {
			return 0, 0, 0, err
		}
		return closed, monte, len(currents), nil
	}
	if res.TSVClosed, res.TSVMonte, res.Conductors, err = eval(r.TSVCurrents, s.EMTsv); err != nil {
		return nil, err
	}
	if res.C4Closed, res.C4Monte, _, err = eval(r.PadCurrents, s.EMC4); err != nil {
		return nil, err
	}
	res.TSVGapPct = 100 * math.Abs(res.TSVMonte-res.TSVClosed) / res.TSVClosed
	res.C4GapPct = 100 * math.Abs(res.C4Monte-res.C4Closed) / res.C4Closed
	return res, nil
}

// RenderExtEMMonteCarlo formats the closed-form vs. Monte Carlo check.
func RenderExtEMMonteCarlo(r *ExtEMMonteCarloResult) string {
	var b strings.Builder
	b.WriteString("Extension: EM lifetime, closed form vs. Monte Carlo (8-layer V-S, Few TSV)\n")
	fmt.Fprintf(&b, "  %d trials over %d stressed TSV conductors\n", r.Trials, r.Conductors)
	fmt.Fprintf(&b, "  TSV array: closed %.4g, Monte Carlo %.4g (gap %.2f%%)\n", r.TSVClosed, r.TSVMonte, r.TSVGapPct)
	fmt.Fprintf(&b, "  C4 array:  closed %.4g, Monte Carlo %.4g (gap %.2f%%)\n", r.C4Closed, r.C4Monte, r.C4GapPct)
	return b.String()
}
