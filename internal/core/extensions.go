package core

import (
	"fmt"
	"strings"

	"voltstack/internal/pdngrid"
	"voltstack/internal/sc"
	"voltstack/internal/sched"
)

// The experiments in this file go beyond the paper's evaluation: they are
// the extensions the paper motivates but defers (inductive converters,
// closed-loop control at system level, stack-aware scheduling) plus a
// transient-noise analysis using the RLC elements VoltSpot models but the
// paper's noise metric (DC IR drop) does not exercise.

// ---------------------------------------------------- transient extension

// ExtTransientResult compares first-droop transient noise between the
// equal-area V-S and regular designs under a synchronized load step.
type ExtTransientResult struct {
	RegularFirstDroopPct float64
	VSFirstDroopPct      float64
	RegularSettledPct    float64
	VSSettledPct         float64
	// Decap sensitivity: first droop of the regular PDN at 1x and 4x the
	// default on-die decap budget.
	RegularDroop1xPct float64
	RegularDroop4xPct float64
}

// ExtTransient runs the load-step comparison on 4-layer stacks (kept
// moderate so the run stays interactive).
func (s *Study) ExtTransient() (*ExtTransientResult, error) {
	const layers = 4
	tc := pdngrid.DefaultTransient()
	tc.Steps = 1200

	reg, err := s.RegularPDN(layers, pdngrid.DenseTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rr, err := reg.SolveTransient(tc)
	if err != nil {
		return nil, err
	}
	vs, err := s.VoltageStackedPDN(layers, 8, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rv, err := vs.SolveTransient(tc)
	if err != nil {
		return nil, err
	}

	big := tc
	big.DecapPerArea *= 4
	rrBig, err := reg.SolveTransient(big)
	if err != nil {
		return nil, err
	}

	return &ExtTransientResult{
		RegularFirstDroopPct: 100 * rr.WorstDroopFrac,
		VSFirstDroopPct:      100 * rv.WorstDroopFrac,
		RegularSettledPct:    100 * rr.FinalDroopFrac,
		VSSettledPct:         100 * rv.FinalDroopFrac,
		RegularDroop1xPct:    100 * rr.WorstDroopFrac,
		RegularDroop4xPct:    100 * rrBig.WorstDroopFrac,
	}, nil
}

// RenderExtTransient formats the transient extension.
func RenderExtTransient(r *ExtTransientResult) string {
	var b strings.Builder
	b.WriteString("Extension: transient (RLC) load-step noise, 4-layer stacks, equal-area designs\n")
	fmt.Fprintf(&b, "  regular PDN first droop: %.2f%% Vdd (%.2f%% at window end, still ringing)\n",
		r.RegularFirstDroopPct, r.RegularSettledPct)
	fmt.Fprintf(&b, "  V-S PDN first droop:     %.2f%% Vdd (%.2f%% at window end)\n",
		r.VSFirstDroopPct, r.VSSettledPct)
	fmt.Fprintf(&b, "  -> charge recycling cuts the Ldi/dt kick: the stack's off-chip current step is ~1/N\n")
	fmt.Fprintf(&b, "  regular droop at 1x / 4x on-die decap: %.2f%% / %.2f%% Vdd\n",
		r.RegularDroop1xPct, r.RegularDroop4xPct)
	return b.String()
}

// ---------------------------------------------------- converter extension

// ExtConverters compares the paper's SC cell against an integrated buck.
func (s *Study) ExtConverters() []sc.ConverterComparison {
	return sc.CompareWithBuck(s.Converter, sc.DefaultBuck28nm(), sc.OpenLoop{},
		[]float64{10, 30, 50, 70, 90})
}

// RenderExtConverters formats the SC-vs-buck comparison.
func RenderExtConverters(rows []sc.ConverterComparison) string {
	var b strings.Builder
	b.WriteString("Extension: SC cell vs. fully integrated buck (paper future work; Steyaert survey)\n")
	b.WriteString("  Load(mA)  SC eff  Buck eff\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8.0f %6.1f%% %8.1f%%\n", r.LoadMA, 100*r.SCEff, 100*r.BuckEff)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "  area per converter: SC (trench) %.3f mm², buck %.3f mm² (%.0fx)\n",
			rows[0].SCAreaMM2, rows[0].BuckAreaMM2, rows[0].BuckAreaMM2/rows[0].SCAreaMM2)
	}
	return b.String()
}

// ---------------------------------------------------- scheduling extension

// ExtSchedulingResult quantifies the paper's closing suggestion: placing
// similar jobs in the same core stack reduces imbalance and with it the
// stress on the SC converters. (Interestingly, chip-level max IR drop is
// only mildly affected by random placement — uncorrelated per-stack
// mismatches cancel laterally across the die — but the *per-converter*
// current, which sets the converter allocation and its 100 mA rating, is
// driven entirely by the worst stack.)
type SchedPolicyResult struct {
	Policy        string
	MeanImbalance float64 // mean adjacent-layer dynamic imbalance
	MaxIRPct      float64
	MaxConvMA     float64
	OverLimit     bool
}

// ExtSchedulingResult compares scheduling policies on the lean
// 2-converter-per-core V-S design.
type ExtSchedulingResult struct {
	Policies []SchedPolicyResult
}

// ExtScheduling assigns a mixed Parsec batch to the 8-layer stack under
// three policies — random, stack-aware (similar jobs per vertical column)
// and layer-banded (similar jobs per layer) — and solves the V-S PDN
// under each. A lean 2-converter allocation shows how much scheduling
// relaxes the converter provisioning.
func (s *Study) ExtScheduling() (*ExtSchedulingResult, error) {
	layers := s.MaxLayers
	cores := s.Chip.NumCores()
	jobs := sched.JobsFromSuite(s.Workloads(), layers*cores, s.Seed)

	type policy struct {
		name  string
		build func() (*sched.Assignment, error)
	}
	policies := []policy{
		{"random", func() (*sched.Assignment, error) { return sched.Random(jobs, layers, cores, s.Seed+1) }},
		{"stack-aware", func() (*sched.Assignment, error) { return sched.StackAware(jobs, layers, cores) }},
		{"layer-banded", func() (*sched.Assignment, error) { return sched.LayerBanded(jobs, layers, cores) }},
	}

	p, err := s.VoltageStackedPDN(layers, 2, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	res := &ExtSchedulingResult{}
	for _, pol := range policies {
		a, err := pol.build()
		if err != nil {
			return nil, err
		}
		r, err := p.Solve(a.Activities())
		if err != nil {
			return nil, err
		}
		res.Policies = append(res.Policies, SchedPolicyResult{
			Policy:        pol.name,
			MeanImbalance: a.MeanStackImbalance(),
			MaxIRPct:      100 * r.MaxIRDropFrac,
			MaxConvMA:     1000 * r.MaxConverterCurrent,
			OverLimit:     r.OverLimit,
		})
	}
	return res, nil
}

// RenderExtScheduling formats the scheduling extension.
func RenderExtScheduling(r *ExtSchedulingResult) string {
	var b strings.Builder
	b.WriteString("Extension: core-stack-aware scheduling (paper Sec. 5.2 suggestion), 8-layer V-S PDN, 2 conv/core\n")
	b.WriteString("  policy        mean adj-layer imb   max IR drop   worst converter\n")
	for _, p := range r.Policies {
		status := ""
		if p.OverLimit {
			status = "  OVER RATING"
		}
		fmt.Fprintf(&b, "  %-13s %16.0f%% %12.2f%% %13.1f mA%s\n",
			p.Policy, 100*p.MeanImbalance, p.MaxIRPct, p.MaxConvMA, status)
	}
	b.WriteString("  -> stack-aware placement (similar jobs per vertical column) minimizes converter\n")
	b.WriteString("     stress, confirming the paper's suggestion. layer-banded placement is a\n")
	b.WriteString("     cautionary result: a coherent vertical activity gradient makes every\n")
	b.WriteString("     mismatch push the intermediate rails the same way, so offsets accumulate\n")
	b.WriteString("     across the stack — far worse than random even with smaller per-pair imbalance\n")
	return b.String()
}
