package core

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestCSVFig3(t *testing.T) {
	pts := []Fig3Point{{LoadMA: 10, ModelEff: 0.45, SimEff: 0.451, ModelDropMV: 6, SimDropMV: 12.4}}
	rows := parseCSV(t, CSVFig3(pts))
	if len(rows) != 2 || len(rows[0]) != 5 {
		t.Fatalf("shape %dx%d", len(rows), len(rows[0]))
	}
	if rows[1][0] != "10" || rows[1][1] != "0.45" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestCSVFig5(t *testing.T) {
	fig := &Fig5{
		Layers: []int{2, 4},
		Series: []Fig5Series{
			{Label: "Reg", Values: []float64{1.5, 0.7}},
			{Label: "V-S", Values: []float64{1, 0.98}},
		},
	}
	rows := parseCSV(t, CSVFig5(fig))
	if len(rows) != 3 || rows[0][1] != "Reg" || rows[2][2] != "0.98" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCSVFig6NaNBecomesEmpty(t *testing.T) {
	fig := &Fig6{
		Imbalances:   []float64{0, 0.5},
		VS:           map[int][]float64{2: {1.0, math.NaN()}},
		RegularIRPct: map[string]float64{"Dense": 4.9},
	}
	rows := parseCSV(t, CSVFig6(fig))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2][1] != "" {
		t.Errorf("over-limit point should serialize empty, got %q", rows[2][1])
	}
	if rows[1][2] != "4.9" || rows[2][2] != "4.9" {
		t.Errorf("regular reference column wrong: %v", rows)
	}
}

func TestCSVFig7And8EndToEnd(t *testing.T) {
	s := coarseStudy()
	rows := parseCSV(t, CSVFig7(s.Fig7()))
	if len(rows) != 14 { // header + 13 apps
		t.Errorf("fig7 rows = %d", len(rows))
	}
	fig8 := &Fig8{
		Imbalances: []float64{0.1},
		VS:         map[int][]float64{2: {0.95}, 8: {0.84}},
		RegularSC:  []float64{0.80},
	}
	r8 := parseCSV(t, CSVFig8(fig8))
	if len(r8) != 2 || r8[0][len(r8[0])-1] != "reg_sc_eff" {
		t.Errorf("fig8 rows = %v", r8)
	}
	if r8[1][1] != "0.95" || r8[1][2] != "0.84" || r8[1][3] != "0.8" {
		t.Errorf("fig8 data = %v", r8[1])
	}
}
