package core

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CSV emitters: every figure can also be exported in machine-readable form
// for external plotting. Columns mirror the paper's axes.

func writeCSV(rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// csv.Writer on a strings.Builder cannot fail.
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

func f(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// CSVFig3 renders a converter-validation sweep.
func CSVFig3(pts []Fig3Point) string {
	rows := [][]string{{"load_mA", "model_eff", "sim_eff", "model_drop_mV", "sim_drop_mV"}}
	for _, p := range pts {
		rows = append(rows, []string{f(p.LoadMA), f(p.ModelEff), f(p.SimEff), f(p.ModelDropMV), f(p.SimDropMV)})
	}
	return writeCSV(rows)
}

// CSVFig5 renders an EM-lifetime figure: one row per layer count, one
// column per series.
func CSVFig5(fig *Fig5) string {
	header := []string{"layers"}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, l := range fig.Layers {
		row := []string{strconv.Itoa(l)}
		for _, s := range fig.Series {
			row = append(row, f(s.Values[i]))
		}
		rows = append(rows, row)
	}
	return writeCSV(rows)
}

// CSVFig6 renders the noise sweep: imbalance rows, converter-count
// columns, plus the regular reference lines as constant columns.
func CSVFig6(fig *Fig6) string {
	var counts []int
	for n := range fig.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	var regs []string
	for name := range fig.RegularIRPct {
		regs = append(regs, name)
	}
	sort.Strings(regs)

	header := []string{"imbalance"}
	for _, n := range counts {
		header = append(header, fmt.Sprintf("vs_%dconv_ir_pct", n))
	}
	for _, name := range regs {
		header = append(header, fmt.Sprintf("reg_%s_ir_pct", strings.ToLower(name)))
	}
	rows := [][]string{header}
	for i, imb := range fig.Imbalances {
		row := []string{f(imb)}
		for _, n := range counts {
			row = append(row, f(fig.VS[n][i]))
		}
		for _, name := range regs {
			row = append(row, f(fig.RegularIRPct[name]))
		}
		rows = append(rows, row)
	}
	return writeCSV(rows)
}

// CSVFig7 renders the workload box-plot statistics.
func CSVFig7(fig *Fig7) string {
	rows := [][]string{{"app", "min", "q1", "median", "q3", "max", "max_imbalance"}}
	for _, r := range fig.Rows {
		rows = append(rows, []string{
			r.App, f(r.Stats.Min), f(r.Stats.Q1), f(r.Stats.Median),
			f(r.Stats.Q3), f(r.Stats.Max), f(r.MaxImbalance),
		})
	}
	return writeCSV(rows)
}

// CSVFig8 renders the efficiency sweep.
func CSVFig8(fig *Fig8) string {
	var counts []int
	for n := range fig.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	header := []string{"imbalance"}
	for _, n := range counts {
		header = append(header, fmt.Sprintf("vs_%dconv_eff", n))
	}
	header = append(header, "reg_sc_eff")
	rows := [][]string{header}
	for i, imb := range fig.Imbalances {
		row := []string{f(imb)}
		for _, n := range counts {
			row = append(row, f(fig.VS[n][i]))
		}
		row = append(row, f(fig.RegularSC[i]))
		rows = append(rows, row)
	}
	return writeCSV(rows)
}
