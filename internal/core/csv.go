package core

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CSV emitters: every figure can also be exported in machine-readable form
// for external plotting. Columns mirror the paper's axes. ParseCSV is the
// inverse: it reads an emitted artifact (or any CSV of the same shape)
// back into a table for regression diffing and downstream tooling.

func writeCSV(rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// csv.Writer on a strings.Builder cannot fail.
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

func f(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// CSVTable is a parsed CSV artifact: a header row plus rectangular data
// rows (every row has exactly len(Header) fields).
type CSVTable struct {
	Header []string
	Rows   [][]string
}

// ParseCSV parses one CSV document as emitted by the CSV* renderers: a
// header row followed by data rows of the same width. Malformed input —
// bare quotes, ragged rows, an empty document — returns an error; the
// parser never panics.
func ParseCSV(s string) (*CSVTable, error) {
	r := csv.NewReader(strings.NewReader(s))
	r.FieldsPerRecord = 0 // first record fixes the width; ragged rows error
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: parse csv: %v", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("core: parse csv: empty document")
	}
	if len(records[0]) == 0 {
		return nil, fmt.Errorf("core: parse csv: empty header")
	}
	return &CSVTable{Header: records[0], Rows: records[1:]}, nil
}

// Col returns the index of the named header column, or an error.
func (t *CSVTable) Col(name string) (int, error) {
	for i, h := range t.Header {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: csv: no column %q", name)
}

// Float reads the numeric value at (row, col). An empty field decodes as
// NaN — the emitters serialize NaN that way (over-limit figure points).
// Out-of-range indices and non-numeric or overflowing fields error.
func (t *CSVTable) Float(row, col int) (float64, error) {
	if row < 0 || row >= len(t.Rows) {
		return 0, fmt.Errorf("core: csv: row %d outside [0,%d)", row, len(t.Rows))
	}
	if col < 0 || col >= len(t.Header) {
		return 0, fmt.Errorf("core: csv: col %d outside [0,%d)", col, len(t.Header))
	}
	field := t.Rows[row][col]
	if field == "" {
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("core: csv: row %d col %d: %v", row, col, err)
	}
	return v, nil
}

// CSVFig3 renders a converter-validation sweep.
func CSVFig3(pts []Fig3Point) string {
	rows := [][]string{{"load_mA", "model_eff", "sim_eff", "model_drop_mV", "sim_drop_mV"}}
	for _, p := range pts {
		rows = append(rows, []string{f(p.LoadMA), f(p.ModelEff), f(p.SimEff), f(p.ModelDropMV), f(p.SimDropMV)})
	}
	return writeCSV(rows)
}

// CSVFig5 renders an EM-lifetime figure: one row per layer count, one
// column per series.
func CSVFig5(fig *Fig5) string {
	header := []string{"layers"}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, l := range fig.Layers {
		row := []string{strconv.Itoa(l)}
		for _, s := range fig.Series {
			row = append(row, f(s.Values[i]))
		}
		rows = append(rows, row)
	}
	return writeCSV(rows)
}

// CSVFig6 renders the noise sweep: imbalance rows, converter-count
// columns, plus the regular reference lines as constant columns.
func CSVFig6(fig *Fig6) string {
	var counts []int
	for n := range fig.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	var regs []string
	for name := range fig.RegularIRPct {
		regs = append(regs, name)
	}
	sort.Strings(regs)

	header := []string{"imbalance"}
	for _, n := range counts {
		header = append(header, fmt.Sprintf("vs_%dconv_ir_pct", n))
	}
	for _, name := range regs {
		header = append(header, fmt.Sprintf("reg_%s_ir_pct", strings.ToLower(name)))
	}
	rows := [][]string{header}
	for i, imb := range fig.Imbalances {
		row := []string{f(imb)}
		for _, n := range counts {
			row = append(row, f(fig.VS[n][i]))
		}
		for _, name := range regs {
			row = append(row, f(fig.RegularIRPct[name]))
		}
		rows = append(rows, row)
	}
	return writeCSV(rows)
}

// CSVFig7 renders the workload box-plot statistics.
func CSVFig7(fig *Fig7) string {
	rows := [][]string{{"app", "min", "q1", "median", "q3", "max", "max_imbalance"}}
	for _, r := range fig.Rows {
		rows = append(rows, []string{
			r.App, f(r.Stats.Min), f(r.Stats.Q1), f(r.Stats.Median),
			f(r.Stats.Q3), f(r.Stats.Max), f(r.MaxImbalance),
		})
	}
	return writeCSV(rows)
}

// CSVFig8 renders the efficiency sweep.
func CSVFig8(fig *Fig8) string {
	var counts []int
	for n := range fig.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	header := []string{"imbalance"}
	for _, n := range counts {
		header = append(header, fmt.Sprintf("vs_%dconv_eff", n))
	}
	header = append(header, "reg_sc_eff")
	rows := [][]string{header}
	for i, imb := range fig.Imbalances {
		row := []string{f(imb)}
		for _, n := range counts {
			row = append(row, f(fig.VS[n][i]))
		}
		row = append(row, f(fig.RegularSC[i]))
		rows = append(rows, row)
	}
	return writeCSV(rows)
}
