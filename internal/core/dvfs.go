package core

import (
	"fmt"
	"strings"

	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
)

// ExtDVFSResult evaluates an alternative to converter provisioning: slow
// the FAST layers down (voltage/frequency scaling) until they match the
// slow layers, removing the imbalance the converters would otherwise
// shuttle. The currency of the comparison is the fast layers' lost
// performance versus the converter area that buys the same noise.
type ExtDVFSResult struct {
	ImbalancePct float64
	// DVFS operating point that equalizes layer power.
	VddScaled  float64 // scaled supply of the fast layers (V)
	FreqScaled float64 // their relative clock (fraction of nominal)
	PerfLoss   float64 // fraction of fast-layer throughput given up
	// Noise of the balanced stack vs. the imbalanced one (2 conv/core).
	ImbalancedIRPct float64
	BalancedIRPct   float64
	// The converter alternative: extra area (as % of a core) to reach the
	// same noise with 8 conv/core at full speed.
	ConverterAltIRPct   float64
	ConverterAltAreaPct float64
}

// ExtDVFS evaluates the DVFS-balancing tradeoff at the application-average
// imbalance on the lean 2-converter design.
func (s *Study) ExtDVFS() (*ExtDVFSResult, error) {
	const imbalance = 0.65
	model := power.DefaultAlphaPower()
	core := s.Chip.Core

	// Find the (V, f) point at which a fully active core's dynamic power
	// matches the slow layers' (1-x) level: (v/Vnom)²·(f(v)/fnom) = 1-x,
	// with f pinned to the alpha-power fmax at v. Bisection on v.
	target := 1 - imbalance
	lo, hi := model.Vt+0.05, core.Vdd
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		vr := mid / core.Vdd
		scale := vr * vr * model.FreqScale(mid, core.Vdd)
		if scale > target {
			hi = mid
		} else {
			lo = mid
		}
	}
	v := (lo + hi) / 2
	fScale := model.FreqScale(v, core.Vdd)

	res := &ExtDVFSResult{
		ImbalancePct: 100 * imbalance,
		VddScaled:    v,
		FreqScaled:   fScale,
		PerfLoss:     1 - fScale,
	}

	lean, err := s.VoltageStackedPDN(s.MaxLayers, 2, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rImb, err := solveInterleaved(lean, imbalance)
	if err != nil {
		return nil, err
	}
	res.ImbalancedIRPct = 100 * rImb.MaxIRDropFrac
	// Balanced: every layer at the slow level.
	rBal, err := lean.Solve(pdngrid.UniformActivities(s.MaxLayers, s.Chip.NumCores(), 1-imbalance))
	if err != nil {
		return nil, err
	}
	res.BalancedIRPct = 100 * rBal.MaxIRDropFrac

	// The converter alternative: keep full speed, add converters.
	rich, err := s.VoltageStackedPDN(s.MaxLayers, 8, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rRich, err := solveInterleaved(rich, imbalance)
	if err != nil {
		return nil, err
	}
	res.ConverterAltIRPct = 100 * rRich.MaxIRDropFrac
	res.ConverterAltAreaPct = 100 * 6 * s.Converter.Area() / core.Area // 6 extra converters
	return res, nil
}

// RenderExtDVFS formats the DVFS-balancing comparison.
func RenderExtDVFS(r *ExtDVFSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: DVFS balancing vs. converter provisioning, 8 layers, %.0f%% imbalance\n", r.ImbalancePct)
	fmt.Fprintf(&b, "  DVFS route: slow the fast layers to %.2f V / %.0f%% clock -> %.0f%% of their\n",
		r.VddScaled, 100*r.FreqScaled, 100*r.PerfLoss)
	fmt.Fprintf(&b, "              throughput lost; noise %.2f%% -> %.2f%% Vdd on the lean 2-conv design\n",
		r.ImbalancedIRPct, r.BalancedIRPct)
	fmt.Fprintf(&b, "  converter route: stay at full speed, add 6 converters/core (%.1f%% core area);\n",
		r.ConverterAltAreaPct)
	fmt.Fprintf(&b, "              noise %.2f%% Vdd with zero performance loss\n", r.ConverterAltIRPct)
	b.WriteString("  -> two real knobs: DVFS erases the imbalance itself (lowest noise) but pays\n")
	b.WriteString("     a third of the fast layers' throughput; converters keep full speed for ~3%\n")
	b.WriteString("     area each but only absorb — not remove — the differential current\n")
	return b.String()
}
