package core

import (
	"fmt"
	"strings"

	"voltstack/internal/floorplan"
	"voltstack/internal/pdngrid"
	"voltstack/internal/thermal"
)

// ScalingRow is one stack depth in the many-layer scaling study.
type ScalingRow struct {
	Layers int
	// ThermallyFeasible under volumetric (micro-channel) cooling.
	ThermallyFeasible bool
	HotspotC          float64
	// Regular PDN stress.
	RegOffChipA float64 // board current at Vdd
	RegMaxPadMA float64 // hottest C4 pad (mA)
	RegMaxIRPct float64
	RegTSVLife  float64 // normalized to the 8-layer V-S point
	// Voltage-stacked alternative (4 conv/core, Few TSV).
	VSOffChipA float64 // board current at N·Vdd
	VSMaxIRPct float64
	VSTSVLife  float64
}

// ExtScalingResult is the many-layer exploration the paper's introduction
// motivates: once micro-channel cooling removes the thermal ceiling, how
// do the two power-delivery schemes scale to 12, 16, 24 layers?
type ExtScalingResult struct {
	Rows []ScalingRow
}

// ExtScaling evaluates stacks beyond the air-cooled limit under
// volumetric cooling.
func (s *Study) ExtScaling() (*ExtScalingResult, error) {
	layerCounts := []int{8, 12, 16, 24}
	mc := thermal.DefaultMicrochannel()

	// Thermal inputs (same per-layer power map at any depth).
	die := s.Chip.Die()
	tcfg := thermal.DefaultConfig(die, 8)
	fp, err := s.Chip.Floorplan()
	if err != nil {
		return nil, err
	}
	acts := make([]float64, s.Chip.NumCores())
	for i := range acts {
		acts[i] = 1
	}
	pm, err := s.Chip.PowerMap(acts)
	if err != nil {
		return nil, err
	}
	raster := floorplan.NewRaster(die, tcfg.Nx, tcfg.Ny)
	cells, err := raster.Distribute(fp.Blocks, pm)
	if err != nil {
		return nil, err
	}

	// Normalization base: the 8-layer V-S TSV lifetime.
	base, err := s.tsvLifeAt(pdngrid.VoltageStacked, 8)
	if err != nil {
		return nil, err
	}
	if err := checkPositive("scaling base lifetime", base); err != nil {
		return nil, err
	}

	res := &ExtScalingResult{}
	for _, layers := range layerCounts {
		row := ScalingRow{Layers: layers}

		cfg := tcfg
		cfg.Layers = layers
		maps := make([][]float64, layers)
		for i := range maps {
			maps[i] = cells
		}
		tr, err := thermal.SolveMicrochannel(cfg, mc, maps)
		if err != nil {
			return nil, err
		}
		row.HotspotC = tr.MaxC
		row.ThermallyFeasible = tr.MaxC < 100

		reg, err := s.RegularPDN(layers, pdngrid.FewTSV(), 0.5)
		if err != nil {
			return nil, err
		}
		rr, err := solveUniform(reg)
		if err != nil {
			return nil, err
		}
		row.RegOffChipA = rr.InputPower / s.Params.Vdd
		row.RegMaxIRPct = 100 * rr.MaxIRDropFrac
		row.RegMaxPadMA = 1000 * maxOf(rr.PadCurrents)
		if life, err := s.TSVLifetime(rr); err == nil {
			row.RegTSVLife = life / base
		} else {
			return nil, err
		}

		vs, err := s.VoltageStackedPDN(layers, 4, pdngrid.FewTSV(), 0.5)
		if err != nil {
			return nil, err
		}
		rv, err := solveUniform(vs)
		if err != nil {
			return nil, err
		}
		row.VSOffChipA = rv.InputPower / (s.Params.Vdd * float64(layers))
		row.VSMaxIRPct = 100 * rv.MaxIRDropFrac
		if life, err := s.TSVLifetime(rv); err == nil {
			row.VSTSVLife = life / base
		} else {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (s *Study) tsvLifeAt(kind pdngrid.Kind, layers int) (float64, error) {
	var p *pdngrid.PDN
	var err error
	if kind == pdngrid.Regular {
		p, err = s.RegularPDN(layers, pdngrid.FewTSV(), 0.5)
	} else {
		p, err = s.VoltageStackedPDN(layers, 4, pdngrid.FewTSV(), 0.5)
	}
	if err != nil {
		return 0, err
	}
	r, err := solveUniform(p)
	if err != nil {
		return 0, err
	}
	return s.TSVLifetime(r)
}

func maxOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// RenderExtScaling formats the many-layer scaling study.
func RenderExtScaling(r *ExtScalingResult) string {
	var b strings.Builder
	b.WriteString("Extension: many-layer scaling under micro-channel (volumetric) cooling\n")
	b.WriteString("  layers  hotspot  | regular: Iboard  maxPad   IR%   TSVlife | V-S: Iboard   IR%   TSVlife\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6d %7.0fC | %13.1fA %6.0fmA %5.1f%% %8.2f | %9.1fA %5.1f%% %8.2f\n",
			row.Layers, row.HotspotC,
			row.RegOffChipA, row.RegMaxPadMA, row.RegMaxIRPct, row.RegTSVLife,
			row.VSOffChipA, row.VSMaxIRPct, row.VSTSVLife)
	}
	b.WriteString("  (TSV lifetimes normalized to the 8-layer V-S point)\n")
	b.WriteString("  -> volumetric cooling removes the thermal ceiling, and exactly as the paper's\n")
	b.WriteString("     introduction argues, power delivery becomes the wall: the regular PDN's\n")
	b.WriteString("     board current, pad stress and noise grow with N while the stack's off-chip\n")
	b.WriteString("     current and lifetime stay flat\n")
	return b.String()
}
