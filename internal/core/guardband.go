package core

import (
	"fmt"
	"strings"

	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
)

// GuardbandRow translates one design's voltage noise into designer costs.
type GuardbandRow struct {
	Design        string
	MaxDroopPct   float64 // % Vdd, from the PDN solve
	FreqLossPct   float64 // clock slowdown if the droop is absorbed in timing
	PowerOverPct  float64 // dynamic-power overhead if the supply is raised instead
	PDNEfficiency float64 // delivery efficiency of the design itself
}

// ExtGuardbandResult compares the equal-area designs at the
// application-average imbalance in end-to-end cost terms.
type ExtGuardbandResult struct {
	ImbalancePct float64
	Rows         []GuardbandRow
}

// ExtGuardband evaluates the 8-layer equal-area comparison (regular Dense
// vs. V-S Few + 8 conv/core) at the 65 % application-average imbalance
// and converts each design's worst droop into the two guardband costs
// via the alpha-power delay model — the "so what" of Fig. 6 in
// performance/energy units.
func (s *Study) ExtGuardband() (*ExtGuardbandResult, error) {
	const imbalance = 0.65
	model := power.DefaultAlphaPower()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	res := &ExtGuardbandResult{ImbalancePct: 100 * imbalance}

	add := func(name string, droopFrac, eff float64) {
		res.Rows = append(res.Rows, GuardbandRow{
			Design:        name,
			MaxDroopPct:   100 * droopFrac,
			FreqLossPct:   100 * model.FrequencyLossFrac(droopFrac, s.Params.Vdd),
			PowerOverPct:  100 * power.PowerOverheadFrac(droopFrac),
			PDNEfficiency: eff,
		})
	}

	reg, err := s.RegularPDN(s.MaxLayers, pdngrid.DenseTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rr, err := solveUniform(reg) // the regular PDN's worst case
	if err != nil {
		return nil, err
	}
	add("regular, Dense TSV", rr.MaxIRDropFrac, rr.Efficiency)

	vs, err := s.VoltageStackedPDN(s.MaxLayers, 8, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rv, err := solveInterleaved(vs, imbalance)
	if err != nil {
		return nil, err
	}
	add("V-S, Few TSV, 8 conv/core", rv.MaxIRDropFrac, rv.Efficiency)
	return res, nil
}

// RenderExtGuardband formats the guardband comparison.
func RenderExtGuardband(r *ExtGuardbandResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: voltage-guardband cost of PDN noise (alpha-power model), 8 layers, %.0f%% imbalance\n", r.ImbalancePct)
	b.WriteString("  design                      max droop   freq loss   or supply-raise power   PDN eff\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-26s %9.2f%% %10.1f%% %21.1f%% %8.1f%%\n",
			row.Design, row.MaxDroopPct, row.FreqLossPct, row.PowerOverPct, 100*row.PDNEfficiency)
	}
	b.WriteString("  -> at the application-average imbalance the equal-area designs pay nearly\n")
	b.WriteString("     the same timing/voltage guardband (~1 point apart); the V-S design trades\n")
	b.WriteString("     open-loop converter efficiency (recoverable with closed-loop control) for\n")
	b.WriteString("     its ~5x EM lifetime and ~8x off-chip current reductions\n")
	return b.String()
}
