package core

import (
	"fmt"
	"sort"
	"strings"

	"voltstack/internal/pdngrid"
	"voltstack/internal/workload"
)

// ExtTraceNoiseResult is the time-domain noise study: instead of a single
// worst-case pattern, the V-S PDN is driven by Markov phase traces of the
// Parsec mix and the resulting droop distribution is reported — the
// quasi-static generalization of the paper's statistical sampling.
type ExtTraceNoiseResult struct {
	Steps int
	// Droop distribution over the trace, % Vdd.
	P50, P95, Max float64
	// MaxConvMA is the worst converter current seen along the trace.
	MaxConvMA float64
	// OverLimitSteps counts steps where some converter exceeded rating.
	OverLimitSteps int
	// RegularWorstPct is the regular Dense PDN's worst-case line for
	// comparison.
	RegularWorstPct float64
	// FracBelowRegular is the fraction of time the V-S noise stays below
	// the regular PDN's worst case.
	FracBelowRegular float64
}

// ExtTraceNoise runs the quasi-static trace study on the 8-layer V-S PDN
// (8 conv/core, Few TSV) against the regular Dense worst case.
func (s *Study) ExtTraceNoise(steps int) (*ExtTraceNoiseResult, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: need at least 1 trace step")
	}
	layers := s.MaxLayers
	cores := s.Chip.NumCores()

	traces, err := s.Workloads().TraceMatrix(layers, cores, steps, s.Seed, workload.TraceOptions{})
	if err != nil {
		return nil, err
	}
	p, err := s.VoltageStackedPDN(layers, 8, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}

	res := &ExtTraceNoiseResult{Steps: steps}
	droops := make([]float64, 0, steps)
	for _, acts := range traces {
		r, err := p.Solve(acts)
		if err != nil {
			return nil, err
		}
		droops = append(droops, 100*r.MaxIRDropFrac)
		if ma := 1000 * r.MaxConverterCurrent; ma > res.MaxConvMA {
			res.MaxConvMA = ma
		}
		if r.OverLimit {
			res.OverLimitSteps++
		}
	}
	sort.Float64s(droops)
	q := func(f float64) float64 { return droops[int(f*float64(len(droops)-1))] }
	res.P50, res.P95, res.Max = q(0.5), q(0.95), droops[len(droops)-1]

	reg, err := s.RegularPDN(layers, pdngrid.DenseTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	rr, err := solveUniform(reg)
	if err != nil {
		return nil, err
	}
	res.RegularWorstPct = 100 * rr.MaxIRDropFrac
	below := 0
	for _, d := range droops {
		if d < res.RegularWorstPct {
			below++
		}
	}
	res.FracBelowRegular = float64(below) / float64(len(droops))
	return res, nil
}

// RenderExtTraceNoise formats the trace study.
func RenderExtTraceNoise(r *ExtTraceNoiseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: time-domain noise under Markov phase traces (%d steps, 8-layer V-S, 8 conv/core)\n", r.Steps)
	fmt.Fprintf(&b, "  V-S max IR drop: p50 %.2f%%, p95 %.2f%%, max %.2f%% Vdd\n", r.P50, r.P95, r.Max)
	fmt.Fprintf(&b, "  worst converter along the trace: %.1f mA (%d/%d steps over rating)\n",
		r.MaxConvMA, r.OverLimitSteps, r.Steps)
	fmt.Fprintf(&b, "  regular Dense worst case: %.2f%% Vdd; V-S stays below it %.0f%% of the time\n",
		r.RegularWorstPct, 100*r.FracBelowRegular)
	b.WriteString("  -> real phase behavior rarely aligns into the coherent worst-case pattern of\n")
	b.WriteString("     Fig. 6; the V-S PDN's typical (p95) noise sits well inside the regular\n")
	b.WriteString("     PDN's always-on worst case\n")
	return b.String()
}
