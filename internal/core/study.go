// Package core is the paper's cross-layer design explorer: it ties the
// SC-converter compact model, the 3D PDN grid model, the EM lifetime
// model, the McPAT-like power model, the synthetic workload populations
// and the thermal model together into the experiments of the paper's
// evaluation — every table and figure has a driver here that regenerates
// its rows or series.
package core

import (
	"fmt"

	"voltstack/internal/em"
	"voltstack/internal/parallel"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
	"voltstack/internal/telemetry"
	"voltstack/internal/units"
	"voltstack/internal/workload"
)

// Experiment-driver instrumentation: how many figure/table drivers ran and
// how long each took, with one trace span per driver. No-ops unless
// telemetry is enabled.
var (
	mExperiments       = telemetry.NewCounter("core_experiments_total")
	mExperimentSeconds = telemetry.NewHistogram("core_experiment_seconds")
)

// observe opens a span and timer for one experiment driver; the returned
// func ends both:
//
//	defer s.observe("fig5a")()
func (s *Study) observe(name string) func() {
	sp := telemetry.StartSpanTrace("core."+name, s.Trace)
	t0 := telemetry.Now()
	telemetry.TaskStart("core." + name)
	return func() {
		telemetry.TaskEnd("core." + name)
		mExperiments.Add(1)
		mExperimentSeconds.Since(t0)
		sp.End()
	}
}

// Study holds the shared configuration of a cross-layer exploration.
// NewStudy returns the paper's setup; fields may be overridden before
// running experiments (e.g. a coarser mesh for quick runs).
type Study struct {
	Chip      *power.Chip
	Params    pdngrid.Params
	Converter sc.Params
	EMTsv     em.BlackParams
	EMC4      em.BlackParams
	Seed      int64

	// MaxLayers is the deepest stack evaluated in the scaling studies.
	MaxLayers int

	// Workers bounds the number of PDN solves run concurrently by the
	// figure drivers; < 1 selects parallel.DefaultWorkers (GOMAXPROCS,
	// overridable via VOLTSTACK_WORKERS). Every experiment returns the
	// same values for every worker count.
	Workers int

	// ForceFreshSolve disables the prepared-solve engine on every PDN the
	// study builds, restoring the rebuild-everything baseline (used by the
	// fresh-vs-prepared benchmark pairs and equivalence tests).
	ForceFreshSolve bool

	// Trace, when valid, annotates each experiment driver's trace span
	// with the request's W3C trace context, so a served job's driver spans
	// join the submitter's trace. The zero value (the default) leaves the
	// spans unannotated; results are identical either way.
	Trace telemetry.TraceContext
}

// NewStudy returns the paper's configuration: the 16-core A9-class layer,
// Table 1 parameters, the 28 nm push-pull converter with high-density
// (trench) capacitors for system-level area, and the calibrated EM
// constants.
func NewStudy() *Study {
	conv := sc.Default28nm()
	conv.Cap = sc.Trench // Sec. 5.2 assumes high-density capacitors
	return &Study{
		Chip:      power.Example16Core(),
		Params:    pdngrid.DefaultParams(),
		Converter: conv,
		EMTsv:     em.DefaultTSV(),
		EMC4:      em.DefaultC4(),
		Seed:      1,
		MaxLayers: 8,
	}
}

// pool returns the study's worker pool for figure-level fan-outs.
func (s *Study) pool() *parallel.Pool { return parallel.NewPool(s.Workers) }

// Coarse lowers the PDN mesh resolution for fast tests and smoke runs.
func (s *Study) Coarse() *Study {
	s.Params.GridNx, s.Params.GridNy = 16, 16
	return s
}

// RegularPDN builds a regular-PDN scenario.
func (s *Study) RegularPDN(layers int, tsv pdngrid.TSVTopology, padFrac float64) (*pdngrid.PDN, error) {
	return pdngrid.New(pdngrid.Config{
		Kind:             pdngrid.Regular,
		Layers:           layers,
		Chip:             s.Chip,
		Params:           s.Params,
		TSV:              tsv,
		PadPowerFraction: padFrac,
		ForceFreshSolve:  s.ForceFreshSolve,
	})
}

// VoltageStackedPDN builds a V-S scenario with the study's converter.
func (s *Study) VoltageStackedPDN(layers, convPerCore int, tsv pdngrid.TSVTopology, padFrac float64) (*pdngrid.PDN, error) {
	return pdngrid.New(pdngrid.Config{
		Kind:              pdngrid.VoltageStacked,
		Layers:            layers,
		Chip:              s.Chip,
		Params:            s.Params,
		TSV:               tsv,
		PadPowerFraction:  padFrac,
		ConvertersPerCore: convPerCore,
		Converter:         s.Converter,
		ForceFreshSolve:   s.ForceFreshSolve,
	})
}

// TSVLifetime evaluates the expected EM-damage-free lifetime of a solved
// scenario's TSV array (Sec. 3.3).
func (s *Study) TSVLifetime(r *pdngrid.Result) (float64, error) {
	return s.lifetime(r.TSVCurrents, s.EMTsv)
}

// C4Lifetime evaluates the lifetime of the power C4 pad array.
func (s *Study) C4Lifetime(r *pdngrid.Result) (float64, error) {
	return s.lifetime(r.PadCurrents, s.EMC4)
}

// TSVLifetimeAt evaluates the TSV array lifetime with per-layer junction
// temperatures (°C) instead of the study's uniform temperature — the
// thermally-aware extension. layerTempsC[l] applies to conductors whose
// lower end is in layer l.
func (s *Study) TSVLifetimeAt(r *pdngrid.Result, layerTempsC []float64) (float64, error) {
	if err := s.EMTsv.Validate(); err != nil {
		return 0, err
	}
	if len(r.TSVLayers) != len(r.TSVCurrents) {
		return 0, fmt.Errorf("core: result lacks TSV layer tags (%d vs %d)",
			len(r.TSVLayers), len(r.TSVCurrents))
	}
	g := em.NewGroup(s.EMTsv.SigmaLog)
	for i, cur := range r.TSVCurrents {
		l := r.TSVLayers[i]
		if l < 0 || l >= len(layerTempsC) {
			return 0, fmt.Errorf("core: TSV layer %d outside temperature table", l)
		}
		g.AddConductor(s.EMTsv, cur, units.CelsiusToKelvin(layerTempsC[l]))
	}
	return g.MedianLifetime()
}

func (s *Study) lifetime(currents []float64, bp em.BlackParams) (float64, error) {
	if err := bp.Validate(); err != nil {
		return 0, err
	}
	g := em.NewGroup(bp.SigmaLog)
	tempK := units.CelsiusToKelvin(s.Params.TempCelsius)
	for _, i := range currents {
		g.AddConductor(bp, i, tempK)
	}
	return g.MedianLifetime()
}

// Workloads returns the study's synthetic Parsec suite.
func (s *Study) Workloads() workload.Suite {
	return workload.DefaultSuite(s.Seed)
}

// solveUniform runs a scenario with every layer fully active (the regular
// PDN's worst case and the EM-study operating point).
func solveUniform(p *pdngrid.PDN) (*pdngrid.Result, error) {
	return p.Solve(pdngrid.UniformActivities(p.Cfg.Layers, p.Cfg.Chip.NumCores(), 1))
}

// solveInterleaved runs a scenario with the Fig. 6 high/low layer pattern.
func solveInterleaved(p *pdngrid.PDN, imbalance float64) (*pdngrid.Result, error) {
	return p.Solve(pdngrid.InterleavedActivities(p.Cfg.Layers, p.Cfg.Chip.NumCores(), imbalance))
}

// scanLayers is the layer-count axis of Fig. 5.
func (s *Study) scanLayers() []int {
	var out []int
	for l := 2; l <= s.MaxLayers; l += 2 {
		out = append(out, l)
	}
	return out
}

func checkPositive(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("core: %s must be positive, got %g", name, v)
	}
	return nil
}
