package core

import (
	"strings"
	"testing"
)

// The canonical order must cover every registered driver exactly once,
// and every CSV runner must shadow a text runner.
func TestExperimentRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range ExperimentNames() {
		if seen[name] {
			t.Errorf("duplicate experiment %q in canonical order", name)
		}
		seen[name] = true
		if !IsExperiment(name) {
			t.Errorf("ordered experiment %q has no text runner", name)
		}
	}
	if len(seen) != len(textRunners) {
		t.Errorf("canonical order lists %d experiments, registry has %d", len(seen), len(textRunners))
	}
	for _, name := range CSVExperimentNames() {
		if !IsExperiment(name) {
			t.Errorf("CSV experiment %q has no text runner", name)
		}
		if !HasCSV(name) {
			t.Errorf("HasCSV(%q) = false for a listed CSV experiment", name)
		}
	}
}

func TestRunExperimentErrors(t *testing.T) {
	s := NewStudy().Coarse()
	if _, err := RunExperiment(s, "nope", false); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment err = %v", err)
	}
	if _, err := RunExperiment(s, "thermal", true); err == nil || !strings.Contains(err.Error(), "no CSV form") {
		t.Errorf("csv-less experiment err = %v", err)
	}
}

// table1/table2 run in microseconds; pin that the registry path renders
// the same bytes as calling the driver directly.
func TestRunExperimentMatchesDirect(t *testing.T) {
	s := NewStudy().Coarse()
	got, err := RunExperiment(s, "table1", false)
	if err != nil {
		t.Fatal(err)
	}
	if want := RenderTable1(s.Table1()); got != want {
		t.Errorf("registry table1 differs from direct render:\n%s\nvs\n%s", got, want)
	}
}
