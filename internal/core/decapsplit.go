package core

import (
	"fmt"
	"strings"

	"voltstack/internal/pdngrid"
)

// DecapSplitRow is one way of spending a fixed per-core silicon budget:
// some on SC converters (which absorb DC imbalance) and the rest on
// trench decap (which absorbs di/dt).
type DecapSplitRow struct {
	Converters    int
	DecapAreaPct  float64 // % of core area spent on decap
	DecapPerMM2   float64 // resulting decap density (nF/mm²) incl. baseline
	DCNoisePct    float64 // DC IR drop at the evaluation imbalance
	FirstDroopPct float64 // transient first droop under the load step
}

// ExtDecapSplitResult sweeps the split of a fixed budget.
type ExtDecapSplitResult struct {
	BudgetPct    float64 // per-core area budget (% of core)
	ImbalancePct float64
	Rows         []DecapSplitRow
}

// ExtDecapSplit holds the V-S design's regulation area budget fixed
// (8 converters' worth, ~24 % of a core) and sweeps how much of it goes
// to converters versus trench decoupling capacitance, evaluating both
// noise mechanisms: DC imbalance noise and transient load-step droop.
// The stacks are kept at 4 layers so the transient solves stay fast.
func (s *Study) ExtDecapSplit(steps int) (*ExtDecapSplitResult, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: need at least 1 transient step")
	}
	const layers = 4
	const imbalance = 0.65
	convArea := s.Converter.Area()
	coreArea := s.Chip.Core.Area
	budget := 8 * convArea // the full 8-converter allocation

	res := &ExtDecapSplitResult{
		BudgetPct:    100 * budget / coreArea,
		ImbalancePct: 100 * imbalance,
	}
	base := pdngrid.DefaultTransient()
	base.Steps = steps

	for _, nConv := range []int{8, 6, 4, 2} {
		spare := budget - float64(nConv)*convArea
		// Spare area becomes trench decap spread over the core.
		extraDecap := spare * s.Converter.Cap.Density() / coreArea // F/m² of die
		tc := base
		tc.DecapPerArea += extraDecap

		p, err := s.VoltageStackedPDN(layers, nConv, pdngrid.FewTSV(), 0.5)
		if err != nil {
			return nil, err
		}
		dc, err := solveInterleaved(p, imbalance)
		if err != nil {
			return nil, err
		}
		tr, err := p.SolveTransient(tc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DecapSplitRow{
			Converters:    nConv,
			DecapAreaPct:  100 * spare / coreArea,
			DecapPerMM2:   tc.DecapPerArea * 1e9 / 1e6,
			DCNoisePct:    100 * dc.MaxIRDropFrac,
			FirstDroopPct: 100 * tr.WorstDroopFrac,
		})
	}
	return res, nil
}

// RenderExtDecapSplit formats the budget-split sweep.
func RenderExtDecapSplit(r *ExtDecapSplitResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: converter-vs-decap split of a fixed %.0f%% core budget (4 layers, %.0f%% imbalance)\n",
		r.BudgetPct, r.ImbalancePct)
	b.WriteString("  converters  decap-area  decap-density  DC noise  first droop\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %10d %10.1f%% %11.1f nF/mm² %7.2f%% %11.2f%%\n",
			row.Converters, row.DecapAreaPct, row.DecapPerMM2, row.DCNoisePct, row.FirstDroopPct)
	}
	b.WriteString("  -> the two noise mechanisms pull opposite ways: converters fight DC\n")
	b.WriteString("     imbalance, decap fights di/dt; the best split depends on which dominates\n")
	b.WriteString("     the workload\n")
	return b.String()
}
