package core

import (
	"reflect"
	"testing"
)

// tinyStudy shrinks the mesh and stack so a figure driver runs in
// milliseconds; equivalence tests run each driver three times.
func tinyStudy() *Study {
	s := NewStudy()
	s.Params.GridNx, s.Params.GridNy = 8, 8
	s.MaxLayers = 4
	return s
}

// TestHeadlinesWorkerEquivalence is the determinism contract of the
// parallel figure drivers: the full Headlines summary — which fans out
// Fig. 5a, Fig. 5b, the imbalance sweep and the dense reference solve
// concurrently — must be bit-identical for workers = 1, 2 and 8.
func TestHeadlinesWorkerEquivalence(t *testing.T) {
	var ref *Headlines
	for _, workers := range []int{1, 2, 8} {
		s := tinyStudy()
		s.Workers = workers
		h, err := s.Headlines()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = h
			continue
		}
		if !reflect.DeepEqual(h, ref) {
			t.Errorf("workers=%d Headlines differ from serial run:\n got %+v\nwant %+v", workers, h, ref)
		}
	}
}

// TestFig5aWorkerEquivalence checks the flattened scenario × layer grid
// reassembles into the same series for every worker count.
func TestFig5aWorkerEquivalence(t *testing.T) {
	var ref *Fig5
	for _, workers := range []int{1, 2, 8} {
		s := tinyStudy()
		s.Workers = workers
		fig, err := s.Fig5a()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = fig
			continue
		}
		if !reflect.DeepEqual(fig, ref) {
			t.Errorf("workers=%d Fig5a differs from serial run", workers)
		}
	}
	if len(ref.Series) != 4 {
		t.Fatalf("fig5a series = %d, want 4", len(ref.Series))
	}
	for _, sr := range ref.Series {
		if len(sr.Values) != len(ref.Layers) {
			t.Fatalf("series %q has %d values for %d layers", sr.Label, len(sr.Values), len(ref.Layers))
		}
	}
}

// TestVSSweepWorkerEquivalence checks the shared-PDN imbalance sweep.
func TestVSSweepWorkerEquivalence(t *testing.T) {
	imbs := []float64{0, 0.3, 0.65, 1.0}
	var ref []VSSweepPoint
	for _, workers := range []int{1, 2, 8} {
		s := tinyStudy()
		s.Workers = workers
		pts, err := s.VSSweep(4, imbs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = pts
			continue
		}
		if !reflect.DeepEqual(pts, ref) {
			t.Errorf("workers=%d VSSweep differs from serial run", workers)
		}
	}
}
