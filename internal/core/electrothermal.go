package core

import (
	"fmt"
	"log/slog"
	"math"
	"strings"

	"voltstack/internal/floorplan"
	"voltstack/internal/telemetry"
	"voltstack/internal/thermal"
)

// ExtElectrothermalResult reports the leakage-temperature fixed point of
// the stacked processor — a cross-layer coupling the paper's toolchain
// contains (McPAT + HotSpot) but does not close the loop on.
type ExtElectrothermalResult struct {
	Layers int
	// UncoupledHotspotC evaluates leakage at the 85 °C characterization
	// point (the paper's methodology).
	UncoupledHotspotC float64
	// CoupledHotspotC is the converged electrothermal fixed point.
	CoupledHotspotC float64
	// LeakageAmplification is converged total leakage relative to the
	// nominal-temperature value.
	LeakageAmplification float64
	Iterations           int
	// Converged is false if the loop hit its iteration budget (a sign of
	// approaching thermal runaway).
	Converged bool
}

// ExtElectrothermal iterates power(T) -> thermal -> T until the per-core
// temperatures converge, for the given stack depth.
func (s *Study) ExtElectrothermal(layers int) (*ExtElectrothermalResult, error) {
	if layers < 1 {
		return nil, fmt.Errorf("core: need at least 1 layer")
	}
	chip := s.Chip
	cores := chip.NumCores()
	die := chip.Die()
	cfg := thermal.DefaultConfig(die, layers)
	fp, err := chip.Floorplan()
	if err != nil {
		return nil, err
	}
	raster := floorplan.NewRaster(die, cfg.Nx, cfg.Ny)

	acts := make([]float64, cores)
	for i := range acts {
		acts[i] = 1
	}

	// mapsFor builds per-layer cell power maps from per-layer, per-core
	// temperatures.
	mapsFor := func(temps [][]float64) ([][]float64, error) {
		out := make([][]float64, layers)
		for l := 0; l < layers; l++ {
			pm, err := chip.PowerMapAt(acts, temps[l])
			if err != nil {
				return nil, err
			}
			cells, err := raster.Distribute(fp.Blocks, pm)
			if err != nil {
				return nil, err
			}
			out[l] = cells
		}
		return out, nil
	}

	// coreTemps averages the solved cell temperatures over each core tile.
	coreTemps := func(r *thermal.Result) [][]float64 {
		out := make([][]float64, layers)
		for l := range out {
			sums := make([]float64, cores)
			counts := make([]float64, cores)
			for c, t := range r.TempsC[l] {
				ix, iy := c%cfg.Nx, c/cfg.Nx
				cell := raster.CellRect(ix, iy)
				cx, cy := cell.Center()
				if tile := fp.TileOf(cx, cy); tile >= 0 {
					sums[tile] += t
					counts[tile]++
				}
			}
			row := make([]float64, cores)
			for i := range row {
				if counts[i] > 0 {
					row[i] = sums[i] / counts[i]
				} else {
					row[i] = cfg.AmbientC
				}
			}
			out[l] = row
		}
		return out
	}

	nominal := make([][]float64, layers)
	for l := range nominal {
		row := make([]float64, cores)
		for i := range row {
			row[i] = 85 // the characterization temperature
		}
		nominal[l] = row
	}

	// Uncoupled: one thermal solve at nominal leakage.
	maps, err := mapsFor(nominal)
	if err != nil {
		return nil, err
	}
	var nominalPower float64
	for _, m := range maps {
		for _, w := range m {
			nominalPower += w
		}
	}
	r0, err := thermal.Solve(cfg, maps)
	if err != nil {
		return nil, err
	}
	res := &ExtElectrothermalResult{Layers: layers, UncoupledHotspotC: r0.MaxC}

	// Fixed point.
	temps := coreTemps(r0)
	const maxIter = 30
	prevHot := r0.MaxC
	for it := 1; it <= maxIter; it++ {
		maps, err := mapsFor(temps)
		if err != nil {
			return nil, err
		}
		r, err := thermal.Solve(cfg, maps)
		if err != nil {
			return nil, err
		}
		res.Iterations = it
		res.CoupledHotspotC = r.MaxC
		var total float64
		for _, m := range maps {
			for _, w := range m {
				total += w
			}
		}
		res.LeakageAmplification = 1 + (total-nominalPower)/(nominalPower*leakFraction(s))
		if math.Abs(r.MaxC-prevHot) < 0.05 {
			res.Converged = true
			break
		}
		prevHot = r.MaxC
		temps = coreTemps(r)
	}
	if !res.Converged && telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelWarn, "core: electrothermal fixed point did not converge (thermal runaway)",
			slog.Int("layers", layers),
			slog.Int("iterations", res.Iterations),
			slog.Float64("hotspot_c", res.CoupledHotspotC),
			slog.Float64("leakage_amplification", res.LeakageAmplification))
	}
	return res, nil
}

func leakFraction(s *Study) float64 {
	return s.Chip.Core.Leakage / s.Chip.Core.PeakPower()
}

// RenderExtElectrothermal formats the coupling study across stack depths.
func RenderExtElectrothermal(rows []*ExtElectrothermalResult) string {
	var b strings.Builder
	b.WriteString("Extension: electrothermal coupling (leakage grows ~2x per 25 C; loop closed to a fixed point)\n")
	b.WriteString("  layers  hotspot (85C leakage)  hotspot (coupled)  leakage amplification\n")
	for _, r := range rows {
		status := ""
		if !r.Converged {
			status = "  NOT CONVERGED (thermal runaway)"
		}
		fmt.Fprintf(&b, "  %6d %18.1fC %17.1fC %17.2fx%s\n",
			r.Layers, r.UncoupledHotspotC, r.CoupledHotspotC, r.LeakageAmplification, status)
	}
	b.WriteString("  -> fixed-85C leakage OVERSTATES power for cool shallow stacks (they run far\n")
	b.WriteString("     below 85C) but UNDERSTATES the 8-layer hotspot, where amplified leakage\n")
	b.WriteString("     consumes part of the headroom that admitted the 8th layer\n")
	return b.String()
}
