package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RenderTable1 formats Table 1 as paper-style rows.
func RenderTable1(rows []ParamRow) string {
	var b strings.Builder
	b.WriteString("Table 1: Major PDN modeling parameters\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-46s %s\n", r.Name, r.Value)
	}
	return b.String()
}

// RenderTable2 formats the TSV topology table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: TSV configurations\n")
	b.WriteString("  Topology  EffPitch(um)  TSVs/core  AreaOverhead\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %12.0f %10d %12.1f%%\n", r.Name, r.EffPitchUM, r.TSVsPerCore, r.OverheadPct)
	}
	return b.String()
}

// RenderFig3 formats a converter-validation sweep.
func RenderFig3(title string, pts []Fig3Point, withDrop bool) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	if withDrop {
		b.WriteString("  Load(mA)  ModelEff  SimEff  ModelDrop(mV)  SimDrop(mV)\n")
		for _, p := range pts {
			fmt.Fprintf(&b, "  %8.1f %8.1f%% %6.1f%% %13.1f %12.1f\n",
				p.LoadMA, 100*p.ModelEff, 100*p.SimEff, p.ModelDropMV, p.SimDropMV)
		}
	} else {
		b.WriteString("  Load(mA)  ModelEff  SimEff\n")
		for _, p := range pts {
			fmt.Fprintf(&b, "  %8.1f %8.1f%% %6.1f%%\n", p.LoadMA, 100*p.ModelEff, 100*p.SimEff)
		}
	}
	return b.String()
}

// RenderFig5 formats an EM lifetime figure.
func RenderFig5(title string, f *Fig5) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-28s", "Series \\ Layers")
	for _, l := range f.Layers {
		fmt.Fprintf(&b, "%8d", l)
	}
	b.WriteString("\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-28s", s.Label)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%8.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig6 formats the voltage-noise evaluation.
func RenderFig6(f *Fig6) string {
	var b strings.Builder
	b.WriteString("Fig. 6: Max on-chip IR drop (% Vdd) vs. workload imbalance, 8-layer V-S PDN (Few TSV)\n")
	fmt.Fprintf(&b, "  %-18s", "Imbalance")
	for _, imb := range f.Imbalances {
		fmt.Fprintf(&b, "%7.0f%%", 100*imb)
	}
	b.WriteString("\n")
	var counts []int
	for n := range f.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		fmt.Fprintf(&b, "  %-18s", fmt.Sprintf("V-S %d conv/core", n))
		for _, v := range f.VS[n] {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%8s", "--")
			} else {
				fmt.Fprintf(&b, "%8.2f", v)
			}
		}
		b.WriteString("\n")
	}
	var names []string
	for name := range f.RegularIRPct {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  Reg. PDN %-7s (all layers active): %.2f%% Vdd\n", name, f.RegularIRPct[name])
	}
	b.WriteString("  (-- marks points dropped for exceeding the 100 mA converter limit)\n")
	return b.String()
}

// RenderFig7 formats the workload box-plot data.
func RenderFig7(f *Fig7) string {
	var b strings.Builder
	b.WriteString("Fig. 7: Workload distributions across Parsec applications (activity factor)\n")
	b.WriteString("  Application     Min    Q1     Med    Q3     Max   MaxImb\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-14s %5.3f  %5.3f  %5.3f  %5.3f  %5.3f  %5.1f%%\n",
			r.App, r.Stats.Min, r.Stats.Q1, r.Stats.Median, r.Stats.Q3, r.Stats.Max, 100*r.MaxImbalance)
	}
	fmt.Fprintf(&b, "  best-case app: %s; average max-imbalance: %.0f%%; global max: %.0f%%\n",
		f.BestCaseApp, 100*f.AverageMaxImbalance, 100*f.GlobalMaxImbalance)
	return b.String()
}

// RenderFig8 formats the efficiency evaluation.
func RenderFig8(f *Fig8) string {
	var b strings.Builder
	b.WriteString("Fig. 8: System power efficiency vs. workload imbalance, 8-layer stack\n")
	fmt.Fprintf(&b, "  %-22s", "Imbalance")
	for _, imb := range f.Imbalances {
		fmt.Fprintf(&b, "%7.0f%%", 100*imb)
	}
	b.WriteString("\n")
	var counts []int
	for n := range f.VS {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		fmt.Fprintf(&b, "  %-22s", fmt.Sprintf("V-S PDN, %d conv/core", n))
		for _, v := range f.VS[n] {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%8s", "--")
			} else {
				fmt.Fprintf(&b, "%7.1f%%", 100*v)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-22s", "Reg. PDN + SC (all)")
	for _, v := range f.RegularSC {
		fmt.Fprintf(&b, "%7.1f%%", 100*v)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderThermal formats the stack feasibility check.
func RenderThermal(tc *ThermalCheck) string {
	return fmt.Sprintf("Thermal feasibility (HotSpot-lite, air cooling):\n"+
		"  hotspot at 8 layers: %.1f C\n  max layers under 100 C: %d\n",
		tc.HotspotAt8Layers, tc.MaxLayersUnder100C)
}

// RenderHeadlines formats the paper's summary claims.
func RenderHeadlines(h *Headlines) string {
	var b strings.Builder
	b.WriteString("Headline claims (paper vs. this model):\n")
	fmt.Fprintf(&b, "  C4 lifetime gap V-S vs. regular at 8 layers: %.1fx (paper: up to 5x)\n", h.C4GapAt8Layers)
	fmt.Fprintf(&b, "  regular Few-TSV lifetime lost 2->8 layers:   %.0f%% (paper: up to 84%%)\n", 100*h.RegTSVDegradation)
	fmt.Fprintf(&b, "  V-S TSV lifetime lost 2->8 layers:           %.0f%% (paper: slight)\n", 100*h.VSTSVDegradation)
	fmt.Fprintf(&b, "  2-layer regular/V-S TSV lifetime ratio:      %.2f (paper: > 1, through-via effect)\n", h.TwoLayerRegOverVS)
	fmt.Fprintf(&b, "  V-S excess IR drop at 65%% imbalance:         %.2f%% Vdd (paper: 0.75%%)\n", h.DeltaIRAt65Pct)
	fmt.Fprintf(&b, "  V-S beats equal-area regular PDN below:      %.0f%% imbalance (paper: ~50%%)\n", 100*h.CrossoverImbalance)
	return b.String()
}
