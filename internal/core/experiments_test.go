package core

import (
	"math"
	"strings"
	"testing"

	"voltstack/internal/units"
)

// coarseStudy returns a test-speed study (16x16 PDN mesh). The headline
// numbers were verified to be stable between the coarse and full meshes.
func coarseStudy() *Study {
	return NewStudy().Coarse()
}

func TestTable1ContainsPaperValues(t *testing.T) {
	rows := NewStudy().Table1()
	byName := map[string]string{}
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	if byName["C4 Pad Pitch (um)"] != "200" {
		t.Errorf("pad pitch = %q", byName["C4 Pad Pitch (um)"])
	}
	if byName["C4 Pad Resistance (mOhm)"] != "10" {
		t.Errorf("pad R = %q", byName["C4 Pad Resistance (mOhm)"])
	}
	if byName["Single TSV's Resistance (mOhm)"] != "44.539" {
		t.Errorf("TSV R = %q", byName["Single TSV's Resistance (mOhm)"])
	}
	if byName["TSV Keep-Out Zone's Side Length (um)"] != "9.88" {
		t.Errorf("KoZ = %q", byName["TSV Keep-Out Zone's Side Length (um)"])
	}
	if byName["TSV Diameter (um)"] != "5" || byName["Minimum TSV Pitch (um)"] != "10" {
		t.Error("TSV geometry rows wrong")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := NewStudy().Table2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]struct {
		perCore  int
		overhead float64
	}{
		"Dense":  {6650, 24.2},
		"Sparse": {1675, 6.1},
		"Few":    {110, 0.4},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected topology %q", r.Name)
		}
		if r.TSVsPerCore != w.perCore {
			t.Errorf("%s: %d TSVs/core, want %d", r.Name, r.TSVsPerCore, w.perCore)
		}
		if !units.ApproxEqual(r.OverheadPct, w.overhead, 1.0, 0.05) {
			t.Errorf("%s: overhead %.2f%%, want ~%.1f%%", r.Name, r.OverheadPct, w.overhead)
		}
	}
}

func TestFig3aClosedLoopValidation(t *testing.T) {
	pts, err := coarseStudy().Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Model and simulation agree within 3 points; efficiency stays
		// high across the whole load range (the Fig. 3a shape).
		if math.Abs(p.ModelEff-p.SimEff) > 0.03 {
			t.Errorf("%.1f mA: model %.3f vs sim %.3f", p.LoadMA, p.ModelEff, p.SimEff)
		}
		if p.ModelEff < 0.80 {
			t.Errorf("%.1f mA: closed-loop efficiency %.3f too low", p.LoadMA, p.ModelEff)
		}
	}
}

func TestFig3bOpenLoopValidation(t *testing.T) {
	pts, err := coarseStudy().Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.ModelEff-p.SimEff) > 0.02 {
			t.Errorf("%.1f mA: model %.3f vs sim %.3f", p.LoadMA, p.ModelEff, p.SimEff)
		}
		// The drop curves share the RSERIES slope; the simulation carries
		// a small constant offset from the physical bottom-plate load.
		if math.Abs(p.ModelDropMV-p.SimDropMV) > 10 {
			t.Errorf("%.1f mA: drop model %.1f vs sim %.1f mV", p.LoadMA, p.ModelDropMV, p.SimDropMV)
		}
	}
	// Monotone rising efficiency and drop.
	for i := 1; i < len(pts); i++ {
		if pts[i].ModelEff <= pts[i-1].ModelEff || pts[i].ModelDropMV <= pts[i-1].ModelDropMV {
			t.Error("open-loop curves must increase with load")
		}
	}
}

func TestFig5aShape(t *testing.T) {
	fig, err := coarseStudy().Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Values
	}
	vs := series["V-S PDN, Few TSV"]
	few := series["Reg. PDN, Few TSV"]
	sparse := series["Reg. PDN, Sparse TSV"]
	dense := series["Reg. PDN, Dense TSV"]
	last := len(fig.Layers) - 1

	// Normalization: the 2-layer V-S point is 1.
	if !units.ApproxEqual(vs[0], 1, 1e-9, 1e-9) {
		t.Errorf("V-S 2-layer = %g, want 1 (normalization)", vs[0])
	}
	// Paper: V-S TSV lifetime is worse than regular at 2 layers
	// (through-via effect) ...
	if few[0] <= vs[0] {
		t.Errorf("2-layer: regular Few %.3f should exceed V-S %.3f", few[0], vs[0])
	}
	// ... but regular degrades steeply with stacking while V-S barely moves.
	if deg := 1 - few[last]/few[0]; deg < 0.7 || deg > 0.9 {
		t.Errorf("regular Few degradation = %.2f, want ~0.84 (paper)", deg)
	}
	if deg := 1 - vs[last]/vs[0]; deg > 0.10 {
		t.Errorf("V-S degradation = %.2f, want slight", deg)
	}
	// At 8 layers V-S exceeds every regular topology by > 1.5x and the
	// Few topology by > 3x (paper: "more than 3x").
	if gap := vs[last] / few[last]; gap < 3 {
		t.Errorf("V-S/regular-Few gap at 8 layers = %.2f, want > 3", gap)
	}
	for name, s := range map[string][]float64{"Dense": dense, "Sparse": sparse} {
		if vs[last] <= s[last] {
			t.Errorf("V-S at 8 layers (%.2f) must exceed regular %s (%.2f)", vs[last], name, s[last])
		}
	}
	// More TSVs help, but only marginally (well below their 60x count
	// advantage thanks to current crowding).
	if !(dense[last] > sparse[last] && sparse[last] > few[last]) {
		t.Errorf("topology ordering violated: %.2f, %.2f, %.2f", dense[last], sparse[last], few[last])
	}
	if dense[last]/few[last] > 4 {
		t.Errorf("Dense/Few lifetime ratio %.1f too large — crowding not effective", dense[last]/few[last])
	}
}

func TestFig5bShape(t *testing.T) {
	fig, err := coarseStudy().Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Values
	}
	vs := series["V-S PDN (25% Power C4)"]
	last := len(fig.Layers) - 1

	// V-S C4 lifetime is independent of layer count.
	if math.Abs(vs[last]-vs[0]) > 0.05 {
		t.Errorf("V-S C4 lifetime should be flat: %v", vs)
	}
	// The paper's 5x gap at 8 layers vs. the 25% regular allocation.
	reg25 := series["Reg. PDN (25% Power C4)"]
	if gap := vs[last] / reg25[last]; gap < 4 || gap > 6.5 {
		t.Errorf("C4 gap at 8 layers = %.2f, want ~5 (paper)", gap)
	}
	// More power pads help the regular PDN...
	reg100 := series["Reg. PDN (100% Power C4)"]
	if reg100[last] <= reg25[last] {
		t.Error("100% pads should outlive 25% pads")
	}
	// ... but even a full allocation stays far inferior to V-S.
	if vs[last]/reg100[last] < 1.5 {
		t.Errorf("V-S should clearly beat even 100%% pads: %.2f vs %.2f", vs[last], reg100[last])
	}
	// Every regular curve decreases with layer count.
	for _, name := range []string{"Reg. PDN (25% Power C4)", "Reg. PDN (50% Power C4)", "Reg. PDN (75% Power C4)", "Reg. PDN (100% Power C4)"} {
		vals := series[name]
		for i := 1; i < len(vals); i++ {
			if vals[i] >= vals[i-1] {
				t.Errorf("%s not decreasing: %v", name, vals)
				break
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := coarseStudy().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Regular lines: Dense < Sparse < Few.
	if !(fig.RegularIRPct["Dense"] < fig.RegularIRPct["Sparse"] &&
		fig.RegularIRPct["Sparse"] < fig.RegularIRPct["Few"]) {
		t.Errorf("regular ordering violated: %v", fig.RegularIRPct)
	}
	// V-S series increase with imbalance until cut off, and more
	// converters yield uniformly lower noise.
	for n, vals := range fig.VS {
		seenNaN := false
		for i := 1; i < len(vals); i++ {
			if math.IsNaN(vals[i]) {
				seenNaN = true
				continue
			}
			if seenNaN {
				t.Errorf("%d conv: valid point after cutoff", n)
			}
			if vals[i] <= vals[i-1] {
				t.Errorf("%d conv: IR not increasing at %d", n, i)
			}
		}
	}
	// More converters give lower noise once any meaningful imbalance
	// exists (at 0% both are within parasitic-current noise of each
	// other, hence the small tolerance).
	v2, v8 := fig.VS[2], fig.VS[8]
	for i := range v2 {
		if !math.IsNaN(v2[i]) && v2[i] < v8[i]-0.05 {
			t.Errorf("2 conv/core should never beat 8 conv/core (index %d)", i)
		}
	}
	// The 2-converter series hits the 100 mA limit just above 50%
	// imbalance (the paper's visible cutoff).
	if !math.IsNaN(v2[5]) && math.IsNaN(v2[4]) {
		t.Error("unexpected cutoff position for 2 conv/core")
	}
	if !math.IsNaN(v2[6]) {
		t.Error("2 conv/core must be over limit at 60% imbalance")
	}
	if math.IsNaN(v2[3]) {
		t.Error("2 conv/core must be feasible at 30% imbalance")
	}
	// 8 conv/core stays within limits everywhere.
	for i, v := range v8 {
		if math.IsNaN(v) {
			t.Errorf("8 conv/core over limit at index %d", i)
		}
	}
}

func TestFig7MatchesPaperStatistics(t *testing.T) {
	fig := coarseStudy().Fig7()
	if len(fig.Rows) != 13 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	if fig.BestCaseApp != "blackscholes" {
		t.Errorf("best case = %s", fig.BestCaseApp)
	}
	if fig.AverageMaxImbalance < 0.60 || fig.AverageMaxImbalance > 0.70 {
		t.Errorf("average max imbalance = %.3f, want ~0.65", fig.AverageMaxImbalance)
	}
	if fig.GlobalMaxImbalance <= 0.90 {
		t.Errorf("global max imbalance = %.3f, want > 0.90", fig.GlobalMaxImbalance)
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := coarseStudy().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Every V-S series beats the regular-with-SC baseline wherever valid,
	// and efficiency decreases with imbalance and with converter count.
	for n, vals := range fig.VS {
		prev := 2.0
		for i, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			if v <= fig.RegularSC[i] {
				t.Errorf("%d conv at %.0f%%: V-S %.3f <= baseline %.3f",
					n, 100*fig.Imbalances[i], v, fig.RegularSC[i])
			}
			if v >= prev {
				t.Errorf("%d conv: efficiency not decreasing at index %d", n, i)
			}
			prev = v
		}
	}
	for i := range fig.Imbalances {
		v2, v8 := fig.VS[2][i], fig.VS[8][i]
		if !math.IsNaN(v2) && v2 <= v8 {
			t.Errorf("fewer open-loop converters must be more efficient (index %d)", i)
		}
	}
}

func TestThermalCheck(t *testing.T) {
	tc, err := coarseStudy().Thermal()
	if err != nil {
		t.Fatal(err)
	}
	if tc.MaxLayersUnder100C != 8 {
		t.Errorf("max layers = %d, want 8 (paper)", tc.MaxLayersUnder100C)
	}
	if tc.HotspotAt8Layers >= 100 || tc.HotspotAt8Layers < 80 {
		t.Errorf("8-layer hotspot = %.1f C", tc.HotspotAt8Layers)
	}
}

func TestHeadlinesMatchPaper(t *testing.T) {
	h, err := coarseStudy().Headlines()
	if err != nil {
		t.Fatal(err)
	}
	if h.C4GapAt8Layers < 4 || h.C4GapAt8Layers > 6.5 {
		t.Errorf("C4 gap = %.2f, want ~5 (paper)", h.C4GapAt8Layers)
	}
	if h.RegTSVDegradation < 0.70 || h.RegTSVDegradation > 0.90 {
		t.Errorf("regular TSV degradation = %.2f, want ~0.84", h.RegTSVDegradation)
	}
	if h.VSTSVDegradation > 0.10 {
		t.Errorf("V-S TSV degradation = %.2f, want slight", h.VSTSVDegradation)
	}
	if h.TwoLayerRegOverVS <= 1 {
		t.Errorf("2-layer regular/V-S ratio = %.2f, want > 1", h.TwoLayerRegOverVS)
	}
	if h.DeltaIRAt65Pct < 0.3 || h.DeltaIRAt65Pct > 2.0 {
		t.Errorf("delta IR at 65%% = %.2f%% Vdd, want ~0.75%% (paper)", h.DeltaIRAt65Pct)
	}
	if h.CrossoverImbalance < 0.35 || h.CrossoverImbalance > 0.70 {
		t.Errorf("crossover = %.2f, want ~0.5 (paper)", h.CrossoverImbalance)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := coarseStudy()
	if out := RenderTable1(s.Table1()); !strings.Contains(out, "44.539") {
		t.Error("Table 1 render missing TSV resistance")
	}
	if out := RenderTable2(s.Table2()); !strings.Contains(out, "Dense") || !strings.Contains(out, "6650") {
		t.Error("Table 2 render incomplete")
	}
	fig7 := s.Fig7()
	if out := RenderFig7(fig7); !strings.Contains(out, "blackscholes") {
		t.Error("Fig 7 render incomplete")
	}
	pts, err := s.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFig3("x", pts, true); !strings.Contains(out, "SimDrop") {
		t.Error("Fig 3 render incomplete")
	}
}

func TestStudyOverrides(t *testing.T) {
	s := NewStudy()
	if s.Params.GridNx != 32 {
		t.Error("default grid should be 32")
	}
	s.Coarse()
	if s.Params.GridNx != 16 {
		t.Error("Coarse should lower resolution")
	}
	if s.MaxLayers != 8 {
		t.Error("default max layers should be 8")
	}
	if got := s.scanLayers(); len(got) != 4 || got[0] != 2 || got[3] != 8 {
		t.Errorf("scanLayers = %v", got)
	}
}
