package core

import (
	"fmt"
	"strings"

	"voltstack/internal/floorplan"
	"voltstack/internal/pdngrid"
	"voltstack/internal/thermal"
)

// ExtThermalEMResult contrasts the paper's uniform-temperature EM
// evaluation against a thermally-aware one in which each TSV ages at its
// own layer's temperature. In a sink-on-top stack the bottom layers run
// hottest — and in the regular PDN those same bottom-boundary TSVs also
// carry the most current, so heat and current stress compound.
type ExtThermalEMResult struct {
	Layers          int
	LayerTempsC     []float64 // per-layer mean temperature, all active
	RegUniform      float64   // regular PDN lifetime, uniform 85 C (normalized)
	RegAware        float64   // regular PDN lifetime, per-layer temps
	VSUniform       float64   // V-S PDN lifetime, uniform 85 C
	VSAware         float64   // V-S PDN lifetime, per-layer temps
	RegAwarePenalty float64   // RegUniform / RegAware
	VSAwarePenalty  float64   // VSUniform / VSAware
}

// ExtThermalEM runs the thermally-aware TSV EM comparison on the deepest
// stack. All lifetimes are normalized to the V-S uniform-temperature
// value.
func (s *Study) ExtThermalEM() (*ExtThermalEMResult, error) {
	layers := s.MaxLayers
	res := &ExtThermalEMResult{Layers: layers}

	// Per-layer mean temperatures from the thermal solve, all layers
	// active.
	die := s.Chip.Die()
	tcfg := thermal.DefaultConfig(die, layers)
	fp, err := s.Chip.Floorplan()
	if err != nil {
		return nil, err
	}
	acts := make([]float64, s.Chip.NumCores())
	for i := range acts {
		acts[i] = 1
	}
	pm, err := s.Chip.PowerMap(acts)
	if err != nil {
		return nil, err
	}
	raster := floorplan.NewRaster(die, tcfg.Nx, tcfg.Ny)
	cells, err := raster.Distribute(fp.Blocks, pm)
	if err != nil {
		return nil, err
	}
	maps := make([][]float64, layers)
	for i := range maps {
		maps[i] = cells
	}
	tr, err := thermal.Solve(tcfg, maps)
	if err != nil {
		return nil, err
	}
	res.LayerTempsC = make([]float64, layers)
	for l := 0; l < layers; l++ {
		var sum float64
		for _, t := range tr.TempsC[l] {
			sum += t
		}
		res.LayerTempsC[l] = sum / float64(len(tr.TempsC[l]))
	}

	// Solve both PDNs once and evaluate each lifetime variant.
	uniform := make([]float64, layers)
	for l := range uniform {
		uniform[l] = s.Params.TempCelsius
	}
	eval := func(kind pdngrid.Kind) (uni, aware float64, err error) {
		var p *pdngrid.PDN
		if kind == pdngrid.Regular {
			p, err = s.RegularPDN(layers, pdngrid.FewTSV(), 1.0)
		} else {
			p, err = s.VoltageStackedPDN(layers, 4, pdngrid.FewTSV(), 1.0)
		}
		if err != nil {
			return 0, 0, err
		}
		r, err := solveUniform(p)
		if err != nil {
			return 0, 0, err
		}
		if uni, err = s.TSVLifetimeAt(r, uniform); err != nil {
			return 0, 0, err
		}
		if aware, err = s.TSVLifetimeAt(r, res.LayerTempsC); err != nil {
			return 0, 0, err
		}
		return uni, aware, nil
	}

	regU, regA, err := eval(pdngrid.Regular)
	if err != nil {
		return nil, err
	}
	vsU, vsA, err := eval(pdngrid.VoltageStacked)
	if err != nil {
		return nil, err
	}
	base := vsU
	res.RegUniform = regU / base
	res.RegAware = regA / base
	res.VSUniform = 1
	res.VSAware = vsA / base
	res.RegAwarePenalty = regU / regA
	res.VSAwarePenalty = vsU / vsA
	return res, nil
}

// RenderExtThermalEM formats the thermally-aware EM comparison.
func RenderExtThermalEM(r *ExtThermalEMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: thermally-aware TSV EM lifetime, %d layers (sink on top)\n", r.Layers)
	b.WriteString("  per-layer mean temps (bottom->top): ")
	for l, t := range r.LayerTempsC {
		if l > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.0fC", t)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  regular PDN lifetime: %.2f (uniform 85C) -> %.2f (per-layer temps), %.1fx penalty\n",
		r.RegUniform, r.RegAware, r.RegAwarePenalty)
	fmt.Fprintf(&b, "  V-S PDN lifetime:     %.2f (uniform 85C) -> %.2f (per-layer temps), %.1fx penalty\n",
		r.VSUniform, r.VSAware, r.VSAwarePenalty)
	b.WriteString("  -> both PDNs' critical conductors sit near the hot bottom of the stack\n")
	b.WriteString("     (regular: bottom-boundary TSVs; V-S: through-vias), so absolute lifetimes\n")
	b.WriteString("     shrink ~2x versus the uniform-85C assumption — but the NORMALIZED ratios\n")
	b.WriteString("     the paper reports are essentially unchanged, which validates its method\n")
	return b.String()
}
