package core

import (
	"strings"
	"testing"

	"voltstack/internal/power"
)

func TestExtTransientVSAdvantage(t *testing.T) {
	r, err := coarseStudy().ExtTransient()
	if err != nil {
		t.Fatal(err)
	}
	// The stack's off-chip current step is ~1/N of the regular PDN's, so
	// its Ldi/dt first droop must be far smaller.
	if r.VSFirstDroopPct >= r.RegularFirstDroopPct/2 {
		t.Errorf("V-S first droop %.2f%% should be well below regular %.2f%%",
			r.VSFirstDroopPct, r.RegularFirstDroopPct)
	}
	if r.RegularFirstDroopPct <= 0 || r.RegularFirstDroopPct > 50 {
		t.Errorf("implausible regular droop %.2f%%", r.RegularFirstDroopPct)
	}
	// More decap helps the regular design.
	if r.RegularDroop4xPct >= r.RegularDroop1xPct {
		t.Errorf("4x decap should reduce droop: %.2f%% -> %.2f%%",
			r.RegularDroop1xPct, r.RegularDroop4xPct)
	}
}

func TestExtConvertersSCWinsAtScale(t *testing.T) {
	rows := coarseStudy().ExtConverters()
	if len(rows) == 0 {
		t.Fatal("no comparison rows")
	}
	heavy := rows[len(rows)-1]
	if heavy.SCEff <= heavy.BuckEff {
		t.Errorf("SC %.3f should beat the integrated buck %.3f at heavy load",
			heavy.SCEff, heavy.BuckEff)
	}
	if heavy.BuckAreaMM2/heavy.SCAreaMM2 < 10 {
		t.Errorf("buck/SC area ratio %.1f should be an order of magnitude",
			heavy.BuckAreaMM2/heavy.SCAreaMM2)
	}
}

func TestExtSchedulingPolicies(t *testing.T) {
	r, err := coarseStudy().ExtScheduling()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SchedPolicyResult{}
	for _, p := range r.Policies {
		byName[p.Policy] = p
	}
	rnd, aware, banded := byName["random"], byName["stack-aware"], byName["layer-banded"]

	// The paper's suggestion: stack-aware placement cuts adjacent-layer
	// imbalance and converter stress relative to oblivious placement.
	if aware.MeanImbalance >= rnd.MeanImbalance {
		t.Errorf("stack-aware imbalance %.3f should beat random %.3f",
			aware.MeanImbalance, rnd.MeanImbalance)
	}
	if aware.MaxConvMA >= rnd.MaxConvMA {
		t.Errorf("stack-aware converter stress %.1f mA should beat random %.1f mA",
			aware.MaxConvMA, rnd.MaxConvMA)
	}
	if aware.MaxIRPct > rnd.MaxIRPct*1.05 {
		t.Errorf("stack-aware IR %.2f%% should not exceed random %.2f%%",
			aware.MaxIRPct, rnd.MaxIRPct)
	}
	// The cautionary result: a coherent vertical gradient accumulates
	// rail offsets and is far worse than either other policy.
	if banded.MaxIRPct <= 2*rnd.MaxIRPct {
		t.Errorf("layer-banded IR %.2f%% should blow past random %.2f%% (coherent gradient)",
			banded.MaxIRPct, rnd.MaxIRPct)
	}
	if !banded.OverLimit {
		t.Error("layer-banded should exceed the lean converter rating")
	}
	if rnd.OverLimit || aware.OverLimit {
		t.Error("random/stack-aware should stay within the rating")
	}
}

func TestExtensionRenderers(t *testing.T) {
	s := coarseStudy()
	tr, err := s.ExtTransient()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderExtTransient(tr); !strings.Contains(out, "first droop") {
		t.Error("transient render incomplete")
	}
	if out := RenderExtConverters(s.ExtConverters()); !strings.Contains(out, "Buck eff") {
		t.Error("converter render incomplete")
	}
	sr, err := s.ExtScheduling()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderExtScheduling(sr)
	for _, want := range []string{"random", "stack-aware", "layer-banded"} {
		if !strings.Contains(out, want) {
			t.Errorf("scheduling render missing %q", want)
		}
	}
}

func TestExtElectrothermalFixedPoint(t *testing.T) {
	s := coarseStudy()
	r8, err := s.ExtElectrothermal(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r8.Converged {
		t.Error("8-layer coupling should converge (no runaway)")
	}
	// At 8 layers the hotspot sits above the 85 C characterization point,
	// so closing the loop amplifies leakage and raises the hotspot.
	if r8.CoupledHotspotC <= r8.UncoupledHotspotC {
		t.Errorf("coupled hotspot %.1f should exceed uncoupled %.1f at 8 layers",
			r8.CoupledHotspotC, r8.UncoupledHotspotC)
	}
	if r8.LeakageAmplification <= 1 {
		t.Errorf("8-layer leakage amplification = %.2f, want > 1", r8.LeakageAmplification)
	}
	// Shallow cool stacks run below 85 C: the coupled power is LOWER.
	r2, err := s.ExtElectrothermal(2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Converged {
		t.Error("2-layer coupling should converge")
	}
	if r2.CoupledHotspotC >= r2.UncoupledHotspotC {
		t.Errorf("cool 2-layer stack: coupled %.1f should be below uncoupled %.1f",
			r2.CoupledHotspotC, r2.UncoupledHotspotC)
	}
	if r2.LeakageAmplification >= 1 {
		t.Errorf("2-layer leakage amplification = %.2f, want < 1", r2.LeakageAmplification)
	}
	if _, err := s.ExtElectrothermal(0); err == nil {
		t.Error("0 layers should error")
	}
}

func TestExtThermalEM(t *testing.T) {
	r, err := coarseStudy().ExtThermalEM()
	if err != nil {
		t.Fatal(err)
	}
	// The thermal gradient: bottom layer hottest, monotone toward the sink.
	for l := 1; l < len(r.LayerTempsC); l++ {
		if r.LayerTempsC[l] >= r.LayerTempsC[l-1] {
			t.Fatalf("layer temps should fall toward the sink: %v", r.LayerTempsC)
		}
	}
	// Hot conductors age faster than at the uniform 85 C point: both PDNs
	// take a real penalty (their critical conductors sit near the hot
	// bottom), of comparable size.
	if r.RegAwarePenalty < 1.3 || r.VSAwarePenalty < 1.3 {
		t.Errorf("aware penalties = %.2f / %.2f, want > 1.3",
			r.RegAwarePenalty, r.VSAwarePenalty)
	}
	// The paper's normalized V-S-over-regular ratio survives the
	// temperature refinement within a modest factor.
	uniformGap := r.VSUniform / r.RegUniform
	awareGap := r.VSAware / r.RegAware
	if awareGap < uniformGap/2 || awareGap > uniformGap*2 {
		t.Errorf("normalized gap shifted too much: %.2f vs %.2f", awareGap, uniformGap)
	}
}

func TestExtGuardband(t *testing.T) {
	r, err := coarseStudy().ExtGuardband()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MaxDroopPct <= 0 || row.MaxDroopPct > 20 {
			t.Errorf("%s: droop %.2f%% implausible", row.Design, row.MaxDroopPct)
		}
		// The alpha-power model maps droop into at least as much
		// frequency loss, and the supply-raise power cost is about twice
		// the raise (V² scaling).
		if row.FreqLossPct < row.MaxDroopPct {
			t.Errorf("%s: freq loss %.2f%% below droop %.2f%%", row.Design, row.FreqLossPct, row.MaxDroopPct)
		}
		if row.PowerOverPct < 1.8*row.MaxDroopPct {
			t.Errorf("%s: power overhead %.2f%% below 2x droop", row.Design, row.PowerOverPct)
		}
		if row.PDNEfficiency <= 0 || row.PDNEfficiency >= 1 {
			t.Errorf("%s: efficiency %g", row.Design, row.PDNEfficiency)
		}
	}
	// At the 65% average the two equal-area designs are within ~2 points
	// of droop (the paper's 0.75% Vdd delta claim in cost terms).
	if d := r.Rows[1].MaxDroopPct - r.Rows[0].MaxDroopPct; d < 0 || d > 2.5 {
		t.Errorf("V-S minus regular droop = %.2f points, want within (0, 2.5]", d)
	}
}

func TestExtTraceNoise(t *testing.T) {
	r, err := coarseStudy().ExtTraceNoise(30)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.P50 <= r.P95 && r.P95 <= r.Max) {
		t.Errorf("quantile ordering violated: %g %g %g", r.P50, r.P95, r.Max)
	}
	if r.P50 <= 0 || r.Max > 20 {
		t.Errorf("implausible droop distribution: %g..%g", r.P50, r.Max)
	}
	// The headline: realistic phase traces keep V-S noise inside the
	// regular worst case the vast majority of the time.
	if r.FracBelowRegular < 0.9 {
		t.Errorf("V-S below regular only %.0f%% of the time", 100*r.FracBelowRegular)
	}
	if r.OverLimitSteps > r.Steps/10 {
		t.Errorf("converters over rating on %d/%d steps", r.OverLimitSteps, r.Steps)
	}
	if _, err := coarseStudy().ExtTraceNoise(0); err == nil {
		t.Error("0 steps should error")
	}
}

func TestExtScalingPowerDeliveryWall(t *testing.T) {
	r, err := coarseStudy().ExtScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// Volumetric cooling keeps every depth thermally feasible.
	for _, row := range r.Rows {
		if !row.ThermallyFeasible {
			t.Errorf("%d layers should be feasible under microchannel cooling (%.0f C)",
				row.Layers, row.HotspotC)
		}
	}
	// The regular PDN's stress scales with depth...
	if last.RegOffChipA < 2.5*first.RegOffChipA {
		t.Errorf("regular board current should scale ~3x from 8 to 24 layers: %g -> %g",
			first.RegOffChipA, last.RegOffChipA)
	}
	if last.RegMaxIRPct <= first.RegMaxIRPct || last.RegTSVLife >= first.RegTSVLife {
		t.Error("regular noise should grow and lifetime shrink with depth")
	}
	// ...while the stack's stays flat.
	if last.VSOffChipA > 1.2*first.VSOffChipA {
		t.Errorf("V-S board current should stay flat: %g -> %g", first.VSOffChipA, last.VSOffChipA)
	}
	if last.VSTSVLife < 0.9*first.VSTSVLife {
		t.Errorf("V-S lifetime should stay flat: %g -> %g", first.VSTSVLife, last.VSTSVLife)
	}
	if last.VSMaxIRPct > 5 {
		t.Errorf("24-layer V-S noise %.1f%% should stay small", last.VSMaxIRPct)
	}
}

func powerAlpha() power.AlphaPowerModel { return power.DefaultAlphaPower() }

func withinAbs(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestExtDVFS(t *testing.T) {
	r, err := coarseStudy().ExtDVFS()
	if err != nil {
		t.Fatal(err)
	}
	// The scaled point sits between threshold and nominal, and power
	// matching at 65% imbalance needs a deep cut.
	if r.VddScaled <= 0.4 || r.VddScaled >= 1.0 {
		t.Errorf("scaled Vdd = %g", r.VddScaled)
	}
	if r.PerfLoss < 0.2 || r.PerfLoss > 0.6 {
		t.Errorf("perf loss = %g, want a deep near-threshold cut", r.PerfLoss)
	}
	// Check the (v, f) pair actually equalizes dynamic power.
	core := NewStudy().Chip.Core
	model := powerAlpha()
	scale := (r.VddScaled / core.Vdd) * (r.VddScaled / core.Vdd) * model.FreqScale(r.VddScaled, core.Vdd)
	if !withinAbs(scale, 0.35, 0.01) {
		t.Errorf("dynamic scale at DVFS point = %g, want 0.35", scale)
	}
	// Balancing erases the V-S noise; converters only tame it.
	if r.BalancedIRPct >= r.ConverterAltIRPct {
		t.Error("full balancing should beat the converter route on noise")
	}
	if r.ImbalancedIRPct <= r.ConverterAltIRPct {
		t.Error("the lean imbalanced design must be the noisiest")
	}
}

func TestExtDecapSplit(t *testing.T) {
	r, err := coarseStudy().ExtDecapSplit(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Budget ≈ the 8-converter allocation (~24% of a core with trench caps).
	if r.BudgetPct < 20 || r.BudgetPct > 28 {
		t.Errorf("budget = %.1f%%", r.BudgetPct)
	}
	// Fewer converters -> worse DC noise; more decap -> smaller droop.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].DCNoisePct <= r.Rows[i-1].DCNoisePct {
			t.Errorf("DC noise should grow as converters shrink: row %d", i)
		}
		if r.Rows[i].FirstDroopPct >= r.Rows[i-1].FirstDroopPct {
			t.Errorf("droop should shrink as decap grows: row %d", i)
		}
	}
	if _, err := coarseStudy().ExtDecapSplit(0); err == nil {
		t.Error("0 steps should error")
	}
}

func TestNewExtensionRenderers(t *testing.T) {
	// Cheap content checks: every extension renderer names its key rows.
	et := &ExtElectrothermalResult{Layers: 8, UncoupledHotspotC: 95, CoupledHotspotC: 96.5, LeakageAmplification: 1.07, Converged: true, Iterations: 3}
	if out := RenderExtElectrothermal([]*ExtElectrothermalResult{et}); !strings.Contains(out, "96.5") {
		t.Error("electrothermal render incomplete")
	}
	runaway := *et
	runaway.Converged = false
	if out := RenderExtElectrothermal([]*ExtElectrothermalResult{&runaway}); !strings.Contains(out, "NOT CONVERGED") {
		t.Error("runaway flag missing")
	}
	tem := &ExtThermalEMResult{Layers: 8, LayerTempsC: []float64{94, 72}, RegUniform: 0.24, RegAware: 0.12, VSUniform: 1, VSAware: 0.5, RegAwarePenalty: 2, VSAwarePenalty: 2}
	if out := RenderExtThermalEM(tem); !strings.Contains(out, "94C") || !strings.Contains(out, "2.0x penalty") {
		t.Error("thermal-EM render incomplete")
	}
	gb := &ExtGuardbandResult{ImbalancePct: 65, Rows: []GuardbandRow{{Design: "regular", MaxDroopPct: 4.9, FreqLossPct: 5.1, PowerOverPct: 10.6, PDNEfficiency: 0.95}}}
	if out := RenderExtGuardband(gb); !strings.Contains(out, "regular") || !strings.Contains(out, "10.6") {
		t.Error("guardband render incomplete")
	}
	tn := &ExtTraceNoiseResult{Steps: 10, P50: 1.4, P95: 2.2, Max: 2.6, MaxConvMA: 18, RegularWorstPct: 5, FracBelowRegular: 1}
	if out := RenderExtTraceNoise(tn); !strings.Contains(out, "p95 2.20%") {
		t.Error("trace-noise render incomplete")
	}
	sc := &ExtScalingResult{Rows: []ScalingRow{{Layers: 24, HotspotC: 34, RegOffChipA: 182, RegMaxPadMA: 830, RegMaxIRPct: 37, RegTSVLife: 0.11, VSOffChipA: 8.3, VSMaxIRPct: 2.1, VSTSVLife: 0.99}}}
	if out := RenderExtScaling(sc); !strings.Contains(out, "182") || !strings.Contains(out, "830") {
		t.Error("scaling render incomplete")
	}
	dv := &ExtDVFSResult{ImbalancePct: 65, VddScaled: 0.72, FreqScaled: 0.67, PerfLoss: 0.33, ImbalancedIRPct: 26.7, BalancedIRPct: 0.95, ConverterAltIRPct: 5.8, ConverterAltAreaPct: 17.8}
	if out := RenderExtDVFS(dv); !strings.Contains(out, "0.72 V") {
		t.Error("DVFS render incomplete")
	}
	ds := &ExtDecapSplitResult{BudgetPct: 24, ImbalancePct: 65, Rows: []DecapSplitRow{{Converters: 8, DCNoisePct: 3.7, FirstDroopPct: 4.5, DecapPerMM2: 4}}}
	if out := RenderExtDecapSplit(ds); !strings.Contains(out, "decap-density") {
		t.Error("decap-split render incomplete")
	}
}
