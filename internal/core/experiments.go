package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"

	"voltstack/internal/floorplan"
	"voltstack/internal/parallel"
	"voltstack/internal/pdngrid"
	"voltstack/internal/sc"
	"voltstack/internal/spice"
	"voltstack/internal/telemetry"
	"voltstack/internal/thermal"
	"voltstack/internal/units"
	"voltstack/internal/workload"
)

// ---------------------------------------------------------------- Table 1

// ParamRow is one row of Table 1.
type ParamRow struct {
	Name  string
	Value string
}

// Table1 returns the PDN modeling parameters (the paper's Table 1).
func (s *Study) Table1() []ParamRow {
	p := s.Params
	um := func(v float64) string { return fmt.Sprintf("%.4g", v/units.Micrometer) }
	return []ParamRow{
		{"C4 Pad Pitch (um)", um(p.PadPitch)},
		{"C4 Pad Resistance (mOhm)", fmt.Sprintf("%.4g", p.PadR/units.Milliohm)},
		{"Minimum TSV Pitch (um)", um(p.TSVMinPitch)},
		{"TSV Diameter (um)", um(p.TSVDiameter)},
		{"Single TSV's Resistance (mOhm)", fmt.Sprintf("%.5g", p.TSVR/units.Milliohm)},
		{"TSV Keep-Out Zone's Side Length (um)", um(p.TSVKoZSide)},
		{"Package Resistance per Polarity (mOhm)", fmt.Sprintf("%.4g", p.PkgR/units.Milliohm)},
		{"On-chip Grid Segment Resistance (Ohm @32x32)", fmt.Sprintf("%.4g", p.GridRSeg)},
	}
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one TSV topology design point of Table 2.
type Table2Row struct {
	Name        string
	EffPitchUM  float64
	TSVsPerCore int
	OverheadPct float64
}

// Table2 returns the three TSV topologies with their computed area
// overheads.
func (s *Study) Table2() []Table2Row {
	defer s.observe("table2")()
	var rows []Table2Row
	for _, t := range []pdngrid.TSVTopology{pdngrid.DenseTSV(), pdngrid.SparseTSV(), pdngrid.FewTSV()} {
		rows = append(rows, Table2Row{
			Name:        t.Name,
			EffPitchUM:  t.EffPitch / units.Micrometer,
			TSVsPerCore: t.PerCore,
			OverheadPct: 100 * t.AreaOverheadFrac(s.Chip.Core.Area, s.Params.TSVKoZSide),
		})
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 3

// Fig3Point is one load point of the converter validation.
type Fig3Point struct {
	LoadMA      float64
	ModelEff    float64 // compact-model efficiency
	SimEff      float64 // switch-level simulation efficiency
	ModelDropMV float64 // compact-model output voltage drop
	SimDropMV   float64 // simulated drop below the ideal midpoint
}

// fig3 runs the validation at the given loads under the given control.
func (s *Study) fig3(ctrl sc.Control, loadsMA []float64) ([]Fig3Point, error) {
	defer s.observe("fig3")()
	const vin = 2.0 // two stacked 1 V loads
	var out []Fig3Point
	for _, mA := range loadsMA {
		il := mA * units.Milliampere
		op := sc.Evaluate(s.Converter, ctrl, vin, il)
		cell := spice.CellFromParams(s.Converter, vin)
		cell.FSw = ctrl.Freq(s.Converter, il)
		r, err := cell.Simulate(il, spice.SimOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: fig3 at %g mA: %v", mA, err)
		}
		out = append(out, Fig3Point{
			LoadMA:      mA,
			ModelEff:    op.Efficiency,
			SimEff:      r.Efficiency,
			ModelDropMV: op.VDrop / units.Millivolt,
			SimDropMV:   (vin*s.Converter.Topo.Ratio - r.VOutAvg) / units.Millivolt,
		})
	}
	return out, nil
}

// Fig3a validates the closed-loop converter (efficiency vs. load,
// 1.6-100 mA).
func (s *Study) Fig3a() ([]Fig3Point, error) {
	return s.fig3(sc.ClosedLoop{}, []float64{1.6, 3.1, 6.3, 12.5, 25, 50, 100})
}

// Fig3b validates the open-loop converter (efficiency and output drop vs.
// load, 10-90 mA).
func (s *Study) Fig3b() ([]Fig3Point, error) {
	return s.fig3(sc.OpenLoop{}, []float64{10, 30, 50, 70, 90})
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Series is one curve of an EM-lifetime figure: normalized lifetime
// per layer count.
type Fig5Series struct {
	Label  string
	Values []float64 // aligned with Layers
}

// Fig5 holds either panel of Fig. 5.
type Fig5 struct {
	Layers []int
	Series []Fig5Series
}

// Fig5a evaluates the normalized TSV EM-free MTTF vs. layer count for the
// regular PDN under the three TSV topologies and the V-S PDN with the Few
// topology. Pads are fully allocated to power (the paper's 32 Vdd pads
// per core). All values are normalized to the 2-layer V-S point.
func (s *Study) Fig5a() (*Fig5, error) {
	defer s.observe("fig5a")()
	const padFrac = 1.0
	layers := s.scanLayers()
	type scenario struct {
		label string
		build func(l int) (*pdngrid.PDN, error)
	}
	scenarios := []scenario{
		{"Reg. PDN, Dense TSV", func(l int) (*pdngrid.PDN, error) { return s.RegularPDN(l, pdngrid.DenseTSV(), padFrac) }},
		{"Reg. PDN, Sparse TSV", func(l int) (*pdngrid.PDN, error) { return s.RegularPDN(l, pdngrid.SparseTSV(), padFrac) }},
		{"Reg. PDN, Few TSV", func(l int) (*pdngrid.PDN, error) { return s.RegularPDN(l, pdngrid.FewTSV(), padFrac) }},
		{"V-S PDN, Few TSV", func(l int) (*pdngrid.PDN, error) { return s.VoltageStackedPDN(l, 4, pdngrid.FewTSV(), padFrac) }},
	}

	// Flatten the scenario × layer grid, plus the normalization base (the
	// 2-layer V-S point) at index 0, into independent solves for the
	// worker pool; every task builds its own PDN.
	type task struct{ si, layer int }
	tasks := []task{{3, 2}}
	for si := range scenarios {
		for _, l := range layers {
			tasks = append(tasks, task{si, l})
		}
	}
	lives, err := parallel.Map(context.Background(), s.pool(), tasks, func(_ int, tk task) (float64, error) {
		p, err := scenarios[tk.si].build(tk.layer)
		if err != nil {
			return 0, err
		}
		r, err := solveUniform(p)
		if err != nil {
			return 0, err
		}
		return s.TSVLifetime(r)
	})
	if err != nil {
		return nil, err
	}
	base := lives[0]
	if err := checkPositive("fig5a base lifetime", base); err != nil {
		return nil, err
	}
	fig := &Fig5{Layers: layers}
	i := 1
	for _, sc := range scenarios {
		series := Fig5Series{Label: sc.label}
		for range layers {
			series.Values = append(series.Values, lives[i]/base)
			i++
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig5b evaluates the normalized C4 EM-free MTTF vs. layer count for the
// regular PDN with 25/50/75/100 % power-pad allocations and the V-S PDN
// with 25 %. TSV topology is fixed (Few) since the C4 array's EM
// robustness is insensitive to it. Normalized to the 2-layer V-S point.
func (s *Study) Fig5b() (*Fig5, error) {
	defer s.observe("fig5b")()
	layers := s.scanLayers()
	fracs := []float64{0.25, 0.5, 0.75, 1.0}

	// Flatten every series point, plus the normalization base (2-layer
	// V-S at 25 %) at index 0, into independent solves.
	type task struct {
		kind   pdngrid.Kind
		layers int
		frac   float64
	}
	tasks := []task{{pdngrid.VoltageStacked, 2, 0.25}}
	for _, frac := range fracs {
		for _, l := range layers {
			tasks = append(tasks, task{pdngrid.Regular, l, frac})
		}
	}
	for _, l := range layers {
		tasks = append(tasks, task{pdngrid.VoltageStacked, l, 0.25})
	}
	lives, err := parallel.Map(context.Background(), s.pool(), tasks, func(_ int, tk task) (float64, error) {
		return s.c4LifetimeAt(tk.kind, tk.layers, tk.frac)
	})
	if err != nil {
		return nil, err
	}
	vsBase := lives[0]
	if err := checkPositive("fig5b base lifetime", vsBase); err != nil {
		return nil, err
	}
	fig := &Fig5{Layers: layers}
	i := 1
	for _, frac := range fracs {
		series := Fig5Series{Label: fmt.Sprintf("Reg. PDN (%d%% Power C4)", int(frac*100))}
		for range layers {
			series.Values = append(series.Values, lives[i]/vsBase)
			i++
		}
		fig.Series = append(fig.Series, series)
	}
	series := Fig5Series{Label: "V-S PDN (25% Power C4)"}
	for range layers {
		series.Values = append(series.Values, lives[i]/vsBase)
		i++
	}
	fig.Series = append(fig.Series, series)
	return fig, nil
}

func (s *Study) c4LifetimeAt(kind pdngrid.Kind, layers int, padFrac float64) (float64, error) {
	var p *pdngrid.PDN
	var err error
	if kind == pdngrid.Regular {
		p, err = s.RegularPDN(layers, pdngrid.FewTSV(), padFrac)
	} else {
		p, err = s.VoltageStackedPDN(layers, 4, pdngrid.FewTSV(), padFrac)
	}
	if err != nil {
		return 0, err
	}
	r, err := solveUniform(p)
	if err != nil {
		return 0, err
	}
	return s.C4Lifetime(r)
}

// ---------------------------------------------------------------- Fig. 6/8

// VSSweepPoint is one (converter count, imbalance) operating point of the
// 8-layer V-S PDN.
type VSSweepPoint struct {
	Imbalance  float64
	MaxIRPct   float64 // max on-chip IR drop, % Vdd
	Efficiency float64
	MaxConvMA  float64
	OverLimit  bool // converter current exceeds the 100 mA rating
}

// VSSweep sweeps workload imbalance for one converter allocation on the
// deepest stack. The sweep points are solved concurrently: Solve never
// mutates the built PDN, so the points share one network description.
func (s *Study) VSSweep(convPerCore int, imbalances []float64) ([]VSSweepPoint, error) {
	p, err := s.VoltageStackedPDN(s.MaxLayers, convPerCore, pdngrid.FewTSV(), 0.5)
	if err != nil {
		return nil, err
	}
	return parallel.Map(context.Background(), s.pool(), imbalances, func(_ int, imb float64) (VSSweepPoint, error) {
		r, err := solveInterleaved(p, imb)
		if err != nil {
			return VSSweepPoint{}, err
		}
		return VSSweepPoint{
			Imbalance:  imb,
			MaxIRPct:   100 * r.MaxIRDropFrac,
			Efficiency: r.Efficiency,
			MaxConvMA:  r.MaxConverterCurrent / units.Milliampere,
			OverLimit:  r.OverLimit,
		}, nil
	})
}

// Fig6 holds the voltage-noise evaluation of the 8-layer processor.
type Fig6 struct {
	Imbalances []float64
	// VS maps converters-per-core to IR-drop series; NaN marks points
	// dropped for exceeding the converter current limit.
	VS map[int][]float64
	// RegularIRPct are the horizontal reference lines (worst case: all
	// layers active) per TSV topology name.
	RegularIRPct map[string]float64
}

// Fig6ConvCounts is the converter allocation axis of Fig. 6 and Fig. 8.
var Fig6ConvCounts = []int{2, 4, 6, 8}

// Fig6 evaluates maximum on-chip IR drop vs. workload imbalance for the
// V-S PDN (Few TSV, 2-8 converters/core) against the regular PDN's
// worst-case lines for the three TSV topologies.
func (s *Study) Fig6() (*Fig6, error) {
	defer s.observe("fig6")()
	imbs := imbalanceAxis()
	fig := &Fig6{
		Imbalances:   imbs,
		VS:           map[int][]float64{},
		RegularIRPct: map[string]float64{},
	}
	for _, n := range Fig6ConvCounts {
		pts, err := s.VSSweep(n, imbs)
		if err != nil {
			return nil, err
		}
		series := make([]float64, len(pts))
		for i, pt := range pts {
			if pt.OverLimit {
				series[i] = math.NaN()
			} else {
				series[i] = pt.MaxIRPct
			}
		}
		fig.VS[n] = series
	}
	topos := []pdngrid.TSVTopology{pdngrid.DenseTSV(), pdngrid.SparseTSV(), pdngrid.FewTSV()}
	lines, err := parallel.Map(context.Background(), s.pool(), topos, func(_ int, tsv pdngrid.TSVTopology) (float64, error) {
		p, err := s.RegularPDN(s.MaxLayers, tsv, 0.5)
		if err != nil {
			return 0, err
		}
		r, err := solveUniform(p)
		if err != nil {
			return 0, err
		}
		return 100 * r.MaxIRDropFrac, nil
	})
	if err != nil {
		return nil, err
	}
	for i, tsv := range topos {
		fig.RegularIRPct[tsv.Name] = lines[i]
	}
	return fig, nil
}

func imbalanceAxis() []float64 {
	var out []float64
	for i := 0; i <= 10; i++ {
		out = append(out, float64(i)/10)
	}
	return out
}

// Fig8 holds the power-efficiency evaluation.
type Fig8 struct {
	Imbalances []float64
	// VS maps converters-per-core to efficiency series (NaN when over
	// the converter limit).
	VS map[int][]float64
	// RegularSC is the baseline where converters supply all power in a
	// regular PDN (8 converters/core).
	RegularSC []float64
}

// Fig8 evaluates system power efficiency vs. imbalance for the V-S PDN at
// 2-8 converters per core and for the regular-PDN-with-SC baseline.
func (s *Study) Fig8() (*Fig8, error) {
	defer s.observe("fig8")()
	imbs := imbalanceAxis()[1:] // the paper's x-axis starts at 10%
	fig := &Fig8{Imbalances: imbs, VS: map[int][]float64{}}
	for _, n := range Fig6ConvCounts {
		pts, err := s.VSSweep(n, imbs)
		if err != nil {
			return nil, err
		}
		series := make([]float64, len(pts))
		for i, pt := range pts {
			if pt.OverLimit {
				series[i] = math.NaN()
			} else {
				series[i] = pt.Efficiency
			}
		}
		fig.VS[n] = series
	}
	baseCfg := pdngrid.Config{
		Kind:              pdngrid.Regular,
		Layers:            s.MaxLayers,
		Chip:              s.Chip,
		Params:            s.Params,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 8,
		Converter:         s.Converter,
	}
	for _, imb := range imbs {
		eff, err := pdngrid.RegularSCEfficiency(baseCfg, imb)
		if err != nil {
			return nil, err
		}
		fig.RegularSC = append(fig.RegularSC, eff)
	}
	return fig, nil
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Row is one application's box-plot row.
type Fig7Row struct {
	App          string
	Stats        workload.BoxStats
	MaxImbalance float64
}

// Fig7 holds the workload-imbalance study.
type Fig7 struct {
	Rows                []Fig7Row
	AverageMaxImbalance float64
	GlobalMaxImbalance  float64
	BestCaseApp         string
}

// Fig7 evaluates the synthetic Parsec populations.
func (s *Study) Fig7() *Fig7 {
	defer s.observe("fig7")()
	suite := s.Workloads()
	fig := &Fig7{
		AverageMaxImbalance: suite.AverageMaxImbalance(),
		GlobalMaxImbalance:  suite.GlobalMaxImbalance(),
		BestCaseApp:         suite.BestCaseApp().App.Name,
	}
	for _, p := range suite {
		fig.Rows = append(fig.Rows, Fig7Row{
			App:          p.App.Name,
			Stats:        p.Stats(),
			MaxImbalance: p.MaxImbalance(),
		})
	}
	return fig
}

// ---------------------------------------------------------------- thermal

// ThermalCheck reports the deepest air-cooled stack that stays below the
// 100 °C limit (the paper's Sec. 4.1 feasibility argument).
type ThermalCheck struct {
	MaxLayersUnder100C int
	HotspotAt8Layers   float64
}

// Thermal runs the stack feasibility check.
func (s *Study) Thermal() (*ThermalCheck, error) {
	defer s.observe("thermal")()
	die := s.Chip.Die()
	cfg := thermal.DefaultConfig(die, 8)
	fp, err := s.Chip.Floorplan()
	if err != nil {
		return nil, err
	}
	acts := make([]float64, s.Chip.NumCores())
	for i := range acts {
		acts[i] = 1
	}
	pm, err := s.Chip.PowerMap(acts)
	if err != nil {
		return nil, err
	}
	raster := floorplan.NewRaster(die, cfg.Nx, cfg.Ny)
	cells, err := raster.Distribute(fp.Blocks, pm)
	if err != nil {
		return nil, err
	}
	n, err := thermal.MaxLayersUnder(cfg, cells, 100, 16)
	if err != nil {
		return nil, err
	}
	if n < s.MaxLayers && telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelWarn, "core: thermal infeasibility below study depth",
			slog.Int("max_layers_under_100c", n),
			slog.Int("study_max_layers", s.MaxLayers))
	}
	maps := make([][]float64, 8)
	for i := range maps {
		maps[i] = cells
	}
	r8, err := thermal.Solve(cfg, maps)
	if err != nil {
		return nil, err
	}
	return &ThermalCheck{MaxLayersUnder100C: n, HotspotAt8Layers: r8.MaxC}, nil
}

// ---------------------------------------------------------------- headlines

// Headlines aggregates the paper's quantitative claims for verification.
type Headlines struct {
	// Fig. 5b: lifetime gap between V-S and regular C4 arrays at 8 layers.
	C4GapAt8Layers float64
	// Fig. 5a: fraction of TSV lifetime the regular Few-TSV PDN loses
	// going from 2 to 8 layers.
	RegTSVDegradation float64
	// Fig. 5a: same for the V-S PDN (should be small).
	VSTSVDegradation float64
	// Fig. 5a: 2-layer regular-to-V-S lifetime ratio (should exceed 1:
	// the through-via effect makes V-S worse at shallow stacks).
	TwoLayerRegOverVS float64
	// Fig. 6: V-S excess IR drop over the equal-area regular (Dense)
	// PDN at the application-average 65% imbalance, in % Vdd.
	DeltaIRAt65Pct float64
	// Fig. 6: largest imbalance at which the V-S PDN (8 conv/core) still
	// beats the regular Dense PDN.
	CrossoverImbalance float64
}

// Headlines computes the summary claims from the underlying experiments.
// Its four independent inputs — Fig. 5a, Fig. 5b, the fine-grained
// imbalance sweep and the dense-PDN reference solve — run concurrently on
// the study's pool; each is itself deterministic, so so is the summary.
func (s *Study) Headlines() (*Headlines, error) {
	defer s.observe("headlines")()
	h := &Headlines{}

	// Fine-grained imbalance sweep for the crossover and the 65% delta.
	imbs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0}
	var (
		f5a, f5b *Fig5
		pts      []VSSweepPoint
		dense    float64
	)
	err := parallel.Go(context.Background(), s.pool(),
		func() (err error) { f5a, err = s.Fig5a(); return },
		func() (err error) { f5b, err = s.Fig5b(); return },
		func() (err error) { pts, err = s.VSSweep(8, imbs); return },
		func() error {
			pDense, err := s.RegularPDN(s.MaxLayers, pdngrid.DenseTSV(), 0.5)
			if err != nil {
				return err
			}
			rDense, err := solveUniform(pDense)
			if err != nil {
				return err
			}
			dense = 100 * rDense.MaxIRDropFrac
			return nil
		},
	)
	if err != nil {
		return nil, err
	}

	series := map[string][]float64{}
	for _, sr := range f5a.Series {
		series[sr.Label] = sr.Values
	}
	regFew := series["Reg. PDN, Few TSV"]
	vs := series["V-S PDN, Few TSV"]
	last := len(f5a.Layers) - 1
	h.RegTSVDegradation = 1 - regFew[last]/regFew[0]
	h.VSTSVDegradation = 1 - vs[last]/vs[0]
	h.TwoLayerRegOverVS = regFew[0] / vs[0]

	var reg25, vs25 []float64
	for _, sr := range f5b.Series {
		switch sr.Label {
		case "Reg. PDN (25% Power C4)":
			reg25 = sr.Values
		case "V-S PDN (25% Power C4)":
			vs25 = sr.Values
		}
	}
	h.C4GapAt8Layers = vs25[last] / reg25[last]

	h.CrossoverImbalance = 0
	for _, pt := range pts {
		if !pt.OverLimit && pt.MaxIRPct <= dense {
			h.CrossoverImbalance = pt.Imbalance
		}
		if pt.Imbalance == 0.65 {
			h.DeltaIRAt65Pct = pt.MaxIRPct - dense
		}
	}
	return h, nil
}
