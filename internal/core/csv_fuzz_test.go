package core

import (
	"math"
	"strings"
	"testing"
)

func TestParseCSVRoundTrip(t *testing.T) {
	fig := &Fig5{
		Layers: []int{2, 4, 6, 8},
		Series: []Fig5Series{
			{Label: "Reg", Values: []float64{1.5, 1.1, 0.8, 0.7}},
			{Label: "V-S", Values: []float64{1, 0.99, 0.985, 0.98}},
		},
	}
	tbl, err := ParseCSV(CSVFig5(fig))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Header) != 3 || len(tbl.Rows) != 4 {
		t.Fatalf("shape %dx%d", len(tbl.Rows), len(tbl.Header))
	}
	col, err := tbl.Col("V-S")
	if err != nil {
		t.Fatal(err)
	}
	v, err := tbl.Float(3, col)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.98 {
		t.Errorf("V-S at 8 layers = %g", v)
	}
}

func TestParseCSVNaNField(t *testing.T) {
	fig := &Fig6{
		Imbalances:   []float64{0, 1},
		VS:           map[int][]float64{2: {1.2, math.NaN()}},
		RegularIRPct: map[string]float64{"Dense": 4.9},
	}
	tbl, err := ParseCSV(CSVFig6(fig))
	if err != nil {
		t.Fatal(err)
	}
	v, err := tbl.Float(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("empty field should decode as NaN, got %g", v)
	}
}

func TestParseCSVMalformed(t *testing.T) {
	cases := map[string]string{
		"empty document": "",
		"ragged row":     "a,b,c\n1,2\n",
		"bare quote":     "a,b\n\"unterminated\n",
		"quote in field": "a,b\n1,x\"y\n",
	}
	for name, in := range cases {
		if _, err := ParseCSV(in); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseCSVFloatErrors(t *testing.T) {
	tbl, err := ParseCSV("x,y\n1,2\nhuge,1e999\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Float(1, 0); err == nil {
		t.Error("non-numeric field should error")
	}
	if _, err := tbl.Float(1, 1); err == nil {
		t.Error("overflowing field should error, not silently return Inf")
	}
	if _, err := tbl.Float(5, 0); err == nil {
		t.Error("row out of range should error")
	}
	if _, err := tbl.Float(0, 9); err == nil {
		t.Error("col out of range should error")
	}
	if _, err := tbl.Col("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

// FuzzParseCSV asserts the parser's crash-safety contract: any input —
// malformed rows, empty fields, huge values, raw bytes — either parses
// into a rectangular table or returns an error; it never panics. Every
// cell of a successfully parsed table must be readable through Float
// (value or error, no panic).
func FuzzParseCSV(f *testing.F) {
	f.Add("layers,Reg,V-S\n2,1.5,1\n8,0.7,0.98\n")
	f.Add("imbalance,vs_2conv_ir_pct\n0,1.2\n1,\n")
	f.Add("a,b\n1,2\n3\n")      // ragged
	f.Add("\"\n")               // bare quote
	f.Add("x\n1e999\n")         // overflow
	f.Add("x\n-1e-999\n")       // underflow
	f.Add(",,,\n,,,\n")         // empty fields
	f.Add("a;b;c\n1;2;3\n")     // wrong delimiter
	f.Add("héadér,✓\nvalü,∞\n") // non-ASCII
	f.Add("x\r\n1\r\n")         // CRLF
	f.Add(strings.Repeat("9", 4096) + "\n" + strings.Repeat("9", 4096) + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		tbl, err := ParseCSV(in)
		if err != nil {
			return
		}
		if len(tbl.Header) == 0 {
			t.Fatal("successful parse returned empty header")
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("ragged row survived parsing: %d fields, header %d", len(row), len(tbl.Header))
			}
		}
		for r := range tbl.Rows {
			for c := range tbl.Header {
				// Float must return a value or an error for any field bytes,
				// never panic.
				_, _ = tbl.Float(r, c)
			}
		}
	})
}
