package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden regression tests pin the reproduced paper numbers: Table 1,
// Table 2 and the Headlines summary are snapshotted as JSON under
// testdata/golden. Performance work (parallelism, solver changes) must
// not drift these values; a deliberate model change regenerates them
// with
//
//	go test ./internal/core -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s — run `go test ./internal/core -run TestGolden -update` (%v)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden snapshot.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.json", NewStudy().Coarse().Table1())
}

func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2.json", NewStudy().Coarse().Table2())
}

func TestGoldenHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure pipeline")
	}
	h, err := NewStudy().Coarse().Headlines()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "headlines.json", h)
}
