package core

import (
	"fmt"
	"sort"
)

// Experiment registry: the canonical name → driver mapping behind both
// cmd/vsexplore and the evaluation service. Registering here (instead of
// in each binary) guarantees that a job submitted over HTTP runs exactly
// the code the CLI runs, so the two render byte-identical output.

// experimentOrder is the canonical execution/printing order.
var experimentOrder = []string{
	"table1", "table2", "fig3a", "fig3b", "fig5a", "fig5b", "fig6", "fig7", "fig8",
	"thermal", "headlines", "ext-transient", "ext-converters", "ext-scheduling",
	"ext-electrothermal", "ext-thermal-em", "ext-guardband", "ext-trace-noise",
	"ext-scaling", "ext-dvfs", "ext-decap-split", "ext-em-mc",
}

// textRunners renders each experiment as the human-readable table/figure
// text of vsexplore's default mode.
var textRunners = map[string]func(*Study) (string, error){
	"table1": func(s *Study) (string, error) { return RenderTable1(s.Table1()), nil },
	"table2": func(s *Study) (string, error) { return RenderTable2(s.Table2()), nil },
	"fig3a": func(s *Study) (string, error) {
		pts, err := s.Fig3a()
		if err != nil {
			return "", err
		}
		return RenderFig3("Fig. 3a: closed-loop SC converter validation (model vs. switch-level simulation)", pts, false), nil
	},
	"fig3b": func(s *Study) (string, error) {
		pts, err := s.Fig3b()
		if err != nil {
			return "", err
		}
		return RenderFig3("Fig. 3b: open-loop SC converter validation (model vs. switch-level simulation)", pts, true), nil
	},
	"fig5a": func(s *Study) (string, error) {
		f, err := s.Fig5a()
		if err != nil {
			return "", err
		}
		return RenderFig5("Fig. 5a: normalized power-supply TSV EM-free MTTF (base: 2-layer V-S)", f), nil
	},
	"fig5b": func(s *Study) (string, error) {
		f, err := s.Fig5b()
		if err != nil {
			return "", err
		}
		return RenderFig5("Fig. 5b: normalized power-supply C4 EM-free MTTF (base: 2-layer V-S)", f), nil
	},
	"fig6": func(s *Study) (string, error) {
		f, err := s.Fig6()
		if err != nil {
			return "", err
		}
		return RenderFig6(f), nil
	},
	"fig7": func(s *Study) (string, error) { return RenderFig7(s.Fig7()), nil },
	"fig8": func(s *Study) (string, error) {
		f, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return RenderFig8(f), nil
	},
	"thermal": func(s *Study) (string, error) {
		tc, err := s.Thermal()
		if err != nil {
			return "", err
		}
		return RenderThermal(tc), nil
	},
	"headlines": func(s *Study) (string, error) {
		h, err := s.Headlines()
		if err != nil {
			return "", err
		}
		return RenderHeadlines(h), nil
	},
	"ext-transient": func(s *Study) (string, error) {
		r, err := s.ExtTransient()
		if err != nil {
			return "", err
		}
		return RenderExtTransient(r), nil
	},
	"ext-converters": func(s *Study) (string, error) {
		return RenderExtConverters(s.ExtConverters()), nil
	},
	"ext-scheduling": func(s *Study) (string, error) {
		r, err := s.ExtScheduling()
		if err != nil {
			return "", err
		}
		return RenderExtScheduling(r), nil
	},
	"ext-decap-split": func(s *Study) (string, error) {
		r, err := s.ExtDecapSplit(1200)
		if err != nil {
			return "", err
		}
		return RenderExtDecapSplit(r), nil
	},
	"ext-dvfs": func(s *Study) (string, error) {
		r, err := s.ExtDVFS()
		if err != nil {
			return "", err
		}
		return RenderExtDVFS(r), nil
	},
	"ext-scaling": func(s *Study) (string, error) {
		r, err := s.ExtScaling()
		if err != nil {
			return "", err
		}
		return RenderExtScaling(r), nil
	},
	"ext-trace-noise": func(s *Study) (string, error) {
		r, err := s.ExtTraceNoise(100)
		if err != nil {
			return "", err
		}
		return RenderExtTraceNoise(r), nil
	},
	"ext-guardband": func(s *Study) (string, error) {
		r, err := s.ExtGuardband()
		if err != nil {
			return "", err
		}
		return RenderExtGuardband(r), nil
	},
	"ext-thermal-em": func(s *Study) (string, error) {
		r, err := s.ExtThermalEM()
		if err != nil {
			return "", err
		}
		return RenderExtThermalEM(r), nil
	},
	"ext-em-mc": func(s *Study) (string, error) {
		r, err := s.ExtEMMonteCarlo(4000)
		if err != nil {
			return "", err
		}
		return RenderExtEMMonteCarlo(r), nil
	},
	"ext-electrothermal": func(s *Study) (string, error) {
		var rows []*ExtElectrothermalResult
		for layers := 2; layers <= 8; layers += 2 {
			r, err := s.ExtElectrothermal(layers)
			if err != nil {
				return "", err
			}
			rows = append(rows, r)
		}
		return RenderExtElectrothermal(rows), nil
	},
}

// csvRunners renders the figures that have a machine-readable CSV form.
var csvRunners = map[string]func(*Study) (string, error){
	"fig3a": func(s *Study) (string, error) {
		pts, err := s.Fig3a()
		if err != nil {
			return "", err
		}
		return CSVFig3(pts), nil
	},
	"fig3b": func(s *Study) (string, error) {
		pts, err := s.Fig3b()
		if err != nil {
			return "", err
		}
		return CSVFig3(pts), nil
	},
	"fig5a": func(s *Study) (string, error) {
		fig, err := s.Fig5a()
		if err != nil {
			return "", err
		}
		return CSVFig5(fig), nil
	},
	"fig5b": func(s *Study) (string, error) {
		fig, err := s.Fig5b()
		if err != nil {
			return "", err
		}
		return CSVFig5(fig), nil
	},
	"fig6": func(s *Study) (string, error) {
		fig, err := s.Fig6()
		if err != nil {
			return "", err
		}
		return CSVFig6(fig), nil
	},
	"fig7": func(s *Study) (string, error) { return CSVFig7(s.Fig7()), nil },
	"fig8": func(s *Study) (string, error) {
		fig, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return CSVFig8(fig), nil
	},
}

// ExperimentNames returns every registered experiment in canonical order.
// The returned slice is fresh; callers may mutate it.
func ExperimentNames() []string {
	return append([]string(nil), experimentOrder...)
}

// IsExperiment reports whether name is a registered experiment.
func IsExperiment(name string) bool {
	_, ok := textRunners[name]
	return ok
}

// HasCSV reports whether the named experiment has a CSV rendering.
func HasCSV(name string) bool {
	_, ok := csvRunners[name]
	return ok
}

// CSVExperimentNames returns the experiments with a CSV form, sorted.
func CSVExperimentNames() []string {
	names := make([]string, 0, len(csvRunners))
	for n := range csvRunners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunExperiment runs one named experiment driver on s and returns its
// rendered output — the exact bytes vsexplore prints for it.
func RunExperiment(s *Study, name string, csv bool) (string, error) {
	runners := textRunners
	if csv {
		runners = csvRunners
	}
	run, ok := runners[name]
	if !ok {
		if csv && IsExperiment(name) {
			return "", fmt.Errorf("core: no CSV form for %q", name)
		}
		return "", fmt.Errorf("core: unknown experiment %q", name)
	}
	return run(s)
}
