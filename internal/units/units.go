// Package units provides physical constants, SI unit helpers and tolerant
// floating-point comparison utilities shared by every voltstack module.
//
// All voltstack quantities are plain float64 values in base SI units
// (volts, amperes, ohms, farads, seconds, meters, watts, kelvin). The
// named constants below exist so that configuration code can say
// 200*units.Micrometer instead of 200e-6 and stay self-documenting.
package units

import "math"

// SI scale factors. Multiply a number by one of these to express it in
// base units, e.g. 5 * units.Milliampere.
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// Convenience unit aliases (all values in base SI units).
const (
	Millimeter = Milli // meters
	Micrometer = Micro // meters
	Nanometer  = Nano  // meters

	Milliohm = Milli // ohms
	Kiloohm  = Kilo  // ohms

	Milliampere = Milli // amperes
	Microampere = Micro // amperes

	Millivolt = Milli // volts

	Nanofarad  = Nano  // farads
	Picofarad  = Pico  // farads
	Femtofarad = Femto // farads

	Megahertz = Mega // hertz
	Gigahertz = Giga // hertz

	Nanosecond  = Nano  // seconds
	Picosecond  = Pico  // seconds
	Microsecond = Micro // seconds

	Milliwatt = Milli // watts
)

// Physical constants.
const (
	// BoltzmannEV is Boltzmann's constant in electron-volts per kelvin,
	// the unit used by Black's equation activation energies.
	BoltzmannEV = 8.617333262e-5
	// ZeroCelsius is 0 degrees Celsius expressed in kelvin.
	ZeroCelsius = 273.15
)

// CelsiusToKelvin converts a temperature in degrees Celsius to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + ZeroCelsius }

// KelvinToCelsius converts a temperature in kelvin to degrees Celsius.
func KelvinToCelsius(k float64) float64 { return k - ZeroCelsius }

// ApproxEqual reports whether a and b are equal within both an absolute
// tolerance absTol and a relative tolerance relTol (relative to the larger
// magnitude). Either tolerance alone is sufficient.
func ApproxEqual(a, b, absTol, relTol float64) bool {
	diff := math.Abs(a - b)
	if diff <= absTol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}

// WithinRel reports whether a and b agree to within relative tolerance rel.
// Zero compares equal only to exactly zero.
func WithinRel(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ParallelR returns the equivalent resistance of n identical resistors of
// value r in parallel. n must be >= 1.
func ParallelR(r float64, n int) float64 {
	if n < 1 {
		panic("units: ParallelR requires n >= 1")
	}
	return r / float64(n)
}

// Percent converts a fraction (0..1) to percent.
func Percent(frac float64) float64 { return frac * 100 }

// Fraction converts a percentage to a fraction (0..1).
func Fraction(pct float64) float64 { return pct / 100 }
