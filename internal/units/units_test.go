package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaleFactors(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"Femto", Femto, 1e-15},
		{"Pico", Pico, 1e-12},
		{"Nano", Nano, 1e-9},
		{"Micro", Micro, 1e-6},
		{"Milli", Milli, 1e-3},
		{"Kilo", Kilo, 1e3},
		{"Mega", Mega, 1e6},
		{"Giga", Giga, 1e9},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestUnitComposition(t *testing.T) {
	if got := 200 * Micrometer; got != 200e-6 {
		t.Errorf("200um = %g", got)
	}
	if got := 10 * Milliohm; got != 10e-3 {
		t.Errorf("10mohm = %g", got)
	}
	if got := 8 * Nanofarad; got != 8e-9 {
		t.Errorf("8nF = %g", got)
	}
	if got := 50 * Megahertz; got != 50e6 {
		t.Errorf("50MHz = %g", got)
	}
}

func TestTemperatureConversionRoundTrip(t *testing.T) {
	if got := CelsiusToKelvin(100); got != 373.15 {
		t.Errorf("CelsiusToKelvin(100) = %g", got)
	}
	if got := KelvinToCelsius(373.15); got != 100 {
		t.Errorf("KelvinToCelsius(373.15) = %g", got)
	}
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		back := KelvinToCelsius(CelsiusToKelvin(c))
		return ApproxEqual(back, c, 1e-9, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("abs tolerance failed")
	}
	if !ApproxEqual(1e9, 1e9*(1+1e-10), 0, 1e-9) {
		t.Error("rel tolerance failed")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 1e-3) {
		t.Error("should not be equal")
	}
	if !ApproxEqual(0, 0, 0, 0) {
		t.Error("zero must equal zero")
	}
}

func TestWithinRel(t *testing.T) {
	if !WithinRel(0, 0, 1e-9) {
		t.Error("0==0")
	}
	if WithinRel(0, 1e-3, 1e-6) {
		t.Error("0 vs nonzero should fail a tight rel check")
	}
	if !WithinRel(100, 100.0001, 1e-5) {
		t.Error("within rel failed")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp mid = %g", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp t=0 = %g", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp t=1 = %g", got)
	}
}

func TestParallelR(t *testing.T) {
	if got := ParallelR(10, 5); got != 2 {
		t.Errorf("ParallelR(10,5) = %g", got)
	}
	if got := ParallelR(7, 1); got != 7 {
		t.Errorf("ParallelR(7,1) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ParallelR(1,0) should panic")
		}
	}()
	ParallelR(1, 0)
}

func TestPercentFractionInverse(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return WithinRel(Fraction(Percent(x)), x, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoltzmannEV(t *testing.T) {
	// kT at 300K should be about 25.85 meV.
	kT := BoltzmannEV * 300
	if !ApproxEqual(kT, 0.02585, 1e-4, 1e-3) {
		t.Errorf("kT(300K) = %g eV", kT)
	}
}
