package viz

import (
	"strings"
	"testing"
)

func TestHeatmapBasic(t *testing.T) {
	vals := []float64{0, 1, 2, 3}
	out := Heatmap(vals, 2, 2, Options{CellWidth: 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Lowest value maps to the first ramp glyph, highest to the last.
	if lines[0][0] != DefaultRamp[0] {
		t.Errorf("low glyph = %q", lines[0][0])
	}
	if lines[1][1] != DefaultRamp[len(DefaultRamp)-1] {
		t.Errorf("high glyph = %q", lines[1][1])
	}
}

func TestHeatmapFlipY(t *testing.T) {
	vals := []float64{0, 0, 9, 9} // row 0 low, row 1 high
	up := Heatmap(vals, 2, 2, Options{CellWidth: 1})
	flipped := Heatmap(vals, 2, 2, Options{CellWidth: 1, FlipY: true})
	if up == flipped {
		t.Error("FlipY should change row order")
	}
	if !strings.HasPrefix(flipped, "@") {
		t.Errorf("flipped top row should be the high row: %q", flipped)
	}
}

func TestHeatmapFixedScaleAndClamp(t *testing.T) {
	vals := []float64{-5, 0.5, 10}
	out := Heatmap(vals, 3, 1, Options{CellWidth: 1, Lo: 0, Hi: 1})
	if out[0] != DefaultRamp[0] {
		t.Error("below-scale values should clamp to the low glyph")
	}
	if out[2] != DefaultRamp[len(DefaultRamp)-1] {
		t.Error("above-scale values should clamp to the high glyph")
	}
}

func TestHeatmapLabelAndScale(t *testing.T) {
	out := Heatmap([]float64{1, 2}, 2, 1, Options{Label: "volts", ShowScale: true})
	if !strings.HasPrefix(out, "volts\n") {
		t.Error("missing label")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("missing scale legend")
	}
}

func TestHeatmapUniformField(t *testing.T) {
	out := Heatmap([]float64{5, 5, 5, 5}, 2, 2, Options{CellWidth: 1})
	if strings.Count(out, string(DefaultRamp[0])) != 4 {
		t.Errorf("uniform field should render uniformly: %q", out)
	}
}

func TestHeatmapBadInput(t *testing.T) {
	if out := Heatmap([]float64{1, 2}, 3, 1, Options{}); !strings.Contains(out, "bad field") {
		t.Error("bad input should be reported, not panic")
	}
	if out := Heatmap(nil, 0, 0, Options{}); !strings.Contains(out, "bad field") {
		t.Error("empty input should be reported")
	}
}

func TestHeatmapCellWidth(t *testing.T) {
	out := Heatmap([]float64{1}, 1, 1, Options{CellWidth: 3})
	if len(strings.TrimRight(out, "\n")) != 3 {
		t.Errorf("cell width not honored: %q", out)
	}
}

func TestStats(t *testing.T) {
	lo, mean, hi := Stats([]float64{1, 2, 3, 6})
	if lo != 1 || hi != 6 || mean != 3 {
		t.Errorf("stats = %g %g %g", lo, mean, hi)
	}
	if lo, mean, hi := Stats(nil); lo != 0 || mean != 0 || hi != 0 {
		t.Error("empty stats should be zero")
	}
}
