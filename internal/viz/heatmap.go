// Package viz renders scalar fields (voltage maps, temperature maps) as
// ASCII heatmaps for terminal output — the closest a CLI toolchain gets to
// the paper's color plots.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// DefaultRamp orders glyphs from low to high intensity.
const DefaultRamp = " .:-=+*#%@"

// Options controls heatmap rendering.
type Options struct {
	// Ramp is the low-to-high glyph ramp; DefaultRamp if empty.
	Ramp string
	// Lo and Hi fix the color scale; when both are zero the scale spans
	// the data range.
	Lo, Hi float64
	// FlipY renders row 0 at the bottom (chip coordinates) instead of the
	// top (text order).
	FlipY bool
	// CellWidth repeats each glyph horizontally to compensate for
	// character aspect ratio (default 2).
	CellWidth int
	// Label is printed above the map.
	Label string
	// ShowScale appends a scale legend.
	ShowScale bool
}

// Heatmap renders a row-major nx x ny field. Returns an error message
// string rather than panicking on malformed input (it is a display aid).
func Heatmap(values []float64, nx, ny int, opts Options) string {
	if nx <= 0 || ny <= 0 || len(values) != nx*ny {
		return fmt.Sprintf("viz: bad field: %d values for %dx%d\n", len(values), nx, ny)
	}
	ramp := opts.Ramp
	if ramp == "" {
		ramp = DefaultRamp
	}
	glyphs := []rune(ramp)
	width := opts.CellWidth
	if width <= 0 {
		width = 2
	}

	lo, hi := opts.Lo, opts.Hi
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}

	var b strings.Builder
	if opts.Label != "" {
		b.WriteString(opts.Label + "\n")
	}
	for row := 0; row < ny; row++ {
		iy := row
		if opts.FlipY {
			iy = ny - 1 - row
		}
		for ix := 0; ix < nx; ix++ {
			v := values[iy*nx+ix]
			t := (v - lo) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			g := glyphs[int(t*float64(len(glyphs)-1)+0.5)]
			for k := 0; k < width; k++ {
				b.WriteRune(g)
			}
		}
		b.WriteString("\n")
	}
	if opts.ShowScale {
		fmt.Fprintf(&b, "scale: '%c' = %.4g  ..  '%c' = %.4g\n",
			glyphs[0], lo, glyphs[len(glyphs)-1], hi)
	}
	return b.String()
}

// Stats summarizes a field for captions: min, mean, max.
func Stats(values []float64) (lo, mean, hi float64) {
	if len(values) == 0 {
		return 0, 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		sum += v
	}
	return lo, sum / float64(len(values)), hi
}
