package floorplan

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func TestRectBasics(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if r.Area() != 12 {
		t.Errorf("Area = %g", r.Area())
	}
	if !r.Contains(1, 2) || !r.Contains(3.9, 5.9) {
		t.Error("Contains lower/inner point failed")
	}
	if r.Contains(4, 2) || r.Contains(1, 6) {
		t.Error("Contains should exclude upper/right edges")
	}
	cx, cy := r.Center()
	if cx != 2.5 || cy != 4 {
		t.Errorf("Center = %g, %g", cx, cy)
	}
}

func TestOverlapArea(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{1, 1, 2, 2}, 1},
		{Rect{0, 0, 2, 2}, 4},
		{Rect{2, 0, 1, 1}, 0},
		{Rect{-1, -1, 1, 1}, 0},
		{Rect{0.5, 0.5, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := a.OverlapArea(c.b); !units.ApproxEqual(got, c.want, 1e-12, 1e-12) {
			t.Errorf("overlap %+v = %g, want %g", c.b, got, c.want)
		}
		if got := c.b.OverlapArea(a); !units.ApproxEqual(got, c.want, 1e-12, 1e-12) {
			t.Error("overlap not symmetric")
		}
	}
}

func coreUnits() []Unit {
	return []Unit{
		{"ifu", 0.18},
		{"dcache", 0.16},
		{"exu", 0.14},
		{"fpu", 0.20},
		{"lsu", 0.12},
		{"rob", 0.08},
		{"l2slice", 0.12},
	}
}

func TestSliceAreasProportional(t *testing.T) {
	die := Rect{0, 0, 2e-3, 1.5e-3}
	unitsIn := coreUnits()
	blocks, err := Slice(die, unitsIn)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != len(unitsIn) {
		t.Fatalf("placed %d blocks, want %d", len(blocks), len(unitsIn))
	}
	var totalShare float64
	for _, u := range unitsIn {
		totalShare += u.AreaShare
	}
	for i, b := range blocks {
		want := die.Area() * unitsIn[i].AreaShare / totalShare
		if !units.WithinRel(b.Rect.Area(), want, 1e-9) {
			t.Errorf("block %s area = %g, want %g", b.Name, b.Rect.Area(), want)
		}
	}
}

func TestSliceCoversDieWithoutOverlap(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	blocks, err := Slice(die, coreUnits())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, a := range blocks {
		sum += a.Rect.Area()
		for j := i + 1; j < len(blocks); j++ {
			if ov := a.Rect.OverlapArea(blocks[j].Rect); ov > 1e-12 {
				t.Errorf("blocks %s and %s overlap by %g", a.Name, blocks[j].Name, ov)
			}
		}
	}
	if !units.WithinRel(sum, die.Area(), 1e-9) {
		t.Errorf("blocks cover %g of %g", sum, die.Area())
	}
}

func TestSliceAspectRatiosBounded(t *testing.T) {
	die := Rect{0, 0, 2.35e-3, 2.35e-3}
	blocks, err := Slice(die, coreUnits())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		ar := b.Rect.W / b.Rect.H
		if ar < 1 {
			ar = 1 / ar
		}
		if ar > 8 {
			t.Errorf("block %s aspect ratio %g too extreme", b.Name, ar)
		}
	}
}

func TestSliceErrors(t *testing.T) {
	if _, err := Slice(Rect{0, 0, 1, 1}, nil); err == nil {
		t.Error("empty unit list should error")
	}
	if _, err := Slice(Rect{0, 0, 1, 1}, []Unit{{"a", 0}}); err == nil {
		t.Error("zero share should error")
	}
	if _, err := Slice(Rect{0, 0, 0, 1}, []Unit{{"a", 1}}); err == nil {
		t.Error("degenerate die should error")
	}
}

func TestSlicePropertyRandomShares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		us := make([]Unit, n)
		var total float64
		for i := range us {
			us[i] = Unit{Name: "u", AreaShare: 0.05 + rng.Float64()}
			total += us[i].AreaShare
		}
		die := Rect{0, 0, 1 + rng.Float64(), 1 + rng.Float64()}
		blocks, err := Slice(die, us)
		if err != nil {
			return false
		}
		var sum float64
		for i, b := range blocks {
			if !units.WithinRel(b.Rect.Area(), die.Area()*us[i].AreaShare/total, 1e-6) {
				return false
			}
			sum += b.Rect.Area()
		}
		return units.WithinRel(sum, die.Area(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTile16Cores(t *testing.T) {
	// The paper's 16-core single layer: 44.12 mm².
	side := math.Sqrt(44.12e-6)
	die := Rect{0, 0, side, side}
	fp, err := Tile(die, 4, 4, coreUnits(), "core")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Tiles) != 16 {
		t.Fatalf("tiles = %d", len(fp.Tiles))
	}
	if len(fp.Blocks) != 16*len(coreUnits()) {
		t.Fatalf("blocks = %d", len(fp.Blocks))
	}
	if !strings.HasPrefix(fp.Blocks[0].Name, "core0.") {
		t.Errorf("block name = %q", fp.Blocks[0].Name)
	}
	// Every tile has the same area.
	for _, tile := range fp.Tiles {
		if !units.WithinRel(tile.Area(), die.Area()/16, 1e-9) {
			t.Errorf("tile area %g", tile.Area())
		}
	}
}

func TestTileOf(t *testing.T) {
	fp, err := Tile(Rect{0, 0, 4, 4}, 2, 2, []Unit{{"u", 1}}, "c")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y float64
		want int
	}{
		{0.5, 0.5, 0},
		{2.5, 0.5, 1},
		{0.5, 2.5, 2},
		{3.5, 3.5, 3},
		{-1, 0, -1},
	}
	for _, c := range cases {
		if got := fp.TileOf(c.x, c.y); got != c.want {
			t.Errorf("TileOf(%g,%g) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestTileInvalid(t *testing.T) {
	if _, err := Tile(Rect{0, 0, 1, 1}, 0, 4, coreUnits(), "c"); err == nil {
		t.Error("0 rows should error")
	}
}

func TestRasterDistributeConservesTotal(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	blocks, err := Slice(die, coreUnits())
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(blocks))
	var total float64
	for i := range values {
		values[i] = float64(i + 1)
		total += values[i]
	}
	r := NewRaster(die, 13, 7) // deliberately non-aligned resolution
	cells, err := r.Distribute(blocks, values)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range cells {
		if c < 0 {
			t.Error("negative cell value")
		}
		sum += c
	}
	if !units.WithinRel(sum, total, 1e-9) {
		t.Errorf("raster total = %g, want %g", sum, total)
	}
}

func TestRasterUniformBlockUniformCells(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	r := NewRaster(die, 4, 4)
	cells, err := r.Distribute([]Block{{"all", die}}, []float64{16})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if !units.WithinRel(c, 1, 1e-9) {
			t.Errorf("cell %d = %g, want 1", i, c)
		}
	}
}

func TestRasterLocalizedBlock(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	r := NewRaster(die, 2, 2)
	// Block exactly covering the top-right quadrant.
	cells, err := r.Distribute([]Block{{"hot", Rect{0.5, 0.5, 0.5, 0.5}}}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if cells[r.Index(1, 1)] != 7 {
		t.Errorf("hot cell = %g", cells[r.Index(1, 1)])
	}
	for _, idx := range []int{r.Index(0, 0), r.Index(1, 0), r.Index(0, 1)} {
		if cells[idx] != 0 {
			t.Errorf("cold cell %d = %g", idx, cells[idx])
		}
	}
}

func TestRasterCellOfClamped(t *testing.T) {
	r := NewRaster(Rect{0, 0, 1, 1}, 10, 10)
	if ix, iy := r.CellOf(-5, -5); ix != 0 || iy != 0 {
		t.Errorf("clamp low = %d,%d", ix, iy)
	}
	if ix, iy := r.CellOf(5, 5); ix != 9 || iy != 9 {
		t.Errorf("clamp high = %d,%d", ix, iy)
	}
	if ix, iy := r.CellOf(0.55, 0.25); ix != 5 || iy != 2 {
		t.Errorf("CellOf = %d,%d", ix, iy)
	}
}

func TestRasterMismatchedValues(t *testing.T) {
	r := NewRaster(Rect{0, 0, 1, 1}, 2, 2)
	if _, err := r.Distribute([]Block{{"a", Rect{0, 0, 1, 1}}}, nil); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRenderCoversGridWithBlocks(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	blocks, err := Slice(die, coreUnits())
	if err != nil {
		t.Fatal(err)
	}
	fp := &Floorplan{Die: die, Blocks: blocks}
	out := fp.Render(24, 12)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 || len(lines[0]) != 24 {
		t.Fatalf("render shape %dx%d", len(lines), len(lines[0]))
	}
	// Every cell center lies inside some block (slicing covers the die).
	if strings.Contains(out, ".") {
		t.Errorf("uncovered cells in render:\n%s", out)
	}
	// Each unit occupies at least one cell.
	for i := range blocks {
		g := string("abcdefghijklmnopqrstuvwxyz"[i])
		if !strings.Contains(out, g) {
			t.Errorf("block %d (%s) missing from render", i, blocks[i].Name)
		}
	}
}

func TestRenderLegend(t *testing.T) {
	die := Rect{0, 0, 1, 1}
	blocks, _ := Slice(die, coreUnits())
	fp := &Floorplan{Die: die, Blocks: blocks}
	legend := fp.Legend()
	if !strings.Contains(legend, "a = ifu") {
		t.Errorf("legend = %q", legend)
	}
}

func TestRenderDegenerate(t *testing.T) {
	fp := &Floorplan{}
	if out := fp.Render(4, 4); !strings.Contains(out, "nothing to render") {
		t.Error("empty floorplan should say so")
	}
}
