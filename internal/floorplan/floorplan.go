// Package floorplan is a small pre-RTL floorplanner in the spirit of ArchFP
// (Faust et al., VLSI-SoC 2012), which the paper uses to generate the
// processor floorplan. It places architectural units by recursive slicing
// (area-proportional guillotine cuts), tiles core floorplans across a die,
// and rasterizes block power densities onto the PDN grid.
package floorplan

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (meters). X, Y is the lower-left corner.
type Rect struct {
	X, Y, W, H float64
}

// Area returns W*H.
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether the point lies inside the rectangle
// (inclusive of the lower/left edges, exclusive of the upper/right).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// OverlapArea returns the area of the intersection of r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	w := math.Min(r.X+r.W, o.X+o.W) - math.Max(r.X, o.X)
	h := math.Min(r.Y+r.H, o.Y+o.H) - math.Max(r.Y, o.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Center returns the rectangle's center point.
func (r Rect) Center() (x, y float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Unit is a named unit to be placed, with an area share relative to the
// total of its sibling units.
type Unit struct {
	Name      string
	AreaShare float64
}

// Block is a placed unit.
type Block struct {
	Name string
	Rect Rect
}

// Slice places units into die by recursive area-proportional guillotine
// cuts, always cutting perpendicular to the longer side to keep aspect
// ratios reasonable. Unit order is preserved left-to-right/bottom-to-top.
func Slice(die Rect, units []Unit) ([]Block, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("floorplan: no units to place")
	}
	var total float64
	for _, u := range units {
		if u.AreaShare <= 0 {
			return nil, fmt.Errorf("floorplan: unit %q has non-positive area share %g", u.Name, u.AreaShare)
		}
		total += u.AreaShare
	}
	if die.W <= 0 || die.H <= 0 {
		return nil, fmt.Errorf("floorplan: degenerate die %+v", die)
	}
	blocks := make([]Block, 0, len(units))
	slice(die, units, total, &blocks)
	return blocks, nil
}

func slice(r Rect, units []Unit, total float64, out *[]Block) {
	if len(units) == 1 {
		*out = append(*out, Block{Name: units[0].Name, Rect: r})
		return
	}
	// Split the unit list at the point closest to half the total area.
	var acc float64
	split := 1
	best := math.Inf(1)
	run := 0.0
	for i := 0; i < len(units)-1; i++ {
		run += units[i].AreaShare
		if d := math.Abs(run - total/2); d < best {
			best = d
			split = i + 1
			acc = run
		}
	}
	frac := acc / total
	var r1, r2 Rect
	if r.W >= r.H {
		r1 = Rect{r.X, r.Y, r.W * frac, r.H}
		r2 = Rect{r.X + r.W*frac, r.Y, r.W * (1 - frac), r.H}
	} else {
		r1 = Rect{r.X, r.Y, r.W, r.H * frac}
		r2 = Rect{r.X, r.Y + r.H*frac, r.W, r.H * (1 - frac)}
	}
	slice(r1, units[:split], acc, out)
	slice(r2, units[split:], total-acc, out)
}

// Floorplan is a placed die: core tiles, each containing unit blocks.
type Floorplan struct {
	Die    Rect
	Blocks []Block // all unit blocks, names prefixed by their tile
	Tiles  []Rect  // the per-core outlines, row-major from bottom-left
}

// Tile replicates the prototype unit list into rows x cols identical core
// tiles covering the die. Block names become "<prefix><index>.<unit>" with
// index = row*cols+col.
func Tile(die Rect, rows, cols int, proto []Unit, prefix string) (*Floorplan, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("floorplan: invalid tiling %dx%d", rows, cols)
	}
	fp := &Floorplan{Die: die}
	tw := die.W / float64(cols)
	th := die.H / float64(rows)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			tile := Rect{die.X + float64(col)*tw, die.Y + float64(row)*th, tw, th}
			fp.Tiles = append(fp.Tiles, tile)
			blocks, err := Slice(tile, proto)
			if err != nil {
				return nil, err
			}
			idx := row*cols + col
			for _, b := range blocks {
				b.Name = fmt.Sprintf("%s%d.%s", prefix, idx, b.Name)
				fp.Blocks = append(fp.Blocks, b)
			}
		}
	}
	return fp, nil
}

// TileOf returns the index of the tile containing (x, y), or -1.
func (f *Floorplan) TileOf(x, y float64) int {
	for i, t := range f.Tiles {
		if t.Contains(x, y) {
			return i
		}
	}
	return -1
}

// Raster maps block-level quantities onto a uniform nx x ny grid over a die.
type Raster struct {
	Nx, Ny int
	Die    Rect
}

// NewRaster returns a raster over die with the given resolution.
func NewRaster(die Rect, nx, ny int) Raster {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("floorplan: invalid raster %dx%d", nx, ny))
	}
	return Raster{Nx: nx, Ny: ny, Die: die}
}

// CellRect returns the rectangle of cell (ix, iy).
func (r Raster) CellRect(ix, iy int) Rect {
	cw := r.Die.W / float64(r.Nx)
	ch := r.Die.H / float64(r.Ny)
	return Rect{r.Die.X + float64(ix)*cw, r.Die.Y + float64(iy)*ch, cw, ch}
}

// CellOf returns the cell indices containing point (x, y), clamped to the
// grid bounds.
func (r Raster) CellOf(x, y float64) (ix, iy int) {
	ix = int((x - r.Die.X) / r.Die.W * float64(r.Nx))
	iy = int((y - r.Die.Y) / r.Die.H * float64(r.Ny))
	if ix < 0 {
		ix = 0
	}
	if ix >= r.Nx {
		ix = r.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= r.Ny {
		iy = r.Ny - 1
	}
	return ix, iy
}

// Index returns the linear (row-major) index of cell (ix, iy).
func (r Raster) Index(ix, iy int) int { return iy*r.Nx + ix }

// Distribute spreads each block's value uniformly over its rectangle and
// integrates it into the raster cells by overlap area. values[i] is the
// total quantity (e.g. watts) of blocks[i]; the returned per-cell slice
// (length Nx*Ny, row-major) sums to the total of values for blocks fully
// inside the die.
func (r Raster) Distribute(blocks []Block, values []float64) ([]float64, error) {
	if len(blocks) != len(values) {
		return nil, fmt.Errorf("floorplan: %d blocks but %d values", len(blocks), len(values))
	}
	out := make([]float64, r.Nx*r.Ny)
	cw := r.Die.W / float64(r.Nx)
	ch := r.Die.H / float64(r.Ny)
	for bi, b := range blocks {
		if values[bi] == 0 {
			continue
		}
		area := b.Rect.Area()
		if area <= 0 {
			return nil, fmt.Errorf("floorplan: block %q has zero area", b.Name)
		}
		density := values[bi] / area
		// Cell index range overlapped by the block.
		ix0 := int(math.Floor((b.Rect.X - r.Die.X) / cw))
		ix1 := int(math.Ceil((b.Rect.X + b.Rect.W - r.Die.X) / cw))
		iy0 := int(math.Floor((b.Rect.Y - r.Die.Y) / ch))
		iy1 := int(math.Ceil((b.Rect.Y + b.Rect.H - r.Die.Y) / ch))
		if ix0 < 0 {
			ix0 = 0
		}
		if iy0 < 0 {
			iy0 = 0
		}
		if ix1 > r.Nx {
			ix1 = r.Nx
		}
		if iy1 > r.Ny {
			iy1 = r.Ny
		}
		for iy := iy0; iy < iy1; iy++ {
			for ix := ix0; ix < ix1; ix++ {
				ov := r.CellRect(ix, iy).OverlapArea(b.Rect)
				if ov > 0 {
					out[r.Index(ix, iy)] += density * ov
				}
			}
		}
	}
	return out, nil
}
