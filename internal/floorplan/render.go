package floorplan

import (
	"fmt"
	"strings"
)

// Render draws the floorplan as an ASCII grid: each character cell is
// labeled with the glyph of the block covering its center. Blocks are
// assigned glyphs in order (a-z, A-Z, 0-9, cycling).
func (f *Floorplan) Render(cols, rows int) string {
	if cols <= 0 || rows <= 0 || len(f.Blocks) == 0 {
		return "floorplan: nothing to render\n"
	}
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- { // chip coordinates: y up
		for c := 0; c < cols; c++ {
			x := f.Die.X + (float64(c)+0.5)*f.Die.W/float64(cols)
			y := f.Die.Y + (float64(r)+0.5)*f.Die.H/float64(rows)
			g := byte('.')
			for i, blk := range f.Blocks {
				if blk.Rect.Contains(x, y) {
					g = glyphs[i%len(glyphs)]
					break
				}
			}
			b.WriteByte(g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend lists the glyph assignment used by Render.
func (f *Floorplan) Legend() string {
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for i, blk := range f.Blocks {
		fmt.Fprintf(&b, "%c = %s\n", glyphs[i%len(glyphs)], blk.Name)
	}
	return b.String()
}
