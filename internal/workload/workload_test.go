package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParsecSuiteComposition(t *testing.T) {
	apps := ParsecApps()
	if len(apps) != 13 {
		t.Fatalf("Parsec 2.0 has 13 applications, got %d", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		if a.MinAct <= 0 || a.MaxAct > 1 || a.MinAct >= a.MaxAct {
			t.Errorf("app %q has invalid bounds [%g, %g]", a.Name, a.MinAct, a.MaxAct)
		}
	}
	for _, name := range []string{"blackscholes", "streamcluster", "x264"} {
		if !seen[name] {
			t.Errorf("missing app %q", name)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	a := ParsecApps()[0]
	s1 := a.Sample(100, 42)
	s2 := a.Sample(100, 42)
	for i := range s1.Acts {
		if s1.Acts[i] != s2.Acts[i] {
			t.Fatal("sampling is not deterministic")
		}
	}
	s3 := a.Sample(100, 43)
	same := true
	for i := range s1.Acts {
		if s1.Acts[i] != s3.Acts[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different populations")
	}
}

func TestAppsGetDistinctStreams(t *testing.T) {
	apps := ParsecApps()
	s1 := apps[1].Sample(50, 7)
	s2 := apps[2].Sample(50, 7)
	// Even with the same seed, per-app offsets must decorrelate streams:
	// compare normalized positions within each app's range.
	identical := 0
	for i := range s1.Acts {
		u1 := (s1.Acts[i] - apps[1].MinAct) / (apps[1].MaxAct - apps[1].MinAct)
		u2 := (s2.Acts[i] - apps[2].MinAct) / (apps[2].MaxAct - apps[2].MinAct)
		if math.Abs(u1-u2) < 1e-12 {
			identical++
		}
	}
	if identical > 5 {
		t.Errorf("%d/50 samples identical across apps — streams not decorrelated", identical)
	}
}

func TestSamplesWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		for _, a := range ParsecApps() {
			s := a.Sample(200, seed)
			for _, v := range s.Acts {
				if v < a.MinAct || v > a.MaxAct {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBoxStatsOrdering(t *testing.T) {
	for _, p := range DefaultSuite(3) {
		st := p.Stats()
		if !(st.Min <= st.Q1 && st.Q1 <= st.Median && st.Median <= st.Q3 && st.Q3 <= st.Max) {
			t.Errorf("%s: box stats out of order: %+v", p.App.Name, st)
		}
	}
}

func TestBoxStatsKnownValues(t *testing.T) {
	s := Samples{Acts: []float64{1, 2, 3, 4, 5}}
	st := s.Stats()
	if st.Min != 1 || st.Max != 5 || st.Median != 3 || st.Q1 != 2 || st.Q3 != 4 {
		t.Errorf("stats = %+v", st)
	}
	empty := Samples{}
	if empty.Stats() != (BoxStats{}) {
		t.Error("empty stats should be zero")
	}
}

func TestFig7BlackscholesBestCase(t *testing.T) {
	// Paper: "the best-case application (blackscholes) shows a maximum
	// imbalance of 10% across all its samples."
	suite := DefaultSuite(1)
	best := suite.BestCaseApp()
	if best.App.Name != "blackscholes" {
		t.Errorf("best-case app = %s, want blackscholes", best.App.Name)
	}
	if imb := best.MaxImbalance(); imb < 0.05 || imb > 0.15 {
		t.Errorf("blackscholes max imbalance = %g, want ~0.10", imb)
	}
}

func TestFig7AverageImbalance65Percent(t *testing.T) {
	// Paper: "on average, the applications have a maximum-imbalance ratio
	// of 65%."
	suite := DefaultSuite(1)
	if avg := suite.AverageMaxImbalance(); avg < 0.60 || avg > 0.70 {
		t.Errorf("average max imbalance = %g, want ~0.65", avg)
	}
}

func TestFig7GlobalImbalanceOver90Percent(t *testing.T) {
	// Paper: "the maximum workload imbalance among all samples is more
	// than 90%."
	suite := DefaultSuite(1)
	if g := suite.GlobalMaxImbalance(); g <= 0.90 {
		t.Errorf("global max imbalance = %g, want > 0.90", g)
	}
}

func TestIntraAppVarianceSmallerThanCrossApp(t *testing.T) {
	// Paper: "samples from the same application show much smaller
	// variance" than across applications.
	suite := DefaultSuite(1)
	var medians []float64
	var avgSpread float64
	for _, p := range suite {
		st := p.Stats()
		medians = append(medians, st.Median)
		avgSpread += st.Q3 - st.Q1
	}
	avgSpread /= float64(len(suite))
	minMed, maxMed := medians[0], medians[0]
	for _, m := range medians {
		minMed = math.Min(minMed, m)
		maxMed = math.Max(maxMed, m)
	}
	if crossSpread := maxMed - minMed; avgSpread >= crossSpread {
		t.Errorf("intra-app IQR %g should be well below cross-app median spread %g",
			avgSpread, crossSpread)
	}
}

func TestMaxImbalanceConsistentWithDesign(t *testing.T) {
	suite := DefaultSuite(1)
	for _, p := range suite {
		realized := p.MaxImbalance()
		design := p.App.DesignImbalance()
		if realized > design+1e-9 {
			t.Errorf("%s: realized imbalance %g exceeds design bound %g", p.App.Name, realized, design)
		}
		if realized < design-0.08 {
			t.Errorf("%s: realized imbalance %g far below design %g — population too narrow",
				p.App.Name, realized, design)
		}
	}
}

func TestByName(t *testing.T) {
	suite := DefaultSuite(1)
	p, err := suite.ByName("ferret")
	if err != nil || p.App.Name != "ferret" {
		t.Errorf("ByName failed: %v", err)
	}
	if _, err := suite.ByName("doom"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestSuiteSize(t *testing.T) {
	suite := DefaultSuite(1)
	if len(suite) != 13 {
		t.Fatalf("suite size %d", len(suite))
	}
	for _, p := range suite {
		if len(p.Acts) != SamplesPerApp {
			t.Errorf("%s has %d samples, want %d", p.App.Name, len(p.Acts), SamplesPerApp)
		}
	}
}

func TestImbalanceOfConstantPopulation(t *testing.T) {
	s := Samples{Acts: []float64{0.5, 0.5, 0.5}}
	if s.MaxImbalance() != 0 {
		t.Error("constant population must have zero imbalance")
	}
	z := Samples{Acts: []float64{0, 0}}
	if z.MaxImbalance() != 0 {
		t.Error("zero population must not divide by zero")
	}
}
