// Package workload generates synthetic per-application power-sample
// populations standing in for the paper's Gem5 + Parsec 2.0 statistical
// sampling (one thousand 2k-cycle samples per application, averaged with
// McPAT). The real traces are not redistributable, so each application is
// modeled as a bounded distribution of core activity factors calibrated to
// the statistics reported around Fig. 7:
//
//   - blackscholes, the best-case application, has a maximum intra-app
//     imbalance of about 10 %;
//   - the average maximum-imbalance ratio across applications is 65 %;
//   - the maximum imbalance across all samples of all applications
//     exceeds 90 %.
//
// Sampling is deterministic: every application derives its PRNG stream
// from a caller seed plus a stable per-application offset.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"voltstack/internal/units"
)

// SamplesPerApp is the paper's population size per application.
const SamplesPerApp = 1000

// App describes one application's activity distribution: samples are drawn
// from a symmetric triangular distribution over [MinAct, MaxAct].
type App struct {
	Name   string
	MinAct float64 // lowest dynamic activity factor
	MaxAct float64 // highest dynamic activity factor
}

// DesignImbalance returns the application's nominal maximum dynamic-power
// imbalance, 1 − MinAct/MaxAct.
func (a App) DesignImbalance() float64 {
	return 1 - a.MinAct/a.MaxAct
}

// ParsecApps returns the Parsec 2.0 suite used by the paper, with activity
// bounds calibrated to the Fig. 7 statistics.
func ParsecApps() []App {
	return []App{
		{"blackscholes", 0.72, 0.80},
		{"bodytrack", 0.20, 0.80},
		{"canneal", 0.12, 0.58},
		{"dedup", 0.14, 0.70},
		{"facesim", 0.28, 0.78},
		{"ferret", 0.24, 0.72},
		{"fluidanimate", 0.27, 0.80},
		{"freqmine", 0.33, 0.85},
		{"raytrace", 0.28, 0.86},
		{"streamcluster", 0.08, 0.55},
		{"swaptions", 0.44, 0.95},
		{"vips", 0.19, 0.66},
		{"x264", 0.12, 0.60},
	}
}

// Samples is a population of activity samples for one application.
type Samples struct {
	App  App
	Acts []float64
}

// Sample draws n activity samples deterministically from the app's
// distribution. The same (app, n, seed) always yields the same population.
func (a App) Sample(n int, seed int64) Samples {
	rng := rand.New(rand.NewSource(seed + int64(stableHash(a.Name))))
	acts := make([]float64, n)
	span := a.MaxAct - a.MinAct
	for i := range acts {
		// Symmetric triangular distribution: mean of two uniforms.
		u := (rng.Float64() + rng.Float64()) / 2
		acts[i] = a.MinAct + span*u
	}
	return Samples{App: a, Acts: acts}
}

// stableHash is a deterministic FNV-1a string hash (stdlib hash/fnv would
// also work; inlined here to keep the seed derivation obvious and fixed).
func stableHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// BoxStats are the five-number summary used for the Fig. 7 box plot.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Stats returns the five-number summary of the population.
func (s Samples) Stats() BoxStats {
	if len(s.Acts) == 0 {
		return BoxStats{}
	}
	sorted := append([]float64(nil), s.Acts...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		idx := p * float64(len(sorted)-1)
		lo := int(idx)
		hi := lo
		if lo+1 < len(sorted) {
			hi = lo + 1
		}
		return units.Lerp(sorted[lo], sorted[hi], idx-float64(lo))
	}
	return BoxStats{
		Min:    sorted[0],
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// MaxImbalance returns the worst dynamic-power imbalance between any two
// samples of this population: 1 − min/max.
func (s Samples) MaxImbalance() float64 {
	st := s.Stats()
	if st.Max == 0 {
		return 0
	}
	return 1 - st.Min/st.Max
}

// Suite is a set of per-application populations.
type Suite []Samples

// DefaultSuite samples every Parsec application with the canonical
// population size and the given seed.
func DefaultSuite(seed int64) Suite {
	apps := ParsecApps()
	out := make(Suite, len(apps))
	for i, a := range apps {
		out[i] = a.Sample(SamplesPerApp, seed)
	}
	return out
}

// ByName returns the population for the named application.
func (s Suite) ByName(name string) (Samples, error) {
	for _, p := range s {
		if p.App.Name == name {
			return p, nil
		}
	}
	return Samples{}, fmt.Errorf("workload: unknown application %q", name)
}

// AverageMaxImbalance returns the mean over applications of each
// application's maximum intra-app imbalance — the paper's 65 % statistic.
func (s Suite) AverageMaxImbalance() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s {
		sum += p.MaxImbalance()
	}
	return sum / float64(len(s))
}

// GlobalMaxImbalance returns the worst imbalance between any two samples
// across all applications — the paper's "> 90 %" statistic.
func (s Suite) GlobalMaxImbalance() float64 {
	lo, hi := 1.0, 0.0
	for _, p := range s {
		st := p.Stats()
		if st.Min < lo {
			lo = st.Min
		}
		if st.Max > hi {
			hi = st.Max
		}
	}
	if hi == 0 {
		return 0
	}
	return 1 - lo/hi
}

// BestCaseApp returns the application with the smallest maximum imbalance
// (the paper's blackscholes observation).
func (s Suite) BestCaseApp() Samples {
	best := s[0]
	for _, p := range s[1:] {
		if p.MaxImbalance() < best.MaxImbalance() {
			best = p
		}
	}
	return best
}
