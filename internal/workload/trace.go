package workload

import (
	"fmt"
	"math/rand"
)

// Trace generation: the box-plot populations of Fig. 7 are unordered
// samples; real programs move through phases. The two-state Markov model
// here produces per-core activity time series whose marginal distribution
// stays inside the application's calibrated band while adding the
// temporal correlation (sticky compute/memory phases) that a quasi-static
// noise analysis needs.

// TraceOptions tunes the phase model.
type TraceOptions struct {
	// StayProb is the probability of remaining in the current phase each
	// step (phase dwell ~ 1/(1-StayProb) steps). Default 0.9.
	StayProb float64
	// JitterFrac scatters samples within the phase's half-band.
	// Default 0.5.
	JitterFrac float64
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.StayProb == 0 {
		o.StayProb = 0.9
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.5
	}
	return o
}

// Trace samples a per-step activity series for the application: a sticky
// two-phase (high/low) Markov chain over the app's activity band, with
// intra-phase jitter. Deterministic in (app, steps, seed).
func (a App) Trace(steps int, seed int64, opts TraceOptions) ([]float64, error) {
	if steps < 1 {
		return nil, fmt.Errorf("workload: need at least 1 step")
	}
	opts = opts.withDefaults()
	if opts.StayProb < 0 || opts.StayProb >= 1 {
		return nil, fmt.Errorf("workload: StayProb %g out of [0,1)", opts.StayProb)
	}
	rng := rand.New(rand.NewSource(seed + int64(stableHash(a.Name))*7919))

	mid := (a.MinAct + a.MaxAct) / 2
	half := (a.MaxAct - a.MinAct) / 2
	out := make([]float64, steps)
	high := rng.Float64() < 0.5
	for i := range out {
		if rng.Float64() >= opts.StayProb {
			high = !high
		}
		base := mid - half/2
		if high {
			base = mid + half/2
		}
		jitter := (rng.Float64()*2 - 1) * half / 2 * opts.JitterFrac
		v := base + jitter
		if v < a.MinAct {
			v = a.MinAct
		}
		if v > a.MaxAct {
			v = a.MaxAct
		}
		out[i] = v
	}
	return out, nil
}

// TraceMatrix samples independent traces for a (layers x cores) grid of
// job slots, cycling applications across slots as JobsFromSuite does.
// The result is indexed [step][layer][core] — ready to feed the PDN
// solver one step at a time.
func (s Suite) TraceMatrix(layers, cores, steps int, seed int64, opts TraceOptions) ([][][]float64, error) {
	if layers < 1 || cores < 1 {
		return nil, fmt.Errorf("workload: invalid grid %dx%d", layers, cores)
	}
	traces := make([][]float64, layers*cores)
	for slot := range traces {
		app := s[slot%len(s)].App
		tr, err := app.Trace(steps, seed+int64(slot)*104729, opts)
		if err != nil {
			return nil, err
		}
		traces[slot] = tr
	}
	out := make([][][]float64, steps)
	for k := 0; k < steps; k++ {
		grid := make([][]float64, layers)
		for l := 0; l < layers; l++ {
			row := make([]float64, cores)
			for c := 0; c < cores; c++ {
				row[c] = traces[l*cores+c][k]
			}
			grid[l] = row
		}
		out[k] = grid
	}
	return out, nil
}
