package workload

import (
	"math"
	"testing"
)

func TestTraceDeterministicAndBounded(t *testing.T) {
	app := ParsecApps()[2]
	a, err := app.Trace(500, 11, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.Trace(500, 11, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
		if a[i] < app.MinAct || a[i] > app.MaxAct {
			t.Fatalf("step %d: %g outside [%g, %g]", i, a[i], app.MinAct, app.MaxAct)
		}
	}
}

func TestTracePhasesAreSticky(t *testing.T) {
	// With StayProb 0.9 the lag-1 autocorrelation must be clearly
	// positive — that is the point of the phase model.
	app := ParsecApps()[1] // bodytrack: wide band
	tr, err := app.Trace(4000, 3, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range tr {
		mean += v
	}
	mean /= float64(len(tr))
	var num, den float64
	for i := 1; i < len(tr); i++ {
		num += (tr[i] - mean) * (tr[i-1] - mean)
	}
	for _, v := range tr {
		den += (v - mean) * (v - mean)
	}
	if ac := num / den; ac < 0.3 {
		t.Errorf("lag-1 autocorrelation = %g, want sticky (> 0.3)", ac)
	}
}

func TestTraceVisitsBothPhases(t *testing.T) {
	app := ParsecApps()[1]
	tr, err := app.Trace(2000, 5, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mid := (app.MinAct + app.MaxAct) / 2
	lo, hi := 0, 0
	for _, v := range tr {
		if v < mid {
			lo++
		} else {
			hi++
		}
	}
	if lo < len(tr)/10 || hi < len(tr)/10 {
		t.Errorf("phases unbalanced: %d low, %d high", lo, hi)
	}
}

func TestTraceValidation(t *testing.T) {
	app := ParsecApps()[0]
	if _, err := app.Trace(0, 1, TraceOptions{}); err == nil {
		t.Error("0 steps not caught")
	}
	if _, err := app.Trace(10, 1, TraceOptions{StayProb: 1.5}); err == nil {
		t.Error("bad StayProb not caught")
	}
}

func TestTraceMatrixShape(t *testing.T) {
	suite := DefaultSuite(1)
	m, err := suite.TraceMatrix(4, 3, 20, 9, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 20 || len(m[0]) != 4 || len(m[0][0]) != 3 {
		t.Fatalf("shape %d x %d x %d", len(m), len(m[0]), len(m[0][0]))
	}
	for _, grid := range m {
		for _, row := range grid {
			for _, v := range row {
				if v <= 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("activity %g out of range", v)
				}
			}
		}
	}
	if _, err := suite.TraceMatrix(0, 3, 5, 1, TraceOptions{}); err == nil {
		t.Error("invalid grid not caught")
	}
}

func TestTraceMatrixSlotsIndependent(t *testing.T) {
	suite := DefaultSuite(1)
	m, err := suite.TraceMatrix(2, 2, 200, 9, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two slots running the same app must still follow different streams.
	same := 0
	for k := range m {
		if m[k][0][0] == m[k][1][1] {
			same++
		}
	}
	if same > len(m)/4 {
		t.Errorf("%d/%d identical samples across slots", same, len(m))
	}
}
