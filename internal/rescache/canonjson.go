// Package rescache is the content-addressed result cache behind the
// evaluation service: results are keyed by a canonical hash of everything
// that determines them (design/space parameters, solver configuration,
// code version), held in a bounded in-memory LRU, optionally spilled to
// disk, and deduplicated in flight so concurrent identical computations
// share one execution.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CanonicalJSON encodes v as canonical JSON: object keys sorted
// bytewise, no insignificant whitespace, and every number in a fixed
// normal form — integers verbatim, everything else as the shortest
// round-trip float64 representation (strconv 'g', precision -1, which Go
// guarantees re-parses to the identical bits). Two values that encode the
// same JSON data therefore produce the same bytes regardless of struct
// field order, map iteration order, or the Go version that marshaled
// them — the property cache keys need to stay stable across builds.
//
// NaN and infinities are rejected (json.Marshal already refuses them;
// the number re-parse guards values arriving through pre-encoded
// json.RawMessage too).
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("rescache: canonical json: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("rescache: canonical json: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Errorf("rescache: canonical json: %w", err)
		}
		buf.Write(b)
	case json.Number:
		return writeCanonicalNumber(buf, x)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("rescache: canonical json: %w", err)
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("rescache: canonical json: unexpected decoded type %T", v)
	}
	return nil
}

// writeCanonicalNumber normalizes a JSON number. Integer literals pass
// through verbatim (int64-scale values must not round-trip through
// float64); anything with a fraction or exponent is renormalized to the
// shortest representation of its float64 value.
func writeCanonicalNumber(buf *bytes.Buffer, n json.Number) error {
	s := string(n)
	if !strings.ContainsAny(s, ".eE") {
		buf.WriteString(s)
		return nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("rescache: canonical json: number %q: %w", s, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("rescache: canonical json: non-finite number %q", s)
	}
	buf.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	return nil
}

// Key hashes the canonical JSON of each part, in order, into one SHA-256
// content address (hex). Parts are length-delimited by the encoding
// itself plus a separator byte, so ("ab","c") and ("a","bc") cannot
// collide. Typical use stacks a schema tag, the code version
// (telemetry.BuildStamp) and the request/config fingerprints:
//
//	key, err := rescache.Key("sweep-point", SchemaVersion, stamp, cfg.CacheFingerprint())
func Key(parts ...any) (string, error) {
	h := sha256.New()
	for _, p := range parts {
		b, err := CanonicalJSON(p)
		if err != nil {
			return "", err
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
