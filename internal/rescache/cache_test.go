package rescache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("v"))
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, ok)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // refresh a: b becomes LRU
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
}

func TestCacheByteBudget(t *testing.T) {
	c, err := New(Config{MaxEntries: 100, MaxBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", make([]byte, 6))
	c.Put("b", make([]byte, 6)) // 12 bytes total: a must go
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted by the byte budget")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b should be resident")
	}
	// A single oversized value is not pinned in memory.
	c.Put("big", make([]byte, 64))
	if c.Len() != 0 {
		t.Errorf("oversized value pinned: %d entries resident", c.Len())
	}
}

func TestCacheDiskSpillAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("va"))
	c.Put("b", []byte("vb")) // evicts a from memory; disk copy remains
	if v, ok := c.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("disk fallback failed: %q, %v", v, ok)
	}

	// A fresh cache over the same directory (a daemon restart) sees both.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "va", "b": "vb"} {
		if v, ok := c2.Get(k); !ok || string(v) != want {
			t.Errorf("after restart, %s = %q, %v", k, v, ok)
		}
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("unexpected file in cache dir: %s", e.Name())
		}
	}
}

func TestCacheDoComputesOnce(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	v, hit, err := c.Do("k", func() ([]byte, error) {
		calls.Add(1)
		return []byte("v"), nil
	})
	if err != nil || hit || string(v) != "v" {
		t.Fatalf("first Do = %q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", func() ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("must not run")
	})
	if err != nil || !hit || string(v) != "v" {
		t.Fatalf("second Do = %q hit=%v err=%v", v, hit, err)
	}
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times", calls.Load())
	}
}

// Singleflight: concurrent identical keys share one computation.
func TestCacheDoSingleflight(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]string, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do("shared", func() ([]byte, error) {
				computes.Add(1)
				close(started)
				<-release
				return []byte("once"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = string(v)
			hits[i] = hit
		}(i)
	}
	<-started // the winner is inside compute; everyone else must now wait
	close(release)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	shared := 0
	for i := range results {
		if results[i] != "once" {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if hits[i] {
			shared++
		}
	}
	if shared != callers-1 {
		t.Errorf("%d callers reported a shared/hit result, want %d", shared, callers-1)
	}
}

// Errors are not cached: a failed computation is retried.
func TestCacheDoErrorNotCached(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry = %q hit=%v err=%v", v, hit, err)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c, err := New(Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%13)
				want := "v" + k
				v, _, err := c.Do(k, func() ([]byte, error) { return []byte("v" + k), nil })
				if err != nil || string(v) != want {
					t.Errorf("Do(%s) = %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
