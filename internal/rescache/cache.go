package rescache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"voltstack/internal/telemetry"
)

// Cache instrumentation. No-ops unless telemetry is enabled. The
// aggregate counters (rescache_hits_total counts memory hits,
// rescache_misses_total counts full both-tier misses) predate the
// per-tier set and keep their meanings; the rescache_mem_* /
// rescache_disk_* counters break every lookup down by tier, so the
// memory hit ratio, the disk tier's contribution and the spill rate are
// each readable on their own (and in /statusz).
var (
	mHits        = telemetry.NewCounter("rescache_hits_total")
	mDiskHits    = telemetry.NewCounter("rescache_disk_hits_total")
	mMisses      = telemetry.NewCounter("rescache_misses_total")
	mEvictions   = telemetry.NewCounter("rescache_evictions_total")
	mDiskWrites  = telemetry.NewCounter("rescache_disk_writes_total")
	mDiskErrors  = telemetry.NewCounter("rescache_disk_errors_total")
	mShared      = telemetry.NewCounter("rescache_singleflight_shared_total")
	mMemBytes    = telemetry.NewGauge("rescache_mem_bytes")
	mMemEntries  = telemetry.NewGauge("rescache_mem_entries")
	mComputeSecs = telemetry.NewHistogram("rescache_compute_seconds")

	// Per-tier breakdown. Memory: hits, lookups falling past the LRU,
	// LRU evictions. Disk: hits, lookups that consulted the disk tier and
	// missed, spills (values written through to disk).
	mMemHits    = telemetry.NewCounter("rescache_mem_hits_total")
	mMemMisses  = telemetry.NewCounter("rescache_mem_misses_total")
	mMemEvicts  = telemetry.NewCounter("rescache_mem_evictions_total")
	mDiskMisses = telemetry.NewCounter("rescache_disk_misses_total")
	mDiskSpills = telemetry.NewCounter("rescache_disk_spills_total")
)

// Config bounds a cache.
type Config struct {
	// MaxEntries caps the in-memory LRU entry count; <= 0 selects 4096.
	MaxEntries int
	// MaxBytes caps the summed value size held in memory; <= 0 selects
	// 256 MiB. Values larger than the whole budget are stored on disk (if
	// configured) but not pinned in memory.
	MaxBytes int64
	// Dir, when non-empty, enables the disk tier: every stored value is
	// also written under Dir (one file per key, written via temp+rename so
	// readers never see partial content), and lookups fall back to it
	// after an in-memory miss — including across process restarts, which
	// is what makes daemon resume replay completed work instead of
	// recomputing it.
	Dir string
}

func (c Config) maxEntries() int {
	if c.MaxEntries <= 0 {
		return 4096
	}
	return c.MaxEntries
}

func (c Config) maxBytes() int64 {
	if c.MaxBytes <= 0 {
		return 256 << 20
	}
	return c.MaxBytes
}

// Cache is a content-addressed byte cache: an in-memory LRU in front of an
// optional disk tier, with singleflight deduplication of concurrent
// computations for the same key. All methods are safe for concurrent use.
// Returned byte slices are shared and must be treated as read-only.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

type entry struct {
	key string
	val []byte
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns a cache with the given bounds, creating the disk directory
// when one is configured.
func New(cfg Config) (*Cache, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: cache dir: %w", err)
		}
	}
	return &Cache{
		cfg:    cfg,
		ll:     list.New(),
		items:  map[string]*list.Element{},
		flight: map[string]*flightCall{},
	}, nil
}

// Get returns the cached value for key, consulting memory then disk. A
// disk hit is promoted back into the memory LRU.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		mHits.Add(1)
		mMemHits.Add(1)
		return val, true
	}
	c.mu.Unlock()
	mMemMisses.Add(1)
	if c.cfg.Dir != "" {
		if val, err := os.ReadFile(c.diskPath(key)); err == nil {
			mDiskHits.Add(1)
			c.putMem(key, val)
			return val, true
		}
		mDiskMisses.Add(1)
	}
	mMisses.Add(1)
	return nil, false
}

// Put stores val under key in memory and, when configured, on disk.
func (c *Cache) Put(key string, val []byte) {
	c.putMem(key, val)
	if c.cfg.Dir != "" {
		if err := c.writeDisk(key, val); err != nil {
			mDiskErrors.Add(1)
		} else {
			mDiskWrites.Add(1)
			mDiskSpills.Add(1)
		}
	}
}

func (c *Cache) putMem(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.ll.Len() > 0 && (c.ll.Len() > c.cfg.maxEntries() || c.bytes > c.cfg.maxBytes()) {
		back := c.ll.Back()
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		mEvictions.Add(1)
		mMemEvicts.Add(1)
	}
	mMemBytes.Set(float64(c.bytes))
	mMemEntries.Set(float64(c.ll.Len()))
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Do returns the value for key, computing it at most once across all
// concurrent callers: a cache hit (memory or disk) returns immediately;
// otherwise the first caller runs compute while later identical callers
// block and share its result. hit reports whether the value was served
// without running compute in this call (a cache hit or a shared flight).
// Errors are not cached — a later call retries the computation.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	if val, ok := c.Get(key); ok {
		return val, true, nil
	}
	c.flightMu.Lock()
	if call, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, call.err
		}
		mShared.Add(1)
		return call.val, true, nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[key] = call
	c.flightMu.Unlock()

	// Recheck under flight ownership: a Put may have landed between the
	// miss and the flight registration.
	computed := false
	if v, ok := c.Get(key); ok {
		call.val = v
	} else {
		computed = true
		t0 := telemetry.Now()
		call.val, call.err = compute()
		mComputeSecs.Since(t0)
		if call.err == nil {
			c.Put(key, call.val)
		}
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(call.done)
	return call.val, !computed, call.err
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.cfg.Dir, key+".json")
}

func (c *Cache) writeDisk(key string, val []byte) error {
	path := c.diskPath(key)
	tmp, err := os.CreateTemp(c.cfg.Dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
