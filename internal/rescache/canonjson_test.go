package rescache

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCanonicalJSONSortsAndNormalizes(t *testing.T) {
	got, err := CanonicalJSON(map[string]any{
		"b":   2.50,
		"a":   []any{1, "x", nil, true},
		"c":   map[string]any{"z": 1e2, "y": 0.1},
		"int": int64(9007199254740993), // 2^53+1: must not round-trip through float64
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":[1,"x",null,true],"b":2.5,"c":{"y":0.1,"z":100},"int":9007199254740993}`
	if string(got) != want {
		t.Errorf("canonical json:\n got %s\nwant %s", got, want)
	}
}

// Struct field order must not matter: two types carrying the same JSON
// data canonicalize identically.
func TestCanonicalJSONFieldOrderIndependent(t *testing.T) {
	type ab struct {
		A float64 `json:"a"`
		B int     `json:"b"`
	}
	type ba struct {
		B int     `json:"b"`
		A float64 `json:"a"`
	}
	x, err := CanonicalJSON(ab{A: 0.3, B: 7})
	if err != nil {
		t.Fatal(err)
	}
	y, err := CanonicalJSON(ba{B: 7, A: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Errorf("field order changed encoding: %s vs %s", x, y)
	}
}

// Float normalization: the shortest-round-trip form must preserve bits.
func TestCanonicalJSONFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0.1, 1.0 / 3.0, math.Pi, 1e-300, 2.2250738585072014e-308, 6.62607015e-34, 123456789.123456789} {
		b, err := CanonicalJSON(f)
		if err != nil {
			t.Fatal(err)
		}
		var back float64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if math.Float64bits(back) != math.Float64bits(f) {
			t.Errorf("float %v round-tripped to %v via %s", f, back, b)
		}
	}
}

func TestCanonicalJSONRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := CanonicalJSON(v); err == nil {
			t.Errorf("no error for %v", v)
		}
	}
	// Pre-encoded RawMessage with an out-of-range literal must be caught
	// by the number re-parse, not silently passed through.
	if _, err := CanonicalJSON(json.RawMessage(`{"x":1e999}`)); err == nil {
		t.Error("no error for out-of-range raw number")
	}
}

// goldenRequest mirrors the job-request shape the server hashes. The
// pinned digest below is the cache-key stability contract: if this test
// fails, cache keys changed across Go versions or a canonicalization
// change, and every cached result is silently invalidated — treat as a
// schema bump, not a test to casually update.
func goldenRequest() map[string]any {
	return map[string]any{
		"kind": "sweep",
		"sweep": map[string]any{
			"layers":          8,
			"imbalance":       0.65,
			"pad_fractions":   []float64{0.25, 0.5, 1.0},
			"converter_count": []int{2, 4, 6, 8},
			"tsvs":            []string{"dense", "sparse", "few"},
			"grid_nx":         16,
			"grid_ny":         16,
		},
		"seed": 1,
	}
}

func TestKeyGolden(t *testing.T) {
	const want = "6f104bba241cf157b6ba44c9b1fcc2e124cb31b24b0b016d706014eca8bab137"
	got, err := Key("voltstack-job", 1, goldenRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("golden request key drifted:\n got %s\nwant %s", got, want)
	}
}

func TestKeyPartBoundaries(t *testing.T) {
	a, err := Key("ab", "c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("a", "bc")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("part boundaries do not affect the key")
	}
	c1, err := Key("ab", "c")
	if err != nil {
		t.Fatal(err)
	}
	if a != c1 {
		t.Error("identical parts hash differently")
	}
}

func TestKeyErrorsOnUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil || !strings.Contains(err.Error(), "json") {
		t.Errorf("err = %v, want json encoding error", err)
	}
}
