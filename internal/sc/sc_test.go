package sc

import (
	"math"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func TestDefault28nmMatchesPaper(t *testing.T) {
	p := Default28nm()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: 8 nF total fly capacitance, 50 MHz optimum, 100 mA max load,
	// 4-way interleaving, RSERIES = 0.6 ohm.
	if p.Ctot != 8e-9 {
		t.Errorf("Ctot = %g", p.Ctot)
	}
	if p.FSw != 50e6 {
		t.Errorf("FSw = %g", p.FSw)
	}
	if p.MaxLoad != 0.1 {
		t.Errorf("MaxLoad = %g", p.MaxLoad)
	}
	if p.Interleave != 4 {
		t.Errorf("Interleave = %d", p.Interleave)
	}
	if rs := p.RSeriesNominal(); !units.ApproxEqual(rs, 0.6, 0.01, 0.02) {
		t.Errorf("RSERIES = %g, want 0.6 (paper)", rs)
	}
}

func TestRSSLFormula(t *testing.T) {
	// Eq. (1): RSSL = (Σ|ac|)² / (Ctot f).
	p := Default28nm()
	s := p.Topo.SumAC()
	want := s * s / (p.Ctot * p.FSw)
	if got := p.RSSL(p.FSw); !units.WithinRel(got, want, 1e-12) {
		t.Errorf("RSSL = %g, want %g", got, want)
	}
	// Doubling frequency halves RSSL.
	if !units.WithinRel(p.RSSL(2*p.FSw), want/2, 1e-12) {
		t.Error("RSSL should scale as 1/f")
	}
}

func TestRFSLFormula(t *testing.T) {
	// Eq. (2): RFSL = (Σ|ar|)² / (Gtot Dcyc), frequency independent.
	p := Default28nm()
	s := p.Topo.SumAR()
	want := s * s / (p.Gtot * p.Dcyc)
	if got := p.RFSL(); !units.WithinRel(got, want, 1e-12) {
		t.Errorf("RFSL = %g, want %g", got, want)
	}
}

func TestRSeriesCombination(t *testing.T) {
	p := Default28nm()
	f := p.FSw
	want := math.Hypot(p.RSSL(f), p.RFSL())
	if got := p.RSeries(f); !units.WithinRel(got, want, 1e-12) {
		t.Errorf("RSeries = %g, want %g", got, want)
	}
}

func TestTwoToOneChargeMultipliers(t *testing.T) {
	topo := TwoToOne()
	if !units.WithinRel(topo.SumAC(), 1/(2*math.Sqrt2), 1e-12) {
		t.Errorf("Σ|ac| = %g, want 1/(2√2)", topo.SumAC())
	}
	if !units.WithinRel(topo.SumAR(), 2, 1e-12) {
		t.Errorf("Σ|ar| = %g, want 2", topo.SumAR())
	}
	if topo.Ratio != 0.5 {
		t.Errorf("Ratio = %g", topo.Ratio)
	}
	if len(topo.AC) != 2 || len(topo.AR) != 8 {
		t.Errorf("push-pull cell should have 2 caps and 8 switches, got %d/%d", len(topo.AC), len(topo.AR))
	}
}

func TestAreaMatchesPaperPerTechnology(t *testing.T) {
	// Paper Sec. 3.1: MIM 0.472 mm², ferroelectric 0.102 mm²,
	// trench 0.082 mm² for the 8 nF converter.
	cases := []struct {
		tech CapTech
		mm2  float64
	}{
		{MIM, 0.472},
		{Ferroelectric, 0.102},
		{Trench, 0.082},
	}
	for _, c := range cases {
		p := Default28nm()
		p.Cap = c.tech
		got := p.Area() / (units.Millimeter * units.Millimeter)
		if !units.WithinRel(got, c.mm2, 1e-9) {
			t.Errorf("%v area = %g mm², want %g", c.tech, got, c.mm2)
		}
	}
}

func TestCapTechOrdering(t *testing.T) {
	if !(Trench.Density() > Ferroelectric.Density() && Ferroelectric.Density() > MIM.Density()) {
		t.Error("density ordering should be trench > ferroelectric > MIM")
	}
}

func TestEvaluateOpenLoopBasics(t *testing.T) {
	p := Default28nm()
	op := Evaluate(p, OpenLoop{}, 2.0, 50e-3)
	if op.Freq != p.FSw {
		t.Errorf("open loop should hold f = FSw, got %g", op.Freq)
	}
	if !units.WithinRel(op.VNoLoad, 1.0, 1e-12) {
		t.Errorf("VNoLoad = %g", op.VNoLoad)
	}
	if wantDrop := 50e-3 * p.RSeriesNominal(); !units.WithinRel(op.VDrop, wantDrop, 1e-12) {
		t.Errorf("VDrop = %g, want %g", op.VDrop, wantDrop)
	}
	if op.Efficiency <= 0 || op.Efficiency >= 1 {
		t.Errorf("efficiency = %g out of (0,1)", op.Efficiency)
	}
	// Energy accounting: POut + losses = VNoLoad * ILoad + PParasitic
	// (the ideal transformer input power).
	pin := op.POut + op.PCond + op.PParasitic
	if !units.WithinRel(pin, op.VNoLoad*op.ILoad+op.PParasitic, 1e-9) {
		t.Errorf("power bookkeeping mismatch: %g vs %g", pin, op.VNoLoad*op.ILoad+op.PParasitic)
	}
}

func TestOpenLoopEfficiencyRisesWithLoad(t *testing.T) {
	// Fig. 3b: open-loop efficiency increases monotonically from ~45% at
	// 10 mA toward ~83% at 90 mA (fixed parasitic loss amortized).
	p := Default28nm()
	prev := 0.0
	for _, il := range []float64{0.01, 0.03, 0.05, 0.07, 0.09} {
		op := Evaluate(p, OpenLoop{}, 2.0, il)
		if op.Efficiency <= prev {
			t.Errorf("efficiency not increasing at %g A: %g <= %g", il, op.Efficiency, prev)
		}
		prev = op.Efficiency
	}
	lo := Evaluate(p, OpenLoop{}, 2.0, 0.01).Efficiency
	hi := Evaluate(p, OpenLoop{}, 2.0, 0.09).Efficiency
	if lo < 0.35 || lo > 0.55 {
		t.Errorf("efficiency at 10 mA = %g, expected ~0.45", lo)
	}
	if hi < 0.78 || hi > 0.90 {
		t.Errorf("efficiency at 90 mA = %g, expected ~0.83", hi)
	}
}

func TestClosedLoopEfficiencyFlat(t *testing.T) {
	// Fig. 3a: closed-loop efficiency stays high (>80%) across the whole
	// 1.6-100 mA range because fSW tracks the load.
	p := Default28nm()
	cl := ClosedLoop{}
	for _, il := range []float64{1.6e-3, 3.1e-3, 6.3e-3, 12.5e-3, 25e-3, 50e-3, 100e-3} {
		op := Evaluate(p, cl, 2.0, il)
		if op.Efficiency < 0.80 {
			t.Errorf("closed-loop efficiency at %g A = %g, want > 0.80", il, op.Efficiency)
		}
	}
}

func TestClosedLoopBeatsOpenLoopAtLightLoad(t *testing.T) {
	p := Default28nm()
	il := 5e-3
	open := Evaluate(p, OpenLoop{}, 2.0, il)
	closed := Evaluate(p, ClosedLoop{}, 2.0, il)
	if closed.Efficiency <= open.Efficiency {
		t.Errorf("closed loop (%g) should beat open loop (%g) at light load",
			closed.Efficiency, open.Efficiency)
	}
}

func TestClosedLoopFrequencyClamped(t *testing.T) {
	p := Default28nm()
	cl := ClosedLoop{FloorFraction: 0.05}
	if f := cl.Freq(p, 0); f != 0.05*p.FSw {
		t.Errorf("zero load freq = %g, want floor", f)
	}
	if f := cl.Freq(p, 10); f != p.FSw {
		t.Errorf("overload freq = %g, want nominal", f)
	}
	// Sink current uses |I|.
	if f := cl.Freq(p, -0.05); f != 0.5*p.FSw {
		t.Errorf("sink freq = %g, want half nominal", f)
	}
}

func TestOverLimit(t *testing.T) {
	p := Default28nm()
	if p.OverLimit(0.1) {
		t.Error("exactly MaxLoad should not be over limit")
	}
	if !p.OverLimit(0.101) {
		t.Error("101 mA should be over the 100 mA limit")
	}
	if !p.OverLimit(-0.101) {
		t.Error("sinking 101 mA should be over limit too")
	}
}

func TestParasiticShuntG(t *testing.T) {
	p := Default28nm()
	vin := 2.0
	g := p.ParasiticShuntG(p.FSw, vin)
	if !units.WithinRel(g*vin*vin, p.ParasiticPower(p.FSw), 1e-12) {
		t.Error("shunt conductance must dissipate exactly the parasitic power")
	}
	if p.ParasiticShuntG(p.FSw, 0) != 0 {
		t.Error("zero vin should give zero shunt")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	base := Default28nm()
	mutations := []func(*Params){
		func(p *Params) { p.Ctot = 0 },
		func(p *Params) { p.FSw = -1 },
		func(p *Params) { p.Gtot = 0 },
		func(p *Params) { p.Dcyc = 0 },
		func(p *Params) { p.Dcyc = 1.5 },
		func(p *Params) { p.Topo.AC = nil },
		func(p *Params) { p.MaxLoad = 0 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestOptimalFrequencyIsMinimum(t *testing.T) {
	p := Default28nm()
	for _, il := range []float64{0.02, 0.05, 0.1} {
		fOpt := p.OptimalFrequency(2.0, il)
		loss := func(f float64) float64 {
			return il*il*p.RSeries(f) + p.ParasiticPower(f)
		}
		l0 := loss(fOpt)
		if loss(fOpt*1.3) < l0 || loss(fOpt/1.3) < l0 {
			t.Errorf("f=%g is not a loss minimum for I=%g", fOpt, il)
		}
	}
}

func TestEvaluatePropertyEfficiencyBounds(t *testing.T) {
	p := Default28nm()
	f := func(ilRaw, vinRaw float64) bool {
		il := math.Abs(math.Mod(ilRaw, 0.1))
		vin := 1 + math.Abs(math.Mod(vinRaw, 3))
		if il == 0 {
			return true
		}
		op := Evaluate(p, OpenLoop{}, vin, il)
		return op.Efficiency >= 0 && op.Efficiency <= 1 && op.VOut <= op.VNoLoad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLadderConstruction(t *testing.T) {
	cell := Default28nm()
	if _, err := NewLadder(1, cell); err == nil {
		t.Error("1-layer ladder should be rejected")
	}
	l, err := NewLadder(8, cell)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumCells() != 7 {
		t.Errorf("NumCells = %d, want 7", l.NumCells())
	}
	if !units.WithinRel(l.TotalArea(), 7*cell.Area(), 1e-12) {
		t.Error("TotalArea mismatch")
	}
}

func TestLadderNoLoadVoltages(t *testing.T) {
	cell := Default28nm()
	l, _ := NewLadder(4, cell)
	v := l.NoLoadVoltages(4.0)
	want := []float64{0, 1, 2, 3, 4}
	for i := range want {
		if !units.ApproxEqual(v[i], want[i], 1e-12, 1e-12) {
			t.Errorf("V[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestLadderBalancedLoadsZeroCurrent(t *testing.T) {
	cell := Default28nm()
	l, _ := NewLadder(6, cell)
	j, err := l.CellCurrents([]float64{2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range j {
		if math.Abs(v) > 1e-12 {
			t.Errorf("balanced ladder cell %d carries %g", k, v)
		}
	}
}

func TestLadderTwoLayerDifferential(t *testing.T) {
	cell := Default28nm()
	l, _ := NewLadder(2, cell)
	j, err := l.CellCurrents([]float64{2, 1}) // bottom heavy
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(j[0], 1, 1e-12) {
		t.Errorf("J = %g, want 1 (= I_bottom - I_top)", j[0])
	}
	iin, err := l.InputCurrent([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !units.WithinRel(iin, 1.5, 1e-12) {
		t.Errorf("input current = %g, want 1.5", iin)
	}
}

func TestLadderAlternatingPattern(t *testing.T) {
	// The interleaved high/low pattern of the paper's Fig. 6 benchmark:
	// for H,L,H,L the middle cell idles and the outer cells carry H-L.
	cell := Default28nm()
	l, _ := NewLadder(4, cell)
	h, lo := 3.0, 1.0
	j, err := l.CellCurrents([]float64{h, lo, h, lo})
	if err != nil {
		t.Fatal(err)
	}
	d := h - lo
	if !units.WithinRel(j[0], d, 1e-9) || !units.WithinRel(j[2], d, 1e-9) {
		t.Errorf("outer cells = %g, %g; want %g", j[0], j[2], d)
	}
	if math.Abs(j[1]) > 1e-9 {
		t.Errorf("middle cell = %g, want 0", j[1])
	}
}

func TestLadderEnergyConservation(t *testing.T) {
	// Lossless ladder: input power at N·Vdd equals Σ load_i · Vdd.
	cell := Default28nm()
	f := func(a, b, c, d float64) bool {
		loads := []float64{abs1(a), abs1(b), abs1(c), abs1(d)}
		l, _ := NewLadder(4, cell)
		iin, err := l.InputCurrent(loads)
		if err != nil {
			return false
		}
		var sum float64
		for _, x := range loads {
			sum += x
		}
		// P_in = iin * 4·Vdd must equal Σ I_i · Vdd  =>  iin = sum/4.
		return units.ApproxEqual(iin, sum/4, 1e-9, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs1(x float64) float64 {
	v := math.Abs(math.Mod(x, 10))
	if math.IsNaN(v) {
		return 1
	}
	return v
}

func TestLadderMaxCellCurrent(t *testing.T) {
	cell := Default28nm()
	l, _ := NewLadder(8, cell)
	loads := []float64{5, 1, 5, 1, 5, 1, 5, 1}
	m, err := l.MaxCellCurrent(loads)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 {
		t.Error("imbalanced ladder must carry nonzero current")
	}
	balanced, _ := l.MaxCellCurrent([]float64{3, 3, 3, 3, 3, 3, 3, 3})
	if balanced > 1e-9 {
		t.Errorf("balanced max current = %g", balanced)
	}
}

func TestLadderWrongLoadCount(t *testing.T) {
	cell := Default28nm()
	l, _ := NewLadder(4, cell)
	if _, err := l.CellCurrents([]float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestLadderEvaluateBalanced(t *testing.T) {
	l, _ := NewLadder(4, Default28nm())
	op, err := l.Evaluate([]float64{1, 1, 1, 1}, OpenLoop{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if op.MaxCellCurrent > 1e-9 || op.OverLimit {
		t.Errorf("balanced ladder should idle: %+v", op)
	}
	// Only parasitic losses remain: efficiency just under 1.
	if op.Efficiency < 0.95 || op.Efficiency >= 1 {
		t.Errorf("balanced efficiency = %g", op.Efficiency)
	}
}

func TestLadderEvaluateImbalanced(t *testing.T) {
	l, _ := NewLadder(4, Default28nm())
	op, err := l.Evaluate([]float64{0.08, 0.02, 0.08, 0.02}, OpenLoop{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if op.MaxCellCurrent <= 0 {
		t.Error("imbalanced ladder must shuttle current")
	}
	if op.MaxVDrop <= 0 {
		t.Error("shuttling current must droop the cells")
	}
	if op.OverLimit {
		t.Error("60 mA differential should be within ratings")
	}
	balanced, _ := l.Evaluate([]float64{0.05, 0.05, 0.05, 0.05}, OpenLoop{}, 1.0)
	if op.Efficiency >= balanced.Efficiency {
		t.Error("imbalance must cost efficiency")
	}
}

func TestLadderEvaluateOverLimit(t *testing.T) {
	l, _ := NewLadder(2, Default28nm())
	op, err := l.Evaluate([]float64{0.3, 0.05}, OpenLoop{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !op.OverLimit {
		t.Errorf("250 mA differential must exceed the cell rating (J=%g)", op.MaxCellCurrent)
	}
}
