// Package sc models switched-capacitor (SC) DC-DC converters using the
// analytical methodology of Seeman ("A design methodology for
// switched-capacitor DC-DC converters"): charge-multiplier vectors give the
// slow-switching (RSSL) and fast-switching (RFSL) asymptotic output
// impedances, combined as RSERIES = sqrt(RSSL² + RFSL²).
//
// The converter modeled by default is the paper's 2:1 push-pull converter:
// 28 nm implementation, 8 nF of integrated fly capacitance, 50 MHz optimum
// switching frequency, 4-way interleaving, 100 mA maximum load, with a
// "push-pull" ability to source or sink the current mismatch between two
// stacked loads.
package sc

import (
	"fmt"
	"math"

	"voltstack/internal/units"
)

// Topology describes an SC converter topology by its charge-multiplier
// vectors: AC over the fly capacitors and AR over the switches, both
// normalized to the output charge per cycle, plus the ideal conversion
// ratio (output voltage as a fraction of input voltage).
type Topology struct {
	Name  string
	AC    []float64 // per-capacitor charge multipliers
	AR    []float64 // per-switch charge multipliers
	Ratio float64   // ideal Vout/Vin
}

// TwoToOne returns the paper's push-pull 2:1 cell (Fig. 1): two fly
// capacitors interchanging positions every phase, eight switches. Because
// both capacitors transfer charge in both clock phases, the pair's
// slow-switching impedance is 1/(8·Ctot·f), i.e. Σ|ac| = 1/(2√2) — a
// factor √2 below a single-capacitor 2:1 divider. This value was verified
// against the switch-level transient simulator in package spice.
// Each of the 8 switches carries a quarter of the output charge per cycle.
func TwoToOne() Topology {
	const acEach = 0.17677669529663687 // 1/(4√2), per capacitor
	return Topology{
		Name:  "2:1 push-pull",
		AC:    []float64{acEach, acEach},
		AR:    []float64{0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25},
		Ratio: 0.5,
	}
}

// SumAC returns Σ|ac,i|.
func (t Topology) SumAC() float64 { return sumAbs(t.AC) }

// SumAR returns Σ|ar,i|.
func (t Topology) SumAR() float64 { return sumAbs(t.AR) }

func sumAbs(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// CapTech selects the integrated capacitor technology, which sets the area
// of the fly capacitors (the dominant area term). Densities are chosen so
// that an 8 nF converter occupies the areas quoted in the paper:
// MIM 0.472 mm², ferroelectric 0.102 mm², deep-trench 0.082 mm².
type CapTech int

const (
	// MIM is a metal-insulator-metal capacitor (low density).
	MIM CapTech = iota
	// Ferroelectric is a high-density ferroelectric capacitor.
	Ferroelectric
	// Trench is a deep-trench capacitor (highest density).
	Trench
)

// Density returns the capacitance density in F/m².
func (c CapTech) Density() float64 {
	const ctot = 8 * units.Nanofarad
	switch c {
	case MIM:
		return ctot / (0.472 * units.Millimeter * units.Millimeter)
	case Ferroelectric:
		return ctot / (0.102 * units.Millimeter * units.Millimeter)
	case Trench:
		return ctot / (0.082 * units.Millimeter * units.Millimeter)
	default:
		panic(fmt.Sprintf("sc: unknown CapTech %d", int(c)))
	}
}

// String names the technology.
func (c CapTech) String() string {
	switch c {
	case MIM:
		return "MIM"
	case Ferroelectric:
		return "ferroelectric"
	case Trench:
		return "trench"
	default:
		return fmt.Sprintf("CapTech(%d)", int(c))
	}
}

// Params holds the physical design parameters of one SC converter instance.
type Params struct {
	Topo Topology

	Ctot float64 // total fly capacitance (F)
	FSw  float64 // nominal (open-loop) switching frequency (Hz)
	Gtot float64 // total switch conductance (S)
	Dcyc float64 // duty cycle (fraction)

	Interleave int     // number of interleaved phases (ripple reduction only)
	Cap        CapTech // capacitor technology for the area model

	// Parasitic loss model: P_par(f) = f * (KBottomPlate*Ctot*VSwing² + QGate*VGate).
	KBottomPlate float64 // bottom-plate capacitance fraction of Ctot
	VSwing       float64 // bottom-plate voltage swing (V)
	QGate        float64 // total gate charge per cycle (C)
	VGate        float64 // gate drive voltage (V)

	MaxLoad float64 // maximum load current (A)
}

// Default28nm returns the paper's 28 nm 2:1 push-pull converter:
// 8 nF fly capacitance, 50 MHz, 4-way interleaving, 100 mA max load.
// With these values RSSL = 0.3125 Ω, RFSL = 0.513 Ω and
// RSERIES = 0.600 Ω — the paper's quoted output impedance. The
// switch-level simulator (package spice) measures 0.62 Ω for the same
// cell, a 3 % model-vs-simulation gap consistent with Fig. 3.
func Default28nm() Params {
	return Params{
		Topo:         TwoToOne(),
		Ctot:         8 * units.Nanofarad,
		FSw:          50 * units.Megahertz,
		Gtot:         15.6, // total switch conductance; per-switch Ron ≈ 0.51 Ω
		Dcyc:         0.5,
		Interleave:   4,
		Cap:          MIM,
		KBottomPlate: 0.025,                      // bottom-plate fraction of the fly capacitance
		VSwing:       1.0,                        // bottom plates swing by the cell output voltage
		QGate:        40 * units.Picofarad * 1.0, // 40 pC at 1 V gate drive
		VGate:        1.0,
		MaxLoad:      100 * units.Milliampere,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Ctot <= 0:
		return fmt.Errorf("sc: Ctot must be positive, got %g", p.Ctot)
	case p.FSw <= 0:
		return fmt.Errorf("sc: FSw must be positive, got %g", p.FSw)
	case p.Gtot <= 0:
		return fmt.Errorf("sc: Gtot must be positive, got %g", p.Gtot)
	case p.Dcyc <= 0 || p.Dcyc > 1:
		return fmt.Errorf("sc: Dcyc must be in (0,1], got %g", p.Dcyc)
	case len(p.Topo.AC) == 0 || len(p.Topo.AR) == 0:
		return fmt.Errorf("sc: topology %q has empty charge-multiplier vectors", p.Topo.Name)
	case p.MaxLoad <= 0:
		return fmt.Errorf("sc: MaxLoad must be positive, got %g", p.MaxLoad)
	}
	return nil
}

// RSSL returns the slow-switching-limit output impedance at frequency f:
// (Σ|ac,i|)² / (Ctot · f)  — Eq. (1) of the paper.
func (p Params) RSSL(f float64) float64 {
	s := p.Topo.SumAC()
	return s * s / (p.Ctot * f)
}

// RFSL returns the fast-switching-limit output impedance:
// (Σ|ar,i|)² / (Gtot · Dcyc)  — Eq. (2) of the paper.
func (p Params) RFSL() float64 {
	s := p.Topo.SumAR()
	return s * s / (p.Gtot * p.Dcyc)
}

// RSeries returns the combined output impedance at frequency f:
// sqrt(RSSL² + RFSL²).
func (p Params) RSeries(f float64) float64 {
	ssl := p.RSSL(f)
	fsl := p.RFSL()
	return math.Sqrt(ssl*ssl + fsl*fsl)
}

// RSeriesNominal returns RSeries at the nominal switching frequency.
func (p Params) RSeriesNominal() float64 { return p.RSeries(p.FSw) }

// ParasiticPower returns the frequency-proportional parasitic loss
// (bottom-plate and gate-drive) at switching frequency f.
func (p Params) ParasiticPower(f float64) float64 {
	perCycle := p.KBottomPlate*p.Ctot*p.VSwing*p.VSwing + p.QGate*p.VGate
	return perCycle * f
}

// ParasiticShuntG returns the shunt conductance across the converter's
// input port (voltage vin) that dissipates exactly ParasiticPower(f),
// which is how the parasitic loss is stamped into the MNA network.
func (p Params) ParasiticShuntG(f, vin float64) float64 {
	if vin == 0 {
		return 0
	}
	return p.ParasiticPower(f) / (vin * vin)
}

// Area returns the converter silicon area (m²), dominated by the fly
// capacitors at the selected technology density.
func (p Params) Area() float64 {
	return p.Ctot / p.Cap.Density()
}

// Control selects the frequency-modulation policy of a converter.
type Control interface {
	// Freq returns the switching frequency for a given load current.
	Freq(p Params, iLoad float64) float64
	// Name identifies the policy in reports.
	Name() string
}

// OpenLoop keeps the switching frequency constant at the nominal value —
// the policy used for all system-level results in the paper.
type OpenLoop struct{}

// Freq returns the nominal frequency regardless of load.
func (OpenLoop) Freq(p Params, _ float64) float64 { return p.FSw }

// Name returns "open-loop".
func (OpenLoop) Name() string { return "open-loop" }

// ClosedLoop modulates switching frequency proportionally to load current
// (validated in Fig. 3a; flagged as future work for system studies, and
// provided here as an extension).
type ClosedLoop struct {
	// FloorFraction is the minimum frequency as a fraction of nominal
	// (the modulator cannot stall the clock entirely). Default 0.02.
	FloorFraction float64
}

// Freq returns fSW scaled by the load fraction, clamped to the floor.
func (c ClosedLoop) Freq(p Params, iLoad float64) float64 {
	floor := c.FloorFraction
	if floor <= 0 {
		floor = 0.02
	}
	frac := math.Abs(iLoad) / p.MaxLoad
	return p.FSw * units.Clamp(frac, floor, 1)
}

// Name returns "closed-loop".
func (ClosedLoop) Name() string { return "closed-loop" }

// OperatingPoint is the evaluated state of a converter at one load level.
type OperatingPoint struct {
	ILoad      float64 // load current (A)
	Freq       float64 // switching frequency used (Hz)
	RSeries    float64 // output impedance at that frequency (Ω)
	VNoLoad    float64 // ideal (no-load) output voltage (V)
	VOut       float64 // loaded output voltage (V)
	VDrop      float64 // output voltage drop (V)
	POut       float64 // power delivered to load (W)
	PCond      float64 // conduction loss (W)
	PParasitic float64 // switching/parasitic loss (W)
	Efficiency float64 // POut / (POut + PCond + PParasitic)
}

// Evaluate computes the operating point of a converter delivering iLoad
// from an input rail vin (so the ideal output is vin·Ratio). iLoad may
// exceed MaxLoad only if the caller checks OverLimit separately.
func Evaluate(p Params, ctrl Control, vin, iLoad float64) OperatingPoint {
	if ctrl == nil {
		ctrl = OpenLoop{}
	}
	f := ctrl.Freq(p, iLoad)
	rs := p.RSeries(f)
	vnl := vin * p.Topo.Ratio
	vout := vnl - iLoad*rs
	pout := vout * iLoad
	pcond := iLoad * iLoad * rs
	ppar := p.ParasiticPower(f)
	den := pout + pcond + ppar
	eff := 0.0
	if den > 0 && pout > 0 {
		eff = pout / den
	}
	return OperatingPoint{
		ILoad:      iLoad,
		Freq:       f,
		RSeries:    rs,
		VNoLoad:    vnl,
		VOut:       vout,
		VDrop:      vnl - vout,
		POut:       pout,
		PCond:      pcond,
		PParasitic: ppar,
		Efficiency: eff,
	}
}

// OverLimit reports whether iLoad exceeds the converter's rated maximum.
func (p Params) OverLimit(iLoad float64) bool {
	return math.Abs(iLoad) > p.MaxLoad*(1+1e-12)
}

// OptimalFrequency returns the frequency that minimizes total loss for a
// given load current by balancing conduction loss (falling with f through
// RSSL) against parasitic loss (rising with f). Found by golden-section
// search over a wide bracket around the nominal frequency.
func (p Params) OptimalFrequency(vin, iLoad float64) float64 {
	loss := func(f float64) float64 {
		rs := p.RSeries(f)
		return iLoad*iLoad*rs + p.ParasiticPower(f)
	}
	lo, hi := p.FSw/100, p.FSw*100
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	for i := 0; i < 200 && (b-a) > 1e-6*p.FSw; i++ {
		if loss(c) < loss(d) {
			b = d
		} else {
			a = c
		}
		c = b - phi*(b-a)
		d = a + phi*(b-a)
	}
	return (a + b) / 2
}
