package sc

import (
	"fmt"
	"math"

	"voltstack/internal/units"
)

// BuckParams models a fully integrated synchronous buck converter, the
// inductive alternative the paper defers to future work (Sec. 2.1 cites
// the Steyaert survey's conclusion that integrated switched-capacitor
// converters are overtaking inductive ones as capacitor density improves).
// The model covers the loss terms that matter for the integrated-regulator
// comparison: conduction through switch and inductor resistance including
// current ripple, and frequency-proportional gate-drive/switching loss.
type BuckParams struct {
	L     float64 // power inductance (H)
	FSw   float64 // switching frequency (Hz)
	RdsOn float64 // per-switch on-resistance (Ω); one switch conducts at a time
	RL    float64 // inductor series resistance (Ω)

	QGate float64 // total gate charge per cycle (C)
	VGate float64 // gate drive voltage (V)
	// VOverlap models voltage-current overlap switching loss:
	// P = VOverlap · Vin · |I| · fSW.
	VOverlap float64 // effective overlap time (s)

	// InductorDensity sets the area model (H/m²); integrated spiral
	// inductors are orders of magnitude less dense than MIM capacitors,
	// which is the crux of the SC-vs-buck area comparison.
	InductorDensity float64
	MaxLoad         float64 // rated output current (A)
}

// DefaultBuck28nm returns a representative fully integrated buck in the
// same 28 nm technology as the SC cell: a 20 nH spiral (quality factor
// ~10 at the 150 MHz switching frequency) and 100 mA rating.
func DefaultBuck28nm() BuckParams {
	return BuckParams{
		L:               20 * units.Nano,
		FSw:             150 * units.Megahertz,
		RdsOn:           0.15,
		RL:              2.0,
		QGate:           40 * units.Picofarad * 1.0,
		VGate:           1.0,
		VOverlap:        20 * units.Picosecond,
		InductorDensity: 5 * units.Nano / (units.Millimeter * units.Millimeter),
		MaxLoad:         100 * units.Milliampere,
	}
}

// Validate checks parameter sanity.
func (b BuckParams) Validate() error {
	switch {
	case b.L <= 0:
		return fmt.Errorf("sc: buck inductance must be positive, got %g", b.L)
	case b.FSw <= 0:
		return fmt.Errorf("sc: buck FSw must be positive, got %g", b.FSw)
	case b.RdsOn < 0 || b.RL < 0:
		return fmt.Errorf("sc: buck resistances must be non-negative")
	case b.InductorDensity <= 0:
		return fmt.Errorf("sc: inductor density must be positive")
	case b.MaxLoad <= 0:
		return fmt.Errorf("sc: buck MaxLoad must be positive")
	}
	return nil
}

// RippleCurrent returns the peak-to-peak inductor current ripple when
// converting vin to vout.
func (b BuckParams) RippleCurrent(vin, vout float64) float64 {
	if vin <= 0 || vout <= 0 || vout >= vin {
		return 0
	}
	d := vout / vin
	return vout * (1 - d) / (b.L * b.FSw)
}

// Evaluate computes the buck operating point delivering iLoad at the
// target output vin·ratio (matching the SC Evaluate convention: for the
// stack comparison vin = 2·Vdd and ratio = 1/2).
func (b BuckParams) Evaluate(vin, iLoad float64) OperatingPoint {
	vout := vin / 2
	ripple := b.RippleCurrent(vin, vout)
	i := math.Abs(iLoad)
	iRms2 := i*i + ripple*ripple/12
	rCond := b.RdsOn + b.RL // one switch + inductor in the loop at all times
	pCond := iRms2 * rCond
	pSw := b.QGate*b.VGate*b.FSw + b.VOverlap*vin*i*b.FSw
	// Effective output droop from the conduction path.
	vDrop := i * rCond
	vo := vout - vDrop
	pout := vo * iLoad
	den := pout + pCond + pSw
	eff := 0.0
	if den > 0 && pout > 0 {
		eff = pout / den
	}
	return OperatingPoint{
		ILoad:      iLoad,
		Freq:       b.FSw,
		RSeries:    rCond,
		VNoLoad:    vout,
		VOut:       vo,
		VDrop:      vDrop,
		POut:       pout,
		PCond:      pCond,
		PParasitic: pSw,
		Efficiency: eff,
	}
}

// Area returns the silicon area, dominated by the integrated inductor.
func (b BuckParams) Area() float64 {
	return b.L / b.InductorDensity
}

// OverLimit reports whether iLoad exceeds the rating.
func (b BuckParams) OverLimit(iLoad float64) bool {
	return math.Abs(iLoad) > b.MaxLoad*(1+1e-12)
}

// ConverterComparison contrasts the SC cell and the buck at one load.
type ConverterComparison struct {
	LoadMA  float64
	SCEff   float64
	BuckEff float64
	// Areas in mm² for one converter instance.
	SCAreaMM2   float64
	BuckAreaMM2 float64
}

// CompareWithBuck evaluates both regulators across a load sweep at the
// stack input voltage (2·Vdd = 2 V). This quantifies the paper's cited
// claim that integrated switched-capacitor converters surpass inductive
// ones once high-density capacitors are available.
func CompareWithBuck(scp Params, buck BuckParams, ctrl Control, loadsMA []float64) []ConverterComparison {
	const vin = 2.0
	out := make([]ConverterComparison, 0, len(loadsMA))
	for _, mA := range loadsMA {
		il := mA * units.Milliampere
		scOp := Evaluate(scp, ctrl, vin, il)
		buckOp := buck.Evaluate(vin, il)
		out = append(out, ConverterComparison{
			LoadMA:      mA,
			SCEff:       scOp.Efficiency,
			BuckEff:     buckOp.Efficiency,
			SCAreaMM2:   scp.Area() / (units.Millimeter * units.Millimeter),
			BuckAreaMM2: buck.Area() / (units.Millimeter * units.Millimeter),
		})
	}
	return out
}
