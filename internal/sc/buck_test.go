package sc

import (
	"math"
	"testing"

	"voltstack/internal/units"
)

func TestBuckDefaultsValid(t *testing.T) {
	if err := DefaultBuck28nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuckValidation(t *testing.T) {
	muts := []func(*BuckParams){
		func(b *BuckParams) { b.L = 0 },
		func(b *BuckParams) { b.FSw = -1 },
		func(b *BuckParams) { b.RdsOn = -1 },
		func(b *BuckParams) { b.InductorDensity = 0 },
		func(b *BuckParams) { b.MaxLoad = 0 },
	}
	for i, m := range muts {
		b := DefaultBuck28nm()
		m(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestBuckRippleFormula(t *testing.T) {
	b := DefaultBuck28nm()
	// ΔI = Vout(1-D)/(L·f) with D = 0.5, Vout = 1 V.
	want := 1.0 * 0.5 / (b.L * b.FSw)
	if got := b.RippleCurrent(2, 1); !units.WithinRel(got, want, 1e-12) {
		t.Errorf("ripple = %g, want %g", got, want)
	}
	// Degenerate conversions ripple nothing.
	if b.RippleCurrent(0, 1) != 0 || b.RippleCurrent(1, 2) != 0 {
		t.Error("degenerate ripple should be zero")
	}
	// Bigger inductance, less ripple.
	b2 := b
	b2.L *= 4
	if b2.RippleCurrent(2, 1) >= b.RippleCurrent(2, 1) {
		t.Error("ripple should shrink with L")
	}
}

func TestBuckEvaluateBasics(t *testing.T) {
	b := DefaultBuck28nm()
	op := b.Evaluate(2.0, 0.05)
	if !units.WithinRel(op.VNoLoad, 1.0, 1e-12) {
		t.Errorf("VNoLoad = %g", op.VNoLoad)
	}
	if op.Efficiency <= 0 || op.Efficiency >= 1 {
		t.Errorf("efficiency = %g", op.Efficiency)
	}
	if op.VOut >= op.VNoLoad {
		t.Error("loaded output should droop")
	}
	// Power bookkeeping is self-consistent.
	if !units.WithinRel(op.POut/(op.POut+op.PCond+op.PParasitic), op.Efficiency, 1e-12) {
		t.Error("efficiency bookkeeping mismatch")
	}
}

func TestBuckAreaDominatedByInductor(t *testing.T) {
	b := DefaultBuck28nm()
	sc := Default28nm()
	sc.Cap = Trench
	// The integrated inductor is orders of magnitude less area-efficient
	// than trench capacitors: the paper's motivation for SC converters.
	if ratio := b.Area() / sc.Area(); ratio < 10 {
		t.Errorf("buck/SC area ratio = %g, expected >> 1", ratio)
	}
}

func TestBuckOverLimit(t *testing.T) {
	b := DefaultBuck28nm()
	if b.OverLimit(0.1) || !b.OverLimit(0.11) {
		t.Error("limit check wrong")
	}
}

func TestCompareWithBuckShape(t *testing.T) {
	scp := Default28nm()
	scp.Cap = Trench
	buck := DefaultBuck28nm()
	rows := CompareWithBuck(scp, buck, OpenLoop{}, []float64{10, 30, 50, 70, 90})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SCEff <= 0 || r.SCEff >= 1 || r.BuckEff <= 0 || r.BuckEff >= 1 {
			t.Fatalf("efficiencies out of range at %g mA: %+v", r.LoadMA, r)
		}
		if r.BuckAreaMM2 <= r.SCAreaMM2 {
			t.Errorf("buck area %g should exceed SC area %g", r.BuckAreaMM2, r.SCAreaMM2)
		}
	}
	// At moderate-to-heavy load, the SC cell with high-density caps beats
	// the lossy integrated inductor (the Steyaert-survey conclusion).
	heavy := rows[len(rows)-1]
	if heavy.SCEff <= heavy.BuckEff {
		t.Errorf("at %g mA: SC %g should beat buck %g", heavy.LoadMA, heavy.SCEff, heavy.BuckEff)
	}
}

func TestBuckSinkingSymmetry(t *testing.T) {
	b := DefaultBuck28nm()
	src := b.Evaluate(2.0, 0.05)
	sink := b.Evaluate(2.0, -0.05)
	if !units.WithinRel(src.PCond, sink.PCond, 1e-9) {
		t.Error("conduction loss must depend on |I|")
	}
	if sink.POut >= 0 {
		t.Error("sinking delivers negative output power")
	}
}

func TestBuckEfficiencyPeaksMidLoad(t *testing.T) {
	// Fixed switching loss dominates at light load, conduction at heavy:
	// efficiency peaks somewhere in between and both ends are lower.
	b := DefaultBuck28nm()
	var effs []float64
	for _, il := range []float64{0.005, 0.02, 0.05, 0.08, 0.1} {
		effs = append(effs, b.Evaluate(2.0, il).Efficiency)
	}
	peak := 0.0
	for _, e := range effs {
		peak = math.Max(peak, e)
	}
	if peak <= effs[0] || peak < effs[len(effs)-1] {
		t.Errorf("efficiency profile not peaked: %v", effs)
	}
}
