package sc

import (
	"fmt"

	"voltstack/internal/sparse"
)

// Ladder models the paper's scalable multi-output extension of the 2:1
// push-pull cell for many-layer stacks: one cell per intermediate rail,
// cell k spanning rails (k-1, k+1) with its output on rail k. Rails are
// numbered 0 (stack ground) through Layers (stack top).
type Ladder struct {
	Layers int    // number of stacked loads (≥ 2)
	Cell   Params // the per-cell converter design
}

// NewLadder builds a ladder for an N-layer stack. N must be at least 2.
func NewLadder(layers int, cell Params) (*Ladder, error) {
	if layers < 2 {
		return nil, fmt.Errorf("sc: ladder needs at least 2 layers, got %d", layers)
	}
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	return &Ladder{Layers: layers, Cell: cell}, nil
}

// NumCells returns the number of converter cells (one per intermediate rail).
func (l *Ladder) NumCells() int { return l.Layers - 1 }

// TotalArea returns the silicon area of all cells.
func (l *Ladder) TotalArea() float64 {
	return float64(l.NumCells()) * l.Cell.Area()
}

// NoLoadVoltages returns the ideal rail voltages [V0..VN] of an unloaded
// ladder fed with vTop at rail N and 0 at rail 0: a uniform division.
func (l *Ladder) NoLoadVoltages(vTop float64) []float64 {
	v := make([]float64, l.Layers+1)
	for i := range v {
		v[i] = vTop * float64(i) / float64(l.Layers)
	}
	return v
}

// CellCurrents solves the idealized (zero rail resistance) ladder for the
// output current each cell must deliver, given the per-layer load currents
// loads[0..N-1] (layer i draws loads[i] between rails i+1 and i).
//
// KCL at intermediate rail k (k = 1..N-1): the load above injects
// loads[k], the load below draws loads[k-1], cell k delivers J[k], and the
// neighbouring cells at k-1 and k+1 each draw J/2 from rail k:
//
//	loads[k] - loads[k-1] + J[k] - J[k-1]/2 - J[k+1]/2 = 0
//
// The resulting tridiagonal system is solved densely (N is small).
// The returned slice is indexed by cell (rail) number 1..N-1 at positions
// 0..N-2.
func (l *Ladder) CellCurrents(loads []float64) ([]float64, error) {
	n := l.Layers
	if len(loads) != n {
		return nil, fmt.Errorf("sc: need %d per-layer loads, got %d", n, len(loads))
	}
	m := n - 1 // unknown cell currents
	a := sparse.NewDense(m)
	rhs := make([]float64, m)
	for k := 1; k <= m; k++ {
		row := k - 1
		a.Add(row, row, 1)
		if k-1 >= 1 {
			a.Add(row, row-1, -0.5)
		}
		if k+1 <= m {
			a.Add(row, row+1, -0.5)
		}
		rhs[row] = loads[k-1] - loads[k]
	}
	lu, err := a.LU()
	if err != nil {
		return nil, fmt.Errorf("sc: ladder system singular: %v", err)
	}
	return lu.Solve(rhs), nil
}

// MaxCellCurrent returns the largest |J| over the cells for the given
// per-layer loads, the quantity checked against the 100 mA cell limit.
func (l *Ladder) MaxCellCurrent(loads []float64) (float64, error) {
	j, err := l.CellCurrents(loads)
	if err != nil {
		return 0, err
	}
	var m float64
	for _, v := range j {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m, nil
}

// InputCurrent returns the current drawn from the stack top rail in the
// idealized ladder: the top load current plus half the top cell's output.
func (l *Ladder) InputCurrent(loads []float64) (float64, error) {
	j, err := l.CellCurrents(loads)
	if err != nil {
		return 0, err
	}
	iin := loads[l.Layers-1]
	if len(j) > 0 {
		iin += j[len(j)-1] / 2
	}
	return iin, nil
}

// Evaluate computes the aggregate operating state of the ladder for the
// given per-layer load currents and control policy: every cell is
// evaluated at its own output current, and the results are combined into
// stack-level efficiency and worst-case drop.
func (l *Ladder) Evaluate(loads []float64, ctrl Control, vdd float64) (LadderOperatingPoint, error) {
	j, err := l.CellCurrents(loads)
	if err != nil {
		return LadderOperatingPoint{}, err
	}
	var op LadderOperatingPoint
	op.CellCurrents = j
	var pComp, pLoss float64
	for _, ji := range j {
		cell := Evaluate(l.Cell, ctrl, 2*vdd, ji)
		if a := abs(ji); a > op.MaxCellCurrent {
			op.MaxCellCurrent = a
		}
		if cell.VDrop > op.MaxVDrop {
			op.MaxVDrop = cell.VDrop
		}
		pComp += abs(cell.POut)
		pLoss += cell.PCond + cell.PParasitic
		if l.Cell.OverLimit(ji) {
			op.OverLimit = true
		}
	}
	var pLoad float64
	for _, i := range loads {
		pLoad += i * vdd
	}
	op.CompensationPower = pComp
	op.LossPower = pLoss
	if pLoad+pLoss > 0 {
		op.Efficiency = pLoad / (pLoad + pLoss)
	}
	return op, nil
}

// LadderOperatingPoint summarizes an Evaluate call.
type LadderOperatingPoint struct {
	CellCurrents      []float64
	MaxCellCurrent    float64
	MaxVDrop          float64 // worst cell output drop (V)
	CompensationPower float64 // power shuttled by the cells (W)
	LossPower         float64 // converter losses (W)
	Efficiency        float64 // load power / (load power + losses)
	OverLimit         bool
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
