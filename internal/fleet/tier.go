package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"voltstack/internal/rescache"
)

// The shared cache tier is the coordinator's rescache served over HTTP.
// Content addressing makes this safe with no coherence protocol: a key
// is the SHA-256 of everything that determines the value, so an entry is
// immutable — the only operations are "have you got it" and "here it
// is". Workers consult the tier after their local cache and before
// solving, and write fresh results through, so one worker's solve serves
// the whole fleet (and the coordinator's merge, which reads the same
// rescache directly).

// maxTierValue bounds a PUT body; point metrics are a few hundred bytes,
// so anything near this is a protocol error, not data.
const maxTierValue = 8 << 20

// validKey reports whether key looks like a rescache content address
// (64 hex chars) — everything else is rejected before touching the
// cache, since the key becomes a file name in the disk tier.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// MountTier serves cache as the fleet's shared tier on mux.
func MountTier(mux *http.ServeMux, cache *rescache.Cache) {
	mux.HandleFunc("GET /fleet/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			http.Error(w, "malformed cache key", http.StatusBadRequest)
			return
		}
		val, ok := cache.Get(key)
		if !ok {
			mTierMisses.Add(1)
			http.Error(w, "not cached", http.StatusNotFound)
			return
		}
		mTierHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(val)
	})
	mux.HandleFunc("PUT /fleet/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			http.Error(w, "malformed cache key", http.StatusBadRequest)
			return
		}
		val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTierValue))
		if err != nil {
			http.Error(w, "body too large or unreadable", http.StatusBadRequest)
			return
		}
		cache.Put(key, val)
		mTierWrites.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
}

// RemoteTier is a worker's client for the coordinator's shared tier.
// All methods degrade gracefully: the tier is an optimization, so a
// failed lookup is a miss and a failed write-through is dropped.
type RemoteTier struct {
	// Base is the coordinator's base URL.
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (t *RemoteTier) httpc() *http.Client {
	if t.HTTP != nil {
		return t.HTTP
	}
	return http.DefaultClient
}

func (t *RemoteTier) url(key string) string {
	return t.Base + "/fleet/v1/cache/" + key
}

// Get looks key up in the shared tier.
func (t *RemoteTier) Get(ctx context.Context, key string) ([]byte, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := t.httpc().Do(req)
	if err != nil {
		mRemoteMisses.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		mRemoteMisses.Add(1)
		return nil, false
	}
	val, err := io.ReadAll(io.LimitReader(resp.Body, maxTierValue))
	if err != nil {
		mRemoteMisses.Add(1)
		return nil, false
	}
	mRemoteHits.Add(1)
	return val, true
}

// Put writes val through to the shared tier.
func (t *RemoteTier) Put(ctx context.Context, key string, val []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.url(key), bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fleet: tier put %s: %s", key[:8], resp.Status)
	}
	mRemoteWrites.Add(1)
	return nil
}
