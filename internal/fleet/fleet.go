// Package fleet turns a set of vsserved daemons into one horizontally
// scalable evaluation service. A coordinator daemon accepts the regular
// /v1/jobs API unchanged, partitions sweep jobs into work units keyed by
// the per-point content addresses (pdngrid.CacheFingerprint identities),
// and dispatches them to registered worker daemons — with work-stealing
// for stragglers, heartbeat-based failure detection, and re-dispatch of
// orphaned units. Non-shardable jobs (experiments, em-mc) are forwarded
// whole to the least-loaded worker.
//
// A shared result-cache tier rides on the coordinator's rescache: the
// coordinator's own per-point lookup is the tier's read path for merges,
// workers consult it before solving and write fresh results through, so
// any daemon's hit serves any client. Everything is content-addressed by
// the same canonical-JSON SHA-256 keys as a standalone daemon, which is
// what makes the core contract hold: a sharded run's merged result is
// byte-identical to the standalone result, and after killing any worker
// (or the coordinator itself) a resubmitted job replays the already
// computed points for free.
//
// Wire protocol (all JSON, mounted on the daemons' regular listeners):
//
//	POST /fleet/v1/heartbeat    worker → coordinator: register/liveness
//	GET  /fleet/v1/status       coordinator: fleet status document
//	GET  /fleet/v1/cache/{key}  shared cache tier lookup (404 on miss)
//	PUT  /fleet/v1/cache/{key}  shared cache tier write-through
//	POST /fleet/v1/units:run    coordinator → worker: evaluate a unit
//
// Build coherence: every cache key folds in telemetry.BuildStamp(), so a
// worker built from different code would silently never share results.
// The registry therefore rejects heartbeats whose build stamp differs
// from the coordinator's, and workers verify each dispatched unit's keys
// against their own build before solving.
package fleet

import (
	"encoding/json"

	"voltstack/internal/server"
	"voltstack/internal/telemetry"
)

// Fleet instrumentation. No-ops unless telemetry is enabled.
var (
	// Coordinator side.
	mHeartbeats   = telemetry.NewCounter("fleet_heartbeats_total")
	mWorkersAlive = telemetry.NewGauge("fleet_workers_alive")
	mDispatched   = telemetry.NewCounter("fleet_units_dispatched_total")
	mStolen       = telemetry.NewCounter("fleet_units_stolen_total")
	mRequeued     = telemetry.NewCounter("fleet_units_requeued_total")
	mUnitFails    = telemetry.NewCounter("fleet_unit_failures_total")
	mTierHits     = telemetry.NewCounter("fleet_tier_hits_total")
	mTierMisses   = telemetry.NewCounter("fleet_tier_misses_total")
	mTierWrites   = telemetry.NewCounter("fleet_tier_writes_total")

	// Worker side.
	mUnitsServed  = telemetry.NewCounter("fleet_units_served_total")
	mUnitPoints   = telemetry.NewCounter("fleet_unit_points_total")
	mRemoteHits   = telemetry.NewCounter("fleet_remote_cache_hits_total")
	mRemoteMisses = telemetry.NewCounter("fleet_remote_cache_misses_total")
	mRemoteWrites = telemetry.NewCounter("fleet_remote_cache_writes_total")
)

// Heartbeat is a worker's periodic registration: identity, where the
// coordinator can dial it, the build it runs, and its self-reported
// load (jobs running/queued in its engine, fleet units in flight).
type Heartbeat struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Build   string `json:"build"`
	Running int    `json:"running"`
	Queued  int    `json:"queued"`
	Units   int    `json:"units_inflight"`
}

// UnitRequest asks a worker to evaluate one work unit: a subset of the
// sweep points of a job. The worker rebuilds the design enumeration from
// the request and verifies every point's key against its own build
// before solving anything.
type UnitRequest struct {
	JobID   string               `json:"job_id"`
	Request server.JobRequest    `json:"request"`
	Points  []server.RemotePoint `json:"points"`
}

// PointResult is one evaluated point: its index, its content address and
// the raw metrics in canonical JSON — the exact bytes a standalone
// daemon's evaluation path produces for the same key.
type PointResult struct {
	Index   int             `json:"index"`
	Key     string          `json:"key"`
	Metrics json.RawMessage `json:"metrics"`
}

// UnitResult is a worker's answer to a UnitRequest.
type UnitResult struct {
	Worker string        `json:"worker"`
	Points []PointResult `json:"points"`
}

// WorkerInfo is one registry row in the fleet status document.
type WorkerInfo struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// LastBeat is the most recent heartbeat in RFC 3339.
	LastBeat string `json:"last_beat,omitempty"`
	Build    string `json:"build,omitempty"`

	// Self-reported load from the last heartbeat.
	Running       int `json:"running"`
	Queued        int `json:"queued"`
	UnitsInflight int `json:"units_inflight"`

	// Coordinator-observed tallies.
	UnitsDone   int64 `json:"units_done"`
	UnitsFailed int64 `json:"units_failed"`
	Steals      int64 `json:"steals"`
}

// Status is the GET /fleet/v1/status document.
type Status struct {
	Role    string       `json:"role"`
	Build   string       `json:"build"`
	Workers []WorkerInfo `json:"workers"`

	UnitsDispatched int64 `json:"units_dispatched"`
	UnitsStolen     int64 `json:"units_stolen"`
	UnitsRequeued   int64 `json:"units_requeued"`
	UnitFailures    int64 `json:"unit_failures"`
	JobsForwarded   int64 `json:"jobs_forwarded"`
	TierHits        int64 `json:"tier_hits"`
	TierMisses      int64 `json:"tier_misses"`
	TierWrites      int64 `json:"tier_writes"`
}
