package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voltstack/internal/rescache"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
)

// Process-global solver-work counters: every manager in this test binary
// shares them, so a delta of zero proves no daemon anywhere did fresh
// solver work.
var (
	cSolves   = telemetry.NewCounter("pdngrid_solves_total")
	cPCGIters = telemetry.NewCounter("sparse_pcg_iterations_total")
)

func newCache(t *testing.T) *rescache.Cache {
	t.Helper()
	c, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sweepReq builds a small deterministic sweep on a coarse 8×8 mesh with
// serial evaluation. The space enumerates len(pads)×len(convs) VS designs
// plus one regular-PDN baseline per pad fraction, so the point count is
// len(pads)×(len(convs)+1).
func sweepReq(pads []float64, convs []int) server.JobRequest {
	imb := 0.65
	return server.JobRequest{
		Kind: server.KindSweep,
		Sweep: &server.SweepSpec{
			Layers:         2,
			Imbalance:      &imb,
			PadFractions:   pads,
			ConverterCount: convs,
			TSVs:           []string{"dense"},
			GridNx:         8,
			GridNy:         8,
		},
		Workers: 1,
	}
}

// standaloneResult runs req on a fresh standalone manager — the
// byte-identity reference every fleet run must match.
func standaloneResult(t *testing.T, req server.JobRequest) []byte {
	t.Helper()
	mgr, err := server.NewManager(server.Config{Cache: newCache(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	j, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	res, err := mgr.Result(j)
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	return res
}

// worker is one worker daemon: its own manager and listener with the
// fleet unit endpoint mounted.
type worker struct {
	name  string
	mgr   *server.Manager
	srv   *server.Server
	agent *Agent
}

func startWorker(t *testing.T, name, join string) *worker {
	t.Helper()
	mgr, err := server.NewManager(server.Config{Cache: newCache(t)})
	if err != nil {
		t.Fatal(err)
	}
	mux := server.NewHandler(mgr)
	srv, err := server.StartHandler("127.0.0.1:0", mgr, mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	agent := NewAgent(mgr, AgentConfig{Name: name, Join: join, Advertise: srv.URL()})
	agent.Mount(mux)
	if err := agent.BeatOnce(context.Background()); err != nil {
		t.Fatalf("worker %s heartbeat: %v", name, err)
	}
	return &worker{name: name, mgr: mgr, srv: srv, agent: agent}
}

// coordinator is one coordinator daemon wired exactly like
// `vsserved -role coordinator`: one cache shared between the job engine
// and the fleet tier, the dispatcher plugged into the manager.
type coordinator struct {
	coord *Coordinator
	mgr   *server.Manager
	srv   *server.Server
}

func startCoordinator(t *testing.T, stateDir string, cfg CoordinatorConfig) *coordinator {
	t.Helper()
	cache := newCache(t)
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(time.Hour) // liveness by heartbeat only, no timeout flake
	}
	if cfg.WorkerWait == 0 {
		cfg.WorkerWait = 30 * time.Second
	}
	coord := NewCoordinator(cache, cfg)
	mgr, err := server.NewManager(server.Config{Cache: cache, StateDir: stateDir, Dispatcher: coord})
	if err != nil {
		t.Fatal(err)
	}
	mux := server.NewHandler(mgr)
	coord.Mount(mux)
	srv, err := server.StartHandler("127.0.0.1:0", mgr, mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &coordinator{coord: coord, mgr: mgr, srv: srv}
}

// TestRegistryLiveness pins heartbeat-based liveness: a worker is alive
// until it has been silent past the timeout or a dispatch to it failed,
// and the next heartbeat revives it either way.
func TestRegistryLiveness(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRegistry(6 * time.Second)
	r.now = func() time.Time { return now }

	hb := Heartbeat{Name: "w1", Addr: "http://w1", Build: telemetry.BuildStamp()}
	if err := r.Beat(hb); err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); len(got) != 1 || got[0].Name != "w1" {
		t.Fatalf("Alive = %v, want [w1]", got)
	}

	now = now.Add(7 * time.Second)
	if got := r.Alive(); len(got) != 0 {
		t.Fatalf("after timeout Alive = %v, want empty", got)
	}
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].Alive {
		t.Fatalf("Snapshot = %+v, want one dead worker", snap)
	}

	if err := r.Beat(hb); err != nil {
		t.Fatal(err)
	}
	r.MarkFailed("w1")
	if got := r.Alive(); len(got) != 0 {
		t.Fatalf("after MarkFailed Alive = %v, want empty", got)
	}
	if err := r.Beat(hb); err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); len(got) != 1 {
		t.Fatalf("heartbeat did not revive the failed worker: %v", got)
	}

	if err := r.Beat(Heartbeat{Name: "w2", Addr: "http://w2", Build: "other-build"}); err == nil {
		t.Fatal("mismatched build stamp accepted")
	}
	if err := r.Beat(Heartbeat{Name: "", Addr: "http://w3"}); err == nil {
		t.Fatal("anonymous heartbeat accepted")
	}
}

// TestSchedStealAndFail pins the work-stealing order (own queue, then
// orphans, then the longest fellow queue's tail) and that a failure
// orphans the dead worker's whole queue.
func TestSchedStealAndFail(t *testing.T) {
	unit := func(i int) []server.RemotePoint {
		return []server.RemotePoint{{Index: i, Key: strings.Repeat("0", 64)}}
	}
	workers := []WorkerInfo{{Name: "a"}, {Name: "b"}}
	s := newSched([][]server.RemotePoint{unit(0), unit(1), unit(2), unit(3)}, workers)

	// Round-robin: a gets {0,2}, b gets {1,3}.
	u, stolen, ok := s.take("a")
	if !ok || stolen || u[0].Index != 0 {
		t.Fatalf("a's first take = %v stolen=%v", u, stolen)
	}
	// b is idle with an empty own queue after draining it: it steals a's tail.
	if u, _, _ = s.take("b"); u[0].Index != 1 {
		t.Fatalf("b's first take = %v, want own unit 1", u)
	}
	if u, _, _ = s.take("b"); u[0].Index != 3 {
		t.Fatalf("b's second take = %v, want own unit 3", u)
	}
	u, stolen, ok = s.take("b")
	if !ok || !stolen || u[0].Index != 2 {
		t.Fatalf("b's third take = %v stolen=%v, want to steal unit 2", u, stolen)
	}

	// a dies holding unit 0: it and a's (now empty) queue go to orphans,
	// and b picks it up as a plain orphan, not a steal.
	if n := s.fail("a", unit(0)); n != 1 {
		t.Fatalf("fail requeued %d units, want 1", n)
	}
	u, stolen, ok = s.take("b")
	if !ok || stolen || u[0].Index != 0 {
		t.Fatalf("orphan take = %v stolen=%v", u, stolen)
	}
	if _, _, ok = s.take("b"); ok {
		t.Fatal("take succeeded with nothing left")
	}

	for i := 0; i < 4; i++ {
		s.unitDone()
	}
	select {
	case <-s.done:
	default:
		t.Fatal("done not closed after every unit completed")
	}
}

// TestTierRoundTrip pins the shared-tier wire protocol: 404 on miss, PUT
// then GET round-trips the bytes, malformed keys are rejected, and the
// worker-side RemoteTier degrades a dead coordinator to a miss.
func TestTierRoundTrip(t *testing.T) {
	cache := newCache(t)
	mux := http.NewServeMux()
	MountTier(mux, cache)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	key := strings.Repeat("ab", 32)
	tier := &RemoteTier{Base: ts.URL}
	ctx := context.Background()
	if _, ok := tier.Get(ctx, key); ok {
		t.Fatal("hit on an empty tier")
	}
	if err := tier.Put(ctx, key, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	val, ok := tier.Get(ctx, key)
	if !ok || string(val) != `{"v":1}` {
		t.Fatalf("Get = %q, %v", val, ok)
	}
	if v, ok := cache.Get(key); !ok || string(v) != `{"v":1}` {
		t.Fatal("PUT did not land in the backing cache")
	}

	resp, err := http.Get(ts.URL + "/fleet/v1/cache/../../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("malformed key accepted")
	}

	dead := &RemoteTier{Base: "http://127.0.0.1:1"}
	if _, ok := dead.Get(ctx, key); ok {
		t.Fatal("dead tier reported a hit")
	}
}

// TestFleetShardedSweepByteParity is the core contract: a sweep sharded
// over two workers merges to exactly the bytes a standalone daemon
// produces, with every point dispatched (none computed locally).
func TestFleetShardedSweepByteParity(t *testing.T) {
	telemetry.Enable()
	req := sweepReq([]float64{0.25, 0.5}, []int{2, 4}) // 6 points
	want := standaloneResult(t, req)

	co := startCoordinator(t, "", CoordinatorConfig{UnitSize: 1})
	startWorker(t, "w1", co.srv.URL())
	startWorker(t, "w2", co.srv.URL())

	c := &server.Client{Base: co.srv.URL(), Poll: 20 * time.Millisecond}
	got, st, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("sharded job: %s (%s)", st.State, st.Error)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sharded result differs from standalone:\n got %s\nwant %s", got, want)
	}
	if n := co.coord.dispatched.Load(); n != 6 {
		t.Errorf("dispatched %d units, want 6 (every point remote)", n)
	}
	if fs := co.coord.Status(); fs.Role != "coordinator" || len(fs.Workers) != 2 {
		t.Errorf("fleet status = role %q, %d workers; want coordinator with 2", fs.Role, len(fs.Workers))
	}
}

// TestFleetWorkerDeathMidSweep kills a worker after its first delivered
// unit: the sweep must still complete with standalone-identical bytes,
// and a seed-changed resubmission must replay every point from the
// shared cache with zero fresh solver work.
func TestFleetWorkerDeathMidSweep(t *testing.T) {
	telemetry.Enable()
	req := sweepReq([]float64{0.25, 0.5, 0.75}, []int{2, 4}) // 9 points
	want := standaloneResult(t, req)

	var workers sync.Map // name -> *worker
	var killOnce sync.Once
	var killed atomic.Value
	cfg := CoordinatorConfig{
		UnitSize: 1,
		testUnitDone: func(name string, _ []server.RemotePoint) {
			killOnce.Do(func() {
				if w, ok := workers.Load(name); ok {
					w.(*worker).srv.Close() // the daemon dies mid-sweep
					killed.Store(name)
				}
			})
		},
	}
	co := startCoordinator(t, "", cfg)
	for _, name := range []string{"w1", "w2"} {
		workers.Store(name, startWorker(t, name, co.srv.URL()))
	}

	c := &server.Client{Base: co.srv.URL(), Poll: 20 * time.Millisecond}
	got, st, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("run with worker death: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("result after worker death differs from standalone:\n got %s\nwant %s", got, want)
	}
	if killed.Load() == nil {
		t.Fatal("no worker was killed; the seam never fired")
	}

	// Resubmission with a different seed: the job-level key changes but
	// every point key is unchanged, so the coordinator replays all 9 from
	// its cache — zero dispatches, zero fresh solver work anywhere.
	solves0, iters0, disp0 := cSolves.Value(), cPCGIters.Value(), co.coord.dispatched.Load()
	req2 := req
	req2.Seed = 5
	got2, _, err := c.Run(context.Background(), req2)
	if err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if !bytes.Equal(got2, want) {
		t.Error("resubmitted result not byte-identical")
	}
	if ds, di := cSolves.Value()-solves0, cPCGIters.Value()-iters0; ds != 0 || di != 0 {
		t.Errorf("resubmission did fresh solver work: %d solves, %d iterations", ds, di)
	}
	if dd := co.coord.dispatched.Load() - disp0; dd != 0 {
		t.Errorf("resubmission dispatched %d units, want 0 (cache replay)", dd)
	}
}

// TestFleetCoordinatorCrashResume crashes the coordinator mid-dispatch
// and restarts it on the same journal with an empty cache: the job
// resumes, only the not-yet-delivered points are solved (total solver
// work across both lives equals one uninterrupted run), and the merged
// bytes match standalone.
func TestFleetCoordinatorCrashResume(t *testing.T) {
	telemetry.Enable()
	stateDir := t.TempDir()
	req := sweepReq([]float64{0.25, 0.5, 0.75}, []int{2, 4}) // 9 points

	solvesStandalone0 := cSolves.Value()
	want := standaloneResult(t, req)
	solvesPerRun := cSolves.Value() - solvesStandalone0

	// One worker and a delivery gate: after two delivered units the gate
	// blocks the dispatch loop, so the crash point is exact.
	var delivered atomic.Int64
	gateReached := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	cfg := CoordinatorConfig{
		UnitSize: 1,
		testUnitDone: func(string, []server.RemotePoint) {
			if delivered.Add(1) >= 2 {
				gateOnce.Do(func() { close(gateReached) })
				<-release
			}
		},
	}
	co1 := startCoordinator(t, stateDir, cfg)
	w := startWorker(t, "w1", co1.srv.URL())

	solves0 := cSolves.Value()
	c1 := &server.Client{Base: co1.srv.URL(), Poll: 20 * time.Millisecond}
	st, err := c1.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	<-gateReached
	// Crash: Close cancels the dispatch context, then blocks joining the
	// gated loop — release the gate once the teardown is underway.
	closed := make(chan struct{})
	go func() {
		co1.srv.Close()
		close(closed)
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	<-closed
	deliveredAtCrash := delivered.Load()

	// Restart on the same journal, empty cache; the worker re-registers
	// with the new coordinator. Its stale tier client (pointing at the
	// dead first coordinator) must degrade to misses, not errors.
	co2 := startCoordinator(t, stateDir, CoordinatorConfig{UnitSize: 1})
	if err := co2.coord.Registry().Beat(Heartbeat{
		Name: "w1", Addr: w.srv.URL(), Build: telemetry.BuildStamp(),
	}); err != nil {
		t.Fatal(err)
	}
	c2 := &server.Client{Base: co2.srv.URL(), Poll: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	stDone, err := c2.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait for resumed job: %v", err)
	}
	if stDone.State != server.StateDone {
		t.Fatalf("resumed job: %s (%s)", stDone.State, stDone.Error)
	}
	if !stDone.Resumed {
		t.Error("resumed job not flagged as resumed")
	}
	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed sharded result differs from standalone:\n got %s\nwant %s", got, want)
	}
	// No point is ever solved twice: the two coordinator lives together
	// did exactly one run's worth of solver work, with the checkpointed
	// points replayed from the journal.
	if total := cSolves.Value() - solves0; total != solvesPerRun {
		t.Errorf("crash+resume did %d PDN solves, want %d (one run's worth; %d points were delivered pre-crash)",
			total, solvesPerRun, deliveredAtCrash)
	}
	if co2.coord.dispatched.Load() != int64(9-deliveredAtCrash) {
		t.Errorf("resume dispatched %d units, want %d", co2.coord.dispatched.Load(), 9-deliveredAtCrash)
	}
}

// TestFleetForwardJob pins whole-job forwarding for non-shardable kinds:
// an experiment job submitted to the coordinator runs on a worker and
// returns the worker-computed bytes.
func TestFleetForwardJob(t *testing.T) {
	telemetry.Enable()
	req := server.JobRequest{Kind: server.KindExperiment, Experiments: []string{"fig5a"}, CSV: true, Coarse: true}
	want := standaloneResult(t, req)

	co := startCoordinator(t, "", CoordinatorConfig{})
	startWorker(t, "w1", co.srv.URL())

	c := &server.Client{Base: co.srv.URL(), Poll: 20 * time.Millisecond}
	got, st, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("forwarded run: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if !bytes.Equal(got, want) {
		t.Error("forwarded experiment result not byte-identical to standalone")
	}
	if n := co.coord.forwarded.Load(); n != 1 {
		t.Errorf("forwarded %d jobs, want 1", n)
	}
}

// TestWorkerKeyMismatch pins the cache-poisoning guard: a unit whose
// dispatched key does not match what the worker derives is rejected with
// 409, never evaluated.
func TestWorkerKeyMismatch(t *testing.T) {
	mgr, err := server.NewManager(server.Config{Cache: newCache(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mux := server.NewHandler(mgr)
	agent := NewAgent(mgr, AgentConfig{Name: "w1"})
	agent.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body, _ := json.Marshal(UnitRequest{
		JobID:   "j1",
		Request: sweepReq([]float64{0.5}, []int{2}),
		Points:  []server.RemotePoint{{Index: 0, Key: strings.Repeat("0", 64)}},
	})
	resp, err := http.Post(ts.URL+"/fleet/v1/units:run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409 for a key mismatch", resp.StatusCode)
	}
}
