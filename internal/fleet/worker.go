package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"voltstack/internal/explore"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
)

// AgentConfig parameterizes a worker Agent.
type AgentConfig struct {
	// Name identifies the worker in the coordinator's registry.
	Name string
	// Join is the coordinator's base URL, e.g. "http://localhost:8324".
	Join string
	// Advertise is the base URL the coordinator should dial for this
	// worker — its own listener, reachable from the coordinator.
	Advertise string
	// Interval is the heartbeat period; <= 0 selects 2s. The registry's
	// timeout should be a small multiple of it.
	Interval time.Duration
	// HTTP is the client for heartbeats and tier traffic; nil uses
	// http.DefaultClient.
	HTTP *http.Client
}

// Agent makes a vsserved daemon a fleet worker: it serves the unit
// endpoint on the daemon's listener (evaluating through the daemon's
// own engine and caches) and heartbeats the coordinator. The daemon's
// regular /v1/jobs API stays fully usable — a worker is just a
// standalone daemon that also takes fleet units.
type Agent struct {
	cfg  AgentConfig
	mgr  *server.Manager
	tier *RemoteTier

	inflight atomic.Int64 // units being evaluated right now
}

// NewAgent builds an agent for mgr. The coordinator at cfg.Join also
// serves the shared cache tier the agent reads through and writes back
// to.
func NewAgent(mgr *server.Manager, cfg AgentConfig) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	a := &Agent{cfg: cfg, mgr: mgr}
	if cfg.Join != "" {
		a.tier = &RemoteTier{Base: cfg.Join, HTTP: cfg.HTTP}
	}
	return a
}

func (a *Agent) httpc() *http.Client {
	if a.cfg.HTTP != nil {
		return a.cfg.HTTP
	}
	return http.DefaultClient
}

// Mount registers the worker's unit endpoint on mux (typically the
// server.NewHandler mux).
func (a *Agent) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/v1/units:run", a.handleUnit)
}

// handleUnit evaluates one work unit. Per point: local cache, then the
// coordinator's shared tier, then a fresh solve (written back through
// the tier). Every key is re-derived locally and must match the
// dispatched one — a mismatch means the worker's build or schema
// disagrees with the coordinator's, and computing anything under that
// key would poison the fleet's caches.
func (a *Agent) handleUnit(w http.ResponseWriter, r *http.Request) {
	a.inflight.Add(1)
	defer a.inflight.Add(-1)

	var ur UnitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, server.MaxRequestBody)).Decode(&ur); err != nil {
		http.Error(w, "malformed unit request", http.StatusBadRequest)
		return
	}
	norm := ur.Request
	norm.Normalize()
	if err := norm.Validate(); err != nil {
		http.Error(w, fmt.Sprintf("unit request: %v", err), http.StatusBadRequest)
		return
	}
	if norm.Kind != server.KindSweep {
		http.Error(w, fmt.Sprintf("units must be sweep points, got kind %q", norm.Kind), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tc, err := telemetry.ParseTraceparent(tp); err == nil {
			ctx = telemetry.WithTraceContext(ctx, tc)
			if sp := telemetry.StartSpanTrace("fleet.worker.unit", tc); sp != nil {
				defer sp.End()
			}
		}
	}

	sp := server.SweepSpace(ur.Request)
	designs := sp.Designs()
	res := UnitResult{Worker: a.cfg.Name, Points: make([]PointResult, 0, len(ur.Points))}
	for _, p := range ur.Points {
		if p.Index < 0 || p.Index >= len(designs) {
			http.Error(w, fmt.Sprintf("point index %d out of range [0, %d)", p.Index, len(designs)), http.StatusBadRequest)
			return
		}
		d := designs[p.Index]
		key, err := server.SweepPointKey(sp, d)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if key != p.Key {
			http.Error(w, fmt.Sprintf("key mismatch at point %d: dispatched %.8s…, this build derives %.8s… (build/schema skew?)",
				p.Index, p.Key, key), http.StatusConflict)
			return
		}
		val, err := a.evaluatePoint(ctx, sp, d, key)
		if err != nil {
			http.Error(w, fmt.Sprintf("point %d: %v", p.Index, err), http.StatusInternalServerError)
			return
		}
		res.Points = append(res.Points, PointResult{Index: p.Index, Key: key, Metrics: val})
		mUnitPoints.Add(1)
	}
	mUnitsServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(res)
}

// evaluatePoint resolves one point: local cache → shared tier → fresh
// solve with tier write-through.
func (a *Agent) evaluatePoint(ctx context.Context, sp explore.Space, d explore.Design, key string) ([]byte, error) {
	if val, ok := a.mgr.Cache().Get(key); ok {
		return val, nil
	}
	if a.tier != nil {
		if val, ok := a.tier.Get(ctx, key); ok {
			a.mgr.Cache().Put(key, val)
			return val, nil
		}
	}
	val, err := a.mgr.EvaluateDesign(ctx, sp, d)
	if err != nil {
		return nil, err
	}
	if a.tier != nil {
		if werr := a.tier.Put(ctx, key, val); werr != nil {
			telemetry.Event(slog.LevelWarn, "fleet: tier write-through failed",
				slog.String("key", key[:8]), slog.String("error", werr.Error()))
		}
	}
	return val, nil
}

// Run heartbeats the coordinator until ctx is cancelled. Failures are
// retried on the next tick — the coordinator being down (or restarting)
// just means this worker re-registers when it comes back.
func (a *Agent) Run(ctx context.Context) {
	if err := a.BeatOnce(ctx); err != nil {
		telemetry.Event(slog.LevelWarn, "fleet: heartbeat failed",
			slog.String("worker", a.cfg.Name), slog.String("error", err.Error()))
	}
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := a.BeatOnce(ctx); err != nil {
				telemetry.Event(slog.LevelWarn, "fleet: heartbeat failed",
					slog.String("worker", a.cfg.Name), slog.String("error", err.Error()))
			}
		}
	}
}

// BeatOnce sends one heartbeat with the worker's current load.
func (a *Agent) BeatOnce(ctx context.Context) error {
	queued, _ := a.mgr.QueueDepth()
	hb := Heartbeat{
		Name:    a.cfg.Name,
		Addr:    a.cfg.Advertise,
		Build:   telemetry.BuildStamp(),
		Running: a.mgr.RunningJobs(),
		Queued:  queued,
		Units:   int(a.inflight.Load()),
	}
	body, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.Join+"/fleet/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: heartbeat: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
