package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"voltstack/internal/rescache"
	"voltstack/internal/server"
	"voltstack/internal/telemetry"
	"voltstack/internal/telemetry/history"
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Registry tracks worker liveness; nil builds one with the default
	// heartbeat timeout.
	Registry *Registry
	// UnitSize is the number of sweep points per dispatched work unit;
	// <= 0 selects 1 (finest stealing granularity).
	UnitSize int
	// WorkerWait bounds how long dispatch waits for a live worker before
	// giving up with server.ErrNoWorkers (and the job engine computes
	// locally). It covers the coordinator-restart window where workers
	// have not re-registered yet; <= 0 selects 10s.
	WorkerWait time.Duration
	// UnitTimeout bounds one unit's round trip to a worker; <= 0 selects
	// 10 minutes. A timed-out unit counts as a worker failure and is
	// re-dispatched.
	UnitTimeout time.Duration
	// HTTP is the dispatch client; nil uses http.DefaultClient.
	HTTP *http.Client
	// History, when set, receives one "fleet" record per completed
	// dispatch round (points, units, steal/requeue tallies, duration).
	History *history.Store

	// Test seam: invoked after each successfully delivered unit.
	testUnitDone func(worker string, unit []server.RemotePoint)
}

// Coordinator shards jobs across the registered workers. It implements
// server.Dispatcher; plug it into the job engine via server.Config.
type Coordinator struct {
	cfg   CoordinatorConfig
	reg   *Registry
	cache *rescache.Cache

	dispatched atomic.Int64
	stolen     atomic.Int64
	requeued   atomic.Int64
	failures   atomic.Int64
	forwarded  atomic.Int64
}

// NewCoordinator builds a coordinator serving cache as the fleet's
// shared tier. Pass the same cache to the job engine's server.Config so
// the coordinator-side per-point lookups and the workers' write-throughs
// meet in one store.
func NewCoordinator(cache *rescache.Cache, cfg CoordinatorConfig) *Coordinator {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(0)
	}
	if cfg.UnitSize <= 0 {
		cfg.UnitSize = 1
	}
	if cfg.WorkerWait <= 0 {
		cfg.WorkerWait = 10 * time.Second
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = 10 * time.Minute
	}
	return &Coordinator{cfg: cfg, reg: cfg.Registry, cache: cache}
}

// Registry returns the coordinator's worker registry.
func (c *Coordinator) Registry() *Registry { return c.reg }

func (c *Coordinator) httpc() *http.Client {
	if c.cfg.HTTP != nil {
		return c.cfg.HTTP
	}
	return http.DefaultClient
}

// Mount registers the coordinator's fleet endpoints (heartbeat, status,
// shared cache tier) on mux — typically the server.NewHandler mux, so
// one listener serves jobs and fleet traffic.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	MountTier(mux, c.cache)
	mux.HandleFunc("POST /fleet/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&hb); err != nil {
			http.Error(w, "malformed heartbeat", http.StatusBadRequest)
			return
		}
		if err := c.reg.Beat(hb); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrBuildMismatch) {
				code = http.StatusConflict
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /fleet/v1/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Status())
	})
}

// Status assembles the fleet status document.
func (c *Coordinator) Status() Status {
	return Status{
		Role:            "coordinator",
		Build:           telemetry.BuildStamp(),
		Workers:         c.reg.Snapshot(),
		UnitsDispatched: c.dispatched.Load(),
		UnitsStolen:     c.stolen.Load(),
		UnitsRequeued:   c.requeued.Load(),
		UnitFailures:    c.failures.Load(),
		JobsForwarded:   c.forwarded.Load(),
		TierHits:        mTierHits.Value(),
		TierMisses:      mTierMisses.Value(),
		TierWrites:      mTierWrites.Value(),
	}
}

// sched is one dispatch round's work-stealing state: a queue per worker
// plus an orphan queue for units whose worker died. All by value under
// one mutex — the unit counts are tiny (a sweep has at most a few
// thousand points).
type sched struct {
	mu      sync.Mutex
	own     map[string][][]server.RemotePoint
	orphans [][]server.RemotePoint
	active  map[string]bool // workers with a dispatch loop running
	pending int             // units not yet delivered
	stolen  int
	requeue int
	done    chan struct{} // closed when pending hits 0
	wake    chan struct{} // poked on requeue/completion/loop exit
}

func newSched(units [][]server.RemotePoint, workers []WorkerInfo) *sched {
	s := &sched{
		own:     map[string][][]server.RemotePoint{},
		active:  map[string]bool{},
		pending: len(units),
		done:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
	}
	if len(workers) == 0 {
		s.orphans = units
		return s
	}
	for i, u := range units {
		w := workers[i%len(workers)].Name
		s.own[w] = append(s.own[w], u)
	}
	return s
}

func (s *sched) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// take hands the named worker its next unit: its own queue first, then
// an orphan, then — work-stealing — the tail of the longest fellow
// queue.
func (s *sched) take(name string) (u []server.RemotePoint, stolen, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.own[name]; len(q) > 0 {
		u, s.own[name] = q[0], q[1:]
		return u, false, true
	}
	if len(s.orphans) > 0 {
		u, s.orphans = s.orphans[0], s.orphans[1:]
		return u, false, true
	}
	victim, max := "", 0
	for n, q := range s.own {
		if n != name && len(q) > max {
			victim, max = n, len(q)
		}
	}
	if max > 0 {
		q := s.own[victim]
		u, s.own[victim] = q[len(q)-1], q[:len(q)-1]
		s.stolen++
		return u, true, true
	}
	return nil, false, false
}

// fail re-queues a failed unit and orphans the dead worker's remaining
// queue, returning how many units went back.
func (s *sched) fail(name string, u []server.RemotePoint) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 1 + len(s.own[name])
	s.orphans = append(s.orphans, u)
	s.orphans = append(s.orphans, s.own[name]...)
	delete(s.own, name)
	s.requeue += n
	s.poke()
	return n
}

func (s *sched) unitDone() {
	s.mu.Lock()
	if s.pending--; s.pending == 0 {
		close(s.done)
	}
	s.mu.Unlock()
	s.poke()
}

// claimIfWork marks the named worker's dispatch loop active — but only
// if there is a unit it could possibly run, so idle workers don't spin.
func (s *sched) claimIfWork(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active[name] || s.pending == 0 {
		return false
	}
	work := len(s.own[name]) > 0 || len(s.orphans) > 0
	if !work {
		for n, q := range s.own {
			if n != name && len(q) > 0 {
				work = true
				break
			}
		}
	}
	if !work {
		return false
	}
	s.active[name] = true
	return true
}

func (s *sched) release(name string) {
	s.mu.Lock()
	delete(s.active, name)
	s.mu.Unlock()
	s.poke()
}

func (s *sched) activeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

func (s *sched) tallies() (stolen, requeued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stolen, s.requeue
}

func partition(points []server.RemotePoint, size int) [][]server.RemotePoint {
	var units [][]server.RemotePoint
	for len(points) > 0 {
		n := size
		if n > len(points) {
			n = len(points)
		}
		units = append(units, points[:n])
		points = points[n:]
	}
	return units
}

// EvaluatePoints implements server.Dispatcher: it shards points into
// units, spreads them over the live workers, and keeps loops running —
// spawning them for workers that join mid-job, stealing for stragglers,
// re-dispatching units orphaned by a death — until every unit is
// delivered or nobody is left to work (ErrNoWorkers; the job engine
// computes the leftovers locally).
func (c *Coordinator) EvaluatePoints(ctx context.Context, job server.DispatchJob, req server.JobRequest, points []server.RemotePoint, deliver func(p server.RemotePoint, metrics []byte)) error {
	t0 := time.Now()
	units := partition(points, c.cfg.UnitSize)
	workers := c.reg.Alive()
	s := newSched(units, workers)
	sp := telemetry.StartSpanTrace("fleet.dispatch", job.Trace)
	defer sp.End()

	var wg sync.WaitGroup
	defer wg.Wait()
	var idleSince time.Time
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		launched := 0
		for _, w := range c.reg.Alive() {
			if s.claimIfWork(w.Name) {
				wg.Add(1)
				go func(w WorkerInfo) {
					defer wg.Done()
					defer s.release(w.Name)
					c.workerLoop(ctx, job, req, s, w, deliver)
				}(w)
				launched++
			}
		}
		if launched == 0 && s.activeCount() == 0 {
			if idleSince.IsZero() {
				idleSince = time.Now()
			} else if time.Since(idleSince) > c.cfg.WorkerWait {
				return server.ErrNoWorkers
			}
		} else {
			idleSince = time.Time{}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			stolen, requeued := s.tallies()
			c.appendHistory(job, map[string]float64{
				"points":   float64(len(points)),
				"units":    float64(len(units)),
				"workers":  float64(len(c.reg.Alive())),
				"stolen":   float64(stolen),
				"requeued": float64(requeued),
				"seconds":  time.Since(t0).Seconds(),
			})
			return nil
		case <-s.wake:
		case <-tick.C:
		}
	}
}

// workerLoop pulls units for one worker until nothing is left for it.
func (c *Coordinator) workerLoop(ctx context.Context, job server.DispatchJob, req server.JobRequest, s *sched, w WorkerInfo, deliver func(p server.RemotePoint, metrics []byte)) {
	for {
		u, stolen, ok := s.take(w.Name)
		if !ok {
			return
		}
		if stolen {
			mStolen.Add(1)
			c.stolen.Add(1)
		}
		res, err := c.runUnit(ctx, job, req, w, u)
		delivered := 0
		if err == nil {
			want := make(map[int]string, len(u))
			for _, p := range u {
				want[p.Index] = p.Key
			}
			for _, p := range res.Points {
				if key, ok := want[p.Index]; ok && key == p.Key && len(p.Metrics) > 0 {
					deliver(server.RemotePoint{Index: p.Index, Key: p.Key}, p.Metrics)
					delivered++
					delete(want, p.Index) // a duplicate answer counts once
				}
			}
			if delivered < len(u) {
				err = fmt.Errorf("fleet: worker %s answered %d of %d points", w.Name, delivered, len(u))
			}
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			mUnitFails.Add(1)
			c.failures.Add(1)
			c.reg.RecordUnit(w.Name, stolen, true)
			c.reg.MarkFailed(w.Name)
			n := s.fail(w.Name, u)
			mRequeued.Add(int64(n))
			c.requeued.Add(int64(n))
			telemetry.Event(slog.LevelWarn, "fleet: unit dispatch failed, re-queued",
				slog.String("job", job.ID), slog.String("worker", w.Name),
				slog.Int("requeued", n), slog.String("error", err.Error()))
			return
		}
		mDispatched.Add(1)
		c.dispatched.Add(1)
		c.reg.RecordUnit(w.Name, stolen, false)
		s.unitDone()
		if c.cfg.testUnitDone != nil {
			c.cfg.testUnitDone(w.Name, u)
		}
	}
}

// runUnit round-trips one unit to a worker.
func (c *Coordinator) runUnit(ctx context.Context, job server.DispatchJob, req server.JobRequest, w WorkerInfo, u []server.RemotePoint) (*UnitResult, error) {
	body, err := json.Marshal(UnitRequest{JobID: job.ID, Request: req, Points: u})
	if err != nil {
		return nil, err
	}
	uctx, cancel := context.WithTimeout(ctx, c.cfg.UnitTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(uctx, http.MethodPost,
		w.Addr+"/fleet/v1/units:run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if job.Trace.Valid() {
		hreq.Header.Set("traceparent", job.Trace.Child().Traceparent())
	}
	sp := telemetry.StartSpanTrace("fleet.unit", job.Trace)
	defer sp.End()
	resp, err := c.httpc().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: worker %s: %s: %s", w.Name, resp.Status, bytes.TrimSpace(msg))
	}
	var res UnitResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&res); err != nil {
		return nil, fmt.Errorf("fleet: worker %s: malformed unit result: %v", w.Name, err)
	}
	return &res, nil
}

// ForwardJob implements server.Dispatcher for non-shardable jobs: run
// the whole job on the least-loaded live worker, failing over (and
// marking the worker dead) on transport errors. The worker's own job
// cache makes a re-forwarded job free.
func (c *Coordinator) ForwardJob(ctx context.Context, job server.DispatchJob, req server.JobRequest) ([]byte, error) {
	tried := map[string]bool{}
	for {
		w, ok := c.reg.LeastLoaded(tried)
		if !ok {
			return nil, server.ErrNoWorkers
		}
		tried[w.Name] = true
		cl := &server.Client{
			Base: w.Addr, HTTP: c.cfg.HTTP, Trace: job.Trace,
			Backoff: server.Backoff{Initial: 50 * time.Millisecond, Max: time.Second},
		}
		out, st, err := cl.Run(ctx, req)
		switch {
		case err == nil:
			c.forwarded.Add(1)
			return out, nil
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case st.State == server.StateFailed:
			// The job itself failed — a worker hop would fail identically.
			return nil, err
		}
		c.failures.Add(1)
		mUnitFails.Add(1)
		c.reg.MarkFailed(w.Name)
		telemetry.Event(slog.LevelWarn, "fleet: job forward failed, trying next worker",
			slog.String("job", job.ID), slog.String("worker", w.Name),
			slog.String("error", err.Error()))
	}
}

func (c *Coordinator) appendHistory(job server.DispatchJob, vals map[string]float64) {
	if c.cfg.History == nil {
		return
	}
	err := c.cfg.History.Append(history.Record{
		T:      time.Now().UnixMilli(),
		Kind:   "fleet",
		ID:     job.ID,
		Values: vals,
	})
	if err != nil {
		telemetry.Event(slog.LevelWarn, "fleet: history append failed",
			slog.String("job", job.ID), slog.String("error", err.Error()))
	}
}
