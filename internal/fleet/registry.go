package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"voltstack/internal/telemetry"
)

// ErrBuildMismatch rejects a worker whose binary differs from the
// coordinator's: cache keys fold in the build stamp, so a mixed-build
// fleet would never share results and could not honor the byte-identity
// contract. The worker sees a 409 and keeps retrying (so a rolling
// rebuild converges once both sides run the same code).
var ErrBuildMismatch = errors.New("fleet: worker build differs from coordinator")

// Registry tracks worker liveness from heartbeats. Workers are soft
// state: a registry starts empty after a coordinator restart and
// repopulates from the next heartbeat round, which is why dispatch waits
// (bounded) for a live worker instead of failing fast.
type Registry struct {
	timeout time.Duration
	build   string

	mu      sync.Mutex
	workers map[string]*workerState

	now func() time.Time // test seam
}

type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
	// failed marks a worker dead ahead of its heartbeat timeout — set
	// when a dispatch to it errors, cleared by the next heartbeat.
	failed bool
}

// NewRegistry builds a registry that considers a worker dead once it has
// been silent for timeout (<= 0 selects 6s). Workers must match the
// current process's build stamp.
func NewRegistry(timeout time.Duration) *Registry {
	if timeout <= 0 {
		timeout = 6 * time.Second
	}
	return &Registry{
		timeout: timeout,
		build:   telemetry.BuildStamp(),
		workers: map[string]*workerState{},
		now:     time.Now,
	}
}

// Beat registers or refreshes a worker from its heartbeat.
func (r *Registry) Beat(hb Heartbeat) error {
	if hb.Name == "" || hb.Addr == "" {
		return fmt.Errorf("fleet: heartbeat needs name and addr")
	}
	if hb.Build != "" && hb.Build != r.build {
		return fmt.Errorf("%w: worker %s runs %q, coordinator %q",
			ErrBuildMismatch, hb.Name, hb.Build, r.build)
	}
	r.mu.Lock()
	w := r.workers[hb.Name]
	if w == nil {
		w = &workerState{}
		r.workers[hb.Name] = w
	}
	w.info.Name = hb.Name
	w.info.Addr = hb.Addr
	w.info.Build = hb.Build
	w.info.Running = hb.Running
	w.info.Queued = hb.Queued
	w.info.UnitsInflight = hb.Units
	w.lastBeat = r.now()
	w.failed = false
	r.updateAliveLocked()
	r.mu.Unlock()
	mHeartbeats.Add(1)
	return nil
}

func (r *Registry) aliveLocked(w *workerState) bool {
	return !w.failed && r.now().Sub(w.lastBeat) <= r.timeout
}

func (r *Registry) updateAliveLocked() {
	n := 0
	for _, w := range r.workers {
		if r.aliveLocked(w) {
			n++
		}
	}
	mWorkersAlive.Set(float64(n))
}

// MarkFailed declares a worker dead until its next heartbeat — called
// when a dispatch to it errors, so its queued units re-dispatch without
// waiting out the heartbeat timeout.
func (r *Registry) MarkFailed(name string) {
	r.mu.Lock()
	if w := r.workers[name]; w != nil {
		w.failed = true
	}
	r.updateAliveLocked()
	r.mu.Unlock()
}

// RecordUnit tallies a finished dispatch against a worker.
func (r *Registry) RecordUnit(name string, stolen, failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[name]
	if w == nil {
		return
	}
	switch {
	case failed:
		w.info.UnitsFailed++
	default:
		w.info.UnitsDone++
	}
	if stolen && !failed {
		w.info.Steals++
	}
}

// Alive returns the currently live workers.
func (r *Registry) Alive() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []WorkerInfo
	for _, w := range r.workers {
		if r.aliveLocked(w) {
			info := w.info
			info.Alive = true
			info.LastBeat = w.lastBeat.UTC().Format(time.RFC3339Nano)
			out = append(out, info)
		}
	}
	sortWorkers(out)
	return out
}

// Snapshot returns every known worker, dead or alive.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		info := w.info
		info.Alive = r.aliveLocked(w)
		info.LastBeat = w.lastBeat.UTC().Format(time.RFC3339Nano)
		out = append(out, info)
	}
	sortWorkers(out)
	return out
}

// LeastLoaded returns the live worker with the lightest self-reported
// load, skipping the named ones.
func (r *Registry) LeastLoaded(skip map[string]bool) (WorkerInfo, bool) {
	var best WorkerInfo
	found := false
	for _, w := range r.Alive() {
		if skip[w.Name] {
			continue
		}
		load := w.Running + w.Queued + w.UnitsInflight
		if !found || load < best.Running+best.Queued+best.UnitsInflight {
			best = w
			found = true
		}
	}
	return best, found
}

func sortWorkers(ws []WorkerInfo) {
	sort.Slice(ws, func(a, b int) bool { return ws[a].Name < ws[b].Name })
}
