package sched

import (
	"math"
	"testing"
	"testing/quick"

	"voltstack/internal/workload"
)

func testJobs(n int) []Job {
	suite := workload.DefaultSuite(1)
	return JobsFromSuite(suite, n, 7)
}

func TestJobsFromSuiteDeterministic(t *testing.T) {
	suite := workload.DefaultSuite(1)
	a := JobsFromSuite(suite, 32, 5)
	b := JobsFromSuite(suite, 32, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := JobsFromSuite(suite, 32, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestJobsCycleApps(t *testing.T) {
	suite := workload.DefaultSuite(1)
	jobs := JobsFromSuite(suite, 26, 3)
	if jobs[0].App != suite[0].App.Name || jobs[13].App != suite[0].App.Name {
		t.Error("apps should cycle")
	}
	for _, j := range jobs {
		if j.Activity <= 0 || j.Activity > 1 {
			t.Errorf("activity %g out of range", j.Activity)
		}
	}
}

func TestJobCountValidation(t *testing.T) {
	jobs := testJobs(10)
	if _, err := Random(jobs, 4, 4, 1); err == nil {
		t.Error("wrong count not caught")
	}
	if _, err := StackAware(jobs, 0, 4); err == nil {
		t.Error("invalid stack not caught")
	}
}

func TestAssignmentsPreserveJobs(t *testing.T) {
	jobs := testJobs(32)
	for name, build := range map[string]func() (*Assignment, error){
		"random":     func() (*Assignment, error) { return Random(jobs, 4, 8, 3) },
		"stackaware": func() (*Assignment, error) { return StackAware(jobs, 4, 8) },
	} {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var got, want float64
		for _, j := range jobs {
			want += j.Activity
		}
		for l := 0; l < a.Layers; l++ {
			for c := 0; c < a.Cores; c++ {
				got += a.Act[l][c]
				if a.Jobs[l][c] == "" {
					t.Errorf("%s: empty slot %d,%d", name, l, c)
				}
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: total activity %g, want %g (jobs lost)", name, got, want)
		}
	}
}

func TestStackAwareBeatsRandom(t *testing.T) {
	// The paper's claim: stack-aware placement reduces adjacent-layer
	// imbalance. Check across several job batches.
	suite := workload.DefaultSuite(1)
	for seed := int64(0); seed < 5; seed++ {
		jobs := JobsFromSuite(suite, 8*16, seed)
		rnd, err := Random(jobs, 8, 16, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		aware, err := StackAware(jobs, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		if aware.MeanStackImbalance() >= rnd.MeanStackImbalance() {
			t.Errorf("seed %d: stack-aware mean %g should beat random %g",
				seed, aware.MeanStackImbalance(), rnd.MeanStackImbalance())
		}
		if aware.MaxStackImbalance() >= rnd.MaxStackImbalance() {
			t.Errorf("seed %d: stack-aware max %g should beat random %g",
				seed, aware.MaxStackImbalance(), rnd.MaxStackImbalance())
		}
	}
}

func TestUniformJobsZeroImbalance(t *testing.T) {
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{App: "x", Activity: 0.5}
	}
	a, err := StackAware(jobs, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxStackImbalance() != 0 || a.MeanStackImbalance() != 0 {
		t.Error("identical jobs must have zero imbalance")
	}
}

func TestImbalanceMetricsBounded(t *testing.T) {
	f := func(seed int64) bool {
		suite := workload.DefaultSuite(1)
		jobs := JobsFromSuite(suite, 24, seed)
		a, err := Random(jobs, 4, 6, seed)
		if err != nil {
			return false
		}
		mx, mn := a.MaxStackImbalance(), a.MeanStackImbalance()
		return mx >= 0 && mx <= 1 && mn >= 0 && mn <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestActivitiesMatrixShape(t *testing.T) {
	jobs := testJobs(12)
	a, err := StackAware(jobs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	acts := a.Activities()
	if len(acts) != 3 || len(acts[0]) != 4 {
		t.Fatalf("shape %dx%d", len(acts), len(acts[0]))
	}
	// Mutation safety: the returned matrix is a copy.
	acts[0][0] = -5
	if a.Act[0][0] == -5 {
		t.Error("Activities should return a copy")
	}
}

func TestStackAwareColumnsSorted(t *testing.T) {
	jobs := testJobs(32)
	a, err := StackAware(jobs, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Within each column activities are consecutive in the global sort,
	// so each column's range is small relative to the global range.
	var globalMin, globalMax = 2.0, -1.0
	for _, j := range jobs {
		globalMin = math.Min(globalMin, j.Activity)
		globalMax = math.Max(globalMax, j.Activity)
	}
	for c := 0; c < a.Cores; c++ {
		lo, hi := 2.0, -1.0
		for l := 0; l < a.Layers; l++ {
			lo = math.Min(lo, a.Act[l][c])
			hi = math.Max(hi, a.Act[l][c])
		}
		if hi-lo > (globalMax-globalMin)/2 {
			t.Errorf("column %d spans %g of global %g — not stack-aware", c, hi-lo, globalMax-globalMin)
		}
	}
}

func TestLayerBandedLayersHomogeneous(t *testing.T) {
	jobs := testJobs(32)
	a, err := LayerBanded(jobs, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer holds a consecutive band of the sorted jobs, so the
	// per-layer spread is small and layer means are non-decreasing.
	prevMean := -1.0
	for l := 0; l < a.Layers; l++ {
		var mean float64
		for c := 0; c < a.Cores; c++ {
			mean += a.Act[l][c]
		}
		mean /= float64(a.Cores)
		if mean < prevMean {
			t.Errorf("layer means should be non-decreasing: layer %d", l)
		}
		prevMean = mean
	}
}

func TestLayerBandedValidation(t *testing.T) {
	if _, err := LayerBanded(testJobs(5), 4, 4); err == nil {
		t.Error("wrong job count not caught")
	}
}

func TestLayerBandedImbalanceSmallButCoherent(t *testing.T) {
	suite := workload.DefaultSuite(1)
	jobs := JobsFromSuite(suite, 8*16, 3)
	banded, err := LayerBanded(jobs, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random(jobs, 8, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The banded mean adjacent-layer imbalance is below random's...
	if banded.MeanStackImbalance() >= rnd.MeanStackImbalance() {
		t.Errorf("banded %g should have smaller mean imbalance than random %g",
			banded.MeanStackImbalance(), rnd.MeanStackImbalance())
	}
	// ...and every adjacent-layer mismatch points the same way (the layer
	// means are sorted), which is what makes it hazardous in a stack.
	for c := 0; c < banded.Cores; c++ {
		for l := 1; l < banded.Layers; l++ {
			if banded.Act[l][c] < banded.Act[l-1][c]-1e-12 {
				t.Fatalf("banded activities should be vertically non-decreasing at col %d layer %d", c, l)
			}
		}
	}
}
