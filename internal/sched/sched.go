// Package sched implements core-stack-aware workload scheduling for
// voltage-stacked 3D processors. The paper's Sec. 5.2 observes that
// intra-application power variance is much smaller than cross-application
// variance and concludes that "by scheduling different instances of the
// same application, or different threads from the same instance onto the
// cores in the same core-stack, we can reduce the workload-imbalance and
// a V-S PDN's noise." This package quantifies that claim: it assigns a
// mixed batch of jobs to the (layer, core) slots of a stack either
// randomly or stack-aware, and reports the resulting adjacent-layer
// imbalance, which feeds directly into the PDN noise model.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"voltstack/internal/workload"
)

// Job is one schedulable workload instance: an application plus the
// activity level of the sampled execution phase.
type Job struct {
	App      string
	Activity float64
}

// JobsFromSuite draws one job per slot from the synthetic Parsec suite,
// cycling through applications and sampling each job's activity from its
// application's distribution. Deterministic in (suite, n, seed).
func JobsFromSuite(suite workload.Suite, n int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		pop := suite[i%len(suite)]
		jobs[i] = Job{
			App:      pop.App.Name,
			Activity: pop.Acts[rng.Intn(len(pop.Acts))],
		}
	}
	return jobs
}

// Assignment maps jobs onto the (layer, core) slots of a stack.
type Assignment struct {
	Layers, Cores int
	// Act[layer][core] is the assigned job's activity.
	Act [][]float64
	// Jobs[layer][core] is the assigned job's application name.
	Jobs [][]string
}

func newAssignment(layers, cores int) *Assignment {
	a := &Assignment{Layers: layers, Cores: cores}
	a.Act = make([][]float64, layers)
	a.Jobs = make([][]string, layers)
	for l := range a.Act {
		a.Act[l] = make([]float64, cores)
		a.Jobs[l] = make([]string, cores)
	}
	return a
}

func checkJobCount(jobs []Job, layers, cores int) error {
	if layers < 1 || cores < 1 {
		return fmt.Errorf("sched: invalid stack %dx%d", layers, cores)
	}
	if len(jobs) != layers*cores {
		return fmt.Errorf("sched: need %d jobs for a %dx%d stack, got %d",
			layers*cores, layers, cores, len(jobs))
	}
	return nil
}

// Random assigns jobs to slots in a uniformly random permutation — the
// scheduling-oblivious baseline.
func Random(jobs []Job, layers, cores int, seed int64) (*Assignment, error) {
	if err := checkJobCount(jobs, layers, cores); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(jobs))
	a := newAssignment(layers, cores)
	for slot, ji := range perm {
		l, c := slot/cores, slot%cores
		a.Act[l][c] = jobs[ji].Activity
		a.Jobs[l][c] = jobs[ji].App
	}
	return a, nil
}

// StackAware sorts jobs by activity and fills each core stack (a vertical
// column of layers) with consecutive jobs, so the layers sharing a stack
// run at similar power — the paper's proposed policy.
func StackAware(jobs []Job, layers, cores int) (*Assignment, error) {
	if err := checkJobCount(jobs, layers, cores); err != nil {
		return nil, err
	}
	sorted := append([]Job(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Activity < sorted[j].Activity })
	a := newAssignment(layers, cores)
	for c := 0; c < cores; c++ {
		for l := 0; l < layers; l++ {
			j := sorted[c*layers+l]
			a.Act[l][c] = j.Activity
			a.Jobs[l][c] = j.App
		}
	}
	return a, nil
}

// LayerBanded sorts jobs by activity and assigns each consecutive band of
// `cores` jobs to one layer, low bands at the bottom. Adjacent layers then
// hold neighbouring activity bands, so each pair's mismatch is small —
// but every mismatch has the SAME SIGN, forming a coherent vertical
// gradient. In a voltage stack this is the worst arrangement: same-sign
// differential currents push every intermediate rail the same way and the
// offsets accumulate across the stack. The policy is provided as the
// cautionary counterpoint to StackAware (see the scheduling experiment).
func LayerBanded(jobs []Job, layers, cores int) (*Assignment, error) {
	if err := checkJobCount(jobs, layers, cores); err != nil {
		return nil, err
	}
	sorted := append([]Job(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Activity < sorted[j].Activity })
	a := newAssignment(layers, cores)
	for l := 0; l < layers; l++ {
		for c := 0; c < cores; c++ {
			j := sorted[l*cores+c]
			a.Act[l][c] = j.Activity
			a.Jobs[l][c] = j.App
		}
	}
	return a, nil
}

// stackPairImbalance returns the dynamic imbalance between two activities
// in the paper's sense: 1 − min/max.
func stackPairImbalance(a, b float64) float64 {
	hi := math.Max(a, b)
	lo := math.Min(a, b)
	if hi == 0 {
		return 0
	}
	return 1 - lo/hi
}

// MaxStackImbalance returns the worst adjacent-layer imbalance over all
// core stacks — the quantity that stresses the SC converters hardest.
func (a *Assignment) MaxStackImbalance() float64 {
	var worst float64
	for c := 0; c < a.Cores; c++ {
		for l := 1; l < a.Layers; l++ {
			if imb := stackPairImbalance(a.Act[l][c], a.Act[l-1][c]); imb > worst {
				worst = imb
			}
		}
	}
	return worst
}

// MeanStackImbalance returns the average adjacent-layer imbalance.
func (a *Assignment) MeanStackImbalance() float64 {
	var sum float64
	n := 0
	for c := 0; c < a.Cores; c++ {
		for l := 1; l < a.Layers; l++ {
			sum += stackPairImbalance(a.Act[l][c], a.Act[l-1][c])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Activities returns the assignment in the layers x cores matrix form the
// PDN solver consumes.
func (a *Assignment) Activities() [][]float64 {
	out := make([][]float64, a.Layers)
	for l := range out {
		out[l] = append([]float64(nil), a.Act[l]...)
	}
	return out
}
