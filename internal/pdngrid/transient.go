package pdngrid

import (
	"fmt"
	"math"

	"voltstack/internal/circuit"
	"voltstack/internal/units"
)

// TransientConfig describes a transient (RLC) noise analysis on top of a
// PDN scenario — an extension beyond the paper's IR-only noise metric,
// using the same package/pad/TSV/converter network plus on-die decoupling
// capacitance and package inductance (the elements VoltSpot's RLC model
// carries).
type TransientConfig struct {
	// DecapPerArea is the on-die decoupling capacitance per die area per
	// layer (F/m²). Typical thin-oxide decap yields a few nF/mm².
	DecapPerArea float64
	// PkgL is the lumped package inductance per supply polarity (H).
	PkgL float64

	// The load event: every layer idles at RestActivity until t=0, then
	// steps to StepActivity — the worst-case synchronized di/dt event.
	RestActivity float64
	StepActivity float64

	DT    float64 // time step (s)
	Steps int     // steps after t=0
}

// DefaultTransient returns a representative air-cavity FCBGA package and
// on-die decap budget: 20 pH per polarity and 4 nF/mm² of decap.
func DefaultTransient() TransientConfig {
	return TransientConfig{
		DecapPerArea: 4e-9 / (units.Millimeter * units.Millimeter),
		PkgL:         20e-12,
		RestActivity: 0.1,
		StepActivity: 1.0,
		DT:           25 * units.Picosecond,
		Steps:        2000,
	}
}

// Validate checks the transient configuration.
func (tc TransientConfig) Validate() error {
	switch {
	case tc.DecapPerArea < 0 || tc.PkgL < 0:
		return fmt.Errorf("pdngrid: negative transient element values")
	case tc.DT <= 0 || tc.Steps <= 0:
		return fmt.Errorf("pdngrid: need positive DT and Steps")
	case tc.RestActivity < 0 || tc.RestActivity > 1 || tc.StepActivity < 0 || tc.StepActivity > 1:
		return fmt.Errorf("pdngrid: activities out of [0,1]")
	}
	return nil
}

// TransientResult summarizes a transient noise run.
type TransientResult struct {
	// WorstDroopFrac is the largest instantaneous supply droop at the
	// probed cells over the whole event, as a fraction of Vdd.
	WorstDroopFrac float64
	WorstLayer     int
	// FinalDroopFrac is the settled (last-step) droop.
	FinalDroopFrac float64
	// Times and Droop hold the worst-layer droop waveform (fraction of
	// Vdd, positive = below nominal).
	Times []float64
	Droop []float64
}

// SolveTransient runs the synchronized load-step event and reports the
// first-droop noise. The probed cells are the centers of every core on
// every layer (the DC-worst locations for uniform activity).
func (p *PDN) SolveTransient(tc TransientConfig) (*TransientResult, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	cfg := p.Cfg
	cores := cfg.Chip.NumCores()

	// Full-activity load map scaled over time between rest and step.
	pm, err := cfg.Chip.PowerMap(UniformActivities(1, cores, 1)[0])
	if err != nil {
		return nil, err
	}
	cells, err := p.raster.Distribute(p.fp.Blocks, pm)
	if err != nil {
		return nil, err
	}
	for i := range cells {
		cells[i] /= cfg.Params.Vdd
	}
	loads := make([][]float64, cfg.Layers)
	for l := range loads {
		loads[l] = cells
	}

	// Map activity to a load-current scale. Leakage persists at rest:
	// scale = leak + (1-leak)·activity with the chip's leakage fraction.
	leakFrac := cfg.Chip.Core.Leakage / cfg.Chip.Core.PeakPower()
	scaleAt := func(act float64) float64 { return leakFrac + (1-leakFrac)*act }
	rest := scaleAt(tc.RestActivity)
	step := scaleAt(tc.StepActivity)

	nConv := p.ConverterCount()
	freqs := make([]float64, nConv)
	for i := range freqs {
		freqs[i] = cfg.Converter.FSw
	}
	cellArea := p.raster.Die.W * p.raster.Die.H / float64(p.nCells)
	dyn := &dynSpec{
		scale: func(t float64) float64 {
			if t > 0 {
				return step
			}
			return rest
		},
		decapPerCell: tc.DecapPerArea * cellArea,
		pkgL:         tc.PkgL,
	}
	asm := p.assemble(loads, freqs, dyn)

	// Probes: the central cell of every core tile, on both meshes of
	// every layer.
	var probes []int
	var probeLayer []int
	for _, tile := range p.fp.Tiles {
		cx, cy := tile.Center()
		ix, iy := p.raster.CellOf(cx, cy)
		cell := p.raster.Index(ix, iy)
		for l := 0; l < cfg.Layers; l++ {
			probes = append(probes, asm.node(l, 0, cell), asm.node(l, 1, cell))
			probeLayer = append(probeLayer, l)
		}
	}

	tr, err := asm.net.Transient(circuit.TransientOptions{
		DT:     tc.DT,
		Steps:  tc.Steps,
		InitDC: true,
		Solve:  cfg.Solve,
	}, probes)
	if err != nil {
		return nil, fmt.Errorf("pdngrid: transient: %v", err)
	}

	res := &TransientResult{WorstDroopFrac: math.Inf(-1)}
	vdd := cfg.Params.Vdd
	var worstPair int
	for pr := 0; pr < len(probes)/2; pr++ {
		for k := range tr.Times {
			v := tr.V[2*pr][k] - tr.V[2*pr+1][k]
			droop := (vdd - v) / vdd
			if droop > res.WorstDroopFrac {
				res.WorstDroopFrac = droop
				res.WorstLayer = probeLayer[pr]
				worstPair = pr
			}
		}
	}
	res.Times = append(res.Times, tr.Times...)
	for k := range tr.Times {
		v := tr.V[2*worstPair][k] - tr.V[2*worstPair+1][k]
		res.Droop = append(res.Droop, (vdd-v)/vdd)
	}
	res.FinalDroopFrac = res.Droop[len(res.Droop)-1]
	return res, nil
}
