package pdngrid

import (
	"fmt"
	"math"
	"sync"

	"voltstack/internal/circuit"
	"voltstack/internal/floorplan"
	"voltstack/internal/power"
	"voltstack/internal/sc"
)

// Kind selects the power-delivery architecture.
type Kind int

const (
	// Regular is the conventional parallel PDN of Fig. 4a: all layers'
	// Vdd meshes tied together by TSVs, all ground meshes likewise, fed at
	// Vdd from the C4 pads.
	Regular Kind = iota
	// VoltageStacked is the charge-recycled series PDN of Fig. 4b: layer
	// i's ground mesh is the same rail as layer i-1's Vdd mesh, the top
	// mesh is fed at N·Vdd through through-vias, and SC converters
	// regulate every intermediate rail.
	VoltageStacked
)

// String names the PDN kind.
func (k Kind) String() string {
	if k == VoltageStacked {
		return "voltage-stacked"
	}
	return "regular"
}

// Config describes one 3D-IC PDN design scenario.
type Config struct {
	Kind   Kind
	Layers int
	Chip   *power.Chip
	Params Params
	TSV    TSVTopology

	// PadPowerFraction is the fraction of C4 pad sites allocated to power
	// delivery (split evenly between Vdd and ground).
	PadPowerFraction float64

	// ConvertersPerCore applies to VoltageStacked: SC converters per core
	// on every intermediate rail, uniformly distributed within the core.
	ConvertersPerCore int
	Converter         sc.Params
	Control           sc.Control // nil means open loop

	// Solve configures the linear solver, including Solve.Workers, which
	// parallelizes the kernels inside each iterative solve (SpMV, IC(0)
	// triangular sweeps, AMG V-cycles). Results are bit-identical at every
	// worker count.
	Solve circuit.SolveOptions

	// ForceFreshSolve bypasses the prepared-solve engine and rebuilds the
	// network from scratch on every (outer) solve — the historical slow
	// path, kept as a benchmarking baseline and an equivalence oracle.
	ForceFreshSolve bool
	// NoWarmStart disables warm-starting closed-loop outer iterations from
	// the previous iterate. With it set, the prepared path is bit-identical
	// to ForceFreshSolve even in closed loop; without it, iterative solvers
	// converge in fewer iterations to the same tolerance (results then agree
	// to solver tolerance rather than bitwise).
	NoWarmStart bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("pdngrid: need at least 1 layer, got %d", c.Layers)
	}
	if c.Kind == VoltageStacked && c.Layers < 2 {
		return fmt.Errorf("pdngrid: voltage stacking needs at least 2 layers")
	}
	if c.Chip == nil {
		return fmt.Errorf("pdngrid: nil chip")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.PadPowerFraction <= 0 || c.PadPowerFraction > 1 {
		return fmt.Errorf("pdngrid: pad power fraction %g out of (0,1]", c.PadPowerFraction)
	}
	if c.TSV.PerCore < 2 {
		return fmt.Errorf("pdngrid: TSV topology %q has too few TSVs", c.TSV.Name)
	}
	if c.Kind == VoltageStacked {
		if c.ConvertersPerCore < 1 {
			return fmt.Errorf("pdngrid: voltage stacking needs at least 1 converter per core")
		}
		if err := c.Converter.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// lumpSite is a set of identical parallel conductors (pads or TSVs)
// attached to one mesh cell: electrically a single resistor of R/count,
// but counted as count conductors for EM statistics.
type lumpSite struct {
	cell  int
	count int
	vdd   bool
}

// PDN is a placed, solvable power delivery network.
type PDN struct {
	Cfg    Config
	raster floorplan.Raster
	fp     *floorplan.Floorplan
	nCells int

	padSites []lumpSite // C4 power pads on the bottom layer
	tsvSites []lumpSite // per-boundary TSV sites (same placement each boundary)
	convCell []int      // converter host cells (per core × ConvertersPerCore)

	// Prepared-engine cache: every Solve on this PDN shares one sparsity
	// structure, so the compiled engine is parked here between calls. Take
	// and put-back under the mutex keeps concurrent Solve calls safe (a
	// second caller simply builds its own engine; the spare is dropped).
	engMu sync.Mutex
	eng   *engine
}

// takeEngine removes the cached engine, if any, for exclusive use.
func (p *PDN) takeEngine() *engine {
	p.engMu.Lock()
	defer p.engMu.Unlock()
	e := p.eng
	p.eng = nil
	return e
}

// putEngine parks an engine for the next Solve. If the slot is already
// occupied (a concurrent call returned first) the engine is dropped.
func (p *PDN) putEngine(e *engine) {
	p.engMu.Lock()
	defer p.engMu.Unlock()
	if p.eng == nil {
		p.eng = e
	}
}

// New validates the configuration and computes all placements.
func New(cfg Config) (*PDN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	die := cfg.Chip.Die()
	raster := floorplan.NewRaster(die, cfg.Params.GridNx, cfg.Params.GridNy)
	fp, err := cfg.Chip.Floorplan()
	if err != nil {
		return nil, err
	}
	p := &PDN{
		Cfg:    cfg,
		raster: raster,
		fp:     fp,
		nCells: cfg.Params.GridNx * cfg.Params.GridNy,
	}
	p.placePads()
	p.placeTSVs()
	p.placeConverters()
	return p, nil
}

// placePads lays C4 pads on the pad-pitch lattice, selects the power
// fraction with an even stride, and alternates Vdd/ground in a
// checkerboard.
func (p *PDN) placePads() {
	die := p.raster.Die
	pitch := p.Cfg.Params.PadPitch
	cols := int(die.W / pitch)
	rows := int(die.H / pitch)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	f := p.Cfg.PadPowerFraction
	agg := map[[2]int]int{} // (cell, vddFlag) -> count
	selected := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := r*cols + c
			// Even-stride selection of the power fraction.
			if int(float64(s+1)*f) == int(float64(s)*f) {
				continue
			}
			x := die.X + (float64(c)+0.5)*die.W/float64(cols)
			y := die.Y + (float64(r)+0.5)*die.H/float64(rows)
			ix, iy := p.raster.CellOf(x, y)
			// Alternate Vdd/ground over the selected sequence so the split
			// stays exactly half-half for any fraction and lattice shape.
			vdd := selected % 2
			selected++
			agg[[2]int{p.raster.Index(ix, iy), vdd}]++
		}
	}
	for key, count := range agg {
		p.padSites = append(p.padSites, lumpSite{cell: key[0], count: count, vdd: key[1] == 1})
	}
	sortSites(p.padSites)
}

// placeTSVs distributes each core's TSV allocation uniformly within the
// core tile, half Vdd and half ground, on interleaved sub-lattices.
func (p *PDN) placeTSVs() {
	per := p.Cfg.TSV.VddPerCore()
	agg := map[[2]int]int{}
	for _, tile := range p.fp.Tiles {
		k := int(math.Ceil(math.Sqrt(float64(per))))
		placed := 0
		for j := 0; j < k && placed < per; j++ {
			for i := 0; i < k && placed < per; i++ {
				x := tile.X + (float64(i)+0.5)*tile.W/float64(k)
				y := tile.Y + (float64(j)+0.5)*tile.H/float64(k)
				ix, iy := p.raster.CellOf(x, y)
				cell := p.raster.Index(ix, iy)
				// Vdd and ground TSVs are adjacent pairs at every site.
				agg[[2]int{cell, 1}]++
				agg[[2]int{cell, 0}]++
				placed++
			}
		}
	}
	for key, count := range agg {
		p.tsvSites = append(p.tsvSites, lumpSite{cell: key[0], count: count, vdd: key[1] == 1})
	}
	sortSites(p.tsvSites)
}

// placeConverters distributes ConvertersPerCore host cells per core.
func (p *PDN) placeConverters() {
	n := p.Cfg.ConvertersPerCore
	if p.Cfg.Kind != VoltageStacked || n == 0 {
		return
	}
	for _, tile := range p.fp.Tiles {
		k := int(math.Ceil(math.Sqrt(float64(n))))
		placed := 0
		for j := 0; j < k && placed < n; j++ {
			for i := 0; i < k && placed < n; i++ {
				x := tile.X + (float64(i)+0.5)*tile.W/float64(k)
				y := tile.Y + (float64(j)+0.5)*tile.H/float64(k)
				ix, iy := p.raster.CellOf(x, y)
				p.convCell = append(p.convCell, p.raster.Index(ix, iy))
				placed++
			}
		}
	}
}

func sortSites(sites []lumpSite) {
	// Deterministic order: by cell, Vdd first.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0; j-- {
			a, b := sites[j-1], sites[j]
			if a.cell < b.cell || (a.cell == b.cell && a.vdd && !b.vdd) {
				break
			}
			sites[j-1], sites[j] = b, a
		}
	}
}

// NumPowerPads returns the total number of power C4 pads (Vdd + ground).
func (p *PDN) NumPowerPads() int {
	n := 0
	for _, s := range p.padSites {
		n += s.count
	}
	return n
}

// NumVddPads returns the number of Vdd C4 pads.
func (p *PDN) NumVddPads() int {
	n := 0
	for _, s := range p.padSites {
		if s.vdd {
			n += s.count
		}
	}
	return n
}

// NumTSVsPerBoundary returns the number of power TSVs crossing each layer
// boundary (Vdd + ground flavors).
func (p *PDN) NumTSVsPerBoundary() int {
	n := 0
	for _, s := range p.tsvSites {
		n += s.count
	}
	return n
}

// ConverterCount returns the number of SC converters in the whole stack.
func (p *PDN) ConverterCount() int {
	if p.Cfg.Kind != VoltageStacked {
		return 0
	}
	return len(p.convCell) * (p.Cfg.Layers - 1)
}

// AreaOverheadFrac returns the per-layer silicon area overhead of the PDN
// (TSV keep-out zones plus converter area as a fraction of layer area).
func (p *PDN) AreaOverheadFrac() float64 {
	core := p.Cfg.Chip.Core.Area
	over := p.Cfg.TSV.AreaOverheadFrac(core, p.Cfg.Params.TSVKoZSide)
	if p.Cfg.Kind == VoltageStacked {
		over += float64(p.Cfg.ConvertersPerCore) * p.Cfg.Converter.Area() / core
	}
	return over
}
