package pdngrid

import (
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/power"
	"voltstack/internal/sc"
	"voltstack/internal/units"
)

// testParams returns a coarse, fast mesh for unit tests.
func testParams() Params {
	p := DefaultParams()
	p.GridNx, p.GridNy = 16, 16
	return p
}

func testConverter() sc.Params {
	c := sc.Default28nm()
	c.Cap = sc.Trench
	return c
}

func regularCfg(layers int, tsv TSVTopology) Config {
	return Config{
		Kind:             Regular,
		Layers:           layers,
		Chip:             power.Example16Core(),
		Params:           testParams(),
		TSV:              tsv,
		PadPowerFraction: 0.5,
	}
}

func vsCfg(layers, nConv int) Config {
	return Config{
		Kind:              VoltageStacked,
		Layers:            layers,
		Chip:              power.Example16Core(),
		Params:            testParams(),
		TSV:               FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: nConv,
		Converter:         testConverter(),
	}
}

func mustSolve(t *testing.T, cfg Config, acts [][]float64) *Result {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Solve(acts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	base := regularCfg(4, FewTSV())
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero layers", func(c *Config) { c.Layers = 0 }},
		{"vs single layer", func(c *Config) { c.Kind = VoltageStacked; c.Layers = 1 }},
		{"nil chip", func(c *Config) { c.Chip = nil }},
		{"bad pad fraction", func(c *Config) { c.PadPowerFraction = 0 }},
		{"pad fraction > 1", func(c *Config) { c.PadPowerFraction = 1.5 }},
		{"bad tsv", func(c *Config) { c.TSV = TSVTopology{Name: "x", PerCore: 1} }},
		{"vs no converters", func(c *Config) { c.Kind = VoltageStacked; c.ConvertersPerCore = 0 }},
		{"bad mesh", func(c *Config) { c.Params.GridNx = 1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("%s: expected error", c.name)
			}
		})
	}
}

func TestPadPlacementCounts(t *testing.T) {
	// Die 6.64x6.64 mm at 200 um pitch: 33x33 = 1089 sites.
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		cfg := regularCfg(2, FewTSV())
		cfg.PadPowerFraction = frac
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := int(1089 * frac)
		got := p.NumPowerPads()
		if got < want-2 || got > want+2 {
			t.Errorf("frac %g: %d power pads, want ~%d", frac, got, want)
		}
		vdd := p.NumVddPads()
		if vdd < got/2-1 || vdd > got/2+1 {
			t.Errorf("frac %g: %d vdd of %d power pads, want half", frac, vdd, got)
		}
	}
}

func TestPaperVddPadsPerCore(t *testing.T) {
	// The paper's "32 Vdd pads per core" corresponds to a full power pad
	// allocation: 1089 sites / 2 / 16 cores ≈ 34.
	cfg := regularCfg(2, FewTSV())
	cfg.PadPowerFraction = 1.0
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perCore := float64(p.NumVddPads()) / 16
	if perCore < 30 || perCore > 36 {
		t.Errorf("Vdd pads per core = %g, want ~32-34", perCore)
	}
}

func TestTSVCounts(t *testing.T) {
	cfg := regularCfg(2, SparseTSV())
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse: 1675 per core -> 837 Vdd + 837 ground per core, 16 cores.
	want := 2 * 837 * 16
	if got := p.NumTSVsPerBoundary(); got != want {
		t.Errorf("TSVs per boundary = %d, want %d", got, want)
	}
}

func TestTable2AreaOverheads(t *testing.T) {
	// Table 2: Dense 24.2%, Sparse 6.1%, Few 0.4% of core area.
	core := power.CortexA9Like().Area
	koz := DefaultParams().TSVKoZSide
	cases := []struct {
		topo TSVTopology
		want float64
	}{
		{DenseTSV(), 0.242},
		{SparseTSV(), 0.061},
		{FewTSV(), 0.004},
	}
	for _, c := range cases {
		got := c.topo.AreaOverheadFrac(core, koz)
		if !units.ApproxEqual(got, c.want, 0.01, 0.05) {
			t.Errorf("%s overhead = %.4f, want %.3f", c.topo.Name, got, c.want)
		}
	}
}

func TestConverterAreaOverheadMatchesPaper(t *testing.T) {
	// Paper: one SC converter with high-density caps is ~3% of an ARM
	// core; 8 converters/core + Few TSV ≈ Dense TSV total overhead.
	cfg := vsCfg(8, 8)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	over := p.AreaOverheadFrac()
	dense := DenseTSV().AreaOverheadFrac(power.CortexA9Like().Area, cfg.Params.TSVKoZSide)
	if !units.ApproxEqual(over, dense, 0.02, 0.10) {
		t.Errorf("V-S 8conv+Few overhead %.3f should approximate Dense %.3f", over, dense)
	}
}

func TestRegularIRDropBasics(t *testing.T) {
	r := mustSolve(t, regularCfg(4, FewTSV()), UniformActivities(4, 16, 1))
	if r.MaxIRDropFrac <= 0 || r.MaxIRDropFrac > 0.2 {
		t.Errorf("max IR drop = %g, expected a few percent", r.MaxIRDropFrac)
	}
	if len(r.CellVoltages) != 4 {
		t.Errorf("cell voltage layers = %d", len(r.CellVoltages))
	}
	for l, cv := range r.CellVoltages {
		for _, v := range cv {
			if v <= 0.7 || v > 1.0 {
				t.Fatalf("layer %d: implausible cell voltage %g", l, v)
			}
		}
	}
}

func TestRegularIRDropGrowsWithLayers(t *testing.T) {
	r2 := mustSolve(t, regularCfg(2, FewTSV()), UniformActivities(2, 16, 1))
	r8 := mustSolve(t, regularCfg(8, FewTSV()), UniformActivities(8, 16, 1))
	if r8.MaxIRDropFrac <= r2.MaxIRDropFrac {
		t.Errorf("8-layer IR %g should exceed 2-layer %g", r8.MaxIRDropFrac, r2.MaxIRDropFrac)
	}
}

func TestRegularTSVTopologyOrdering(t *testing.T) {
	// More TSVs -> less IR drop: Dense < Sparse < Few.
	dense := mustSolve(t, regularCfg(8, DenseTSV()), UniformActivities(8, 16, 1))
	sparse := mustSolve(t, regularCfg(8, SparseTSV()), UniformActivities(8, 16, 1))
	few := mustSolve(t, regularCfg(8, FewTSV()), UniformActivities(8, 16, 1))
	if !(dense.MaxIRDropFrac < sparse.MaxIRDropFrac && sparse.MaxIRDropFrac < few.MaxIRDropFrac) {
		t.Errorf("IR ordering violated: dense %g, sparse %g, few %g",
			dense.MaxIRDropFrac, sparse.MaxIRDropFrac, few.MaxIRDropFrac)
	}
}

func TestEnergyBalance(t *testing.T) {
	for _, cfg := range []Config{regularCfg(4, SparseTSV()), vsCfg(4, 4)} {
		r := mustSolve(t, cfg, UniformActivities(4, 16, 1))
		sum := r.LoadPower + r.ConverterLoss + r.WireLoss
		if !units.WithinRel(r.InputPower, sum, 1e-6) {
			t.Errorf("%v: input %g != load+losses %g", cfg.Kind, r.InputPower, sum)
		}
		if r.Efficiency <= 0 || r.Efficiency >= 1 {
			t.Errorf("%v: efficiency %g", cfg.Kind, r.Efficiency)
		}
	}
}

func TestVSLoadPowerMatchesChip(t *testing.T) {
	cfg := vsCfg(4, 4)
	r := mustSolve(t, cfg, UniformActivities(4, 16, 1))
	want := 4 * 7.6 // four fully active 16-core layers
	if !units.WithinRel(r.LoadPower, want, 0.05) {
		t.Errorf("load power %g, want ~%g", r.LoadPower, want)
	}
}

func TestVSBalancedConvertersIdle(t *testing.T) {
	r := mustSolve(t, vsCfg(4, 4), UniformActivities(4, 16, 1))
	if r.MaxConverterCurrent > 0.015 {
		t.Errorf("balanced stack: max converter current %g A, want near zero", r.MaxConverterCurrent)
	}
	if r.OverLimit {
		t.Error("balanced stack must not exceed converter limits")
	}
}

func TestVSChargeRecyclingInputCurrent(t *testing.T) {
	// Balanced 4-layer V-S draws ~P/(4*Vdd) from the board: the defining
	// property of charge recycling.
	cfg := vsCfg(4, 4)
	r := mustSolve(t, cfg, UniformActivities(4, 16, 1))
	iIn := r.InputPower / (4 * cfg.Params.Vdd)
	iLayer := 7.6 / cfg.Params.Vdd
	if !units.WithinRel(iIn, iLayer, 0.10) {
		t.Errorf("stack input current %g A, want ~ one layer's %g A", iIn, iLayer)
	}
}

func TestVSRegularPadCurrentRatio(t *testing.T) {
	// V-S reduces off-chip current density by ~N.
	layers := 4
	reg := mustSolve(t, regularCfg(layers, FewTSV()), UniformActivities(layers, 16, 1))
	vs := mustSolve(t, vsCfg(layers, 4), UniformActivities(layers, 16, 1))
	avg := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	ratio := avg(reg.PadCurrents) / avg(vs.PadCurrents)
	if ratio < float64(layers)*0.7 || ratio > float64(layers)*1.4 {
		t.Errorf("pad current ratio = %g, want ~%d", ratio, layers)
	}
}

func TestVSNoiseGrowsWithImbalance(t *testing.T) {
	cfg := vsCfg(8, 8)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, imb := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r, err := p.Solve(InterleavedActivities(8, 16, imb))
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxIRDropFrac <= prev {
			t.Errorf("IR drop not increasing at imbalance %g: %g <= %g", imb, r.MaxIRDropFrac, prev)
		}
		prev = r.MaxIRDropFrac
	}
}

func TestVSMoreConvertersLessNoise(t *testing.T) {
	imb := InterleavedActivities(8, 16, 0.5)
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 8} {
		r := mustSolve(t, vsCfg(8, n), imb)
		if r.MaxIRDropFrac >= prev {
			t.Errorf("%d converters should reduce noise (got %g, prev %g)", n, r.MaxIRDropFrac, prev)
		}
		prev = r.MaxIRDropFrac
	}
}

func TestVSConverterCurrentMatchesDifferential(t *testing.T) {
	// Interleaved pattern at imbalance x: the differential current per
	// core is x * dynamic current = x*0.38/Vdd A, shared by n converters.
	cfg := vsCfg(8, 8)
	r := mustSolve(t, cfg, InterleavedActivities(8, 16, 0.6))
	wantJ := 0.6 * (7.6 * 0.8 / 16) / 8 // x * core dyn power / n
	if !units.WithinRel(r.MaxConverterCurrent, wantJ, 0.35) {
		t.Errorf("max converter current %g, want ~%g", r.MaxConverterCurrent, wantJ)
	}
}

func TestVSConverterLimitEnforced(t *testing.T) {
	// 2 converters/core at 100% imbalance: J ~ 190 mA >> 100 mA limit.
	r := mustSolve(t, vsCfg(8, 2), InterleavedActivities(8, 16, 1.0))
	if !r.OverLimit {
		t.Error("2 conv/core at 100% imbalance must exceed the 100 mA limit")
	}
	// The paper's cutoff: just above 50% imbalance.
	r50 := mustSolve(t, vsCfg(8, 2), InterleavedActivities(8, 16, 0.45))
	if r50.OverLimit {
		t.Errorf("2 conv/core at 45%% should be within limits (J=%g)", r50.MaxConverterCurrent)
	}
}

func TestVSEfficiencyDeclinesWithImbalance(t *testing.T) {
	cfg := vsCfg(8, 4)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, imb := range []float64{0.1, 0.5, 1.0} {
		r, err := p.Solve(InterleavedActivities(8, 16, imb))
		if err != nil {
			t.Fatal(err)
		}
		if r.Efficiency >= prev {
			t.Errorf("efficiency should decline with imbalance: %g at %g", r.Efficiency, imb)
		}
		prev = r.Efficiency
	}
}

func TestVSMoreConvertersLowerEfficiency(t *testing.T) {
	// Open-loop converters burn fixed parasitic power each: Fig. 8.
	imb := InterleavedActivities(8, 16, 0.3)
	prev := 2.0
	for _, n := range []int{2, 4, 8} {
		r := mustSolve(t, vsCfg(8, n), imb)
		if r.Efficiency >= prev {
			t.Errorf("%d conv/core: efficiency %g should be below %g", n, r.Efficiency, prev)
		}
		prev = r.Efficiency
	}
}

func TestVSBeatsRegularSCBaseline(t *testing.T) {
	// Fig. 8: V-S PDN efficiency exceeds the regular-PDN-with-SC baseline
	// at every imbalance (converters process only the differential).
	cfg := vsCfg(8, 8)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, imb := range []float64{0.1, 0.5, 1.0} {
		r, err := p.Solve(InterleavedActivities(8, 16, imb))
		if err != nil {
			t.Fatal(err)
		}
		base, err := RegularSCEfficiency(cfg, imb)
		if err != nil {
			t.Fatal(err)
		}
		if r.Efficiency <= base {
			t.Errorf("imb %g: V-S %g should beat regular-SC %g", imb, r.Efficiency, base)
		}
	}
}

func TestClosedLoopImprovesLightLoadEfficiency(t *testing.T) {
	// Extension: closed-loop frequency scaling cuts parasitic loss when
	// converters are lightly loaded (low imbalance).
	open := vsCfg(4, 8)
	closed := open
	closed.Control = sc.ClosedLoop{}
	acts := InterleavedActivities(4, 16, 0.1)
	ro := mustSolve(t, open, acts)
	rc := mustSolve(t, closed, acts)
	if rc.Efficiency <= ro.Efficiency {
		t.Errorf("closed loop %g should beat open loop %g at light load", rc.Efficiency, ro.Efficiency)
	}
}

func TestSolverChoicesAgree(t *testing.T) {
	cfg := vsCfg(3, 4)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.Direct}
	rd := mustSolve(t, cfg, InterleavedActivities(3, 16, 0.5))
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-12}
	ri := mustSolve(t, cfg, InterleavedActivities(3, 16, 0.5))
	if !units.ApproxEqual(rd.MaxIRDropFrac, ri.MaxIRDropFrac, 1e-6, 1e-4) {
		t.Errorf("direct %g vs pcg %g", rd.MaxIRDropFrac, ri.MaxIRDropFrac)
	}
}

func TestMeshRefinementStable(t *testing.T) {
	// The IR-drop metric should be stable (within ~25%) under mesh
	// refinement, since GridRSeg rescales with resolution.
	coarse := regularCfg(4, SparseTSV())
	fine := coarse
	fine.Params.GridNx, fine.Params.GridNy = 24, 24
	rc := mustSolve(t, coarse, UniformActivities(4, 16, 1))
	rf := mustSolve(t, fine, UniformActivities(4, 16, 1))
	if !units.WithinRel(rc.MaxIRDropFrac, rf.MaxIRDropFrac, 0.25) {
		t.Errorf("mesh sensitivity too high: 16x16 %g vs 24x24 %g", rc.MaxIRDropFrac, rf.MaxIRDropFrac)
	}
}

func TestEMCurrentArraysPopulated(t *testing.T) {
	layers := 3
	reg := mustSolve(t, regularCfg(layers, FewTSV()), UniformActivities(layers, 16, 1))
	// Regular: (layers-1) boundaries x 1760 TSVs, minus cluster members
	// shielded by the crowding model.
	full := (layers - 1) * 1760
	if len(reg.TSVCurrents) > full || len(reg.TSVCurrents) < full/2 {
		t.Errorf("regular TSV conductors = %d, want in (%d, %d]", len(reg.TSVCurrents), full/2, full)
	}
	vs := mustSolve(t, vsCfg(layers, 4), UniformActivities(layers, 16, 1))
	// V-S additionally stresses one through-via per Vdd pad; its pad
	// array has one entry per power pad.
	p, _ := New(vsCfg(layers, 4))
	if len(vs.TSVCurrents) <= len(reg.TSVCurrents)/2 {
		t.Errorf("V-S TSV conductors = %d, implausibly few", len(vs.TSVCurrents))
	}
	if got, want := len(vs.PadCurrents), p.NumPowerPads(); got != want {
		t.Errorf("V-S pad conductors = %d, want %d", got, want)
	}
	if got, want := len(reg.PadCurrents), p.NumPowerPads(); got != want {
		t.Errorf("regular pad conductors = %d, want %d", got, want)
	}
	for _, c := range append(append([]float64{}, reg.TSVCurrents...), vs.TSVCurrents...) {
		if c < 0 || math.IsNaN(c) {
			t.Fatal("negative or NaN conductor current")
		}
	}
}

func TestCrowdEff(t *testing.T) {
	p := DefaultParams()
	if p.CrowdEff(1) != 1 {
		t.Error("single TSV unaffected")
	}
	if got := p.CrowdEff(52); got >= 52 || got < 2 {
		t.Errorf("CrowdEff(52) = %d, want a small effective count", got)
	}
	if p.CrowdEff(13) > p.CrowdEff(52) {
		t.Error("effective count must grow (weakly) with cluster size")
	}
	off := p
	off.TSVCrowdCoef = 0
	if off.CrowdEff(52) != 52 {
		t.Error("disabled crowding should return the full count")
	}
}

func TestActivityHelpers(t *testing.T) {
	u := UniformActivities(3, 4, 0.7)
	if len(u) != 3 || len(u[0]) != 4 || u[2][3] != 0.7 {
		t.Error("UniformActivities wrong")
	}
	iv := InterleavedActivities(4, 2, 0.3)
	if iv[0][0] != 1 || !units.WithinRel(iv[1][0], 0.7, 1e-12) || iv[2][1] != 1 {
		t.Errorf("InterleavedActivities wrong: %v", iv)
	}
	over := InterleavedActivities(2, 1, 1.5)
	if over[1][0] != 0 {
		t.Error("imbalance > 1 should clamp at zero activity")
	}
}

func TestSolveRejectsBadActivities(t *testing.T) {
	p, err := New(vsCfg(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(UniformActivities(2, 16, 1)); err == nil {
		t.Error("wrong layer count not caught")
	}
	bad := UniformActivities(3, 16, 1)
	bad[1][4] = 2.0
	if _, err := p.Solve(bad); err == nil {
		t.Error("activity > 1 not caught")
	}
}

func TestKindString(t *testing.T) {
	if Regular.String() != "regular" || VoltageStacked.String() != "voltage-stacked" {
		t.Error("Kind.String wrong")
	}
}
