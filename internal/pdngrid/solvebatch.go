// Batched PDN solves: many activity patterns against one prepared engine.
// Sweep evaluation and Monte Carlo layers solve the same placed PDN under
// different load vectors; since loads are RHS-only elements (the network
// structure stamps every cell's load unconditionally), a whole batch
// shares one structure compile, one value restamp, and one numeric
// factorization or preconditioner.
package pdngrid

import (
	"context"
	"fmt"
	"time"

	"voltstack/internal/sc"
	"voltstack/internal/telemetry"
)

var (
	mBatchSolves = telemetry.NewCounter("pdngrid_batch_solves_total")
	mBatchLanes  = telemetry.NewCounter("pdngrid_batch_lanes_total")
)

// SolveBatch solves the PDN once per activity matrix in the batch and
// returns one Result per entry, equivalent to (and in open loop
// bit-identical to) calling Solve on each entry in order. Entry i of the
// batch must be Layers x NumCores like Solve's argument.
func (p *PDN) SolveBatch(batch [][][]float64) ([]*Result, error) {
	return p.solveBatch(context.Background(), batch, 0)
}

// SolveBatchContext is SolveBatch with a context for trace-span and
// job-scope propagation (see SolveContext).
func (p *PDN) SolveBatchContext(ctx context.Context, batch [][][]float64) ([]*Result, error) {
	return p.solveBatch(ctx, batch, 0)
}

// SolveBatchWorkers is SolveBatch with the independent solve lanes
// distributed over a pool of the given size (< 1 selects the default).
//
// The batched fast path applies in open loop on the prepared engine: the
// matrix is identical across entries (loads are RHS-only), so one
// restamp+refactor serves all lanes and each lane is bit-identical to a
// serial Solve of its entry for any worker count. Closed-loop control and
// ForceFreshSolve fall back to serial Solve calls per entry — closed-loop
// outer iterations give every entry a distinct converter operating point
// (a distinct matrix), which has no shared factorization to amortize.
func (p *PDN) SolveBatchWorkers(batch [][][]float64, workers int) ([]*Result, error) {
	return p.solveBatch(context.Background(), batch, workers)
}

func (p *PDN) solveBatch(ctx context.Context, batch [][][]float64, workers int) ([]*Result, error) {
	cfg := p.Cfg
	k := len(batch)
	if k == 0 {
		return nil, nil
	}
	mBatchSolves.Add(1)
	mBatchLanes.Add(int64(k))

	closedLoop := false
	if cfg.Control != nil {
		if _, open := cfg.Control.(sc.OpenLoop); !open {
			closedLoop = true
		}
	}
	if cfg.ForceFreshSolve || closedLoop {
		out := make([]*Result, k)
		for i, acts := range batch {
			r, err := p.SolveContext(ctx, acts)
			if err != nil {
				return nil, fmt.Errorf("pdngrid: batch entry %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}

	loads := make([][][]float64, k)
	for i, acts := range batch {
		ld, err := p.rasterizeLoads(acts)
		if err != nil {
			return nil, fmt.Errorf("pdngrid: batch entry %d: %w", i, err)
		}
		loads[i] = ld
	}
	freqs := make([]float64, p.ConverterCount())
	for i := range freqs {
		freqs[i] = cfg.Converter.FSw
	}

	sp := telemetry.StartSpanCtx(ctx, "pdngrid.solve-batch")
	defer sp.End()
	scope := telemetry.ScopeFrom(ctx)
	scope.Counter("job_batch_solves_total").Add(1)
	scope.Counter("job_batch_lanes_total").Add(int64(k))

	eng := p.takeEngine()
	if eng == nil {
		spA := sp.Start("assemble")
		tA := telemetry.Now()
		asm := p.assemble(loads[0], freqs, nil)
		prep, err := asm.net.Compile(cfg.Solve)
		mAssembleSeconds.Since(tA)
		spA.End()
		if err != nil {
			return nil, fmt.Errorf("pdngrid: %w", err)
		}
		eng = &engine{asm: asm, prep: prep}
		mEngineBuilds.Add(1)
	} else {
		mEngineReuses.Add(1)
		spA := sp.Start("restamp")
		tA := telemetry.Now()
		eng.applyConverters(cfg, freqs)
		mAssembleSeconds.Since(tA)
		spA.End()
	}
	defer p.putEngine(eng)

	spS := sp.Start("linear-solve")
	var tJob time.Time
	if scope != nil {
		tJob = time.Now()
	}
	tS := telemetry.Now()
	sols, err := eng.prep.SolveBatch(k, func(i int) {
		eng.applyLoads(loads[i], p.nCells)
	}, nil, workers)
	mSolveSeconds.Since(tS)
	spS.End()
	if err != nil {
		return nil, solveFailure(0, eng.asm.net.NumNodes(), false, nil, err)
	}

	out := make([]*Result, k)
	for i, sol := range sols {
		// Element-level queries in extractResult (LoadPower, …) read live
		// netlist values, so entry i's loads must be active while its
		// Result is derived.
		eng.applyLoads(loads[i], p.nCells)
		out[i] = p.extractResult(eng.asm, sol)
		mSolves.Add(1)
		mNodesHist.Observe(float64(eng.asm.net.NumNodes()))
	}
	mOuterIters.Add(int64(k))
	if scope != nil {
		// One attribution record for the whole batched linear solve: the
		// lanes share a restamp/factor, so per-lane wall time is not
		// separable — the batch solve is the meaningful unit.
		secs := time.Since(tJob).Seconds()
		totalIters := 0
		for _, r := range out {
			totalIters += r.SolverIterations
		}
		scope.Counter("job_pdn_solves_total").Add(int64(k))
		scope.Counter("job_outer_iterations_total").Add(int64(k))
		scope.Counter("job_solver_iterations_total").Add(int64(totalIters))
		scope.Histogram("job_linear_solve_seconds").Observe(secs)
		ex := telemetry.Exemplar{
			Metric:     "job_linear_solve_seconds",
			Value:      secs,
			Iterations: totalIters,
			Residual:   out[k-1].SolverResidual,
		}
		if tc := spS.TraceContext(); tc.Valid() {
			ex.TraceID, ex.SpanID = tc.TraceIDString(), tc.SpanIDString()
		}
		// Per-lane health attribution: every probed lane counts toward the
		// job's report/detector totals, and the exemplar carries the first
		// probed lane's residual timeline.
		for _, sol := range sols {
			recordJobHealth(scope, &ex, sol.Health)
		}
		scope.RecordExemplar(ex)
	}
	return out, nil
}
