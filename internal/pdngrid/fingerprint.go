package pdngrid

// Content-addressed caching support: a PDN solve's result is a pure
// function of its Config (plus the activity vector and the code version),
// so a canonical serialization of every result-affecting Config field is
// a valid cache key component. CacheFingerprint is that serialization
// contract; DESIGN.md §11 documents what invalidates a cached result.

import "voltstack/internal/sc"

// CacheFingerprint returns a stable, canonically-serializable view of
// every configuration field that can change a solve's numerical result:
// the architecture (kind, layers, chip), the electrical parameters
// (Params, TSV topology, pad allocation), the converter model when one is
// in the circuit, the control policy, and the linear-solver options
// (solver kind, tolerance, iteration budget, fresh-solve / warm-start
// toggles — warm starts change closed-loop results at the bit level, so
// they are key material, not an implementation detail).
//
// Fields that cannot affect results (the prepared-engine cache state, the
// worker count of a surrounding sweep) are deliberately absent, so cache
// hits survive performance-only reconfiguration. Encode the result with
// rescache.CanonicalJSON (or hash it via rescache.Key) — plain
// encoding/json does not guarantee cross-version byte stability.
func (c Config) CacheFingerprint() map[string]any {
	control := "open-loop"
	if c.Control != nil {
		control = c.Control.Name()
	}
	fp := map[string]any{
		"kind":               c.Kind.String(),
		"layers":             c.Layers,
		"chip":               c.Chip,
		"params":             c.Params,
		"tsv":                c.TSV,
		"pad_power_fraction": c.PadPowerFraction,
		"control":            control,
		"solve": map[string]any{
			"solver":   int(c.Solve.Solver),
			"tol":      c.Solve.Tol,
			"max_iter": c.Solve.MaxIter,
		},
		"force_fresh_solve": c.ForceFreshSolve,
		"no_warm_start":     c.NoWarmStart,
	}
	// The converter only exists in the voltage-stacked circuit; keying the
	// regular PDN on converter parameters would miss cache hits for no
	// reason.
	if c.Kind == VoltageStacked {
		fp["converters_per_core"] = c.ConvertersPerCore
		fp["converter"] = converterFingerprint(c.Converter)
	}
	return fp
}

// converterFingerprint flattens sc.Params into plain data (the topology's
// multiplier vectors included — they set the output impedance).
func converterFingerprint(p sc.Params) map[string]any {
	return map[string]any{
		"topology":       p.Topo.Name,
		"ac":             p.Topo.AC,
		"ar":             p.Topo.AR,
		"ratio":          p.Topo.Ratio,
		"ctot":           p.Ctot,
		"fsw":            p.FSw,
		"gtot":           p.Gtot,
		"dcyc":           p.Dcyc,
		"interleave":     p.Interleave,
		"cap_tech":       int(p.Cap),
		"k_bottom_plate": p.KBottomPlate,
		"v_swing":        p.VSwing,
		"q_gate":         p.QGate,
		"v_gate":         p.VGate,
		"max_load":       p.MaxLoad,
	}
}
