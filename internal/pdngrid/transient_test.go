package pdngrid

import (
	"testing"

	"voltstack/internal/units"
)

func fastTransient() TransientConfig {
	tc := DefaultTransient()
	tc.Steps = 500
	return tc
}

func TestTransientConfigValidation(t *testing.T) {
	good := DefaultTransient()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*TransientConfig){
		func(c *TransientConfig) { c.DT = 0 },
		func(c *TransientConfig) { c.Steps = 0 },
		func(c *TransientConfig) { c.DecapPerArea = -1 },
		func(c *TransientConfig) { c.PkgL = -1 },
		func(c *TransientConfig) { c.StepActivity = 1.5 },
		func(c *TransientConfig) { c.RestActivity = -0.1 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestTransientFirstDroopExceedsSettled(t *testing.T) {
	p, err := New(regularCfg(4, DenseTSV()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.SolveTransient(fastTransient())
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstDroopFrac <= r.FinalDroopFrac {
		t.Errorf("first droop %g should exceed settled droop %g (inductive kick)",
			r.WorstDroopFrac, r.FinalDroopFrac)
	}
	if r.WorstDroopFrac <= 0 || r.WorstDroopFrac > 0.5 {
		t.Errorf("implausible worst droop %g", r.WorstDroopFrac)
	}
	if len(r.Times) != len(r.Droop) || len(r.Times) != 501 {
		t.Errorf("waveform lengths: %d times, %d droops", len(r.Times), len(r.Droop))
	}
}

func TestTransientVSBeatsRegularOnFirstDroop(t *testing.T) {
	// The extension result: because the V-S stack draws ~1/N the off-chip
	// current, its load-step di/dt through the package inductance — and
	// hence its first droop — is far below the regular PDN's.
	tc := fastTransient()
	reg, err := New(regularCfg(4, DenseTSV()))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := reg.SolveTransient(tc)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := New(vsCfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	rv, err := vs.SolveTransient(tc)
	if err != nil {
		t.Fatal(err)
	}
	if rv.WorstDroopFrac >= rr.WorstDroopFrac/2 {
		t.Errorf("V-S first droop %g should be well below regular %g",
			rv.WorstDroopFrac, rr.WorstDroopFrac)
	}
}

func TestTransientMoreDecapLessDroop(t *testing.T) {
	p, err := New(regularCfg(3, SparseTSV()))
	if err != nil {
		t.Fatal(err)
	}
	small := fastTransient()
	big := small
	big.DecapPerArea *= 5
	rs, err := p.SolveTransient(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.SolveTransient(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.WorstDroopFrac >= rs.WorstDroopFrac {
		t.Errorf("5x decap should shrink droop: %g -> %g", rs.WorstDroopFrac, rb.WorstDroopFrac)
	}
}

func TestTransientSettlesTowardDCLevel(t *testing.T) {
	// With generous damping, the settled droop approaches the static
	// solve's IR drop for the same (full) activity. A raised package
	// resistance damps the package-LC ringing well within the run.
	cfg := regularCfg(2, DenseTSV())
	cfg.Params.PkgR = 2e-3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := fastTransient()
	tc.Steps = 6000
	rt, err := p.SolveTransient(tc)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := p.Solve(UniformActivities(2, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The DC metric is a max over all cells while the transient probes
	// core centers; require agreement within a factor tolerance.
	if !units.ApproxEqual(rt.FinalDroopFrac, dc.MaxIRDropFrac, 0.01, 0.5) {
		t.Errorf("settled droop %g vs DC IR drop %g", rt.FinalDroopFrac, dc.MaxIRDropFrac)
	}
}

func TestTransientNoEventNoDroop(t *testing.T) {
	// Rest == Step: nothing happens; droop stays at the DC level.
	p, err := New(regularCfg(2, DenseTSV()))
	if err != nil {
		t.Fatal(err)
	}
	tc := fastTransient()
	tc.RestActivity, tc.StepActivity = 1, 1
	tc.Steps = 200
	r, err := p.SolveTransient(tc)
	if err != nil {
		t.Fatal(err)
	}
	// A sub-0.5% residual ripple is tolerated: the DC init models the
	// package inductor as a tiny resistor, so the first steps re-settle.
	if !units.ApproxEqual(r.WorstDroopFrac, r.FinalDroopFrac, 5e-4, 5e-3) {
		t.Errorf("flat event should not ring: worst %g vs final %g",
			r.WorstDroopFrac, r.FinalDroopFrac)
	}
}
