package pdngrid

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// TestSolveFailureWritesPostmortem forces a PCG non-convergence (two
// iterations against a 1e-16 target) and checks the whole failure path: the
// returned error still matches ErrNoConvergence, names the artifact, and
// the artifact holds the residual trajectory of exactly the failed solve.
func TestSolveFailureWritesPostmortem(t *testing.T) {
	dir := t.TempDir()
	telemetry.SetPostmortemDir(dir)
	defer func() {
		telemetry.SetPostmortemDir("")
		telemetry.DisableFlightRecorder()
	}()

	cfg := vsCfg(3, 4)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-16, MaxIter: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Solve(InterleavedActivities(3, 16, 0.5))
	if err == nil {
		t.Fatal("2-iteration budget converged; cannot exercise the failure path")
	}
	if !errors.Is(err, sparse.ErrNoConvergence) {
		t.Fatalf("errors.Is(ErrNoConvergence) lost through the post-mortem wrapper: %v", err)
	}
	if !strings.Contains(err.Error(), "post-mortem: ") {
		t.Fatalf("error does not point at the artifact: %v", err)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "pdngrid-solve-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no post-mortem artifact written (glob err %v)", err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var pm SolvePostmortem
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if pm.Stage != "linear-solve" {
		t.Errorf("stage = %q", pm.Stage)
	}
	if pm.Nodes <= 0 {
		t.Errorf("nodes = %d", pm.Nodes)
	}
	if pm.Error == "" {
		t.Error("artifact lacks the error string")
	}
	tr := pm.SolveTrace
	if tr == nil {
		t.Fatal("artifact lacks the solve trace")
	}
	if tr.Kind != "pcg" || tr.MaxIter != 2 {
		t.Errorf("trace kind=%q max_iter=%d, want pcg/2", tr.Kind, tr.MaxIter)
	}
	// Iteration 0 plus both budgeted iterations.
	if len(tr.Residuals) != 3 {
		t.Errorf("trajectory has %d points, want 3", len(tr.Residuals))
	}
	if tr.FinalResidual <= 1e-16 {
		t.Errorf("final residual %g claims convergence", tr.FinalResidual)
	}
}

// TestSolvePostmortemOffByDefault pins that an un-flagged failing run gets
// the plain error: no artifact path, no files, no trace allocation.
func TestSolvePostmortemOffByDefault(t *testing.T) {
	if telemetry.PostmortemEnabled() || telemetry.FlightRecorderEnabled() {
		t.Fatal("post-mortem machinery enabled at test entry")
	}
	cfg := vsCfg(3, 4)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-16, MaxIter: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Solve(InterleavedActivities(3, 16, 0.5))
	if !errors.Is(err, sparse.ErrNoConvergence) {
		t.Fatalf("want non-convergence, got %v", err)
	}
	if strings.Contains(err.Error(), "post-mortem") {
		t.Errorf("artifact path in error with the gate off: %v", err)
	}
	if sparse.TraceFromError(err) != nil {
		t.Error("trace attached with the flight recorder off")
	}
}
