package pdngrid

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Golden load-step waveforms: the transient solver's droop response for a
// table of representative scenarios is pinned bit-for-bit (%.17g round-trips
// float64 exactly). Solver work — batching, preconditioner changes, new
// orderings — must not move these waveforms; a deliberate model change
// regenerates them with
//
//	go test ./internal/pdngrid -run TestTransientGoldenWaveforms -update
var updateTransientGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// transientGoldenCases is the scenario table. Short runs and a coarse
// subsample keep the files small while still spanning the first droop,
// the ring-down, and the approach to the settled level.
var transientGoldenCases = []struct {
	name   string
	cfg    func() Config
	mutate func(*TransientConfig)
}{
	{
		name: "regular-2layer-dense",
		cfg:  func() Config { return regularCfg(2, DenseTSV()) },
	},
	{
		name: "regular-3layer-sparse",
		cfg:  func() Config { return regularCfg(3, SparseTSV()) },
	},
	{
		name: "vs-3layer",
		cfg:  func() Config { return vsCfg(3, 4) },
	},
	{
		name:   "regular-2layer-big-decap",
		cfg:    func() Config { return regularCfg(2, DenseTSV()) },
		mutate: func(tc *TransientConfig) { tc.DecapPerArea *= 5 },
	},
	{
		name:   "regular-2layer-gentle-step",
		cfg:    func() Config { return regularCfg(2, DenseTSV()) },
		mutate: func(tc *TransientConfig) { tc.RestActivity, tc.StepActivity = 0.5, 0.8 },
	},
}

func goldenTransientConfig() TransientConfig {
	tc := DefaultTransient()
	tc.Steps = 240
	return tc
}

// formatWaveform renders a TransientResult as a stable text snapshot:
// scalar summary lines plus every 8th waveform sample, all floats printed
// with %.17g so the comparison is exact at the bit level.
func formatWaveform(r *TransientResult) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "worst_droop_frac %.17g\n", r.WorstDroopFrac)
	fmt.Fprintf(&b, "worst_layer %d\n", r.WorstLayer)
	fmt.Fprintf(&b, "final_droop_frac %.17g\n", r.FinalDroopFrac)
	fmt.Fprintf(&b, "samples %d\n", len(r.Times))
	for k := 0; k < len(r.Times); k += 8 {
		fmt.Fprintf(&b, "%.17g %.17g\n", r.Times[k], r.Droop[k])
	}
	return []byte(b.String())
}

func TestTransientGoldenWaveforms(t *testing.T) {
	for _, tc := range transientGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			trc := goldenTransientConfig()
			if tc.mutate != nil {
				tc.mutate(&trc)
			}
			r, err := p.SolveTransient(trc)
			if err != nil {
				t.Fatal(err)
			}
			got := formatWaveform(r)
			path := filepath.Join("testdata", "golden", "transient-"+tc.name+".txt")
			if *updateTransientGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s — run `go test ./internal/pdngrid -run TestTransientGoldenWaveforms -update` (%v)", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden waveform.\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestTransientConcurrentSolves exercises SolveTransient from parallel
// goroutines against one PDN (run under -race in CI). The transient path
// assembles a fresh netlist per call, so concurrent runs must neither race
// nor perturb each other's waveforms.
func TestTransientConcurrentSolves(t *testing.T) {
	p, err := New(regularCfg(2, DenseTSV()))
	if err != nil {
		t.Fatal(err)
	}
	tc := goldenTransientConfig()
	tc.Steps = 60
	ref, err := p.SolveTransient(tc)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := p.SolveTransient(tc)
			if err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(formatWaveform(r), formatWaveform(ref)) {
				errs[g] = fmt.Errorf("goroutine %d: waveform diverged from serial reference", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
