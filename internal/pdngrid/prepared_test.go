package pdngrid

import (
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/sc"
)

// bitsEq compares floats bitwise, so even a sign-of-zero or last-ulp drift
// between the fresh and prepared paths fails loudly.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sliceBitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bitsEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// sameResult asserts two Results are bit-identical in every field.
func sameResult(t *testing.T, label string, fresh, prep *Result) {
	t.Helper()
	fail := func(field string) {
		t.Fatalf("%s: field %s differs between fresh and prepared", label, field)
	}
	switch {
	case !bitsEq(fresh.MaxIRDropFrac, prep.MaxIRDropFrac):
		fail("MaxIRDropFrac")
	case !bitsEq(fresh.MaxRiseFrac, prep.MaxRiseFrac):
		fail("MaxRiseFrac")
	case fresh.WorstLayer != prep.WorstLayer:
		fail("WorstLayer")
	case !sliceBitsEq(fresh.PadCurrents, prep.PadCurrents):
		fail("PadCurrents")
	case !sliceBitsEq(fresh.TSVCurrents, prep.TSVCurrents):
		fail("TSVCurrents")
	case !bitsEq(fresh.InputPower, prep.InputPower):
		fail("InputPower")
	case !bitsEq(fresh.LoadPower, prep.LoadPower):
		fail("LoadPower")
	case !bitsEq(fresh.ConverterLoss, prep.ConverterLoss):
		fail("ConverterLoss")
	case !bitsEq(fresh.WireLoss, prep.WireLoss):
		fail("WireLoss")
	case !bitsEq(fresh.Efficiency, prep.Efficiency):
		fail("Efficiency")
	case !sliceBitsEq(fresh.ConverterCurrents, prep.ConverterCurrents):
		fail("ConverterCurrents")
	case !bitsEq(fresh.MaxConverterCurrent, prep.MaxConverterCurrent):
		fail("MaxConverterCurrent")
	case fresh.OverLimit != prep.OverLimit:
		fail("OverLimit")
	case fresh.SolverIterations != prep.SolverIterations:
		t.Fatalf("%s: SolverIterations %d vs %d", label, fresh.SolverIterations, prep.SolverIterations)
	case !bitsEq(fresh.SolverResidual, prep.SolverResidual):
		fail("SolverResidual")
	case fresh.OuterIterations != prep.OuterIterations:
		t.Fatalf("%s: OuterIterations %d vs %d", label, fresh.OuterIterations, prep.OuterIterations)
	case fresh.TotalSolverIterations != prep.TotalSolverIterations:
		t.Fatalf("%s: TotalSolverIterations %d vs %d", label, fresh.TotalSolverIterations, prep.TotalSolverIterations)
	}
	if len(fresh.TSVLayers) != len(prep.TSVLayers) {
		fail("TSVLayers")
	}
	for i := range fresh.TSVLayers {
		if fresh.TSVLayers[i] != prep.TSVLayers[i] {
			fail("TSVLayers")
		}
	}
	if len(fresh.CellVoltages) != len(prep.CellVoltages) {
		fail("CellVoltages")
	}
	for l := range fresh.CellVoltages {
		if !sliceBitsEq(fresh.CellVoltages[l], prep.CellVoltages[l]) {
			fail("CellVoltages")
		}
	}
}

// solvePair solves the same scenario twice — through the prepared engine
// (default path) and through the historical rebuild-everything path — on two
// independent PDNs, and returns (fresh, prepared).
func solvePair(t *testing.T, cfg Config, acts [][]float64) (*Result, *Result) {
	t.Helper()
	freshCfg := cfg
	freshCfg.ForceFreshSolve = true
	fresh := mustSolve(t, freshCfg, acts)
	prep := mustSolve(t, cfg, acts)
	return fresh, prep
}

var preparedKinds = []circuit.SolverKind{
	circuit.Auto, circuit.Direct, circuit.DirectSparseND, circuit.PCGIC0, circuit.PCGJacobi,
}

// TestPreparedMatchesFreshOpenLoop is the PDN-level equivalence contract:
// for both architectures and every solver kind, the prepared engine's
// open-loop result is bit-identical to the fresh path's.
func TestPreparedMatchesFreshOpenLoop(t *testing.T) {
	cfgs := map[string]Config{
		"regular": regularCfg(3, SparseTSV()),
		"stacked": vsCfg(3, 4),
	}
	for name, cfg := range cfgs {
		acts := InterleavedActivities(3, 16, 0.5)
		for _, kind := range preparedKinds {
			cfg.Solve = circuit.SolveOptions{Solver: kind}
			fresh, prep := solvePair(t, cfg, acts)
			sameResult(t, name, fresh, prep)
		}
	}
}

// TestPreparedMatchesFreshClosedLoop covers the outer-iteration loop: with
// warm starts disabled the prepared path must replay the fresh path's
// per-pass arithmetic exactly, including the converter-frequency updates.
func TestPreparedMatchesFreshClosedLoop(t *testing.T) {
	for _, kind := range []circuit.SolverKind{circuit.Direct, circuit.PCGIC0} {
		cfg := vsCfg(3, 4)
		cfg.Control = sc.ClosedLoop{}
		cfg.NoWarmStart = true
		cfg.Solve = circuit.SolveOptions{Solver: kind, Tol: 1e-10}
		acts := InterleavedActivities(3, 16, 0.5)
		fresh, prep := solvePair(t, cfg, acts)
		if prep.OuterIterations < 2 {
			t.Fatalf("kind %d: closed loop converged in %d outer passes, want >= 2", kind, prep.OuterIterations)
		}
		sameResult(t, "closed-loop", fresh, prep)
	}
}

// TestPreparedWarmStartClosedLoop checks the default closed-loop path (warm
// starts on): the converged answer must agree with the fresh path to the
// outer loop's own convergence tolerance (1e-4 on converter currents — warm
// starts change the iterate trajectory, so the loop may settle a few ulps of
// that band apart), and the warm-started outer passes must not need more
// total linear-solver iterations than the cold-start baseline.
func TestPreparedWarmStartClosedLoop(t *testing.T) {
	cfg := vsCfg(3, 4)
	cfg.Control = sc.ClosedLoop{}
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-10}
	acts := InterleavedActivities(3, 16, 0.5)
	fresh, warm := solvePair(t, cfg, acts)
	if math.Abs(fresh.MaxIRDropFrac-warm.MaxIRDropFrac) > 1e-5 {
		t.Errorf("warm-start noise drifted: %g vs %g", warm.MaxIRDropFrac, fresh.MaxIRDropFrac)
	}
	if math.Abs(fresh.Efficiency-warm.Efficiency) > 1e-5 {
		t.Errorf("warm-start efficiency drifted: %g vs %g", warm.Efficiency, fresh.Efficiency)
	}
	if warm.TotalSolverIterations > fresh.TotalSolverIterations {
		t.Errorf("warm starts cost iterations: %d vs cold %d",
			warm.TotalSolverIterations, fresh.TotalSolverIterations)
	}
}

// TestPreparedEngineReuseAcrossActivityPatterns drives one PDN through a
// sequence of different activity patterns. Every solve after the first hits
// the cached engine, whose results must not depend on what was solved
// before: each must be bit-identical to a solve on a pristine PDN.
func TestPreparedEngineReuseAcrossActivityPatterns(t *testing.T) {
	cfg := vsCfg(3, 4)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-10}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][][]float64{
		InterleavedActivities(3, 16, 0.5),
		UniformActivities(3, 16, 1),
		InterleavedActivities(3, 16, 0.9),
		InterleavedActivities(3, 16, 0.5), // repeat of the first
	}
	for i, acts := range patterns {
		got, err := p.Solve(acts)
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		want := mustSolve(t, cfg, acts) // pristine PDN, cold engine
		sameResult(t, "reuse", want, got)
	}
}

// TestPreparedRegularReuse covers the regular (no-converter) architecture's
// engine reuse, where only load values change between solves.
func TestPreparedRegularReuse(t *testing.T) {
	cfg := regularCfg(3, SparseTSV())
	cfg.Solve = circuit.SolveOptions{Solver: circuit.Direct}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range []float64{1, 0.25, 1} {
		acts := UniformActivities(3, 16, act)
		got, err := p.Solve(acts)
		if err != nil {
			t.Fatal(err)
		}
		want := mustSolve(t, cfg, acts)
		sameResult(t, "regular-reuse", want, got)
	}
}

// TestPreparedConcurrentSolves hammers one PDN from several goroutines
// (exercising the engine take/put-back path) and checks every result is
// bit-identical to a serial reference. Run under -race this also proves the
// cache handoff is data-race free.
func TestPreparedConcurrentSolves(t *testing.T) {
	cfg := vsCfg(3, 2)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-10}
	acts := InterleavedActivities(3, 16, 0.5)
	want := mustSolve(t, cfg, acts)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w], errs[w] = p.Solve(acts)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		sameResult(t, "concurrent", want, results[w])
	}
}
