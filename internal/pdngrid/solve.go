package pdngrid

import (
	"context"
	"fmt"
	"math"
	"time"

	"voltstack/internal/circuit"
	"voltstack/internal/sc"
	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// PDN-solve instrumentation: the assemble-vs-linear-solve wall-clock split
// and per-solve node counts are what any further solver optimisation will
// be measured against. No-ops unless telemetry is enabled.
var (
	mSolves          = telemetry.NewCounter("pdngrid_solves_total")
	mOuterIters      = telemetry.NewCounter("pdngrid_outer_iterations_total")
	mAssembleSeconds = telemetry.NewHistogram("pdngrid_assemble_seconds")
	mSolveSeconds    = telemetry.NewHistogram("pdngrid_linear_solve_seconds")
	mNodesHist       = telemetry.NewHistogram("pdngrid_nodes")
	// Prepared-engine cache effectiveness: builds are structure-cache
	// misses, reuses are hits; warm-start savings estimate how many PCG
	// iterations the previous-iterate starts avoided (versus the cold
	// first pass of the same closed-loop solve).
	mEngineBuilds  = telemetry.NewCounter("pdngrid_engine_builds_total")
	mEngineReuses  = telemetry.NewCounter("pdngrid_engine_reuses_total")
	mWarmIterSaved = telemetry.NewCounter("pdngrid_warmstart_iterations_saved_total")
	mOuterStalls   = telemetry.NewCounter("pdngrid_outer_stalls_total")
)

// Result holds the solved state of one PDN scenario.
type Result struct {
	// Voltage noise.
	MaxIRDropFrac float64 // worst droop below Vdd across all cells, /Vdd
	MaxRiseFrac   float64 // worst overshoot above Vdd across all cells, /Vdd
	WorstLayer    int     // layer of the worst droop

	// Per-conductor currents for EM analysis (one entry per physical
	// conductor; lumped parallel conductors are expanded).
	PadCurrents []float64 // power C4 pads (Vdd and ground)
	TSVCurrents []float64 // all power TSVs incl. V-S through-via segments
	// TSVLayers tags each TSVCurrents entry with the silicon layer at the
	// conductor's lower end, enabling temperature-aware EM analysis
	// (through-vias are tagged 0: they reach down to the package).
	TSVLayers []int

	// Power accounting.
	InputPower    float64 // drawn from the board rails (W)
	LoadPower     float64 // absorbed by the loads (W)
	ConverterLoss float64 // conduction + parasitic converter losses (W)
	WireLoss      float64 // mesh, pad and TSV I²R losses (W)
	Efficiency    float64 // LoadPower / InputPower

	// Converter state (VoltageStacked only).
	ConverterCurrents   []float64 // output current of every converter (A)
	MaxConverterCurrent float64   // max |J| (A)
	OverLimit           bool      // some converter exceeds its rated load

	// Per-layer voltage maps: cell supply voltage (Vdd net minus ground
	// net) for each layer, row-major raster order.
	CellVoltages [][]float64

	// Linear solve diagnostics, propagated from sparse.CGResult via
	// circuit.Solution so callers and tests can assert convergence effort.
	SolverIterations int     // iterative-solver iterations of the final linear solve (0 for direct solvers)
	SolverResidual   float64 // final relative residual ‖b−Ax‖₂/‖b‖₂ of the final linear solve
	// OuterIterations counts closed-loop converter-frequency passes (1 in
	// open loop); TotalSolverIterations sums the linear-solver iterations
	// over all of them.
	OuterIterations       int
	TotalSolverIterations int
}

// UniformActivities returns an activity matrix with every core of every
// layer at the given activity.
func UniformActivities(layers, cores int, act float64) [][]float64 {
	out := make([][]float64, layers)
	for l := range out {
		row := make([]float64, cores)
		for c := range row {
			row[c] = act
		}
		out[l] = row
	}
	return out
}

// interleavedActivity returns the activity of layer l under the paper's
// interleaved imbalance pattern: even layers fully active, odd layers at
// 1 - imbalance, clamped at zero.
func interleavedActivity(l int, imbalance float64) float64 {
	if l%2 == 0 {
		return 1
	}
	act := 1 - imbalance
	if act < 0 {
		act = 0
	}
	return act
}

// InterleavedActivities returns the paper's Fig. 6 benchmark pattern:
// even layers (0, 2, ...) fully active, odd layers at activity
// 1 - imbalance. This stresses every converter with the same differential
// current, the worst case for the V-S PDN.
func InterleavedActivities(layers, cores int, imbalance float64) [][]float64 {
	out := make([][]float64, layers)
	for l := range out {
		act := interleavedActivity(l, imbalance)
		row := make([]float64, cores)
		for c := range row {
			row[c] = act
		}
		out[l] = row
	}
	return out
}

// Solve builds the MNA network for the given per-layer, per-core activity
// factors and solves it. activities must be Layers x NumCores.
//
// By default the solve runs on a prepared engine cached on the PDN: the
// network is assembled and symbolically analyzed once, then every solve —
// including closed-loop outer iterations and subsequent Solve calls — only
// restamps changed element values, refactors numerically on the cached
// structure, and (in closed loop) warm-starts the iterative solver from
// the previous outer iterate. Cfg.ForceFreshSolve restores the historical
// rebuild-everything path.
func (p *PDN) Solve(activities [][]float64) (*Result, error) {
	return p.SolveContext(context.Background(), activities)
}

// SolveContext is Solve with a context: trace spans inherit the context's
// trace ID and solver effort is attributed to the context's job scope (see
// telemetry.Scope). The solve result is byte-identical with or without a
// trace or scope attached.
func (p *PDN) SolveContext(ctx context.Context, activities [][]float64) (*Result, error) {
	cfg := p.Cfg
	loads, err := p.rasterizeLoads(activities)
	if err != nil {
		return nil, err
	}

	// Converter frequencies: open loop uses the nominal frequency; closed
	// loop iterates the solve with per-converter frequencies tracking the
	// previous iterate's output currents.
	nConv := p.ConverterCount()
	freqs := make([]float64, nConv)
	for i := range freqs {
		freqs[i] = cfg.Converter.FSw
	}
	ctrl := cfg.Control
	maxOuter := 1
	if ctrl != nil {
		if _, open := ctrl.(sc.OpenLoop); !open {
			maxOuter = 10
		}
	}

	if cfg.ForceFreshSolve {
		return p.solveFresh(ctx, loads, freqs, ctrl, maxOuter)
	}
	return p.solvePrepared(ctx, loads, freqs, ctrl, maxOuter)
}

// recordJobSolve attributes one linear solve to the job scope: per-job
// counters and latency histogram, plus an exemplar keyed to the solve's
// trace span with convergence evidence (iterations, residual, and — when
// the flight recorder is on — the per-iteration residual timeline).
func recordJobSolve(scope *telemetry.Scope, sp *telemetry.Span, secs float64, sol *circuit.Solution) {
	if scope == nil {
		return
	}
	scope.Counter("job_pdn_solves_total").Add(1)
	scope.Counter("job_solver_iterations_total").Add(int64(sol.Iterations))
	scope.Histogram("job_linear_solve_seconds").Observe(secs)
	scope.Gauge("job_solver_residual_last").Set(sol.Residual)
	ex := telemetry.Exemplar{
		Metric:     "job_linear_solve_seconds",
		Value:      secs,
		Iterations: sol.Iterations,
		Residual:   sol.Residual,
	}
	if tc := sp.TraceContext(); tc.Valid() {
		ex.TraceID, ex.SpanID = tc.TraceIDString(), tc.SpanIDString()
	}
	if sol.ConvTrace != nil {
		ex.Residuals = sol.ConvTrace.Residuals
	}
	recordJobHealth(scope, &ex, sol.Health)
	scope.RecordExemplar(ex)
}

// recordJobHealth attributes one probed solve's health report to the job
// scope: the job's stats document (and through it `vsctl health`) carries
// the last probed solve's condition estimate, reduction factor and detector
// trips, and the exemplar picks up the residual timeline when the flight
// recorder did not already supply one. Nil h (probes off, or a direct
// solve) is a no-op.
func recordJobHealth(scope *telemetry.Scope, ex *telemetry.Exemplar, h *sparse.ConvergenceReport) {
	if h == nil {
		return
	}
	scope.Counter("job_health_reports_total").Add(1)
	if h.CondEstimate > 0 {
		scope.Gauge("job_health_cond_estimate").Set(h.CondEstimate)
		scope.Gauge("job_health_lambda_min").Set(h.LambdaMin)
		scope.Gauge("job_health_lambda_max").Set(h.LambdaMax)
	}
	if h.ReductionFactor > 0 {
		scope.Gauge("job_health_reduction_factor").Set(h.ReductionFactor)
	}
	if h.Stagnation {
		scope.Counter("job_health_stagnation_total").Add(1)
	}
	if h.Plateau {
		scope.Counter("job_health_plateau_total").Add(1)
	}
	if h.Degradation {
		scope.Counter("job_health_degradation_total").Add(1)
	}
	if ex.Residuals == nil {
		ex.Residuals = h.Residuals
	}
}

// rasterizeLoads converts per-layer, per-core activity factors into
// per-layer, per-cell load currents at nominal Vdd. activities must be
// Layers x NumCores.
func (p *PDN) rasterizeLoads(activities [][]float64) ([][]float64, error) {
	cfg := p.Cfg
	if len(activities) != cfg.Layers {
		return nil, fmt.Errorf("pdngrid: need %d layers of activities, got %d", cfg.Layers, len(activities))
	}
	loads := make([][]float64, cfg.Layers)
	for l := range activities {
		pm, err := cfg.Chip.PowerMap(activities[l])
		if err != nil {
			return nil, fmt.Errorf("pdngrid: layer %d: %w", l, err)
		}
		cells, err := p.raster.Distribute(p.fp.Blocks, pm)
		if err != nil {
			return nil, err
		}
		for i := range cells {
			cells[i] /= cfg.Params.Vdd // watts -> amperes at nominal Vdd
		}
		loads[l] = cells
	}
	return loads, nil
}

// solveFresh is the historical solve loop: every outer pass rebuilds the
// netlist, re-sorts the assembly, reorders and refactors from scratch.
func (p *PDN) solveFresh(ctx context.Context, loads [][]float64, freqs []float64, ctrl sc.Control, maxOuter int) (*Result, error) {
	cfg := p.Cfg
	var res *Result
	var prevJ []float64
	totalIters := 0
	outerDone := 0
	didConverge := maxOuter == 1
	lastDelta := 0.0
	for outer := 0; outer < maxOuter; outer++ {
		var err error
		res, err = p.solveOnce(ctx, loads, freqs, outer)
		if err != nil {
			return nil, err
		}
		totalIters += res.SolverIterations
		outerDone++
		if maxOuter == 1 {
			break
		}
		// Update per-converter frequencies from the solved currents.
		converged := prevJ != nil
		lastDelta = 0
		for i, j := range res.ConverterCurrents {
			freqs[i] = ctrl.Freq(cfg.Converter, j)
			if prevJ != nil {
				d := math.Abs(j - prevJ[i])
				if rel := d / (math.Abs(j) + 1e-6); rel > lastDelta {
					lastDelta = rel
				}
				if d > 1e-4*(math.Abs(j)+1e-6) {
					converged = false
				}
			}
		}
		if converged {
			didConverge = true
			break
		}
		prevJ = append(prevJ[:0], res.ConverterCurrents...)
	}
	if !didConverge {
		outerStall(outerDone, lastDelta)
	}
	res.OuterIterations = outerDone
	res.TotalSolverIterations = totalIters
	mOuterIters.Add(int64(outerDone))
	telemetry.ScopeFrom(ctx).Counter("job_outer_iterations_total").Add(int64(outerDone))
	return res, nil
}

// engine pairs one assembled network with its compiled solve plan.
type engine struct {
	asm  *assembled
	prep *circuit.Prepared
}

// applyLoads writes this call's per-cell load currents into the engine.
func (e *engine) applyLoads(loads [][]float64, nCells int) {
	for l := range loads {
		for c, amps := range loads[l] {
			e.prep.SetLoad(e.asm.loadIDs[l*nCells+c], amps)
		}
	}
}

// applyConverters writes the converter operating point for the given
// per-converter switching frequencies into the engine.
func (e *engine) applyConverters(cfg Config, freqs []float64) {
	for i, id := range e.asm.convIDs {
		f := cfg.Converter.FSw
		if len(freqs) > 0 {
			f = freqs[i]
		}
		rs := cfg.Converter.RSeries(f)
		gPar := cfg.Converter.ParasiticShuntG(f, 2*cfg.Params.Vdd)
		e.prep.SetConverter(id, rs, gPar)
	}
}

// solvePrepared runs the solve (and any closed-loop outer iterations) on
// the PDN's cached prepared engine, building it on the first call. With a
// cold start and no warm starts the results are bit-identical to
// solveFresh; warm starts change only the iterative-solver trajectory, not
// the sparsity structure or the converged answer beyond solver tolerance.
func (p *PDN) solvePrepared(ctx context.Context, loads [][]float64, freqs []float64, ctrl sc.Control, maxOuter int) (*Result, error) {
	cfg := p.Cfg

	sp := telemetry.StartSpanCtx(ctx, "pdngrid.solve")
	defer sp.End()
	scope := telemetry.ScopeFrom(ctx)

	eng := p.takeEngine()
	if eng == nil {
		spA := sp.Start("assemble")
		tA := telemetry.Now()
		asm := p.assemble(loads, freqs, nil)
		prep, err := asm.net.Compile(cfg.Solve)
		mAssembleSeconds.Since(tA)
		spA.End()
		if err != nil {
			return nil, fmt.Errorf("pdngrid: %w", err)
		}
		eng = &engine{asm: asm, prep: prep}
		mEngineBuilds.Add(1)
	} else {
		// Structure is shared across calls; only values differ.
		mEngineReuses.Add(1)
		spA := sp.Start("restamp")
		tA := telemetry.Now()
		eng.applyLoads(loads, p.nCells)
		eng.applyConverters(cfg, freqs)
		mAssembleSeconds.Since(tA)
		spA.End()
	}
	defer p.putEngine(eng)

	warm := !cfg.NoWarmStart
	var res *Result
	var prevJ, x0 []float64
	var outerDeltas []float64 // per-pass max relative converter-current change (recorder on)
	recording := telemetry.FlightRecorderEnabled()
	totalIters := 0
	outerDone := 0
	firstIters := 0
	didConverge := maxOuter == 1
	lastDelta := 0.0
	for outer := 0; outer < maxOuter; outer++ {
		if outer > 0 {
			eng.applyConverters(cfg, freqs)
		}
		spS := sp.Start("linear-solve")
		var tJob time.Time
		if scope != nil {
			tJob = time.Now()
		}
		tS := telemetry.Now()
		sol, err := eng.prep.SolveSpan(spS, x0)
		mSolveSeconds.Since(tS)
		spS.End()
		if err != nil {
			return nil, solveFailure(outer, eng.asm.net.NumNodes(), x0 != nil, outerDeltas, err)
		}
		mSolves.Add(1)
		mNodesHist.Observe(float64(eng.asm.net.NumNodes()))
		if scope != nil {
			recordJobSolve(scope, spS, time.Since(tJob).Seconds(), sol)
		}

		res = p.extractResult(eng.asm, sol)
		totalIters += res.SolverIterations
		if outer == 0 {
			firstIters = res.SolverIterations
		} else if warm {
			if saved := int64(firstIters - res.SolverIterations); saved > 0 {
				mWarmIterSaved.Add(saved)
			}
		}
		outerDone++
		if maxOuter == 1 {
			break
		}
		// Update per-converter frequencies from the solved currents.
		converged := prevJ != nil
		lastDelta = 0
		for i, j := range res.ConverterCurrents {
			freqs[i] = ctrl.Freq(cfg.Converter, j)
			if prevJ != nil {
				d := math.Abs(j - prevJ[i])
				if rel := d / (math.Abs(j) + 1e-6); rel > lastDelta {
					lastDelta = rel
				}
				if d > 1e-4*(math.Abs(j)+1e-6) {
					converged = false
				}
			}
		}
		if recording && prevJ != nil {
			outerDeltas = append(outerDeltas, lastDelta)
		}
		if converged {
			didConverge = true
			break
		}
		prevJ = append(prevJ[:0], res.ConverterCurrents...)
		if warm {
			x0 = sol.Voltages()
		}
	}
	if !didConverge {
		outerStall(outerDone, lastDelta)
	}
	res.OuterIterations = outerDone
	res.TotalSolverIterations = totalIters
	mOuterIters.Add(int64(outerDone))
	scope.Counter("job_outer_iterations_total").Add(int64(outerDone))
	return res, nil
}

// dynSpec adds dynamic elements for transient analysis.
type dynSpec struct {
	scale        func(t float64) float64 // load scaling over time
	decapPerCell float64                 // on-die decap per mesh cell per layer (F)
	pkgL         float64                 // package inductance per polarity (H)
}

// assembled is a built MNA network plus the element indices needed to
// extract metrics.
type assembled struct {
	net      *circuit.Netlist
	node     func(layer, mesh, cell int) int
	padRes   []circuit.ResistorID
	padRefs  []lumpRef
	tsvRes   []circuit.ResistorID
	tsvRefs  []lumpRef
	tvRes    []circuit.ResistorID
	tvRefs   []lumpRef
	convIDs  []circuit.ConverterID
	loadIDs  []circuit.LoadID // static DC path only: one per layer×cell
	vddBoard int
	gndBoard int
}

// assemble builds the full MNA network for the scenario. dyn may be nil
// (pure DC network).
func (p *PDN) assemble(loads [][]float64, freqs []float64, dyn *dynSpec) *assembled {
	cfg := p.Cfg
	prm := cfg.Params
	nx, ny := prm.GridNx, prm.GridNy
	nCells := p.nCells
	L := cfg.Layers
	segR := prm.SegR()

	net := circuit.New()
	net.Nodes(L * 2 * nCells)
	// node(layer, 0) = Vdd mesh, node(layer, 1) = ground mesh.
	node := func(layer, mesh, cell int) int { return (layer*2+mesh)*nCells + cell }
	a := &assembled{net: net, node: node}

	// Lateral mesh segments for every layer and both meshes.
	for l := 0; l < L; l++ {
		for mesh := 0; mesh < 2; mesh++ {
			for iy := 0; iy < ny; iy++ {
				for ix := 0; ix < nx; ix++ {
					c := iy*nx + ix
					if ix+1 < nx {
						net.AddResistor(node(l, mesh, c), node(l, mesh, c+1), segR)
					}
					if iy+1 < ny {
						net.AddResistor(node(l, mesh, c), node(l, mesh, c+nx), segR)
					}
				}
			}
		}
	}

	// Loads: per cell, between the layer's Vdd and ground meshes. With a
	// dynamic spec the loads follow amps·scale(t); on-die decoupling
	// capacitance sits in parallel with every cell load. On the static DC
	// path every cell gets a load element even at 0 A (a zero source is
	// electrically inert and bit-neutral in the RHS) so the network
	// structure is invariant across activity patterns — the prepared
	// engine then reuses one compiled structure for all of them.
	for l := 0; l < L; l++ {
		for c, amps := range loads[l] {
			if dyn != nil {
				if amps > 0 {
					if dyn.scale != nil {
						base := amps
						net.AddTransientLoad(node(l, 0, c), node(l, 1, c), func(t float64) float64 {
							return base * dyn.scale(t)
						})
					} else {
						net.AddLoad(node(l, 0, c), node(l, 1, c), amps)
					}
				}
				if dyn.decapPerCell > 0 {
					net.AddCapacitor(node(l, 0, c), node(l, 1, c), dyn.decapPerCell)
				}
			} else {
				id := net.AddLoad(node(l, 0, c), node(l, 1, c), amps)
				a.loadIDs = append(a.loadIDs, id)
			}
		}
	}

	// Board-side nodes: the package resistance (and, in transient runs,
	// the package inductance) sits between the ideal regulator rails and
	// the pad array, so the regular PDN pays for its N-fold off-chip
	// current while the V-S PDN does not.
	pkgR := prm.PkgR
	if pkgR <= 0 {
		pkgR = 1e-9 // effectively ideal, keeps the network well posed
	}
	vddBoard := net.Node()
	gndBoard := net.Node()
	a.vddBoard, a.gndBoard = vddBoard, gndBoard
	// tieBoard attaches a board node to its rail, optionally through the
	// package inductance.
	tieBoard := func(board int, rail float64) {
		if dyn != nil && dyn.pkgL > 0 {
			mid := net.Node()
			net.AddRailTie(mid, pkgR, rail)
			net.AddInductor(mid, board, dyn.pkgL)
		} else {
			net.AddRailTie(board, pkgR, rail)
		}
	}

	padRes := &a.padRes
	padRefs := &a.padRefs
	tsvRes := &a.tsvRes
	tsvResRefs := &a.tsvRefs
	tvRes := &a.tvRes
	tvRefs := &a.tvRefs
	convIDs := &a.convIDs

	switch cfg.Kind {
	case Regular:
		tieBoard(vddBoard, prm.Vdd)
		tieBoard(gndBoard, 0)
		// C4 pads on the bottom layer.
		for _, s := range p.padSites {
			board, mesh := gndBoard, 1
			if s.vdd {
				board, mesh = vddBoard, 0
			}
			id := net.AddResistor(board, node(0, mesh, s.cell), prm.PadR/float64(s.count))
			*padRes = append(*padRes, id)
			*padRefs = append(*padRefs, lumpRef{count: s.count, segs: 1})
		}
		// TSVs between adjacent layers: Vdd mesh to Vdd mesh, ground to
		// ground.
		for l := 1; l < L; l++ {
			for _, s := range p.tsvSites {
				mesh := 1
				if s.vdd {
					mesh = 0
				}
				id := net.AddResistor(node(l-1, mesh, s.cell), node(l, mesh, s.cell), prm.TSVR/float64(s.count))
				*tsvRes = append(*tsvRes, id)
				*tsvResRefs = append(*tsvResRefs, lumpRef{count: s.count, segs: 1, layer: l - 1})
			}
		}

	case VoltageStacked:
		vTop := float64(L) * prm.Vdd
		tieBoard(vddBoard, vTop)
		tieBoard(gndBoard, 0)
		// Ground pads tie the bottom ground mesh to the board ground.
		// Each Vdd pad feeds the TOP Vdd mesh at N·Vdd through a single
		// through-via (the paper connects "each Vdd C4 pad with only one
		// TSV" to the top layer).
		for _, s := range p.padSites {
			if s.vdd {
				r := (prm.PadR + prm.TSVR) / float64(s.count)
				id := net.AddResistor(vddBoard, node(L-1, 0, s.cell), r)
				*tvRes = append(*tvRes, id)
				*tvRefs = append(*tvRefs, lumpRef{count: s.count, segs: 1})
			} else {
				id := net.AddResistor(gndBoard, node(0, 1, s.cell), prm.PadR/float64(s.count))
				*padRes = append(*padRes, id)
				*padRefs = append(*padRefs, lumpRef{count: s.count, segs: 1})
			}
		}
		// Inter-rail TSVs: layer l's ground mesh is layer l-1's Vdd mesh.
		for l := 1; l < L; l++ {
			for _, s := range p.tsvSites {
				id := net.AddResistor(node(l, 1, s.cell), node(l-1, 0, s.cell), prm.TSVR/float64(s.count))
				*tsvRes = append(*tsvRes, id)
				*tsvResRefs = append(*tsvResRefs, lumpRef{count: s.count, segs: 1, layer: l - 1})
			}
		}
		// SC converters on every intermediate rail k = 1..L-1:
		// top terminal on rail k+1 (layer k's Vdd mesh), bottom on rail
		// k-1 (layer k-1's ground mesh), output on rail k (layer k-1's
		// Vdd mesh, TSV-tied to layer k's ground mesh).
		ci := 0
		for k := 1; k < L; k++ {
			for _, cell := range p.convCell {
				f := cfg.Converter.FSw
				if len(freqs) > 0 {
					f = freqs[ci]
				}
				rs := cfg.Converter.RSeries(f)
				gPar := cfg.Converter.ParasiticShuntG(f, 2*prm.Vdd)
				id := net.AddConverter2to1(
					node(k, 0, cell),   // top: rail k+1
					node(k-1, 1, cell), // bottom: rail k-1
					node(k-1, 0, cell), // mid: rail k
					rs, gPar)
				*convIDs = append(*convIDs, id)
				ci++
			}
		}
	}
	return a
}

func (p *PDN) solveOnce(ctx context.Context, loads [][]float64, freqs []float64, outer int) (*Result, error) {
	cfg := p.Cfg

	sp := telemetry.StartSpanCtx(ctx, "pdngrid.solve")
	defer sp.End()
	scope := telemetry.ScopeFrom(ctx)

	spA := sp.Start("assemble")
	tA := telemetry.Now()
	asm := p.assemble(loads, freqs, nil)
	mAssembleSeconds.Since(tA)
	spA.End()

	spS := sp.Start("linear-solve")
	var tJob time.Time
	if scope != nil {
		tJob = time.Now()
	}
	tS := telemetry.Now()
	sol, err := asm.net.Solve(cfg.Solve)
	mSolveSeconds.Since(tS)
	spS.End()
	if err != nil {
		return nil, solveFailure(outer, asm.net.NumNodes(), false, nil, err)
	}
	mSolves.Add(1)
	mNodesHist.Observe(float64(asm.net.NumNodes()))
	if scope != nil {
		recordJobSolve(scope, spS, time.Since(tJob).Seconds(), sol)
	}

	return p.extractResult(asm, sol), nil
}

// extractResult derives all scenario metrics from a solved network. It is
// shared by the fresh and prepared paths, so a bit-identical Solution
// yields a bit-identical Result.
func (p *PDN) extractResult(asm *assembled, sol *circuit.Solution) *Result {
	cfg := p.Cfg
	prm := cfg.Params
	nCells := p.nCells
	L := cfg.Layers
	node := asm.node

	res := &Result{
		SolverIterations:      sol.Iterations,
		SolverResidual:        sol.Residual,
		OuterIterations:       1,
		TotalSolverIterations: sol.Iterations,
	}

	// Voltage noise metrics.
	res.CellVoltages = make([][]float64, L)
	res.MaxIRDropFrac = math.Inf(-1)
	for l := 0; l < L; l++ {
		cv := make([]float64, nCells)
		for c := 0; c < nCells; c++ {
			v := sol.V(node(l, 0, c)) - sol.V(node(l, 1, c))
			cv[c] = v
			droop := (prm.Vdd - v) / prm.Vdd
			if droop > res.MaxIRDropFrac {
				res.MaxIRDropFrac = droop
				res.WorstLayer = l
			}
			if rise := -droop; rise > res.MaxRiseFrac {
				res.MaxRiseFrac = rise
			}
		}
		res.CellVoltages[l] = cv
	}

	// Conductor currents for EM.
	for i, id := range asm.padRes {
		expandEM(&res.PadCurrents, sol.ResistorCurrent(id), asm.padRefs[i], asm.padRefs[i].count)
	}
	for i, id := range asm.tvRes {
		cur := sol.ResistorCurrent(id)
		// A through-via chain stresses both its C4 pad and its TSV.
		expandEM(&res.PadCurrents, cur, lumpRef{count: asm.tvRefs[i].count, segs: 1}, asm.tvRefs[i].count)
		before := len(res.TSVCurrents)
		expandEM(&res.TSVCurrents, cur, asm.tvRefs[i], prm.CrowdEff(asm.tvRefs[i].count))
		for k := before; k < len(res.TSVCurrents); k++ {
			res.TSVLayers = append(res.TSVLayers, asm.tvRefs[i].layer)
		}
	}
	for i, id := range asm.tsvRes {
		before := len(res.TSVCurrents)
		expandEM(&res.TSVCurrents, sol.ResistorCurrent(id), asm.tsvRefs[i], prm.CrowdEff(asm.tsvRefs[i].count))
		for k := before; k < len(res.TSVCurrents); k++ {
			res.TSVLayers = append(res.TSVLayers, asm.tsvRefs[i].layer)
		}
	}

	// Converter state.
	maxLoad := cfg.Converter.MaxLoad
	for _, id := range asm.convIDs {
		j := sol.ConverterOutputCurrent(id)
		res.ConverterCurrents = append(res.ConverterCurrents, j)
		if a := math.Abs(j); a > res.MaxConverterCurrent {
			res.MaxConverterCurrent = a
		}
	}
	if cfg.Kind == VoltageStacked && res.MaxConverterCurrent > maxLoad*(1+1e-9) {
		res.OverLimit = true
	}

	// Power accounting.
	res.InputPower = sol.TotalInputPower()
	res.LoadPower = sol.TotalLoadPower()
	res.ConverterLoss = sol.TotalConverterLoss()
	res.WireLoss = sol.TotalResistorLoss()
	if res.InputPower > 0 {
		res.Efficiency = res.LoadPower / res.InputPower
	}
	return res
}

// lumpRef describes how a lumped element expands into EM conductors: count
// parallel current paths, each consisting of segs series conductors
// (through-vias span several layer crossings), located at silicon layer
// `layer` (lower end) for temperature-aware EM.
type lumpRef struct {
	count int
	segs  int
	layer int
}

// expandEM appends the per-conductor currents of a lumped site: the lump
// carries total current cur through eff effectively-conducting conductors
// (eff <= ref.count when current crowding shields part of the cluster;
// shielded conductors are unstressed and omitted from the EM population).
// Each conducting path consists of ref.segs series EM conductors.
func expandEM(dst *[]float64, cur float64, ref lumpRef, eff int) {
	if eff < 1 {
		eff = 1
	}
	per := math.Abs(cur) / float64(eff)
	for k := 0; k < eff*ref.segs; k++ {
		*dst = append(*dst, per)
	}
}

// RegularSCEfficiency models the Fig. 8 baseline: a regular (parallel)
// PDN in which on-chip SC converters provide 100% of the load current from
// a 2·Vdd input rail. Because the converters process the full current
// rather than the inter-layer differential, both conduction and parasitic
// losses apply to everything the chip draws. Returns system efficiency for
// the interleaved imbalance pattern.
func RegularSCEfficiency(cfg Config, imbalance float64) (float64, error) {
	if cfg.Chip == nil {
		return 0, fmt.Errorf("pdngrid: nil chip")
	}
	if cfg.ConvertersPerCore < 1 {
		return 0, fmt.Errorf("pdngrid: baseline needs converters")
	}
	ctrl := cfg.Control
	if ctrl == nil {
		ctrl = sc.OpenLoop{}
	}
	vdd := cfg.Params.Vdd
	core := cfg.Chip.Core
	nCores := cfg.Chip.NumCores()
	var loadP, inP float64
	for l := 0; l < cfg.Layers; l++ {
		act := interleavedActivity(l, imbalance)
		pCore := core.Total(act, vdd, core.FClk)
		iConv := pCore / vdd / float64(cfg.ConvertersPerCore)
		op := sc.Evaluate(cfg.Converter, ctrl, 2*vdd, iConv)
		// Each converter delivers POut at its drooped output and draws the
		// ideal-transformer power plus parasitics from the 2·Vdd rail.
		nConv := float64(nCores * cfg.ConvertersPerCore)
		loadP += nConv * op.POut
		inP += nConv * (op.VNoLoad*op.ILoad + op.PParasitic)
	}
	if inP <= 0 {
		return 0, fmt.Errorf("pdngrid: degenerate baseline")
	}
	return loadP / inP, nil
}
