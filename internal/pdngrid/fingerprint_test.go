package pdngrid

import (
	"encoding/json"
	"reflect"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/power"
	"voltstack/internal/sc"
)

func fpConfig() Config {
	conv := sc.Default28nm()
	conv.Cap = sc.Trench
	return Config{
		Kind:              VoltageStacked,
		Layers:            4,
		Chip:              power.Example16Core(),
		Params:            DefaultParams(),
		TSV:               FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 4,
		Converter:         conv,
	}
}

// Solver-affecting knobs must each change the fingerprint; equal configs
// must agree. (Byte-level key stability is pinned in rescache's golden
// test; here we check the field coverage contract.)
func TestCacheFingerprintSensitivity(t *testing.T) {
	base := fpConfig()
	if !reflect.DeepEqual(base.CacheFingerprint(), fpConfig().CacheFingerprint()) {
		t.Fatal("identical configs fingerprint differently")
	}
	mutations := map[string]func(*Config){
		"kind":       func(c *Config) { c.Kind = Regular },
		"layers":     func(c *Config) { c.Layers = 8 },
		"grid":       func(c *Config) { c.Params.GridNx = 16 },
		"tsv":        func(c *Config) { c.TSV = DenseTSV() },
		"pads":       func(c *Config) { c.PadPowerFraction = 1.0 },
		"converters": func(c *Config) { c.ConvertersPerCore = 8 },
		"fsw":        func(c *Config) { c.Converter.FSw *= 2 },
		"solver":     func(c *Config) { c.Solve.Solver = circuit.Direct },
		"tol":        func(c *Config) { c.Solve.Tol = 1e-6 },
		"maxiter":    func(c *Config) { c.Solve.MaxIter = 7 },
		"fresh":      func(c *Config) { c.ForceFreshSolve = true },
		"warmstart":  func(c *Config) { c.NoWarmStart = true },
		"control":    func(c *Config) { c.Control = sc.ClosedLoop{} },
		"vdd":        func(c *Config) { c.Params.Vdd = 0.9 },
	}
	for name, mutate := range mutations {
		c := fpConfig()
		mutate(&c)
		if reflect.DeepEqual(c.CacheFingerprint(), base.CacheFingerprint()) {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

// Converter parameters are circuit elements only in the V-S PDN; a regular
// PDN's key must not churn when they change.
func TestCacheFingerprintRegularIgnoresConverter(t *testing.T) {
	a := fpConfig()
	a.Kind = Regular
	b := a
	b.Converter.FSw *= 2
	b.ConvertersPerCore = 99
	if !reflect.DeepEqual(a.CacheFingerprint(), b.CacheFingerprint()) {
		t.Error("regular-PDN fingerprint depends on unused converter parameters")
	}
}

// The fingerprint must stay JSON-serializable (the cache hashes its JSON
// encoding); an interface or function sneaking in would break keying.
func TestCacheFingerprintSerializable(t *testing.T) {
	if _, err := json.Marshal(fpConfig().CacheFingerprint()); err != nil {
		t.Fatalf("fingerprint not JSON-serializable: %v", err)
	}
}
