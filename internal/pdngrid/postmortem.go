// Solve-failure post-mortems. When a PDN solve dies — PCG breakdown,
// non-convergence, factorization failure — the error alone ("residual
// 3.2e-03 after 400 iterations") rarely says why. With the flight recorder
// on, the failed linear solve carries its residual trajectory
// (sparse.TraceFromError); this file packages that trajectory together with
// the PDN-level context (outer pass, node count, warm-start origin,
// closed-loop convergence deltas) into a JSON artifact written through
// telemetry.DumpPostmortem, and emits a structured event pointing at it.
package pdngrid

import (
	"fmt"
	"log/slog"

	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// SolvePostmortem is the JSON artifact describing one failed PDN solve.
type SolvePostmortem struct {
	Stage string `json:"stage"` // "linear-solve"
	// OuterPass is the closed-loop pass (0-based) the failure happened in.
	OuterPass int  `json:"outer_pass"`
	Nodes     int  `json:"nodes"`
	WarmStart bool `json:"warm_start"` // solve started from the previous outer iterate
	// OuterDeltas holds the max relative converter-current change after
	// each completed outer pass (closed loop only, recorder on only).
	OuterDeltas []float64 `json:"outer_deltas,omitempty"`
	// SolveTrace is the failed linear solve's residual trajectory, present
	// when the flight recorder was on.
	SolveTrace *sparse.SolveTrace `json:"solve_trace,omitempty"`
	Error      string             `json:"error"`
}

// solveFailure wraps a linear-solve error with pdngrid context, emits the
// failure event, and — when a post-mortem directory is configured — dumps
// the artifact and appends its path to the error message.
func solveFailure(outer, nodes int, warm bool, deltas []float64, err error) error {
	if telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelError, "pdngrid: linear solve failed",
			slog.Int("outer_pass", outer),
			slog.Int("nodes", nodes),
			slog.Bool("warm_start", warm),
			slog.String("error", err.Error()))
	}
	wrapped := fmt.Errorf("pdngrid: %w", err)
	if telemetry.PostmortemEnabled() {
		pm := &SolvePostmortem{
			Stage:       "linear-solve",
			OuterPass:   outer,
			Nodes:       nodes,
			WarmStart:   warm,
			OuterDeltas: deltas,
			SolveTrace:  sparse.TraceFromError(err),
			Error:       err.Error(),
		}
		if path, derr := telemetry.DumpPostmortem("pdngrid-solve", pm); derr == nil && path != "" {
			wrapped = fmt.Errorf("pdngrid: %w (post-mortem: %s)", err, path)
		}
	}
	return wrapped
}

// outerStall reports a closed-loop frequency iteration that exhausted its
// pass budget without the converter currents settling.
func outerStall(passes int, lastDelta float64) {
	mOuterStalls.Add(1)
	if telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelWarn, "pdngrid: closed-loop outer iteration stalled",
			slog.Int("passes", passes),
			slog.Float64("last_max_rel_delta", lastDelta))
	}
}
