// Package pdngrid is the system-level 3D-IC power-delivery-network model at
// the heart of the paper: a VoltSpot-style pre-RTL grid model extended to
// many-layer stacks, supporting both the regular (parallel) PDN of Fig. 4a
// and the charge-recycled voltage-stacked (V-S) PDN of Fig. 4b.
//
// Each silicon layer carries a Vdd mesh and a ground mesh of resistive
// segments; loads are ideal current sources between the two meshes of
// their layer (the VoltSpot load model); C4 pads tie the bottom meshes to
// the board rails; TSV arrays connect meshes vertically; in the V-S
// configuration, layer i's ground mesh is TSV-connected to layer i-1's
// Vdd mesh, the top Vdd mesh is fed at N·Vdd through one through-via per
// Vdd pad, and push-pull SC converters regulate every intermediate rail.
//
// Solving the network yields on-chip IR drop, per-pad and per-TSV currents
// (the inputs to the EM lifetime model), converter operating points, and
// system power efficiency.
package pdngrid

import (
	"fmt"
	"math"

	"voltstack/internal/units"
)

// Params holds the PDN modeling parameters of the paper's Table 1 plus the
// mesh discretization.
type Params struct {
	PadPitch    float64 // C4 pad pitch (m)
	PadR        float64 // single C4 pad resistance (Ω)
	TSVR        float64 // single TSV resistance (Ω)
	TSVDiameter float64 // TSV diameter (m)
	TSVMinPitch float64 // minimum TSV pitch (m)
	TSVKoZSide  float64 // keep-out-zone side length (m)

	// PkgR is the lumped package/board resistance between the voltage
	// regulator module and the C4 pad array, per supply polarity (the
	// current loop sees twice this value). This is the component that
	// penalizes the regular PDN's N-fold off-chip current.
	PkgR float64

	// GridRSeg is the lateral resistance of one mesh segment of the
	// on-chip power grid at the default 32x32 discretization; it is scaled
	// with resolution so coarser/finer meshes model the same metal.
	GridRSeg    float64
	GridNx      int // mesh columns
	GridNy      int // mesh rows
	RefNx       int // resolution at which GridRSeg is specified
	Vdd         float64
	TempCelsius float64 // uniform die temperature for EM evaluation

	// TSV current crowding for EM: of a cluster of m TSVs sharing one mesh
	// cell, only about Coef·m^Exp effectively carry the cluster's vertical
	// current — the rest are shielded by the lateral spreading resistance
	// of the local metal. This sub-linear utilization reproduces the
	// paper's observation that adding more TSVs improves the regular
	// PDN's EM lifetime only marginally. Coef <= 0 disables crowding.
	TSVCrowdCoef float64
	TSVCrowdExp  float64
}

// DefaultParams returns Table 1 of the paper plus calibrated mesh values.
func DefaultParams() Params {
	return Params{
		PadPitch:     200 * units.Micrometer,
		PadR:         10 * units.Milliohm,
		TSVR:         44.539 * units.Milliohm,
		TSVDiameter:  5 * units.Micrometer,
		TSVMinPitch:  10 * units.Micrometer,
		TSVKoZSide:   9.88 * units.Micrometer,
		PkgR:         0.35 * units.Milliohm,
		GridRSeg:     0.040,
		GridNx:       32,
		GridNy:       32,
		RefNx:        32,
		Vdd:          1.0,
		TempCelsius:  85,
		TSVCrowdCoef: 2.0,
		TSVCrowdExp:  0.2,
	}
}

// CrowdEff returns the effective number of TSVs of an m-TSV cluster that
// carry its current, per the crowding model.
func (p Params) CrowdEff(m int) int {
	if p.TSVCrowdCoef <= 0 || m <= 1 {
		return m
	}
	eff := int(math.Round(p.TSVCrowdCoef * math.Pow(float64(m), p.TSVCrowdExp)))
	if eff < 1 {
		eff = 1
	}
	if eff > m {
		eff = m
	}
	return eff
}

// SegR returns the mesh segment resistance at the configured resolution:
// halving the cell size halves the per-segment resistance (same metal).
func (p Params) SegR() float64 {
	if p.RefNx <= 0 {
		return p.GridRSeg
	}
	return p.GridRSeg * float64(p.RefNx) / float64(p.GridNx)
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.PadPitch <= 0 || p.PadR <= 0:
		return fmt.Errorf("pdngrid: invalid pad parameters")
	case p.TSVR <= 0 || p.TSVKoZSide <= 0:
		return fmt.Errorf("pdngrid: invalid TSV parameters")
	case p.GridRSeg <= 0 || p.GridNx < 2 || p.GridNy < 2:
		return fmt.Errorf("pdngrid: invalid mesh parameters")
	case p.Vdd <= 0:
		return fmt.Errorf("pdngrid: invalid Vdd")
	}
	return nil
}

// TSVTopology is one of the paper's Table 2 TSV allocation scenarios.
// PerCore counts power-delivery TSVs per core (Vdd plus ground).
type TSVTopology struct {
	Name     string
	PerCore  int
	EffPitch float64 // effective pitch (m), reported in Table 2
}

// The three Table 2 design points.
func DenseTSV() TSVTopology {
	return TSVTopology{Name: "Dense", PerCore: 6650, EffPitch: 20 * units.Micrometer}
}
func SparseTSV() TSVTopology {
	return TSVTopology{Name: "Sparse", PerCore: 1675, EffPitch: 40 * units.Micrometer}
}
func FewTSV() TSVTopology {
	return TSVTopology{Name: "Few", PerCore: 110, EffPitch: 240 * units.Micrometer}
}

// AreaOverheadFrac returns the fraction of core area consumed by the
// topology's keep-out zones (Table 2's "Total Area Overhead").
func (t TSVTopology) AreaOverheadFrac(coreArea, kozSide float64) float64 {
	return float64(t.PerCore) * kozSide * kozSide / coreArea
}

// VddPerCore returns the number of Vdd TSVs per core (half the total).
func (t TSVTopology) VddPerCore() int { return t.PerCore / 2 }
