package pdngrid

import (
	"bytes"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/rescache"
	"voltstack/internal/sc"
)

// fuzzedConfig derives a Config from a tuple of raw fuzz inputs, mapping
// each input injectively onto one result-affecting field. Returning the
// derived values alongside lets the fuzz target decide whether two raw
// tuples landed on the same logical configuration.
type fuzzTuple struct {
	Kind     Kind
	Layers   int
	GridNx   int
	PadFrac  float64
	NConv    int
	FSwScale float64
	Solver   circuit.SolverKind
	Tol      float64
	Closed   bool
	NoWarm   bool
}

func deriveTuple(kindRaw, layersRaw, gridRaw, nConvRaw, solverRaw uint8, padRaw, fswRaw, tolRaw uint16, closed, noWarm bool) fuzzTuple {
	return fuzzTuple{
		Kind:     Kind(int(kindRaw) % 2),
		Layers:   1 + int(layersRaw)%8,
		GridNx:   4 + int(gridRaw)%29,
		PadFrac:  0.1 + float64(padRaw%900)/1000, // [0.1, 1.0)
		NConv:    1 + int(nConvRaw)%8,
		FSwScale: 0.5 + float64(fswRaw%400)/100, // [0.5, 4.5)
		Solver:   circuit.SolverKind(int(solverRaw) % 6),
		Tol:      1e-10 * float64(1+tolRaw%1000),
		Closed:   closed,
		NoWarm:   noWarm,
	}
}

func (ft fuzzTuple) config() Config {
	cfg := fpConfig()
	cfg.Kind = ft.Kind
	cfg.Layers = ft.Layers
	cfg.Params.GridNx = ft.GridNx
	cfg.PadPowerFraction = ft.PadFrac
	cfg.ConvertersPerCore = ft.NConv
	cfg.Converter.FSw *= ft.FSwScale
	cfg.Solve.Solver = ft.Solver
	cfg.Solve.Tol = ft.Tol
	if ft.Closed {
		cfg.Control = sc.ClosedLoop{}
	}
	cfg.NoWarmStart = ft.NoWarm
	return cfg
}

// sameLogicalConfig reports whether two tuples produce configurations the
// cache is allowed to treat as one entry. Converter-side knobs are not key
// material for the Regular PDN (no converters in the circuit), mirroring
// CacheFingerprint's documented contract.
func sameLogicalConfig(a, b fuzzTuple) bool {
	if a.Kind != b.Kind || a.Layers != b.Layers || a.GridNx != b.GridNx ||
		a.PadFrac != b.PadFrac || a.Solver != b.Solver || a.Tol != b.Tol ||
		a.Closed != b.Closed || a.NoWarm != b.NoWarm {
		return false
	}
	if a.Kind == VoltageStacked && (a.NConv != b.NConv || a.FSwScale != b.FSwScale) {
		return false
	}
	return true
}

// FuzzCacheFingerprint drives the cache-keying contract from both sides:
// distinct result-affecting configurations must never collide to one key,
// and one configuration must always re-encode to the identical bytes (the
// cache's correctness rests on exactly these two properties — a collision
// serves a wrong result, an instability misses every warm cache).
func FuzzCacheFingerprint(f *testing.F) {
	f.Add(uint8(1), uint8(4), uint8(0), uint8(4), uint8(0), uint16(400), uint16(100), uint16(99), false, false,
		uint8(1), uint8(4), uint8(0), uint8(4), uint8(0), uint16(400), uint16(100), uint16(99), false, false)
	f.Add(uint8(0), uint8(2), uint8(5), uint8(1), uint8(2), uint16(100), uint16(50), uint16(1), true, false,
		uint8(1), uint8(2), uint8(5), uint8(1), uint8(2), uint16(100), uint16(50), uint16(1), true, false)
	f.Add(uint8(1), uint8(7), uint8(28), uint8(7), uint8(5), uint16(899), uint16(399), uint16(999), true, true,
		uint8(1), uint8(7), uint8(28), uint8(7), uint8(4), uint16(899), uint16(399), uint16(999), true, true)
	f.Fuzz(func(t *testing.T,
		aKind, aLayers, aGrid, aNConv, aSolver uint8, aPad, aFsw, aTol uint16, aClosed, aNoWarm bool,
		bKind, bLayers, bGrid, bNConv, bSolver uint8, bPad, bFsw, bTol uint16, bClosed, bNoWarm bool) {
		ta := deriveTuple(aKind, aLayers, aGrid, aNConv, aSolver, aPad, aFsw, aTol, aClosed, aNoWarm)
		tb := deriveTuple(bKind, bLayers, bGrid, bNConv, bSolver, bPad, bFsw, bTol, bClosed, bNoWarm)

		encA1, err := rescache.CanonicalJSON(ta.config().CacheFingerprint())
		if err != nil {
			t.Fatalf("tuple A does not encode: %+v: %v", ta, err)
		}
		// Byte stability: re-deriving and re-encoding the same tuple must
		// reproduce the identical bytes (map ordering, float formatting).
		encA2, err := rescache.CanonicalJSON(ta.config().CacheFingerprint())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encA1, encA2) {
			t.Fatalf("unstable encoding for one config:\n%s\n%s", encA1, encA2)
		}

		encB, err := rescache.CanonicalJSON(tb.config().CacheFingerprint())
		if err != nil {
			t.Fatalf("tuple B does not encode: %+v: %v", tb, err)
		}
		keyA, err := rescache.Key("pdn-solve", ta.config().CacheFingerprint())
		if err != nil {
			t.Fatal(err)
		}
		keyB, err := rescache.Key("pdn-solve", tb.config().CacheFingerprint())
		if err != nil {
			t.Fatal(err)
		}

		if sameLogicalConfig(ta, tb) {
			if !bytes.Equal(encA1, encB) {
				t.Fatalf("equal configs encode differently:\nA %+v\nB %+v\n%s\n%s", ta, tb, encA1, encB)
			}
			if keyA != keyB {
				t.Fatalf("equal configs hash differently: %s vs %s", keyA, keyB)
			}
		} else {
			if bytes.Equal(encA1, encB) {
				t.Fatalf("distinct configs collide:\nA %+v\nB %+v\n%s", ta, tb, encA1)
			}
			if keyA == keyB {
				t.Fatalf("distinct configs collide on the hashed key: %s\nA %+v\nB %+v", keyA, ta, tb)
			}
		}
	})
}
