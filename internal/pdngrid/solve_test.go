package pdngrid

import (
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/sc"
)

// TestConvergenceStatsPropagated asserts that the sparse-solver convergence
// effort (iterations, final residual) surfaces in Result, so callers can
// budget solver work and detect ill-conditioned meshes.
func TestConvergenceStatsPropagated(t *testing.T) {
	const tol = 1e-10
	cfg := vsCfg(3, 4)
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: tol}
	r := mustSolve(t, cfg, InterleavedActivities(3, 16, 0.5))
	if r.SolverIterations <= 0 {
		t.Errorf("PCG solve reported %d iterations, want > 0", r.SolverIterations)
	}
	if r.SolverResidual <= 0 || r.SolverResidual > tol {
		t.Errorf("final residual %g, want in (0, %g]", r.SolverResidual, tol)
	}
	if r.OuterIterations != 1 {
		t.Errorf("open-loop solve took %d outer passes, want 1", r.OuterIterations)
	}
	if r.TotalSolverIterations != r.SolverIterations {
		t.Errorf("single pass: total %d != final %d", r.TotalSolverIterations, r.SolverIterations)
	}
}

// TestConvergenceStatsClosedLoop checks the accumulation across closed-loop
// converter-frequency passes: the total must cover at least two passes and
// strictly exceed the final pass alone.
func TestConvergenceStatsClosedLoop(t *testing.T) {
	cfg := vsCfg(3, 4)
	cfg.Control = sc.ClosedLoop{}
	cfg.Solve = circuit.SolveOptions{Solver: circuit.PCGIC0, Tol: 1e-10}
	r := mustSolve(t, cfg, InterleavedActivities(3, 16, 0.5))
	if r.OuterIterations < 2 {
		t.Errorf("closed loop converged in %d outer passes, want >= 2", r.OuterIterations)
	}
	if r.TotalSolverIterations <= r.SolverIterations {
		t.Errorf("total iterations %d should exceed final-pass iterations %d",
			r.TotalSolverIterations, r.SolverIterations)
	}
}

// TestConvergenceStatsDirect pins the contract that direct solves report
// zero iterative effort and zero residual bookkeeping burden.
func TestConvergenceStatsDirect(t *testing.T) {
	cfg := regularCfg(3, SparseTSV())
	cfg.Solve = circuit.SolveOptions{Solver: circuit.Direct}
	r := mustSolve(t, cfg, UniformActivities(3, 16, 1))
	if r.SolverIterations != 0 {
		t.Errorf("direct solve reported %d iterations, want 0", r.SolverIterations)
	}
	if r.OuterIterations != 1 || r.TotalSolverIterations != 0 {
		t.Errorf("direct solve: outer %d total %d, want 1/0", r.OuterIterations, r.TotalSolverIterations)
	}
}
