package history

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func rec(t int64, kind, id string, vals map[string]float64) Record {
	return Record{T: t, Kind: kind, ID: id, Values: vals}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec(100, "job", "j1", map[string]float64{"iterations": 42, "cond_estimate": 18.5}),
		rec(200, "run", "vsim", map[string]float64{"pcg_iterations": 1234}),
		rec(300, "job", "j2", map[string]float64{"iterations": 40}),
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Time-window filtering is inclusive on both ends.
	got, err = s.Query(150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("windowed query mismatch: got %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything persists, and the store keeps appending to the
	// same segment.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Query(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen mismatch: got %+v", got)
	}
}

// TestDownsampleGolden pins the windowed-downsampling semantics: per-key
// mean within a window, T at the window's first record, Count = merged
// records, Kind/ID cleared when mixed.
func TestDownsampleGolden(t *testing.T) {
	var recs []Record
	for i := int64(0); i < 8; i++ {
		recs = append(recs, rec(i*10, "job", fmt.Sprintf("j%d", i/4),
			map[string]float64{"iters": float64(10 + i)}))
	}
	got := Downsample(recs, 2)
	want := []Record{
		{T: 0, Kind: "job", ID: "j0", Count: 4, Values: map[string]float64{"iters": 11.5}},
		{T: 40, Kind: "job", ID: "j1", Count: 4, Values: map[string]float64{"iters": 15.5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("downsample mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Within-budget and degenerate inputs pass through untouched.
	if out := Downsample(recs, len(recs)); !reflect.DeepEqual(out, recs) {
		t.Fatal("within-budget downsample must be identity")
	}
	if out := Downsample(recs, 0); !reflect.DeepEqual(out, recs) {
		t.Fatal("buckets<1 must be identity")
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := int64(0); i < total; i++ {
		if err := s.Append(rec(i, "job", "j", map[string]float64{"i": float64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 || len(seqs) > 3 {
		t.Fatalf("retention violated: %d segments", len(seqs))
	}
	recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records survived rotation")
	}
	// The newest record always survives; retained records are a suffix of
	// the append order.
	if last := recs[len(recs)-1]; last.T != total-1 {
		t.Fatalf("newest record lost: last T=%d", last.T)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].T != recs[i-1].T+1 {
			t.Fatalf("retained records not a contiguous suffix at %d", i)
		}
	}
}

// TestCrashRecovery simulates the two crash windows: a torn final append
// (partial trailing line) and a crash between segment creation and
// pruning (an over-retained segment).
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1 << 20, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := s.Append(rec(i, "job", "j", nil)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Torn write: a crash mid-append leaves a partial line at the tail.
	active := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":99,"kind":"job","i`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{SegmentBytes: 1 << 20, MaxSegments: 2})
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	if err := s2.Append(rec(5, "job", "j", nil)); err != nil {
		t.Fatal(err)
	}
	recs, err := s2.Query(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("after recovery want 6 records, got %d: %+v", len(recs), recs)
	}
	for i, r := range recs {
		if r.T != int64(i) {
			t.Fatalf("recovered stream corrupted at %d: %+v", i, r)
		}
	}
	s2.Close()

	// Crash between create and prune: fabricate a stale segment beyond
	// retention; the next rotation prunes it.
	stale := filepath.Join(dir, segName(0))
	if err := os.WriteFile(stale, []byte(`{"t":1,"kind":"job","id":"old"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{SegmentBytes: 64, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(6); i < 30; i++ {
		if err := s3.Append(rec(i, "job", "j", map[string]float64{"x": 1})); err != nil {
			t.Fatal(err)
		}
	}
	s3.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale pre-crash segment not pruned by rotation")
	}
}

func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512, MaxSegments: 64})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := rec(int64(w*per+i), "job", fmt.Sprintf("w%d", w),
					map[string]float64{"i": float64(i)})
				if err := s.Append(r); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs, err := s.Query(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*per {
		t.Fatalf("want %d records, got %d", writers*per, len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(0, "job", "j", nil)); err == nil {
		t.Fatal("append after close must fail")
	}
}
