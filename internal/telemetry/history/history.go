// Package history is the persistent telemetry history store: append-only
// on-disk segments of timestamped metric/convergence snapshots, written
// by vsserved per job and by the CLI drivers per run, so solver behavior
// is queryable across process lifetimes ("is this grid converging slower
// than it did last week?").
//
// Layout and durability model:
//
//   - A store is a directory of JSON-lines segments seg-<seq>.jsonl. Every
//     Append writes one complete line to the active (highest-sequence)
//     segment; the segment rotates once it exceeds the byte budget and the
//     oldest segments beyond the retention count are pruned.
//
//   - Crash safety is by construction, not by locking: a record is one
//     buffered line write, so a crash can only lose or truncate the final
//     line. Open tolerates a truncated tail (it truncates the segment back
//     to its last complete line) and a crash between "create next segment"
//     and "prune oldest" merely leaves one extra segment for the next
//     rotation to prune. No step can corrupt previously written records.
//
//   - The package is stdlib-only (no telemetry import), so both the
//     telemetry CLI layer and the cmd/ binaries can use it freely.
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record is one timestamped snapshot in the store. Values carries flat
// numeric metrics (counter values, iteration counts, condition estimates);
// the key set is producer-defined and records with disjoint keys coexist.
type Record struct {
	// T is the snapshot time in Unix milliseconds.
	T int64 `json:"t"`
	// Kind groups records by producer: "job" (one vsserved job), "run"
	// (one CLI invocation), or any future producer.
	Kind string `json:"kind"`
	// ID names the producing unit (job ID, binary name).
	ID string `json:"id"`
	// Values holds the numeric snapshot.
	Values map[string]float64 `json:"values,omitempty"`
	// Count is the number of raw records aggregated into this one; zero
	// on raw (non-downsampled) records.
	Count int `json:"count,omitempty"`
}

// Options bounds a store.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// MaxSegments is the retention bound: after rotation, only the newest
	// MaxSegments segments are kept (default 8).
	MaxSegments int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 1 << 20
	}
	if out.MaxSegments <= 0 {
		out.MaxSegments = 8
	}
	return out
}

// Store is an open history directory. Append is safe for concurrent use;
// one Store instance should own a directory at a time.
type Store struct {
	dir string
	opt Options

	mu   sync.Mutex
	f    *os.File
	seq  int64
	size int64
}

const segPrefix = "seg-"

func segName(seq int64) string { return fmt.Sprintf("%s%08d.jsonl", segPrefix, seq) }

// segSeq parses a segment filename, returning -1 for foreign files.
func segSeq(name string) int64 {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, ".jsonl") {
		return -1
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".jsonl"), 10, 64)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// segments lists the store's segment sequence numbers, ascending.
func segments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n := segSeq(e.Name()); n >= 0 {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs, nil
}

// Open opens (creating if needed) the history store in dir and recovers
// the active segment: a trailing partial line — the signature of a crash
// mid-append — is truncated away so the next Append lands on a clean
// line boundary.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: open: %w", err)
	}
	s := &Store{dir: dir, opt: opt.withDefaults()}
	seqs, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("history: open: %w", err)
	}
	s.seq = 1
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
	}
	path := filepath.Join(dir, segName(s.seq))
	if err := recoverSegment(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("history: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("history: open: %w", err)
	}
	s.f, s.size = f, st.Size()
	return s, nil
}

// recoverSegment truncates path back to its last complete line. A missing
// file is fine (fresh store); an unreadable one is an error.
func recoverSegment(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("history: recover: %w", err)
	}
	if len(b) == 0 || b[len(b)-1] == '\n' {
		return nil
	}
	cut := strings.LastIndexByte(string(b), '\n') + 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("history: recover: %w", err)
	}
	return nil
}

// Append writes one record to the active segment, rotating first when the
// segment is full. Safe for concurrent use.
func (s *Store) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("history: append: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("history: append on closed store")
	}
	if s.size > 0 && s.size+int64(len(line)) > s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("history: append: %w", err)
	}
	return nil
}

// rotateLocked closes the active segment, opens the next one, and prunes
// segments beyond the retention bound. Ordered so that a crash at any
// point loses no committed record: sync+close old, create new, prune.
func (s *Store) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("history: rotate: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("history: rotate: %w", err)
	}
	s.f = nil
	s.seq++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: rotate: %w", err)
	}
	s.f, s.size = f, 0
	// Prune best-effort: a leftover segment (crash between create and
	// prune) is re-pruned on the next rotation.
	if seqs, err := segments(s.dir); err == nil {
		for _, q := range seqs {
			if q <= s.seq-int64(s.opt.MaxSegments) {
				os.Remove(filepath.Join(s.dir, segName(q)))
			}
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage. Nil-safe.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the store. Idempotent and nil-safe.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Query returns the records with from ≤ T ≤ to (use from=0, to=MaxInt64
// for everything), in segment-then-append order. Malformed lines (a
// torn write from a crashed process) are skipped, never fatal.
func (s *Store) Query(from, to int64) ([]Record, error) {
	s.mu.Lock()
	if s.f != nil {
		// Make everything appended so far visible to the scan below.
		if err := s.f.Sync(); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("history: query: %w", err)
		}
	}
	s.mu.Unlock()
	return readDir(s.dir, from, to)
}

// Read scans a history directory without opening it for writing — the
// reporting path (vsreport trend) over a store another process owns.
func Read(dir string) ([]Record, error) {
	return readDir(dir, 0, int64(^uint64(0)>>1))
}

func readDir(dir string, from, to int64) ([]Record, error) {
	seqs, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("history: read: %w", err)
	}
	var out []Record
	for _, q := range seqs {
		f, err := os.Open(filepath.Join(dir, segName(q)))
		if err != nil {
			continue // pruned between listing and open
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var r Record
			if json.Unmarshal(sc.Bytes(), &r) != nil {
				continue
			}
			if r.T >= from && r.T <= to {
				out = append(out, r)
			}
		}
		f.Close()
	}
	return out, nil
}

// Downsample reduces recs to at most buckets records by windowing the
// time axis into equal spans and aggregating each window: per-key mean
// of Values, T at the window's first record, Count = records merged.
// Kind/ID are kept when uniform within the window and cleared otherwise.
// Records must be non-empty for a non-nil result; buckets < 1 returns
// recs unchanged, as does a set already within the budget.
func Downsample(recs []Record, buckets int) []Record {
	if buckets < 1 || len(recs) <= buckets {
		return recs
	}
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].T < sorted[b].T })
	lo, hi := sorted[0].T, sorted[len(sorted)-1].T
	span := hi - lo + 1
	out := make([]Record, 0, buckets)
	var cur *Record
	var curBucket int64 = -1
	sums := map[string]float64{}
	counts := map[string]int{}
	flush := func() {
		if cur == nil {
			return
		}
		cur.Values = make(map[string]float64, len(sums))
		for k, v := range sums {
			cur.Values[k] = v / float64(counts[k])
		}
		out = append(out, *cur)
		cur = nil
		sums = map[string]float64{}
		counts = map[string]int{}
	}
	for i := range sorted {
		r := &sorted[i]
		b := int64(buckets) * (r.T - lo) / span
		if cur == nil || b != curBucket {
			flush()
			curBucket = b
			cur = &Record{T: r.T, Kind: r.Kind, ID: r.ID, Count: 0}
		}
		if cur.Kind != r.Kind {
			cur.Kind = ""
		}
		if cur.ID != r.ID {
			cur.ID = ""
		}
		n := r.Count
		if n == 0 {
			n = 1
		}
		cur.Count += n
		for k, v := range r.Values {
			sums[k] += v
			counts[k]++
		}
	}
	flush()
	return out
}
