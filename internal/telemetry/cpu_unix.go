//go:build unix

package telemetry

import "syscall"

// ProcessCPUSeconds returns the process's cumulative user+system CPU time
// in seconds, from getrusage(RUSAGE_SELF). Deltas of this value bracket a
// job's execution to attribute CPU cost; under concurrent jobs the
// attribution is approximate (it is exact at max-inflight 1).
func ProcessCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toSec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return toSec(ru.Utime) + toSec(ru.Stime)
}
