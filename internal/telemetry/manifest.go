// Run provenance manifests. Every cmd/ binary can write, on exit, a single
// JSON record that makes the run reproducible and diffable after the fact:
// the exact flag/config set, seeds, the VCS revision baked into the binary
// by the Go toolchain, Go/OS versions, wall time, a final metrics snapshot,
// and a SHA-256 of every output the run produced (including stdout, captured
// byte-for-byte through a pipe so the terminal output is unchanged).
//
// The schema is versioned and pinned by a golden-file test
// (TestManifestSchemaGolden): field renames or removals are a schema bump,
// not a silent drift, because cmd/vsreport and external tooling parse these
// files long after the producing binary is gone.
package telemetry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// ManifestSchemaVersion identifies the manifest JSON layout. Bump it when a
// field is renamed, removed, or changes meaning (additions are backward
// compatible and do not require a bump).
const ManifestSchemaVersion = 1

// ManifestOutput records one output artifact of a run.
type ManifestOutput struct {
	// Name identifies the artifact role ("stdout", "metrics", "trace",
	// "events", ...). Path is empty for streams that are not files.
	Name   string `json:"name"`
	Path   string `json:"path,omitempty"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
	// Missing marks an output that was registered but never produced
	// (e.g. the run failed before the dump); its hash is empty.
	Missing bool `json:"missing,omitempty"`
}

// Manifest is the provenance record of one binary invocation.
type Manifest struct {
	Schema int    `json:"schema"`
	Binary string `json:"binary"`

	// Invocation: raw argv and every registered flag with its effective
	// (post-parse) value, defaults included — the full config set.
	Args  []string          `json:"args"`
	Flags map[string]string `json:"flags"`
	Seeds map[string]int64  `json:"seeds,omitempty"`

	// Toolchain and source provenance, from runtime/debug.ReadBuildInfo.
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`

	// Timing.
	StartTime   string  `json:"start_time"` // RFC 3339
	WallSeconds float64 `json:"wall_seconds"`

	// Final metrics snapshot (the same object `-metrics` dumps), present
	// when the metric registry recorded anything.
	Metrics json.RawMessage `json:"metrics,omitempty"`

	// Output artifacts with content hashes.
	Outputs []ManifestOutput `json:"outputs"`

	// ExitError carries the failure message of an unsuccessful run.
	ExitError string `json:"exit_error,omitempty"`

	start        time.Time
	stdoutHasher *stdoutCapture
	filePaths    map[string]string // name -> path, hashed at Write time
	fileOrder    []string
}

// NewManifest starts a provenance record for the named binary: argv, build
// info and the start clock are captured immediately, everything else at
// Write time. All methods are nil-safe so un-flagged runs can keep a nil
// manifest and skip every call site conditionally-free.
func NewManifest(binary string) *Manifest {
	m := &Manifest{
		Schema:    ManifestSchemaVersion,
		Binary:    binary,
		Args:      append([]string(nil), os.Args[1:]...),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		start:     time.Now(),
		filePaths: map[string]string{},
	}
	m.StartTime = m.start.Format(time.RFC3339)
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// buildStamp is computed once: reading build info walks the module graph.
var buildStamp = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return runtime.Version()
})

// BuildStamp identifies the code version of the running binary: the VCS
// revision the Go toolchain baked in (the same value the manifest records
// as vcs_revision), with a "+dirty" suffix when the tree was modified,
// falling back to the Go version for unstamped builds (go test, go run).
// The result cache folds this into every content-addressed key so results
// computed by different code versions never alias.
func BuildStamp() string { return buildStamp() }

// AddSeed records a named RNG seed. Nil-safe.
func (m *Manifest) AddSeed(name string, seed int64) {
	if m == nil {
		return
	}
	if m.Seeds == nil {
		m.Seeds = map[string]int64{}
	}
	m.Seeds[name] = seed
}

// AddOutputFile registers a file artifact under the given role name; the
// file is hashed when the manifest is written (after all dumps have
// happened), so register it as soon as the path is known. Nil-safe.
func (m *Manifest) AddOutputFile(name, path string) {
	if m == nil || path == "" {
		return
	}
	if _, dup := m.filePaths[name]; !dup {
		m.fileOrder = append(m.fileOrder, name)
	}
	m.filePaths[name] = path
}

// SetExitError records the failure a run is about to exit with. Nil-safe.
func (m *Manifest) SetExitError(err error) {
	if m == nil || err == nil {
		return
	}
	m.ExitError = err.Error()
}

// stdoutCapture tees os.Stdout through a pipe so the manifest can hash the
// byte stream without altering it.
type stdoutCapture struct {
	orig  *os.File
	w     *os.File
	h     hash.Hash
	n     int64
	done  chan struct{}
	cpErr error
}

// CaptureStdout replaces os.Stdout with a pipe whose contents are copied,
// unmodified, to the real stdout while being hashed. Call ReleaseStdout
// (directly or via Write) before the process exits. Nil-safe: a nil
// manifest captures nothing.
func (m *Manifest) CaptureStdout() error {
	if m == nil || m.stdoutHasher != nil {
		return nil
	}
	r, w, err := os.Pipe()
	if err != nil {
		return fmt.Errorf("telemetry: manifest stdout capture: %w", err)
	}
	c := &stdoutCapture{orig: os.Stdout, w: w, h: sha256.New(), done: make(chan struct{})}
	os.Stdout = w
	go func() {
		defer close(c.done)
		n, err := io.Copy(io.MultiWriter(c.orig, c.h), r)
		c.n = n
		c.cpErr = err
		r.Close()
	}()
	m.stdoutHasher = c
	return nil
}

// ReleaseStdout restores the real os.Stdout and records the captured
// stream's hash as the "stdout" output. Idempotent and nil-safe.
func (m *Manifest) ReleaseStdout() {
	if m == nil || m.stdoutHasher == nil {
		return
	}
	c := m.stdoutHasher
	m.stdoutHasher = nil
	c.w.Close()
	<-c.done
	os.Stdout = c.orig
	out := ManifestOutput{Name: "stdout", Bytes: c.n}
	if c.cpErr == nil {
		out.SHA256 = hex.EncodeToString(c.h.Sum(nil))
	} else {
		out.Missing = true
	}
	m.Outputs = append(m.Outputs, out)
}

// hashFile returns the SHA-256 and size of the file at path.
func hashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// finalize fills the write-time fields: flag values, wall clock, metrics
// snapshot, and the hashes of all registered outputs.
func (m *Manifest) finalize() {
	m.ReleaseStdout()
	m.WallSeconds = time.Since(m.start).Seconds()
	if m.Flags == nil {
		m.Flags = map[string]string{}
		flag.VisitAll(func(f *flag.Flag) { m.Flags[f.Name] = f.Value.String() })
	}
	if m.Metrics == nil && std.on.Load() {
		var buf bytes.Buffer
		if err := std.WriteJSON(&buf); err == nil {
			m.Metrics = json.RawMessage(buf.Bytes())
		}
	}
	for _, name := range m.fileOrder {
		path := m.filePaths[name]
		out := ManifestOutput{Name: name, Path: path}
		if sum, n, err := hashFile(path); err == nil {
			out.SHA256, out.Bytes = sum, n
		} else {
			out.Missing = true
		}
		m.Outputs = append(m.Outputs, out)
	}
}

// WriteJSON finalizes the manifest and writes it as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile finalizes the manifest and writes it to path. Nil-safe: a nil
// manifest writes nothing.
func (m *Manifest) WriteFile(path string) error {
	if m == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	return f.Close()
}

// LoadManifest reads a manifest JSON file written by WriteFile.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: manifest %s: %w", path, err)
	}
	if m.Schema > ManifestSchemaVersion {
		return nil, fmt.Errorf("telemetry: manifest %s: schema %d newer than supported %d",
			path, m.Schema, ManifestSchemaVersion)
	}
	return &m, nil
}

// metricsCounters extracts the counter map of an embedded metrics snapshot.
func (m *Manifest) metricsCounters() map[string]int64 {
	if len(m.Metrics) == 0 {
		return nil
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(m.Metrics, &snap); err != nil {
		return nil
	}
	return snap.Counters
}

// sortedKeys returns the union of both maps' keys, sorted.
func sortedKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
