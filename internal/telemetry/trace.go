package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceEvents caps the trace buffer so a production-scale sweep cannot
// exhaust memory by tracing millions of solves; spans past the cap are
// counted (and reported in the trace metadata) but not recorded.
const maxTraceEvents = 1 << 20

// Tracer records completed spans as a flat event list renderable by
// chrome://tracing and Perfetto (Chrome trace_event "X" complete events;
// parent/child nesting is encoded by time containment on a shared lane).
// A nil *Tracer is a valid no-op, as is every *Span it hands out.
type Tracer struct {
	base time.Time // monotonic origin for timestamps

	mu      sync.Mutex
	events  []traceEvent
	lanes   []bool // lanes[i]: lane i occupied by a live root span
	dropped atomic.Int64
}

type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds since the tracer's origin
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// Span is one timed region. End it exactly once; child spans (Start) share
// the root's lane so the viewer nests them.
type Span struct {
	tracer *Tracer
	name   string
	lane   int
	root   bool
	start  time.Time
	ended  atomic.Bool
}

// NewTracer returns an empty tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// stdTracer is the process tracer behind StartSpan; nil until
// EnableTracing.
var stdTracer atomic.Pointer[Tracer]

// EnableTracing installs a fresh process tracer (replacing any prior one)
// and returns it.
func EnableTracing() *Tracer {
	t := NewTracer()
	stdTracer.Store(t)
	return t
}

// DisableTracing removes the process tracer. Already-started spans still
// record into the tracer they were started on.
func DisableTracing() { stdTracer.Store(nil) }

// TracingEnabled reports whether a process tracer is installed.
func TracingEnabled() bool { return stdTracer.Load() != nil }

// StartSpan opens a root span on the process tracer; returns nil (a valid
// no-op span) when tracing is disabled.
func StartSpan(name string) *Span {
	return stdTracer.Load().Start(name)
}

// WriteTrace writes the process tracer's Chrome trace JSON; it writes an
// empty trace when tracing was never enabled.
func WriteTrace(w io.Writer) error { return stdTracer.Load().WriteChromeTrace(w) }

// Start opens a root span. Concurrent root spans get distinct lanes
// (Chrome "tid" rows) so overlapping work renders side by side.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lane := -1
	for i, used := range t.lanes {
		if !used {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, false)
	}
	t.lanes[lane] = true
	t.mu.Unlock()
	return &Span{tracer: t, name: name, lane: lane, root: true, start: time.Now()}
}

// Start opens a child span on the same lane as s. Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tracer: s.tracer, name: name, lane: s.lane, start: time.Now()}
}

// End closes the span and records it. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	dur := time.Since(s.start)
	t.mu.Lock()
	if len(t.events) < maxTraceEvents {
		t.events = append(t.events, traceEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.base)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			PID:  1,
			TID:  s.lane + 1,
		})
	} else {
		t.dropped.Add(1)
	}
	if s.root {
		t.lanes[s.lane] = false
	}
	t.mu.Unlock()
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events, ordered by start time.
// Exposed for tests and programmatic inspection of the timing tree.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	for i, e := range t.events {
		out[i] = TraceEvent{Name: e.Name, Lane: e.TID, StartUS: e.Ts, DurUS: e.Dur}
	}
	return out
}

// TraceEvent is the public view of one recorded span.
type TraceEvent struct {
	Name    string
	Lane    int
	StartUS float64
	DurUS   float64
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON array-of-objects
// form, loadable by chrome://tracing and https://ui.perfetto.dev. A nil
// tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Dropped     int64        `json:"droppedEvents,omitempty"`
	}{t.events, t.dropped.Load()}
	if out.TraceEvents == nil {
		out.TraceEvents = []traceEvent{}
	}
	return json.NewEncoder(w).Encode(out)
}
