package telemetry

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceEvents caps the trace buffer so a production-scale sweep cannot
// exhaust memory by tracing millions of solves; spans past the cap are
// counted (and reported in the trace metadata) but not recorded.
const maxTraceEvents = 1 << 20

// Tracer records completed spans as a flat event list renderable by
// chrome://tracing and Perfetto (Chrome trace_event "X" complete events;
// parent/child nesting is encoded by time containment on a shared lane).
// A nil *Tracer is a valid no-op, as is every *Span it hands out.
type Tracer struct {
	base time.Time // monotonic origin for timestamps

	mu      sync.Mutex
	events  []traceEvent
	lanes   []bool // lanes[i]: lane i occupied by a live root span
	dropped atomic.Int64
}

type traceEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"` // microseconds since the tracer's origin
	Dur  float64    `json:"dur"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args *traceArgs `json:"args,omitempty"`
}

// traceArgs carries the W3C trace context on annotated spans, so a span in
// the Chrome trace viewer can be tied back to the request that caused it.
type traceArgs struct {
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
}

// Span is one timed region. End it exactly once; child spans (Start) share
// the root's lane so the viewer nests them.
type Span struct {
	tracer *Tracer
	name   string
	lane   int
	root   bool
	start  time.Time
	ended  atomic.Bool
	tc     TraceContext // this span's own identity (zero when unannotated)
	parent [8]byte      // span ID of the parent span/request, if any
}

// NewTracer returns an empty tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// stdTracer is the process tracer behind StartSpan; nil until
// EnableTracing.
var stdTracer atomic.Pointer[Tracer]

// EnableTracing installs a fresh process tracer (replacing any prior one)
// and returns it.
func EnableTracing() *Tracer {
	t := NewTracer()
	stdTracer.Store(t)
	return t
}

// DisableTracing removes the process tracer. Already-started spans still
// record into the tracer they were started on.
func DisableTracing() { stdTracer.Store(nil) }

// TracingEnabled reports whether a process tracer is installed.
func TracingEnabled() bool { return stdTracer.Load() != nil }

// StartSpan opens a root span on the process tracer; returns nil (a valid
// no-op span) when tracing is disabled.
func StartSpan(name string) *Span {
	return stdTracer.Load().Start(name)
}

// WriteTrace writes the process tracer's Chrome trace JSON; it writes an
// empty trace when tracing was never enabled.
func WriteTrace(w io.Writer) error { return stdTracer.Load().WriteChromeTrace(w) }

// Start opens a root span. Concurrent root spans get distinct lanes
// (Chrome "tid" rows) so overlapping work renders side by side.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lane := -1
	for i, used := range t.lanes {
		if !used {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, false)
	}
	t.lanes[lane] = true
	t.mu.Unlock()
	return &Span{tracer: t, name: name, lane: lane, root: true, start: time.Now()}
}

// StartTrace opens a root span annotated with the trace tc belongs to: the
// span gets a fresh span ID in tc's trace, with tc's span as its parent.
// An invalid tc degrades to a plain unannotated Start.
func (t *Tracer) StartTrace(name string, tc TraceContext) *Span {
	sp := t.Start(name)
	if sp == nil || !tc.Valid() {
		return sp
	}
	sp.parent = tc.SpanID
	sp.tc = tc.Child()
	return sp
}

// Start opens a child span on the same lane as s, inheriting s's trace
// annotation (same trace ID, fresh span ID, s as parent). Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{tracer: s.tracer, name: name, lane: s.lane, start: time.Now()}
	if s.tc.Valid() {
		child.parent = s.tc.SpanID
		child.tc = s.tc.Child()
	}
	return child
}

// TraceContext returns the span's own trace identity (zero for a nil or
// unannotated span). Use it to key exemplars to the exact span.
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

// End closes the span and records it. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	dur := time.Since(s.start)
	var args *traceArgs
	if s.tc.Valid() {
		args = &traceArgs{
			TraceID:      s.tc.TraceIDString(),
			SpanID:       s.tc.SpanIDString(),
			ParentSpanID: hexSpanID(s.parent),
		}
	}
	t.mu.Lock()
	if len(t.events) < maxTraceEvents {
		t.events = append(t.events, traceEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.base)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			PID:  1,
			TID:  s.lane + 1,
			Args: args,
		})
	} else {
		t.dropped.Add(1)
	}
	if s.root {
		t.lanes[s.lane] = false
	}
	t.mu.Unlock()
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events, ordered by start time.
// Exposed for tests and programmatic inspection of the timing tree.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	for i, e := range t.events {
		out[i] = TraceEvent{Name: e.Name, Lane: e.TID, StartUS: e.Ts, DurUS: e.Dur}
		if e.Args != nil {
			out[i].TraceID = e.Args.TraceID
			out[i].SpanID = e.Args.SpanID
			out[i].ParentSpanID = e.Args.ParentSpanID
		}
	}
	return out
}

// TraceEvent is the public view of one recorded span. TraceID/SpanID are
// set only on trace-annotated spans.
type TraceEvent struct {
	Name         string
	Lane         int
	StartUS      float64
	DurUS        float64
	TraceID      string
	SpanID       string
	ParentSpanID string
}

// hexSpanID renders an 8-byte span ID as lowercase hex ("" when zero).
func hexSpanID(id [8]byte) string {
	if id == [8]byte{} {
		return ""
	}
	return hex.EncodeToString(id[:])
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON array-of-objects
// form, loadable by chrome://tracing and https://ui.perfetto.dev. A nil
// tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Dropped     int64        `json:"droppedEvents,omitempty"`
	}{t.events, t.dropped.Load()}
	if out.TraceEvents == nil {
		out.TraceEvents = []traceEvent{}
	}
	return json.NewEncoder(w).Encode(out)
}
