// Structured event log: the post-mortem half of the telemetry layer. Where
// the metric registry answers "how much / how fast", the event log answers
// "what exactly happened and when" — leveled, machine-parseable JSON-lines
// records emitted from the numerical core at the moments that matter for
// diagnosing a failed or degraded run: PCG breakdowns and non-convergence,
// IC(0) diagonal-shift retries, prepared-engine recompiles, closed-loop
// outer-pass stalls, thermal-infeasibility rejections and Monte Carlo trial
// anomalies.
//
// The log follows the same disabled-cost contract as the metric registry:
// it is off by default and call sites guard every emission with
// EventsEnabled(), so a gated-off event costs one atomic load and zero
// allocations (pinned by BenchmarkEventOff). Events go to a file or stderr,
// never stdout, so program outputs are byte-identical with logging on or
// off.
package telemetry

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// eventsOn is the one-atomic-load gate consulted by EventsEnabled. The
// logger pointer is stored separately so Event can be called (harmlessly)
// even while the log is being torn down.
var (
	eventsOn    atomic.Bool
	eventLogger atomic.Pointer[slog.Logger]
)

// EnableEventLog installs a JSON-lines event logger writing to w at the
// given minimum level and turns the event gate on. Records carry the
// standard slog fields (time, level, msg) plus the per-event attributes.
// Call sites in the numerical core guard with EventsEnabled(), so enabling
// the log never changes what instrumented code computes.
func EnableEventLog(w io.Writer, level slog.Level) {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	eventLogger.Store(slog.New(h))
	eventsOn.Store(true)
}

// DisableEventLog turns the event gate off and drops the logger.
func DisableEventLog() {
	eventsOn.Store(false)
	eventLogger.Store(nil)
}

// EventsEnabled reports whether the event log is recording. Hot paths call
// this before building any attributes, so a disabled log costs exactly one
// atomic load per potential event site.
func EventsEnabled() bool { return eventsOn.Load() }

// Event emits one structured record. It re-checks the gate (so an unguarded
// call is merely wasted work, never a crash), but the contract is that
// callers guard with EventsEnabled() first — the variadic attribute slice
// and the attribute values themselves must not be constructed on the
// disabled path.
func Event(level slog.Level, msg string, attrs ...slog.Attr) {
	if !eventsOn.Load() {
		return
	}
	l := eventLogger.Load()
	if l == nil {
		return
	}
	l.LogAttrs(context.Background(), level, msg, attrs...)
}
