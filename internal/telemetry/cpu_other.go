//go:build !unix

package telemetry

// ProcessCPUSeconds is unavailable on this platform; per-job CPU
// attribution degrades to 0 (wall time is still recorded).
func ProcessCPUSeconds() float64 { return 0 }
