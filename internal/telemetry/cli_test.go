package telemetry

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cleanupGlobals undoes the process-wide gates Flags.Init flips so later
// tests (and TestGlobalDisabledByDefault in particular) see the boot state.
func cleanupGlobals(t *testing.T) {
	t.Cleanup(func() {
		Disable()
		DisableTracing()
		DisableProgress()
		DisableEventLog()
		SetPostmortemDir("")
		DisableFlightRecorder()
		statusOn.Store(false)
	})
}

func TestInitNoFlags(t *testing.T) {
	cleanupGlobals(t)
	f := &Flags{}
	flush, err := f.Init()
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("registry enabled with no flags set")
	}
	if err := flush(); err != nil {
		t.Errorf("flush: %v", err)
	}
	if err := flush(); err != nil {
		t.Errorf("second flush not a no-op: %v", err)
	}
}

func TestInitUnwritableCPUProfile(t *testing.T) {
	cleanupGlobals(t)
	f := &Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	flush, err := f.Init()
	if err == nil {
		flush()
		t.Fatal("Init accepted an unwritable -cpuprofile path")
	}
	if !strings.Contains(err.Error(), "cpuprofile") {
		t.Errorf("error does not name the failing flag: %v", err)
	}
	if flush == nil {
		t.Fatal("flush must be non-nil even on error")
	}
	if err := flush(); err != nil {
		t.Errorf("flush after failed Init: %v", err)
	}
}

func TestInitAddressInUse(t *testing.T) {
	cleanupGlobals(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	defer ln.Close()

	f := &Flags{
		Pprof:      ln.Addr().String(),
		CPUProfile: filepath.Join(t.TempDir(), "cpu.out"),
	}
	flush, err := f.Init()
	if err == nil {
		flush()
		t.Fatal("Init bound an already-bound -pprof address")
	}
	if len(f.servers) != 0 {
		t.Errorf("failed Init left %d server(s) registered", len(f.servers))
	}
	if err := flush(); err != nil {
		t.Errorf("flush after failed Init: %v", err)
	}
	// The undo stack must have stopped the CPU profile: a fresh Init with
	// profiling must succeed (StartCPUProfile errors if one is running).
	f2 := &Flags{CPUProfile: filepath.Join(t.TempDir(), "cpu2.out")}
	flush2, err := f2.Init()
	if err != nil {
		t.Fatalf("CPU profile leaked by failed Init: %v", err)
	}
	if err := flush2(); err != nil {
		t.Errorf("flush: %v", err)
	}
}

// TestInitServeEndpoints drives the live endpoints end to end, twice in the
// same process: the second Init pins that pprof handlers live on a private
// mux (a DefaultServeMux registration would panic on the second round) and
// that flush really released the first listener.
func TestInitServeEndpoints(t *testing.T) {
	cleanupGlobals(t)
	if _, err := net.Listen("tcp", "127.0.0.1:0"); err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	for round := 0; round < 2; round++ {
		f := &Flags{Serve: "127.0.0.1:0"}
		flush, err := f.Init()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		addr := f.ServeAddr()
		if addr == "" {
			t.Fatalf("round %d: no bound address", round)
		}

		NewCounter("cli_test_probe_total").Add(1)
		TaskStart("cli_test.live")

		body := httpGet(t, "http://"+addr+"/metrics")
		if !strings.Contains(body, "cli_test_probe_total") {
			t.Errorf("round %d: /metrics missing live counter:\n%s", round, body)
		}
		body = httpGet(t, "http://"+addr+"/healthz")
		if !strings.Contains(body, `"status":"ok"`) {
			t.Errorf("round %d: /healthz = %q", round, body)
		}
		var snap StatusSnapshot
		if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/statusz")), &snap); err != nil {
			t.Fatalf("round %d: /statusz is not JSON: %v", round, err)
		}
		found := false
		for _, name := range snap.Active {
			found = found || name == "cli_test.live"
		}
		if !found {
			t.Errorf("round %d: /statusz active = %v, want cli_test.live", round, snap.Active)
		}
		TaskEnd("cli_test.live")

		if err := flush(); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
			t.Errorf("round %d: server still answering after flush", round)
		}
	}
}

func TestInitDumpsAndManifest(t *testing.T) {
	cleanupGlobals(t)
	dir := t.TempDir()
	f := &Flags{
		Metrics:  filepath.Join(dir, "metrics.json"),
		Events:   filepath.Join(dir, "events.jsonl"),
		Manifest: filepath.Join(dir, "manifest.json"),
	}
	flush, err := f.Init()
	if err != nil {
		t.Fatal(err)
	}
	if f.RunManifest() == nil {
		t.Fatal("RunManifest nil with -manifest set")
	}
	f.RunManifest().AddSeed("study", 42)
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"metrics.json", "metrics.json.prom", "events.jsonl", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing dump %s: %v", name, err)
		}
	}
	m, err := LoadManifest(f.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seeds["study"] != 42 {
		t.Errorf("seed = %d, want 42", m.Seeds["study"])
	}
	// The metrics dumps are registered outputs and must carry hashes.
	for _, out := range m.Outputs {
		if out.Name == "metrics" && (out.SHA256 == "" || out.Missing) {
			t.Errorf("metrics output not hashed: %+v", out)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}
