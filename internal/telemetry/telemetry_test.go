package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the data-race gate for the
// lock-free instrument paths.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Set(float64(w))
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Per-worker sum of 0..999 is 499500.
	if got, want := h.Sum(), float64(workers)*499500; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
	snap := h.snapshot()
	if snap.Min != 0 || snap.Max != perWorker-1 {
		t.Errorf("min/max = %g/%g, want 0/%d", snap.Min, snap.Max, perWorker-1)
	}
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

// TestDisabledNoOp verifies that a disabled registry records nothing and
// that nil handles are safe everywhere.
func TestDisabledNoOp(t *testing.T) {
	r := newRegistry() // off
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(3.14)
	h.Observe(1)
	h.Since(time.Now().Add(-time.Second))
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled registry recorded: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
	r.on.Store(true)
	c.Add(5)
	if c.Value() != 5 {
		t.Errorf("enable did not take effect: c=%d", c.Value())
	}

	// Nil handles: every method must be a safe no-op.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	var nr *Registry
	nc.Add(1)
	ng.Set(1)
	nh.Observe(1)
	nh.Since(time.Now())
	nr.Reset()
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 || nh.Mean() != 0 {
		t.Error("nil instrument returned nonzero")
	}
	if nr.Counter("x") != nil || nr.Gauge("x") != nil || nr.Histogram("x") != nil {
		t.Error("nil registry handed out instruments")
	}
	var buf bytes.Buffer
	if err := nr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := nr.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalDisabledByDefault pins the contract the hot paths rely on: the
// process registry must start disabled so un-flagged runs pay (almost)
// nothing.
func TestGlobalDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("process registry enabled at init")
	}
	if !Now().IsZero() {
		t.Fatal("Now() returned wall time while disabled")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.1, 2}, {4, 2}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := bucketIndex(math.MaxFloat64); got != histBuckets-1 {
		t.Errorf("overflow bucket = %d, want %d", got, histBuckets-1)
	}
}

// TestDumpGolden pins the exact dump formats: the Prometheus text format
// (cumulative buckets, _sum/_count) and the JSON layout with sorted keys.
func TestDumpGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total").Add(3)
	r.Counter("alpha_total").Add(7)
	r.Gauge("residual").Set(0.5)
	h := r.Histogram("iters")
	h.Observe(1)
	h.Observe(3)
	h.Observe(300)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantProm := `# TYPE alpha_total counter
alpha_total 7
# TYPE zeta_total counter
zeta_total 3
# TYPE residual gauge
residual 0.5
# TYPE iters histogram
iters_bucket{le="1"} 1
iters_bucket{le="4"} 2
iters_bucket{le="512"} 3
iters_bucket{le="+Inf"} 3
iters_sum 304
iters_count 3
`
	if prom.String() != wantProm {
		t.Errorf("prometheus dump:\n--- got ---\n%s--- want ---\n%s", prom.String(), wantProm)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{
  "counters": {
    "alpha_total": 7,
    "zeta_total": 3
  },
  "gauges": {
    "residual": 0.5
  },
  "histograms": {
    "iters": {
      "count": 3,
      "sum": 304,
      "min": 1,
      "max": 300,
      "mean": 101.33333333333333,
      "buckets": [
        {
          "le": 1,
          "count": 1
        },
        {
          "le": 4,
          "count": 1
        },
        {
          "le": 512,
          "count": 1
        }
      ]
    }
  }
}
`
	if js.String() != wantJSON {
		t.Errorf("json dump:\n--- got ---\n%s--- want ---\n%s", js.String(), wantJSON)
	}
	// The JSON dump must stay machine-readable.
	var parsed map[string]any
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(2)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset left values behind")
	}
	// Handles stay bound after Reset.
	c.Add(1)
	if c.Value() != 1 {
		t.Error("handle dead after Reset")
	}
	if snap := h.snapshot(); len(snap.Buckets) != 0 {
		t.Error("Reset left buckets behind")
	}
}

func TestProgressSilentWhenDisabled(t *testing.T) {
	DisableProgress()
	if p := NewProgress("x", 10); p != nil {
		t.Fatal("NewProgress returned non-nil while disabled")
	}
	var p *Progress
	p.Add(1)
	p.Finish() // must not panic
}

func TestProgressPrints(t *testing.T) {
	var buf bytes.Buffer
	SetProgressWriter(&buf)
	defer SetProgressWriter(nil)
	EnableProgress(time.Nanosecond)
	defer DisableProgress()
	p := NewProgress("sweep", 4)
	time.Sleep(2 * time.Millisecond)
	p.Add(1)
	p.Add(1)
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "sweep:") || !strings.Contains(out, "/4") {
		t.Errorf("progress output missing fields: %q", out)
	}
}

// TestEmptyHistogramSnapshotFinite pins the satellite fix for NaN leakage:
// a created-but-never-observed histogram must snapshot and serialize as
// all-zeros — 0/0 mean must never escape as NaN, which json.Marshal would
// reject and Prometheus scrapes would mis-parse.
func TestEmptyHistogramSnapshotFinite(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds")
	snap := r.Snapshot()
	h, ok := snap.Histograms["empty_seconds"]
	if !ok {
		t.Fatal("empty histogram missing from snapshot")
	}
	if h.Count != 0 || h.Sum != 0 || h.Mean != 0 || h.Min != 0 || h.Max != 0 {
		t.Fatalf("empty histogram snapshot not all-zero: %+v", h)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on empty histogram: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
}

// TestNonFiniteValuesSanitized checks that NaN gauges and +Inf
// observations cannot poison the JSON or Prometheus renderings.
func TestNonFiniteValuesSanitized(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_nan").Set(math.NaN())
	r.Gauge("g_inf").Set(math.Inf(1))
	h := r.Histogram("h")
	h.Observe(math.Inf(1)) // clamped, not poisonous
	h.Observe(2)

	snap := r.Snapshot()
	if v := snap.Gauges["g_nan"]; v != 0 {
		t.Errorf("NaN gauge snapshot = %g, want 0", v)
	}
	if v := snap.Gauges["g_inf"]; math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("Inf gauge snapshot not finite: %g", v)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 2 || math.IsInf(hs.Sum, 0) || math.IsNaN(hs.Sum) || math.IsNaN(hs.Mean) {
		t.Errorf("histogram snapshot not finite: %+v", hs)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with non-finite inputs: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteJSON emitted invalid JSON:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") {
		t.Errorf("Prometheus rendering leaked NaN:\n%s", s)
	}
}
