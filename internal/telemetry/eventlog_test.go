package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestEventLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	EnableEventLog(&buf, slog.LevelInfo)
	defer DisableEventLog()

	Event(slog.LevelInfo, "first event", slog.Int("n", 42))
	Event(slog.LevelWarn, "second event", slog.Float64("shift", 1e-3), slog.String("why", "breakdown"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["msg"] != "first event" {
		t.Errorf("msg = %v, want %q", rec["msg"], "first event")
	}
	if rec["n"] != float64(42) {
		t.Errorf("n = %v, want 42", rec["n"])
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["level"] != "WARN" {
		t.Errorf("level = %v, want WARN", rec["level"])
	}
	if rec["shift"] != 1e-3 {
		t.Errorf("shift = %v, want 0.001", rec["shift"])
	}
}

func TestEventLogLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	EnableEventLog(&buf, slog.LevelWarn)
	defer DisableEventLog()

	Event(slog.LevelInfo, "dropped")
	Event(slog.LevelError, "kept")

	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Error("info event leaked through a warn-level log")
	}
	if !strings.Contains(out, "kept") {
		t.Error("error event missing")
	}
}

func TestEventLogDisabledByDefault(t *testing.T) {
	if EventsEnabled() {
		t.Fatal("event log enabled before EnableEventLog")
	}
	// Must be safe (and silent) without a logger.
	Event(slog.LevelError, "into the void")
}

func TestEventLogDisable(t *testing.T) {
	var buf bytes.Buffer
	EnableEventLog(&buf, slog.LevelInfo)
	DisableEventLog()
	if EventsEnabled() {
		t.Fatal("still enabled after DisableEventLog")
	}
	Event(slog.LevelError, "after disable")
	if buf.Len() != 0 {
		t.Errorf("event written after disable: %q", buf.String())
	}
}

// TestEventDisabledZeroAlloc pins the disabled-cost contract: a gated-off
// call site (gate check before constructing attrs) allocates nothing.
func TestEventDisabledZeroAlloc(t *testing.T) {
	DisableEventLog()
	allocs := testing.AllocsPerRun(1000, func() {
		if EventsEnabled() {
			Event(slog.LevelInfo, "never", slog.Int("n", 1))
		}
	})
	if allocs != 0 {
		t.Errorf("gated-off event call allocates %v times, want 0", allocs)
	}
}

func BenchmarkEventOff(b *testing.B) {
	DisableEventLog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if EventsEnabled() {
			Event(slog.LevelInfo, "bench", slog.Int("i", i))
		}
	}
}

func BenchmarkEventOn(b *testing.B) {
	var buf bytes.Buffer
	EnableEventLog(&buf, slog.LevelInfo)
	defer DisableEventLog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if EventsEnabled() {
			Event(slog.LevelInfo, "bench", slog.Int("i", i))
		}
		if buf.Len() > 1<<20 {
			buf.Reset()
		}
	}
}
