package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting checks the hierarchical timing tree: children share the
// root's lane and are time-contained within the parent, which is exactly
// the property chrome://tracing uses to render nesting.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := root.Start("child")
	grand := child.Start("grand")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]TraceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.Lane != c.Lane || c.Lane != g.Lane {
		t.Errorf("lanes differ: root=%d child=%d grand=%d", r.Lane, c.Lane, g.Lane)
	}
	contains := func(outer, inner TraceEvent) bool {
		const slackUS = 1 // guard against microsecond rounding at the edges
		return inner.StartUS >= outer.StartUS-slackUS &&
			inner.StartUS+inner.DurUS <= outer.StartUS+outer.DurUS+slackUS
	}
	if !contains(r, c) || !contains(c, g) {
		t.Errorf("span containment violated: root=%+v child=%+v grand=%+v", r, c, g)
	}
	if g.DurUS > c.DurUS+1 || c.DurUS > r.DurUS+1 {
		t.Errorf("child longer than parent: %+v %+v %+v", r, c, g)
	}
}

// TestConcurrentRootLanes runs overlapping root spans from many goroutines
// and checks that simultaneously-live roots never share a lane (they would
// render as false nesting). Also the -race gate for the tracer.
func TestConcurrentRootLanes(t *testing.T) {
	tr := NewTracer()
	const n = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sp := tr.Start("work")
			child := sp.Start("inner")
			time.Sleep(2 * time.Millisecond)
			child.End()
			sp.End()
		}()
	}
	close(start)
	wg.Wait()
	if got := tr.Len(); got != 2*n {
		t.Fatalf("got %d events, want %d", got, 2*n)
	}
	// All n roots overlapped in time, so they must occupy n distinct lanes.
	lanes := map[int]bool{}
	for _, e := range tr.Events() {
		if e.Name == "work" {
			lanes[e.Lane] = true
		}
	}
	if len(lanes) != n {
		t.Errorf("%d overlapping roots share %d lanes, want %d", n, len(lanes), n)
	}
}

// TestLaneReuse verifies that sequential roots reuse lane 1 instead of
// growing a new row per span.
func TestLaneReuse(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 5; i++ {
		sp := tr.Start("seq")
		sp.End()
	}
	for _, e := range tr.Events() {
		if e.Lane != 1 {
			t.Fatalf("sequential root landed on lane %d, want 1", e.Lane)
		}
	}
}

// TestChromeTraceJSON checks the export is valid Chrome trace_event JSON
// with the fields the viewers require.
func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("solve")
	sp.Start("assemble").End()
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.PID != 1 || e.TID < 1 || e.Dur < 0 {
			t.Errorf("malformed event %+v", e)
		}
	}
}

// TestNilTracerAndSpans pins the nil-safe no-op contract of the tracer.
func TestNilTracerAndSpans(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	sp.Start("y").End() // must not panic
	sp.End()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer has events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace not valid JSON: %v", err)
	}

	// Global tracing off: StartSpan must return a no-op span.
	DisableTracing()
	if s := StartSpan("x"); s != nil {
		t.Fatal("StartSpan returned a span while tracing disabled")
	}
	tt := EnableTracing()
	defer DisableTracing()
	s := StartSpan("on")
	s.End()
	if tt.Len() != 1 {
		t.Errorf("global tracer recorded %d events, want 1", tt.Len())
	}
}

// TestSpanEndIdempotent: double End must record exactly one event.
func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("once")
	sp.End()
	sp.End()
	if got := tr.Len(); got != 1 {
		t.Fatalf("double End recorded %d events", got)
	}
}
