package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func diffFixtures() (*Manifest, *Manifest) {
	a := &Manifest{
		Schema: 1, Binary: "vsim", VCSRevision: "aaaa1111bbbb2222cccc",
		Flags:   map[string]string{"layers": "8", "grid": "32", "kind": "vs"},
		Seeds:   map[string]int64{"study": 1},
		Metrics: json.RawMessage(`{"counters":{"pdngrid_solves_total":4,"sparse_pcg_iterations_total":100}}`),
		Outputs: []ManifestOutput{
			{Name: "stdout", SHA256: "s1", Bytes: 10},
			{Name: "csv", Path: "a.csv", SHA256: "c1", Bytes: 5},
			{Name: "trace", Path: "t.json", SHA256: "t1", Bytes: 7},
		},
	}
	b := &Manifest{
		Schema: 1, Binary: "vsim", VCSRevision: "aaaa1111bbbb2222cccc",
		Flags:   map[string]string{"layers": "16", "grid": "32", "kind": "vs"},
		Seeds:   map[string]int64{"study": 2},
		Metrics: json.RawMessage(`{"counters":{"pdngrid_solves_total":4,"sparse_pcg_iterations_total":250}}`),
		Outputs: []ManifestOutput{
			{Name: "stdout", SHA256: "s2", Bytes: 11},
			{Name: "csv", Path: "b.csv", SHA256: "c1", Bytes: 5},
			{Name: "events", Path: "e.jsonl", SHA256: "e1", Bytes: 3},
		},
	}
	return a, b
}

func TestDiffManifests(t *testing.T) {
	a, b := diffFixtures()
	d := DiffManifests(a, b)

	if !d.SameBinary || !d.SameRevision {
		t.Errorf("SameBinary=%v SameRevision=%v, want true/true", d.SameBinary, d.SameRevision)
	}
	if len(d.FlagDelta) != 1 || d.FlagDelta[0].Key != "layers" || d.FlagDelta[0].A != "8" || d.FlagDelta[0].B != "16" {
		t.Errorf("FlagDelta = %+v", d.FlagDelta)
	}
	if len(d.SeedDelta) != 1 || d.SeedDelta[0].Key != "study" {
		t.Errorf("SeedDelta = %+v", d.SeedDelta)
	}
	if len(d.MetricDelta) != 1 {
		t.Fatalf("MetricDelta = %+v", d.MetricDelta)
	}
	if c := d.MetricDelta[0]; c.Name != "sparse_pcg_iterations_total" || c.Delta != 150 {
		t.Errorf("MetricDelta[0] = %+v", c)
	}

	byName := map[string]OutputCompare{}
	for _, o := range d.Outputs {
		byName[o.Name] = o
	}
	if o := byName["csv"]; !o.Match {
		t.Errorf("csv should match: %+v", o)
	}
	if o := byName["stdout"]; o.Match {
		t.Errorf("stdout should mismatch: %+v", o)
	}
	if o := byName["trace"]; o.OnlyIn != "A" {
		t.Errorf("trace should be only in A: %+v", o)
	}
	if o := byName["events"]; o.OnlyIn != "B" {
		t.Errorf("events should be only in B: %+v", o)
	}
	if d.OutputsMatch() {
		t.Error("OutputsMatch true despite mismatched stdout")
	}
}

func TestDiffIdenticalRuns(t *testing.T) {
	a, _ := diffFixtures()
	b := *a
	d := DiffManifests(a, &b)
	if len(d.FlagDelta)+len(d.SeedDelta)+len(d.MetricDelta) != 0 {
		t.Errorf("identical manifests produced deltas: %+v", d)
	}
	if !d.OutputsMatch() {
		t.Error("identical manifests: OutputsMatch false")
	}
	out := d.Render()
	for _, want := range []string{"identical flags and seeds", "identical or absent metric snapshots", "all output hashes equal"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffRender(t *testing.T) {
	a, b := diffFixtures()
	a.ExitError = "solver blew up"
	out := DiffManifests(a, b).Render()
	for _, want := range []string{
		"A: vsim aaaa1111bbbb",
		"FAILED: solver blew up",
		`-layers: "8" -> "16"`,
		"seed study: 1 -> 2",
		"sparse_pcg_iterations_total",
		"(+150)",
		"MATCH",
		"MISMATCH",
		"only in A",
		"only in B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "all output hashes equal") {
		t.Errorf("mismatched diff claims all hashes equal:\n%s", out)
	}
}

func TestOutputCompareMissing(t *testing.T) {
	a := &Manifest{Outputs: []ManifestOutput{{Name: "csv", Missing: true}}}
	b := &Manifest{Outputs: []ManifestOutput{{Name: "csv", SHA256: "c1"}}}
	d := DiffManifests(a, b)
	if d.Outputs[0].Match {
		t.Error("a missing output must never match")
	}
}
