// Solver-health plumbing: the process-wide gate for the convergence
// probes that live next to the numerics in internal/sparse, and the
// most-recent-health snapshot behind /statusz's convergence section and
// the per-run history record.
//
// The probes follow the flight-recorder discipline exactly: off by
// default, one atomic load per solve when disabled, and — because they
// only *read* values the solver already computed — guaranteed not to
// perturb solver arithmetic. Results are byte-identical with the gate on
// or off; sparsetest pins that contract at the sparse, circuit and
// pdngrid levels.
package telemetry

import (
	"sync"
	"sync/atomic"
)

var probesOn atomic.Bool

// EnableConvergenceProbes turns on per-solve convergence analytics in the
// numerical core: residual/α/β history rings, Lanczos-based condition
// estimates, and the stagnation/plateau/degradation detectors. Purely
// additive — solver results are byte-identical either way.
func EnableConvergenceProbes() { probesOn.Store(true) }

// DisableConvergenceProbes turns convergence analytics back off. Solves
// already in flight keep recording into their own probes.
func DisableConvergenceProbes() { probesOn.Store(false) }

// ProbesEnabled reports whether convergence probes are on. Solver entry
// points check this once per solve; when false the per-iteration cost is
// a nil check and no allocation happens.
func ProbesEnabled() bool { return probesOn.Load() }

// SolverHealth is the cross-package health summary of one iterative
// solve, produced by the sparse convergence probe and consumed by
// /statusz, the per-job stats document and the history store. Plain data
// so telemetry need not import sparse (which imports telemetry).
type SolverHealth struct {
	Kind           string  `json:"kind"` // "pcg"
	N              int     `json:"n"`
	Preconditioner string  `json:"preconditioner"`
	Iterations     int     `json:"iterations"`
	FinalResidual  float64 `json:"final_residual"`
	Converged      bool    `json:"converged"`

	// Spectral estimates from the CG Lanczos tridiagonal (zero extra
	// matvecs): extreme Ritz values of M⁻¹A and their ratio κ. Zero when
	// the solve was too short to estimate.
	LambdaMin    float64 `json:"lambda_min,omitempty"`
	LambdaMax    float64 `json:"lambda_max,omitempty"`
	CondEstimate float64 `json:"cond_estimate,omitempty"`

	// ReductionFactor is the geometric-mean per-iteration residual
	// reduction ‖r_k‖/‖r_{k-1}‖ over the recorded trajectory (1 = no
	// progress, smaller is faster).
	ReductionFactor float64 `json:"reduction_factor,omitempty"`

	// Detector verdicts (see sparse: stagnation = no net progress over
	// the trailing window, plateau = reduction factor near 1 while above
	// tolerance, degradation = the trailing window converges much slower
	// than the leading one).
	Stagnation  bool `json:"stagnation,omitempty"`
	Plateau     bool `json:"plateau,omitempty"`
	Degradation bool `json:"precond_degradation,omitempty"`
}

// Most-recent solver health behind /statusz. Written by the sparse probe
// at solve end (so only while probes are on), read by Status() and the
// CLI history writer.
var (
	healthMu    sync.Mutex
	lastHealth  SolverHealth
	healthSeen  bool
	healthCount int64
)

// RecordSolverHealth stores the health summary of the most recently
// probed solve. Called by the sparse convergence probe; cheap enough to
// take unconditionally there (one mutex per solve, never per iteration).
func RecordSolverHealth(h SolverHealth) {
	healthMu.Lock()
	lastHealth = h
	healthSeen = true
	healthCount++
	healthMu.Unlock()
}

// LastSolverHealth returns the most recently recorded solve health and
// whether any solve has been probed in this process.
func LastSolverHealth() (SolverHealth, bool) {
	healthMu.Lock()
	defer healthMu.Unlock()
	return lastHealth, healthSeen
}

// SolverHealthCount returns how many probed solves have reported health
// so far in this process.
func SolverHealthCount() int64 {
	healthMu.Lock()
	defer healthMu.Unlock()
	return healthCount
}
