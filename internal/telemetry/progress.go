package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// DefaultProgressInterval is the minimum spacing between progress lines.
// Long sweeps print roughly one line per interval; anything that finishes
// inside the first interval prints nothing at all, so quick runs stay
// silent.
const DefaultProgressInterval = 5 * time.Second

var (
	progressOn       atomic.Bool
	progressInterval atomic.Int64 // nanoseconds
	progressWriter   atomic.Pointer[io.Writer]
)

func init() { progressInterval.Store(int64(DefaultProgressInterval)) }

// EnableProgress turns on stderr progress reporting. interval <= 0 keeps
// the current (default 5 s) spacing.
func EnableProgress(interval time.Duration) {
	if interval > 0 {
		progressInterval.Store(int64(interval))
	}
	progressOn.Store(true)
}

// DisableProgress turns progress reporting back off.
func DisableProgress() { progressOn.Store(false) }

// ProgressEnabled reports whether progress reporting is on.
func ProgressEnabled() bool { return progressOn.Load() }

// SetProgressWriter redirects progress lines (default os.Stderr); a nil w
// restores the default. For tests.
func SetProgressWriter(w io.Writer) {
	if w == nil {
		progressWriter.Store(nil)
		return
	}
	progressWriter.Store(&w)
}

func progressOut() io.Writer {
	if w := progressWriter.Load(); w != nil {
		return *w
	}
	return os.Stderr
}

// Progress tracks completion of a known number of work items and prints
// rate-limited "label: done/total (pct) rate" lines to stderr. NewProgress
// returns nil when progress reporting is disabled, and all methods are
// nil-safe, so call sites need no conditionals. Progress never writes to
// stdout, keeping program outputs byte-identical with telemetry on or off.
type Progress struct {
	label   string
	total   int64
	done    atomic.Int64
	start   time.Time
	last    atomic.Int64 // unixnano of the last printed line
	printed atomic.Bool
}

// NewProgress starts tracking total work items under the given label.
// Returns nil (a no-op) when progress reporting is disabled.
func NewProgress(label string, total int) *Progress {
	if !progressOn.Load() {
		return nil
	}
	now := time.Now()
	p := &Progress{label: label, total: int64(total), start: now}
	p.last.Store(now.UnixNano())
	return p
}

// Add records n completed items and prints a line if the reporting
// interval has elapsed since the last one.
func (p *Progress) Add(n int) {
	if p == nil {
		return
	}
	done := p.done.Add(int64(n))
	now := time.Now().UnixNano()
	last := p.last.Load()
	if now-last < progressInterval.Load() {
		return
	}
	if !p.last.CompareAndSwap(last, now) {
		return // another goroutine just printed
	}
	p.print(done)
}

// Finish prints a final line — but only if at least one periodic line was
// printed, so short runs remain completely silent.
func (p *Progress) Finish() {
	if p == nil || !p.printed.Load() {
		return
	}
	p.print(p.done.Load())
}

func (p *Progress) print(done int64) {
	p.printed.Store(true)
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	if p.total > 0 {
		fmt.Fprintf(progressOut(), "%s: %d/%d (%.0f%%) %.1f/s elapsed %.0fs\n",
			p.label, done, p.total, 100*float64(done)/float64(p.total), rate, elapsed)
	} else {
		fmt.Fprintf(progressOut(), "%s: %d done %.1f/s elapsed %.0fs\n",
			p.label, done, rate, elapsed)
	}
}
