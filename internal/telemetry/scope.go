package telemetry

import (
	"context"
	"sort"
	"sync"
)

// Scope is per-request (per-job) telemetry: its own enabled Registry layered
// over the process registry — every instrument write lands in the job scope
// AND in a same-named process-global aggregate — plus a bounded exemplar
// store linking extreme observations back to (trace ID, span ID) evidence.
//
// A nil *Scope is a valid no-op receiver everywhere, so instrumented code
// can call ScopeFrom(ctx) once and use the result unconditionally.
type Scope struct {
	tc  TraceContext
	reg *Registry
	ex  *ExemplarStore
}

// scopeExemplarCap bounds the per-metric exemplar list in one job scope.
const scopeExemplarCap = 8

// NewScope returns a scope recording under tc, layered over the process
// registry (scope writes propagate to same-named process instruments,
// which record only while process telemetry is enabled).
func NewScope(tc TraceContext) *Scope {
	return &Scope{tc: tc, reg: NewScopedRegistry(std), ex: NewExemplarStore(scopeExemplarCap)}
}

// Trace returns the scope's trace context (zero for nil).
func (s *Scope) Trace() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

// Registry returns the scope's registry (nil for a nil scope — still a
// valid no-op registry receiver).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter returns the scope's named counter (nil-safe).
func (s *Scope) Counter(name string) *Counter { return s.Registry().Counter(name) }

// Gauge returns the scope's named gauge (nil-safe).
func (s *Scope) Gauge(name string) *Gauge { return s.Registry().Gauge(name) }

// Histogram returns the scope's named histogram (nil-safe).
func (s *Scope) Histogram(name string) *Histogram { return s.Registry().Histogram(name) }

// Exemplars returns the scope's exemplar store (nil for a nil scope).
func (s *Scope) Exemplars() *ExemplarStore {
	if s == nil {
		return nil
	}
	return s.ex
}

// RecordExemplar stores e in the scope (top-K by value per metric) and
// mirrors it into the process exemplar store. Empty trace fields are filled
// from the scope's own trace context. No-op on nil.
func (s *Scope) RecordExemplar(e Exemplar) {
	if s == nil {
		return
	}
	if e.TraceID == "" {
		e.TraceID = s.tc.TraceIDString()
		e.SpanID = s.tc.SpanIDString()
	}
	s.ex.Record(e)
	stdExemplars.Record(e)
}

type scopeCtxKey struct{}

// WithScope returns a context carrying s.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeCtxKey{}, s)
}

// ScopeFrom returns the scope carried by ctx, or nil. The nil result is a
// valid no-op scope.
func ScopeFrom(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeCtxKey{}).(*Scope)
	return s
}

// Exemplar links one extreme observation (a slow solve, a long queue wait)
// to the exact trace span that produced it, with enough solver evidence
// attached to diagnose it without re-running: iteration count, final
// residual, and — when the flight recorder was on — the per-iteration
// residual timeline.
type Exemplar struct {
	Metric     string    `json:"metric"`
	Value      float64   `json:"value"`
	TraceID    string    `json:"trace_id,omitempty"`
	SpanID     string    `json:"span_id,omitempty"`
	Iterations int       `json:"iterations,omitempty"`
	Residual   float64   `json:"residual,omitempty"`
	Residuals  []float64 `json:"residuals,omitempty"`
}

// ExemplarStore keeps, per metric, the top-K exemplars by Value. Safe for
// concurrent use; a nil store is a valid no-op.
type ExemplarStore struct {
	mu  sync.Mutex
	cap int
	m   map[string][]Exemplar // sorted descending by Value, len <= cap
}

// NewExemplarStore returns a store keeping up to capPerMetric exemplars
// per metric name.
func NewExemplarStore(capPerMetric int) *ExemplarStore {
	if capPerMetric < 1 {
		capPerMetric = 1
	}
	return &ExemplarStore{cap: capPerMetric, m: map[string][]Exemplar{}}
}

// Record inserts e, evicting the smallest-valued exemplar of its metric
// when the per-metric list is full. No-op on nil.
func (s *ExemplarStore) Record(e Exemplar) {
	if s == nil || e.Metric == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.m[e.Metric]
	i := sort.Search(len(list), func(i int) bool { return list[i].Value < e.Value })
	if i >= s.cap {
		return
	}
	list = append(list, Exemplar{})
	copy(list[i+1:], list[i:])
	list[i] = e
	if len(list) > s.cap {
		list = list[:s.cap]
	}
	s.m[e.Metric] = list
}

// Snapshot returns all exemplars, ordered by metric name then descending
// value — a deterministic order for dumps.
func (s *ExemplarStore) Snapshot() []Exemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := sortedNames(s.m)
	var out []Exemplar
	for _, n := range names {
		out = append(out, s.m[n]...)
	}
	return out
}

// stdExemplars is the process-wide exemplar store, surfaced on /statusz.
var stdExemplars = NewExemplarStore(scopeExemplarCap)

// ProcessExemplars returns the process-wide exemplar store.
func ProcessExemplars() *ExemplarStore { return stdExemplars }
