// Package telemetry is the toolchain's observability layer: a process-wide
// metrics registry (counters, gauges, log-bucketed histograms), a span
// tracer that records hierarchical timing trees exportable as Chrome
// trace_event JSON, and a rate-limited stderr progress reporter for long
// sweeps and Monte Carlo runs.
//
// Everything is off by default and every handle is nil-safe, so
// instrumented hot paths (the PCG loop, the BE stepper, the worker pool)
// pay a single atomic load per call site when telemetry is disabled and
// nothing at all when a handle is nil. Instruments are created once at
// package init against the process registry; enabling telemetry
// (Enable / EnableTracing / EnableProgress, or the CLI helper in cli.go)
// only flips gates — it never changes what the instrumented code computes,
// so program outputs are byte-identical with telemetry on or off.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets per histogram. Bucket i
// covers (2^(i-1), 2^i] for i >= 1; bucket 0 covers [0, 1]. With 64
// buckets the upper bound is 2^63, far beyond any observed count or
// duration in seconds.
const histBuckets = 64

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry (standalone registries start enabled — handy for tests) or
// use the package-level process registry, which starts disabled and is
// toggled with Enable/Disable. A nil *Registry is a valid no-op receiver
// for every method.
type Registry struct {
	on     atomic.Bool
	parent *Registry // layered registry: writes forward to same-named parent instruments

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := newRegistry()
	r.on.Store(true)
	return r
}

// NewScopedRegistry returns an enabled registry layered over parent: every
// write to one of its instruments also writes the same-named instrument of
// parent (which applies its own gate, so a disabled parent records
// nothing). This is how per-job scopes feed process-global aggregates.
func NewScopedRegistry(parent *Registry) *Registry {
	r := newRegistry()
	r.parent = parent
	r.on.Store(true)
	return r
}

func newRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// std is the process registry behind the package-level constructors.
// It exists from init (so instruments can bind to it at package load)
// but records nothing until Enable.
var std = newRegistry()

// Enable turns on metrics recording for the process registry.
func Enable() { std.on.Store(true) }

// Disable turns metrics recording back off. Recorded values are kept.
func Disable() { std.on.Store(false) }

// Enabled reports whether the process registry is recording.
func Enabled() bool { return std.on.Load() }

// Default returns the process registry (for dumping; it is never nil).
func Default() *Registry { return std }

// Now returns the current time when the process registry is enabled and
// the zero time otherwise. Pair it with Histogram.Since to time a region
// without paying for the clock when telemetry is off:
//
//	t0 := telemetry.Now()
//	... work ...
//	solveSeconds.Since(t0)
func Now() time.Time {
	if !std.on.Load() {
		return time.Time{}
	}
	return time.Now()
}

// NewCounter returns the named counter of the process registry, creating
// it if needed. Safe to call from package init.
func NewCounter(name string) *Counter { return std.Counter(name) }

// NewGauge returns the named gauge of the process registry.
func NewGauge(name string) *Gauge { return std.Gauge(name) }

// NewHistogram returns the named histogram of the process registry.
func NewHistogram(name string) *Histogram { return std.Histogram(name) }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, on: &r.on}
		if r.parent != nil {
			c.parent = r.parent.Counter(name)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, on: &r.on}
		if r.parent != nil {
			g.parent = r.parent.Gauge(name)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, on: &r.on}
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
		if r.parent != nil {
			h.parent = r.parent.Histogram(name)
		}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument (the instruments themselves survive, so
// handles bound at init stay valid). Intended for tests.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name   string
	on     *atomic.Bool
	parent *Counter // same-named instrument of the registry's parent, if layered
	v      atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter or a disabled
// registry. In a layered registry the write also forwards to the parent's
// same-named counter (subject to the parent's own gate).
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
	c.parent.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that holds the most recently set value.
type Gauge struct {
	name   string
	on     *atomic.Bool
	parent *Gauge
	bits   atomic.Uint64
}

// Set stores v. No-op on a nil gauge or a disabled registry. Forwards to
// the layered parent's same-named gauge, if any.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.parent.Set(v)
}

// Add atomically adds delta to the gauge (CAS loop, safe for concurrent
// up/down counting — a Set(Value()+1) from two goroutines can lose an
// update and leave the gauge stale forever). No-op on a nil gauge or a
// disabled registry; forwards to the layered parent's same-named gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	g.parent.Add(delta)
}

// Value returns the last set value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a log2-bucketed distribution of non-negative float64
// observations with exact count/sum/min/max side stats. All methods are
// safe for concurrent use and lock-free.
type Histogram struct {
	name    string
	on      *atomic.Bool
	parent  *Histogram
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a non-negative observation to its log2 bucket.
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	// Frexp: v = f × 2^e with f in [0.5, 1), so 2^(e-1) <= v < 2^e and
	// the covering bucket upper bound is 2^e (or 2^(e-1) when f == 0.5).
	f, e := math.Frexp(v)
	if f == 0.5 {
		e--
	}
	if e < 0 {
		e = 0
	}
	if e >= histBuckets {
		e = histBuckets - 1
	}
	return e
}

// Observe records one sample. Negative or NaN samples are clamped to 0 and
// +Inf to MaxFloat64, so the side stats stay finite and JSON-encodable.
// No-op on a nil histogram or a disabled registry. Forwards to the layered
// parent's same-named histogram, if any.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	} else if math.IsInf(v, 1) {
		v = math.MaxFloat64
	}
	h.parent.Observe(v)
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Since observes the elapsed seconds from t0, obtained from Now. A zero
// t0 (telemetry was disabled at the start of the region) records nothing.
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() || !h.on.Load() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// HistogramBucket is one populated log2 bucket of a histogram snapshot.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of one histogram. An empty
// histogram snapshots as all zeros (never the ±Inf min/max sentinels), and
// every field is sanitized to a finite value, so snapshots are always
// JSON-encodable — including per-job scoped dumps of untouched instruments.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// finite clamps NaN and ±Inf to 0 / ±MaxFloat64 so the value survives
// encoding/json (which rejects non-finite floats).
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = finite(math.Float64frombits(h.sumBits.Load()))
	if s.Count > 0 {
		s.Min = finite(math.Float64frombits(h.minBits.Load()))
		s.Max = finite(math.Float64frombits(h.maxBits.Load()))
		s.Mean = finite(s.Sum / float64(s.Count))
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{math.Ldexp(1, i), n})
		}
	}
	return s
}

// RegistrySnapshot is a point-in-time copy of every instrument in a
// registry, with finite (JSON-safe) float values. It is the JSON shape of
// WriteJSON and the registry portion of per-job stats documents.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument. Safe on a nil registry (empty maps).
func (r *Registry) Snapshot() RegistrySnapshot {
	out := RegistrySnapshot{map[string]int64{}, map[string]float64{}, map[string]HistogramSnapshot{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		out.Counters[n] = c.v.Load()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = finite(math.Float64frombits(g.bits.Load()))
	}
	for n, h := range r.hists {
		out.Histograms[n] = h.snapshot()
	}
	return out
}

// sortedNames returns the sorted keys of a map, for stable dumps.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON dumps every instrument as a single JSON object with stable
// (sorted) key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus dumps every instrument in the Prometheus text exposition
// format (counters as `_total`-style counters, histograms as cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range sortedNames(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].v.Load()); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.gauges) {
		v := finite(math.Float64frombits(r.gauges[n].bits.Load()))
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, v); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.hists) {
		h := r.hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i := range h.buckets {
			c := h.buckets[i].Load()
			if c == 0 {
				continue
			}
			cum += c
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, math.Ldexp(1, i), cum); err != nil {
				return err
			}
		}
		count := h.count.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, finite(math.Float64frombits(h.sumBits.Load())), n, count); err != nil {
			return err
		}
	}
	return nil
}
