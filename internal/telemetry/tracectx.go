package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
)

// TraceContext identifies one request end-to-end: a 16-byte trace ID shared
// by every span the request touches and an 8-byte span ID naming the current
// operation. The wire form is the W3C Trace Context `traceparent` header
// (version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// The zero value is "no trace" and is what TraceContextFrom returns for a
// context that carries nothing; every consumer checks Valid before paying
// for annotation, so propagating a zero TraceContext costs nothing.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether the trace ID and span ID are both non-zero, per the
// W3C spec (an all-zero ID means "absent").
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-char lowercase-hex trace ID ("" when invalid).
func (tc TraceContext) TraceIDString() string {
	if !tc.Valid() {
		return ""
	}
	return hex.EncodeToString(tc.TraceID[:])
}

// SpanIDString returns the 16-char lowercase-hex span ID ("" when invalid).
func (tc TraceContext) SpanIDString() string {
	if !tc.Valid() {
		return ""
	}
	return hex.EncodeToString(tc.SpanID[:])
}

// Traceparent renders the W3C traceparent header value. Returns "" for an
// invalid (zero) context so callers can set headers unconditionally.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	// 00-<32 hex>-<16 hex>-<2 hex>
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52] = '-'
	hex.Encode(b[53:55], []byte{tc.Flags})
	return string(b[:])
}

// Errors returned by ParseTraceparent. Sentinels, not fmt.Errorf, so the
// common reject paths allocate nothing beyond the call itself.
var (
	errTraceparentSyntax  = errors.New("telemetry: malformed traceparent")
	errTraceparentVersion = errors.New("telemetry: unsupported traceparent version")
	errTraceparentZeroID  = errors.New("telemetry: traceparent has all-zero trace or span id")
)

// ParseTraceparent parses a W3C traceparent header value. Only version 00
// is accepted; hex must be lowercase per the spec; all-zero trace or span
// IDs are rejected.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, errTraceparentSyntax
	}
	if s[0] != '0' || s[1] != '0' {
		// "ff" is forbidden outright; anything else non-zero is a future
		// version we do not speak — reject rather than mis-parse.
		return tc, errTraceparentVersion
	}
	if !isLowerHex(s[3:35]) || !isLowerHex(s[36:52]) || !isLowerHex(s[53:55]) {
		return tc, errTraceparentSyntax
	}
	hexDecode(tc.TraceID[:], s[3:35])
	hexDecode(tc.SpanID[:], s[36:52])
	var f [1]byte
	hexDecode(f[:], s[53:55])
	tc.Flags = f[0]
	if !tc.Valid() {
		return TraceContext{}, errTraceparentZeroID
	}
	return tc, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// hexDecode decodes validated lowercase hex into dst (len(s) == 2*len(dst)).
func hexDecode(dst []byte, s string) {
	for i := range dst {
		dst[i] = unhex(s[2*i])<<4 | unhex(s[2*i+1])
	}
}

func unhex(c byte) byte {
	if c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}

// spanIDSeq generates span IDs: a crypto-seeded counter run through a
// SplitMix64 finalizer, so IDs are unique per process and effectively
// unpredictable without paying for crypto/rand per span.
var spanIDSeq atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		spanIDSeq.Store(binary.LittleEndian.Uint64(seed[:]))
	}
}

func nextSpanID() [8]byte {
	x := spanIDSeq.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], x)
	if id == [8]byte{} { // astronomically unlikely, but zero means "absent"
		id[7] = 1
	}
	return id
}

// NewTrace mints a fresh trace: a crypto-random trace ID, a fresh span ID,
// and the "sampled" flag set.
func NewTrace() TraceContext {
	var tc TraceContext
	if _, err := rand.Read(tc.TraceID[:]); err != nil || tc.TraceID == [16]byte{} {
		// Degrade to the span-ID generator rather than return an invalid
		// context; losing cryptographic quality here only weakens ID
		// unpredictability, not correctness.
		a, b := nextSpanID(), nextSpanID()
		copy(tc.TraceID[:8], a[:])
		copy(tc.TraceID[8:], b[:])
	}
	tc.SpanID = nextSpanID()
	tc.Flags = 0x01
	return tc
}

// Child returns a context in the same trace with a fresh span ID. The
// receiver's span becomes (by convention) the parent of whatever the child
// context names. Child of an invalid context is invalid.
func (tc TraceContext) Child() TraceContext {
	if !tc.Valid() {
		return TraceContext{}
	}
	tc.SpanID = nextSpanID()
	return tc
}

type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. Storing an invalid tc is
// allowed and equivalent to storing nothing.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context from ctx: a directly stored
// TraceContext wins, then the trace of an attached job Scope; otherwise the
// zero TraceContext.
func TraceContextFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	if tc, ok := ctx.Value(traceCtxKey{}).(TraceContext); ok {
		return tc
	}
	if s, ok := ctx.Value(scopeCtxKey{}).(*Scope); ok && s != nil {
		return s.tc
	}
	return TraceContext{}
}

// StartSpanCtx opens a root span on the process tracer annotated with the
// trace context carried by ctx (fresh span ID, ctx's span as parent). When
// tracing is disabled it returns nil without touching ctx — zero work,
// zero allocations.
func StartSpanCtx(ctx context.Context, name string) *Span {
	t := stdTracer.Load()
	if t == nil {
		return nil
	}
	return t.StartTrace(name, TraceContextFrom(ctx))
}

// StartSpanTrace opens a root span on the process tracer annotated with tc
// directly. Nil when tracing is disabled.
func StartSpanTrace(name string, tc TraceContext) *Span {
	return stdTracer.Load().StartTrace(name, tc)
}
