// Manifest diffing: the comparison engine behind cmd/vsreport. Two runs are
// compared along three axes — configuration (flags + seeds), recorded
// metrics (counter deltas from the embedded snapshots), and output content
// (hash match/mismatch per artifact). The typical uses are "what changed
// between these two sweeps?" and "are these two identical-seed runs really
// bit-identical?".
package telemetry

import (
	"fmt"
	"strings"
)

// FieldChange is one differing key between two manifests.
type FieldChange struct {
	Key  string
	A, B string
}

// CounterChange is one differing metric counter.
type CounterChange struct {
	Name  string
	A, B  int64
	Delta int64
}

// OutputCompare pairs up one named output across two manifests.
type OutputCompare struct {
	Name     string
	Match    bool
	OnlyIn   string // "A" or "B" when the other run lacks this output
	SHAA     string
	SHAB     string
	BytesA   int64
	BytesB   int64
	MissingA bool
	MissingB bool
}

// ManifestDiff is the structured comparison of two manifests.
type ManifestDiff struct {
	A, B *Manifest

	SameBinary   bool
	SameRevision bool
	FlagDelta    []FieldChange
	SeedDelta    []FieldChange
	MetricDelta  []CounterChange
	Outputs      []OutputCompare
}

// OutputsMatch reports whether every output present in both runs hashed
// identically (and none was one-sided or missing).
func (d *ManifestDiff) OutputsMatch() bool {
	for _, o := range d.Outputs {
		if !o.Match {
			return false
		}
	}
	return true
}

// DiffManifests compares two manifests field by field.
func DiffManifests(a, b *Manifest) *ManifestDiff {
	d := &ManifestDiff{
		A: a, B: b,
		SameBinary:   a.Binary == b.Binary,
		SameRevision: a.VCSRevision == b.VCSRevision,
	}
	for _, k := range sortedKeys(a.Flags, b.Flags) {
		if a.Flags[k] != b.Flags[k] {
			d.FlagDelta = append(d.FlagDelta, FieldChange{k, a.Flags[k], b.Flags[k]})
		}
	}
	for _, k := range sortedKeys(a.Seeds, b.Seeds) {
		va, oka := a.Seeds[k]
		vb, okb := b.Seeds[k]
		if va != vb || oka != okb {
			d.SeedDelta = append(d.SeedDelta, FieldChange{k, seedStr(va, oka), seedStr(vb, okb)})
		}
	}
	ca, cb := a.metricsCounters(), b.metricsCounters()
	for _, k := range sortedKeys(ca, cb) {
		if ca[k] != cb[k] {
			d.MetricDelta = append(d.MetricDelta, CounterChange{k, ca[k], cb[k], cb[k] - ca[k]})
		}
	}
	oa, ob := outputsByName(a), outputsByName(b)
	for _, k := range sortedKeys(oa, ob) {
		xa, oka := oa[k]
		xb, okb := ob[k]
		cmp := OutputCompare{Name: k}
		switch {
		case oka && okb:
			cmp.SHAA, cmp.SHAB = xa.SHA256, xb.SHA256
			cmp.BytesA, cmp.BytesB = xa.Bytes, xb.Bytes
			cmp.MissingA, cmp.MissingB = xa.Missing, xb.Missing
			cmp.Match = !xa.Missing && !xb.Missing && xa.SHA256 == xb.SHA256
		case oka:
			cmp.OnlyIn, cmp.SHAA, cmp.BytesA, cmp.MissingA = "A", xa.SHA256, xa.Bytes, xa.Missing
		default:
			cmp.OnlyIn, cmp.SHAB, cmp.BytesB, cmp.MissingB = "B", xb.SHA256, xb.Bytes, xb.Missing
		}
		d.Outputs = append(d.Outputs, cmp)
	}
	return d
}

func seedStr(v int64, ok bool) string {
	if !ok {
		return "(unset)"
	}
	return fmt.Sprintf("%d", v)
}

func outputsByName(m *Manifest) map[string]ManifestOutput {
	out := map[string]ManifestOutput{}
	for _, o := range m.Outputs {
		out[o.Name] = o
	}
	return out
}

// Render formats the diff as the human-readable vsreport output.
func (d *ManifestDiff) Render() string {
	var b strings.Builder
	hdr := func(m *Manifest, tag string) {
		rev := m.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev == "" {
			rev = "(no vcs stamp)"
		}
		fmt.Fprintf(&b, "%s: %s %s  started %s  wall %.1fs", tag, m.Binary, rev, m.StartTime, m.WallSeconds)
		if m.ExitError != "" {
			fmt.Fprintf(&b, "  FAILED: %s", m.ExitError)
		}
		b.WriteByte('\n')
	}
	hdr(d.A, "A")
	hdr(d.B, "B")

	b.WriteString("\nconfig delta:\n")
	if len(d.FlagDelta)+len(d.SeedDelta) == 0 {
		b.WriteString("  (identical flags and seeds)\n")
	}
	for _, c := range d.FlagDelta {
		fmt.Fprintf(&b, "  -%s: %q -> %q\n", c.Key, c.A, c.B)
	}
	for _, c := range d.SeedDelta {
		fmt.Fprintf(&b, "  seed %s: %s -> %s\n", c.Key, c.A, c.B)
	}

	b.WriteString("\nmetric delta (counters):\n")
	if len(d.MetricDelta) == 0 {
		b.WriteString("  (identical or absent metric snapshots)\n")
	}
	for _, c := range d.MetricDelta {
		fmt.Fprintf(&b, "  %-40s %12d -> %-12d (%+d)\n", c.Name, c.A, c.B, c.Delta)
	}

	b.WriteString("\noutputs:\n")
	if len(d.Outputs) == 0 {
		b.WriteString("  (no outputs recorded)\n")
	}
	for _, o := range d.Outputs {
		switch {
		case o.OnlyIn != "":
			fmt.Fprintf(&b, "  %-10s only in %s\n", o.Name, o.OnlyIn)
		case o.Match:
			fmt.Fprintf(&b, "  %-10s MATCH    sha256 %s (%d bytes)\n", o.Name, short(o.SHAA), o.BytesA)
		default:
			fmt.Fprintf(&b, "  %-10s MISMATCH A %s (%d bytes)  B %s (%d bytes)\n",
				o.Name, short(o.SHAA), o.BytesA, short(o.SHAB), o.BytesB)
		}
	}
	if d.OutputsMatch() && len(d.Outputs) > 0 {
		b.WriteString("\nall output hashes equal\n")
	}
	return b.String()
}

func short(sha string) string {
	if len(sha) > 16 {
		return sha[:16]
	}
	if sha == "" {
		return "(missing)"
	}
	return sha
}
