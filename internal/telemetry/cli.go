package telemetry

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"voltstack/internal/telemetry/history"
)

// Flags is the shared observability flag set of the cmd/ binaries. Every
// binary registers the same flags so a user can attach metrics, tracing,
// structured event logging, profiling, provenance recording and live
// introspection to any entry point the same way.
type Flags struct {
	Metrics    string // -metrics:    JSON dump path (+ ".prom" Prometheus dump) on exit
	Trace      string // -trace:      Chrome trace_event JSON path on exit
	Events     string // -events:     structured JSON-lines event log ("stderr" or a path)
	Pprof      string // -pprof:      observability listen address (pprof + /metrics /healthz /statusz)
	Serve      string // -serve:      same server; also enables live metrics collection
	CPUProfile string // -cpuprofile: pprof CPU profile path, captured for the whole run
	Manifest   string // -manifest:   run provenance manifest JSON path on exit
	Postmortem string // -postmortem: directory for solver post-mortem artifacts (enables the flight recorder)
	Probes     bool   // -probes:     per-solve convergence analytics (condition estimates, detectors)
	History    string // -history:    append a per-run telemetry/convergence snapshot to the history store in this directory
	Progress   bool   // -progress:   periodic stderr progress lines for long runs

	// HistoryOptions bounds the -history store (segment rotation size,
	// retention count). Set before Init; the zero value means defaults.
	HistoryOptions history.Options

	manifest *Manifest
	servers  []*Server
	history  *history.Store
}

// HistoryStore returns the open history store when -history was given, or
// nil. Long-running binaries (vsserved) use it to append their own records
// — per-job snapshots — alongside the per-run record flush writes; the
// store stays open until the flush returned by Init runs.
func (f *Flags) HistoryStore() *history.Store { return f.history }

// RegisterFlags registers the observability flags on the default flag set.
// Call before flag.Parse.
func RegisterFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Metrics, "metrics", "", "write a metrics dump on exit: JSON at this path, Prometheus text at path+\".prom\"")
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON timing trace on exit (load in chrome://tracing or Perfetto)")
	flag.StringVar(&f.Events, "events", "", "write a structured JSON-lines event log to this path (\"stderr\" or \"-\" for stderr)")
	flag.StringVar(&f.Pprof, "pprof", "", "serve the observability endpoint (pprof, /metrics, /healthz, /statusz) on this address (e.g. localhost:6060)")
	flag.StringVar(&f.Serve, "serve", "", "serve the live observability endpoint on this address and collect metrics for mid-run scraping")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.StringVar(&f.Manifest, "manifest", "", "write a run provenance manifest (flags, seeds, VCS stamp, output hashes) to this path on exit")
	flag.StringVar(&f.Postmortem, "postmortem", "", "write solver post-mortem JSON artifacts into this directory on failures (enables the numerical flight recorder)")
	flag.BoolVar(&f.Probes, "probes", false, "enable per-solve convergence probes (condition estimates, stagnation/plateau detectors); results are byte-identical either way")
	flag.StringVar(&f.History, "history", "", "append a per-run telemetry/convergence snapshot to the history store in this directory (enables metrics and probes)")
	flag.BoolVar(&f.Progress, "progress", true, "print periodic stderr progress lines for long sweeps and Monte Carlo runs")
	return f
}

// RunManifest returns the provenance manifest of the current run, or nil
// when -manifest is off. Binaries use it to attach seeds and extra outputs;
// all Manifest methods are nil-safe, so no call site needs a conditional.
func (f *Flags) RunManifest() *Manifest { return f.manifest }

// ServeAddr returns the bound address of the first observability server
// (useful when -serve was given ":0"), or "" when none is running.
func (f *Flags) ServeAddr() string {
	if len(f.servers) == 0 {
		return ""
	}
	return f.servers[0].Addr()
}

// Init applies the parsed flags: enables the metric registry, tracer,
// event log, progress reporter and flight recorder as requested, starts
// the observability server(s), the CPU profile and the provenance
// manifest. It returns a flush function that must run before the process
// exits to stop profiling, shut the servers down and write every dump;
// flush is never nil, idempotent (the second call is a no-op returning
// nil), and safe to call when nothing was enabled.
//
// On error, everything partially started is torn down before returning,
// so a failed Init leaks no listener, goroutine or profile.
func (f *Flags) Init() (flush func() error, err error) {
	if f.Metrics != "" || f.Serve != "" || f.Manifest != "" || f.History != "" {
		// -serve needs live counters to scrape; a manifest embeds the final
		// snapshot; a history record flattens the final counters.
		Enable()
	}
	if f.Trace != "" {
		EnableTracing()
	}
	if f.Progress {
		EnableProgress(0)
	}
	if f.Postmortem != "" {
		SetPostmortemDir(f.Postmortem)
	}
	if f.Probes || f.History != "" {
		// A history snapshot without convergence analytics would miss the
		// fields the trend report exists to track.
		EnableConvergenceProbes()
	}

	var eventFile *os.File
	if f.Events != "" {
		var w io.Writer = os.Stderr
		if f.Events != "stderr" && f.Events != "-" {
			eventFile, err = os.Create(f.Events)
			if err != nil {
				return noopFlush, fmt.Errorf("telemetry: events: %w", err)
			}
			w = eventFile
		}
		EnableEventLog(w, slog.LevelInfo)
	}

	// Failure unwinding: every started resource pushes an undo.
	var undo []func()
	fail := func(err error) (func() error, error) {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		if eventFile != nil {
			DisableEventLog()
			eventFile.Close()
		}
		return noopFlush, err
	}

	if f.History != "" {
		f.history, err = history.Open(f.History, f.HistoryOptions)
		if err != nil {
			return fail(fmt.Errorf("telemetry: history: %w", err))
		}
		undo = append(undo, func() { f.history.Close(); f.history = nil })
	}

	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("telemetry: cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return fail(fmt.Errorf("telemetry: cpuprofile: %w", err))
		}
		undo = append(undo, func() { pprof.StopCPUProfile(); cpuFile.Close() })
	}

	// One observability server per distinct address; -serve and -pprof on
	// the same address share a single listener. Handlers live on a private
	// mux (never http.DefaultServeMux) and the listener is closed by flush,
	// so repeated Init calls in one process neither panic on duplicate
	// pprof registration nor leak sockets.
	addrs := []string{}
	if f.Serve != "" {
		addrs = append(addrs, f.Serve)
	}
	if f.Pprof != "" && f.Pprof != f.Serve {
		addrs = append(addrs, f.Pprof)
	}
	for _, addr := range addrs {
		srv, err := StartServer(addr)
		if err != nil {
			return fail(err)
		}
		f.servers = append(f.servers, srv)
		undo = append(undo, func() { srv.Close() })
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (/metrics /healthz /statusz /debug/pprof)\n", srv.Addr())
	}

	if f.Manifest != "" {
		f.manifest = NewManifest(binaryName())
		if err := f.manifest.CaptureStdout(); err != nil {
			return fail(err)
		}
		// Register the sibling dumps; they are hashed at manifest-write
		// time, after flush has produced them.
		if f.Metrics != "" {
			f.manifest.AddOutputFile("metrics", f.Metrics)
			f.manifest.AddOutputFile("metrics.prom", f.Metrics+".prom")
		}
		if f.Trace != "" {
			f.manifest.AddOutputFile("trace", f.Trace)
		}
		if eventFile != nil {
			f.manifest.AddOutputFile("events", f.Events)
		}
	}

	var once sync.Once
	flush = func() error {
		var errs []error
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					errs = append(errs, err)
				}
			}
			if f.Metrics != "" {
				if err := dumpMetrics(f.Metrics); err != nil {
					errs = append(errs, err)
				}
			}
			if f.Trace != "" {
				if err := writeFileWith(f.Trace, WriteTrace); err != nil {
					errs = append(errs, err)
				}
			}
			if eventFile != nil {
				DisableEventLog()
				if err := eventFile.Close(); err != nil {
					errs = append(errs, err)
				}
			}
			if f.history != nil {
				if err := f.history.Append(runHistoryRecord()); err != nil {
					errs = append(errs, err)
				}
				if err := f.history.Close(); err != nil {
					errs = append(errs, err)
				}
				f.history = nil
			}
			for _, srv := range f.servers {
				if err := srv.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
					errs = append(errs, err)
				}
			}
			f.servers = nil
			if f.manifest != nil {
				if err := f.manifest.WriteFile(f.Manifest); err != nil {
					errs = append(errs, err)
				}
			}
		})
		return errors.Join(errs...)
	}
	return flush, nil
}

// runHistoryRecord flattens the run's final process registry — counters,
// gauges, and the last solver-health report — into one history record, the
// CLI-side counterpart of vsserved's per-job snapshots.
func runHistoryRecord() history.Record {
	snap := std.Snapshot()
	vals := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+8)
	for name, v := range snap.Counters {
		vals[name] = float64(v)
	}
	for name, v := range snap.Gauges {
		vals[name] = v
	}
	if h, ok := LastSolverHealth(); ok {
		vals["health_iterations"] = float64(h.Iterations)
		vals["health_final_residual"] = h.FinalResidual
		if h.CondEstimate > 0 {
			vals["health_cond_estimate"] = h.CondEstimate
			vals["health_lambda_min"] = h.LambdaMin
			vals["health_lambda_max"] = h.LambdaMax
		}
		if h.ReductionFactor > 0 {
			vals["health_reduction_factor"] = h.ReductionFactor
		}
	}
	return history.Record{
		T:      time.Now().UnixMilli(),
		Kind:   "run",
		ID:     binaryName(),
		Values: vals,
	}
}

// binaryName returns the invoking binary's base name for the manifest.
func binaryName() string {
	if len(os.Args) == 0 {
		return "unknown"
	}
	name := os.Args[0]
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			return name[i+1:]
		}
	}
	return name
}

func noopFlush() error { return nil }

// dumpMetrics writes the process registry as JSON at path and in the
// Prometheus text format at path+".prom".
func dumpMetrics(path string) error {
	if err := writeFileWith(path, std.WriteJSON); err != nil {
		return err
	}
	return writeFileWith(path+".prom", std.WritePrometheus)
}

// writeFileWith writes the dump to a temp file in the destination
// directory and renames it into place, so an interrupted shutdown (a
// second SIGTERM mid-drain, a crash in another flush step) can never leave
// a truncated dump — in particular a -trace file with no closing bracket —
// at the requested path.
func writeFileWith(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
