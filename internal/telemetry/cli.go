package telemetry

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime/pprof"
)

// Flags is the shared observability flag set of the cmd/ binaries. Every
// binary registers the same five flags so a user can attach metrics,
// tracing, profiling and progress reporting to any entry point the same
// way.
type Flags struct {
	Metrics    string // -metrics:    JSON dump path (+ ".prom" Prometheus dump) on exit
	Trace      string // -trace:      Chrome trace_event JSON path on exit
	Pprof      string // -pprof:      net/http/pprof listen address (e.g. localhost:6060)
	CPUProfile string // -cpuprofile: pprof CPU profile path, captured for the whole run
	Progress   bool   // -progress:   periodic stderr progress lines for long runs
}

// RegisterFlags registers the observability flags on the default flag set.
// Call before flag.Parse.
func RegisterFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Metrics, "metrics", "", "write a metrics dump on exit: JSON at this path, Prometheus text at path+\".prom\"")
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON timing trace on exit (load in chrome://tracing or Perfetto)")
	flag.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.BoolVar(&f.Progress, "progress", true, "print periodic stderr progress lines for long sweeps and Monte Carlo runs")
	return f
}

// Init applies the parsed flags: enables the metric registry, tracer and
// progress reporter as requested, starts the pprof server and the CPU
// profile. It returns a flush function that must run before the process
// exits to stop profiling and write the metrics/trace dumps; flush is
// never nil and is safe to call when nothing was enabled.
func (f *Flags) Init() (flush func() error, err error) {
	if f.Metrics != "" {
		Enable()
	}
	if f.Trace != "" {
		EnableTracing()
	}
	if f.Progress {
		EnableProgress(0)
	}
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return noopFlush, fmt.Errorf("telemetry: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noopFlush, fmt.Errorf("telemetry: cpuprofile: %w", err)
		}
	}
	if f.Pprof != "" {
		ln, err := net.Listen("tcp", f.Pprof)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return noopFlush, fmt.Errorf("telemetry: pprof listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) // default mux carries the pprof handlers
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.Metrics != "" {
			if err := dumpMetrics(f.Metrics); err != nil {
				return err
			}
		}
		if f.Trace != "" {
			if err := writeFileWith(f.Trace, WriteTrace); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func noopFlush() error { return nil }

// dumpMetrics writes the process registry as JSON at path and in the
// Prometheus text format at path+".prom".
func dumpMetrics(path string) error {
	if err := writeFileWith(path, std.WriteJSON); err != nil {
		return err
	}
	return writeFileWith(path+".prom", std.WritePrometheus)
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
