package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestManifestSchemaGolden pins schema version 1: the exact JSON field
// names and layout external tooling (cmd/vsreport, provenance archives)
// depends on. If this test fails after an intentional change, the change is
// a schema bump — raise ManifestSchemaVersion and regenerate with -update.
func TestManifestSchemaGolden(t *testing.T) {
	m := &Manifest{
		Schema:      ManifestSchemaVersion,
		Binary:      "vsim",
		Args:        []string{"-layers", "8"},
		Flags:       map[string]string{"layers": "8"},
		Seeds:       map[string]int64{"study": 12345},
		GoVersion:   "go1.24.0",
		OS:          "linux",
		Arch:        "amd64",
		VCSRevision: "deadbeef",
		VCSTime:     "2026-01-02T03:04:05Z",
		VCSModified: true,
		StartTime:   "2026-01-02T03:04:06Z",
		WallSeconds: 1.5,
		Metrics:     json.RawMessage(`{"counters":{"pdngrid_solves_total":2}}`),
		Outputs: []ManifestOutput{
			{Name: "stdout", SHA256: "aa", Bytes: 10},
			{Name: "metrics", Path: "m.json", SHA256: "bb", Bytes: 20},
			{Name: "trace", Path: "t.json", Missing: true},
		},
		ExitError: "boom",
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "manifest_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest schema drifted from golden (schema bump needed?):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestManifestStdoutCapture(t *testing.T) {
	// Point the "real" stdout at a scratch file so the tee's pass-through
	// side is observable and the test output stays clean.
	scratch, err := os.Create(filepath.Join(t.TempDir(), "stdout.txt"))
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = scratch
	defer func() { os.Stdout = orig }()

	m := NewManifest("test")
	if err := m.CaptureStdout(); err != nil {
		t.Fatal(err)
	}
	const payload = "line one\nline two\n"
	fmt.Fprint(os.Stdout, payload)
	m.ReleaseStdout()

	if os.Stdout != scratch {
		t.Fatal("ReleaseStdout did not restore stdout")
	}
	passed, err := os.ReadFile(scratch.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(passed) != payload {
		t.Errorf("tee altered the stream: %q", passed)
	}
	sum := sha256.Sum256([]byte(payload))
	want := hex.EncodeToString(sum[:])
	var stdout *ManifestOutput
	for i := range m.Outputs {
		if m.Outputs[i].Name == "stdout" {
			stdout = &m.Outputs[i]
		}
	}
	if stdout == nil {
		t.Fatal("no stdout output recorded")
	}
	if stdout.SHA256 != want {
		t.Errorf("stdout hash = %s, want %s", stdout.SHA256, want)
	}
	if stdout.Bytes != int64(len(payload)) {
		t.Errorf("stdout bytes = %d, want %d", stdout.Bytes, len(payload))
	}
	// Idempotent.
	m.ReleaseStdout()
	if n := len(m.Outputs); n != 1 {
		t.Errorf("second ReleaseStdout appended: %d outputs", n)
	}
}

func TestManifestOutputHashing(t *testing.T) {
	dir := t.TempDir()
	data := []byte("artifact bytes")
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("test")
	m.AddOutputFile("csv", path)
	m.AddOutputFile("ghost", filepath.Join(dir, "never-written.csv"))

	mpath := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	byName := map[string]ManifestOutput{}
	for _, o := range got.Outputs {
		byName[o.Name] = o
	}
	if o := byName["csv"]; o.SHA256 != hex.EncodeToString(sum[:]) || o.Bytes != int64(len(data)) {
		t.Errorf("csv output = %+v", o)
	}
	if o := byName["ghost"]; !o.Missing || o.SHA256 != "" {
		t.Errorf("ghost output not marked missing: %+v", o)
	}
	if got.Schema != ManifestSchemaVersion {
		t.Errorf("schema = %d", got.Schema)
	}
}

func TestLoadManifestRejectsNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	doc := fmt.Sprintf(`{"schema": %d, "binary": "x"}`, ManifestSchemaVersion+1)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadManifest(path)
	if err == nil {
		t.Fatal("newer schema accepted")
	}
	if !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestManifestNilSafe(t *testing.T) {
	var m *Manifest
	m.AddSeed("s", 1)
	m.AddOutputFile("n", "p")
	m.SetExitError(fmt.Errorf("x"))
	if err := m.CaptureStdout(); err != nil {
		t.Fatal(err)
	}
	m.ReleaseStdout()
	if err := m.WriteFile(filepath.Join(t.TempDir(), "nil.json")); err != nil {
		t.Fatal(err)
	}
}
