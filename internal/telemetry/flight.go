// Flight-recorder and post-mortem plumbing. The recorder itself lives next
// to the numerics (sparse keeps per-iteration PCG residual rings, pdngrid
// keeps per-outer-pass convergence deltas); this file holds the process-wide
// gate those recorders consult and the artifact writer that turns a failed
// solve's trajectory into a JSON file a human (or vsreport) can open after
// the process is gone.
//
// Like every other gate in this package, recording is off by default and
// costs one atomic load per solve when disabled; the per-iteration ring
// appends only happen on solves that started with the gate on.
package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

var (
	recorderOn    atomic.Bool
	postmortemDir atomic.Pointer[string]
	postmortemSeq atomic.Int64
)

// EnableFlightRecorder turns on trajectory recording in the numerical core
// (PCG residual rings, outer-pass deltas). Recorders capture into
// per-solve buffers attached to returned errors; nothing is written to
// disk unless a post-mortem directory is also configured.
func EnableFlightRecorder() { recorderOn.Store(true) }

// DisableFlightRecorder turns trajectory recording back off. Solves already
// in flight keep recording into their own buffers.
func DisableFlightRecorder() { recorderOn.Store(false) }

// FlightRecorderEnabled reports whether solve-trajectory recording is on.
// Solver entry points check this once per solve.
func FlightRecorderEnabled() bool { return recorderOn.Load() }

// SetPostmortemDir configures (dir != "") or clears (dir == "") the
// directory DumpPostmortem writes artifacts into. The directory is created
// on the first dump, not here, so configuring a dir is side-effect free.
// Setting a directory also enables the flight recorder — an artifact
// without a trajectory is pointless.
func SetPostmortemDir(dir string) {
	if dir == "" {
		postmortemDir.Store(nil)
		return
	}
	postmortemDir.Store(&dir)
	EnableFlightRecorder()
}

// PostmortemEnabled reports whether a post-mortem directory is configured.
func PostmortemEnabled() bool { return postmortemDir.Load() != nil }

// DumpPostmortem writes v as indented JSON to
// <dir>/<prefix>-<seq>.json and returns the path. A process-wide sequence
// number keeps concurrent failures from clobbering each other. Returns
// ("", nil) when no post-mortem directory is configured, so call sites can
// dump unconditionally on failure paths.
func DumpPostmortem(prefix string, v any) (string, error) {
	dirp := postmortemDir.Load()
	if dirp == nil {
		return "", nil
	}
	dir := *dirp
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: postmortem dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%03d.json", prefix, postmortemSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("telemetry: postmortem: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return "", fmt.Errorf("telemetry: postmortem: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("telemetry: postmortem: %w", err)
	}
	return path, nil
}
