package telemetry

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip is the wire-format property test: any valid
// trace context must survive render → parse unchanged, and the rendered
// form must be a structurally valid traceparent header. Run over minted
// contexts and over adversarially random ID bytes.
func TestTraceparentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		var tc TraceContext
		if i%2 == 0 {
			tc = NewTrace()
			tc.Flags = byte(rng.Intn(256))
		} else {
			rng.Read(tc.TraceID[:])
			rng.Read(tc.SpanID[:])
			tc.Flags = byte(rng.Intn(256))
			if !tc.Valid() {
				continue // all-zero draw: not representable on the wire
			}
		}
		h := tc.Traceparent()
		if len(h) != 55 || !strings.HasPrefix(h, "00-") {
			t.Fatalf("malformed header %q", h)
		}
		if h != strings.ToLower(h) {
			t.Fatalf("header not lowercase: %q", h)
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", h, err)
		}
		if got != tc {
			t.Fatalf("round trip changed context: sent %+v got %+v", tc, got)
		}
		if got.TraceIDString() != h[3:35] || got.SpanIDString() != h[36:52] {
			t.Fatalf("hex accessors disagree with header %q: %s %s", h, got.TraceIDString(), got.SpanIDString())
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := NewTrace().Traceparent()
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"long":           valid + "0",
		"bad dash":       valid[:35] + "_" + valid[36:],
		"uppercase hex":  strings.ToUpper(valid),
		"version ff":     "ff" + valid[2:],
		"version 01":     "01" + valid[2:],
		"zero trace id":  "00-00000000000000000000000000000000-" + valid[36:],
		"zero span id":   valid[:36] + "0000000000000000-01",
		"non-hex":        valid[:3] + "zz" + valid[5:],
		"missing dashes": strings.ReplaceAll(valid, "-", "x"),
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
}

func TestTraceContextChild(t *testing.T) {
	tc := NewTrace()
	seen := map[[8]byte]bool{tc.SpanID: true}
	for i := 0; i < 100; i++ {
		ch := tc.Child()
		if ch.TraceID != tc.TraceID {
			t.Fatal("Child changed the trace ID")
		}
		if seen[ch.SpanID] {
			t.Fatalf("Child reused span ID after %d draws", i)
		}
		seen[ch.SpanID] = true
	}
	if (TraceContext{}).Child().Valid() {
		t.Error("Child of an invalid context is valid")
	}
	if (TraceContext{}).Traceparent() != "" {
		t.Error("invalid context rendered a header")
	}
}

// TestTracerSpanAnnotation drives a minted trace context through a tracer
// the way vsserved does — root span from the wire context, nested children
// — and checks the Chrome-trace events carry the trace ID and a correct
// parent-chain of span IDs.
func TestTracerSpanAnnotation(t *testing.T) {
	tc := NewTrace()
	tr := NewTracer()
	root := tr.StartTrace("job", tc)
	child := root.Start("solve")
	grand := child.Start("pcg")
	grand.End()
	child.End()
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]TraceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	want := tc.TraceIDString()
	for name, e := range byName {
		if e.TraceID != want {
			t.Errorf("%s: trace ID %q, want %q", name, e.TraceID, want)
		}
		if e.SpanID == "" || len(e.SpanID) != 16 {
			t.Errorf("%s: bad span ID %q", name, e.SpanID)
		}
	}
	r, c, g := byName["job"], byName["solve"], byName["pcg"]
	if r.ParentSpanID != tc.SpanIDString() {
		t.Errorf("root parent = %q, want submitter span %q", r.ParentSpanID, tc.SpanIDString())
	}
	if c.ParentSpanID != r.SpanID || g.ParentSpanID != c.SpanID {
		t.Errorf("parent chain broken: root=%s solve(parent=%s) pcg(parent=%s)", r.SpanID, c.ParentSpanID, g.ParentSpanID)
	}
	ids := map[string]bool{r.SpanID: true, c.SpanID: true, g.SpanID: true}
	if len(ids) != 3 {
		t.Error("span IDs not unique")
	}

	// A plain span on the same tracer stays unannotated.
	sp := tr.Start("plain")
	sp.End()
	for _, e := range tr.Events() {
		if e.Name == "plain" && (e.TraceID != "" || e.SpanID != "") {
			t.Errorf("unannotated span carries trace fields: %+v", e)
		}
	}
}

// TestScopeLayering checks the two-level registry contract: a scope write
// lands in the job scope always and in the same-named process instrument
// only while process telemetry is enabled.
func TestScopeLayering(t *testing.T) {
	tc := NewTrace()
	scope := NewScope(tc)
	name := "test_scope_layering_total"

	std.on.Store(false)
	scope.Counter(name).Add(2)
	if got := scope.Counter(name).Value(); got != 2 {
		t.Fatalf("scope counter = %d, want 2", got)
	}
	if got := std.Counter(name).Value(); got != 0 {
		t.Fatalf("disabled process counter recorded %d", got)
	}

	std.on.Store(true)
	defer std.on.Store(false)
	scope.Counter(name).Add(3)
	if got := scope.Counter(name).Value(); got != 5 {
		t.Fatalf("scope counter = %d, want 5", got)
	}
	if got := std.Counter(name).Value(); got != 3 {
		t.Fatalf("process counter = %d, want 3", got)
	}

	hname := "test_scope_layering_seconds"
	scope.Histogram(hname).Observe(0.25)
	if std.Histogram(hname).Count() != 1 {
		t.Error("histogram write did not propagate to the process registry")
	}

	// Exemplars inherit the scope's trace identity and mirror process-wide.
	scope.RecordExemplar(Exemplar{Metric: hname, Value: 0.25, Iterations: 7})
	exs := scope.Exemplars().Snapshot()
	if len(exs) != 1 || exs[0].TraceID != tc.TraceIDString() || exs[0].Iterations != 7 {
		t.Fatalf("scope exemplar = %+v", exs)
	}

	// Nil scope: every path is a no-op.
	var ns *Scope
	ns.Counter(name).Add(1)
	ns.Histogram(hname).Observe(1)
	ns.RecordExemplar(Exemplar{Metric: "x", Value: 1})
	if ns.Registry() != nil || ns.Exemplars() != nil || ns.Trace().Valid() {
		t.Error("nil scope leaked state")
	}
}

func TestScopeContextPlumbing(t *testing.T) {
	tc := NewTrace()
	scope := NewScope(tc)
	ctx := WithScope(context.Background(), scope)
	if got := ScopeFrom(ctx); got != scope {
		t.Fatal("ScopeFrom did not return the attached scope")
	}
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("TraceContextFrom via scope = %+v, want %+v", got, tc)
	}
	// A directly attached context wins over the scope's.
	other := NewTrace()
	if got := TraceContextFrom(WithTraceContext(ctx, other)); got != other {
		t.Fatalf("direct trace context did not win: %+v", got)
	}
	if ScopeFrom(context.Background()) != nil || TraceContextFrom(context.Background()).Valid() {
		t.Error("empty context produced trace state")
	}
}

// TestStartSpanCtxDisabledZeroAlloc pins the standing invariant: with
// tracing disabled, the context-annotated span path allocates nothing.
func TestStartSpanCtxDisabledZeroAlloc(t *testing.T) {
	DisableTracing()
	ctx := WithTraceContext(context.Background(), NewTrace())
	if avg := testing.AllocsPerRun(1000, func() {
		sp := StartSpanCtx(ctx, "solve")
		sp.Start("child").End()
		sp.End()
	}); avg != 0 {
		t.Errorf("disabled StartSpanCtx path allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkStartSpanCtxDisabled(b *testing.B) {
	DisableTracing()
	ctx := WithTraceContext(context.Background(), NewTrace())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpanCtx(ctx, "solve")
		sp.End()
	}
}

func BenchmarkParseTraceparent(b *testing.B) {
	h := NewTrace().Traceparent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTraceparent(h); err != nil {
			b.Fatal(err)
		}
	}
}
