// Live HTTP introspection: a small observability server every binary can
// expose with -serve (and that -pprof now also uses). Unlike the -metrics
// dump-on-exit path, these endpoints answer mid-run:
//
//	/metrics      Prometheus text exposition of the live registry
//	/healthz      liveness probe ({"status":"ok"} + uptime)
//	/statusz      JSON progress snapshot: active experiments, points
//	              evaluated, solver-effort totals
//	/debug/pprof  the standard pprof handlers
//
// Everything is registered on a private mux — never on
// http.DefaultServeMux — so an embedding process that serves its own HTTP
// (or a test that calls Flags.Init twice) cannot collide with us, and the
// listener is owned by a Server whose Close the flush path calls, so no
// goroutine or socket outlives the run.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Active-task tracker behind /statusz's "current experiment" field. Gated
// like everything else: TaskStart/TaskEnd are one atomic load when no
// server is running. Call sites are per-experiment (dozens per run), never
// per-iteration.
var (
	statusOn    atomic.Bool
	activeMu    sync.Mutex
	activeTasks = map[string]int{}
	processT0   = time.Now()
)

// TaskStart marks a named unit of work (an experiment driver, a sweep) as
// running, for the /statusz active list. Pair with TaskEnd.
func TaskStart(name string) {
	if !statusOn.Load() {
		return
	}
	activeMu.Lock()
	activeTasks[name]++
	activeMu.Unlock()
}

// TaskEnd marks a named unit of work as finished.
func TaskEnd(name string) {
	if !statusOn.Load() {
		return
	}
	activeMu.Lock()
	if activeTasks[name]--; activeTasks[name] <= 0 {
		delete(activeTasks, name)
	}
	activeMu.Unlock()
}

// activeTaskNames returns the currently-running task names, sorted.
func activeTaskNames() []string {
	activeMu.Lock()
	names := make([]string, 0, len(activeTasks))
	for n := range activeTasks {
		names = append(names, n)
	}
	activeMu.Unlock()
	sort.Strings(names)
	return names
}

// AMG hierarchy tracker behind /statusz: the most recent hierarchy built
// by sparse.NewAMG (level sizes and operator complexity), recorded only
// while the process registry is enabled. Rebuild counts come from the
// sparse_amg_builds_total counter.
var (
	amgMu            sync.Mutex
	amgLevelUnknowns []int64
	amgOpComplexity  float64
)

// RecordAMGHierarchy stores the shape of the most recently built AMG
// hierarchy for /statusz. No-op while process telemetry is disabled.
func RecordAMGHierarchy(levelUnknowns []int, opComplexity float64) {
	if !std.on.Load() {
		return
	}
	sizes := make([]int64, len(levelUnknowns))
	for i, n := range levelUnknowns {
		sizes[i] = int64(n)
	}
	amgMu.Lock()
	amgLevelUnknowns = sizes
	amgOpComplexity = opComplexity
	amgMu.Unlock()
}

// Intra-solve kernel occupancy behind /statusz: the most recent parallel
// kernel dispatch's worker count and busy fraction (Σ worker busy time /
// (wall × workers)), recorded by the sparse kernels only for parallel
// dispatches. Dispatch counts come from the sparse_kernel_* counters.
var (
	kernelMu        sync.Mutex
	kernelWorkers   int
	kernelOccupancy float64
)

// RecordKernelOccupancy stores the worker count and occupancy of the most
// recent parallel sparse-kernel dispatch for /statusz. No-op while process
// telemetry is disabled.
func RecordKernelOccupancy(workers int, occupancy float64) {
	if !std.on.Load() {
		return
	}
	kernelMu.Lock()
	kernelWorkers = workers
	kernelOccupancy = occupancy
	kernelMu.Unlock()
}

// StatusSnapshot is the /statusz payload: a coarse live view of where a
// run is, assembled from the metric registry's counters.
type StatusSnapshot struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Active        []string `json:"active"` // currently-running experiments/sweeps

	ExperimentsDone int64 `json:"experiments_done"`
	PointsEvaluated int64 `json:"points_evaluated"`
	PDNSolves       int64 `json:"pdn_solves"`
	OuterIterations int64 `json:"outer_iterations"`
	PCGIterations   int64 `json:"pcg_iterations"`
	PCGNonConverged int64 `json:"pcg_nonconverged"`
	MCTrials        int64 `json:"mc_trials"`

	// AMG preconditioner hierarchy: rebuild count plus the shape of the
	// most recent hierarchy (finest → coarsest unknowns per level and the
	// operator-complexity ratio Σ level nnz / finest nnz).
	AMGRebuilds           int64   `json:"amg_rebuilds"`
	AMGLevels             int     `json:"amg_levels,omitempty"`
	AMGLevelUnknowns      []int64 `json:"amg_level_unknowns,omitempty"`
	AMGOperatorComplexity float64 `json:"amg_operator_complexity,omitempty"`

	// Intra-solve kernel parallelism: cumulative kernel invocations (SpMV,
	// triangular solves, smoother sweeps), parallel dispatches, and the
	// worker count / occupancy of the most recent parallel dispatch.
	KernelSpMV             int64   `json:"kernel_spmv,omitempty"`
	KernelTrisolves        int64   `json:"kernel_trisolves,omitempty"`
	KernelSmootherSweeps   int64   `json:"kernel_smoother_sweeps,omitempty"`
	KernelParallelDispatch int64   `json:"kernel_parallel_dispatches,omitempty"`
	KernelWorkers          int     `json:"kernel_workers,omitempty"`
	KernelWorkerOccupancy  float64 `json:"kernel_worker_occupancy,omitempty"`

	// Solver health: cumulative probe reports and detector trips from the
	// solver_health_* instruments, plus the most recently probed solve's
	// convergence summary. Populated only while convergence probes are on.
	HealthReports      int64         `json:"solver_health_reports,omitempty"`
	HealthStagnations  int64         `json:"solver_health_stagnations,omitempty"`
	HealthPlateaus     int64         `json:"solver_health_plateaus,omitempty"`
	HealthDegradations int64         `json:"solver_health_degradations,omitempty"`
	Convergence        *SolverHealth `json:"convergence,omitempty"`

	// Exemplars link the slowest observed solves back to their (trace ID,
	// span ID) with convergence evidence attached.
	Exemplars []Exemplar `json:"exemplars,omitempty"`

	// Cache is the result cache's per-tier breakdown (memory LRU, disk
	// spill tier), present once the cache has seen any traffic.
	Cache *CacheStatus `json:"cache,omitempty"`

	// Fleet aggregates the distributed-evaluation counters (dispatch,
	// stealing, the shared cache tier), present on daemons participating
	// in a fleet.
	Fleet *FleetStatus `json:"fleet,omitempty"`
}

// CacheStatus is the /statusz view of the result cache, one field per
// rescache per-tier counter plus the live memory-tier occupancy gauges.
type CacheStatus struct {
	MemHits      int64 `json:"mem_hits"`
	MemMisses    int64 `json:"mem_misses"`
	MemEvictions int64 `json:"mem_evictions"`
	MemEntries   int64 `json:"mem_entries"`
	MemBytes     int64 `json:"mem_bytes"`
	DiskHits     int64 `json:"disk_hits"`
	DiskMisses   int64 `json:"disk_misses"`
	DiskSpills   int64 `json:"disk_spills"`
	DiskErrors   int64 `json:"disk_errors"`
	Shared       int64 `json:"singleflight_shared"`
}

// FleetStatus is the /statusz view of a daemon's fleet activity: the
// coordinator's dispatch/steal/requeue tallies, the shared cache tier's
// server- and client-side traffic, and the hedged-retry outcomes of the
// embedded API client.
type FleetStatus struct {
	WorkersAlive    int64 `json:"workers_alive"`
	Heartbeats      int64 `json:"heartbeats"`
	UnitsDispatched int64 `json:"units_dispatched"`
	UnitsStolen     int64 `json:"units_stolen"`
	UnitsRequeued   int64 `json:"units_requeued"`
	UnitFailures    int64 `json:"unit_failures"`
	JobsForwarded   int64 `json:"jobs_forwarded"`
	TierHits        int64 `json:"tier_hits"`
	TierMisses      int64 `json:"tier_misses"`
	TierWrites      int64 `json:"tier_writes"`
	RemoteHits      int64 `json:"remote_cache_hits"`
	RemoteMisses    int64 `json:"remote_cache_misses"`
	RemoteWrites    int64 `json:"remote_cache_writes"`
	HedgedRequests  int64 `json:"hedged_requests"`
	HedgeWins       int64 `json:"hedge_wins"`
}

// Status assembles the current snapshot from the process registry.
func Status() StatusSnapshot {
	s := StatusSnapshot{
		UptimeSeconds:   time.Since(processT0).Seconds(),
		Active:          activeTaskNames(),
		ExperimentsDone: std.Counter("core_experiments_total").Value(),
		PointsEvaluated: std.Counter("explore_points_total").Value(),
		PDNSolves:       std.Counter("pdngrid_solves_total").Value(),
		OuterIterations: std.Counter("pdngrid_outer_iterations_total").Value(),
		PCGIterations:   std.Counter("sparse_pcg_iterations_total").Value(),
		PCGNonConverged: std.Counter("sparse_pcg_nonconverged_total").Value(),
		MCTrials:        std.Counter("em_mc_trials_total").Value(),
		AMGRebuilds:     std.Counter("sparse_amg_builds_total").Value(),
	}
	amgMu.Lock()
	if len(amgLevelUnknowns) > 0 {
		s.AMGLevels = len(amgLevelUnknowns)
		s.AMGLevelUnknowns = append([]int64(nil), amgLevelUnknowns...)
		s.AMGOperatorComplexity = amgOpComplexity
	}
	amgMu.Unlock()
	s.KernelSpMV = std.Counter("sparse_kernel_spmv_total").Value()
	s.KernelTrisolves = std.Counter("sparse_kernel_trisolve_total").Value()
	s.KernelSmootherSweeps = std.Counter("sparse_kernel_smoother_total").Value()
	s.KernelParallelDispatch = std.Counter("sparse_kernel_parallel_dispatches_total").Value()
	kernelMu.Lock()
	s.KernelWorkers = kernelWorkers
	s.KernelWorkerOccupancy = kernelOccupancy
	kernelMu.Unlock()
	s.HealthReports = std.Counter("solver_health_reports_total").Value()
	s.HealthStagnations = std.Counter("solver_health_stagnation_total").Value()
	s.HealthPlateaus = std.Counter("solver_health_plateau_total").Value()
	s.HealthDegradations = std.Counter("solver_health_precond_degradation_total").Value()
	if h, ok := LastSolverHealth(); ok {
		s.Convergence = &h
	}
	s.Exemplars = stdExemplars.Snapshot()
	cache := CacheStatus{
		MemHits:      std.Counter("rescache_mem_hits_total").Value(),
		MemMisses:    std.Counter("rescache_mem_misses_total").Value(),
		MemEvictions: std.Counter("rescache_mem_evictions_total").Value(),
		MemEntries:   int64(std.Gauge("rescache_mem_entries").Value()),
		MemBytes:     int64(std.Gauge("rescache_mem_bytes").Value()),
		DiskHits:     std.Counter("rescache_disk_hits_total").Value(),
		DiskMisses:   std.Counter("rescache_disk_misses_total").Value(),
		DiskSpills:   std.Counter("rescache_disk_spills_total").Value(),
		DiskErrors:   std.Counter("rescache_disk_errors_total").Value(),
		Shared:       std.Counter("rescache_singleflight_shared_total").Value(),
	}
	if cache != (CacheStatus{}) {
		s.Cache = &cache
	}
	fleet := FleetStatus{
		WorkersAlive:    int64(std.Gauge("fleet_workers_alive").Value()),
		Heartbeats:      std.Counter("fleet_heartbeats_total").Value(),
		UnitsDispatched: std.Counter("fleet_units_dispatched_total").Value(),
		UnitsStolen:     std.Counter("fleet_units_stolen_total").Value(),
		UnitsRequeued:   std.Counter("fleet_units_requeued_total").Value(),
		UnitFailures:    std.Counter("fleet_unit_failures_total").Value(),
		JobsForwarded:   std.Counter("server_jobs_forwarded_total").Value(),
		TierHits:        std.Counter("fleet_tier_hits_total").Value(),
		TierMisses:      std.Counter("fleet_tier_misses_total").Value(),
		TierWrites:      std.Counter("fleet_tier_writes_total").Value(),
		RemoteHits:      std.Counter("fleet_remote_cache_hits_total").Value(),
		RemoteMisses:    std.Counter("fleet_remote_cache_misses_total").Value(),
		RemoteWrites:    std.Counter("fleet_remote_cache_writes_total").Value(),
		HedgedRequests:  std.Counter("client_hedged_requests_total").Value(),
		HedgeWins:       std.Counter("client_hedge_wins_total").Value(),
	}
	if fleet != (FleetStatus{}) {
		s.Fleet = &fleet
	}
	if s.Active == nil {
		s.Active = []string{}
	}
	return s
}

// Server is a live observability endpoint bound to one listener.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	closed sync.Once
}

// NewObservabilityMux builds the private mux with all introspection
// handlers. Exposed so an embedding service can mount these routes on its
// own server instead of opening a second port.
func NewObservabilityMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		std.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.1f}\n", time.Since(processT0).Seconds())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Status())
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// StartServer listens on addr (e.g. "localhost:6060", or ":0" for an
// ephemeral port) and serves the observability mux in the background. It
// turns on the /statusz task tracker. Stop it with Close; the flush
// function of Flags.Init does so automatically.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: serve listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewObservabilityMux()}
	s := &Server{ln: ln, srv: srv}
	statusOn.Store(true)
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down and closes its listener. Idempotent and
// nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	var err error
	s.closed.Do(func() {
		err = s.srv.Close() // closes the listener and all connections
	})
	return err
}
