package sparse

import (
	"fmt"
	"math"
)

// Dense is a small row-major dense matrix used by the transient circuit
// simulator, where systems have only a handful of nodes.
type Dense struct {
	n int
	a []float64
}

// NewDense returns a zero n x n dense matrix.
func NewDense(n int) *Dense {
	return &Dense{n: n, a: make([]float64, n*n)}
}

// N returns the dimension.
func (d *Dense) N() int { return d.n }

// At returns entry (i, j).
func (d *Dense) At(i, j int) float64 { return d.a[i*d.n+j] }

// Set assigns entry (i, j).
func (d *Dense) Set(i, j int, v float64) { d.a[i*d.n+j] = v }

// Add accumulates v into entry (i, j).
func (d *Dense) Add(i, j int, v float64) { d.a[i*d.n+j] += v }

// Zero clears all entries in place.
func (d *Dense) Zero() {
	for i := range d.a {
		d.a[i] = 0
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{n: d.n, a: append([]float64(nil), d.a...)}
}

// MulVec computes y = D*x.
func (d *Dense) MulVec(x, y []float64) {
	for i := 0; i < d.n; i++ {
		var s float64
		row := d.a[i*d.n : (i+1)*d.n]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// DenseLU is an LU factorization with partial pivoting.
type DenseLU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// LU factors the matrix with partial pivoting. The receiver is unmodified.
func (d *Dense) LU() (*DenseLU, error) {
	n := d.n
	lu := append([]float64(nil), d.a...)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("sparse: dense LU: singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &DenseLU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A x = b.
func (f *DenseLU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward: L y = Pb (unit lower).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *DenseLU) Det() float64 {
	det := float64(f.sign)
	for i := 0; i < f.n; i++ {
		det *= f.lu[i*f.n+i]
	}
	return det
}
