package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// grid3D builds the conductance matrix of an nx x ny x nz resistor grid
// with unit conductances and a ground tie g on the diagonal — the
// structure of a stacked PDN.
func grid3D(nx, ny, nz int, g float64) *CSR {
	n := nx * ny * nz
	b := NewBuilder(n)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				b.Add(i, i, g)
				if x+1 < nx {
					j := idx(x+1, y, z)
					b.Add(i, i, 1)
					b.Add(j, j, 1)
					b.AddSym(i, j, -1)
				}
				if y+1 < ny {
					j := idx(x, y+1, z)
					b.Add(i, i, 1)
					b.Add(j, j, 1)
					b.AddSym(i, j, -1)
				}
				if z+1 < nz {
					j := idx(x, y, z+1)
					b.Add(i, i, 1)
					b.Add(j, j, 1)
					b.AddSym(i, j, -1)
				}
			}
		}
	}
	return b.ToCSR()
}

func TestEliminationTreeChain(t *testing.T) {
	// Tridiagonal matrix: etree is the chain i -> i+1.
	n := 6
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	parent := EliminationTree(b.ToCSR().Lower())
	for i := 0; i < n-1; i++ {
		if parent[i] != i+1 {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[n-1] != -1 {
		t.Errorf("root parent = %d", parent[n-1])
	}
}

func TestEliminationTreeArrow(t *testing.T) {
	// Arrow matrix (dense last row/col): every node's parent is n-1
	// except the root.
	n := 5
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 10)
		if i != n-1 {
			b.AddSym(i, n-1, -1)
		}
	}
	parent := EliminationTree(b.ToCSR().Lower())
	for i := 0; i < n-1; i++ {
		if parent[i] != n-1 {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], n-1)
		}
	}
}

func TestPostOrderIsPermutation(t *testing.T) {
	a := gridLaplacian(7, 5, 1)
	parent := EliminationTree(a.Lower())
	post := PostOrder(parent)
	seen := make([]bool, len(post))
	for _, v := range post {
		if v < 0 || v >= len(post) || seen[v] {
			t.Fatal("postorder is not a permutation")
		}
		seen[v] = true
	}
	// Children appear before parents.
	pos := make([]int, len(post))
	for i, v := range post {
		pos[v] = i
	}
	for v, p := range parent {
		if p != -1 && pos[v] > pos[p] {
			t.Errorf("node %d appears after its parent %d", v, p)
		}
	}
}

func TestSparseCholAgainstSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ord := range []Ordering{OrderND, OrderRCMChol, OrderNatural} {
		a := gridLaplacian(12, 9, 0.2)
		bVec := randVec(a.N(), rng)
		ref, err := FactorCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Solve(bVec)
		f, err := FactorSparse(a, ord)
		if err != nil {
			t.Fatalf("ordering %d: %v", ord, err)
		}
		got := f.Solve(bVec)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("ordering %d: x[%d] = %g, want %g", ord, i, got[i], want[i])
			}
		}
	}
}

func TestSparseCholRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		a := randomSPD(n, rng)
		xTrue := randVec(n, rng)
		bVec := make([]float64, n)
		a.MulVec(xTrue, bVec)
		f, err := FactorSparse(a, OrderND)
		if err != nil {
			t.Fatal(err)
		}
		x := f.Solve(bVec)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7*math.Max(1, math.Abs(xTrue[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSparseChol3DGrid(t *testing.T) {
	a := grid3D(10, 10, 6, 0.1)
	rng := rand.New(rand.NewSource(5))
	bVec := randVec(a.N(), rng)
	f, err := FactorSparse(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(bVec)
	if res := residual(a, x, bVec); res > 1e-8 {
		t.Errorf("residual = %g", res)
	}
}

func TestSparseCholRejectsIndefinite(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.AddSym(0, 1, 2)
	b.Add(1, 1, 1)
	if _, err := FactorSparse(b.ToCSR(), OrderNatural); err == nil {
		t.Error("expected ErrNotPositiveDefinite")
	}
}

func TestNDIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := grid3D(2+rng.Intn(6), 2+rng.Intn(6), 1+rng.Intn(4), 0.5)
		perm := NestedDissection(a)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNDHandlesDisconnected(t *testing.T) {
	// Two disjoint grids in one matrix.
	b := NewBuilder(80)
	edge := func(i, j int) {
		b.Add(i, i, 1)
		b.Add(j, j, 1)
		b.AddSym(i, j, -1)
	}
	addGrid := func(off int) {
		for i := 0; i < 40; i++ {
			b.Add(off+i, off+i, 0.5) // ground tie keeps it PD
			if (i+1)%8 != 0 {
				edge(off+i, off+i+1)
			}
			if i+8 < 40 {
				edge(off+i, off+i+8)
			}
		}
	}
	addGrid(0)
	addGrid(40)
	a := b.ToCSR()
	perm := NestedDissection(a)
	seen := make([]bool, 80)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing", i)
		}
	}
	if _, err := FactorSparse(a, OrderND); err != nil {
		t.Fatal(err)
	}
}

func TestNDReducesFillVersusNatural(t *testing.T) {
	a := grid3D(12, 12, 4, 0.1)
	fND, err := FactorSparse(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	fNat, err := FactorSparse(a, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if fND.NNZ() >= fNat.NNZ() {
		t.Errorf("ND fill %d should beat natural %d on a 3D grid", fND.NNZ(), fNat.NNZ())
	}
}

func TestSparseCholBeatsSkylineStorage(t *testing.T) {
	// On a 3D grid the skyline envelope is far larger than the true fill.
	a := grid3D(14, 14, 5, 0.1)
	f, err := FactorSparse(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	env := EnvelopeSize(a.Permute(RCM(a))) + a.N()
	if f.NNZ() >= env {
		t.Errorf("sparse fill %d should beat the RCM envelope %d", f.NNZ(), env)
	}
}

func TestSparseCholMultipleSolves(t *testing.T) {
	a := gridLaplacian(10, 10, 0.5)
	f, err := FactorSparse(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	dst := make([]float64, a.N())
	for k := 0; k < 4; k++ {
		bVec := randVec(a.N(), rng)
		f.SolveTo(dst, bVec)
		if res := residual(a, dst, bVec); res > 1e-9 {
			t.Errorf("rhs %d: residual %g", k, res)
		}
	}
}

func TestSparseCholPropertyRandomGrids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := grid3D(2+rng.Intn(7), 2+rng.Intn(7), 1+rng.Intn(3), 0.05+rng.Float64())
		bVec := randVec(a.N(), rng)
		fac, err := FactorSparse(a, OrderND)
		if err != nil {
			return false
		}
		return residual(a, fac.Solve(bVec), bVec) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSkylineChol3DGrid(b *testing.B) {
	a := grid3D(16, 16, 8, 0.1)
	for i := 0; i < b.N; i++ {
		if _, err := FactorCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseCholND3DGrid(b *testing.B) {
	a := grid3D(16, 16, 8, 0.1)
	for i := 0; i < b.N; i++ {
		if _, err := FactorSparse(a, OrderND); err != nil {
			b.Fatal(err)
		}
	}
}
