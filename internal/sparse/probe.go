// Convergence probes: opt-in per-solve analytics that turn the PCG
// iteration stream into a health report — the bounded residual/α/β
// history, extreme-eigenvalue and condition-number estimates from the CG
// Lanczos tridiagonal (zero extra matvecs), per-cycle AMG reduction
// factors, and detectors for stagnation, plateau and preconditioner
// degradation.
//
// The contract mirrors the flight recorder's, but is stricter because the
// probe also does numerics of its own at seal time:
//
//   - Probes never perturb solver arithmetic. They only *read* scalars the
//     solver already computed (α, β, the relative residual); every
//     estimate is derived after the fact from those copies. Results are
//     byte-identical with probes on or off — sparsetest pins this at the
//     sparse, circuit and pdngrid levels for kernel workers {1, 2, 8}.
//
//   - Zero-alloc when disabled: one telemetry.ProbesEnabled() load per
//     solve, a nil check per iteration, no allocation on any path.
//
// The Lanczos connection: PCG's scalars implicitly build the Lanczos
// tridiagonal T_m of M⁻¹A,
//
//	d_0 = 1/α_0,   d_i = 1/α_i + β_{i-1}/α_{i-1},
//	e_i = √β_i / α_i                       (off-diagonal),
//
// whose extreme eigenvalues (Ritz values) converge to λ_min and λ_max of
// the preconditioned operator as the iteration proceeds. Their ratio is
// the κ(M⁻¹A) estimate that decides whether a solve is slow because the
// system is ill-conditioned or because the preconditioner degraded.
package sparse

import (
	"fmt"
	"log/slog"
	"math"
	"strings"

	"voltstack/internal/telemetry"
)

// Solver-health instrumentation. Counters/gauges are process-registry
// no-ops unless telemetry is enabled; the detectors additionally emit
// structured events when the event log is on.
var (
	mHealthReports     = telemetry.NewCounter("solver_health_reports_total")
	mHealthStagnation  = telemetry.NewCounter("solver_health_stagnation_total")
	mHealthPlateau     = telemetry.NewCounter("solver_health_plateau_total")
	mHealthDegradation = telemetry.NewCounter("solver_health_precond_degradation_total")
	mHealthCond        = telemetry.NewGauge("solver_health_cond_estimate")
	mHealthReduction   = telemetry.NewGauge("solver_health_reduction_factor")
)

// Probe bounds. The residual ring reuses the flight recorder's shape
// (head + circular tail); the Lanczos coefficient buffer keeps the first
// probeLanczosCap (α, β) pairs — Ritz extremes are driven by the leading
// coefficients, so a prefix estimates κ without unbounded growth.
const (
	probeHeadLen    = traceHeadLen
	probeTailLen    = traceTailLen
	probeLanczosCap = 512

	// Detector windows/thresholds (see detect): trailing window length,
	// the per-iteration reduction factor above which the trailing window
	// counts as a plateau, the near-1 factor that counts as stagnation,
	// and the early-window factor that must have been "healthy" before a
	// slow tail counts as preconditioner degradation.
	probeWindow       = 16
	plateauThreshold  = 0.98
	stagnationFactor  = 0.999
	degradationEarly  = 0.90
	degradationFactor = 0.95
)

// AMGReport is the per-hierarchy slice of a convergence report, present
// when the solve ran under an AMG preconditioner: the hierarchy shape
// complexities plus the trailing per-cycle residual reduction factors
// (each PCG iteration applies exactly one V-cycle).
type AMGReport struct {
	Levels             int     `json:"levels"`
	OperatorComplexity float64 `json:"operator_complexity"`
	GridComplexity     float64 `json:"grid_complexity"`
	// CycleReductions holds ‖r_k‖/‖r_{k-1}‖ for the last recorded
	// iterations (bounded by probeWindow × 2).
	CycleReductions []float64 `json:"cycle_reductions,omitempty"`
}

// ConvergenceReport is the solver-health record of one probed solve. It
// marshals directly into the per-job stats document, the history store
// and `vsctl health` output.
type ConvergenceReport struct {
	Kind           string  `json:"kind"` // "pcg"
	N              int     `json:"n"`
	Preconditioner string  `json:"preconditioner"`
	Tol            float64 `json:"tol"`
	MaxIter        int     `json:"max_iter"`

	Iterations    int     `json:"iterations"`
	FinalResidual float64 `json:"final_residual"`
	Converged     bool    `json:"converged"`

	// Spectral estimates from the first LanczosDim CG coefficients; zero
	// when the solve ended before any iteration completed.
	LambdaMin    float64 `json:"lambda_min,omitempty"`
	LambdaMax    float64 `json:"lambda_max,omitempty"`
	CondEstimate float64 `json:"cond_estimate,omitempty"`
	LanczosDim   int     `json:"lanczos_dim,omitempty"`

	// ReductionFactor is the geometric-mean per-iteration residual
	// reduction over the whole solve ((r_final/r_0)^(1/iterations)).
	ReductionFactor float64 `json:"reduction_factor,omitempty"`

	// Residuals is the bounded relative-residual trajectory in iteration
	// order (index 0 = initial residual), with up to ResidualsDropped
	// middle iterations elided between head and tail.
	Residuals        []float64 `json:"residuals"`
	ResidualsDropped int       `json:"residuals_dropped,omitempty"`

	// Detector verdicts over the recorded trajectory.
	Stagnation  bool `json:"stagnation,omitempty"`
	Plateau     bool `json:"plateau,omitempty"`
	Degradation bool `json:"precond_degradation,omitempty"`

	AMG *AMGReport `json:"amg,omitempty"`
}

// probesOn is a local alias so the hot path reads naturally.
func probesOn() bool { return telemetry.ProbesEnabled() }

// convProbe accumulates one solve's convergence stream. Created only when
// the probe gate is on at solve entry; all methods are cheap appends.
type convProbe struct {
	report ConvergenceReport
	prec   Preconditioner

	head []float64
	tail []float64 // circular once the head is full
	pos  int       // next write slot in tail
	n    int       // residuals recorded beyond the head

	alphas []float64 // first probeLanczosCap CG α coefficients
	betas  []float64 // first probeLanczosCap−1 CG β coefficients
}

func newConvProbe(a *CSR, prec Preconditioner, tol float64, maxIter int) *convProbe {
	return &convProbe{
		report: ConvergenceReport{
			Kind:           "pcg",
			N:              a.N(),
			Preconditioner: precName(prec),
			Tol:            tol,
			MaxIter:        maxIter,
		},
		prec: prec,
		head: make([]float64, 0, probeHeadLen),
	}
}

// record appends one relative residual (iteration 0 before the loop, then
// once per iteration — the same cadence as the flight recorder).
func (p *convProbe) record(res float64) {
	if len(p.head) < probeHeadLen {
		p.head = append(p.head, res)
		return
	}
	if p.tail == nil {
		p.tail = make([]float64, probeTailLen)
	}
	p.tail[p.pos] = res
	p.pos = (p.pos + 1) % probeTailLen
	p.n++
}

// iter records one completed iteration: its CG step length α and the
// post-update relative residual.
func (p *convProbe) iter(alpha, res float64) {
	if len(p.alphas) < probeLanczosCap {
		p.alphas = append(p.alphas, alpha)
	}
	p.record(res)
}

// betaCoeff records the β of an iteration that continued (β is never
// computed for the final, converged iteration).
func (p *convProbe) betaCoeff(beta float64) {
	if len(p.betas) < probeLanczosCap-1 {
		p.betas = append(p.betas, beta)
	}
}

// residuals flattens the ring into iteration order and the dropped count.
func (p *convProbe) residuals() ([]float64, int) {
	out := append([]float64(nil), p.head...)
	dropped := 0
	if p.n > probeTailLen {
		dropped = p.n - probeTailLen
		for i := 0; i < probeTailLen; i++ {
			out = append(out, p.tail[(p.pos+i)%probeTailLen])
		}
	} else {
		out = append(out, p.tail[:p.n]...)
	}
	return out, dropped
}

// seal finalizes the probe into its report: spectral estimates, reduction
// factor, detector verdicts, AMG diagnostics; then publishes the health
// summary to telemetry (metrics, /statusz state, structured events).
// Call exactly once per solve, on every exit path.
func (p *convProbe) seal(res CGResult, converged bool) *ConvergenceReport {
	r := &p.report
	r.Iterations = res.Iterations
	r.FinalResidual = res.Residual
	r.Converged = converged
	r.Residuals, r.ResidualsDropped = p.residuals()

	if lo, hi, m, ok := lanczosExtremes(p.alphas, p.betas); ok {
		r.LambdaMin, r.LambdaMax, r.LanczosDim = lo, hi, m
		if lo > 0 {
			r.CondEstimate = hi / lo
		}
	}
	if len(r.Residuals) > 1 && r.Residuals[0] > 0 && r.FinalResidual > 0 {
		k := r.Iterations
		if k < 1 {
			k = len(r.Residuals) - 1
		}
		if k >= 1 {
			r.ReductionFactor = math.Pow(r.FinalResidual/r.Residuals[0], 1/float64(k))
		}
	}
	p.detect(r)
	if mg, ok := p.prec.(*AMGPrec); ok {
		st := mg.Stats()
		amg := &AMGReport{
			Levels:             st.Levels,
			OperatorComplexity: st.OperatorComplexity,
			GridComplexity:     st.GridComplexity,
		}
		rs := r.Residuals
		lo := len(rs) - 2*probeWindow
		if lo < 0 {
			lo = 0
		}
		for i := lo + 1; i < len(rs); i++ {
			if rs[i-1] > 0 {
				amg.CycleReductions = append(amg.CycleReductions, rs[i]/rs[i-1])
			}
		}
		r.AMG = amg
	}
	p.publish(r)
	return r
}

// detect runs the convergence detectors over the recorded trajectory.
// All three look at geometric reduction factors, so they are scale-free:
//
//   - stagnation: the trailing window made essentially no net progress
//     (per-iteration factor ≥ stagnationFactor) and the solve did not
//     converge — the iteration is stuck.
//   - plateau: the trailing factor is above plateauThreshold while the
//     residual is still above tolerance — progress, but far slower than
//     the budget assumes.
//   - preconditioner degradation: the leading window converged fast
//     (early factor < degradationEarly) but the trailing window is slow
//     (late factor > degradationFactor) — the preconditioner matched the
//     easy part of the spectrum and lost effectiveness.
func (p *convProbe) detect(r *ConvergenceReport) {
	rs := r.Residuals
	if len(rs) < probeWindow+1 || r.Converged {
		return
	}
	last := rs[len(rs)-1]
	wStart := rs[len(rs)-1-probeWindow]
	if wStart <= 0 || last <= 0 {
		return
	}
	late := math.Pow(last/wStart, 1/float64(probeWindow))
	if late >= stagnationFactor {
		r.Stagnation = true
	} else if late >= plateauThreshold {
		r.Plateau = true
	}
	ew := probeWindow
	if ew > len(p.head)-1 {
		ew = len(p.head) - 1
	}
	if ew >= 2 && p.head[0] > 0 && p.head[ew] > 0 {
		early := math.Pow(p.head[ew]/p.head[0], 1/float64(ew))
		if early < degradationEarly && late > degradationFactor {
			r.Degradation = true
		}
	}
}

// publish pushes the sealed report into the telemetry surfaces: the
// solver_health_* instruments, the most-recent-health slot behind
// /statusz, and (when the event log is on) one structured event per
// tripped detector.
func (p *convProbe) publish(r *ConvergenceReport) {
	mHealthReports.Add(1)
	if r.CondEstimate > 0 {
		mHealthCond.Set(r.CondEstimate)
	}
	if r.ReductionFactor > 0 {
		mHealthReduction.Set(r.ReductionFactor)
	}
	if r.Stagnation {
		mHealthStagnation.Add(1)
	}
	if r.Plateau {
		mHealthPlateau.Add(1)
	}
	if r.Degradation {
		mHealthDegradation.Add(1)
	}
	telemetry.RecordSolverHealth(telemetry.SolverHealth{
		Kind:            r.Kind,
		N:               r.N,
		Preconditioner:  r.Preconditioner,
		Iterations:      r.Iterations,
		FinalResidual:   r.FinalResidual,
		Converged:       r.Converged,
		LambdaMin:       r.LambdaMin,
		LambdaMax:       r.LambdaMax,
		CondEstimate:    r.CondEstimate,
		ReductionFactor: r.ReductionFactor,
		Stagnation:      r.Stagnation,
		Plateau:         r.Plateau,
		Degradation:     r.Degradation,
	})
	if telemetry.EventsEnabled() {
		if r.Stagnation {
			telemetry.Event(slog.LevelWarn, "sparse: solver stagnation detected",
				slog.Int("n", r.N), slog.String("preconditioner", r.Preconditioner),
				slog.Int("iterations", r.Iterations),
				slog.Float64("residual", r.FinalResidual),
				slog.Float64("cond_estimate", r.CondEstimate))
		}
		if r.Plateau {
			telemetry.Event(slog.LevelWarn, "sparse: solver convergence plateau",
				slog.Int("n", r.N), slog.String("preconditioner", r.Preconditioner),
				slog.Int("iterations", r.Iterations),
				slog.Float64("reduction_factor", r.ReductionFactor),
				slog.Float64("cond_estimate", r.CondEstimate))
		}
		if r.Degradation {
			telemetry.Event(slog.LevelWarn, "sparse: preconditioner degradation detected",
				slog.Int("n", r.N), slog.String("preconditioner", r.Preconditioner),
				slog.Int("iterations", r.Iterations),
				slog.Float64("cond_estimate", r.CondEstimate))
		}
	}
}

// enrich appends the convergence tail and condition estimate to a solver
// failure, so post-mortems carry the evidence. Wrapping preserves
// errors.Is/As against the underlying cause.
func (p *convProbe) enrich(err error) error {
	if err == nil {
		return nil
	}
	r := &p.report
	rs := r.Residuals
	k := len(rs) - 8
	if k < 0 {
		k = 0
	}
	var b strings.Builder
	for i, v := range rs[k:] {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3e", v)
	}
	if r.CondEstimate > 0 {
		return fmt.Errorf("%w [probe: recent residuals %s; κ≈%.3g]", err, b.String(), r.CondEstimate)
	}
	return fmt.Errorf("%w [probe: recent residuals %s]", err, b.String())
}

// lanczosExtremes maps the CG coefficient stream onto the Lanczos
// tridiagonal of the preconditioned operator and returns its extreme
// eigenvalues (the Ritz estimates of λ_min and λ_max). ok is false when
// the stream is too short or numerically unusable (non-positive α,
// negative β — both signal breakdown, where no estimate is meaningful).
func lanczosExtremes(alphas, betas []float64) (lo, hi float64, m int, ok bool) {
	m = len(alphas)
	if m > len(betas)+1 {
		m = len(betas) + 1
	}
	if m < 1 {
		return 0, 0, 0, false
	}
	d := make([]float64, m)
	e := make([]float64, m-1)
	for i := 0; i < m; i++ {
		a := alphas[i]
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return 0, 0, 0, false
		}
		d[i] = 1 / a
		if i > 0 {
			d[i] += betas[i-1] / alphas[i-1]
		}
		if i < m-1 {
			bt := betas[i]
			if bt < 0 || math.IsNaN(bt) || math.IsInf(bt, 0) {
				return 0, 0, 0, false
			}
			e[i] = math.Sqrt(bt) / a
		}
	}
	lo, hi = tridiagExtremeEigs(d, e)
	return lo, hi, m, true
}

// tridiagExtremeEigs returns the smallest and largest eigenvalues of the
// symmetric tridiagonal matrix with diagonal d and off-diagonal e, via
// Sturm-sequence bisection inside the Gershgorin bounds. O(len(d)) per
// bisection step, ~100 steps total — microseconds at the probe's cap.
func tridiagExtremeEigs(d, e []float64) (lo, hi float64) {
	m := len(d)
	if m == 1 {
		return d[0], d[0]
	}
	gLo, gHi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < m-1 {
			r += math.Abs(e[i])
		}
		gLo = math.Min(gLo, d[i]-r)
		gHi = math.Max(gHi, d[i]+r)
	}
	lo = bisectEig(d, e, gLo, gHi, 1) // smallest: first x with count(x) ≥ 1
	hi = bisectEig(d, e, gLo, gHi, m) // largest: first x with count(x) ≥ m
	return lo, hi
}

// bisectEig finds the k-th smallest eigenvalue by bisection on the Sturm
// count: the returned x satisfies count(x⁻) < k ≤ count(x⁺).
func bisectEig(d, e []float64, lo, hi float64, k int) float64 {
	for range 100 {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if sturmCount(d, e, mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// sturmCount returns the number of eigenvalues of tridiag(d, e) strictly
// below x, via the standard LDLᵀ sign-count recurrence.
func sturmCount(d, e []float64, x float64) int {
	count := 0
	q := d[0] - x
	if q < 0 {
		count++
	}
	for i := 1; i < len(d); i++ {
		if q == 0 {
			q = 1e-300
		}
		q = d[i] - x - e[i-1]*e[i-1]/q
		if q < 0 {
			count++
		}
	}
	return count
}
