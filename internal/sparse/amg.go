// Aggregation-based algebraic multigrid, used as a PCG preconditioner for
// grids beyond the reach of IC(0). Conductance matrices of many-layer PDNs
// are weakly diagonally dominant M-matrices, the textbook-friendly case for
// unsmoothed pairwise aggregation: greedy strongest-neighbor pairing builds
// the aggregates, the Galerkin triple product PᵀAP builds each coarse
// operator (SPD whenever A is, since P has full column rank), and one
// symmetric V-cycle — equal weighted-Jacobi pre/post sweeps around a direct
// skyline solve on the coarsest level — serves as the preconditioner
// application. Equal sweep counts keep M⁻¹ symmetric positive definite,
// which PCG requires; ω = 2/3 damps the upper half of the Jacobi spectrum
// safely because λmax(D⁻¹A) ≤ 2 for weakly diagonally dominant A.
package sparse

import (
	"fmt"
	"log/slog"
	"math"

	"voltstack/internal/telemetry"
)

var (
	mAMGBuilds       = telemetry.NewCounter("sparse_amg_builds_total")
	mAMGLevels       = telemetry.NewHistogram("sparse_amg_levels")
	mAMGLastLevels   = telemetry.NewGauge("sparse_amg_last_levels")
	mAMGLastCoarseN  = telemetry.NewGauge("sparse_amg_last_coarse_n")
	mAMGOpComplexity = telemetry.NewGauge("sparse_amg_operator_complexity")
)

// AMGOptions tunes the multigrid hierarchy. The zero value selects the
// defaults noted per field.
type AMGOptions struct {
	MaxLevels  int     // hierarchy depth cap, including the coarsest (default 25)
	CoarseSize int     // stop coarsening at or below this many unknowns (default 64)
	PreSmooth  int     // weighted-Jacobi sweeps before coarse correction (default 1)
	PostSmooth int     // sweeps after; keep equal to PreSmooth for symmetry (default 1)
	Omega      float64 // Jacobi damping factor (default 2/3)

	// Workers parallelizes the hierarchy build (Galerkin products) and the
	// V-cycle kernels (smoother, restriction, prolongation). Each level is
	// individually capped by its operator size, so tiny coarse grids run
	// serially regardless. Results are bit-identical at every worker count
	// (default 0: serial).
	Workers int
}

func (o AMGOptions) withDefaults() AMGOptions {
	if o.MaxLevels <= 0 {
		o.MaxLevels = 25
	}
	if o.CoarseSize <= 0 {
		o.CoarseSize = 64
	}
	if o.PreSmooth <= 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 1
	}
	if o.Omega <= 0 {
		o.Omega = 2.0 / 3.0
	}
	return o
}

// amgLevel is one non-coarsest level of the hierarchy: its operator, the
// inverse diagonal for Jacobi smoothing, and the aggregate index of every
// unknown on the next coarser level. All fields are immutable after
// construction, so levels are shared between scratch forks.
type amgLevel struct {
	a       *CSR
	invDiag []float64
	agg     []int32
	nc      int
	// Aggregate member lists: aggregate g's fine rows are
	// aggRows[aggPtr[g]:aggPtr[g+1]], ascending. Restriction gathers over
	// them in exactly the order the historical scatter loop summed, so the
	// parallel restriction is bit-identical to it.
	aggPtr  []int32
	aggRows []int32
}

// AMGPrec is an aggregation-AMG preconditioner: Apply runs one symmetric
// V-cycle on the hierarchy. The hierarchy (levels, coarse factor) is
// immutable and shared by forks; the per-level scratch vectors are owned
// per instance, so a single AMGPrec must not Apply concurrently with
// itself but scratch forks may run in parallel.
type AMGPrec struct {
	levels []*amgLevel
	coarse *SkylineChol
	opts   AMGOptions
	ns     []int // unknowns per level, finest first, coarsest last
	nnzs   []int // operator nonzeros per level, finest first
	// V-cycle scratch, one vector per level: xs/bs carry the coarse-level
	// iterate and right-hand side (index 0 unused — the finest-level pair
	// is the caller's r/z), rs the smoothing/restriction residual.
	xs, bs, rs [][]float64
	workers    int // V-cycle kernel workers; each level caps by its size
}

// SetWorkers sets the worker count used inside Apply's V-cycle kernels.
// Every level additionally caps workers by its own operator size, so the
// coarse tail of the hierarchy always runs serially. Bit-identical results
// at every worker count.
func (p *AMGPrec) SetWorkers(w int) { p.workers = clampWorkers(w) }

// levelWorkers is the per-level worker cap: the configured count bounded
// by the level's nonzeros so small grids never pay dispatch overhead.
func (p *AMGPrec) levelWorkers(lvl *amgLevel) int {
	return capWorkers(p.workers, lvl.a.NNZ(), spmvGrain)
}

// NewAMG builds the multigrid hierarchy for the SPD matrix a. The matrix
// is captured by reference for the finest-level smoother; mutating its
// values afterwards invalidates the preconditioner (rebuild instead, as
// with the other factorizations in this package).
func NewAMG(a *CSR, opts AMGOptions) (*AMGPrec, error) {
	t0 := telemetry.Now()
	defer func() { mPrecondBuilds.Add(1); mPrecondSeconds.Since(t0) }()
	opts = opts.withDefaults()
	p := &AMGPrec{opts: opts, ns: []int{a.N()}, nnzs: []int{a.NNZ()}}
	p.workers = clampWorkers(opts.Workers)
	cur := a
	for cur.N() > opts.CoarseSize && len(p.levels)+1 < opts.MaxLevels {
		lvl, coarseA, err := coarsenPairwise(cur, p.workers)
		if err != nil {
			return nil, err
		}
		if lvl == nil {
			break // no coarsening progress; factor what we have
		}
		p.levels = append(p.levels, lvl)
		p.ns = append(p.ns, lvl.nc)
		p.nnzs = append(p.nnzs, coarseA.NNZ())
		cur = coarseA
	}
	f, err := FactorCholesky(cur)
	if err != nil {
		return nil, fmt.Errorf("sparse: AMG coarse factorization (n=%d): %w", cur.N(), err)
	}
	p.coarse = f
	p.allocScratch()
	st := p.Stats()
	mAMGBuilds.Add(1)
	mAMGLevels.Observe(float64(len(p.ns)))
	mAMGLastLevels.Set(float64(st.Levels))
	mAMGLastCoarseN.Set(float64(st.CoarseN))
	mAMGOpComplexity.Set(st.OperatorComplexity)
	telemetry.RecordAMGHierarchy(p.ns, st.OperatorComplexity)
	if telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelInfo, "sparse: AMG hierarchy built",
			slog.Int("levels", st.Levels),
			slog.Int("finest_n", p.ns[0]),
			slog.Int("coarse_n", st.CoarseN),
			slog.Float64("operator_complexity", st.OperatorComplexity))
	}
	return p, nil
}

// AMGStats describes a built hierarchy: depth, per-level sizes, and the
// operator-complexity ratio Σ level nnz / finest nnz (a grid-independent
// memory/work overhead figure; ~2 is typical for pairwise aggregation).
type AMGStats struct {
	Levels             int     `json:"levels"`
	LevelUnknowns      []int   `json:"level_unknowns"`
	LevelNNZ           []int   `json:"level_nnz"`
	OperatorComplexity float64 `json:"operator_complexity"`
	// GridComplexity is Σ level unknowns / finest unknowns — with
	// OperatorComplexity, the standard pair of hierarchy-cost ratios.
	GridComplexity float64 `json:"grid_complexity"`
	CoarseN        int     `json:"coarse_n"`
}

// Stats returns the hierarchy shape of a built preconditioner.
func (p *AMGPrec) Stats() AMGStats {
	st := AMGStats{
		Levels:        len(p.ns),
		LevelUnknowns: append([]int(nil), p.ns...),
		LevelNNZ:      append([]int(nil), p.nnzs...),
		CoarseN:       p.CoarseN(),
	}
	total := 0
	for _, nnz := range p.nnzs {
		total += nnz
	}
	if len(p.nnzs) > 0 && p.nnzs[0] > 0 {
		st.OperatorComplexity = float64(total) / float64(p.nnzs[0])
	}
	unknowns := 0
	for _, n := range p.ns {
		unknowns += n
	}
	if len(p.ns) > 0 && p.ns[0] > 0 {
		st.GridComplexity = float64(unknowns) / float64(p.ns[0])
	}
	return st
}

// Levels returns the hierarchy depth, counting the coarsest level.
func (p *AMGPrec) Levels() int { return len(p.ns) }

// CoarseN returns the number of unknowns on the directly-solved coarsest
// level.
func (p *AMGPrec) CoarseN() int { return p.ns[len(p.ns)-1] }

func (p *AMGPrec) allocScratch() {
	depth := len(p.ns)
	p.xs = make([][]float64, depth)
	p.bs = make([][]float64, depth)
	p.rs = make([][]float64, depth)
	for ell, n := range p.ns {
		if ell > 0 {
			p.xs[ell] = make([]float64, n)
			p.bs[ell] = make([]float64, n)
		}
		if ell < len(p.levels) {
			p.rs[ell] = make([]float64, n)
		}
	}
}

// forkScratch returns a view sharing the immutable hierarchy but owning
// fresh V-cycle scratch, so forks can Apply concurrently.
func (p *AMGPrec) forkScratch() Preconditioner {
	q := *p
	q.allocScratch()
	return &q
}

// coarsenPairwise aggregates the unknowns of a by greedy strongest-
// connection pairing (each unvisited node pairs with its largest-|a_ij|
// unaggregated neighbor; isolated leftovers become singletons) and returns
// the level plus the Galerkin coarse operator PᵀAP. A nil level signals
// that no coarsening progress was possible. The pairing itself is
// inherently sequential (greedy over a shared visited set) and cheap; the
// Galerkin product, the expensive half, runs on `workers` workers.
func coarsenPairwise(a *CSR, workers int) (*amgLevel, *CSR, error) {
	n := a.N()
	invDiag := make([]float64, n)
	for i, d := range a.Diag() {
		if d <= 0 {
			return nil, nil, fmt.Errorf("sparse: AMG: non-positive diagonal at row %d (value %g): %w", i, d, ErrNotPositiveDefinite)
		}
		invDiag[i] = 1 / d
	}
	agg := make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		best, bestV := -1, 0.0
		a.Row(i, func(j int, v float64) {
			if j != i && agg[j] < 0 {
				if av := math.Abs(v); av > bestV {
					bestV = av
					best = j
				}
			}
		})
		agg[i] = int32(nc)
		if best >= 0 {
			agg[best] = int32(nc)
		}
		nc++
	}
	if nc >= n {
		return nil, nil, nil // every aggregate is a singleton: no progress
	}
	lvl := &amgLevel{a: a, invDiag: invDiag, agg: agg, nc: nc}
	// Aggregate member lists (counting sort): ascending fine index within
	// each aggregate, the order the restriction gather sums in.
	lvl.aggPtr = make([]int32, nc+1)
	for _, g := range agg {
		lvl.aggPtr[g+1]++
	}
	for g := 0; g < nc; g++ {
		lvl.aggPtr[g+1] += lvl.aggPtr[g]
	}
	lvl.aggRows = make([]int32, n)
	next := make([]int32, nc)
	copy(next, lvl.aggPtr[:nc])
	for i, g := range agg {
		lvl.aggRows[next[g]] = int32(i)
		next[g]++
	}
	return lvl, galerkinProduct(a, lvl, workers), nil
}

// galerkinProduct computes the coarse operator PᵀAP for piecewise-constant
// P: entry (i,j,v) of A accumulates into coarse entry (agg[i], agg[j]).
// Coarse rows are independent — row I is assembled from exactly the fine
// rows of aggregate I — so they are computed in parallel with a sparse
// accumulator per worker, two passes (count, then fill) sharing one
// stamp-marked index. The accumulation order within a coarse row is fixed
// by the structure (member fine rows ascending, entries within each row
// ascending), never by the schedule, so the operator is bit-identical at
// every worker count. Explicitly stored zeros of A are skipped, exactly as
// the historical Builder-based product dropped them.
func galerkinProduct(a *CSR, lvl *amgLevel, workers int) *CSR {
	nc := lvl.nc
	agg, aggPtr, aggRows := lvl.agg, lvl.aggPtr, lvl.aggRows
	rowPtr := make([]int, nc+1)
	workers = capWorkers(workers, a.NNZ(), spmvGrain)
	// Pass 1: per-coarse-row unique-column counts.
	parRun(workers, func(w int) {
		markRow := make([]int32, nc)
		for g := range markRow {
			markRow[g] = -1
		}
		lo, hi := chunkRange(nc, workers, w)
		for bigI := lo; bigI < hi; bigI++ {
			count := 0
			for t := aggPtr[bigI]; t < aggPtr[bigI+1]; t++ {
				i := int(aggRows[t])
				for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
					if a.val[k] == 0 {
						continue
					}
					if bigJ := agg[a.col[k]]; markRow[bigJ] != int32(bigI) {
						markRow[bigJ] = int32(bigI)
						count++
					}
				}
			}
			rowPtr[bigI+1] = count
		}
	})
	for g := 0; g < nc; g++ {
		rowPtr[g+1] += rowPtr[g]
	}
	col := make([]int32, rowPtr[nc])
	val := make([]float64, rowPtr[nc])
	// Pass 2: accumulate values in encounter order, then sort each row's
	// (col, val) pairs by column. Sorting moves fully accumulated values —
	// it cannot change any sum.
	parRun(workers, func(w int) {
		markRow := make([]int32, nc)
		markPos := make([]int32, nc)
		for g := range markRow {
			markRow[g] = -1
		}
		lo, hi := chunkRange(nc, workers, w)
		for bigI := lo; bigI < hi; bigI++ {
			base := rowPtr[bigI]
			nrow := 0
			for t := aggPtr[bigI]; t < aggPtr[bigI+1]; t++ {
				i := int(aggRows[t])
				for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
					v := a.val[k]
					if v == 0 {
						continue
					}
					bigJ := agg[a.col[k]]
					if markRow[bigJ] != int32(bigI) {
						markRow[bigJ] = int32(bigI)
						markPos[bigJ] = int32(nrow)
						col[base+nrow] = bigJ
						val[base+nrow] = v
						nrow++
					} else {
						val[base+int(markPos[bigJ])] += v
					}
				}
			}
			// Insertion sort by column; coarse rows are short (pairwise
			// aggregation roughly preserves row degree).
			for s := base + 1; s < base+nrow; s++ {
				c, v := col[s], val[s]
				t := s - 1
				for t >= base && col[t] > c {
					col[t+1], val[t+1] = col[t], val[t]
					t--
				}
				col[t+1], val[t+1] = c, v
			}
		}
	})
	return &CSR{n: nc, rowPtr: rowPtr, col: col, val: val}
}

// smoothFromZero performs `sweeps` weighted-Jacobi sweeps starting from the
// zero vector: the first sweep reduces to x = ωD⁻¹b, the rest are full
// x += ωD⁻¹(b − Ax) updates. x is fully overwritten.
func (p *AMGPrec) smoothFromZero(lvl *amgLevel, b, x, r []float64, sweeps int) {
	w := p.opts.Omega
	parForElems(p.levelWorkers(lvl), len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = w * lvl.invDiag[i] * b[i]
		}
	})
	p.smooth(lvl, b, x, r, sweeps-1)
}

// smooth performs `sweeps` weighted-Jacobi sweeps on the current iterate.
// The SpMV and the damped-Jacobi update are both element-wise parallel
// kernels, so the sweep is bit-identical at every worker count.
func (p *AMGPrec) smooth(lvl *amgLevel, b, x, r []float64, sweeps int) {
	if sweeps <= 0 {
		return
	}
	mKernelSmooth.Add(1)
	wk := p.levelWorkers(lvl)
	if wk > 1 && telemetry.Enabled() && telemetry.TracingEnabled() {
		defer telemetry.StartSpan(string(spanSmoother)).End()
	}
	w := p.opts.Omega
	for s := 0; s < sweeps; s++ {
		lvl.a.MulVecW(x, r, wk)
		parForElems(wk, len(x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] += w * lvl.invDiag[i] * (b[i] - r[i])
			}
		})
	}
}

// vcycle runs one V-cycle at level ell, solving A_ell x ≈ b from a zero
// initial guess. x is fully overwritten.
func (p *AMGPrec) vcycle(ell int, b, x []float64) {
	if ell == len(p.levels) {
		p.coarse.SolveTo(x, b)
		return
	}
	lvl := p.levels[ell]
	wk := p.levelWorkers(lvl)
	r := p.rs[ell]
	p.smoothFromZero(lvl, b, x, r, p.opts.PreSmooth)
	// Coarse-grid correction: restrict the residual (Pᵀr sums each
	// aggregate's entries), recurse, prolongate (P copies the aggregate
	// value to its members) and correct. Restriction gathers each
	// aggregate's members in ascending fine order — the same sums, in the
	// same order, as the historical scatter loop — so aggregates can be
	// computed concurrently without changing a bit.
	lvl.a.MulVecW(x, r, wk)
	parSub(b, r, r, wk)
	bc := p.bs[ell+1]
	aggPtr, aggRows := lvl.aggPtr, lvl.aggRows
	parForElems(wk, len(bc), func(lo, hi int) {
		for g := lo; g < hi; g++ {
			var s float64
			for t := aggPtr[g]; t < aggPtr[g+1]; t++ {
				s += r[aggRows[t]]
			}
			bc[g] = s
		}
	})
	xc := p.xs[ell+1]
	p.vcycle(ell+1, bc, xc)
	agg := lvl.agg
	parForElems(wk, len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += xc[agg[i]]
		}
	})
	p.smooth(lvl, b, x, r, p.opts.PostSmooth)
}

// Apply computes z = M⁻¹r as one symmetric V-cycle.
func (p *AMGPrec) Apply(r, z []float64) {
	p.vcycle(0, r, z)
}
