// Package sparse implements the sparse and dense linear algebra needed for
// power-delivery-network simulation: coordinate-format assembly, compressed
// sparse row storage, reverse Cuthill-McKee ordering, a skyline Cholesky
// direct solver, conjugate-gradient iterative solvers with Jacobi and
// incomplete-Cholesky preconditioning, and a small dense LU for transient
// circuit simulation.
//
// All solvers target the symmetric positive definite conductance matrices
// produced by modified nodal analysis of resistive PDNs.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Builder accumulates matrix entries in coordinate (COO) form. Duplicate
// entries for the same (row, col) are summed when converting to CSR, which
// is exactly the element-stamping discipline of circuit assembly.
type Builder struct {
	n    int
	rows []int32
	cols []int32
	vals []float64
}

// NewBuilder returns a Builder for an n x n matrix.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (b *Builder) NNZ() int { return len(b.vals) }

// CooValues exposes the accumulated entry values in Add order (zero adds
// excluded, duplicates not merged). Treat as read-only: the slice backs the
// builder. It lets a caller that already stamped a builder seed a value
// array for later AssemblyMap.Fold restamps without re-stamping.
func (b *Builder) CooValues() []float64 { return b.vals }

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym accumulates a symmetric pair: v into (i, j) and (j, i).
// For i == j the value is added once.
func (b *Builder) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// ToCSR converts the accumulated entries into compressed sparse row form,
// summing duplicates. The builder remains usable afterwards.
func (b *Builder) ToCSR() *CSR {
	m, _ := b.toCSR(false)
	return m
}

// AssemblyMap records how a Builder's COO entries fold into the CSR value
// array: entry order[t] of the COO stream is the t-th term accumulated, and
// it lands in val[dst[t]]. Replaying Fold with updated COO values performs
// the exact floating-point accumulation sequence of ToCSR, so a value-only
// re-assembly is bit-identical to rebuilding the matrix from scratch —
// without re-sorting or reallocating anything.
type AssemblyMap struct {
	order []int32 // COO entry indices in CSR merge order
	dst   []int32 // CSR val index receiving each ordered entry
	nnz   int     // CSR nonzero count
}

// ToCSRIndexed is ToCSR plus the assembly map needed to restamp values
// later. The returned CSR is bit-identical to ToCSR's.
func (b *Builder) ToCSRIndexed() (*CSR, *AssemblyMap) {
	return b.toCSR(true)
}

// Fold re-accumulates cooVals (indexed as the builder's insertion order)
// into csrVal, replicating ToCSR's merge arithmetic exactly.
func (m *AssemblyMap) Fold(cooVals, csrVal []float64) {
	if len(csrVal) != m.nnz {
		panic("sparse: AssemblyMap.Fold dimension mismatch")
	}
	for i := range csrVal {
		csrVal[i] = 0
	}
	for t, k := range m.order {
		csrVal[m.dst[t]] += cooVals[k]
	}
}

func (b *Builder) toCSR(indexed bool) (*CSR, *AssemblyMap) {
	n := b.n
	// Count entries per row.
	counts := make([]int, n+1)
	for _, r := range b.rows {
		counts[r+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	rowPtr := counts
	colTmp := make([]int32, len(b.vals))
	valTmp := make([]float64, len(b.vals))
	var idxTmp []int32
	if indexed {
		idxTmp = make([]int32, len(b.vals))
	}
	next := make([]int, n)
	copy(next, rowPtr[:n])
	for k := range b.vals {
		r := b.rows[k]
		p := next[r]
		colTmp[p] = b.cols[k]
		valTmp[p] = b.vals[k]
		if indexed {
			idxTmp[p] = int32(k)
		}
		next[r]++
	}
	// Sort each row by column and merge duplicates in place. The sort is
	// driven purely by column comparisons, so the resulting order — and
	// therefore the duplicate accumulation sequence — is identical whether
	// or not origin indices ride along.
	var am *AssemblyMap
	if indexed {
		am = &AssemblyMap{
			order: make([]int32, 0, len(b.vals)),
			dst:   make([]int32, 0, len(b.vals)),
		}
	}
	outPtr := make([]int, n+1)
	outCol := make([]int32, 0, len(valTmp))
	outVal := make([]float64, 0, len(valTmp))
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		row := rowEntries{cols: colTmp[lo:hi], vals: valTmp[lo:hi]}
		if indexed {
			row.idx = idxTmp[lo:hi]
		}
		sort.Sort(row)
		var lastCol int32 = -1
		for k := 0; k < row.Len(); k++ {
			c, v := row.cols[k], row.vals[k]
			if c == lastCol {
				outVal[len(outVal)-1] += v
			} else {
				outCol = append(outCol, c)
				outVal = append(outVal, v)
				lastCol = c
			}
			if indexed {
				am.order = append(am.order, row.idx[k])
				am.dst = append(am.dst, int32(len(outVal)-1))
			}
		}
		outPtr[i+1] = len(outVal)
	}
	if indexed {
		am.nnz = len(outVal)
	}
	return &CSR{n: n, rowPtr: outPtr, col: outCol, val: outVal}, am
}

type rowEntries struct {
	cols []int32
	vals []float64
	idx  []int32 // optional COO origin indices (nil when not tracked)
}

func (r rowEntries) Len() int           { return len(r.cols) }
func (r rowEntries) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowEntries) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
	if r.idx != nil {
		r.idx[i], r.idx[j] = r.idx[j], r.idx[i]
	}
}

// CSR is a compressed-sparse-row matrix. Entries within a row are stored in
// strictly increasing column order with duplicates merged.
type CSR struct {
	n      int
	rowPtr []int
	col    []int32
	val    []float64

	// Cached nnz-balanced row partitions for parallel SpMV, keyed by part
	// count. Structure-only (derived from rowPtr), so value restamps never
	// invalidate them; guarded because batch lanes share one matrix.
	partMu sync.Mutex
	parts  map[int][]int32
}

// N returns the matrix dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.val) }

// Values exposes the backing value array (length NNZ, CSR entry order) for
// in-place restamping: overwriting it changes matrix values while the
// sparsity structure stays fixed. Used with AssemblyMap.Fold by prepared
// solvers; mutating it invalidates any factorization computed from m.
func (m *CSR) Values() []float64 { return m.val }

// At returns the value at (i, j), zero if not stored. O(log rowlen).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic("sparse: At out of range")
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.col[lo:hi]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return m.val[lo+k]
	}
	return 0
}

// Row calls f(j, v) for every stored entry (i, j) = v of row i in
// increasing column order.
func (m *CSR) Row(i int, f func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		f(int(m.col[k]), m.val[k])
	}
}

// MulVec computes y = A*x. y must have length N and may not alias x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	val, col, ptr := m.val, m.col, m.rowPtr
	for i := 0; i < m.n; i++ {
		var s float64
		lo, hi := ptr[i], ptr[i+1]
		for k := lo; k < hi; k++ {
			s += val[k] * x[col[k]]
		}
		y[i] = s
	}
}

// Diag returns a copy of the main diagonal.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose to within
// relative tolerance tol on each entry pair.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := int(m.col[k])
			a, b := m.val[k], m.At(j, i)
			scale := math.Max(math.Abs(a), math.Abs(b))
			if math.Abs(a-b) > tol*math.Max(scale, 1) {
				return false
			}
		}
	}
	return true
}

// Permute returns B = P*A*Pᵀ where the permutation maps old index i to new
// index perm[i]; that is, B[perm[i]][perm[j]] = A[i][j].
func (m *CSR) Permute(perm []int) *CSR {
	if len(perm) != m.n {
		panic("sparse: Permute dimension mismatch")
	}
	b := NewBuilder(m.n)
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			b.Add(perm[i], perm[int(m.col[k])], m.val[k])
		}
	}
	return b.ToCSR()
}

// Lower returns the lower triangle (including diagonal) of m as a CSR.
func (m *CSR) Lower() *CSR {
	b := NewBuilder(m.n)
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if j := int(m.col[k]); j <= i {
				b.Add(i, j, m.val[k])
			}
		}
	}
	return b.ToCSR()
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		n:      m.n,
		rowPtr: append([]int(nil), m.rowPtr...),
		col:    append([]int32(nil), m.col...),
		val:    append([]float64(nil), m.val...),
	}
	return c
}

// String renders small matrices densely for debugging.
func (m *CSR) String() string {
	if m.n > 16 {
		return fmt.Sprintf("CSR{n=%d nnz=%d}", m.n, m.NNZ())
	}
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
