package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gridLaplacian builds the conductance matrix of an nx x ny resistor grid
// with unit conductances plus a ground tie g on every diagonal, which makes
// it strictly positive definite. This is the canonical PDN-shaped matrix.
func gridLaplacian(nx, ny int, g float64) *CSR {
	n := nx * ny
	b := NewBuilder(n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			b.Add(i, i, g)
			if x+1 < nx {
				j := idx(x+1, y)
				b.Add(i, i, 1)
				b.Add(j, j, 1)
				b.AddSym(i, j, -1)
			}
			if y+1 < ny {
				j := idx(x, y+1)
				b.Add(i, i, 1)
				b.Add(j, j, 1)
				b.AddSym(i, j, -1)
			}
		}
	}
	return b.ToCSR()
}

// randomSPD builds a random dense SPD matrix of size n as a CSR.
func randomSPD(n int, rng *rand.Rand) *CSR {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[k][i] * a[k][j]
			}
			if i == j {
				s += float64(n)
			}
			b.Add(i, j, s)
		}
	}
	return b.ToCSR()
}

func TestBuilderDuplicatesSummed(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2.5)
	b.Add(0, 1, 1.5)
	b.Add(2, 2, -1)
	b.Add(2, 2, 3)
	m := b.ToCSR()
	if got := m.At(0, 1); got != 4.0 {
		t.Errorf("At(0,1) = %g, want 4", got)
	}
	if got := m.At(2, 2); got != 2.0 {
		t.Errorf("At(2,2) = %g, want 2", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %g, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderZeroIgnored(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 0)
	if b.NNZ() != 0 {
		t.Errorf("zero entry should be dropped, NNZ=%d", b.NNZ())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 2, -3)
	b.AddSym(1, 1, 5)
	m := b.ToCSR()
	if m.At(0, 2) != -3 || m.At(2, 0) != -3 {
		t.Error("AddSym off-diagonal wrong")
	}
	if m.At(1, 1) != 5 {
		t.Error("AddSym diagonal should be added once")
	}
}

func TestCSRRowOrderSorted(t *testing.T) {
	b := NewBuilder(4)
	b.Add(1, 3, 1)
	b.Add(1, 0, 2)
	b.Add(1, 2, 3)
	m := b.ToCSR()
	var cols []int
	m.Row(1, func(j int, _ float64) { cols = append(cols, j) })
	want := []int{0, 2, 3}
	if len(cols) != len(want) {
		t.Fatalf("row 1 cols = %v", cols)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Errorf("row 1 cols = %v, want %v", cols, want)
			break
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomSPD(12, rng)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 12)
	m.MulVec(x, y)
	for i := 0; i < 12; i++ {
		var want float64
		for j := 0; j < 12; j++ {
			want += m.At(i, j) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("MulVec[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestLaplacianRowSums(t *testing.T) {
	// Without the ground tie, every row of a Laplacian sums to zero.
	m := gridLaplacian(5, 4, 0)
	ones := make([]float64, m.N())
	for i := range ones {
		ones[i] = 1
	}
	y := make([]float64, m.N())
	m.MulVec(ones, y)
	if NormInf(y) > 1e-12 {
		t.Errorf("Laplacian * 1 = %g, want 0", NormInf(y))
	}
}

func TestIsSymmetric(t *testing.T) {
	m := gridLaplacian(4, 4, 0.5)
	if !m.IsSymmetric(1e-12) {
		t.Error("grid Laplacian should be symmetric")
	}
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	if b.ToCSR().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix misreported as symmetric")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSPD(10, rng)
	perm := rng.Perm(10)
	p := m.Permute(perm)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if got, want := p.At(perm[i], perm[j]), m.At(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("Permute(%d,%d): got %g want %g", i, j, got, want)
			}
		}
	}
	// Permuting back with the inverse recovers the original.
	back := p.Permute(InvertPerm(perm))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if math.Abs(back.At(i, j)-m.At(i, j)) > 1e-12 {
				t.Fatal("inverse permute did not round-trip")
			}
		}
	}
}

func TestLowerTriangle(t *testing.T) {
	m := gridLaplacian(3, 3, 1)
	l := m.Lower()
	for i := 0; i < m.N(); i++ {
		l.Row(i, func(j int, v float64) {
			if j > i {
				t.Errorf("Lower has upper entry (%d,%d)", i, j)
			}
			if v != m.At(i, j) {
				t.Errorf("Lower(%d,%d) = %g, want %g", i, j, v, m.At(i, j))
			}
		})
	}
}

func TestDiag(t *testing.T) {
	m := gridLaplacian(3, 2, 2)
	d := m.Diag()
	for i, v := range d {
		if v != m.At(i, i) {
			t.Errorf("Diag[%d] = %g, want %g", i, v, m.At(i, i))
		}
	}
}

func TestMulVecPropertyLinear(t *testing.T) {
	// A(x+y) = Ax + Ay for random small vectors.
	m := gridLaplacian(4, 3, 1)
	n := m.N()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		xy := make([]float64, n)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		ax, ay, axy := make([]float64, n), make([]float64, n), make([]float64, n)
		m.MulVec(x, ax)
		m.MulVec(y, ay)
		m.MulVec(xy, axy)
		for i := range axy {
			if math.Abs(axy[i]-ax[i]-ay[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %g", got)
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	if z[0] != 6 || z[1] != 9 || z[2] != 12 {
		t.Errorf("Axpy = %v", z)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Errorf("NormInf = %g", got)
	}
	s := make([]float64, 3)
	Sub(y, x, s)
	if s[0] != 3 || s[1] != 3 || s[2] != 3 {
		t.Errorf("Sub = %v", s)
	}
	Scale(0.5, s)
	if s[0] != 1.5 {
		t.Errorf("Scale = %v", s)
	}
}
