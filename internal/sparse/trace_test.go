package sparse

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"voltstack/internal/telemetry"
)

// indefinite2x2 is symmetric with eigenvalues 3 and -1: PCG breaks down on
// it (pᵀAp < 0) and IC(0) cannot factor it at any shift in the ladder.
func indefinite2x2() *CSR {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.AddSym(0, 1, 2)
	return b.ToCSR()
}

func TestTraceRecorderRing(t *testing.T) {
	a := gridLaplacian(2, 2, 1)
	rec := newTraceRecorder("pcg", a, nil, IdentityPrec{}, 1e-9, 10)
	const total = traceHeadLen + traceTailLen + 100
	for i := 0; i < total; i++ {
		rec.record(float64(i))
	}
	err := rec.finish(CGResult{Iterations: total - 1, Residual: float64(total - 1)},
		fmt.Errorf("%w: synthetic", ErrNoConvergence))
	tr := TraceFromError(err)
	if tr == nil {
		t.Fatal("no trace attached")
	}
	if got := len(tr.Residuals); got != traceHeadLen+traceTailLen {
		t.Fatalf("kept %d residuals, want %d", got, traceHeadLen+traceTailLen)
	}
	if tr.ResidualsDropped != 100 {
		t.Errorf("dropped = %d, want 100", tr.ResidualsDropped)
	}
	// Head keeps the first residuals in order...
	for i := 0; i < traceHeadLen; i++ {
		if tr.Residuals[i] != float64(i) {
			t.Fatalf("head[%d] = %g, want %d", i, tr.Residuals[i], i)
		}
	}
	// ...and the tail keeps the final ones, still in iteration order.
	for i := 0; i < traceTailLen; i++ {
		want := float64(total - traceTailLen + i)
		if got := tr.Residuals[traceHeadLen+i]; got != want {
			t.Fatalf("tail[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestPCGNonConvergenceAttachesTrace(t *testing.T) {
	telemetry.EnableFlightRecorder()
	defer telemetry.DisableFlightRecorder()

	a := gridLaplacian(20, 20, 1e-6)
	b := make([]float64, a.N())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	const maxIter = 5
	_, res, err := PCG(a, b, nil, nil, 1e-14, maxIter)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("errors.Is(ErrNoConvergence) lost through the trace wrapper: %v", err)
	}
	tr := TraceFromError(err)
	if tr == nil {
		t.Fatal("non-convergence carried no trace")
	}
	if tr.Kind != "pcg" || tr.N != a.N() || tr.NNZ != a.NNZ() {
		t.Errorf("trace shape = %q n=%d nnz=%d, want pcg %d %d", tr.Kind, tr.N, tr.NNZ, a.N(), a.NNZ())
	}
	if tr.Preconditioner != "identity" {
		t.Errorf("preconditioner = %q", tr.Preconditioner)
	}
	if tr.WarmStart {
		t.Error("warm start recorded for a zero initial guess")
	}
	if tr.Iterations != maxIter || tr.Iterations != res.Iterations {
		t.Errorf("iterations = %d, want %d", tr.Iterations, maxIter)
	}
	// Iteration 0 plus one residual per iteration.
	if len(tr.Residuals) != maxIter+1 {
		t.Errorf("trajectory has %d points, want %d", len(tr.Residuals), maxIter+1)
	}
	if tr.FinalResidual != res.Residual {
		t.Errorf("final residual %g != result %g", tr.FinalResidual, res.Residual)
	}
	if tr.Err == "" {
		t.Error("trace did not record the error string")
	}
	// The trace must serialize: it is the post-mortem artifact payload.
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("trace not serializable: %v", err)
	}

	// Warm-started solve records its origin.
	x0 := make([]float64, a.N())
	_, _, err = PCG(a, b, x0, nil, 1e-14, maxIter)
	if tr := TraceFromError(err); tr == nil || !tr.WarmStart {
		t.Error("warm start not recorded")
	}
}

func TestPCGTraceOffByDefault(t *testing.T) {
	if telemetry.FlightRecorderEnabled() {
		t.Fatal("flight recorder enabled at test entry")
	}
	a := gridLaplacian(20, 20, 1e-6)
	b := make([]float64, a.N())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	_, _, err := PCG(a, b, nil, nil, 1e-14, 3)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want non-convergence, got %v", err)
	}
	if tr := TraceFromError(err); tr != nil {
		t.Errorf("trace recorded with the gate off: %+v", tr)
	}
}

func TestPCGBreakdownTrace(t *testing.T) {
	telemetry.EnableFlightRecorder()
	defer telemetry.DisableFlightRecorder()

	// b chosen so pᵀAp = bᵀAb = -2 < 0 on the very first iteration.
	_, _, err := PCG(indefinite2x2(), []float64{1, -1}, nil, IdentityPrec{}, 1e-12, 50)
	if err == nil {
		t.Fatal("indefinite solve succeeded")
	}
	if errors.Is(err, ErrNoConvergence) {
		t.Fatalf("breakdown misclassified as non-convergence: %v", err)
	}
	tr := TraceFromError(err)
	if tr == nil {
		t.Fatal("breakdown carried no trace")
	}
	if tr.BreakdownIter != 1 {
		t.Errorf("breakdown iter = %d, want 1", tr.BreakdownIter)
	}
	if !strings.Contains(tr.Err, "not SPD") {
		t.Errorf("trace error = %q", tr.Err)
	}
}

func TestIC0ShiftExhaustion(t *testing.T) {
	_, err := NewIC0(indefinite2x2())
	if err == nil {
		t.Fatal("IC(0) factored an indefinite matrix")
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("errors.Is(ErrNotPositiveDefinite) lost: %v", err)
	}
	if !strings.Contains(err.Error(), "breakdown persists after") {
		t.Errorf("exhaustion error lacks shift count: %v", err)
	}
	if !strings.Contains(err.Error(), "row") {
		t.Errorf("exhaustion error lacks the failing row: %v", err)
	}
}

// TestIC0ShiftRecoveryEvent checks the shift ladder rescues a borderline
// matrix and reports it through the structured event log.
func TestIC0ShiftRecoveryEvent(t *testing.T) {
	var buf bytes.Buffer
	telemetry.EnableEventLog(&buf, slog.LevelInfo)
	defer telemetry.DisableEventLog()

	// Slightly indefinite: unit diagonal with off-diagonal 1.01; a small
	// diagonal shift (the 1.6e-2 rung) makes it factorable.
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.AddSym(0, 1, 1.01)
	p, err := NewIC0(b.ToCSR())
	if err != nil {
		t.Fatalf("shift ladder failed to rescue: %v", err)
	}
	if p == nil {
		t.Fatal("nil preconditioner")
	}
	if !strings.Contains(buf.String(), "diagonal shift applied") {
		t.Errorf("no shift event emitted:\n%s", buf.String())
	}
}
