package sparse

import "sort"

// NestedDissection computes a fill-reducing ordering for the symmetric
// sparsity pattern of a by recursive graph bisection (George's nested
// dissection): a BFS level structure from a pseudo-peripheral vertex
// supplies a small separator, the two halves are ordered recursively, and
// the separator is numbered last. Mesh-like graphs (PDN grids, thermal
// stacks) get near-optimal fill. The returned slice maps old index i to
// new index perm[i].
func NestedDissection(a *CSR) []int {
	n := a.N()
	nd := &ndState{
		a:       a,
		inSet:   make([]int, n),
		level:   make([]int, n),
		queue:   make([]int, 0, n),
		ordered: make([]int, 0, n),
	}
	for i := range nd.inSet {
		nd.inSet[i] = -1
	}
	// Handle each connected component.
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		comp := nd.collectComponent(v, seen)
		nd.dissect(comp)
	}
	perm := make([]int, n)
	for newIdx, old := range nd.ordered {
		perm[old] = newIdx
	}
	return perm
}

type ndState struct {
	a       *CSR
	inSet   []int // generation marker: inSet[v] == gen means v is active
	gen     int
	level   []int
	queue   []int
	ordered []int
}

// leafSize is the subproblem size below which recursion stops and the
// subset is ordered directly.
const leafSize = 24

func (nd *ndState) collectComponent(start int, seen []bool) []int {
	comp := []int{start}
	seen[start] = true
	for head := 0; head < len(comp); head++ {
		nd.a.Row(comp[head], func(j int, _ float64) {
			if !seen[j] {
				seen[j] = true
				comp = append(comp, j)
			}
		})
	}
	return comp
}

// bfsLevels runs a BFS restricted to the active set from start, filling
// nd.level, and returns the vertices in visit order plus the depth.
func (nd *ndState) bfsLevels(set []int, start int) ([]int, int) {
	gen := nd.gen
	order := nd.queue[:0]
	order = append(order, start)
	nd.level[start] = 0
	visitedGen := make(map[int]bool, len(set))
	visitedGen[start] = true
	depth := 0
	for head := 0; head < len(order); head++ {
		v := order[head]
		nd.a.Row(v, func(j int, _ float64) {
			if nd.inSet[j] == gen && !visitedGen[j] {
				visitedGen[j] = true
				nd.level[j] = nd.level[v] + 1
				if nd.level[j] > depth {
					depth = nd.level[j]
				}
				order = append(order, j)
			}
		})
	}
	nd.queue = order[:0]
	out := append([]int(nil), order...)
	return out, depth
}

// dissect recursively orders the given vertex set.
func (nd *ndState) dissect(set []int) {
	if len(set) <= leafSize {
		// Small base case: natural (sorted) order keeps determinism.
		s := append([]int(nil), set...)
		sort.Ints(s)
		nd.ordered = append(nd.ordered, s...)
		return
	}

	// Mark the active set with a fresh generation.
	nd.gen++
	gen := nd.gen
	for _, v := range set {
		nd.inSet[v] = gen
	}

	// Pseudo-peripheral start: BFS twice, starting the second pass from
	// the deepest vertex of the first.
	order, _ := nd.bfsLevels(set, set[0])
	far := order[len(order)-1]
	order, depth := nd.bfsLevels(set, far)

	if len(order) < len(set) {
		// The set splits into disconnected pieces (can happen after
		// separator removal): dissect the found piece and the rest.
		found := map[int]bool{}
		for _, v := range order {
			found[v] = true
		}
		var rest []int
		for _, v := range set {
			if !found[v] {
				rest = append(rest, v)
			}
		}
		nd.dissect(order)
		nd.dissect(rest)
		return
	}
	if depth < 2 {
		// No useful level structure (dense blob): order directly.
		s := append([]int(nil), set...)
		sort.Ints(s)
		nd.ordered = append(nd.ordered, s...)
		return
	}

	mid := depth / 2
	var lo, hi, sep []int
	for _, v := range order {
		switch {
		case nd.level[v] < mid:
			lo = append(lo, v)
		case nd.level[v] > mid:
			hi = append(hi, v)
		default:
			sep = append(sep, v)
		}
	}
	nd.dissect(lo)
	nd.dissect(hi)
	s := append([]int(nil), sep...)
	sort.Ints(s)
	nd.ordered = append(nd.ordered, s...)
}
