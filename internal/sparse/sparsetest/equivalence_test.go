// Cross-solver equivalence properties: every batch API must be
// bit-identical to its serial counterpart for every solver kind, loop
// mode, and worker count, and the AMG preconditioner must be
// residual-equivalent to IC(0) where both converge — and still converge
// where IC(0)'s iteration count blows past its cap.
package sparsetest

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sc"
	"voltstack/internal/sparse"
)

func bitEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func mustBitEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if i, ok := bitEqual(a, b); !ok {
		if i < 0 {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, a[i], b[i])
	}
}

// matrices is the test population: each entry pairs a label with a
// generated SPD system.
func matrices() map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"random-spd": RandomSPD(300, 4, 42),
		"grid2d":     Grid2D(18, 15, 1e-3),
		"grid3d":     Grid3D(7, 7, 6, 1e-3),
	}
}

// TestBatchSerialBitEqualityAcrossSolvers is the sparse-level property:
// SolveBatch/PCGBatch lane i ≡ serial Solve/PCG of RHS i, bitwise, for
// every factorization and preconditioner at workers 1, 2 and 8.
func TestBatchSerialBitEqualityAcrossSolvers(t *testing.T) {
	const k = 8
	for label, a := range matrices() {
		n := a.N()
		bs := RandomBatch(n, k, 1000)
		tol, maxIter := 1e-10, 20*n

		sky, err := sparse.FactorCholesky(a)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		nd, err := sparse.FactorSparse(a, sparse.OrderND)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ic0, err := sparse.NewIC0(a)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		amg, err := sparse.NewAMG(a, sparse.AMGOptions{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}

		for _, workers := range []int{1, 2, 8} {
			prefix := fmt.Sprintf("%s workers=%d", label, workers)

			xs := sky.SolveBatchWorkers(bs, workers)
			for i := range bs {
				mustBitEqual(t, prefix+" skyline", sky.Solve(bs[i]), xs[i])
			}
			xs = nd.SolveBatchWorkers(bs, workers)
			for i := range bs {
				mustBitEqual(t, prefix+" sparse-chol", nd.Solve(bs[i]), xs[i])
			}
			for pname, prec := range map[string]sparse.Preconditioner{"ic0": ic0, "amg": amg, "jacobi": sparse.NewJacobi(a)} {
				xs, results, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, workers)
				if err != nil {
					t.Fatalf("%s %s: %v", prefix, pname, err)
				}
				for i := range bs {
					ref, refRes, err := sparse.PCG(a, bs[i], nil, prec, tol, maxIter)
					if err != nil {
						t.Fatalf("%s %s serial: %v", prefix, pname, err)
					}
					mustBitEqual(t, prefix+" "+pname, ref, xs[i])
					if results[i] != refRes {
						t.Fatalf("%s %s lane %d: %+v vs serial %+v", prefix, pname, i, results[i], refRes)
					}
				}
			}
		}
	}
}

// pdnResultsBitEqual compares every float field of two pdngrid Results
// bitwise.
func pdnResultsBitEqual(t *testing.T, name string, a, b *pdngrid.Result) {
	t.Helper()
	scalars := [][2]float64{
		{a.MaxIRDropFrac, b.MaxIRDropFrac},
		{a.MaxRiseFrac, b.MaxRiseFrac},
		{a.InputPower, b.InputPower},
		{a.LoadPower, b.LoadPower},
		{a.ConverterLoss, b.ConverterLoss},
		{a.WireLoss, b.WireLoss},
		{a.Efficiency, b.Efficiency},
		{a.MaxConverterCurrent, b.MaxConverterCurrent},
		{a.SolverResidual, b.SolverResidual},
	}
	for i, p := range scalars {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Fatalf("%s: scalar %d: %v vs %v", name, i, p[0], p[1])
		}
	}
	if a.SolverIterations != b.SolverIterations || a.WorstLayer != b.WorstLayer || a.OverLimit != b.OverLimit {
		t.Fatalf("%s: diagnostics differ: %+v vs %+v",
			name,
			[3]any{a.SolverIterations, a.WorstLayer, a.OverLimit},
			[3]any{b.SolverIterations, b.WorstLayer, b.OverLimit})
	}
	mustBitEqual(t, name+" pads", a.PadCurrents, b.PadCurrents)
	mustBitEqual(t, name+" tsvs", a.TSVCurrents, b.TSVCurrents)
	mustBitEqual(t, name+" converters", a.ConverterCurrents, b.ConverterCurrents)
	if len(a.CellVoltages) != len(b.CellVoltages) {
		t.Fatalf("%s: layer count %d vs %d", name, len(a.CellVoltages), len(b.CellVoltages))
	}
	for l := range a.CellVoltages {
		mustBitEqual(t, fmt.Sprintf("%s layer %d", name, l), a.CellVoltages[l], b.CellVoltages[l])
	}
}

func vsTestConfig(kind circuit.SolverKind, ctrl sc.Control) pdngrid.Config {
	conv := sc.Default28nm()
	conv.Cap = sc.Trench
	prm := pdngrid.DefaultParams()
	prm.GridNx, prm.GridNy = 10, 10
	return pdngrid.Config{
		Kind:              pdngrid.VoltageStacked,
		Layers:            3,
		Chip:              power.Example16Core(),
		Params:            prm,
		TSV:               pdngrid.FewTSV(),
		PadPowerFraction:  0.5,
		ConvertersPerCore: 2,
		Converter:         conv,
		Control:           ctrl,
		Solve:             circuit.SolveOptions{Solver: kind},
	}
}

// TestPDNSolveBatchMatchesSerialEverywhere is the system-level property:
// PDN.SolveBatchWorkers ≡ serial PDN.Solve per entry, bitwise, across all
// solver kinds × open/closed loop × workers 1/2/8. The serial oracle runs
// on its own PDN instance so engine caching cannot couple the two paths.
func TestPDNSolveBatchMatchesSerialEverywhere(t *testing.T) {
	cores := power.Example16Core().NumCores()
	batch := [][][]float64{
		pdngrid.InterleavedActivities(3, cores, 0.65),
		pdngrid.UniformActivities(3, cores, 1),
		pdngrid.UniformActivities(3, cores, 0.4),
		pdngrid.InterleavedActivities(3, cores, 0.2),
	}
	kinds := map[string]circuit.SolverKind{
		"direct":      circuit.Direct,
		"sparse-chol": circuit.DirectSparseND,
		"pcg-ic0":     circuit.PCGIC0,
		"pcg-jacobi":  circuit.PCGJacobi,
		"pcg-amg":     circuit.PCGAMG,
	}
	loops := map[string]sc.Control{
		"open":   nil,
		"closed": sc.ClosedLoop{},
	}
	for kname, kind := range kinds {
		for lname, ctrl := range loops {
			serial, err := pdngrid.New(vsTestConfig(kind, ctrl))
			if err != nil {
				t.Fatal(err)
			}
			refs := make([]*pdngrid.Result, len(batch))
			for i, acts := range batch {
				if refs[i], err = serial.Solve(acts); err != nil {
					t.Fatalf("%s/%s serial entry %d: %v", kname, lname, i, err)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				batched, err := pdngrid.New(vsTestConfig(kind, ctrl))
				if err != nil {
					t.Fatal(err)
				}
				rs, err := batched.SolveBatchWorkers(batch, workers)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", kname, lname, workers, err)
				}
				for i := range batch {
					pdnResultsBitEqual(t,
						fmt.Sprintf("%s/%s workers=%d entry %d", kname, lname, workers, i),
						refs[i], rs[i])
				}
			}
		}
	}
}

// TestPDNSolveBatchForceFreshFallback: ForceFreshSolve disables the
// prepared engine, so SolveBatch must take the serial fallback — and
// still match a serial oracle bitwise.
func TestPDNSolveBatchForceFreshFallback(t *testing.T) {
	cores := power.Example16Core().NumCores()
	batch := [][][]float64{
		pdngrid.UniformActivities(3, cores, 1),
		pdngrid.InterleavedActivities(3, cores, 0.65),
	}
	cfg := vsTestConfig(circuit.PCGIC0, nil)
	cfg.ForceFreshSolve = true
	serial, err := pdngrid.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*pdngrid.Result, len(batch))
	for i, acts := range batch {
		if refs[i], err = serial.Solve(acts); err != nil {
			t.Fatal(err)
		}
	}
	batched, err := pdngrid.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := batched.SolveBatchWorkers(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		pdnResultsBitEqual(t, fmt.Sprintf("force-fresh entry %d", i), refs[i], rs[i])
	}
}

// TestCircuitSolveBatchMatchesPreparedSerial pins the circuit layer
// directly: Prepared.SolveBatch lane i ≡ setRHS(i)+Prepared.Solve, and
// both ≡ the fresh Netlist.Solve, for a netlist with per-lane load
// variation.
func TestCircuitSolveBatchMatchesPreparedSerial(t *testing.T) {
	const nx, ny, k = 12, 12, 6
	amps := func(lane, load int) float64 { return 0.005 * float64(lane*7+load+1) }
	// build constructs the test mesh with lane's load currents baked in
	// (lane 0 is also the template the prepared engine compiles from).
	build := func(lane int) (*circuit.Netlist, []circuit.LoadID) {
		net := circuit.New()
		nodes := net.Nodes(nx * ny)
		idx := func(x, y int) int { return nodes[y*nx+x] }
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					net.AddResistor(idx(x, y), idx(x+1, y), 0.5)
				}
				if y+1 < ny {
					net.AddResistor(idx(x, y), idx(x, y+1), 0.5)
				}
			}
		}
		net.AddRailTie(idx(0, 0), 0.01, 1.0)
		net.AddRailTie(idx(nx-1, ny-1), 0.01, 1.0)
		var loads []circuit.LoadID
		for y := 2; y < ny; y += 3 {
			for x := 2; x < nx; x += 3 {
				li := len(loads)
				loads = append(loads, net.AddLoad(idx(x, y), circuit.Ground, amps(lane, li)))
			}
		}
		return net, loads
	}

	for _, kind := range []circuit.SolverKind{circuit.Direct, circuit.DirectSparseND, circuit.PCGIC0, circuit.PCGJacobi, circuit.PCGAMG} {
		net, loads := build(0)
		prep, err := net.Compile(circuit.SolveOptions{Solver: kind})
		if err != nil {
			t.Fatal(err)
		}
		setLane := func(i int) {
			for li, id := range loads {
				prep.SetLoad(id, amps(i, li))
			}
		}
		refs := make([][]float64, k)
		for i := 0; i < k; i++ {
			setLane(i)
			sol, err := prep.Solve(nil)
			if err != nil {
				t.Fatalf("kind %d serial lane %d: %v", kind, i, err)
			}
			refs[i] = append([]float64(nil), sol.Voltages()...)

			// Oracle: the fresh path on an identical netlist.
			fnet, _ := build(i)
			fsol, err := fnet.Solve(circuit.SolveOptions{Solver: kind})
			if err != nil {
				t.Fatalf("kind %d fresh lane %d: %v", kind, i, err)
			}
			mustBitEqual(t, fmt.Sprintf("kind %d fresh-vs-prepared lane %d", kind, i), fsol.Voltages(), refs[i])
		}
		for _, workers := range []int{1, 2, 8} {
			sols, err := prep.SolveBatch(k, setLane, nil, workers)
			if err != nil {
				t.Fatalf("kind %d workers %d: %v", kind, workers, err)
			}
			for i := range sols {
				mustBitEqual(t, fmt.Sprintf("kind %d workers %d lane %d", kind, workers, i), refs[i], sols[i].Voltages())
			}
		}
	}
}

// TestAMGvsIC0ResidualEquivalence: on systems where both preconditioners
// converge, both must reach the same residual tolerance and agree on the
// solution to solver accuracy.
func TestAMGvsIC0ResidualEquivalence(t *testing.T) {
	for label, a := range matrices() {
		n := a.N()
		b := RandomRHS(n, 7)
		normB := sparse.Norm2(b)
		tol := 1e-10

		ic0, err := sparse.NewIC0(a)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		amg, err := sparse.NewAMG(a, sparse.AMGOptions{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		xIC, resIC, err := sparse.PCG(a, b, nil, ic0, tol, 20*n)
		if err != nil {
			t.Fatalf("%s ic0: %v", label, err)
		}
		xMG, resMG, err := sparse.PCG(a, b, nil, amg, tol, 20*n)
		if err != nil {
			t.Fatalf("%s amg: %v", label, err)
		}
		for name, res := range map[string]sparse.CGResult{"ic0": resIC, "amg": resMG} {
			if res.Residual > tol {
				t.Fatalf("%s %s: residual %g above tol", label, name, res.Residual)
			}
		}
		// Same linear system, same tolerance: solutions agree to solver
		// accuracy (scaled by the RHS).
		for i := range xIC {
			if d := math.Abs(xIC[i] - xMG[i]); d > 1e-6*math.Max(normB, 1) {
				t.Fatalf("%s: solutions diverge at %d: %v vs %v", label, i, xIC[i], xMG[i])
			}
		}
	}
}

// TestAMGConvergesWhereIC0ExceedsCap demonstrates the AMG regime: on a
// large low-leakage mesh with a tight iteration budget, IC(0)-PCG blows
// its cap while AMG-PCG converges comfortably — mesh-independent
// convergence is the whole point of the hierarchy.
func TestAMGConvergesWhereIC0ExceedsCap(t *testing.T) {
	if testing.Short() {
		t.Skip("large mesh")
	}
	a := Grid2D(120, 120, 1e-6)
	n := a.N()
	b := RandomRHS(n, 99)
	tol, cap := 1e-10, 60

	ic0, err := sparse.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	_, resIC, errIC := sparse.PCG(a, b, nil, ic0, tol, cap)
	if !errors.Is(errIC, sparse.ErrNoConvergence) {
		t.Fatalf("expected IC(0)-PCG to exceed its %d-iteration cap, got err=%v res=%+v", cap, errIC, resIC)
	}
	amg, err := sparse.NewAMG(a, sparse.AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, resMG, err := sparse.PCG(a, b, nil, amg, tol, cap)
	if err != nil {
		t.Fatalf("AMG-PCG failed within the same cap: %v (%+v)", err, resMG)
	}
	if resMG.Iterations >= cap {
		t.Fatalf("AMG-PCG used the whole cap: %d", resMG.Iterations)
	}
	r := make([]float64, n)
	a.MulVec(x, r)
	sparse.Sub(b, r, r)
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 10*tol {
		t.Fatalf("AMG-PCG true residual %g", rel)
	}
}
