// Worker-count invariance properties: intra-solve kernel parallelism
// (SpMV row partitions, blocked reductions, level-scheduled IC(0)
// sweeps, parallel AMG cycles) must be bit-invisible — every solve is
// bit-identical at workers 1, 2 and 8, at the sparse, circuit and
// pdngrid levels, and when lane parallelism and kernel parallelism
// compose under one budget.
package sparsetest

import (
	"fmt"
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sparse"
)

// precFor builds a fresh preconditioner of the given kind with its
// kernel workers set. A fresh instance per worker count proves the
// whole setup path (factorization, level sets, Galerkin hierarchy) is
// worker-invariant, not just the apply path.
func precFor(t *testing.T, kind string, a *sparse.CSR, workers int) sparse.Preconditioner {
	t.Helper()
	switch kind {
	case "ic0":
		p, err := sparse.NewIC0(a)
		if err != nil {
			t.Fatal(err)
		}
		p.SetWorkers(workers)
		return p
	case "amg":
		p, err := sparse.NewAMG(a, sparse.AMGOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return p
	case "jacobi":
		return sparse.NewJacobi(a)
	default:
		t.Fatalf("unknown prec kind %q", kind)
		return nil
	}
}

// TestPCGKernelWorkersBitEquality is the sparse-level property: PCGW
// with a workspace at workers w ≡ the workers=1 solve, bitwise, for
// every matrix and preconditioner kind.
func TestPCGKernelWorkersBitEquality(t *testing.T) {
	for label, a := range matrices() {
		n := a.N()
		b := RandomRHS(n, 17)
		tol, maxIter := 1e-10, 20*n
		for _, kind := range []string{"ic0", "amg", "jacobi"} {
			ws := sparse.NewPCGWorkspace(n)
			ref, refRes, err := sparse.PCGW(a, b, nil, precFor(t, kind, a, 1), tol, maxIter, ws)
			if err != nil {
				t.Fatalf("%s %s serial: %v", label, kind, err)
			}
			for _, workers := range []int{2, 8} {
				name := fmt.Sprintf("%s %s workers=%d", label, kind, workers)
				wsw := sparse.NewPCGWorkspace(n)
				wsw.SetWorkers(workers)
				x, res, err := sparse.PCGW(a, b, nil, precFor(t, kind, a, workers), tol, maxIter, wsw)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				mustBitEqual(t, name, ref, x)
				if res.Iterations != refRes.Iterations ||
					math.Float64bits(res.Residual) != math.Float64bits(refRes.Residual) {
					t.Fatalf("%s: result %+v vs serial %+v", name, res, refRes)
				}
			}
		}
	}
}

// TestCircuitSolveWorkersBitEquality pins the circuit layer: the same
// netlist solved with SolveOptions.Workers 0 (historical serial), 2, 8
// and -1 (machine default) yields bitwise-identical voltages on both
// the fresh and the prepared paths.
func TestCircuitSolveWorkersBitEquality(t *testing.T) {
	const nx, ny = 20, 18
	build := func() *circuit.Netlist {
		net := circuit.New()
		nodes := net.Nodes(nx * ny)
		idx := func(x, y int) int { return nodes[y*nx+x] }
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					net.AddResistor(idx(x, y), idx(x+1, y), 0.4)
				}
				if y+1 < ny {
					net.AddResistor(idx(x, y), idx(x, y+1), 0.4)
				}
			}
		}
		net.AddRailTie(idx(0, 0), 0.01, 1.0)
		net.AddRailTie(idx(nx-1, ny-1), 0.01, 1.0)
		for y := 3; y < ny; y += 4 {
			for x := 3; x < nx; x += 4 {
				net.AddLoad(idx(x, y), circuit.Ground, 0.002*float64(x+y))
			}
		}
		return net
	}
	for _, kind := range []circuit.SolverKind{circuit.PCGIC0, circuit.PCGJacobi, circuit.PCGAMG} {
		ref, err := build().Solve(circuit.SolveOptions{Solver: kind})
		if err != nil {
			t.Fatalf("kind %d serial: %v", kind, err)
		}
		for _, workers := range []int{2, 8, -1} {
			name := fmt.Sprintf("kind %d workers=%d", kind, workers)
			opts := circuit.SolveOptions{Solver: kind, Workers: workers}
			fresh, err := build().Solve(opts)
			if err != nil {
				t.Fatalf("%s fresh: %v", name, err)
			}
			mustBitEqual(t, name+" fresh", ref.Voltages(), fresh.Voltages())

			prep, err := build().Compile(opts)
			if err != nil {
				t.Fatalf("%s compile: %v", name, err)
			}
			psol, err := prep.Solve(nil)
			if err != nil {
				t.Fatalf("%s prepared: %v", name, err)
			}
			mustBitEqual(t, name+" prepared", ref.Voltages(), psol.Voltages())
		}
	}
}

// TestPDNSolveWorkersBitEquality is the system-level property: the full
// voltage-stacked PDN solve is bit-identical at every kernel worker
// count, for both the prepared engine and the fresh fallback.
func TestPDNSolveWorkersBitEquality(t *testing.T) {
	cores := power.Example16Core().NumCores()
	acts := pdngrid.InterleavedActivities(3, cores, 0.65)
	for _, kind := range []circuit.SolverKind{circuit.PCGIC0, circuit.PCGAMG} {
		for _, fresh := range []bool{false, true} {
			cfg := vsTestConfig(kind, nil)
			cfg.ForceFreshSolve = fresh
			serial, err := pdngrid.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := serial.Solve(acts)
			if err != nil {
				t.Fatalf("kind %d fresh=%v serial: %v", kind, fresh, err)
			}
			for _, workers := range []int{2, 8} {
				wcfg := vsTestConfig(kind, nil)
				wcfg.ForceFreshSolve = fresh
				wcfg.Solve.Workers = workers
				pdn, err := pdngrid.New(wcfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pdn.Solve(acts)
				if err != nil {
					t.Fatalf("kind %d fresh=%v workers=%d: %v", kind, fresh, workers, err)
				}
				pdnResultsBitEqual(t,
					fmt.Sprintf("kind %d fresh=%v workers=%d", kind, fresh, workers),
					ref, got)
			}
		}
	}
}

// TestBatchLanesTimesKernelsBitEquality exercises the composed budget:
// PCGBatch with budget 8 over 4 lanes runs 4 concurrent lanes × 2
// kernel workers each, and every lane must still match the plain serial
// solve bitwise. Runs under -race in CI, so it also proves the forked
// preconditioners and spin barriers are data-race free when lane and
// kernel parallelism are live at once.
func TestBatchLanesTimesKernelsBitEquality(t *testing.T) {
	const k = 4
	for label, a := range matrices() {
		n := a.N()
		bs := RandomBatch(n, k, 2024)
		tol, maxIter := 1e-10, 20*n
		for _, kind := range []string{"ic0", "amg"} {
			prec := precFor(t, kind, a, 1)
			for _, budget := range []int{8, 6} {
				name := fmt.Sprintf("%s %s budget=%d", label, kind, budget)
				xs, results, err := sparse.PCGBatch(a, bs, nil, prec, tol, maxIter, nil, budget)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for i := range bs {
					ref, refRes, err := sparse.PCG(a, bs[i], nil, precFor(t, kind, a, 1), tol, maxIter)
					if err != nil {
						t.Fatalf("%s serial lane %d: %v", name, i, err)
					}
					mustBitEqual(t, fmt.Sprintf("%s lane %d", name, i), ref, xs[i])
					if results[i] != refRes {
						t.Fatalf("%s lane %d: %+v vs serial %+v", name, i, results[i], refRes)
					}
				}
			}
		}
	}
}
