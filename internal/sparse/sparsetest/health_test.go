// Solver-health probe properties: enabling the convergence probes must
// not perturb a single bit of any solve at any layer (sparse, circuit,
// pdngrid) or worker count, the condition estimates must agree with the
// known spectrum of closed-form test systems, and a disabled probe must
// cost zero allocations.
package sparsetest

import (
	"fmt"
	"math"
	"testing"

	"voltstack/internal/circuit"
	"voltstack/internal/pdngrid"
	"voltstack/internal/power"
	"voltstack/internal/sparse"
	"voltstack/internal/telemetry"
)

// withProbes runs f with the convergence probes forced to the given
// state, restoring the disabled default afterwards so the probe gate
// never leaks into other tests (several compare CGResult structs for
// equality, which a leftover Health pointer would break).
func withProbes(on bool, f func()) {
	if on {
		telemetry.EnableConvergenceProbes()
	} else {
		telemetry.DisableConvergenceProbes()
	}
	defer telemetry.DisableConvergenceProbes()
	f()
}

// TestProbesDoNotPerturbSparseSolves is the sparse-level half of the
// probes-don't-perturb contract: PCGW and PCGBatch with probes on are
// bit-identical to probes off for every matrix, preconditioner and
// worker count — and the probed solves actually carry a health report.
func TestProbesDoNotPerturbSparseSolves(t *testing.T) {
	const k = 4
	for label, a := range matrices() {
		n := a.N()
		b := RandomRHS(n, 99)
		bs := RandomBatch(n, k, 4242)
		tol, maxIter := 1e-10, 20*n
		for _, kind := range []string{"ic0", "amg", "jacobi"} {
			for _, workers := range []int{1, 2, 8} {
				name := fmt.Sprintf("%s %s workers=%d", label, kind, workers)

				var refX []float64
				var refRes sparse.CGResult
				withProbes(false, func() {
					ws := sparse.NewPCGWorkspace(n)
					ws.SetWorkers(workers)
					var err error
					refX, refRes, err = sparse.PCGW(a, b, nil, precFor(t, kind, a, workers), tol, maxIter, ws)
					if err != nil {
						t.Fatalf("%s probes-off: %v", name, err)
					}
				})
				if refRes.Health != nil {
					t.Fatalf("%s: health report recorded with probes off", name)
				}

				withProbes(true, func() {
					ws := sparse.NewPCGWorkspace(n)
					ws.SetWorkers(workers)
					x, res, err := sparse.PCGW(a, b, nil, precFor(t, kind, a, workers), tol, maxIter, ws)
					if err != nil {
						t.Fatalf("%s probes-on: %v", name, err)
					}
					mustBitEqual(t, name+" probes", refX, x)
					if res.Iterations != refRes.Iterations ||
						math.Float64bits(res.Residual) != math.Float64bits(refRes.Residual) {
						t.Fatalf("%s: result perturbed: %+v vs %+v", name, res, refRes)
					}
					h := res.Health
					if h == nil {
						t.Fatalf("%s: no health report with probes on", name)
					}
					if !h.Converged || h.Iterations != res.Iterations || h.N != n {
						t.Fatalf("%s: health report inconsistent: %+v", name, h)
					}
					if len(h.Residuals) == 0 || h.Residuals[0] <= h.Residuals[len(h.Residuals)-1] {
						t.Fatalf("%s: residual history not decreasing: %v", name, h.Residuals)
					}
					if h.CondEstimate > 0 && (h.LambdaMin <= 0 || h.LambdaMax < h.LambdaMin) {
						t.Fatalf("%s: bad spectrum estimate: %+v", name, h)
					}

					xs, results, err := sparse.PCGBatch(a, bs, nil, precFor(t, kind, a, 1), tol, maxIter, nil, workers)
					if err != nil {
						t.Fatalf("%s batch probes-on: %v", name, err)
					}
					for i := range bs {
						var wantX []float64
						var wantRes sparse.CGResult
						withProbes(false, func() {
							var err error
							wantX, wantRes, err = sparse.PCG(a, bs[i], nil, precFor(t, kind, a, 1), tol, maxIter)
							if err != nil {
								t.Fatalf("%s lane %d probes-off: %v", name, i, err)
							}
						})
						mustBitEqual(t, fmt.Sprintf("%s batch lane %d", name, i), wantX, xs[i])
						if results[i].Iterations != wantRes.Iterations ||
							math.Float64bits(results[i].Residual) != math.Float64bits(wantRes.Residual) {
							t.Fatalf("%s lane %d perturbed: %+v vs %+v", name, i, results[i], wantRes)
						}
						if results[i].Health == nil {
							t.Fatalf("%s lane %d: no health report", name, i)
						}
					}
				})
			}
		}
	}
}

// TestProbesDoNotPerturbSystemSolves pins the circuit and pdngrid
// levels: full netlist and voltage-stacked PDN solves are bit-identical
// with probes on and off, at workers 1, 2 and 8.
func TestProbesDoNotPerturbSystemSolves(t *testing.T) {
	build := func() *circuit.Netlist {
		net := circuit.New()
		nodes := net.Nodes(12 * 12)
		idx := func(x, y int) int { return nodes[y*12+x] }
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				if x+1 < 12 {
					net.AddResistor(idx(x, y), idx(x+1, y), 0.4)
				}
				if y+1 < 12 {
					net.AddResistor(idx(x, y), idx(x, y+1), 0.4)
				}
			}
		}
		net.AddRailTie(idx(0, 0), 0.01, 1.0)
		net.AddLoad(idx(11, 11), circuit.Ground, 0.02)
		return net
	}
	cores := power.Example16Core().NumCores()
	acts := pdngrid.InterleavedActivities(3, cores, 0.65)

	for _, workers := range []int{1, 2, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		opts := circuit.SolveOptions{Solver: circuit.PCGIC0, Workers: workers}

		var refV []float64
		withProbes(false, func() {
			ref, err := build().Solve(opts)
			if err != nil {
				t.Fatalf("%s circuit probes-off: %v", name, err)
			}
			refV = ref.Voltages()
		})
		withProbes(true, func() {
			sol, err := build().Solve(opts)
			if err != nil {
				t.Fatalf("%s circuit probes-on: %v", name, err)
			}
			mustBitEqual(t, name+" circuit", refV, sol.Voltages())
			if sol.Health == nil {
				t.Fatalf("%s: circuit solution carries no health report", name)
			}
		})

		var refPDN *pdngrid.Result
		mkPDN := func() *pdngrid.PDN {
			cfg := vsTestConfig(circuit.PCGIC0, nil)
			cfg.Solve.Workers = workers
			pdn, err := pdngrid.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return pdn
		}
		withProbes(false, func() {
			var err error
			refPDN, err = mkPDN().Solve(acts)
			if err != nil {
				t.Fatalf("%s pdn probes-off: %v", name, err)
			}
		})
		withProbes(true, func() {
			got, err := mkPDN().Solve(acts)
			if err != nil {
				t.Fatalf("%s pdn probes-on: %v", name, err)
			}
			pdnResultsBitEqual(t, name+" pdn", refPDN, got)
		})
	}
}

// TestConditionEstimateKnownSpectrum checks the Lanczos-based estimates
// against closed-form ground truth: on a diagonal matrix with log-spaced
// eigenvalues in [lo, hi] and the identity preconditioner, cond(A) is
// exactly hi/lo. Ritz values approximate the spectrum from the inside,
// so the estimate must land in [lo, hi] and within the documented 10%
// of the true condition number (DESIGN.md §15).
func TestConditionEstimateKnownSpectrum(t *testing.T) {
	for _, tc := range []struct {
		n       int
		lo, hi  float64
		maxFrac float64 // allowed relative error on cond
	}{
		{n: 200, lo: 1, hi: 10, maxFrac: 0.10},
		{n: 400, lo: 0.01, hi: 10, maxFrac: 0.10},
	} {
		name := fmt.Sprintf("n=%d cond=%g", tc.n, tc.hi/tc.lo)
		a := DiagSPD(tc.n, tc.lo, tc.hi)
		b := RandomRHS(tc.n, 7)
		withProbes(true, func() {
			_, res, err := sparse.PCG(a, b, nil, nil, 1e-12, 10*tc.n)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			h := res.Health
			if h == nil || h.CondEstimate <= 0 {
				t.Fatalf("%s: no condition estimate (health %+v)", name, h)
			}
			const slack = 1e-6 // bisection tolerance on the Ritz extremes
			if h.LambdaMin < tc.lo*(1-slack) || h.LambdaMax > tc.hi*(1+slack) {
				t.Fatalf("%s: spectrum estimate [%g, %g] outside true [%g, %g]",
					name, h.LambdaMin, h.LambdaMax, tc.lo, tc.hi)
			}
			trueCond := tc.hi / tc.lo
			if rel := math.Abs(h.CondEstimate-trueCond) / trueCond; rel > tc.maxFrac {
				t.Fatalf("%s: cond estimate %g vs true %g (rel err %.3f > %.2f)",
					name, h.CondEstimate, trueCond, rel, tc.maxFrac)
			}
		})
	}
}

// TestProbesZeroAllocWhenDisabled pins the disabled-probe cost at zero
// extra allocations. A warmed-workspace PCGW solve's alloc budget is the
// returned x plus the four per-iteration kernel-reduction closures
// (blockedDot twice, fusedUpdateNormSq, parXpby) — the probe structures
// (ring buffers, Lanczos coefficient slices) would blow that budget the
// moment anything allocated before checking the gate. The budget is
// re-derived from the solve's own iteration count, so it tracks matrix
// and tolerance changes; the small constant covers setup reductions.
func TestProbesZeroAllocWhenDisabled(t *testing.T) {
	a := Grid2D(16, 16, 1e-3)
	n := a.N()
	b := RandomRHS(n, 3)
	prec := sparse.NewJacobi(a)
	ws := sparse.NewPCGWorkspace(n)
	var iters int
	solve := func() {
		_, res, err := sparse.PCGW(a, b, nil, prec, 1e-8, 10*n, ws)
		if err != nil {
			t.Fatal(err)
		}
		iters = res.Iterations
	}
	withProbes(false, func() {
		solve() // warm the workspace (and learn the iteration count)
		budget := float64(4*iters + 12)
		if allocs := testing.AllocsPerRun(10, solve); allocs > budget {
			t.Fatalf("probes disabled: %.1f allocs/solve over %d iterations, budget %.0f — the disabled probe path allocates", allocs, iters, budget)
		}
	})
	// Sanity check the other side of the gate: with probes on the same
	// solve records a report (the probe may allocate; that is the cost
	// the gate exists to avoid).
	withProbes(true, func() {
		_, res, err := sparse.PCGW(a, b, nil, prec, 1e-8, 10*n, ws)
		if err != nil {
			t.Fatal(err)
		}
		if res.Health == nil {
			t.Fatal("probes enabled: no health report")
		}
	})
}
