// Package sparsetest provides deterministic generators of SPD test
// systems — random diagonally-dominant conductance matrices and PDN-shaped
// grid Laplacians in two and three dimensions — plus random right-hand-side
// batches. The solver equivalence properties (batch-vs-serial bit-equality,
// AMG-vs-IC(0) residual equivalence) and the node-count scaling benchmarks
// all draw their inputs from here, so every layer of the stack is tested
// against the same matrix population.
package sparsetest

import (
	"math"
	"math/rand"

	"voltstack/internal/sparse"
)

// NewRand returns a deterministic RNG for the given seed. All generators
// in this package derive their randomness this way, so any (generator,
// size, seed) triple identifies one reproducible system.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomSPD builds an n-node random conductance matrix: a graph Laplacian
// over ~degree random edges per node with conductances spanning three
// decades, plus a small ground tie on every diagonal that makes it
// strictly SPD. Duplicate edges accumulate, exactly like element stamping.
func RandomSPD(n, degree int, seed int64) *sparse.CSR {
	rng := NewRand(seed)
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1e-3*(1+rng.Float64()))
		for e := 0; e < degree; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			// Conductance in [1e-1, ~1e2): wide enough to exercise the
			// preconditioners' scaling paths.
			g := 0.1 + 100*rng.Float64()
			b.Add(i, i, g)
			b.Add(j, j, g)
			b.AddSym(i, j, -g)
		}
	}
	return b.ToCSR()
}

// Grid2D builds the conductance matrix of an nx x ny resistor mesh with
// unit segment conductances and a ground tie on every diagonal — the
// canonical single-layer PDN shape.
func Grid2D(nx, ny int, ground float64) *sparse.CSR {
	n := nx * ny
	b := sparse.NewBuilder(n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			b.Add(i, i, ground)
			if x+1 < nx {
				stampUnit(b, i, idx(x+1, y))
			}
			if y+1 < ny {
				stampUnit(b, i, idx(x, y+1))
			}
		}
	}
	return b.ToCSR()
}

// Grid3D builds the conductance matrix of an nx x ny x nz resistor mesh —
// the many-layer PDN shape (lateral mesh plus TSV-like vertical links).
func Grid3D(nx, ny, nz int, ground float64) *sparse.CSR {
	n := nx * ny * nz
	b := sparse.NewBuilder(n)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				b.Add(i, i, ground)
				if x+1 < nx {
					stampUnit(b, i, idx(x+1, y, z))
				}
				if y+1 < ny {
					stampUnit(b, i, idx(x, y+1, z))
				}
				if z+1 < nz {
					stampUnit(b, i, idx(x, y, z+1))
				}
			}
		}
	}
	return b.ToCSR()
}

func stampUnit(b *sparse.Builder, i, j int) {
	b.Add(i, i, 1)
	b.Add(j, j, 1)
	b.AddSym(i, j, -1)
}

// DiagSPD builds an n-node diagonal SPD matrix whose eigenvalues are
// log-spaced in [lo, hi]. The spectrum is known in closed form —
// cond(A) = hi/lo exactly, extreme eigenvalues are lo and hi — so the
// solver-health condition estimates can be tested against ground truth
// rather than against another estimate.
func DiagSPD(n int, lo, hi float64) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		f := 0.0
		if n > 1 {
			f = float64(i) / float64(n-1)
		}
		b.Add(i, i, lo*math.Pow(hi/lo, f))
	}
	return b.ToCSR()
}

// RandomRHS returns a deterministic standard-normal right-hand side.
func RandomRHS(n int, seed int64) []float64 {
	rng := NewRand(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// RandomBatch returns k deterministic right-hand sides. Lane i equals
// RandomRHS(n, seed+i), so a batch and its serial re-derivation see the
// same vectors.
func RandomBatch(n, k int, seed int64) [][]float64 {
	bs := make([][]float64, k)
	for i := range bs {
		bs[i] = RandomRHS(n, seed+int64(i))
	}
	return bs
}
