package sparsetest

import (
	"math"
	"testing"

	"voltstack/internal/sparse"
)

// FuzzBatchSerialEquivalence fuzzes the batch-equals-serial bit-equality
// contract over the generator space: for any (seed, size, lane count,
// worker count), a skyline SolveBatch and a Jacobi-preconditioned
// PCGBatch must reproduce their serial counterparts exactly. The fuzzer
// hunts for scheduling- or scratch-sharing-dependent divergence that the
// fixed-case property tests might not reach.
func FuzzBatchSerialEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(3), uint8(1))
	f.Add(int64(42), uint8(60), uint8(8), uint8(2))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(8))
	f.Add(int64(9999), uint8(120), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw, wRaw uint8) {
		n := 1 + int(nRaw)%160
		k := 1 + int(kRaw)%10
		workers := 1 + int(wRaw)%8
		a := RandomSPD(n, 3, seed)
		bs := RandomBatch(n, k, seed+1)

		chol, err := sparse.FactorCholesky(a)
		if err != nil {
			t.Fatalf("seed=%d n=%d: %v", seed, n, err)
		}
		xs := chol.SolveBatchWorkers(bs, workers)
		for i := range bs {
			ref := chol.Solve(bs[i])
			for j := range ref {
				if math.Float64bits(ref[j]) != math.Float64bits(xs[i][j]) {
					t.Fatalf("skyline seed=%d n=%d k=%d workers=%d lane=%d elem=%d: %v vs %v",
						seed, n, k, workers, i, j, ref[j], xs[i][j])
				}
			}
		}

		jac := sparse.NewJacobi(a)
		tol, maxIter := 1e-9, 40*n
		pxs, results, err := sparse.PCGBatch(a, bs, nil, jac, tol, maxIter, nil, workers)
		if err != nil {
			t.Fatalf("pcg batch seed=%d n=%d: %v", seed, n, err)
		}
		for i := range bs {
			ref, refRes, err := sparse.PCG(a, bs[i], nil, jac, tol, maxIter)
			if err != nil {
				t.Fatalf("pcg serial seed=%d n=%d lane=%d: %v", seed, n, i, err)
			}
			if results[i] != refRes {
				t.Fatalf("pcg seed=%d n=%d lane=%d: result %+v vs serial %+v",
					seed, n, i, results[i], refRes)
			}
			for j := range ref {
				if math.Float64bits(ref[j]) != math.Float64bits(pxs[i][j]) {
					t.Fatalf("pcg seed=%d n=%d k=%d workers=%d lane=%d elem=%d: %v vs %v",
						seed, n, k, workers, i, j, ref[j], pxs[i][j])
				}
			}
		}
	})
}
