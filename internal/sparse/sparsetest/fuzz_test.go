package sparsetest

import (
	"math"
	"testing"

	"voltstack/internal/sparse"
)

// FuzzBatchSerialEquivalence fuzzes the batch-equals-serial bit-equality
// contract over the generator space: for any (seed, size, lane count,
// worker count), a skyline SolveBatch and a Jacobi-preconditioned
// PCGBatch must reproduce their serial counterparts exactly. The fuzzer
// hunts for scheduling- or scratch-sharing-dependent divergence that the
// fixed-case property tests might not reach.
// FuzzLevelSchedule fuzzes the IC(0) level-set builder over random SPD
// structures: the forward and backward level sets must each be a valid
// topological partition of the triangular dependency patterns (every row
// in exactly one level, every dependency at a strictly earlier level),
// and the level-scheduled triangular solve must be bit-identical to the
// serial sweep. Sizes reach a few thousand rows so random patterns
// produce levels wide enough to cross the scheduling threshold and the
// parallel sweep path actually runs.
func FuzzLevelSchedule(f *testing.F) {
	f.Add(int64(1), uint16(600), uint8(2), uint8(4))
	f.Add(int64(42), uint16(2500), uint8(4), uint8(8))
	f.Add(int64(-7), uint16(40), uint8(1), uint8(2))
	f.Add(int64(9999), uint16(4000), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, degRaw, wRaw uint8) {
		n := 1 + int(nRaw)%4000
		degree := 1 + int(degRaw)%6
		workers := 2 + int(wRaw)%7
		a := RandomSPD(n, degree, seed)

		sym, err := sparse.NewIC0Symbolic(a)
		if err != nil {
			t.Fatalf("seed=%d n=%d: %v", seed, n, err)
		}

		// lowerDeps/upperDeps walk the strict triangular pattern of A,
		// which is exactly the IC(0) factor pattern (no fill).
		lowerDeps := func(i int, dep func(j int)) {
			a.Row(i, func(j int, v float64) {
				if j < i {
					dep(j)
				}
			})
		}
		upperDeps := func(i int, dep func(j int)) {
			a.Row(i, func(j int, v float64) {
				if j > i {
					dep(j)
				}
			})
		}
		check := func(name string, lvls [][]int, deps func(i int, dep func(j int))) {
			level := make([]int, n)
			seen := make([]bool, n)
			total := 0
			for l, rows := range lvls {
				if len(rows) == 0 {
					t.Fatalf("seed=%d n=%d %s: empty level %d", seed, n, name, l)
				}
				for _, i := range rows {
					if i < 0 || i >= n || seen[i] {
						t.Fatalf("seed=%d n=%d %s: bad or duplicate row %d", seed, n, name, i)
					}
					seen[i] = true
					level[i] = l
					total++
				}
			}
			if total != n {
				t.Fatalf("seed=%d n=%d %s: levels cover %d of %d rows", seed, n, name, total, n)
			}
			for i := 0; i < n; i++ {
				deps(i, func(j int) {
					if level[j] >= level[i] {
						t.Fatalf("seed=%d n=%d %s: row %d (level %d) depends on row %d (level %d)",
							seed, n, name, i, level[i], j, level[j])
					}
				})
			}
		}
		check("forward", sym.ForwardLevels(), lowerDeps)
		check("backward", sym.BackwardLevels(), upperDeps)

		// Scheduled apply ≡ serial apply, bitwise.
		serial, err := sparse.NewIC0(a)
		if err != nil {
			t.Fatalf("seed=%d n=%d: %v", seed, n, err)
		}
		sched, err := sparse.NewIC0(a)
		if err != nil {
			t.Fatalf("seed=%d n=%d: %v", seed, n, err)
		}
		sched.SetWorkers(workers)
		r := RandomRHS(n, seed+2)
		want := make([]float64, n)
		got := make([]float64, n)
		serial.Apply(r, want)
		sched.Apply(r, got)
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
				t.Fatalf("apply seed=%d n=%d workers=%d elem=%d: %v vs %v",
					seed, n, workers, j, want[j], got[j])
			}
		}
	})
}

func FuzzBatchSerialEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(3), uint8(1))
	f.Add(int64(42), uint8(60), uint8(8), uint8(2))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(8))
	f.Add(int64(9999), uint8(120), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw, wRaw uint8) {
		n := 1 + int(nRaw)%160
		k := 1 + int(kRaw)%10
		workers := 1 + int(wRaw)%8
		a := RandomSPD(n, 3, seed)
		bs := RandomBatch(n, k, seed+1)

		chol, err := sparse.FactorCholesky(a)
		if err != nil {
			t.Fatalf("seed=%d n=%d: %v", seed, n, err)
		}
		xs := chol.SolveBatchWorkers(bs, workers)
		for i := range bs {
			ref := chol.Solve(bs[i])
			for j := range ref {
				if math.Float64bits(ref[j]) != math.Float64bits(xs[i][j]) {
					t.Fatalf("skyline seed=%d n=%d k=%d workers=%d lane=%d elem=%d: %v vs %v",
						seed, n, k, workers, i, j, ref[j], xs[i][j])
				}
			}
		}

		jac := sparse.NewJacobi(a)
		tol, maxIter := 1e-9, 40*n
		pxs, results, err := sparse.PCGBatch(a, bs, nil, jac, tol, maxIter, nil, workers)
		if err != nil {
			t.Fatalf("pcg batch seed=%d n=%d: %v", seed, n, err)
		}
		for i := range bs {
			ref, refRes, err := sparse.PCG(a, bs[i], nil, jac, tol, maxIter)
			if err != nil {
				t.Fatalf("pcg serial seed=%d n=%d lane=%d: %v", seed, n, i, err)
			}
			if results[i] != refRes {
				t.Fatalf("pcg seed=%d n=%d lane=%d: result %+v vs serial %+v",
					seed, n, i, results[i], refRes)
			}
			for j := range ref {
				if math.Float64bits(ref[j]) != math.Float64bits(pxs[i][j]) {
					t.Fatalf("pcg seed=%d n=%d k=%d workers=%d lane=%d elem=%d: %v vs %v",
						seed, n, k, workers, i, j, ref[j], pxs[i][j])
				}
			}
		}
	})
}
