package sparse

import (
	"time"

	"voltstack/internal/telemetry"
)

// Prepared-solve instrumentation: symbolic analyses should be rare (once
// per sparsity structure) while numeric refactors are the per-solve cost,
// so the ratio of the two counters is the structure-cache hit signal.
var (
	mSymbolicBuilds  = telemetry.NewCounter("sparse_symbolic_builds_total")
	mRefactors       = telemetry.NewCounter("sparse_numeric_refactors_total")
	mRefactorSeconds = telemetry.NewHistogram("sparse_numeric_refactor_seconds")
)

func symbolicBuilt() { mSymbolicBuilds.Add(1) }

func refactorStart() time.Time { return telemetry.Now() }

func refactorEnd(t0 time.Time) {
	mRefactors.Add(1)
	mRefactorSeconds.Since(t0)
}
