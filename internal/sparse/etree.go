package sparse

// EliminationTree computes the elimination tree of the symmetric matrix a
// (using its lower triangle): parent[j] is the first row i > j whose
// factor row contains column j, or -1 for roots. Liu's algorithm with
// path compression.
func EliminationTree(a *CSR) []int {
	n := a.N()
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		ancestor[i] = -1
		a.Row(i, func(j int, _ float64) {
			// Walk from j up to the root of its current subtree,
			// compressing the path onto i.
			for j < i && j != -1 {
				next := ancestor[j]
				ancestor[j] = i
				if next == -1 {
					parent[j] = i
					break
				}
				j = next
			}
		})
	}
	return parent
}

// etreeReach computes the nonzero pattern of row i of the Cholesky factor
// using the elimination tree: the union of tree paths from each a_ij
// (j < i) toward the root, stopped at already-visited nodes. The pattern
// is returned in topological (ascending-dependency) order in stack[top:].
//
// mark is a scratch array (len n) holding the last row each node was
// visited for; stack is a scratch array (len n).
func etreeReach(a *CSR, i int, parent []int, mark []int, stack []int) []int {
	top := len(stack)
	mark[i] = i // never include the diagonal itself
	a.Row(i, func(j int, _ float64) {
		if j >= i {
			return
		}
		// Walk up the tree collecting unvisited nodes in path order.
		var path []int
		for j != -1 && j < i && mark[j] != i {
			mark[j] = i
			path = append(path, j)
			j = parent[j]
		}
		// Prepend the (reversed) path onto the stack so ancestors come
		// after descendants overall.
		for k := len(path) - 1; k >= 0; k-- {
			top--
			stack[top] = path[k]
		}
	})
	return stack[top:]
}

// PostOrder returns a postordering of the forest given by parent, useful
// for supernode detection and column counts.
func PostOrder(parent []int) []int {
	n := len(parent)
	// Build child lists (reverse order preserved by prepending).
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		if parent[i] != -1 {
			next[i] = head[parent[i]]
			head[parent[i]] = i
		}
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if parent[root] != -1 {
			continue
		}
		stack = append(stack, root)
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			child := head[node]
			if child == -1 {
				post = append(post, node)
				stack = stack[:len(stack)-1]
			} else {
				head[node] = next[child]
				stack = append(stack, child)
			}
		}
	}
	return post
}
