// Intra-solve shared-memory parallelism: the kernels inside one solve —
// SpMV, the vector updates and reductions of PCG, the IC(0) triangular
// sweeps and the AMG cycle — run on a small per-call worker gang while
// preserving the package's bit-determinism contract.
//
// The contract is worker-count invariance, and it is met by construction:
//
//   - Element-wise kernels (axpy, xpby, scaling, subtraction, SpMV rows)
//     write disjoint output indices and keep each element's arithmetic
//     order unchanged, so any partition of the index space — and therefore
//     any worker count — produces bit-identical results.
//
//   - Reductions (dot products, norms, the fused iterate/residual/norm
//     update) are computed in a fixed blocked order: the vector is cut
//     into vecBlock-sized blocks, each block is summed serially in index
//     order, and the per-block partials are combined serially in block
//     order. The block size is a package constant — never a function of
//     the worker count — so workers only decide *who* computes a partial,
//     never *what* is summed with what. workers=1 runs the same blocked
//     arithmetic, which is why serial and parallel results match bitwise.
//
//   - Order-sensitive sweeps (the IC(0) triangular solves) are level
//     scheduled: rows within a dependency level only read results from
//     earlier levels, so intra-level parallelism cannot change any row's
//     accumulation order (see levels.go).
//
// Worker counts plumb in from circuit.SolveOptions.Workers (and through
// it pdngrid.Config.Solve.Workers), defaulting to serial; internal/
// parallel.DefaultWorkers — and with it VOLTSTACK_WORKERS — supplies the
// machine-sized value when a caller asks for it.
package sparse

import (
	"sync"
	"time"

	"voltstack/internal/telemetry"
)

// vecBlock is the fixed reduction block size (in float64 elements). It is
// deliberately larger than every test-scale system (so single-block
// reductions reproduce the historical straight-loop arithmetic exactly)
// while still giving a 1M-node vector 16 independent partials.
const vecBlock = 65536

// Minimum work per extra worker before a kernel goes parallel: spawning a
// goroutine costs ~µs, so tiny kernels (coarse AMG levels, short vectors)
// stay serial. Units: vector elements or matrix nonzeros.
const (
	vecGrain  = 1 << 14 // element-wise and blocked-reduction kernels
	spmvGrain = 1 << 14 // SpMV nonzeros per worker
)

// Per-kernel instrumentation: operation counters are cheap enough to count
// always (one atomic when telemetry is enabled, one load when not); span
// emission and occupancy sampling only happen for parallel dispatches so
// serial solves and tight sweeps stay unpolluted.
var (
	mKernelSpMV     = telemetry.NewCounter("sparse_kernel_spmv_total")
	mKernelTrisolve = telemetry.NewCounter("sparse_kernel_trisolve_total")
	mKernelSmooth   = telemetry.NewCounter("sparse_kernel_smoother_total")
	mKernelParallel = telemetry.NewCounter("sparse_kernel_parallel_dispatches_total")
	mKernelWorkers  = telemetry.NewGauge("sparse_kernel_workers")
)

// clampWorkers normalizes a worker-count knob: anything below 1 is serial.
func clampWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// capWorkers bounds workers by available work: at least `grain` units per
// additional worker, and never more workers than units.
func capWorkers(workers, units, grain int) int {
	if workers <= 1 || units < 2*grain {
		return 1
	}
	if max := units / grain; workers > max {
		workers = max
	}
	return workers
}

// parRun invokes fn(0) … fn(workers-1) concurrently — fn(0) on the calling
// goroutine — and waits for all of them. fn(w) must write only state owned
// by worker w.
func parRun(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// kernelSpan names the Chrome-trace spans of the three headline kernels.
type kernelSpan string

const (
	spanSpMV     kernelSpan = "sparse.spmv"
	spanTrisolve kernelSpan = "sparse.trisolve"
	spanSmoother kernelSpan = "sparse.smoother"
)

// parRunInstrumented is parRun plus the parallel-dispatch telemetry: a
// Chrome-trace span named after the kernel (only while tracing is on), the
// dispatch counter, and a worker-occupancy sample for /statusz. All gates
// collapse to nothing when telemetry is disabled; the serial path never
// reaches here.
func parRunInstrumented(name kernelSpan, workers int, fn func(w int)) {
	if !telemetry.Enabled() {
		parRun(workers, fn)
		return
	}
	var sp *telemetry.Span
	if telemetry.TracingEnabled() {
		sp = telemetry.StartSpan(string(name))
	}
	mKernelParallel.Add(1)
	mKernelWorkers.Set(float64(workers))
	var busy int64
	var busyMu sync.Mutex
	t0 := time.Now()
	parRun(workers, func(w int) {
		w0 := time.Now()
		fn(w)
		d := int64(time.Since(w0))
		busyMu.Lock()
		busy += d
		busyMu.Unlock()
	})
	wall := time.Since(t0)
	// Dispatch drained: the live-workers gauge returns to zero (the shape
	// of the last dispatch stays visible via RecordKernelOccupancy below).
	mKernelWorkers.Set(0)
	sp.End()
	if wall > 0 {
		telemetry.RecordKernelOccupancy(workers,
			float64(busy)/(float64(wall)*float64(workers)))
	}
}

// chunkRange splits [0, n) into `parts` near-equal contiguous chunks and
// returns chunk c. Empty chunks are (0, 0)-like with lo == hi.
func chunkRange(n, parts, c int) (lo, hi int) {
	lo = c * n / parts
	hi = (c + 1) * n / parts
	return lo, hi
}

// parForElems runs fn over equal contiguous slices of [0, n) on `workers`
// workers. fn must be element-wise (disjoint writes, per-element order
// unchanged), which makes the result independent of the partition and
// therefore of the worker count.
func parForElems(workers, n int, fn func(lo, hi int)) {
	workers = capWorkers(workers, n, vecGrain)
	if workers == 1 {
		fn(0, n)
		return
	}
	parRun(workers, func(w int) {
		lo, hi := chunkRange(n, workers, w)
		if lo < hi {
			fn(lo, hi)
		}
	})
}

// numBlocks returns the number of fixed-size reduction blocks covering a
// vector of length n.
func numBlocks(n int) int { return (n + vecBlock - 1) / vecBlock }

// blockedReduce fills partials[b] = reduce(block b) for every block —
// distributing blocks over workers — then combines the partials serially
// in block order. The combination order is fixed by the block structure,
// not the schedule, so the result is bit-identical at every worker count.
func blockedReduce(workers, n int, partials []float64, blockFn func(lo, hi int) float64) float64 {
	nb := numBlocks(n)
	if nb <= 1 {
		return blockFn(0, n)
	}
	eval := func(b int) {
		lo := b * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		partials[b] = blockFn(lo, hi)
	}
	if workers = capWorkers(workers, n, vecGrain); workers == 1 {
		for b := 0; b < nb; b++ {
			eval(b)
		}
	} else {
		parRun(workers, func(w int) {
			lo, hi := chunkRange(nb, workers, w)
			for b := lo; b < hi; b++ {
				eval(b)
			}
		})
	}
	var s float64
	for b := 0; b < nb; b++ {
		s += partials[b]
	}
	return s
}

// blockedDot is Dot with the fixed-block reduction order. For n ≤ vecBlock
// it degenerates to the plain serial loop (bit-identical to Dot).
func blockedDot(x, y []float64, workers int, partials []float64) float64 {
	return blockedReduce(workers, len(x), partials, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		return s
	})
}

// blockedNormSq returns ‖x‖² in the fixed-block reduction order.
func blockedNormSq(x []float64, workers int, partials []float64) float64 {
	return blockedReduce(workers, len(x), partials, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * x[i]
		}
		return s
	})
}

// fusedUpdateNormSq performs the PCG iterate/residual update
//
//	x += alpha·p;  r -= alpha·ap
//
// and returns the new ‖r‖² reduced in the fixed-block order. Per-element
// arithmetic matches the serial fused loop exactly; only the partial-sum
// grouping is blocked, identically at every worker count.
func fusedUpdateNormSq(x, p, r, ap []float64, alpha float64, workers int, partials []float64) float64 {
	return blockedReduce(workers, len(x), partials, func(lo, hi int) float64 {
		var rr float64
		for i := lo; i < hi; i++ {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		return rr
	})
}

// parXpby computes p = z + beta·p element-wise in parallel.
func parXpby(z []float64, beta float64, p []float64, workers int) {
	parForElems(workers, len(p), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = z[i] + beta*p[i]
		}
	})
}

// parSub computes out = x - y element-wise in parallel; out may alias
// either operand.
func parSub(x, y, out []float64, workers int) {
	parForElems(workers, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = x[i] - y[i]
		}
	})
}

// rowPartition returns nnz-balanced row boundaries for `parts` contiguous
// row ranges: partition[p] .. partition[p+1] is range p. Boundaries depend
// only on the sparsity structure (rowPtr), never on matrix values, so the
// cache stays valid across value restamps; they are computed once per
// (structure, parts) and cached on the matrix. Access is mutex-guarded
// because batch lanes share one matrix across goroutines.
func (m *CSR) rowPartition(parts int) []int32 {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	if p, ok := m.parts[parts]; ok {
		return p
	}
	bounds := make([]int32, parts+1)
	nnz := len(m.val)
	row := 0
	for p := 1; p < parts; p++ {
		target := nnz * p / parts
		for row < m.n && m.rowPtr[row] < target {
			row++
		}
		bounds[p] = int32(row)
	}
	bounds[parts] = int32(m.n)
	if m.parts == nil {
		m.parts = make(map[int][]int32)
	}
	m.parts[parts] = bounds
	return bounds
}

// MulVecW is MulVec with the row loop distributed over `workers` workers
// on cached nnz-balanced static row partitions. Each row is computed by
// exactly one worker with the serial kernel's accumulation order, so the
// result is bit-identical to MulVec for every worker count.
func (m *CSR) MulVecW(x, y []float64, workers int) {
	mKernelSpMV.Add(1)
	workers = capWorkers(workers, len(m.val), spmvGrain)
	if workers == 1 {
		m.MulVec(x, y)
		return
	}
	if len(x) != m.n || len(y) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	bounds := m.rowPartition(workers)
	val, col, ptr := m.val, m.col, m.rowPtr
	parRunInstrumented(spanSpMV, workers, func(w int) {
		for i := int(bounds[w]); i < int(bounds[w+1]); i++ {
			var s float64
			lo, hi := ptr[i], ptr[i+1]
			for k := lo; k < hi; k++ {
				s += val[k] * x[col[k]]
			}
			y[i] = s
		}
	})
}
