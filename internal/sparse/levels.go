// Level scheduling for the IC(0) triangular solves. A triangular solve is
// sequential row-to-row only through its sparsity: row i of the forward
// sweep depends on exactly the rows named by its off-diagonal columns. The
// dependency DAG's level sets — level(i) = 1 + max level over i's
// dependencies — partition the rows so that everything inside one level is
// mutually independent and may run concurrently. Per-row arithmetic is
// untouched (same entries, same order), so the scheduled sweep is
// bit-identical to the serial one at every worker count; scheduling only
// reorders rows *across* independent rows.
//
// Levels are built once per symbolic structure (alongside the IC(0)
// pattern) and reused across refactorizations; they depend on the sparsity
// pattern only, never on values.
package sparse

import (
	"runtime"
	"sync/atomic"
)

// levelMinAvgWidth gates the scheduled path: below this average number of
// independent rows per level the barrier overhead dominates and the serial
// sweep wins, so Apply falls back to it.
const levelMinAvgWidth = 64

// levelSet is a topological partition of triangular-solve rows: level l is
// rows[ptr[l]:ptr[l+1]], rows ascending within a level. Sweeping levels in
// order with any intra-level schedule satisfies every dependency.
type levelSet struct {
	ptr      []int32
	rows     []int32
	maxWidth int
	avgWidth float64
}

// buildLevels computes the level sets of a sorted triangular CSR structure.
// deps(i) must yield exactly the rows that row i's sweep reads, i.e. the
// off-diagonal columns of row i. Row order within a level follows visit
// order, so visiting rows in sweep order keeps them ascending (forward) or
// descending (backward) — either way deterministic.
func buildLevels(n int, sweep func(visit func(i int)), deps func(i int, dep func(j int))) *levelSet {
	level := make([]int32, n)
	nLevels := 0
	sweep(func(i int) {
		var lv int32
		deps(i, func(j int) {
			if level[j] >= lv {
				lv = level[j] + 1
			}
		})
		level[i] = lv
		if int(lv) >= nLevels {
			nLevels = int(lv) + 1
		}
	})
	ls := &levelSet{ptr: make([]int32, nLevels+1), rows: make([]int32, n)}
	for _, lv := range level {
		ls.ptr[lv+1]++
	}
	for l := 0; l < nLevels; l++ {
		if w := int(ls.ptr[l+1]); w > ls.maxWidth {
			ls.maxWidth = w
		}
		ls.ptr[l+1] += ls.ptr[l]
	}
	next := make([]int32, nLevels)
	copy(next, ls.ptr[:nLevels])
	sweep(func(i int) {
		lv := level[i]
		ls.rows[next[lv]] = int32(i)
		next[lv]++
	})
	if nLevels > 0 {
		ls.avgWidth = float64(n) / float64(nLevels)
	}
	return ls
}

// forwardLevels builds level sets for a lower-triangular solve (diagonal
// last per row): row i depends on its off-diagonal columns j < i.
func forwardLevels(low *CSR) *levelSet {
	n := low.n
	return buildLevels(n,
		func(visit func(i int)) {
			for i := 0; i < n; i++ {
				visit(i)
			}
		},
		func(i int, dep func(j int)) {
			for k := low.rowPtr[i]; k < low.rowPtr[i+1]-1; k++ {
				dep(int(low.col[k]))
			}
		})
}

// backwardLevels builds level sets for an upper-triangular solve (diagonal
// first per row): row i depends on its off-diagonal columns j > i, so the
// sweep — and the level numbering — runs from row n-1 down.
func backwardLevels(upper *CSR) *levelSet {
	n := upper.n
	return buildLevels(n,
		func(visit func(i int)) {
			for i := n - 1; i >= 0; i-- {
				visit(i)
			}
		},
		func(i int, dep func(j int)) {
			for k := upper.rowPtr[i] + 1; k < upper.rowPtr[i+1]; k++ {
				dep(int(upper.col[k]))
			}
		})
}

// levels returns the partition as a slice of levels, each a slice of row
// indices. Used by exported accessors and tests; the hot path reads the
// packed arrays directly.
func (ls *levelSet) levels() [][]int {
	out := make([][]int, len(ls.ptr)-1)
	for l := range out {
		lo, hi := ls.ptr[l], ls.ptr[l+1]
		lvl := make([]int, hi-lo)
		for t := lo; t < hi; t++ {
			lvl[t-lo] = int(ls.rows[t])
		}
		out[l] = lvl
	}
	return out
}

// spinBarrier is a sense-reversing barrier for the level-sweep worker gang.
// All synchronization is through sync/atomic, so the happens-before edges
// are visible to the race detector; waiters spin briefly then yield, which
// is the right trade for the sub-microsecond level gaps of a trisolve.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

func (b *spinBarrier) wait() {
	s := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s + 1)
		return
	}
	for spins := 0; b.sense.Load() == s; spins++ {
		if spins > 100 {
			runtime.Gosched()
		}
	}
}

// sweepLevels runs rowFn over every row of every level: levels strictly in
// order, rows within a level split into contiguous chunks across the gang,
// a barrier between levels. One goroutine spawn set per sweep, not per
// level. rowFn must write only its own row's outputs and read only rows
// from earlier levels.
func (ls *levelSet) sweepLevels(workers int, rowFn func(i int)) {
	nLevels := len(ls.ptr) - 1
	if workers <= 1 {
		for t := range ls.rows {
			rowFn(int(ls.rows[t]))
		}
		return
	}
	bar := &spinBarrier{n: int32(workers)}
	parRun(workers, func(w int) {
		for l := 0; l < nLevels; l++ {
			lo, hi := int(ls.ptr[l]), int(ls.ptr[l+1])
			clo, chi := chunkRange(hi-lo, workers, w)
			for t := lo + clo; t < lo+chi; t++ {
				rowFn(int(ls.rows[t]))
			}
			bar.wait()
		}
	})
}
