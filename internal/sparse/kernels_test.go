package sparse

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

func bitsEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x (%g vs %g)",
				name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

func TestMulVecWMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, a := range []*CSR{gridLaplacian(40, 37, 0.05), randomSPD(60, rng)} {
		x := randVec(a.N(), rng)
		want := make([]float64, a.N())
		a.MulVec(x, want)
		for _, workers := range []int{1, 2, 8} {
			got := make([]float64, a.N())
			a.MulVecW(x, got, workers)
			bitsEqual(t, "MulVecW", want, got)
		}
	}
}

func TestRowPartitionCoversAllRows(t *testing.T) {
	a := gridLaplacian(50, 31, 0.1)
	for _, parts := range []int{1, 2, 3, 8, 16} {
		bounds := a.rowPartition(parts)
		if len(bounds) != parts+1 {
			t.Fatalf("parts=%d: got %d bounds", parts, len(bounds))
		}
		if bounds[0] != 0 || int(bounds[parts]) != a.N() {
			t.Fatalf("parts=%d: bounds do not span [0,%d): %v", parts, a.N(), bounds)
		}
		for p := 0; p < parts; p++ {
			if bounds[p] > bounds[p+1] {
				t.Fatalf("parts=%d: non-monotone bounds %v", parts, bounds)
			}
		}
		// Cached: a second call must return the identical slice.
		if again := a.rowPartition(parts); &again[0] != &bounds[0] {
			t.Errorf("parts=%d: partition not cached", parts)
		}
	}
}

// Blocked reductions must be bit-identical at every worker count, on
// vectors long enough to span several reduction blocks.
func TestBlockedReductionsWorkerInvariant(t *testing.T) {
	n := 3*vecBlock + 12345
	rng := rand.New(rand.NewSource(5))
	x, y := randVec(n, rng), randVec(n, rng)
	partials := make([]float64, numBlocks(n))
	dot1 := blockedDot(x, y, 1, partials)
	nrm1 := blockedNormSq(x, 1, partials)
	for _, workers := range []int{2, 3, 8} {
		if d := blockedDot(x, y, workers, partials); math.Float64bits(d) != math.Float64bits(dot1) {
			t.Errorf("blockedDot workers=%d: %x vs %x", workers, math.Float64bits(d), math.Float64bits(dot1))
		}
		if s := blockedNormSq(x, workers, partials); math.Float64bits(s) != math.Float64bits(nrm1) {
			t.Errorf("blockedNormSq workers=%d differs", workers)
		}
	}

	// Fused update writes x and r: run each worker count on fresh clones.
	run := func(workers int) ([]float64, []float64, float64) {
		xc := append([]float64(nil), x...)
		rc := append([]float64(nil), y...)
		p := randVec(n, rng)
		_ = p
		// Deterministic p/ap derived from the same seed for every call.
		prng := rand.New(rand.NewSource(77))
		pv, ap := randVec(n, prng), randVec(n, prng)
		rr := fusedUpdateNormSq(xc, pv, rc, ap, 0.37, workers, partials)
		return xc, rc, rr
	}
	x1, r1, rr1 := run(1)
	for _, workers := range []int{2, 8} {
		xw, rw, rrw := run(workers)
		bitsEqual(t, "fused x", x1, xw)
		bitsEqual(t, "fused r", r1, rw)
		if math.Float64bits(rr1) != math.Float64bits(rrw) {
			t.Errorf("fused rr workers=%d differs", workers)
		}
	}
}

// Single-block vectors must reproduce the plain serial loop exactly, so
// all historical small-system results are unchanged by the blocked path.
func TestBlockedReductionSingleBlockMatchesSerialLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := randVec(1000, rng), randVec(1000, rng)
	partials := make([]float64, 1)
	if got, want := blockedDot(x, y, 8, partials), Dot(x, y); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("single-block blockedDot differs from Dot: %g vs %g", got, want)
	}
}

func TestLevelSetsAreTopologicalPartition(t *testing.T) {
	a := gridLaplacian(30, 28, 0.2)
	sym, err := NewIC0Symbolic(a)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, lvls [][]int, deps func(i int, dep func(j int))) {
		level := make([]int, a.N())
		seen := make([]bool, a.N())
		total := 0
		for l, rows := range lvls {
			for _, i := range rows {
				if seen[i] {
					t.Fatalf("%s: row %d appears twice", name, i)
				}
				seen[i] = true
				level[i] = l
				total++
			}
		}
		if total != a.N() {
			t.Fatalf("%s: levels cover %d of %d rows", name, total, a.N())
		}
		for i := 0; i < a.N(); i++ {
			deps(i, func(j int) {
				if level[j] >= level[i] {
					t.Fatalf("%s: row %d (level %d) depends on row %d (level %d)",
						name, i, level[i], j, level[j])
				}
			})
		}
	}
	check("forward", sym.ForwardLevels(), func(i int, dep func(j int)) {
		for k := sym.low.rowPtr[i]; k < sym.low.rowPtr[i+1]-1; k++ {
			dep(int(sym.low.col[k]))
		}
	})
	check("backward", sym.BackwardLevels(), func(i int, dep func(j int)) {
		for k := sym.upper.rowPtr[i] + 1; k < sym.upper.rowPtr[i+1]; k++ {
			dep(int(sym.upper.col[k]))
		}
	})
}

// The scheduled triangular solve must agree bitwise with the serial one,
// forced on regardless of the width heuristic.
func TestScheduledTrisolveMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := gridLaplacian(40, 35, 0.05)
	prec, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	r := randVec(a.N(), rng)
	want := make([]float64, a.N())
	prec.workers = 1
	prec.Apply(r, want)
	for _, workers := range []int{2, 8} {
		got := make([]float64, a.N())
		prec.workers = workers
		prec.applyScheduled(r, got)
		bitsEqual(t, "scheduled trisolve", want, got)
	}
}

// The whole AMG preconditioner — SPA Galerkin build, parallel smoother,
// gather restriction, prolongation — must be worker-count-invariant.
func TestAMGWorkersBitInvariant(t *testing.T) {
	a := gridLaplacian(60, 55, 0.02)
	rng := rand.New(rand.NewSource(31))
	r := randVec(a.N(), rng)
	base, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N())
	base.Apply(r, want)
	for _, workers := range []int{2, 8} {
		mg, err := NewAMG(a, AMGOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, a.N())
		mg.Apply(r, got)
		bitsEqual(t, "amg apply", want, got)
		// The hierarchies themselves must match: same shapes, same coarse
		// operators bitwise.
		if len(mg.levels) != len(base.levels) {
			t.Fatalf("workers=%d: %d levels vs %d", workers, len(mg.levels), len(base.levels))
		}
		for l := range mg.levels {
			bitsEqual(t, "galerkin operator", base.levels[l].a.val, mg.levels[l].a.val)
		}
	}
}

func TestPCGWorkspaceCacheLineAligned(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 65537} {
		w := NewPCGWorkspace(n)
		for name, v := range map[string][]float64{"r": w.r, "z": w.z, "p": w.p, "ap": w.ap} {
			if len(v) != n {
				t.Fatalf("n=%d: %s has length %d", n, name, len(v))
			}
			if addr := uintptr(unsafe.Pointer(&v[0])); addr%64 != 0 {
				t.Errorf("n=%d: %s not 64-byte aligned (addr %% 64 = %d)", n, name, addr%64)
			}
		}
	}
}

func TestPCGWorkspaceResizePreservesWorkers(t *testing.T) {
	w := NewPCGWorkspace(10)
	w.SetWorkers(8)
	w.resize(20)
	if w.workers != 8 {
		t.Errorf("resize reset workers to %d", w.workers)
	}
	if len(w.r) != 20 {
		t.Errorf("resize did not grow: len %d", len(w.r))
	}
}

// End-to-end: the full PCG solve (IC0 and AMG preconditioned) must be
// bit-identical across workspace worker counts.
func TestPCGWWorkersBitInvariant(t *testing.T) {
	a := gridLaplacian(45, 44, 0.03)
	rng := rand.New(rand.NewSource(41))
	b := randVec(a.N(), rng)
	for _, kind := range []string{"ic0", "amg", "jacobi"} {
		mkPrec := func(workers int) Preconditioner {
			switch kind {
			case "ic0":
				p, err := NewIC0(a)
				if err != nil {
					t.Fatal(err)
				}
				p.SetWorkers(workers)
				return p
			case "amg":
				p, err := NewAMG(a, AMGOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return p
			default:
				return NewJacobi(a)
			}
		}
		ws := NewPCGWorkspace(a.N())
		x1, res1, err1 := PCGW(a, b, nil, mkPrec(1), 1e-10, 10*a.N(), ws)
		if err1 != nil {
			t.Fatalf("%s serial: %v", kind, err1)
		}
		for _, workers := range []int{2, 8} {
			wsw := NewPCGWorkspace(a.N())
			wsw.SetWorkers(workers)
			xw, resw, errw := PCGW(a, b, nil, mkPrec(workers), 1e-10, 10*a.N(), wsw)
			if errw != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, errw)
			}
			bitsEqual(t, kind+" solution", x1, xw)
			if res1.Iterations != resw.Iterations ||
				math.Float64bits(res1.Residual) != math.Float64bits(resw.Residual) {
				t.Errorf("%s workers=%d: result diverged (%d it %g vs %d it %g)",
					kind, workers, res1.Iterations, res1.Residual, resw.Iterations, resw.Residual)
			}
		}
	}
}
