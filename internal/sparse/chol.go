package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("sparse: matrix is not positive definite")

// SkylineChol is a Cholesky factorization A = L*Lᵀ stored in skyline
// (envelope) form, with an internal reverse Cuthill-McKee permutation
// applied to keep the envelope small. Construct with FactorCholesky.
type SkylineChol struct {
	n      int
	perm   []int // old -> new
	inv    []int // new -> old
	first  []int // first stored column per row (permuted indexing)
	rowPtr []int // offset into val of column first[i] of row i
	val    []float64
}

// SkylineSymbolic is the structure-only half of the skyline factorization:
// the fill-reducing permutation, the envelope layout, and a scatter map
// from the matrix's CSR entries into envelope slots. It is computed once
// per sparsity structure; Refactor then produces a numeric factorization
// for any matrix sharing that structure without re-running RCM or the
// envelope analysis.
type SkylineSymbolic struct {
	n       int
	perm    []int
	inv     []int
	first   []int
	rowPtr  []int
	scatter []int32 // CSR entry k -> envelope index, or -1 (upper triangle)
}

// FactorCholesky computes the skyline Cholesky factorization of the
// symmetric positive definite matrix a. The input is not modified.
func FactorCholesky(a *CSR) (*SkylineChol, error) {
	return NewSkylineSymbolic(a).Refactor(a, nil)
}

// FactorCholeskyNatural factors without reordering (useful for testing and
// for matrices that are already well ordered).
func FactorCholeskyNatural(a *CSR) (*SkylineChol, error) {
	n := a.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return newSkylineSymbolicPerm(a, perm).Refactor(a, nil)
}

// NewSkylineSymbolic performs the structural phase of FactorCholesky:
// RCM ordering plus envelope construction.
func NewSkylineSymbolic(a *CSR) *SkylineSymbolic {
	return newSkylineSymbolicPerm(a, RCM(a))
}

func newSkylineSymbolicPerm(a *CSR, perm []int) *SkylineSymbolic {
	symbolicBuilt()
	n := a.N()
	s := &SkylineSymbolic{
		n:     n,
		perm:  append([]int(nil), perm...),
		inv:   InvertPerm(perm),
		first: make([]int, n),
	}
	// Envelope of the lower triangle of the permuted matrix, derived
	// directly from a's entries (no permuted copy is materialized).
	for i := range s.first {
		s.first[i] = i
	}
	for i := 0; i < n; i++ {
		pi := perm[i]
		a.Row(i, func(j int, _ float64) {
			if pj := perm[j]; pj < s.first[pi] {
				s.first[pi] = pj
			}
		})
	}
	s.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		s.rowPtr[i+1] = s.rowPtr[i] + (i - s.first[i] + 1)
	}
	// Scatter map: CSR entry -> envelope slot of the permuted lower
	// triangle (entries are unique, so scattering is pure assignment).
	s.scatter = make([]int32, a.NNZ())
	k := 0
	for i := 0; i < n; i++ {
		pi := perm[i]
		a.Row(i, func(j int, _ float64) {
			pj := perm[j]
			if pj <= pi {
				s.scatter[k] = int32(s.rowPtr[pi] - s.first[pi] + pj)
			} else {
				s.scatter[k] = -1
			}
			k++
		})
	}
	return s
}

// N returns the system dimension.
func (s *SkylineSymbolic) N() int { return s.n }

// Refactor computes the numeric factorization of a, which must share the
// sparsity structure the symbolic phase was built from. When f is non-nil
// its envelope storage is reused (no allocation); otherwise a new
// SkylineChol is returned. The result is bit-identical to FactorCholesky
// on the same values.
func (s *SkylineSymbolic) Refactor(a *CSR, f *SkylineChol) (*SkylineChol, error) {
	t0 := refactorStart()
	defer refactorEnd(t0)
	if a.NNZ() != len(s.scatter) || a.N() != s.n {
		return nil, fmt.Errorf("sparse: Refactor: matrix structure does not match symbolic phase")
	}
	if f == nil {
		f = &SkylineChol{
			n:      s.n,
			perm:   s.perm,
			inv:    s.inv,
			first:  s.first,
			rowPtr: s.rowPtr,
			val:    make([]float64, s.rowPtr[s.n]),
		}
	} else {
		for i := range f.val {
			f.val[i] = 0
		}
	}
	val := f.val
	for k, v := range a.val {
		if e := s.scatter[k]; e >= 0 {
			val[e] = v
		}
	}
	if err := skylineFactorize(s.n, s.first, s.rowPtr, val); err != nil {
		return nil, err
	}
	return f, nil
}

// skylineFactorize runs the in-place envelope Cholesky on a scattered
// lower triangle.
func skylineFactorize(n int, first, rowPtr []int, val []float64) error {
	for i := 0; i < n; i++ {
		baseI := rowPtr[i] - first[i]
		for j := first[i]; j < i; j++ {
			baseJ := rowPtr[j] - first[j]
			kLo := first[i]
			if first[j] > kLo {
				kLo = first[j]
			}
			s := val[baseI+j]
			for k := kLo; k < j; k++ {
				s -= val[baseI+k] * val[baseJ+k]
			}
			val[baseI+j] = s / val[baseJ+j]
		}
		d := val[baseI+i]
		for k := first[i]; k < i; k++ {
			d -= val[baseI+k] * val[baseI+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("sparse: skyline Cholesky: %w at row %d of %d (diagonal after elimination %g)", ErrNotPositiveDefinite, i, n, d)
		}
		val[baseI+i] = math.Sqrt(d)
	}
	return nil
}

// N returns the system dimension.
func (f *SkylineChol) N() int { return f.n }

// Solve returns x with A*x = b. b is not modified.
func (f *SkylineChol) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveTo(x, b)
	return x
}

// SolveTo is like Solve but writes into dst (len n) and reuses it.
func (f *SkylineChol) SolveTo(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic("sparse: Solve dimension mismatch")
	}
	// Permute RHS into factor ordering.
	y := PermuteVec(f.perm, b)

	// Forward substitution: L*y' = y.
	for i := 0; i < f.n; i++ {
		base := f.rowPtr[i] - f.first[i]
		s := y[i]
		for k := f.first[i]; k < i; k++ {
			s -= f.val[base+k] * y[k]
		}
		y[i] = s / f.val[base+i]
	}
	// Backward substitution: Lᵀ*x' = y' (column sweep over rows).
	for i := f.n - 1; i >= 0; i-- {
		base := f.rowPtr[i] - f.first[i]
		y[i] /= f.val[base+i]
		xi := y[i]
		for k := f.first[i]; k < i; k++ {
			y[k] -= f.val[base+k] * xi
		}
	}

	// Permute solution back to original ordering.
	for nw, old := range f.inv {
		dst[old] = y[nw]
	}
}
