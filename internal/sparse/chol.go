package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("sparse: matrix is not positive definite")

// SkylineChol is a Cholesky factorization A = L*Lᵀ stored in skyline
// (envelope) form, with an internal reverse Cuthill-McKee permutation
// applied to keep the envelope small. Construct with FactorCholesky.
type SkylineChol struct {
	n      int
	perm   []int // old -> new
	inv    []int // new -> old
	first  []int // first stored column per row (permuted indexing)
	rowPtr []int // offset into val of column first[i] of row i
	val    []float64
}

// FactorCholesky computes the skyline Cholesky factorization of the
// symmetric positive definite matrix a. The input is not modified.
func FactorCholesky(a *CSR) (*SkylineChol, error) {
	perm := RCM(a)
	return factorCholeskyPerm(a, perm)
}

// FactorCholeskyNatural factors without reordering (useful for testing and
// for matrices that are already well ordered).
func FactorCholeskyNatural(a *CSR) (*SkylineChol, error) {
	n := a.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return factorCholeskyPerm(a, perm)
}

func factorCholeskyPerm(a *CSR, perm []int) (*SkylineChol, error) {
	n := a.N()
	p := a.Permute(perm)

	// Envelope structure of the lower triangle.
	first := make([]int, n)
	for i := 0; i < n; i++ {
		f := i
		p.Row(i, func(j int, _ float64) {
			if j < f {
				f = j
			}
		})
		first[i] = f
	}
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + (i - first[i] + 1)
	}
	val := make([]float64, rowPtr[n])

	// Scatter the lower triangle of the permuted matrix into the envelope.
	for i := 0; i < n; i++ {
		base := rowPtr[i] - first[i]
		p.Row(i, func(j int, v float64) {
			if j <= i {
				val[base+j] = v
			}
		})
	}

	// In-place envelope Cholesky.
	for i := 0; i < n; i++ {
		baseI := rowPtr[i] - first[i]
		for j := first[i]; j < i; j++ {
			baseJ := rowPtr[j] - first[j]
			kLo := first[i]
			if first[j] > kLo {
				kLo = first[j]
			}
			s := val[baseI+j]
			for k := kLo; k < j; k++ {
				s -= val[baseI+k] * val[baseJ+k]
			}
			val[baseI+j] = s / val[baseJ+j]
		}
		d := val[baseI+i]
		for k := first[i]; k < i; k++ {
			d -= val[baseI+k] * val[baseI+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d, value %g)", ErrNotPositiveDefinite, i, d)
		}
		val[baseI+i] = math.Sqrt(d)
	}

	return &SkylineChol{
		n:      n,
		perm:   append([]int(nil), perm...),
		inv:    InvertPerm(perm),
		first:  first,
		rowPtr: rowPtr,
		val:    val,
	}, nil
}

// N returns the system dimension.
func (f *SkylineChol) N() int { return f.n }

// Solve returns x with A*x = b. b is not modified.
func (f *SkylineChol) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("sparse: Solve dimension mismatch")
	}
	// Permute RHS into factor ordering.
	y := PermuteVec(f.perm, b)

	// Forward substitution: L*y' = y.
	for i := 0; i < f.n; i++ {
		base := f.rowPtr[i] - f.first[i]
		s := y[i]
		for k := f.first[i]; k < i; k++ {
			s -= f.val[base+k] * y[k]
		}
		y[i] = s / f.val[base+i]
	}
	// Backward substitution: Lᵀ*x' = y' (column sweep over rows).
	for i := f.n - 1; i >= 0; i-- {
		base := f.rowPtr[i] - f.first[i]
		y[i] /= f.val[base+i]
		xi := y[i]
		for k := f.first[i]; k < i; k++ {
			y[k] -= f.val[base+k] * xi
		}
	}

	// Permute solution back to original ordering.
	x := make([]float64, f.n)
	for nw, old := range f.inv {
		x[old] = y[nw]
	}
	return x
}

// SolveTo is like Solve but writes into dst (len n) and reuses it.
func (f *SkylineChol) SolveTo(dst, b []float64) {
	x := f.Solve(b)
	copy(dst, x)
}
