package sparse

import (
	"errors"
	"math"
	"strings"
	"testing"

	"voltstack/internal/telemetry"
)

// TestTridiagExtremeEigs checks the Sturm-bisection eigensolver against
// the closed-form spectrum of tridiag(-1, 2, -1): eigenvalues
// 2 - 2cos(kπ/(m+1)), extremes 2 ∓ √2 at m = 3.
func TestTridiagExtremeEigs(t *testing.T) {
	d := []float64{2, 2, 2}
	e := []float64{-1, -1}
	lo, hi := tridiagExtremeEigs(d, e)
	wantLo, wantHi := 2-math.Sqrt2, 2+math.Sqrt2
	if math.Abs(lo-wantLo) > 1e-9 || math.Abs(hi-wantHi) > 1e-9 {
		t.Fatalf("extremes [%.12f, %.12f], want [%.12f, %.12f]", lo, hi, wantLo, wantHi)
	}

	// A diagonal "tridiagonal" (no coupling) must return its extremes
	// exactly, including for a single entry.
	lo, hi = tridiagExtremeEigs([]float64{3, 7, 5}, []float64{0, 0})
	if math.Abs(lo-3) > 1e-9 || math.Abs(hi-7) > 1e-9 {
		t.Fatalf("diagonal extremes [%g, %g], want [3, 7]", lo, hi)
	}
	lo, hi = tridiagExtremeEigs([]float64{4}, nil)
	if math.Abs(lo-4) > 1e-9 || math.Abs(hi-4) > 1e-9 {
		t.Fatalf("single-entry extremes [%g, %g], want [4, 4]", lo, hi)
	}
}

// TestLanczosExtremesRejectsBadCoefficients: non-finite or non-positive
// CG coefficients (a breakdown in flight) must not produce an estimate.
func TestLanczosExtremesRejectsBadCoefficients(t *testing.T) {
	for name, tc := range map[string]struct {
		alphas, betas []float64
	}{
		"empty":          {nil, nil},
		"zero-alpha":     {[]float64{0}, nil},
		"negative-alpha": {[]float64{-1, 0.5}, []float64{0.1}},
		"nan-alpha":      {[]float64{math.NaN()}, nil},
		"inf-alpha":      {[]float64{math.Inf(1)}, nil},
		"negative-beta":  {[]float64{0.5, 0.5}, []float64{-0.1}},
	} {
		if _, _, _, ok := lanczosExtremes(tc.alphas, tc.betas); ok {
			t.Errorf("%s: expected rejection", name)
		}
	}
	// And a well-formed prefix still works: constant alpha=1/2, beta=0 is
	// the Lanczos image of the identity-preconditioned matrix 2I.
	lo, hi, m, ok := lanczosExtremes([]float64{0.5, 0.5, 0.5}, []float64{0, 0})
	if !ok || m != 3 || math.Abs(lo-2) > 1e-9 || math.Abs(hi-2) > 1e-9 {
		t.Fatalf("constant coefficients: got lo=%g hi=%g m=%d ok=%v, want [2,2] m=3", lo, hi, m, ok)
	}
}

// TestEnrichedNonConvergenceError: with probes on, a capped solve's error
// carries the recent residuals and the condition estimate, and still
// unwraps to ErrNoConvergence for programmatic handling.
func TestEnrichedNonConvergenceError(t *testing.T) {
	telemetry.EnableConvergenceProbes()
	defer telemetry.DisableConvergenceProbes()
	a := gridLaplacian(12, 12, 1e-6)
	b := make([]float64, a.N())
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	_, res, err := PCG(a, b, nil, NewJacobi(a), 1e-14, 3)
	if err == nil {
		t.Fatal("expected non-convergence at maxIter=3")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("enrichment broke the error chain: %v", err)
	}
	if !strings.Contains(err.Error(), "probe:") || !strings.Contains(err.Error(), "recent residuals") {
		t.Fatalf("error not enriched: %v", err)
	}
	if res.Health == nil || res.Health.Converged {
		t.Fatalf("capped solve health: %+v", res.Health)
	}
}

// TestKernelWorkersGaugeDrains is the stale-gauge regression test for
// sparse_kernel_workers: after any parallel solve returns, the gauge must
// read zero — it reports workers currently inside a kernel, not the last
// dispatch width.
func TestKernelWorkersGaugeDrains(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	a := gridLaplacian(20, 20, 1e-3)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	ic0, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ic0.SetWorkers(4)
	ws := NewPCGWorkspace(n)
	ws.SetWorkers(4)
	if _, _, err := PCGW(a, b, nil, ic0, 1e-10, 20*n, ws); err != nil {
		t.Fatal(err)
	}
	if v := mKernelWorkers.Value(); v != 0 {
		t.Fatalf("sparse_kernel_workers = %v after solve, want 0", v)
	}
}
