// Multi-RHS batched solves: one factorization (or preconditioner) serves
// many right-hand sides. The sweep, Monte Carlo and per-pad query layers
// all re-solve the same conductance matrix with different load vectors;
// batching amortizes the structure-and-factor cost across the batch and
// lets independent lanes run on the worker pool.
//
// Determinism contract: lane i of every batch API is bit-identical to the
// corresponding serial call (Solve / PCGW) on the same inputs, for any
// worker count. Lanes never share mutable state: direct triangular solves
// only read the factor, and each PCG lane owns its workspace plus a
// scratch-forked preconditioner that shares factor values but not scratch.
package sparse

import (
	"context"

	"voltstack/internal/parallel"
	"voltstack/internal/telemetry"
)

// Batch instrumentation: lanes-per-batch is the amortization factor the
// multi-RHS API exists to exploit. No-ops unless telemetry is enabled.
var (
	mBatchSolves = telemetry.NewCounter("sparse_batch_solves_total")
	mBatchLanes  = telemetry.NewCounter("sparse_batch_lanes_total")
	mBatchHist   = telemetry.NewHistogram("sparse_batch_lanes")
)

func batchObserved(lanes int) {
	mBatchSolves.Add(1)
	mBatchLanes.Add(int64(lanes))
	mBatchHist.Observe(float64(lanes))
}

// SolveBatch solves A·x_i = b_i for every right-hand side using this
// factorization, serially. Column i is bit-identical to Solve(bs[i]).
func (f *SkylineChol) SolveBatch(bs [][]float64) [][]float64 {
	return f.SolveBatchWorkers(bs, 1)
}

// SolveBatchWorkers is SolveBatch with the independent triangular solves
// distributed over a pool of the given size (< 1 selects the default).
// The factor is only read, so lanes are safe to run concurrently, and
// results are bit-identical for every worker count.
func (f *SkylineChol) SolveBatchWorkers(bs [][]float64, workers int) [][]float64 {
	batchObserved(len(bs))
	xs := make([][]float64, len(bs))
	pool := parallel.NewPool(workers)
	// Solve never fails; ForEachN's error path is unreachable here.
	_ = pool.ForEachN(context.Background(), len(bs), func(i int) error {
		xs[i] = f.Solve(bs[i])
		return nil
	})
	return xs
}

// SolveBatch solves A·x_i = b_i for every right-hand side using this
// factorization, serially. Column i is bit-identical to Solve(bs[i]).
func (f *SparseChol) SolveBatch(bs [][]float64) [][]float64 {
	return f.SolveBatchWorkers(bs, 1)
}

// SolveBatchWorkers is SolveBatch on a worker pool; see
// SkylineChol.SolveBatchWorkers for the concurrency and determinism
// contract.
func (f *SparseChol) SolveBatchWorkers(bs [][]float64, workers int) [][]float64 {
	batchObserved(len(bs))
	xs := make([][]float64, len(bs))
	pool := parallel.NewPool(workers)
	_ = pool.ForEachN(context.Background(), len(bs), func(i int) error {
		xs[i] = f.Solve(bs[i])
		return nil
	})
	return xs
}

// PCGBatchWorkspace holds one PCGWorkspace per lane so a batched solve
// allocates nothing per call once warmed. It must not be shared between
// concurrent batched solves.
type PCGBatchWorkspace struct {
	lanes []*PCGWorkspace
}

// NewPCGBatchWorkspace returns a workspace for batches of up to the given
// lane count on n-dimensional systems. Both grow on demand.
func NewPCGBatchWorkspace(n, lanes int) *PCGBatchWorkspace {
	w := &PCGBatchWorkspace{lanes: make([]*PCGWorkspace, lanes)}
	for i := range w.lanes {
		w.lanes[i] = NewPCGWorkspace(n)
	}
	return w
}

// lane returns the i-th per-lane workspace, growing the set as needed.
func (w *PCGBatchWorkspace) lane(i, n int) *PCGWorkspace {
	for len(w.lanes) <= i {
		w.lanes = append(w.lanes, NewPCGWorkspace(n))
	}
	return w.lanes[i]
}

// scratchForker is implemented by preconditioners whose Apply uses
// internal scratch: forkScratch returns a view sharing the (read-only)
// factor values but owning fresh scratch, so forks can Apply concurrently.
type scratchForker interface {
	forkScratch() Preconditioner
}

// forkScratch returns an IC0 view sharing the factors and scaling but
// owning its own solve scratch.
func (p *IC0Prec) forkScratch() Preconditioner {
	q := *p
	q.tmp = make([]float64, len(p.tmp))
	return &q
}

// workerSetter is implemented by preconditioners whose Apply has parallel
// kernels (IC0Prec, AMGPrec). Setting workers never changes results —
// only how many goroutines compute them.
type workerSetter interface {
	SetWorkers(int)
}

// setPrecWorkers propagates a kernel-worker count into a lane-private
// preconditioner fork when it supports one; stateless preconditioners
// (identity, Jacobi) ignore it.
func setPrecWorkers(p Preconditioner, workers int) {
	if ws, ok := p.(workerSetter); ok {
		ws.SetWorkers(workers)
	}
}

// forkPreconditioner returns a lane-private view of p whose Apply is safe
// to run concurrently with other forks: known-stateless preconditioners
// are returned as-is, scratch-carrying ones are scratch-forked. The second
// result reports whether concurrent application is safe; unknown
// implementations return false and must be applied serially.
func forkPreconditioner(p Preconditioner) (Preconditioner, bool) {
	switch q := p.(type) {
	case nil:
		return nil, true
	case IdentityPrec, *IdentityPrec, *JacobiPrec:
		return p, true
	case scratchForker:
		return q.forkScratch(), true
	default:
		return p, false
	}
}

// PCGBatch solves A·x_i = b_i for every right-hand side with one shared
// matrix and preconditioner, reusing one PCGWorkspace per lane. x0s may be
// nil (every lane cold-starts) or per-lane warm starts (nil entries
// allowed); ws may be nil (allocated per call).
//
// `workers` is one budget composed across two axes: up to min(k, workers)
// lanes run concurrently, and each lane's internal kernels (SpMV,
// reductions, triangular sweeps, V-cycles) get the remaining factor —
// lanes × kernel workers ≤ budget. A batch wider than the budget spends it
// all on lanes (the historical behavior); a narrow batch on a wide budget
// spends the surplus inside each solve. workers < 1 selects the
// parallel-package default (VOLTSTACK_WORKERS or GOMAXPROCS); a
// preconditioner the package cannot prove concurrency-safe forces serial
// lanes.
//
// Lane i is bit-identical to PCGW(a, bs[i], x0s[i], prec, tol, maxIter, …)
// for every budget. All lanes run to completion even when some fail; the
// returned error is the lowest-index lane failure (per-lane results and
// iterates stay valid either way, matching PCGW's breakdown semantics).
func PCGBatch(a *CSR, bs, x0s [][]float64, prec Preconditioner, tol float64, maxIter int, ws *PCGBatchWorkspace, workers int) ([][]float64, []CGResult, error) {
	k := len(bs)
	batchObserved(k)
	if x0s != nil && len(x0s) != k {
		panic("sparse: PCGBatch warm-start count does not match RHS count")
	}
	if ws == nil {
		ws = &PCGBatchWorkspace{}
	}
	n := a.N()
	budget := workers
	if budget < 1 {
		budget = parallel.DefaultWorkers()
	}
	laneW := budget
	if k > 0 && k < laneW {
		laneW = k
	}
	kernelW := 1
	if laneW > 0 {
		kernelW = budget / laneW
	}
	precs := make([]Preconditioner, k)
	if laneW <= 1 && kernelW <= 1 {
		// Fully serial: lanes apply the preconditioner one at a time, so
		// they can share its scratch; forking would only churn memory (an
		// AMG fork duplicates a whole grid hierarchy per lane).
		for i := range precs {
			precs[i] = prec
		}
	} else if laneW <= 1 {
		// Serial lanes with parallel kernels: one fork serves every lane in
		// turn. The fork keeps the caller's preconditioner untouched —
		// setting kernel workers on it would leak this batch's budget into
		// unrelated serial solves.
		fork, safe := forkPreconditioner(prec)
		if !safe {
			kernelW = 1
			fork = prec
		} else {
			setPrecWorkers(fork, kernelW)
		}
		for i := range precs {
			precs[i] = fork
		}
	} else {
		safe := true
		for i := range precs {
			precs[i], safe = forkPreconditioner(prec)
		}
		if safe {
			for i := range precs {
				setPrecWorkers(precs[i], kernelW)
			}
		} else {
			laneW, kernelW = 1, 1
			for i := range precs {
				precs[i] = prec
			}
		}
	}
	xs := make([][]float64, k)
	results := make([]CGResult, k)
	errs := make([]error, k)
	lanes := make([]*PCGWorkspace, k)
	for i := 0; i < k; i++ {
		lanes[i] = ws.lane(i, n)
		lanes[i].SetWorkers(kernelW)
	}
	pool := parallel.NewPool(laneW)
	// Lane failures are collected, not propagated: a breakdown in one lane
	// must not cancel the others (ForEachN would stop dispatching).
	_ = pool.ForEachN(context.Background(), k, func(i int) error {
		var x0 []float64
		if x0s != nil {
			x0 = x0s[i]
		}
		xs[i], results[i], errs[i] = PCGW(a, bs[i], x0, precs[i], tol, maxIter, lanes[i])
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return xs, results, err
		}
	}
	return xs, results, nil
}
