package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// cooEntry is a (row, col) slot of a deterministic COO insertion sequence.
type cooEntry struct{ i, j int }

// testPattern returns a grid-shaped COO sequence with duplicate entries
// (the stamping discipline) plus nonzero values for every slot.
func testPattern(nx, ny int, rng *rand.Rand) (entries []cooEntry, vals []float64, n int) {
	n = nx * ny
	idx := func(x, y int) int { return y*nx + x }
	add := func(i, j int, v float64) {
		entries = append(entries, cooEntry{i, j})
		vals = append(vals, v)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			add(i, i, 0.5+rng.Float64())
			if x+1 < nx {
				j := idx(x+1, y)
				g := 0.5 + rng.Float64()
				add(i, i, g)
				add(j, j, g)
				add(i, j, -g)
				add(j, i, -g)
			}
			if y+1 < ny {
				j := idx(x, y+1)
				g := 0.5 + rng.Float64()
				add(i, i, g)
				add(j, j, g)
				add(i, j, -g)
				add(j, i, -g)
			}
		}
	}
	return entries, vals, n
}

func buildFrom(entries []cooEntry, vals []float64, n int) *Builder {
	b := NewBuilder(n)
	for t, e := range entries {
		b.Add(e.i, e.j, vals[t])
	}
	return b
}

func sameFloats(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: entry %d differs bitwise: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestToCSRIndexedMatchesToCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries, vals, n := testPattern(9, 7, rng)
	m1 := buildFrom(entries, vals, n).ToCSR()
	m2, am := buildFrom(entries, vals, n).ToCSRIndexed()
	if m1.NNZ() != m2.NNZ() {
		t.Fatalf("nnz %d vs %d", m1.NNZ(), m2.NNZ())
	}
	for i := 0; i <= n; i++ {
		if m1.rowPtr[i] != m2.rowPtr[i] {
			t.Fatalf("rowPtr[%d] differs", i)
		}
	}
	for k := range m1.col {
		if m1.col[k] != m2.col[k] {
			t.Fatalf("col[%d] differs", k)
		}
	}
	sameFloats(t, "val", m1.val, m2.val)

	// Fold with the same values reproduces the CSR values bit-exactly.
	out := make([]float64, m2.NNZ())
	am.Fold(vals, out)
	sameFloats(t, "fold-identity", m1.val, out)

	// Fold after a perturbation matches a from-scratch conversion.
	vals2 := append([]float64(nil), vals...)
	for t := range vals2 {
		if t%3 == 0 {
			vals2[t] *= 1.0 + 0.25*rng.Float64()
		}
	}
	fresh := buildFrom(entries, vals2, n).ToCSR()
	am.Fold(vals2, out)
	sameFloats(t, "fold-perturbed", fresh.val, out)
}

func TestSkylineRefactorMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries, vals, n := testPattern(11, 8, rng)
	a := buildFrom(entries, vals, n).ToCSR()
	fresh, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	sym := NewSkylineSymbolic(a)
	f, err := sym.Refactor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "factor", fresh.val, f.val)

	// Value-only change, reusing the factor's storage.
	vals2 := append([]float64(nil), vals...)
	for t := range vals2 {
		vals2[t] *= 1.25
	}
	a2 := buildFrom(entries, vals2, n).ToCSR()
	fresh2, err := FactorCholesky(a2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sym.Refactor(a2, f); err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "refactor", fresh2.val, f.val)

	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sameFloats(t, "solve", fresh2.Solve(b), f.Solve(b))
}

func TestSparseCholRefactorMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries, vals, n := testPattern(13, 9, rng)
	for _, ord := range []Ordering{OrderND, OrderRCMChol, OrderNatural} {
		a := buildFrom(entries, vals, n).ToCSR()
		fresh, err := FactorSparse(a, ord)
		if err != nil {
			t.Fatal(err)
		}
		sym, err := NewSparseCholSymbolic(a, ord)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sym.Refactor(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "diag", fresh.diag, f.diag)
		for j := 0; j < n; j++ {
			sameFloats(t, "colVal", fresh.colVal[j], f.colVal[j])
		}

		vals2 := append([]float64(nil), vals...)
		for t := range vals2 {
			vals2[t] *= 0.8
		}
		a2 := buildFrom(entries, vals2, n).ToCSR()
		fresh2, err := FactorSparse(a2, ord)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sym.Refactor(a2, f); err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "rediag", fresh2.diag, f.diag)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		sameFloats(t, "solve", fresh2.Solve(b), f.Solve(b))
	}
}

func TestIC0FactorMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	entries, vals, n := testPattern(16, 12, rng)
	a := buildFrom(entries, vals, n).ToCSR()
	fresh, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := NewIC0Symbolic(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sym.Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "lower", fresh.lower.val, p.lower.val)
	sameFloats(t, "upper", fresh.upper.val, p.upper.val)
	sameFloats(t, "scale", fresh.scale, p.scale)

	vals2 := append([]float64(nil), vals...)
	for t := range vals2 {
		vals2[t] *= 1.5
	}
	a2 := buildFrom(entries, vals2, n).ToCSR()
	fresh2, err := NewIC0(a2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sym.Factor(a2, p); err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "relower", fresh2.lower.val, p.lower.val)
	sameFloats(t, "reupper", fresh2.upper.val, p.upper.val)

	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	fresh2.Apply(r, z1)
	p.Apply(r, z2)
	sameFloats(t, "apply", z1, z2)
}

func TestPCGWorkspaceReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	entries, vals, n := testPattern(14, 10, rng)
	a := buildFrom(entries, vals, n).ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	prec, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	xFresh, resFresh, err := PCG(a, b, nil, prec, 1e-10, 10*n)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewPCGWorkspace(n)
	// Dirty the workspace with an unrelated solve, then repeat the solve:
	// the result must not depend on workspace history.
	if _, _, err := PCGW(a, b, b, prec, 1e-10, 10*n, ws); err != nil {
		t.Fatal(err)
	}
	xWs, resWs, err := PCGW(a, b, nil, prec, 1e-10, 10*n, ws)
	if err != nil {
		t.Fatal(err)
	}
	if resFresh.Iterations != resWs.Iterations {
		t.Fatalf("iterations %d vs %d", resFresh.Iterations, resWs.Iterations)
	}
	sameFloats(t, "x", xFresh, xWs)
}

func TestPCGBreakdownReportsCurrentResidual(t *testing.T) {
	// Symmetric indefinite matrix: CG must break down with pᵀAp ≤ 0 and
	// report the true residual of the iterate it returns.
	b2 := NewBuilder(2)
	b2.Add(0, 0, 1)
	b2.Add(1, 1, -1)
	a := b2.ToCSR()
	rhs := []float64{1, 1}
	x, res, err := CG(a, rhs, nil, 1e-12, 50)
	if err == nil {
		t.Fatal("expected breakdown error on indefinite matrix")
	}
	ax := make([]float64, 2)
	a.MulVec(x, ax)
	Sub(rhs, ax, ax)
	want := Norm2(ax) / Norm2(rhs)
	if math.Float64bits(want) != math.Float64bits(res.Residual) {
		t.Fatalf("breakdown residual %v does not match recomputed %v", res.Residual, want)
	}
}
