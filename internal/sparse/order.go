package sparse

import "sort"

// RCM computes a reverse Cuthill-McKee ordering of the symmetric sparsity
// pattern of a. The returned slice perm maps old index i to new index
// perm[i]. RCM reduces the matrix bandwidth/envelope, which is what the
// skyline Cholesky factorization exploits.
//
// Disconnected components are handled by restarting from the unvisited
// vertex of minimum degree.
func RCM(a *CSR) []int {
	n := a.N()
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		d := 0
		a.Row(i, func(j int, _ float64) {
			if j != i {
				d++
			}
		})
		deg[i] = d
	}
	order := make([]int, 0, n) // Cuthill-McKee visit order (old indices)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	neighbors := make([]int, 0, 32)

	for len(order) < n {
		// Pick an unvisited vertex of minimum degree as the next start.
		start, best := -1, n+1
		for i := 0; i < n; i++ {
			if !visited[i] && deg[i] < best {
				start, best = i, deg[i]
			}
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			neighbors = neighbors[:0]
			a.Row(v, func(j int, _ float64) {
				if j != v && !visited[j] {
					visited[j] = true
					neighbors = append(neighbors, j)
				}
			})
			sort.Slice(neighbors, func(x, y int) bool {
				return deg[neighbors[x]] < deg[neighbors[y]]
			})
			queue = append(queue, neighbors...)
		}
	}

	// Reverse the Cuthill-McKee order and convert to old->new mapping.
	perm := make([]int, n)
	for newIdx, old := range order {
		perm[old] = n - 1 - newIdx
	}
	return perm
}

// InvertPerm returns the inverse permutation: if perm maps old->new,
// the result maps new->old.
func InvertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for old, nw := range perm {
		inv[nw] = old
	}
	return inv
}

// PermuteVec scatters x (indexed by old labels) into a new slice indexed by
// new labels: out[perm[i]] = x[i].
func PermuteVec(perm []int, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, p := range perm {
		out[p] = x[i]
	}
	return out
}

// Bandwidth returns the maximum |i-j| over stored entries of a.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.N(); i++ {
		a.Row(i, func(j int, _ float64) {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		})
	}
	return bw
}

// EnvelopeSize returns the profile (sum over rows of i - firstcol(i)) of
// the lower triangle, the storage cost of a skyline factorization.
func EnvelopeSize(a *CSR) int {
	total := 0
	for i := 0; i < a.N(); i++ {
		first := i
		a.Row(i, func(j int, _ float64) {
			if j < first {
				first = j
			}
		})
		total += i - first
	}
	return total
}
