package sparse

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"unsafe"

	"voltstack/internal/telemetry"
)

// Solver instrumentation: iteration counts and residuals are the
// convergence-effort signal of the whole toolchain (every PDN solve funnels
// through PCG on large meshes), so they are recorded whenever telemetry is
// enabled. All handles are no-ops when it is not.
var (
	mPCGSolves       = telemetry.NewCounter("sparse_pcg_solves_total")
	mPCGIterations   = telemetry.NewCounter("sparse_pcg_iterations_total")
	mPCGNoConverge   = telemetry.NewCounter("sparse_pcg_nonconverged_total")
	mPCGIterHist     = telemetry.NewHistogram("sparse_pcg_iterations")
	mPCGLastResidual = telemetry.NewGauge("sparse_pcg_last_residual")
	mPrecondBuilds   = telemetry.NewCounter("sparse_precond_builds_total")
	mPrecondSeconds  = telemetry.NewHistogram("sparse_precond_build_seconds")
	mIC0Shifts       = telemetry.NewCounter("sparse_ic0_shift_attempts_total")
)

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("sparse: iterative solver did not converge")

// Preconditioner applies z = M⁻¹ r for some approximation M of A.
type Preconditioner interface {
	Apply(r, z []float64)
}

// IdentityPrec is the trivial preconditioner (plain CG).
type IdentityPrec struct{}

// Apply copies r into z.
func (IdentityPrec) Apply(r, z []float64) { copy(z, r) }

// JacobiPrec is the diagonal (Jacobi) preconditioner.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a.
// Zero diagonal entries are treated as 1 to stay defined.
func NewJacobi(a *CSR) *JacobiPrec {
	t0 := telemetry.Now()
	defer func() { mPrecondBuilds.Add(1); mPrecondSeconds.Since(t0) }()
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &JacobiPrec{invDiag: inv}
}

// Apply computes z = D⁻¹ r.
func (p *JacobiPrec) Apply(r, z []float64) {
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
}

// IC0Prec is a zero-fill incomplete Cholesky preconditioner: A ≈ L*Lᵀ with
// L restricted to the sparsity pattern of the lower triangle of A. The
// factorization runs on the symmetrically scaled matrix D^-1/2 A D^-1/2
// (unit diagonal), which keeps it stable for conductance matrices whose
// entries span many orders of magnitude.
type IC0Prec struct {
	lower *CSR      // L of the scaled matrix, diagonal stored last per row
	upper *CSR      // Lᵀ for the backward solve
	scale []float64 // D^-1/2
	tmp   []float64

	// Level-scheduled parallel solves: topological row partitions of both
	// sweeps (structure-only, shared with the symbolic phase) and the
	// worker count. workers <= 1, or levels too narrow to pay for the
	// barrier, fall back to the serial sweeps.
	fwd, bwd *levelSet
	workers  int
}

// SetWorkers sets the worker count used by Apply's triangular sweeps.
// Values below 2 select the serial path. Results are bit-identical at
// every worker count: level scheduling changes which rows run
// concurrently, never any row's arithmetic order.
func (p *IC0Prec) SetWorkers(w int) { p.workers = clampWorkers(w) }

// IC0Symbolic is the structure-only half of NewIC0: the lower-triangle
// pattern of A, a value map from A's CSR entries into it, a per-row
// diagonal-index table, and the transpose pattern with its placement map.
// It is computed once per sparsity structure; Factor then produces the
// preconditioner for any matrix with that structure without rebuilding the
// pattern, re-sorting, or rediscovering diagonals.
type IC0Symbolic struct {
	n         int
	low       *CSR    // lower-triangle structure template (values unused)
	lowMap    []int32 // A's CSR entry k -> low val index, or -1 (upper part)
	diagIdx   []int32 // per-row val index of the diagonal entry in low
	upper     *CSR    // transpose structure template (values unused)
	upFromLow []int32 // upper val index -> low val index
	fwd, bwd  *levelSet
}

// ForwardLevels returns the level sets of the forward (lower-triangular)
// sweep: level l lists the rows whose longest dependency chain has length
// l, so every row's dependencies sit in strictly earlier levels. Exposed
// for property tests and fuzzing of the schedule.
func (s *IC0Symbolic) ForwardLevels() [][]int { return s.fwd.levels() }

// BackwardLevels returns the level sets of the backward (upper-triangular)
// sweep, numbered from the last row down.
func (s *IC0Symbolic) BackwardLevels() [][]int { return s.bwd.levels() }

// NewIC0 computes an incomplete Cholesky factorization of the SPD matrix a.
// If the factorization breaks down (non-positive pivot), the diagonal is
// shifted by successively larger multiples of its magnitude and the
// factorization retried; an error is returned only if even a large shift
// fails.
func NewIC0(a *CSR) (*IC0Prec, error) {
	sym, err := NewIC0Symbolic(a)
	if err != nil {
		return nil, err
	}
	return sym.Factor(a, nil)
}

// NewIC0Symbolic performs the structural phase of NewIC0. It fails only on
// a structurally missing diagonal entry.
func NewIC0Symbolic(a *CSR) (*IC0Symbolic, error) {
	symbolicBuilt()
	n := a.N()
	s := &IC0Symbolic{n: n}

	// Lower-triangle structure. Builder entries are unique here, so value
	// placement during Factor is pure assignment.
	lb := NewBuilder(n)
	for i := 0; i < n; i++ {
		a.Row(i, func(j int, _ float64) {
			if j <= i {
				lb.Add(i, j, 1)
			}
		})
	}
	s.low = lb.ToCSR()
	s.lowMap = make([]int32, a.NNZ())
	k := 0
	for i := 0; i < n; i++ {
		a.Row(i, func(j int, _ float64) {
			if j <= i {
				s.lowMap[k] = int32(s.low.entryIndex(i, j))
			} else {
				s.lowMap[k] = -1
			}
			k++
		})
	}

	// Diagonal-index table: rows are sorted ascending, so in the lower
	// triangle the diagonal is the last stored entry of its row.
	s.diagIdx = make([]int32, n)
	for i := 0; i < n; i++ {
		hi := s.low.rowPtr[i+1]
		if hi == s.low.rowPtr[i] || int(s.low.col[hi-1]) != i {
			return nil, fmt.Errorf("sparse: IC(0): missing diagonal at row %d", i)
		}
		s.diagIdx[i] = int32(hi - 1)
	}

	// Transpose structure for the backward sweep, plus the map that carries
	// factor values across (assignment; entries are unique).
	ub := NewBuilder(n)
	for i := 0; i < n; i++ {
		s.low.Row(i, func(j int, _ float64) { ub.Add(j, i, 1) })
	}
	s.upper = ub.ToCSR()
	s.upFromLow = make([]int32, s.upper.NNZ())
	for i := 0; i < n; i++ {
		for kk := s.low.rowPtr[i]; kk < s.low.rowPtr[i+1]; kk++ {
			j := int(s.low.col[kk])
			s.upFromLow[s.upper.entryIndex(j, i)] = int32(kk)
		}
	}

	// Level sets for the scheduled triangular sweeps: structure-only, so
	// one build serves every refactorization of this pattern.
	s.fwd = forwardLevels(s.low)
	s.bwd = backwardLevels(s.upper)
	return s, nil
}

// N returns the system dimension.
func (s *IC0Symbolic) N() int { return s.n }

// Factor numerically builds the preconditioner for a, which must share the
// sparsity structure of the symbolic phase. When p is non-nil its storage
// is reused; otherwise a new IC0Prec is allocated. Breakdown triggers the
// same diagonal-shift retry ladder as NewIC0. The result is bit-identical
// to NewIC0 on the same values.
func (s *IC0Symbolic) Factor(a *CSR, p *IC0Prec) (*IC0Prec, error) {
	t0 := telemetry.Now()
	defer func() { mPrecondBuilds.Add(1); mPrecondSeconds.Since(t0) }()
	rt0 := refactorStart()
	defer refactorEnd(rt0)
	if a.N() != s.n || a.NNZ() != len(s.lowMap) {
		return nil, fmt.Errorf("sparse: IC(0) Factor: matrix structure does not match symbolic phase")
	}
	if p == nil {
		p = &IC0Prec{
			lower: &CSR{n: s.n, rowPtr: s.low.rowPtr, col: s.low.col, val: make([]float64, s.low.NNZ())},
			upper: &CSR{n: s.n, rowPtr: s.upper.rowPtr, col: s.upper.col, val: make([]float64, s.upper.NNZ())},
			scale: make([]float64, s.n),
			tmp:   make([]float64, s.n),
		}
	}
	// Attach the schedule (structure-only, shared) so Apply can sweep in
	// parallel once SetWorkers asks for it; the existing workers setting of
	// a reused p is preserved across refactorizations.
	p.fwd, p.bwd = s.fwd, s.bwd
	attempts := 0
	var lastErr error
	for shift := 0.0; shift <= 1.0; {
		err := s.factorShift(a, p, shift)
		if err == nil {
			if shift > 0 {
				mIC0Shifts.Add(int64(attempts))
				if telemetry.EventsEnabled() {
					telemetry.Event(slog.LevelWarn, "sparse: IC(0) diagonal shift applied",
						slog.Float64("shift", shift),
						slog.Int("attempts", attempts),
						slog.Int("n", s.n),
						slog.String("breakdown", lastErr.Error()))
				}
			}
			return p, nil
		}
		if !errors.Is(err, ErrNotPositiveDefinite) {
			return nil, err
		}
		attempts++
		lastErr = err
		if shift == 0 {
			shift = 1e-3
		} else {
			shift *= 4
		}
	}
	mIC0Shifts.Add(int64(attempts))
	if telemetry.EventsEnabled() {
		telemetry.Event(slog.LevelError, "sparse: IC(0) breakdown persists under diagonal shifting",
			slog.Int("attempts", attempts),
			slog.Int("n", s.n),
			slog.String("breakdown", lastErr.Error()))
	}
	return nil, fmt.Errorf("sparse: IC(0) breakdown persists after %d diagonal shifts: %w", attempts, lastErr)
}

// factorShift is one factorization attempt at a given diagonal shift,
// writing into p's storage. The arithmetic sequence matches the historical
// from-scratch tryIC0 exactly.
func (sym *IC0Symbolic) factorShift(a *CSR, p *IC0Prec, shift float64) error {
	n := sym.n
	// Symmetric Jacobi scaling: factor D^-1/2 A D^-1/2, which has a unit
	// diagonal and bounded off-diagonal magnitudes.
	scale := p.scale
	for i, d := range a.Diag() {
		if d <= 0 {
			return fmt.Errorf("sparse: IC(0): non-positive diagonal at row %d (value %g): %w", i, d, ErrNotPositiveDefinite)
		}
		scale[i] = 1 / math.Sqrt(d)
	}
	// Place the lower triangle of a, scaled and shifted, into the factor
	// storage (in-place factorization).
	l := p.lower
	for k, m := range sym.lowMap {
		if m >= 0 {
			l.val[m] = a.val[k]
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := l.rowPtr[i], l.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(l.col[k])
			l.val[k] *= scale[i] * scale[j]
			if j == i {
				l.val[k] *= 1 + shift
			}
		}
	}

	// Row-oriented IC(0). The diagonal of each row sits at diagIdx (last
	// entry), so no per-entry diagonal scan is needed.
	diagIdx := sym.diagIdx
	for i := 0; i < n; i++ {
		iLo := l.rowPtr[i]
		di := int(diagIdx[i])
		for k := iLo; k < di; k++ {
			j := int(l.col[k])
			// L[i][j] = (A[i][j] - Σ_k<j L[i][k] L[j][k]) / L[j][j]
			jLo, jHi := l.rowPtr[j], l.rowPtr[j+1]
			s := l.val[k]
			ki, kj := iLo, jLo
			for ki < k && kj < jHi {
				ci, cj := l.col[ki], l.col[kj]
				switch {
				case ci == cj:
					if int(ci) < j {
						s -= l.val[ki] * l.val[kj]
					}
					ki++
					kj++
				case ci < cj:
					ki++
				default:
					kj++
				}
			}
			ljj := l.val[diagIdx[j]]
			if ljj == 0 {
				return fmt.Errorf("sparse: IC(0): zero pivot at row %d (shift %g): %w", j, shift, ErrNotPositiveDefinite)
			}
			l.val[k] = s / ljj
		}
		d := l.val[di]
		for k := iLo; k < di; k++ {
			d -= l.val[k] * l.val[k]
		}
		// On the scaled matrix the diagonal is 1+shift, so a pivot far
		// below 1 signals (near-)breakdown; treat it as such rather than
		// producing a disastrously conditioned factor.
		if d <= 1e-4 || math.IsNaN(d) {
			return fmt.Errorf("sparse: IC(0): pivot breakdown at row %d (scaled diagonal %g, shift %g): %w", i, d, shift, ErrNotPositiveDefinite)
		}
		l.val[di] = math.Sqrt(d)
	}

	// Carry the factor values into the transpose for the backward sweep.
	up := p.upper
	for t, m := range sym.upFromLow {
		up.val[t] = l.val[m]
	}
	return nil
}

// Apply solves (D^1/2 L Lᵀ D^1/2) z = r, the preconditioner in the
// original (unscaled) variables. With workers > 1 and wide enough level
// sets, the sweeps run level-scheduled in parallel; per-row arithmetic is
// identical either way, so the two paths agree bitwise.
func (p *IC0Prec) Apply(r, z []float64) {
	mKernelTrisolve.Add(1)
	if p.workers > 1 && p.fwd != nil &&
		p.fwd.avgWidth >= levelMinAvgWidth && p.bwd.avgWidth >= levelMinAvgWidth {
		p.applyScheduled(r, z)
		return
	}
	n := p.lower.N()
	y := p.tmp
	scale := p.scale
	// Forward: L y = D^-1/2 r. Rows of L are sorted, so the diagonal (whose
	// presence the symbolic phase guarantees) is each row's last entry; the
	// off-diagonal accumulation order matches the branch-per-entry original
	// exactly, keeping the solve bit-identical.
	lval, lcol, lptr := p.lower.val, p.lower.col, p.lower.rowPtr
	for i := 0; i < n; i++ {
		s := r[i] * scale[i]
		lo, hi := lptr[i], lptr[i+1]
		for k := lo; k < hi-1; k++ {
			s -= lval[k] * y[lcol[k]]
		}
		y[i] = s / lval[hi-1]
	}
	// Backward: Lᵀ w = y, then z = D^-1/2 w. Rows of upper are sorted,
	// diagonal first.
	uval, ucol, uptr := p.upper.val, p.upper.col, p.upper.rowPtr
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		lo, hi := uptr[i], uptr[i+1]
		for k := lo + 1; k < hi; k++ {
			s -= uval[k] * z[ucol[k]]
		}
		z[i] = s / uval[lo]
	}
	for i := 0; i < n; i++ {
		z[i] *= scale[i]
	}
}

// applyScheduled is the level-scheduled parallel Apply: each sweep runs on
// a worker gang that walks the level sets in order with a barrier between
// levels, so a row only ever reads results from completed levels. Row
// bodies are verbatim copies of the serial sweeps.
func (p *IC0Prec) applyScheduled(r, z []float64) {
	if telemetry.Enabled() {
		if telemetry.TracingEnabled() {
			defer telemetry.StartSpan(string(spanTrisolve)).End()
		}
		mKernelParallel.Add(1)
		mKernelWorkers.Set(float64(p.workers))
		// The gauge reports workers *currently* inside a parallel kernel;
		// it must drop back to zero when the dispatch drains rather than
		// advertising the last dispatch forever.
		defer mKernelWorkers.Set(0)
	}
	y := p.tmp
	scale := p.scale
	lval, lcol, lptr := p.lower.val, p.lower.col, p.lower.rowPtr
	p.fwd.sweepLevels(p.workers, func(i int) {
		s := r[i] * scale[i]
		lo, hi := lptr[i], lptr[i+1]
		for k := lo; k < hi-1; k++ {
			s -= lval[k] * y[lcol[k]]
		}
		y[i] = s / lval[hi-1]
	})
	uval, ucol, uptr := p.upper.val, p.upper.col, p.upper.rowPtr
	p.bwd.sweepLevels(p.workers, func(i int) {
		s := y[i]
		lo, hi := uptr[i], uptr[i+1]
		for k := lo + 1; k < hi; k++ {
			s -= uval[k] * z[ucol[k]]
		}
		z[i] = s / uval[lo]
	})
	parForElems(p.workers, len(z), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] *= scale[i]
		}
	})
}

// CGResult reports how an iterative solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖₂/‖b‖₂

	// Trace is the per-iteration convergence trajectory, populated only
	// while the flight recorder is enabled (on both success and failure);
	// nil otherwise. Exposing it on success is what lets per-job exemplars
	// attach a residual timeline to slow-but-converged solves.
	Trace *SolveTrace

	// Health is the solver-health report (bounded residual/α/β history,
	// Lanczos condition estimate, detector verdicts), populated only while
	// convergence probes are enabled; nil otherwise. Probes never perturb
	// the solve: x, Iterations and Residual are byte-identical either way.
	Health *ConvergenceReport
}

// PCGWorkspace holds the scratch vectors of a PCG solve so repeated solves
// on same-sized systems allocate nothing. A workspace must not be shared
// between concurrent solves.
type PCGWorkspace struct {
	r, z, p, ap []float64
	partials    []float64 // fixed-block reduction partials (see kernels.go)
	workers     int       // kernel workers used inside the solve; <=1 serial
	buf         []float64 // single cache-line-aligned backing allocation
}

// cacheLineF64 is one 64-byte cache line in float64 elements.
const cacheLineF64 = 8

// NewPCGWorkspace returns a workspace for n-dimensional solves. All four
// scratch vectors live in one backing allocation, each starting on a
// 64-byte cache-line boundary with a full guard line between neighbours:
// concurrent lanes of a batched solve then never false-share a line across
// workspace vectors, and cores streaming r/z/p/ap inside one solve never
// ping-pong a boundary line.
func NewPCGWorkspace(n int) *PCGWorkspace {
	stride := (n+cacheLineF64-1)/cacheLineF64*cacheLineF64 + cacheLineF64
	buf := make([]float64, 4*stride+cacheLineF64)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % 64; rem != 0 {
		off = int((64 - rem) / 8)
	}
	vec := func(k int) []float64 {
		lo := off + k*stride
		return buf[lo : lo+n : lo+n]
	}
	return &PCGWorkspace{
		r:        vec(0),
		z:        vec(1),
		p:        vec(2),
		ap:       vec(3),
		partials: make([]float64, numBlocks(n)),
		workers:  1,
		buf:      buf,
	}
}

// SetWorkers sets the number of workers used by the solve's internal
// kernels (SpMV, reductions, vector updates). Any value selects the same
// bit-exact result; values below 2 run serially.
func (w *PCGWorkspace) SetWorkers(workers int) { w.workers = clampWorkers(workers) }

func (w *PCGWorkspace) resize(n int) {
	if len(w.r) != n {
		workers := w.workers
		*w = *NewPCGWorkspace(n)
		w.workers = clampWorkers(workers)
	}
}

// PCG solves A x = b for SPD A using the preconditioned conjugate gradient
// method. x0 may be nil (zero initial guess). The solve stops when the
// relative residual drops below tol or maxIter iterations elapse.
func PCG(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int) ([]float64, CGResult, error) {
	return PCGW(a, b, x0, prec, tol, maxIter, nil)
}

// PCGW is PCG with an optional caller-owned scratch workspace; ws may be
// nil, in which case scratch is allocated per call. Results are
// bit-identical regardless of workspace reuse (every scratch vector is
// fully overwritten before use).
func PCGW(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int, ws *PCGWorkspace) ([]float64, CGResult, error) {
	x, res, err := pcg(a, b, x0, prec, tol, maxIter, ws)
	mPCGSolves.Add(1)
	mPCGIterations.Add(int64(res.Iterations))
	mPCGIterHist.Observe(float64(res.Iterations))
	mPCGLastResidual.Set(res.Residual)
	if errors.Is(err, ErrNoConvergence) {
		mPCGNoConverge.Add(1)
	}
	if err != nil && telemetry.EventsEnabled() {
		msg := "sparse: PCG breakdown"
		if errors.Is(err, ErrNoConvergence) {
			msg = "sparse: PCG did not converge"
		}
		telemetry.Event(slog.LevelError, msg,
			slog.Int("n", a.N()),
			slog.Int("nnz", a.NNZ()),
			slog.Int("iterations", res.Iterations),
			slog.Float64("residual", res.Residual),
			slog.Float64("tol", tol),
			slog.Int("max_iter", maxIter))
	}
	return x, res, err
}

func pcg(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int, ws *PCGWorkspace) ([]float64, CGResult, error) {
	n := a.N()
	if len(b) != n {
		panic("sparse: PCG dimension mismatch")
	}
	if prec == nil {
		prec = IdentityPrec{}
	}
	if ws == nil {
		ws = NewPCGWorkspace(n)
	} else {
		ws.resize(n)
	}
	// Flight recorder: one gate check per solve; per-iteration cost is a
	// nil check when off.
	var rec *traceRecorder
	if flightRecorderOn() {
		rec = newTraceRecorder("pcg", a, x0, prec, tol, maxIter)
	}
	// Convergence probe: same discipline (one gate check per solve, nil
	// check per iteration, zero alloc when off). The probe only copies
	// scalars the solve computed anyway, so results are bit-identical with
	// the gate on or off.
	var probe *convProbe
	if probesOn() {
		probe = newConvProbe(a, prec, tol, maxIter)
	}
	// x is allocated per solve: it is returned to (and kept by) the caller.
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	// sealOK attaches the sealed convergence trace and health report to a
	// successful result when the recorder/probe are on; a no-op (and no
	// allocation) otherwise.
	sealOK := func(result CGResult) CGResult {
		if rec != nil {
			result.Trace = rec.seal(result)
		}
		if probe != nil {
			result.Health = probe.seal(result, true)
		}
		return result
	}
	// Kernel workers for this solve. Every reduction below runs in the
	// fixed-block order of kernels.go, so the result is bit-identical at
	// any worker count — including 1, the default.
	wk := clampWorkers(ws.workers)
	r := ws.r
	a.MulVecW(x, r, wk)
	parSub(b, r, r, wk)
	normB := math.Sqrt(blockedNormSq(b, wk, ws.partials))
	if normB == 0 {
		// b = 0 => x = 0 (or x0 residual already 0)
		return x, sealOK(CGResult{Iterations: 0, Residual: 0}), nil
	}

	z, p, ap := ws.z, ws.p, ws.ap
	prec.Apply(r, z)
	copy(p, z)
	rz := blockedDot(r, z, wk, ws.partials)

	res := math.Sqrt(blockedNormSq(r, wk, ws.partials)) / normB
	if rec != nil {
		rec.record(res)
	}
	if probe != nil {
		probe.record(res)
	}
	if res <= tol {
		return x, sealOK(CGResult{Iterations: 0, Residual: res}), nil
	}
	for it := 1; it <= maxIter; it++ {
		a.MulVecW(p, ap, wk)
		pap := blockedDot(p, ap, wk, ws.partials)
		if pap <= 0 || math.IsNaN(pap) {
			// Breakdown: report the true residual of the current iterate
			// (recomputed as b − A·x, not the recursively updated estimate
			// from the previous iteration). ap is dead here; reuse it.
			// Iteration `it` performed no update, so the iterate — and the
			// reported count — belong to iteration it−1, matching how the
			// fused-norm path below counts only completed updates.
			a.MulVec(x, ap)
			Sub(b, ap, ap)
			res = Norm2(ap) / normB
			err := fmt.Errorf("sparse: PCG: matrix not SPD (pᵀAp=%g at iter %d)", pap, it)
			result := CGResult{Iterations: it - 1, Residual: res}
			if probe != nil {
				probe.record(res)
				result.Health = probe.seal(result, false)
				err = probe.enrich(err)
			}
			if rec != nil {
				rec.record(res)
				rec.trace.BreakdownIter = it
				err = rec.finish(result, err)
				result.Trace = &rec.trace
			}
			return x, result, err
		}
		alpha := rz / pap
		// Fused iterate/residual update and residual norm: one pass over
		// the vectors instead of three (Axpy, Axpy, Norm2), reduced in the
		// fixed-block order so the value is worker-count-invariant.
		rr := fusedUpdateNormSq(x, p, r, ap, alpha, wk, ws.partials)
		res = math.Sqrt(rr) / normB
		if rec != nil {
			rec.record(res)
		}
		if probe != nil {
			probe.iter(alpha, res)
		}
		if res <= tol {
			return x, sealOK(CGResult{Iterations: it, Residual: res}), nil
		}
		prec.Apply(r, z)
		rzNew := blockedDot(r, z, wk, ws.partials)
		beta := rzNew / rz
		rz = rzNew
		if probe != nil {
			probe.betaCoeff(beta)
		}
		parXpby(z, beta, p, wk)
	}
	err := fmt.Errorf("%w: residual %.3e after %d iterations", ErrNoConvergence, res, maxIter)
	result := CGResult{Iterations: maxIter, Residual: res}
	if probe != nil {
		result.Health = probe.seal(result, false)
		err = probe.enrich(err)
	}
	if rec != nil {
		err = rec.finish(result, err)
		result.Trace = &rec.trace
	}
	return x, result, err
}

// CG is PCG without preconditioning.
func CG(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, CGResult, error) {
	return PCG(a, b, x0, IdentityPrec{}, tol, maxIter)
}
