package sparse

import (
	"errors"
	"fmt"
	"math"

	"voltstack/internal/telemetry"
)

// Solver instrumentation: iteration counts and residuals are the
// convergence-effort signal of the whole toolchain (every PDN solve funnels
// through PCG on large meshes), so they are recorded whenever telemetry is
// enabled. All handles are no-ops when it is not.
var (
	mPCGSolves       = telemetry.NewCounter("sparse_pcg_solves_total")
	mPCGIterations   = telemetry.NewCounter("sparse_pcg_iterations_total")
	mPCGNoConverge   = telemetry.NewCounter("sparse_pcg_nonconverged_total")
	mPCGIterHist     = telemetry.NewHistogram("sparse_pcg_iterations")
	mPCGLastResidual = telemetry.NewGauge("sparse_pcg_last_residual")
	mPrecondBuilds   = telemetry.NewCounter("sparse_precond_builds_total")
	mPrecondSeconds  = telemetry.NewHistogram("sparse_precond_build_seconds")
)

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("sparse: iterative solver did not converge")

// Preconditioner applies z = M⁻¹ r for some approximation M of A.
type Preconditioner interface {
	Apply(r, z []float64)
}

// IdentityPrec is the trivial preconditioner (plain CG).
type IdentityPrec struct{}

// Apply copies r into z.
func (IdentityPrec) Apply(r, z []float64) { copy(z, r) }

// JacobiPrec is the diagonal (Jacobi) preconditioner.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a.
// Zero diagonal entries are treated as 1 to stay defined.
func NewJacobi(a *CSR) *JacobiPrec {
	t0 := telemetry.Now()
	defer func() { mPrecondBuilds.Add(1); mPrecondSeconds.Since(t0) }()
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &JacobiPrec{invDiag: inv}
}

// Apply computes z = D⁻¹ r.
func (p *JacobiPrec) Apply(r, z []float64) {
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
}

// IC0Prec is a zero-fill incomplete Cholesky preconditioner: A ≈ L*Lᵀ with
// L restricted to the sparsity pattern of the lower triangle of A. The
// factorization runs on the symmetrically scaled matrix D^-1/2 A D^-1/2
// (unit diagonal), which keeps it stable for conductance matrices whose
// entries span many orders of magnitude.
type IC0Prec struct {
	lower *CSR      // L of the scaled matrix, diagonal stored last per row
	upper *CSR      // Lᵀ for the backward solve
	scale []float64 // D^-1/2
	tmp   []float64
}

// NewIC0 computes an incomplete Cholesky factorization of the SPD matrix a.
// If the factorization breaks down (non-positive pivot), the diagonal is
// shifted by successively larger multiples of its magnitude and the
// factorization retried; an error is returned only if even a large shift
// fails.
func NewIC0(a *CSR) (*IC0Prec, error) {
	t0 := telemetry.Now()
	defer func() { mPrecondBuilds.Add(1); mPrecondSeconds.Since(t0) }()
	for shift := 0.0; shift <= 1.0; {
		p, err := tryIC0(a, shift)
		if err == nil {
			return p, nil
		}
		if shift == 0 {
			shift = 1e-3
		} else {
			shift *= 4
		}
	}
	return nil, fmt.Errorf("sparse: IC(0) breakdown persists under diagonal shifting: %w", ErrNotPositiveDefinite)
}

func tryIC0(a *CSR, shift float64) (*IC0Prec, error) {
	n := a.N()
	// Symmetric Jacobi scaling: factor D^-1/2 A D^-1/2, which has a unit
	// diagonal and bounded off-diagonal magnitudes.
	scale := make([]float64, n)
	for i, d := range a.Diag() {
		if d <= 0 {
			return nil, fmt.Errorf("sparse: IC(0): non-positive diagonal at row %d: %w", i, ErrNotPositiveDefinite)
		}
		scale[i] = 1 / math.Sqrt(d)
	}
	low := a.Lower()
	// Copy values so we can factor in place; scale and apply the shift.
	l := low.Clone()
	for i := 0; i < n; i++ {
		lo, hi := l.rowPtr[i], l.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(l.col[k])
			l.val[k] *= scale[i] * scale[j]
			if j == i {
				l.val[k] *= 1 + shift
			}
		}
	}

	// Row-oriented IC(0).
	for i := 0; i < n; i++ {
		iLo, iHi := l.rowPtr[i], l.rowPtr[i+1]
		var diagIdx = -1
		for k := iLo; k < iHi; k++ {
			j := int(l.col[k])
			if j == i {
				diagIdx = k
				continue
			}
			// L[i][j] = (A[i][j] - Σ_k<j L[i][k] L[j][k]) / L[j][j]
			jLo, jHi := l.rowPtr[j], l.rowPtr[j+1]
			s := l.val[k]
			var ljj float64
			ki, kj := iLo, jLo
			for ki < k && kj < jHi {
				ci, cj := l.col[ki], l.col[kj]
				switch {
				case ci == cj:
					if int(ci) < j {
						s -= l.val[ki] * l.val[kj]
					}
					ki++
					kj++
				case ci < cj:
					ki++
				default:
					kj++
				}
			}
			for kk := jLo; kk < jHi; kk++ {
				if int(l.col[kk]) == j {
					ljj = l.val[kk]
					break
				}
			}
			if ljj == 0 {
				return nil, ErrNotPositiveDefinite
			}
			l.val[k] = s / ljj
		}
		if diagIdx < 0 {
			return nil, fmt.Errorf("sparse: IC(0): missing diagonal at row %d", i)
		}
		d := l.val[diagIdx]
		for k := iLo; k < diagIdx; k++ {
			d -= l.val[k] * l.val[k]
		}
		// On the scaled matrix the diagonal is 1+shift, so a pivot far
		// below 1 signals (near-)breakdown; treat it as such rather than
		// producing a disastrously conditioned factor.
		if d <= 1e-4 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		l.val[diagIdx] = math.Sqrt(d)
	}

	// Build the transpose for the backward sweep.
	ub := NewBuilder(n)
	for i := 0; i < n; i++ {
		l.Row(i, func(j int, v float64) { ub.Add(j, i, v) })
	}
	return &IC0Prec{lower: l, upper: ub.ToCSR(), scale: scale, tmp: make([]float64, n)}, nil
}

// Apply solves (D^1/2 L Lᵀ D^1/2) z = r, the preconditioner in the
// original (unscaled) variables.
func (p *IC0Prec) Apply(r, z []float64) {
	n := p.lower.N()
	y := p.tmp
	// Forward: L y = D^-1/2 r. Rows of L are sorted, diagonal last.
	for i := 0; i < n; i++ {
		s := r[i] * p.scale[i]
		var d float64
		lo, hi := p.lower.rowPtr[i], p.lower.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(p.lower.col[k])
			if j == i {
				d = p.lower.val[k]
			} else {
				s -= p.lower.val[k] * y[j]
			}
		}
		y[i] = s / d
	}
	// Backward: Lᵀ w = y, then z = D^-1/2 w. Rows of upper are sorted,
	// diagonal first.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		var d float64
		lo, hi := p.upper.rowPtr[i], p.upper.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(p.upper.col[k])
			if j == i {
				d = p.upper.val[k]
			} else {
				s -= p.upper.val[k] * z[j]
			}
		}
		z[i] = s / d
	}
	for i := 0; i < n; i++ {
		z[i] *= p.scale[i]
	}
}

// CGResult reports how an iterative solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖₂/‖b‖₂
}

// PCG solves A x = b for SPD A using the preconditioned conjugate gradient
// method. x0 may be nil (zero initial guess). The solve stops when the
// relative residual drops below tol or maxIter iterations elapse.
func PCG(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int) ([]float64, CGResult, error) {
	x, res, err := pcg(a, b, x0, prec, tol, maxIter)
	mPCGSolves.Add(1)
	mPCGIterations.Add(int64(res.Iterations))
	mPCGIterHist.Observe(float64(res.Iterations))
	mPCGLastResidual.Set(res.Residual)
	if errors.Is(err, ErrNoConvergence) {
		mPCGNoConverge.Add(1)
	}
	return x, res, err
}

func pcg(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int) ([]float64, CGResult, error) {
	n := a.N()
	if len(b) != n {
		panic("sparse: PCG dimension mismatch")
	}
	if prec == nil {
		prec = IdentityPrec{}
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	a.MulVec(x, r)
	Sub(b, r, r)
	normB := Norm2(b)
	if normB == 0 {
		return x, CGResult{0, 0}, nil // b = 0 => x = 0 (or x0 residual already 0)
	}

	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	prec.Apply(r, z)
	copy(p, z)
	rz := Dot(r, z)

	res := Norm2(r) / normB
	if res <= tol {
		return x, CGResult{0, res}, nil
	}
	for it := 1; it <= maxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return x, CGResult{it, res}, fmt.Errorf("sparse: PCG: matrix not SPD (pᵀAp=%g at iter %d)", pap, it)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		res = Norm2(r) / normB
		if res <= tol {
			return x, CGResult{it, res}, nil
		}
		prec.Apply(r, z)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, CGResult{maxIter, res}, fmt.Errorf("%w: residual %.3e after %d iterations", ErrNoConvergence, res, maxIter)
}

// CG is PCG without preconditioning.
func CG(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, CGResult, error) {
	return PCG(a, b, x0, IdentityPrec{}, tol, maxIter)
}
