package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// residual returns ‖b − A x‖∞.
func residual(a *CSR, x, b []float64) float64 {
	r := make([]float64, a.N())
	a.MulVec(x, r)
	Sub(b, r, r)
	return NormInf(r)
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestCholeskySmallKnown(t *testing.T) {
	// [[4,2],[2,3]] has Cholesky L = [[2,0],[1,sqrt(2)]].
	b := NewBuilder(2)
	b.Add(0, 0, 4)
	b.AddSym(0, 1, 2)
	b.Add(1, 1, 3)
	a := b.ToCSR()
	f, err := FactorCholeskyNatural(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{8, 7})
	// Solution of [[4,2],[2,3]] x = [8,7] is x = [1.25, 1.5].
	if math.Abs(x[0]-1.25) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Errorf("x = %v, want [1.25, 1.5]", x)
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(30)
		a := randomSPD(n, rng)
		xTrue := randVec(n, rng)
		bVec := make([]float64, n)
		a.MulVec(xTrue, bVec)
		f, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := f.Solve(bVec)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8*math.Max(1, math.Abs(xTrue[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyGridLaplacian(t *testing.T) {
	a := gridLaplacian(20, 15, 0.1)
	rng := rand.New(rand.NewSource(9))
	bVec := randVec(a.N(), rng)
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(bVec)
	if res := residual(a, x, bVec); res > 1e-9 {
		t.Errorf("residual = %g", res)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.AddSym(0, 1, 2) // leads to negative pivot
	b.Add(1, 1, 1)
	if _, err := FactorCholeskyNatural(b.ToCSR()); err == nil {
		t.Error("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskySolveMultipleRHS(t *testing.T) {
	a := gridLaplacian(8, 8, 1)
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 5; k++ {
		bVec := randVec(a.N(), rng)
		x := f.Solve(bVec)
		if res := residual(a, x, bVec); res > 1e-9 {
			t.Errorf("rhs %d: residual %g", k, res)
		}
	}
}

func TestCGUnpreconditioned(t *testing.T) {
	a := gridLaplacian(12, 12, 0.5)
	rng := rand.New(rand.NewSource(5))
	bVec := randVec(a.N(), rng)
	x, res, err := CG(a, bVec, nil, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, bVec); r > 1e-7 {
		t.Errorf("residual = %g after %d iters", r, res.Iterations)
	}
}

func TestPCGJacobiFasterOnScaledSystem(t *testing.T) {
	// Badly diagonally scaled SPD system: Jacobi should help a lot.
	n := 100
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%6))
		b.Add(i, i, 2*scale)
		if i+1 < n {
			b.AddSym(i, i+1, -0.5*math.Sqrt(scale))
		}
	}
	a := b.ToCSR()
	rng := rand.New(rand.NewSource(11))
	bVec := randVec(n, rng)

	_, plain, errPlain := CG(a, bVec, nil, 1e-10, 5000)
	xj, jac, errJac := PCG(a, bVec, nil, NewJacobi(a), 1e-10, 5000)
	if errJac != nil {
		t.Fatalf("jacobi: %v", errJac)
	}
	if r := residual(a, xj, bVec); r > 1e-5*NormInf(bVec) {
		t.Errorf("jacobi residual = %g", r)
	}
	if errPlain == nil && jac.Iterations > plain.Iterations {
		t.Errorf("Jacobi (%d iters) should not be slower than plain CG (%d)", jac.Iterations, plain.Iterations)
	}
}

func TestPCGIC0OnLaplacian(t *testing.T) {
	a := gridLaplacian(30, 30, 0.01)
	rng := rand.New(rand.NewSource(17))
	bVec := randVec(a.N(), rng)

	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	x, resIC, err := PCG(a, bVec, nil, ic, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, bVec); r > 1e-6 {
		t.Errorf("IC0 residual = %g", r)
	}
	_, resCG, err := CG(a, bVec, nil, 1e-10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if resIC.Iterations >= resCG.Iterations {
		t.Errorf("IC0 (%d iters) should beat plain CG (%d iters) on a Laplacian",
			resIC.Iterations, resCG.Iterations)
	}
}

func TestPCGAgreesWithCholesky(t *testing.T) {
	a := gridLaplacian(10, 14, 0.3)
	rng := rand.New(rand.NewSource(23))
	bVec := randVec(a.N(), rng)
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xd := f.Solve(bVec)
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	xi, _, err := PCG(a, bVec, nil, ic, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if math.Abs(xd[i]-xi[i]) > 1e-6*math.Max(1, math.Abs(xd[i])) {
			t.Fatalf("solvers disagree at %d: chol %g vs pcg %g", i, xd[i], xi[i])
		}
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a := gridLaplacian(5, 5, 1)
	x, res, err := CG(a, make([]float64, a.N()), nil, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if NormInf(x) != 0 || res.Iterations != 0 {
		t.Errorf("zero rhs should give zero solution immediately, got %v after %d", NormInf(x), res.Iterations)
	}
}

func TestPCGWarmStart(t *testing.T) {
	a := gridLaplacian(10, 10, 0.5)
	rng := rand.New(rand.NewSource(31))
	bVec := randVec(a.N(), rng)
	xCold, cold, err := CG(a, bVec, nil, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution should converge immediately.
	_, warm, err := CG(a, bVec, xCold, 1e-8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 2 {
		t.Errorf("warm start took %d iterations (cold %d)", warm.Iterations, cold.Iterations)
	}
}

func TestPCGNonConvergenceReported(t *testing.T) {
	a := gridLaplacian(20, 20, 1e-6)
	rng := rand.New(rand.NewSource(37))
	bVec := randVec(a.N(), rng)
	_, _, err := CG(a, bVec, nil, 1e-14, 2)
	if err == nil {
		t.Error("expected ErrNoConvergence with 2-iteration budget")
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A grid numbered badly: random permutation of a grid Laplacian.
	a := gridLaplacian(16, 16, 1)
	rng := rand.New(rand.NewSource(41))
	scrambled := a.Permute(rng.Perm(a.N()))
	before := Bandwidth(scrambled)
	perm := RCM(scrambled)
	after := Bandwidth(scrambled.Permute(perm))
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	// For a 16x16 grid RCM should get close to the optimal ~16.
	if after > 40 {
		t.Errorf("RCM bandwidth %d is far from grid optimum", after)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 2+rng.Intn(8), 2+rng.Intn(8)
		a := gridLaplacian(nx, ny, 1)
		perm := RCM(a)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint 3-node chains plus an isolated vertex.
	b := NewBuilder(7)
	for i := 0; i < 7; i++ {
		b.Add(i, i, 2)
	}
	b.AddSym(0, 1, -1)
	b.AddSym(1, 2, -1)
	b.AddSym(4, 5, -1)
	b.AddSym(5, 6, -1)
	a := b.ToCSR()
	perm := RCM(a)
	seen := make([]bool, 7)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("index %d missing from RCM permutation", i)
		}
	}
	// The system should still factor and solve.
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{1, 0, 0, 2, 0, 0, 1})
	if res := residual(a, x, []float64{1, 0, 0, 2, 0, 0, 1}); res > 1e-10 {
		t.Errorf("residual = %g", res)
	}
}

func TestEnvelopeSizeShrinksUnderRCM(t *testing.T) {
	a := gridLaplacian(12, 12, 1)
	rng := rand.New(rand.NewSource(43))
	scrambled := a.Permute(rng.Perm(a.N()))
	orig := EnvelopeSize(scrambled)
	reordered := scrambled.Permute(RCM(scrambled))
	if got := EnvelopeSize(reordered); got >= orig {
		t.Errorf("envelope %d -> %d, expected reduction", orig, got)
	}
}

func TestDenseLUKnown(t *testing.T) {
	d := NewDense(3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i := range vals {
		for j := range vals[i] {
			d.Set(i, j, vals[i][j])
		}
	}
	lu, err := d.LU()
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{5, -2, 9})
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x = %v, want %v", x, want)
			break
		}
	}
	// det([[2,1,1],[4,-6,0],[-2,7,2]]) = -16
	if math.Abs(lu.Det()-(-16)) > 1e-9 {
		t.Errorf("det = %g, want -16", lu.Det())
	}
}

func TestDenseLUSingular(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 4)
	if _, err := d.LU(); err == nil {
		t.Error("expected singular error")
	}
}

func TestDenseLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		d := NewDense(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d.Set(i, j, rng.NormFloat64())
			}
			d.Add(i, i, float64(n)) // diagonally dominant, nonsingular
		}
		xTrue := randVec(n, rng)
		bVec := make([]float64, n)
		d.MulVec(xTrue, bVec)
		lu, err := d.LU()
		if err != nil {
			t.Fatal(err)
		}
		x := lu.Solve(bVec)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9*math.Max(1, math.Abs(xTrue[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	c := d.Clone()
	c.Set(0, 0, 5)
	if d.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	d.Zero()
	if d.At(0, 0) != 0 {
		t.Error("Zero failed")
	}
}

// Property: Cholesky solve satisfies A x = b for arbitrary grid Laplacians.
func TestCholeskyPropertyGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 2+rng.Intn(10), 2+rng.Intn(10)
		a := gridLaplacian(nx, ny, 0.05+rng.Float64())
		bVec := randVec(a.N(), rng)
		fac, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x := fac.Solve(bVec)
		return residual(a, x, bVec) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
