package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestAMGHierarchyCoarsens(t *testing.T) {
	a := gridLaplacian(60, 60, 1e-3)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() < 3 {
		t.Fatalf("expected a multi-level hierarchy for n=%d, got %d levels", a.N(), p.Levels())
	}
	if p.CoarseN() > 64 {
		t.Fatalf("coarsest level has %d unknowns, want <= 64", p.CoarseN())
	}
	// Levels should shrink monotonically (pairwise aggregation roughly
	// halves each level).
	for ell := 1; ell < len(p.ns); ell++ {
		if p.ns[ell] >= p.ns[ell-1] {
			t.Fatalf("level %d did not coarsen: %v", ell, p.ns)
		}
	}
}

func TestAMGTinyMatrixIsDirectSolve(t *testing.T) {
	a := gridLaplacian(4, 4, 1e-3)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() != 1 {
		t.Fatalf("n=16 <= CoarseSize should factor directly, got %d levels", p.Levels())
	}
	// With no smoothing levels, Apply is an exact solve.
	b := []float64{1, 0, 0, -2, 0, 3, 0, 0, 0, 0, 0, 0, 1, 0, 0, -1}
	z := make([]float64, a.N())
	p.Apply(b, z)
	if r := residual(a, z, b); r > 1e-9 {
		t.Fatalf("direct-solve Apply residual %g", r)
	}
}

func TestAMGPreconditionedCGConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := gridLaplacian(50, 50, 1e-4)
	b := randVec(a.N(), rng)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, res, err := PCG(a, b, nil, p, 1e-10, 200)
	if err != nil {
		t.Fatalf("AMG-PCG failed: %v (iters=%d res=%g)", err, res.Iterations, res.Residual)
	}
	if r := residual(a, x, b); r > 1e-6*NormInf(b) {
		t.Fatalf("residual too large: %g", r)
	}
	// The point of AMG is mesh-independent iteration counts; on a 2500-node
	// grid the count should be far below the unpreconditioned hundreds.
	if res.Iterations > 60 {
		t.Fatalf("AMG-PCG took %d iterations, expected mesh-independent convergence", res.Iterations)
	}
}

func TestAMGApplyIsDeterministicAndForkSafe(t *testing.T) {
	a := gridLaplacian(30, 30, 1e-3)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r := randVec(a.N(), rng)
	z1 := make([]float64, a.N())
	z2 := make([]float64, a.N())
	p.Apply(r, z1)
	p.Apply(r, z2)
	for i := range z1 {
		if math.Float64bits(z1[i]) != math.Float64bits(z2[i]) {
			t.Fatalf("Apply not deterministic at %d: %v vs %v", i, z1[i], z2[i])
		}
	}
	// A scratch fork must produce bit-identical applications.
	fork := p.forkScratch()
	z3 := make([]float64, a.N())
	fork.Apply(r, z3)
	for i := range z1 {
		if math.Float64bits(z1[i]) != math.Float64bits(z3[i]) {
			t.Fatalf("forked Apply differs at %d: %v vs %v", i, z1[i], z3[i])
		}
	}
}

func TestAMGSymmetryForPCG(t *testing.T) {
	// PCG requires a symmetric preconditioner: check ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩
	// for random vectors (equal pre/post Jacobi sweeps make the V-cycle
	// symmetric).
	a := gridLaplacian(20, 20, 1e-3)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	n := a.N()
	for trial := 0; trial < 5; trial++ {
		u, v := randVec(n, rng), randVec(n, rng)
		mu, mv := make([]float64, n), make([]float64, n)
		p.Apply(u, mu)
		p.Apply(v, mv)
		lhs, rhs := Dot(mu, v), Dot(u, mv)
		scale := math.Max(math.Abs(lhs), math.Abs(rhs))
		if math.Abs(lhs-rhs) > 1e-10*math.Max(scale, 1) {
			t.Fatalf("V-cycle not symmetric: ⟨Mu,v⟩=%g ⟨u,Mv⟩=%g", lhs, rhs)
		}
	}
}

func TestAMGRejectsNonPositiveDiagonal(t *testing.T) {
	b := NewBuilder(200)
	for i := 0; i < 200; i++ {
		b.Add(i, i, -1)
	}
	if _, err := NewAMG(b.ToCSR(), AMGOptions{CoarseSize: 8}); err == nil {
		t.Fatal("expected error for non-positive diagonal")
	}
}

func TestAMGPrecNameInTrace(t *testing.T) {
	a := gridLaplacian(10, 10, 1e-3)
	p, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := precName(p); got != "amg" {
		t.Fatalf("precName(AMGPrec) = %q, want amg", got)
	}
}
