// Numerical flight recorder for iterative solves. When
// telemetry.FlightRecorderEnabled() is on, every PCG solve carries a
// bounded recorder of its residual trajectory; a failed solve returns its
// trace attached to the error (via TraceError), so the caller — typically
// pdngrid — can dump a post-mortem artifact with the full convergence
// history of exactly the solve that failed. With the gate off the cost is
// one atomic load per solve and a nil check per iteration.
package sparse

import (
	"errors"

	"voltstack/internal/telemetry"
)

// Trace ring bounds: the first traceHeadLen residuals are always kept (the
// early trajectory shows the preconditioner quality), the rest go through a
// circular buffer so the final traceTailLen are kept too (the tail shows
// the stagnation or divergence that killed the solve). Everything between
// is counted in ResidualsDropped.
const (
	traceHeadLen = 32
	traceTailLen = 256
)

// SolveTrace is the post-mortem record of one iterative solve: problem
// shape, solver configuration, and the (bounded) relative-residual
// trajectory. It marshals directly to the post-mortem JSON artifact.
type SolveTrace struct {
	Kind           string  `json:"kind"` // "pcg"
	N              int     `json:"n"`
	NNZ            int     `json:"nnz"`
	Tol            float64 `json:"tol"`
	MaxIter        int     `json:"max_iter"`
	Preconditioner string  `json:"preconditioner"`
	// WarmStart records whether the solve started from a caller-provided
	// iterate (closed-loop outer passes warm-start from the previous one)
	// rather than from zero.
	WarmStart bool `json:"warm_start"`

	Iterations    int     `json:"iterations"`
	FinalResidual float64 `json:"final_residual"`
	// BreakdownIter is the iteration at which pᵀAp lost positivity, 0 when
	// the solve ended by convergence or iteration budget.
	BreakdownIter int `json:"breakdown_iter,omitempty"`

	// Residuals holds the recorded relative residuals in iteration order:
	// the entry at index 0 is the initial residual (iteration 0), with up
	// to ResidualsDropped middle iterations elided between the head and
	// tail segments.
	Residuals        []float64 `json:"residuals"`
	ResidualsDropped int       `json:"residuals_dropped,omitempty"`

	Err string `json:"error,omitempty"`
}

// TraceError attaches a SolveTrace to a solver failure. Unwrap preserves
// errors.Is/As against the underlying cause (ErrNoConvergence, the SPD
// breakdown error, ...).
type TraceError struct {
	Err   error
	Trace *SolveTrace
}

func (e *TraceError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying solver error.
func (e *TraceError) Unwrap() error { return e.Err }

// TraceFromError extracts the flight-recorder trace attached to err, or nil
// when err carries none (recorder off, or a non-solver error).
func TraceFromError(err error) *SolveTrace {
	var te *TraceError
	if errors.As(err, &te) {
		return te.Trace
	}
	return nil
}

// traceRecorder accumulates the trajectory during a solve. Created only
// when the flight recorder is enabled at solve entry.
type traceRecorder struct {
	trace SolveTrace
	head  []float64
	tail  []float64 // circular once full
	pos   int       // next write slot in tail
	n     int       // residuals recorded beyond the head
}

func newTraceRecorder(kind string, a *CSR, x0 []float64, prec Preconditioner, tol float64, maxIter int) *traceRecorder {
	return &traceRecorder{
		trace: SolveTrace{
			Kind:           kind,
			N:              a.N(),
			NNZ:            a.NNZ(),
			Tol:            tol,
			MaxIter:        maxIter,
			Preconditioner: precName(prec),
			WarmStart:      x0 != nil,
		},
		head: make([]float64, 0, traceHeadLen),
	}
}

// record appends one relative residual (called once before the loop for
// iteration 0, then once per iteration).
func (r *traceRecorder) record(res float64) {
	if len(r.head) < traceHeadLen {
		r.head = append(r.head, res)
		return
	}
	if r.tail == nil {
		r.tail = make([]float64, traceTailLen)
	}
	r.tail[r.pos] = res
	r.pos = (r.pos + 1) % traceTailLen
	r.n++
}

// seal flattens the recorder into its trace (ring in iteration order,
// final stats filled) and returns it. Call exactly once per solve.
func (r *traceRecorder) seal(res CGResult) *SolveTrace {
	t := &r.trace
	t.Iterations = res.Iterations
	t.FinalResidual = res.Residual
	t.Residuals = append(t.Residuals, r.head...)
	if r.n > traceTailLen {
		t.ResidualsDropped = r.n - traceTailLen
		for i := 0; i < traceTailLen; i++ {
			t.Residuals = append(t.Residuals, r.tail[(r.pos+i)%traceTailLen])
		}
	} else {
		t.Residuals = append(t.Residuals, r.tail[:r.n]...)
	}
	return t
}

// finish seals the recorder into its trace and wraps err (if any) so the
// trace travels with it.
func (r *traceRecorder) finish(res CGResult, err error) error {
	t := r.seal(res)
	if err == nil {
		return nil
	}
	t.Err = err.Error()
	return &TraceError{Err: err, Trace: t}
}

// precName labels a preconditioner for traces and events.
func precName(p Preconditioner) string {
	switch p.(type) {
	case IdentityPrec, *IdentityPrec:
		return "identity"
	case *JacobiPrec:
		return "jacobi"
	case *IC0Prec:
		return "ic0"
	case *AMGPrec:
		return "amg"
	default:
		return "custom"
	}
}

// flightRecorderOn is a local alias so the hot path reads naturally.
func flightRecorderOn() bool { return telemetry.FlightRecorderEnabled() }
