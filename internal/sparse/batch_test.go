package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randBatch(n, k int, rng *rand.Rand) [][]float64 {
	bs := make([][]float64, k)
	for i := range bs {
		bs[i] = randVec(n, rng)
	}
	return bs
}

func sameVecBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestSkylineSolveBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gridLaplacian(17, 13, 1e-3)
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	bs := randBatch(a.N(), 9, rng)
	for _, workers := range []int{1, 2, 8} {
		xs := f.SolveBatchWorkers(bs, workers)
		for i := range bs {
			sameVecBits(t, "skyline lane", f.Solve(bs[i]), xs[i])
		}
	}
}

func TestSparseCholSolveBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := gridLaplacian(14, 14, 1e-3)
	f, err := FactorSparse(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	bs := randBatch(a.N(), 9, rng)
	for _, workers := range []int{1, 2, 8} {
		xs := f.SolveBatchWorkers(bs, workers)
		for i := range bs {
			sameVecBits(t, "sparse-chol lane", f.Solve(bs[i]), xs[i])
		}
	}
}

func TestPCGBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := gridLaplacian(20, 15, 1e-3)
	n := a.N()
	bs := randBatch(n, 9, rng)

	ic0, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	amg, err := NewAMG(a, AMGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	precs := map[string]Preconditioner{
		"identity": IdentityPrec{},
		"jacobi":   NewJacobi(a),
		"ic0":      ic0,
		"amg":      amg,
	}
	for name, prec := range precs {
		// Serial reference lanes.
		ref := make([][]float64, len(bs))
		refRes := make([]CGResult, len(bs))
		for i := range bs {
			x, res, err := PCG(a, bs[i], nil, prec, 1e-10, 10*n)
			if err != nil {
				t.Fatalf("%s serial lane %d: %v", name, i, err)
			}
			ref[i], refRes[i] = x, res
		}
		for _, workers := range []int{1, 2, 8} {
			ws := NewPCGBatchWorkspace(n, 4) // undersized on purpose: must grow
			xs, results, err := PCGBatch(a, bs, nil, prec, 1e-10, 10*n, ws, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i := range bs {
				sameVecBits(t, name+" lane", ref[i], xs[i])
				if results[i] != refRes[i] {
					t.Fatalf("%s workers=%d lane %d: result %+v vs serial %+v",
						name, workers, i, results[i], refRes[i])
				}
			}
		}
	}
}

func TestPCGBatchWarmStartsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := gridLaplacian(12, 12, 1e-3)
	n := a.N()
	bs := randBatch(n, 5, rng)
	x0s := randBatch(n, 5, rng)
	x0s[2] = nil // nil warm-start entries must be allowed
	prec := NewJacobi(a)
	for _, workers := range []int{1, 8} {
		xs, _, err := PCGBatch(a, bs, x0s, prec, 1e-10, 10*n, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bs {
			ref, _, err := PCG(a, bs[i], x0s[i], prec, 1e-10, 10*n)
			if err != nil {
				t.Fatal(err)
			}
			sameVecBits(t, "warm lane", ref, xs[i])
		}
	}
}

func TestPCGBatchReportsLowestLaneError(t *testing.T) {
	// Lane 1 gets an indefinite system and must break down; the other lanes
	// must still complete with valid results.
	a := indefinite2x2()
	bs := [][]float64{{0, 0}, {1, -1}, {0, 0}}
	xs, results, err := PCGBatch(a, bs, nil, nil, 1e-12, 50, nil, 2)
	if err == nil {
		t.Fatal("expected breakdown error from lane 1")
	}
	if !strings.Contains(err.Error(), "not SPD") {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, i := range []int{0, 2} {
		if xs[i] == nil || results[i].Residual != 0 {
			t.Fatalf("zero-RHS lane %d should have solved exactly: %+v", i, results[i])
		}
	}
}

func TestPCGBreakdownIterationCountMatchesFusedPath(t *testing.T) {
	// Regression: the breakdown path used to report iteration `it` although
	// that iteration performed no x-update, disagreeing with the fused-norm
	// path (which counts only completed updates) and with the residual it
	// reports (computed from the it−1 iterate). Breakdown on the very first
	// iteration must report 0 iterations: the returned x is still x0.
	a := indefinite2x2()
	x, res, err := CG(a, []float64{1, -1}, nil, 1e-12, 50)
	if err == nil {
		t.Fatal("expected breakdown on indefinite matrix")
	}
	if res.Iterations != 0 {
		t.Fatalf("first-iteration breakdown reported %d iterations, want 0", res.Iterations)
	}
	// x must be the (zero) initial iterate, consistent with the count…
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want untouched initial guess", i, v)
		}
	}
	// …and the reported residual must be the true residual of that iterate.
	rhs := []float64{1, -1}
	ax := make([]float64, 2)
	a.MulVec(x, ax)
	Sub(rhs, ax, ax)
	if want := Norm2(ax) / Norm2(rhs); math.Float64bits(want) != math.Float64bits(res.Residual) {
		t.Fatalf("breakdown residual %v does not match iterate residual %v", res.Residual, want)
	}
}

func TestForkPreconditionerSafety(t *testing.T) {
	a := gridLaplacian(8, 8, 1e-3)
	ic0, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	if p, safe := forkPreconditioner(ic0); !safe {
		t.Fatal("IC0Prec should fork safely")
	} else if p == Preconditioner(ic0) {
		t.Fatal("IC0 fork must be a distinct instance")
	}
	if p, safe := forkPreconditioner(NewJacobi(a)); !safe || p == nil {
		t.Fatal("JacobiPrec is stateless-safe")
	}
	if _, safe := forkPreconditioner(IdentityPrec{}); !safe {
		t.Fatal("IdentityPrec is stateless-safe")
	}
	if _, safe := forkPreconditioner(unknownPrec{}); safe {
		t.Fatal("unknown preconditioners must force serial lanes")
	}
}

type unknownPrec struct{}

func (unknownPrec) Apply(r, z []float64) { copy(z, r) }
