package sparse

import "math"

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("sparse: Dot dimension mismatch")
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: Axpy dimension mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sub computes z = x - y; z may alias either operand.
func Sub(x, y, z []float64) {
	if len(x) != len(y) || len(x) != len(z) {
		panic("sparse: Sub dimension mismatch")
	}
	for i := range x {
		z[i] = x[i] - y[i]
	}
}
