package sparse

import (
	"fmt"
	"math"
)

// Ordering selects the fill-reducing permutation used by SparseChol.
type Ordering int

const (
	// OrderND is nested dissection — the best choice for mesh-like
	// graphs (PDN and thermal grids).
	OrderND Ordering = iota
	// OrderRCMChol uses reverse Cuthill-McKee.
	OrderRCMChol
	// OrderNatural factors in the given order.
	OrderNatural
)

// SparseChol is a general sparse Cholesky factorization A = L·Lᵀ with
// fill-in, computed up-looking (row by row) using the elimination tree —
// unlike SkylineChol it stores only structural nonzeros plus fill, which
// is dramatically less than the envelope for 3D meshes.
type SparseChol struct {
	n    int
	perm []int // old -> new
	inv  []int // new -> old

	diag   []float64
	colRow [][]int32   // below-diagonal rows per column
	colVal [][]float64 // matching values
}

// FactorSparse computes the sparse Cholesky factorization of the SPD
// matrix a under the given ordering.
func FactorSparse(a *CSR, ord Ordering) (*SparseChol, error) {
	n := a.N()
	var perm []int
	switch ord {
	case OrderND:
		perm = NestedDissection(a)
	case OrderRCMChol:
		perm = RCM(a)
	case OrderNatural:
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	default:
		return nil, fmt.Errorf("sparse: unknown ordering %d", ord)
	}
	p := a.Permute(perm)
	low := p.Lower()
	parent := EliminationTree(low)

	f := &SparseChol{
		n:      n,
		perm:   perm,
		inv:    InvertPerm(perm),
		diag:   make([]float64, n),
		colRow: make([][]int32, n),
		colVal: make([][]float64, n),
	}

	x := make([]float64, n)
	mark := make([]int, n)
	stack := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}

	for i := 0; i < n; i++ {
		// Load row i of A (lower part) into the scratch vector.
		var d float64
		low.Row(i, func(j int, v float64) {
			if j == i {
				d = v
			} else {
				x[j] = v
			}
		})
		// Sparse triangular solve over the row's factor pattern.
		pattern := etreeReach(low, i, parent, mark, stack)
		for _, j := range pattern {
			lij := x[j] / f.diag[j]
			x[j] = 0
			rows := f.colRow[j]
			vals := f.colVal[j]
			for k := range rows {
				x[rows[k]] -= vals[k] * lij
			}
			d -= lij * lij
			f.colRow[j] = append(f.colRow[j], int32(i))
			f.colVal[j] = append(f.colVal[j], lij)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d, value %g)", ErrNotPositiveDefinite, i, d)
		}
		f.diag[i] = math.Sqrt(d)
	}
	return f, nil
}

// N returns the system dimension.
func (f *SparseChol) N() int { return f.n }

// NNZ returns the number of stored factor entries including the diagonal.
func (f *SparseChol) NNZ() int {
	total := f.n
	for _, c := range f.colRow {
		total += len(c)
	}
	return total
}

// Solve returns x with A·x = b.
func (f *SparseChol) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("sparse: Solve dimension mismatch")
	}
	y := PermuteVec(f.perm, b)
	// Forward: L y' = y (column-oriented sweep).
	for j := 0; j < f.n; j++ {
		y[j] /= f.diag[j]
		rows := f.colRow[j]
		vals := f.colVal[j]
		yj := y[j]
		for k := range rows {
			y[rows[k]] -= vals[k] * yj
		}
	}
	// Backward: Lᵀ x' = y'.
	for j := f.n - 1; j >= 0; j-- {
		rows := f.colRow[j]
		vals := f.colVal[j]
		s := y[j]
		for k := range rows {
			s -= vals[k] * y[rows[k]]
		}
		y[j] = s / f.diag[j]
	}
	x := make([]float64, f.n)
	for nw, old := range f.inv {
		x[old] = y[nw]
	}
	return x
}

// SolveTo writes the solution into dst.
func (f *SparseChol) SolveTo(dst, b []float64) {
	copy(dst, f.Solve(b))
}
