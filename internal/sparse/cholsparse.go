package sparse

import (
	"fmt"
	"math"
)

// Ordering selects the fill-reducing permutation used by SparseChol.
type Ordering int

const (
	// OrderND is nested dissection — the best choice for mesh-like
	// graphs (PDN and thermal grids).
	OrderND Ordering = iota
	// OrderRCMChol uses reverse Cuthill-McKee.
	OrderRCMChol
	// OrderNatural factors in the given order.
	OrderNatural
)

// SparseChol is a general sparse Cholesky factorization A = L·Lᵀ with
// fill-in, computed up-looking (row by row) using the elimination tree —
// unlike SkylineChol it stores only structural nonzeros plus fill, which
// is dramatically less than the envelope for 3D meshes.
type SparseChol struct {
	n    int
	perm []int // old -> new
	inv  []int // new -> old

	diag   []float64
	colRow [][]int32   // below-diagonal rows per column
	colVal [][]float64 // matching values
}

// SparseCholSymbolic is the structure-only half of FactorSparse: the
// fill-reducing permutation, the permuted lower-triangle structure with a
// value map from the original matrix, the elimination tree, and the
// per-row factor patterns (including fill). It is computed once per
// sparsity structure; Refactor then numerically factors any matrix with
// that structure, skipping ordering, permutation and symbolic analysis.
type SparseCholSymbolic struct {
	n    int
	perm []int
	inv  []int

	low    *CSR    // permuted lower triangle (values are scratch)
	lowMap []int32 // original CSR entry -> low val index, or -1

	patPtr []int32 // row i's factor pattern is pattern[patPtr[i]:patPtr[i+1]]
	patRow []int32 // concatenated patterns, topological order per row
	colRow [][]int32
}

// FactorSparse computes the sparse Cholesky factorization of the SPD
// matrix a under the given ordering.
func FactorSparse(a *CSR, ord Ordering) (*SparseChol, error) {
	sym, err := NewSparseCholSymbolic(a, ord)
	if err != nil {
		return nil, err
	}
	return sym.Refactor(a, nil)
}

// NewSparseCholSymbolic performs the symbolic phase of FactorSparse.
func NewSparseCholSymbolic(a *CSR, ord Ordering) (*SparseCholSymbolic, error) {
	symbolicBuilt()
	n := a.N()
	var perm []int
	switch ord {
	case OrderND:
		perm = NestedDissection(a)
	case OrderRCMChol:
		perm = RCM(a)
	case OrderNatural:
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	default:
		return nil, fmt.Errorf("sparse: unknown ordering %d", ord)
	}
	s := &SparseCholSymbolic{n: n, perm: perm, inv: InvertPerm(perm)}

	// Permuted lower-triangle structure, plus the map placing original
	// values into it (entries are unique, so placement is assignment).
	lb := NewBuilder(n)
	for i := 0; i < n; i++ {
		pi := perm[i]
		a.Row(i, func(j int, _ float64) {
			if pj := perm[j]; pj <= pi {
				lb.Add(pi, pj, 1)
			}
		})
	}
	s.low = lb.ToCSR()
	s.lowMap = make([]int32, a.NNZ())
	k := 0
	for i := 0; i < n; i++ {
		pi := perm[i]
		a.Row(i, func(j int, _ float64) {
			pj := perm[j]
			if pj <= pi {
				s.lowMap[k] = int32(s.low.entryIndex(pi, pj))
			} else {
				s.lowMap[k] = -1
			}
			k++
		})
	}

	// Elimination tree and per-row factor patterns (with fill), stored in
	// the exact topological order the numeric phase consumes them in.
	parent := EliminationTree(s.low)
	mark := make([]int, n)
	stack := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	s.patPtr = make([]int32, n+1)
	counts := make([]int32, n)
	for i := 0; i < n; i++ {
		pattern := etreeReach(s.low, i, parent, mark, stack)
		s.patPtr[i+1] = s.patPtr[i] + int32(len(pattern))
		s.patRow = append(s.patRow, make([]int32, len(pattern))...)
		copy32(s.patRow[s.patPtr[i]:s.patPtr[i+1]], pattern)
		for _, j := range pattern {
			counts[j]++
		}
	}
	// Factor column structure: column j holds every row i whose pattern
	// contains j, in ascending row order (the order the numeric phase
	// emits them).
	s.colRow = make([][]int32, n)
	for j := 0; j < n; j++ {
		s.colRow[j] = make([]int32, 0, counts[j])
	}
	for i := 0; i < n; i++ {
		for _, j := range s.patRow[s.patPtr[i]:s.patPtr[i+1]] {
			s.colRow[j] = append(s.colRow[j], int32(i))
		}
	}
	return s, nil
}

func copy32(dst []int32, src []int) {
	for i, v := range src {
		dst[i] = int32(v)
	}
}

// entryIndex returns the val index of entry (i, j), or -1 if not stored.
func (m *CSR) entryIndex(i, j int) int {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if int(m.col[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m.rowPtr[i+1] && int(m.col[lo]) == j {
		return lo
	}
	return -1
}

// N returns the system dimension.
func (s *SparseCholSymbolic) N() int { return s.n }

// Refactor numerically factors a, which must share the sparsity structure
// of the symbolic phase. When f is non-nil its column storage is reused;
// otherwise a new SparseChol is allocated. The result is bit-identical to
// FactorSparse on the same values.
func (s *SparseCholSymbolic) Refactor(a *CSR, f *SparseChol) (*SparseChol, error) {
	t0 := refactorStart()
	defer refactorEnd(t0)
	if a.N() != s.n || a.NNZ() != len(s.lowMap) {
		return nil, fmt.Errorf("sparse: Refactor: matrix structure does not match symbolic phase")
	}
	n := s.n
	if f == nil {
		f = &SparseChol{
			n:      n,
			perm:   s.perm,
			inv:    s.inv,
			diag:   make([]float64, n),
			colRow: s.colRow,
			colVal: make([][]float64, n),
		}
		for j := 0; j < n; j++ {
			f.colVal[j] = make([]float64, len(s.colRow[j]))
		}
	}
	// Place the matrix values into the permuted lower triangle.
	low := s.low
	for k, m := range s.lowMap {
		if m >= 0 {
			low.val[m] = a.val[k]
		}
	}

	// Up-looking numeric factorization over the cached patterns; the
	// arithmetic sequence matches the from-scratch FactorSparse exactly.
	x := make([]float64, n)
	cnt := make([]int32, n) // filled prefix of each factor column
	for i := 0; i < n; i++ {
		var d float64
		low.Row(i, func(j int, v float64) {
			if j == i {
				d = v
			} else {
				x[j] = v
			}
		})
		for _, j32 := range s.patRow[s.patPtr[i]:s.patPtr[i+1]] {
			j := int(j32)
			lij := x[j] / f.diag[j]
			x[j] = 0
			rows := s.colRow[j][:cnt[j]]
			vals := f.colVal[j]
			for k := range rows {
				x[rows[k]] -= vals[k] * lij
			}
			d -= lij * lij
			f.colVal[j][cnt[j]] = lij
			cnt[j]++
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("sparse: sparse Cholesky: %w at row %d of %d (diagonal after elimination %g)", ErrNotPositiveDefinite, i, n, d)
		}
		f.diag[i] = math.Sqrt(d)
	}
	return f, nil
}

// N returns the system dimension.
func (f *SparseChol) N() int { return f.n }

// NNZ returns the number of stored factor entries including the diagonal.
func (f *SparseChol) NNZ() int {
	total := f.n
	for _, c := range f.colRow {
		total += len(c)
	}
	return total
}

// Solve returns x with A·x = b.
func (f *SparseChol) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("sparse: Solve dimension mismatch")
	}
	y := PermuteVec(f.perm, b)
	// Forward: L y' = y (column-oriented sweep).
	for j := 0; j < f.n; j++ {
		y[j] /= f.diag[j]
		rows := f.colRow[j]
		vals := f.colVal[j]
		yj := y[j]
		for k := range rows {
			y[rows[k]] -= vals[k] * yj
		}
	}
	// Backward: Lᵀ x' = y'.
	for j := f.n - 1; j >= 0; j-- {
		rows := f.colRow[j]
		vals := f.colVal[j]
		s := y[j]
		for k := range rows {
			s -= vals[k] * y[rows[k]]
		}
		y[j] = s / f.diag[j]
	}
	x := make([]float64, f.n)
	for nw, old := range f.inv {
		x[old] = y[nw]
	}
	return x
}

// SolveTo writes the solution into dst.
func (f *SparseChol) SolveTo(dst, b []float64) {
	copy(dst, f.Solve(b))
}
