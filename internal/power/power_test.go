package power

import (
	"math"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func TestPaperCalibrationAnchors(t *testing.T) {
	// Sec. 4.1: 16-core layer at 1 GHz / 1 V has 7.6 W peak power and
	// 44.12 mm² area.
	ch := Example16Core()
	if ch.NumCores() != 16 {
		t.Fatalf("cores = %d", ch.NumCores())
	}
	if got := ch.PeakPower(); !units.WithinRel(got, 7.6, 1e-9) {
		t.Errorf("peak power = %g W, want 7.6", got)
	}
	if got := ch.Area(); !units.WithinRel(got, 44.12e-6, 1e-9) {
		t.Errorf("area = %g m², want 44.12 mm²", got)
	}
	if ch.Core.FClk != 1e9 || ch.Core.Vdd != 1.0 {
		t.Error("nominal operating point should be 1 GHz / 1 V")
	}
}

func TestCoreSpecValidates(t *testing.T) {
	c := CortexA9Like()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Units = append([]UnitSpec(nil), c.Units...)
	bad.Units[0].AreaFrac += 0.5
	if err := bad.Validate(); err == nil {
		t.Error("area fraction sum > 1 not caught")
	}
	bad = c
	bad.Units = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty units not caught")
	}
	bad = c
	bad.Area = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero area not caught")
	}
}

func TestDynamicScaling(t *testing.T) {
	c := CortexA9Like()
	base := c.Dynamic(1, c.Vdd, c.FClk)
	if !units.WithinRel(base, c.PeakDynamic, 1e-12) {
		t.Errorf("full activity dynamic = %g, want %g", base, c.PeakDynamic)
	}
	if got := c.Dynamic(0.5, c.Vdd, c.FClk); !units.WithinRel(got, base/2, 1e-12) {
		t.Error("dynamic not linear in activity")
	}
	// V²: 0.9 V gives 81 %.
	if got := c.Dynamic(1, 0.9, c.FClk); !units.WithinRel(got, base*0.81, 1e-12) {
		t.Error("dynamic not quadratic in V")
	}
	// f: half clock halves dynamic.
	if got := c.Dynamic(1, c.Vdd, c.FClk/2); !units.WithinRel(got, base/2, 1e-12) {
		t.Error("dynamic not linear in f")
	}
	if got := c.Dynamic(-1, c.Vdd, c.FClk); got != 0 {
		t.Error("negative activity should clamp to zero")
	}
}

func TestLeakageScaling(t *testing.T) {
	c := CortexA9Like()
	if got := c.Leak(c.Vdd); !units.WithinRel(got, c.Leakage, 1e-12) {
		t.Error("nominal leakage mismatch")
	}
	if got := c.Leak(0.5); !units.WithinRel(got, c.Leakage/2, 1e-12) {
		t.Error("leakage not linear in V")
	}
}

func TestUnitPowersSumToCoreTotal(t *testing.T) {
	c := CortexA9Like()
	for _, act := range []float64{0, 0.3, 1} {
		up := c.UnitPowers(act)
		var sum float64
		for _, p := range up {
			if p < 0 {
				t.Errorf("negative unit power at activity %g", act)
			}
			sum += p
		}
		if want := c.Total(act, c.Vdd, c.FClk); !units.WithinRel(sum, want, 1e-9) {
			t.Errorf("unit powers sum %g, want %g at activity %g", sum, want, act)
		}
	}
}

func TestIdleCoreStillLeaks(t *testing.T) {
	c := CortexA9Like()
	up := c.UnitPowers(0)
	for i, p := range up {
		if p <= 0 {
			t.Errorf("idle unit %s has power %g, leakage must remain", c.Units[i].Name, p)
		}
	}
}

func TestFloorplanUnitsMatch(t *testing.T) {
	c := CortexA9Like()
	fu := c.FloorplanUnits()
	if len(fu) != len(c.Units) {
		t.Fatal("length mismatch")
	}
	for i := range fu {
		if fu[i].Name != c.Units[i].Name || fu[i].AreaShare != c.Units[i].AreaFrac {
			t.Errorf("unit %d mismatch", i)
		}
	}
}

func TestChipFloorplanCoversDie(t *testing.T) {
	ch := Example16Core()
	fp, err := ch.Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range fp.Blocks {
		sum += b.Rect.Area()
	}
	if !units.WithinRel(sum, ch.Area(), 1e-9) {
		t.Errorf("blocks cover %g of %g", sum, ch.Area())
	}
	if len(fp.Tiles) != 16 {
		t.Errorf("tiles = %d", len(fp.Tiles))
	}
}

func TestPowerMapMatchesBlocks(t *testing.T) {
	ch := Example16Core()
	fp, err := ch.Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]float64, 16)
	for i := range acts {
		acts[i] = float64(i) / 15
	}
	pm, err := ch.PowerMap(acts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm) != len(fp.Blocks) {
		t.Fatalf("power map %d entries, %d blocks", len(pm), len(fp.Blocks))
	}
	var sum, want float64
	for _, p := range pm {
		sum += p
	}
	for _, a := range acts {
		want += ch.Core.Total(a, ch.Core.Vdd, ch.Core.FClk)
	}
	if !units.WithinRel(sum, want, 1e-9) {
		t.Errorf("total mapped power %g, want %g", sum, want)
	}
}

func TestPowerMapValidation(t *testing.T) {
	ch := Example16Core()
	if _, err := ch.PowerMap([]float64{1}); err == nil {
		t.Error("wrong activity count not caught")
	}
	bad := make([]float64, 16)
	bad[3] = 1.5
	if _, err := ch.PowerMap(bad); err == nil {
		t.Error("activity > 1 not caught")
	}
}

func TestImbalancePowers(t *testing.T) {
	ch := Example16Core()
	hi, lo := ch.ImbalancePowers(0)
	if !units.WithinRel(hi, lo, 1e-12) {
		t.Error("zero imbalance should give equal layers")
	}
	hi, lo = ch.ImbalancePowers(1)
	if !units.WithinRel(hi, 7.6, 1e-9) {
		t.Errorf("high layer = %g", hi)
	}
	// 100% imbalance: low layer has only leakage (20% of 7.6 W).
	if !units.WithinRel(lo, 7.6*0.2, 1e-9) {
		t.Errorf("idle layer = %g, want leakage only", lo)
	}
	// Clamped outside [0,1].
	_, lo2 := ch.ImbalancePowers(2)
	if lo2 != lo {
		t.Error("imbalance should clamp at 1")
	}
}

func TestImbalanceMonotone(t *testing.T) {
	ch := Example16Core()
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1))
		b := math.Abs(math.Mod(bRaw, 1))
		if a > b {
			a, b = b, a
		}
		_, loA := ch.ImbalancePowers(a)
		_, loB := ch.ImbalancePowers(b)
		return loA >= loB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewChipRejectsBadGrid(t *testing.T) {
	if _, err := NewChip(CortexA9Like(), 0, 4); err == nil {
		t.Error("0 rows not caught")
	}
	bad := CortexA9Like()
	bad.FClk = 0
	if _, err := NewChip(bad, 4, 4); err == nil {
		t.Error("invalid core not caught")
	}
}

func TestLeakageTemperatureModel(t *testing.T) {
	c := CortexA9Like()
	// At the nominal characterization point LeakAt matches Leak.
	if got := c.LeakAt(c.Vdd, LeakTNomC); !units.WithinRel(got, c.Leakage, 1e-12) {
		t.Errorf("LeakAt(nominal) = %g, want %g", got, c.Leakage)
	}
	// Roughly 2x per 25 C.
	ratio := c.LeakAt(c.Vdd, LeakTNomC+25) / c.LeakAt(c.Vdd, LeakTNomC)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("25 C leakage growth = %gx, want ~2x", ratio)
	}
	// Cooler silicon leaks less.
	if c.LeakAt(c.Vdd, 40) >= c.Leakage {
		t.Error("leakage should fall below nominal at 40 C")
	}
	// Monotone in temperature.
	if c.LeakAt(c.Vdd, 90) >= c.LeakAt(c.Vdd, 110) {
		t.Error("leakage must grow with temperature")
	}
}

func TestTotalAtCombines(t *testing.T) {
	c := CortexA9Like()
	want := c.Dynamic(0.7, c.Vdd, c.FClk) + c.LeakAt(c.Vdd, 95)
	if got := c.TotalAt(0.7, c.Vdd, c.FClk, 95); !units.WithinRel(got, want, 1e-12) {
		t.Errorf("TotalAt = %g, want %g", got, want)
	}
}
