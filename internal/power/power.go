// Package power is a compact architecture-level power and area model in the
// role McPAT plays for the paper: it produces per-unit area and power
// numbers for an ARM Cortex-A9-class core and aggregates them into the
// paper's example processor — a 40 nm, 1 GHz, 1 V, 16-core single layer
// with 7.6 W peak power and 44.12 mm² of die area.
//
// The model is analytic and calibrated to those published anchors: dynamic
// power splits across architectural units by fixed activity-weighted
// fractions, leakage is proportional to unit area, and both scale with
// voltage and frequency in the usual first-order way (dynamic ∝ V²·f,
// leakage ∝ V).
package power

import (
	"fmt"
	"math"

	"voltstack/internal/floorplan"
	"voltstack/internal/units"
)

// UnitSpec describes one architectural unit of a core.
type UnitSpec struct {
	Name     string
	AreaFrac float64 // fraction of the core area
	DynFrac  float64 // fraction of the core's peak dynamic power
}

// CoreSpec is the power/area model of one core at its nominal operating
// point.
type CoreSpec struct {
	Name        string
	Units       []UnitSpec
	Area        float64 // core area (m²)
	FClk        float64 // nominal clock (Hz)
	Vdd         float64 // nominal supply (V)
	PeakDynamic float64 // dynamic power at activity 1, nominal V/f (W)
	Leakage     float64 // leakage power at nominal V (W)
}

// CortexA9Like returns a dual-issue in-order ARM-class core calibrated so
// that 16 of them form the paper's example layer: 44.12 mm² and 7.6 W peak
// at 1 GHz / 1 V in 40 nm.
func CortexA9Like() CoreSpec {
	return CoreSpec{
		Name: "cortex-a9-like",
		Units: []UnitSpec{
			{"icache", 0.12, 0.10},
			{"ifu", 0.15, 0.15},
			{"exu", 0.12, 0.18},
			{"fpu", 0.22, 0.15},
			{"lsu", 0.10, 0.15},
			{"dcache", 0.12, 0.12},
			{"rob", 0.07, 0.10},
			{"l2slice", 0.10, 0.05},
		},
		Area:        44.12e-6 / 16, // m²
		FClk:        1 * units.Gigahertz,
		Vdd:         1.0,
		PeakDynamic: 7.6 / 16 * 0.80, // W; 80 % of peak is dynamic at 40 nm
		Leakage:     7.6 / 16 * 0.20, // W
	}
}

// Validate checks that the unit fractions are complete and positive.
func (c CoreSpec) Validate() error {
	if len(c.Units) == 0 {
		return fmt.Errorf("power: core %q has no units", c.Name)
	}
	var areaSum, dynSum float64
	for _, u := range c.Units {
		if u.AreaFrac <= 0 || u.DynFrac < 0 {
			return fmt.Errorf("power: unit %q has invalid fractions", u.Name)
		}
		areaSum += u.AreaFrac
		dynSum += u.DynFrac
	}
	if !units.WithinRel(areaSum, 1, 1e-9) {
		return fmt.Errorf("power: area fractions of %q sum to %g, want 1", c.Name, areaSum)
	}
	if !units.WithinRel(dynSum, 1, 1e-9) {
		return fmt.Errorf("power: dynamic fractions of %q sum to %g, want 1", c.Name, dynSum)
	}
	if c.Area <= 0 || c.FClk <= 0 || c.Vdd <= 0 || c.PeakDynamic <= 0 || c.Leakage < 0 {
		return fmt.Errorf("power: core %q has invalid scalar parameters", c.Name)
	}
	return nil
}

// PeakPower returns dynamic-at-activity-1 plus leakage at nominal V/f.
func (c CoreSpec) PeakPower() float64 { return c.PeakDynamic + c.Leakage }

// Dynamic returns the core dynamic power at the given activity factor
// (0..1) and operating point, scaling as activity · (V/Vnom)² · (f/fnom).
func (c CoreSpec) Dynamic(activity, vdd, f float64) float64 {
	if activity < 0 {
		activity = 0
	}
	vr := vdd / c.Vdd
	return c.PeakDynamic * activity * vr * vr * (f / c.FClk)
}

// Leak returns the leakage power at supply vdd (first-order linear in V)
// at the nominal characterization temperature.
func (c CoreSpec) Leak(vdd float64) float64 {
	return c.Leakage * vdd / c.Vdd
}

// Leakage temperature model: subthreshold leakage grows roughly
// exponentially with temperature; LeakTNom is the characterization
// temperature and LeakT0 the e-folding scale (a 2x increase per ~25 C is
// typical for sub-100nm silicon).
const (
	LeakTNomC = 85.0
	LeakT0C   = 36.0 // 2x per ~25 C
)

// LeakAt returns the leakage power at supply vdd and junction temperature
// tempC, growing exponentially away from the nominal 85 C point. This is
// the coupling term of the electrothermal fixed-point iteration.
func (c CoreSpec) LeakAt(vdd, tempC float64) float64 {
	return c.Leak(vdd) * math.Exp((tempC-LeakTNomC)/LeakT0C)
}

// TotalAt returns dynamic plus temperature-dependent leakage.
func (c CoreSpec) TotalAt(activity, vdd, f, tempC float64) float64 {
	return c.Dynamic(activity, vdd, f) + c.LeakAt(vdd, tempC)
}

// Total returns dynamic plus leakage at the given operating point.
func (c CoreSpec) Total(activity, vdd, f float64) float64 {
	return c.Dynamic(activity, vdd, f) + c.Leak(vdd)
}

// UnitPowers returns the per-unit total power (W), in the order of
// c.Units, at the given activity and nominal V/f: dynamic splits by
// DynFrac, leakage by AreaFrac.
func (c CoreSpec) UnitPowers(activity float64) []float64 {
	return c.UnitPowersAt(activity, LeakTNomC)
}

// UnitPowersAt is UnitPowers with temperature-dependent leakage at the
// given junction temperature (°C).
func (c CoreSpec) UnitPowersAt(activity, tempC float64) []float64 {
	dyn := c.Dynamic(activity, c.Vdd, c.FClk)
	leak := c.LeakAt(c.Vdd, tempC)
	out := make([]float64, len(c.Units))
	for i, u := range c.Units {
		out[i] = dyn*u.DynFrac + leak*u.AreaFrac
	}
	return out
}

// FloorplanUnits converts the unit list into floorplan placement units.
func (c CoreSpec) FloorplanUnits() []floorplan.Unit {
	out := make([]floorplan.Unit, len(c.Units))
	for i, u := range c.Units {
		out[i] = floorplan.Unit{Name: u.Name, AreaShare: u.AreaFrac}
	}
	return out
}

// Chip aggregates identical cores into one silicon layer arranged in a
// Rows x Cols grid.
type Chip struct {
	Core       CoreSpec
	Rows, Cols int
}

// NewChip returns a chip of rows x cols cores.
func NewChip(core CoreSpec, rows, cols int) (*Chip, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("power: invalid core grid %dx%d", rows, cols)
	}
	return &Chip{Core: core, Rows: rows, Cols: cols}, nil
}

// Example16Core returns the paper's 16-core layer (4x4 A9-class cores).
func Example16Core() *Chip {
	ch, err := NewChip(CortexA9Like(), 4, 4)
	if err != nil {
		panic(err) // calibration constants are wrong if this fires
	}
	return ch
}

// NumCores returns Rows*Cols.
func (ch *Chip) NumCores() int { return ch.Rows * ch.Cols }

// Area returns the total die area (m²).
func (ch *Chip) Area() float64 { return float64(ch.NumCores()) * ch.Core.Area }

// PeakPower returns the all-cores-active power at nominal V/f (W).
func (ch *Chip) PeakPower() float64 {
	return float64(ch.NumCores()) * ch.Core.PeakPower()
}

// Die returns the die outline, assuming square core tiles.
func (ch *Chip) Die() floorplan.Rect {
	tile := math.Sqrt(ch.Core.Area)
	return floorplan.Rect{X: 0, Y: 0, W: tile * float64(ch.Cols), H: tile * float64(ch.Rows)}
}

// Floorplan places every core's units on the die.
func (ch *Chip) Floorplan() (*floorplan.Floorplan, error) {
	return floorplan.Tile(ch.Die(), ch.Rows, ch.Cols, ch.Core.FloorplanUnits(), "core")
}

// PowerMap returns the per-block power values matching Floorplan().Blocks
// for the given per-core activity factors (length NumCores), at nominal
// V/f and characterization temperature.
func (ch *Chip) PowerMap(activities []float64) ([]float64, error) {
	temps := make([]float64, ch.NumCores())
	for i := range temps {
		temps[i] = LeakTNomC
	}
	return ch.PowerMapAt(activities, temps)
}

// PowerMapAt is PowerMap with per-core junction temperatures (°C), the
// input to an electrothermal fixed-point iteration.
func (ch *Chip) PowerMapAt(activities, tempsC []float64) ([]float64, error) {
	if len(activities) != ch.NumCores() {
		return nil, fmt.Errorf("power: need %d activities, got %d", ch.NumCores(), len(activities))
	}
	if len(tempsC) != ch.NumCores() {
		return nil, fmt.Errorf("power: need %d temperatures, got %d", ch.NumCores(), len(tempsC))
	}
	nu := len(ch.Core.Units)
	out := make([]float64, 0, ch.NumCores()*nu)
	for i, a := range activities {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("power: activity %g out of [0,1]", a)
		}
		out = append(out, ch.Core.UnitPowersAt(a, tempsC[i])...)
	}
	return out, nil
}

// LayerPower returns the total layer power for a uniform activity.
func (ch *Chip) LayerPower(activity float64) float64 {
	return float64(ch.NumCores()) * ch.Core.Total(activity, ch.Core.Vdd, ch.Core.FClk)
}

// ImbalancePowers returns (high, low) layer powers for the paper's
// interleaved benchmark: high layers fully active, low layers with
// imbalance·100 % less dynamic power (leakage always present).
// imbalance = 1 means the low layers are idle (leakage only).
func (ch *Chip) ImbalancePowers(imbalance float64) (high, low float64) {
	high = ch.LayerPower(1)
	low = ch.LayerPower(1 - units.Clamp(imbalance, 0, 1))
	return high, low
}
