package power

import (
	"math"
	"testing"
	"testing/quick"

	"voltstack/internal/units"
)

func TestAlphaPowerNominal(t *testing.T) {
	m := DefaultAlphaPower()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.FreqScale(1.0, 1.0); !units.WithinRel(got, 1, 1e-12) {
		t.Errorf("FreqScale(nominal) = %g", got)
	}
	bad := AlphaPowerModel{}
	if err := bad.Validate(); err == nil {
		t.Error("zero model not caught")
	}
}

func TestAlphaPowerMonotone(t *testing.T) {
	m := DefaultAlphaPower()
	prev := 0.0
	for _, v := range []float64{0.5, 0.7, 0.9, 1.0, 1.1} {
		s := m.FreqScale(v, 1.0)
		if s <= prev {
			t.Fatalf("frequency must grow with voltage: %g at %g", s, v)
		}
		prev = s
	}
	// Below threshold nothing switches.
	if m.FreqScale(0.3, 1.0) != 0 {
		t.Error("sub-threshold should give zero frequency")
	}
}

func TestFrequencyLossSensitivity(t *testing.T) {
	m := DefaultAlphaPower()
	// Near threshold the alpha-power model amplifies droop: a 5% supply
	// dip costs more than 5% of frequency at Vt=0.35, alpha=1.3.
	loss := m.FrequencyLossFrac(0.05, 1.0)
	if loss <= 0.05 {
		t.Errorf("5%% droop should cost more than 5%% frequency, got %g", loss)
	}
	if m.FrequencyLossFrac(0, 1.0) != 0 {
		t.Error("zero droop should cost nothing")
	}
}

func TestSupplyRaiseAndPowerOverhead(t *testing.T) {
	// 5% droop: raise Vdd by 1/0.95 - 1 ≈ 5.26%; power overhead = r²-1.
	raise := SupplyRaiseFrac(0.05)
	if !units.WithinRel(raise, 1/0.95-1, 1e-12) {
		t.Errorf("raise = %g", raise)
	}
	over := PowerOverheadFrac(0.05)
	if !units.WithinRel(over, (1/0.95)*(1/0.95)-1, 1e-12) {
		t.Errorf("overhead = %g", over)
	}
	if !math.IsInf(SupplyRaiseFrac(1), 1) {
		t.Error("total droop should need infinite supply")
	}
}

func TestGuardbandProperties(t *testing.T) {
	m := DefaultAlphaPower()
	f := func(raw float64) bool {
		d := math.Abs(math.Mod(raw, 0.5)) // droop in [0, 0.5)
		fl := m.FrequencyLossFrac(d, 1.0)
		po := PowerOverheadFrac(d)
		return fl >= 0 && fl <= 1 && po >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Both costs are monotone in droop.
	prevF, prevP := -1.0, -1.0
	for _, d := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		fl, po := m.FrequencyLossFrac(d, 1.0), PowerOverheadFrac(d)
		if fl < prevF || po < prevP {
			t.Fatalf("guardband costs must be monotone at droop %g", d)
		}
		prevF, prevP = fl, po
	}
}
