package power

import (
	"fmt"
	"math"
)

// AlphaPowerModel is Sakurai's alpha-power delay model: the maximum clock
// frequency at supply v scales as (v − Vt)^Alpha / v. It converts a PDN's
// voltage droop into the two costs a designer can pay for it — a raised
// supply (power) or a slowed clock (performance).
type AlphaPowerModel struct {
	Vt    float64 // threshold voltage (V)
	Alpha float64 // velocity-saturation exponent (≈1.3 in short channel)
}

// DefaultAlphaPower returns typical 40 nm values.
func DefaultAlphaPower() AlphaPowerModel {
	return AlphaPowerModel{Vt: 0.35, Alpha: 1.3}
}

// Validate checks the model parameters.
func (m AlphaPowerModel) Validate() error {
	if m.Vt <= 0 || m.Alpha <= 0 {
		return fmt.Errorf("power: invalid alpha-power model %+v", m)
	}
	return nil
}

// FreqScale returns fmax(v)/fmax(vnom); v must exceed Vt.
func (m AlphaPowerModel) FreqScale(v, vnom float64) float64 {
	if v <= m.Vt || vnom <= m.Vt {
		return 0
	}
	f := func(x float64) float64 { return math.Pow(x-m.Vt, m.Alpha) / x }
	return f(v) / f(vnom)
}

// FrequencyLossFrac returns the fraction of clock frequency given up when
// the worst-case supply dips to vnom·(1−droopFrac) and the design slows
// its clock to stay correct.
func (m AlphaPowerModel) FrequencyLossFrac(droopFrac, vnom float64) float64 {
	v := vnom * (1 - droopFrac)
	return 1 - m.FreqScale(v, vnom)
}

// SupplyRaiseFrac returns the fractional supply increase that restores
// the worst-case device voltage to vnom under a droop of droopFrac:
// Vdd' = vnom/(1−droop).
func SupplyRaiseFrac(droopFrac float64) float64 {
	if droopFrac >= 1 {
		return math.Inf(1)
	}
	return 1/(1-droopFrac) - 1
}

// PowerOverheadFrac returns the dynamic-power overhead of that supply
// raise (dynamic power scales as V²).
func PowerOverheadFrac(droopFrac float64) float64 {
	r := 1 + SupplyRaiseFrac(droopFrac)
	return r*r - 1
}
