// Package thermal is a pre-RTL steady-state thermal model for 3D stacks in
// the role HotSpot plays for the paper: it verifies that the example
// many-core processor can be stacked up to 8 layers under conventional
// air cooling while keeping the hotspot temperature below the customary
// 100 °C limit (Sec. 4.1).
//
// The model is a 3D thermal resistance network: each silicon layer is a
// lateral conduction mesh, adjacent layers couple through thinned silicon
// plus a bond/TIM interface, the layer nearest the heat sink couples
// through a thermal-interface layer into a lumped spreader+sink+convection
// resistance, and per-cell power maps inject heat. The network reuses the
// MNA solver (temperature ≡ voltage, heat flow ≡ current).
package thermal

import (
	"fmt"
	"math"

	"voltstack/internal/circuit"
	"voltstack/internal/floorplan"
	"voltstack/internal/units"
)

// Materials holds the conduction properties of the stack.
type Materials struct {
	SiK       float64 // silicon thermal conductivity (W/mK)
	SiThick   float64 // thinned die thickness (m)
	BondK     float64 // inter-layer bond/underfill conductivity (W/mK)
	BondThick float64 // bond layer thickness (m)
	TIMK      float64 // thermal interface material conductivity (W/mK)
	TIMThick  float64 // TIM thickness (m)
}

// DefaultMaterials returns typical 3D-IC stack values: 100 um thinned
// dies, a 15 um underfill bond, and a standard TIM.
func DefaultMaterials() Materials {
	return Materials{
		SiK:       150,
		SiThick:   100 * units.Micrometer,
		BondK:     4,
		BondThick: 15 * units.Micrometer,
		TIMK:      4,
		TIMThick:  50 * units.Micrometer,
	}
}

// Config describes one stack thermal scenario.
type Config struct {
	Layers int
	Die    floorplan.Rect
	Nx, Ny int
	Mat    Materials

	// SinkR is the lumped spreader + heat sink + convection resistance to
	// ambient (K/W). 0.25 K/W models a good air cooler.
	SinkR float64
	// AmbientC is the ambient air temperature in °C.
	AmbientC float64
	// Solve configures the linear solver.
	Solve circuit.SolveOptions
}

// DefaultConfig returns an air-cooled configuration for the given die.
// The heat sink attaches to the top of the stack (layer Layers-1), the
// standard arrangement for face-down 3D stacks.
func DefaultConfig(die floorplan.Rect, layers int) Config {
	return Config{
		Layers:   layers,
		Die:      die,
		Nx:       16,
		Ny:       16,
		Mat:      DefaultMaterials(),
		SinkR:    0.25,
		AmbientC: 40,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Layers < 1:
		return fmt.Errorf("thermal: need at least 1 layer")
	case c.Die.W <= 0 || c.Die.H <= 0:
		return fmt.Errorf("thermal: degenerate die")
	case c.Nx < 2 || c.Ny < 2:
		return fmt.Errorf("thermal: mesh too coarse")
	case c.Mat.SiK <= 0 || c.Mat.BondK <= 0 || c.Mat.TIMK <= 0:
		return fmt.Errorf("thermal: non-positive conductivity")
	case c.Mat.SiThick <= 0 || c.Mat.BondThick <= 0 || c.Mat.TIMThick <= 0:
		return fmt.Errorf("thermal: non-positive thickness")
	case c.SinkR <= 0:
		return fmt.Errorf("thermal: non-positive sink resistance")
	}
	return nil
}

// Result holds a solved temperature field.
type Result struct {
	TempsC   [][]float64 // per layer, per cell (row-major), °C
	MaxC     float64     // hotspot temperature, °C
	MaxLayer int         // layer containing the hotspot
	SinkC    float64     // heat-sink base temperature, °C
}

// Solve computes steady-state temperatures for the given per-layer,
// per-cell power maps (watts; each layer slice has Nx*Ny entries).
func Solve(cfg Config, powerMaps [][]float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(powerMaps) != cfg.Layers {
		return nil, fmt.Errorf("thermal: need %d power maps, got %d", cfg.Layers, len(powerMaps))
	}
	nCells := cfg.Nx * cfg.Ny
	for l, pm := range powerMaps {
		if len(pm) != nCells {
			return nil, fmt.Errorf("thermal: layer %d power map has %d cells, want %d", l, len(pm), nCells)
		}
	}

	cellW := cfg.Die.W / float64(cfg.Nx)
	cellH := cfg.Die.H / float64(cfg.Ny)
	cellArea := cellW * cellH

	// Lateral conduction: G = k * t * (cross section / length).
	gLatX := cfg.Mat.SiK * cfg.Mat.SiThick * cellH / cellW
	gLatY := cfg.Mat.SiK * cfg.Mat.SiThick * cellW / cellH
	// Vertical layer-to-layer: silicon plus bond in series, per cell.
	rVert := cfg.Mat.SiThick/cfg.Mat.SiK + cfg.Mat.BondThick/cfg.Mat.BondK
	gVert := cellArea / rVert
	// Top layer to the sink node through the TIM.
	gTIM := cellArea / (cfg.Mat.TIMThick / cfg.Mat.TIMK)

	net := circuit.New()
	net.Nodes(cfg.Layers * nCells)
	node := func(layer, cell int) int { return layer*nCells + cell }
	sink := net.Node()

	for l := 0; l < cfg.Layers; l++ {
		for iy := 0; iy < cfg.Ny; iy++ {
			for ix := 0; ix < cfg.Nx; ix++ {
				c := iy*cfg.Nx + ix
				if ix+1 < cfg.Nx {
					net.AddResistor(node(l, c), node(l, c+1), 1/gLatX)
				}
				if iy+1 < cfg.Ny {
					net.AddResistor(node(l, c), node(l, c+cfg.Nx), 1/gLatY)
				}
				if l+1 < cfg.Layers {
					net.AddResistor(node(l, c), node(l+1, c), 1/gVert)
				}
			}
		}
	}
	top := cfg.Layers - 1
	for c := 0; c < nCells; c++ {
		net.AddResistor(node(top, c), sink, 1/gTIM)
	}
	// Ambient is the reference; the sink couples to it through SinkR.
	net.AddRailTie(sink, cfg.SinkR, 0)

	for l, pm := range powerMaps {
		for c, w := range pm {
			if w < 0 {
				return nil, fmt.Errorf("thermal: negative power %g at layer %d cell %d", w, l, c)
			}
			if w > 0 {
				net.AddLoad(circuit.Ground, node(l, c), w)
			}
		}
	}

	sol, err := net.Solve(cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}

	res := &Result{
		TempsC: make([][]float64, cfg.Layers),
		MaxC:   math.Inf(-1),
		SinkC:  cfg.AmbientC + sol.V(sink),
	}
	for l := 0; l < cfg.Layers; l++ {
		ts := make([]float64, nCells)
		for c := 0; c < nCells; c++ {
			t := cfg.AmbientC + sol.V(node(l, c))
			ts[c] = t
			if t > res.MaxC {
				res.MaxC = t
				res.MaxLayer = l
			}
		}
		res.TempsC[l] = ts
	}
	return res, nil
}

// MaxLayersUnder returns the largest layer count (1..limit) whose hotspot
// stays below maxC when every layer dissipates the given uniform power
// map, or 0 if even a single layer exceeds it.
func MaxLayersUnder(cfg Config, layerPower []float64, maxC float64, limit int) (int, error) {
	best := 0
	for n := 1; n <= limit; n++ {
		c := cfg
		c.Layers = n
		maps := make([][]float64, n)
		for i := range maps {
			maps[i] = layerPower
		}
		r, err := Solve(c, maps)
		if err != nil {
			return 0, err
		}
		if r.MaxC < maxC {
			best = n
		} else {
			break
		}
	}
	return best, nil
}
