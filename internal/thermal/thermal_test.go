package thermal

import (
	"math"
	"testing"

	"voltstack/internal/floorplan"
	"voltstack/internal/power"
	"voltstack/internal/units"
)

func chipCells(t *testing.T, cfg Config, activity float64) []float64 {
	t.Helper()
	chip := power.Example16Core()
	fp, err := chip.Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]float64, 16)
	for i := range acts {
		acts[i] = activity
	}
	pm, err := chip.PowerMap(acts)
	if err != nil {
		t.Fatal(err)
	}
	raster := floorplan.NewRaster(chip.Die(), cfg.Nx, cfg.Ny)
	cells, err := raster.Distribute(fp.Blocks, pm)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func stackMaps(cells []float64, layers int) [][]float64 {
	maps := make([][]float64, layers)
	for i := range maps {
		maps[i] = cells
	}
	return maps
}

func TestValidation(t *testing.T) {
	die := floorplan.Rect{W: 6.6e-3, H: 6.6e-3}
	good := DefaultConfig(die, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Die.W = 0 },
		func(c *Config) { c.Nx = 1 },
		func(c *Config) { c.Mat.SiK = 0 },
		func(c *Config) { c.Mat.TIMThick = 0 },
		func(c *Config) { c.SinkR = 0 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 3)
	maps := stackMaps(make([]float64, cfg.Nx*cfg.Ny), 3)
	r, err := Solve(cfg, maps)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(r.MaxC, cfg.AmbientC, 1e-6, 1e-9) {
		t.Errorf("unpowered stack at %g C, want ambient %g", r.MaxC, cfg.AmbientC)
	}
}

func TestSingleLayerEnergyConservation(t *testing.T) {
	// Total heat through the sink resistance equals total power:
	// Tsink - Tamb = P * SinkR exactly.
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 1)
	cells := chipCells(t, cfg, 1)
	var total float64
	for _, w := range cells {
		total += w
	}
	r, err := Solve(cfg, stackMaps(cells, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.AmbientC + total*cfg.SinkR
	if !units.ApproxEqual(r.SinkC, want, 1e-6, 1e-9) {
		t.Errorf("sink temp %g, want %g", r.SinkC, want)
	}
}

func TestTemperatureMonotoneInLayers(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 1)
	cells := chipCells(t, cfg, 1)
	prev := 0.0
	for _, L := range []int{1, 2, 4, 8} {
		c := cfg
		c.Layers = L
		r, err := Solve(c, stackMaps(cells, L))
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxC <= prev {
			t.Errorf("hotspot must rise with layer count: %g at %d layers", r.MaxC, L)
		}
		prev = r.MaxC
	}
}

func TestHotspotFarthestFromSink(t *testing.T) {
	// With the sink on top, the bottom layer runs hottest.
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 6)
	cells := chipCells(t, cfg, 1)
	r, err := Solve(cfg, stackMaps(cells, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxLayer != 0 {
		t.Errorf("hotspot in layer %d, want bottom layer 0", r.MaxLayer)
	}
}

func TestPaperEightLayerFeasibility(t *testing.T) {
	// Sec. 4.1: up to 8 layers of the 16-core processor stay below 100 C
	// with a conventional air-cooling solution; more layers exceed it.
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 8)
	cells := chipCells(t, cfg, 1)
	n, err := MaxLayersUnder(cfg, cells, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("max layers under 100 C = %d, want 8 (paper)", n)
	}
	r, err := Solve(cfg, stackMaps(cells, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxC >= 100 || r.MaxC < 80 {
		t.Errorf("8-layer hotspot %g C, want just under 100", r.MaxC)
	}
}

func TestBetterCoolingLowersTemps(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 4)
	cells := chipCells(t, cfg, 1)
	base, err := Solve(cfg, stackMaps(cells, 4))
	if err != nil {
		t.Fatal(err)
	}
	better := cfg
	better.SinkR = cfg.SinkR / 4 // e.g. liquid cooling
	rb, err := Solve(better, stackMaps(cells, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rb.MaxC >= base.MaxC {
		t.Errorf("better sink %g should beat %g", rb.MaxC, base.MaxC)
	}
}

func TestHotBlockCreatesLocalHotspot(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 2)
	n := cfg.Nx * cfg.Ny
	cells := make([]float64, n)
	hot := (cfg.Ny/2)*cfg.Nx + cfg.Nx/2
	cells[hot] = 20 // 20 W point source
	r, err := Solve(cfg, stackMaps(cells, 2))
	if err != nil {
		t.Fatal(err)
	}
	corner := r.TempsC[0][0]
	center := r.TempsC[0][hot]
	if center <= corner {
		t.Errorf("hot cell %g should exceed corner %g", center, corner)
	}
}

func TestUniformPowerSymmetric(t *testing.T) {
	die := floorplan.Rect{W: 4e-3, H: 4e-3}
	cfg := DefaultConfig(die, 2)
	n := cfg.Nx * cfg.Ny
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = 0.05
	}
	r, err := Solve(cfg, stackMaps(cells, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Four corners of each layer must match by symmetry.
	for l := 0; l < 2; l++ {
		c00 := r.TempsC[l][0]
		for _, idx := range []int{cfg.Nx - 1, (cfg.Ny - 1) * cfg.Nx, n - 1} {
			if math.Abs(r.TempsC[l][idx]-c00) > 1e-6 {
				t.Errorf("layer %d corner asymmetry: %g vs %g", l, r.TempsC[l][idx], c00)
			}
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 2)
	if _, err := Solve(cfg, stackMaps(make([]float64, 4), 2)); err == nil {
		t.Error("wrong cell count not caught")
	}
	if _, err := Solve(cfg, stackMaps(make([]float64, cfg.Nx*cfg.Ny), 3)); err == nil {
		t.Error("wrong layer count not caught")
	}
	bad := make([]float64, cfg.Nx*cfg.Ny)
	bad[3] = -1
	if _, err := Solve(cfg, stackMaps(bad, 2)); err == nil {
		t.Error("negative power not caught")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 4)
	cells := chipCells(t, cfg, 1)
	maps := stackMaps(cells, 4)
	ss, err := Solve(cfg, maps)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolveTransient(cfg, maps, TransientOptions{DT: 2e-3, Duration: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(tr.FinalC, ss.MaxC, 0.5, 0.02) {
		t.Errorf("transient settles at %.2f C, steady state %.2f C", tr.FinalC, ss.MaxC)
	}
}

func TestTransientHeatingMonotone(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 2)
	cells := chipCells(t, cfg, 1)
	tr, err := SolveTransient(cfg, stackMaps(cells, 2), TransientOptions{DT: 2e-3, Duration: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.HotspotC[0] > cfg.AmbientC+0.5 {
		t.Errorf("cold start at %.1f C, want ambient %.1f", tr.HotspotC[0], cfg.AmbientC)
	}
	for k := 1; k < len(tr.HotspotC); k++ {
		if tr.HotspotC[k] < tr.HotspotC[k-1]-1e-9 {
			t.Fatalf("heating curve not monotone at step %d", k)
		}
	}
}

func TestTransientTimeTo100C(t *testing.T) {
	// A 10-layer stack exceeds 100 C in steady state, so the heating curve
	// must cross the limit at a finite time; thermal capacitance buys a
	// grace period of many milliseconds.
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 10)
	cells := chipCells(t, cfg, 1)
	tr, err := SolveTransient(cfg, stackMaps(cells, 10), TransientOptions{DT: 2e-3, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(tr.TimeTo100C, 1) {
		t.Fatal("10-layer stack should reach 100 C")
	}
	if tr.TimeTo100C < 5e-3 {
		t.Errorf("time-to-limit %.4f s implausibly short", tr.TimeTo100C)
	}
	// An 8-layer stack stays under the limit forever.
	cfg8 := DefaultConfig(die, 8)
	tr8, err := SolveTransient(cfg8, stackMaps(cells, 8), TransientOptions{DT: 4e-3, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tr8.TimeTo100C, 1) {
		t.Errorf("8-layer stack crossed 100 C at %.3f s, should stay under", tr8.TimeTo100C)
	}
}

func TestTransientValidation(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 2)
	cells := chipCells(t, cfg, 1)
	if _, err := SolveTransient(cfg, stackMaps(cells, 2), TransientOptions{DT: 0, Duration: 1}); err == nil {
		t.Error("zero DT not caught")
	}
	if _, err := SolveTransient(cfg, stackMaps(cells, 3), TransientOptions{DT: 1e-3, Duration: 1}); err == nil {
		t.Error("wrong layer count not caught")
	}
}

func TestMicrochannelBreaksThermalCeiling(t *testing.T) {
	// The paper's intro: volumetric cooling removes the stack-depth limit
	// that air cooling imposes (8 layers), leaving power delivery as the
	// binding constraint.
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 8)
	cells := chipCells(t, cfg, 1)
	mc := DefaultMicrochannel()
	nAir, err := MaxLayersUnder(cfg, cells, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	nMC, err := MaxLayersUnderMicrochannel(cfg, mc, cells, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if nAir != 8 {
		t.Errorf("air-cooled limit = %d, want 8", nAir)
	}
	if nMC < 3*nAir {
		t.Errorf("microchannel limit = %d, want far beyond the air-cooled %d", nMC, nAir)
	}
}

func TestMicrochannelCoolsEveryLayer(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 8)
	cells := chipCells(t, cfg, 1)
	air, err := Solve(cfg, stackMaps(cells, 8))
	if err != nil {
		t.Fatal(err)
	}
	mcr, err := SolveMicrochannel(cfg, DefaultMicrochannel(), stackMaps(cells, 8))
	if err != nil {
		t.Fatal(err)
	}
	if mcr.MaxC >= air.MaxC-10 {
		t.Errorf("microchannel hotspot %.1f should be far below air %.1f", mcr.MaxC, air.MaxC)
	}
	// The bottom layer no longer dominates: per-layer spread collapses.
	spread := func(r *Result) float64 {
		lo, hi := 1e300, -1e300
		for l := range r.TempsC {
			var mean float64
			for _, v := range r.TempsC[l] {
				mean += v
			}
			mean /= float64(len(r.TempsC[l]))
			lo = math.Min(lo, mean)
			hi = math.Max(hi, mean)
		}
		return hi - lo
	}
	if spread(mcr) >= spread(air)/2 {
		t.Errorf("volumetric cooling should flatten the layer gradient: %.1f vs %.1f",
			spread(mcr), spread(air))
	}
}

func TestMicrochannelValidation(t *testing.T) {
	die := power.Example16Core().Die()
	cfg := DefaultConfig(die, 2)
	cells := chipCells(t, cfg, 1)
	bad := DefaultMicrochannel()
	bad.CellConvR = 0
	if _, err := SolveMicrochannel(cfg, bad, stackMaps(cells, 2)); err == nil {
		t.Error("invalid microchannel not caught")
	}
	if _, err := SolveMicrochannel(cfg, DefaultMicrochannel(), stackMaps(cells, 3)); err == nil {
		t.Error("layer mismatch not caught")
	}
}
