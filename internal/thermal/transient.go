package thermal

import (
	"fmt"
	"math"

	"voltstack/internal/circuit"
)

// SiVolHeatCap is the volumetric heat capacity of silicon (J/(m³·K)),
// which sets the stack's thermal time constants in transient analysis.
const SiVolHeatCap = 1.63e6

// TransientOptions configures a heating-curve run.
type TransientOptions struct {
	DT       float64 // time step (s)
	Duration float64 // simulated time (s)
}

// TransientResult holds the heating curve of the stack's critical layer.
type TransientResult struct {
	Times    []float64 // seconds
	HotspotC []float64 // hottest probed temperature per step
	// TimeToC returns when the hotspot first crosses a threshold; exposed
	// precomputed for the conventional 100 °C limit.
	TimeTo100C float64 // seconds; +Inf if never reached within Duration
	FinalC     float64
}

// SolveTransient integrates the stack's heating under constant power maps
// starting from a uniform initial temperature. The network is the
// steady-state conduction model plus per-cell silicon heat capacity, so
// the result converges to Solve's temperatures as t → ∞.
//
// The probed cells are the bottom layer (farthest from the sink, where
// the hotspot forms) — the returned curve tracks its maximum.
func SolveTransient(cfg Config, powerMaps [][]float64, opts TransientOptions) (*TransientResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.DT <= 0 || opts.Duration <= 0 {
		return nil, fmt.Errorf("thermal: need positive DT and Duration")
	}
	nCells := cfg.Nx * cfg.Ny
	if len(powerMaps) != cfg.Layers {
		return nil, fmt.Errorf("thermal: need %d power maps, got %d", cfg.Layers, len(powerMaps))
	}
	for l, pm := range powerMaps {
		if len(pm) != nCells {
			return nil, fmt.Errorf("thermal: layer %d map has %d cells, want %d", l, len(pm), nCells)
		}
	}

	cellW := cfg.Die.W / float64(cfg.Nx)
	cellH := cfg.Die.H / float64(cfg.Ny)
	cellArea := cellW * cellH
	cCell := cellArea * cfg.Mat.SiThick * SiVolHeatCap

	gLatX := cfg.Mat.SiK * cfg.Mat.SiThick * cellH / cellW
	gLatY := cfg.Mat.SiK * cfg.Mat.SiThick * cellW / cellH
	rVert := cfg.Mat.SiThick/cfg.Mat.SiK + cfg.Mat.BondThick/cfg.Mat.BondK
	gVert := cellArea / rVert
	gTIM := cellArea / (cfg.Mat.TIMThick / cfg.Mat.TIMK)

	net := circuit.New()
	net.Nodes(cfg.Layers * nCells)
	node := func(layer, cell int) int { return layer*nCells + cell }
	sink := net.Node()

	for l := 0; l < cfg.Layers; l++ {
		for iy := 0; iy < cfg.Ny; iy++ {
			for ix := 0; ix < cfg.Nx; ix++ {
				c := iy*cfg.Nx + ix
				if ix+1 < cfg.Nx {
					net.AddResistor(node(l, c), node(l, c+1), 1/gLatX)
				}
				if iy+1 < cfg.Ny {
					net.AddResistor(node(l, c), node(l, c+cfg.Nx), 1/gLatY)
				}
				if l+1 < cfg.Layers {
					net.AddResistor(node(l, c), node(l+1, c), 1/gVert)
				}
				net.AddCapacitor(node(l, c), circuit.Ground, cCell)
			}
		}
	}
	top := cfg.Layers - 1
	for c := 0; c < nCells; c++ {
		net.AddResistor(node(top, c), sink, 1/gTIM)
	}
	net.AddRailTie(sink, cfg.SinkR, 0)

	// Constant heating from t=0; the run starts from a uniform ambient
	// (cold) stack because the transient loads are zero at t=0 and
	// InitDC is false.
	for l, pm := range powerMaps {
		for c, w := range pm {
			if w < 0 {
				return nil, fmt.Errorf("thermal: negative power")
			}
			if w > 0 {
				w := w
				net.AddTransientLoad(circuit.Ground, node(l, c), func(t float64) float64 {
					if t > 0 {
						return w
					}
					return 0
				})
			}
		}
	}

	// Probes: the bottom layer (hotspot) cells.
	probes := make([]int, nCells)
	for c := range probes {
		probes[c] = node(0, c)
	}
	steps := int(opts.Duration / opts.DT)
	if steps < 1 {
		steps = 1
	}
	tr, err := net.Transient(circuit.TransientOptions{
		DT:     opts.DT,
		Steps:  steps,
		InitDC: false, // uniform start at StartC
		Solve:  cfg.Solve,
	}, probes)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}

	res := &TransientResult{TimeTo100C: math.Inf(1)}
	offset := cfg.AmbientC
	for k, t := range tr.Times {
		hot := math.Inf(-1)
		for p := range probes {
			if v := tr.V[p][k] + offset; v > hot {
				hot = v
			}
		}
		res.Times = append(res.Times, t)
		res.HotspotC = append(res.HotspotC, hot)
		if hot >= 100 && math.IsInf(res.TimeTo100C, 1) {
			res.TimeTo100C = t
		}
	}
	res.FinalC = res.HotspotC[len(res.HotspotC)-1]
	return res, nil
}
