package thermal

import (
	"fmt"

	"voltstack/internal/circuit"
)

// Micro-channel (volumetric) cooling: the paper's introduction argues that
// once inter-layer micro-channel cooling removes the thermal ceiling,
// power delivery becomes the binding constraint of many-layer 3D-ICs.
// This model adds a coolant path to EVERY layer: each cell couples through
// a convection resistance into its layer's coolant, whose temperature
// rises downstream with the absorbed heat (caloric resistance).

// Microchannel describes an inter-layer liquid cooling configuration.
type Microchannel struct {
	// CellConvR is the convection resistance from a mesh cell into its
	// layer's coolant, normalized per unit area (K·m²/W).
	CellConvR float64
	// CaloricR is the lumped caloric resistance of one layer's coolant
	// loop (K/W): the mean coolant temperature rise per watt absorbed,
	// set by the volumetric flow rate (R = 1/(2·ρ·c·Q) for uniform heating).
	CaloricR float64
	// InletC is the coolant inlet temperature (°C).
	InletC float64
}

// DefaultMicrochannel returns a configuration representative of the
// integrated micro-channel work the paper cites: ~0.1 cm²K/W convective
// resistance and a per-layer flow good for ~0.1 K/W caloric rise.
func DefaultMicrochannel() Microchannel {
	return Microchannel{
		CellConvR: 0.1 * 1e-4, // 0.1 K·cm²/W
		CaloricR:  0.1,
		InletC:    30,
	}
}

// Validate checks the configuration.
func (m Microchannel) Validate() error {
	if m.CellConvR <= 0 || m.CaloricR <= 0 {
		return fmt.Errorf("thermal: invalid microchannel %+v", m)
	}
	return nil
}

// SolveMicrochannel computes the steady-state temperatures of a stack
// cooled volumetrically: the conduction network of Solve plus a coolant
// node per layer (caloric resistance to the inlet) reached from every
// cell through the convection resistance. The air-cooled top-side path of
// cfg remains in place (it helps a little).
func SolveMicrochannel(cfg Config, mc Microchannel, powerMaps [][]float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	nCells := cfg.Nx * cfg.Ny
	if len(powerMaps) != cfg.Layers {
		return nil, fmt.Errorf("thermal: need %d power maps, got %d", cfg.Layers, len(powerMaps))
	}
	for l, pm := range powerMaps {
		if len(pm) != nCells {
			return nil, fmt.Errorf("thermal: layer %d power map has %d cells, want %d", l, len(pm), nCells)
		}
	}

	cellW := cfg.Die.W / float64(cfg.Nx)
	cellH := cfg.Die.H / float64(cfg.Ny)
	cellArea := cellW * cellH

	gLatX := cfg.Mat.SiK * cfg.Mat.SiThick * cellH / cellW
	gLatY := cfg.Mat.SiK * cfg.Mat.SiThick * cellW / cellH
	rVert := cfg.Mat.SiThick/cfg.Mat.SiK + cfg.Mat.BondThick/cfg.Mat.BondK
	gVert := cellArea / rVert
	gTIM := cellArea / (cfg.Mat.TIMThick / cfg.Mat.TIMK)
	gConv := cellArea / mc.CellConvR

	net := circuit.New()
	net.Nodes(cfg.Layers * nCells)
	node := func(layer, cell int) int { return layer*nCells + cell }
	sink := net.Node()
	coolant := make([]int, cfg.Layers)
	for l := range coolant {
		coolant[l] = net.Node()
	}

	// The temperature reference (circuit ground) is the air ambient; the
	// coolant inlet sits at a (possibly different) offset, applied as a
	// rail behind the caloric resistance.
	inletOffset := mc.InletC - cfg.AmbientC

	for l := 0; l < cfg.Layers; l++ {
		for iy := 0; iy < cfg.Ny; iy++ {
			for ix := 0; ix < cfg.Nx; ix++ {
				c := iy*cfg.Nx + ix
				if ix+1 < cfg.Nx {
					net.AddResistor(node(l, c), node(l, c+1), 1/gLatX)
				}
				if iy+1 < cfg.Ny {
					net.AddResistor(node(l, c), node(l, c+cfg.Nx), 1/gLatY)
				}
				if l+1 < cfg.Layers {
					net.AddResistor(node(l, c), node(l+1, c), 1/gVert)
				}
				net.AddResistor(node(l, c), coolant[l], 1/gConv)
			}
		}
		net.AddRailTie(coolant[l], mc.CaloricR, inletOffset)
	}
	top := cfg.Layers - 1
	for c := 0; c < nCells; c++ {
		net.AddResistor(node(top, c), sink, 1/gTIM)
	}
	net.AddRailTie(sink, cfg.SinkR, 0)

	for l, pm := range powerMaps {
		for c, w := range pm {
			if w < 0 {
				return nil, fmt.Errorf("thermal: negative power")
			}
			if w > 0 {
				net.AddLoad(circuit.Ground, node(l, c), w)
			}
		}
	}

	sol, err := net.Solve(cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}
	res := &Result{
		TempsC: make([][]float64, cfg.Layers),
		MaxC:   -1e300,
		SinkC:  cfg.AmbientC + sol.V(sink),
	}
	for l := 0; l < cfg.Layers; l++ {
		ts := make([]float64, nCells)
		for c := 0; c < nCells; c++ {
			t := cfg.AmbientC + sol.V(node(l, c))
			ts[c] = t
			if t > res.MaxC {
				res.MaxC = t
				res.MaxLayer = l
			}
		}
		res.TempsC[l] = ts
	}
	return res, nil
}

// MaxLayersUnderMicrochannel is MaxLayersUnder with volumetric cooling.
func MaxLayersUnderMicrochannel(cfg Config, mc Microchannel, layerPower []float64, maxC float64, limit int) (int, error) {
	best := 0
	for n := 1; n <= limit; n++ {
		c := cfg
		c.Layers = n
		maps := make([][]float64, n)
		for i := range maps {
			maps[i] = layerPower
		}
		r, err := SolveMicrochannel(c, mc, maps)
		if err != nil {
			return 0, err
		}
		if r.MaxC < maxC {
			best = n
		} else {
			break
		}
	}
	return best, nil
}
