package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxRequestBody bounds the accepted size of a job-request body. Requests
// here are small parameter sets; anything near a megabyte is malformed or
// hostile.
const MaxRequestBody = 1 << 20

// DecodeJobRequest reads one JSON job request, normalizes it and
// validates it. Every failure mode — malformed JSON, unknown fields,
// trailing data, oversize bodies, out-of-range or non-finite parameters —
// comes back as an error suitable for a 400 body; the decoder never
// panics on hostile input (FuzzDecodeJobRequest holds it to that).
func DecodeJobRequest(r io.Reader) (*JobRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBody+1))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid job request: %s", decodeErrText(err))
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("invalid job request: trailing data after the JSON object")
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func decodeErrText(err error) string {
	if err == io.EOF {
		return "empty body"
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return "truncated JSON (body larger than the limit, or cut off)"
	}
	return err.Error()
}
