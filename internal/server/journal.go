package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The journal persists job state under <stateDir>/jobs:
//
//	<id>.json        job metadata (request, state, key, timestamps)
//	<id>.ckpt.jsonl  one line per completed sweep point (index + raw metrics)
//	<id>.result      the final result bytes of a done job
//	<id>.stats.json  the frozen final stats document of a terminal job
//
// Metadata and results are written with temp+rename so a crash never
// leaves a torn file; the checkpoint is append-only JSONL, and a torn
// final line (the crash window) is dropped on load — that point is simply
// re-evaluated. On restart, jobs whose persisted state is non-terminal
// are re-enqueued in their original submission order.

type persistedJob struct {
	ID        string     `json:"id"`
	Seq       int64      `json:"seq"` // submission order, preserved across resume
	Request   JobRequest `json:"request"`
	State     JobState   `json:"state"`
	Key       string     `json:"key"`
	Total     int        `json:"total"`
	Completed int        `json:"completed"`
	CacheHit  bool       `json:"cache_hit,omitempty"`
	Resumed   bool       `json:"resumed,omitempty"`
	// Cancelled records the user's cancel intent independently of State:
	// it is persisted before the runner's context is tripped, so a crash
	// inside the cancellation window cannot resurrect the job on restart.
	Cancelled  bool   `json:"cancelled,omitempty"`
	Error      string `json:"error,omitempty"`
	CreatedAt  string `json:"created_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Traceparent is the job's trace context in W3C wire form, so a
	// resumed job keeps its original trace ID across restarts.
	Traceparent string `json:"traceparent,omitempty"`
}

type journal struct {
	dir string // <stateDir>/jobs
}

func newJournal(stateDir string) (*journal, error) {
	dir := filepath.Join(stateDir, "jobs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %v", err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) metaPath(id string) string   { return filepath.Join(j.dir, id+".json") }
func (j *journal) ckptPath(id string) string   { return filepath.Join(j.dir, id+".ckpt.jsonl") }
func (j *journal) resultPath(id string) string { return filepath.Join(j.dir, id+".result") }
func (j *journal) statsPath(id string) string  { return filepath.Join(j.dir, id+".stats.json") }

// atomicWrite lands data at path via a temp file and rename, so readers
// (and the post-crash loader) never observe a partial write.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (j *journal) saveMeta(p persistedJob) error {
	b, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return atomicWrite(j.metaPath(p.ID), b)
}

// load returns every persisted job, sorted by submission order.
func (j *journal) load() ([]persistedJob, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var out []persistedJob
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".tmp-") ||
			strings.HasSuffix(name, ".stats.json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			return nil, err
		}
		var p persistedJob
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("server: journal %s: %v", name, err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

// openCheckpoint opens the append-only checkpoint stream of a job.
func (j *journal) openCheckpoint(id string) (*os.File, error) {
	return os.OpenFile(j.ckptPath(id), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}

// ckptLine is one completed sweep point: Designs() index plus the point's
// raw (pre-normalization) metrics in canonical JSON.
type ckptLine struct {
	I int             `json:"i"`
	M json.RawMessage `json:"m"`
}

// loadCheckpoint returns the checkpointed points of a job by design
// index. A torn trailing line (crash mid-append) is silently dropped.
func (j *journal) loadCheckpoint(id string) (map[int]json.RawMessage, error) {
	f, err := os.Open(j.ckptPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	out := map[int]json.RawMessage{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var line ckptLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			break // torn tail: drop it and everything after
		}
		out[line.I] = line.M
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func (j *journal) saveResult(id string, data []byte) error {
	return atomicWrite(j.resultPath(id), data)
}

func (j *journal) loadResult(id string) ([]byte, error) {
	return os.ReadFile(j.resultPath(id))
}

func (j *journal) saveStats(id string, data []byte) error {
	return atomicWrite(j.statsPath(id), data)
}

func (j *journal) loadStats(id string) ([]byte, error) {
	return os.ReadFile(j.statsPath(id))
}
