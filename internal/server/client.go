package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"voltstack/internal/telemetry"
)

// Client talks to a vsserved instance. The zero HTTP client and poll
// interval are usable defaults; only Base is required.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:8324".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Poll is the Wait polling interval; 0 selects 200ms.
	Poll time.Duration
	// Trace, when valid, is sent as a W3C traceparent header on every
	// request (each with a fresh span ID under the same trace), so the
	// server's spans join the client's trace end to end.
	Trace telemetry.TraceContext
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// APIError is a non-2xx response: the decoded error message plus the
// status code (and Retry-After for 429s).
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Trace.Valid() {
		req.Header.Set("traceparent", c.Trace.Child().Traceparent())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var eb errorBody
	if derr := json.NewDecoder(io.LimitReader(resp.Body, MaxRequestBody)).Decode(&eb); derr == nil && eb.Error != "" {
		apiErr.Message = eb.Error
	} else {
		apiErr.Message = resp.Status
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	return nil, apiErr
}

func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches the output bytes of a done job.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Stats fetches the raw per-job stats document (JSON bytes, served
// verbatim so a terminal job's stats are byte-identical on every read).
func (c *Client) Stats(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/stats", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Evaluate fetches GET /v1/designs:evaluate with the given query
// parameters and returns the design's canonical-JSON metrics.
func (c *Client) Evaluate(ctx context.Context, params url.Values) ([]byte, error) {
	path := "/v1/designs:evaluate"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Wait polls until the job reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a job, waits for it and returns its result bytes. A failed
// or cancelled job comes back as an error.
func (c *Client) Run(ctx context.Context, req JobRequest) ([]byte, JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, st, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		if st.State == StateFailed {
			return nil, st, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
		}
		return nil, st, fmt.Errorf("job %s %s", st.ID, st.State)
	}
	res, err := c.Result(ctx, st.ID)
	return res, st, err
}
