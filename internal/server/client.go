package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"voltstack/internal/telemetry"
)

// Client-side retry/hedge instrumentation. No-ops unless telemetry is
// enabled.
var (
	mClientRetries = telemetry.NewCounter("client_retries_total")
	mClientHedged  = telemetry.NewCounter("client_hedged_requests_total")
	mClientHedgeW  = telemetry.NewCounter("client_hedge_wins_total")
)

// Backoff is an exponential polling/retry schedule with jitter. The zero
// value selects the defaults: 100ms initial, 5s cap, ×2 growth, ±20%
// jitter.
type Backoff struct {
	// Initial is the first delay; 0 selects 100ms.
	Initial time.Duration
	// Max caps the grown delay; 0 selects 5s.
	Max time.Duration
	// Factor multiplies the delay after each attempt; values <= 1 select 2.
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter×delay. 0 selects
	// 0.2; negative disables jitter entirely (deterministic schedule).
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	return b
}

// next returns the delay after d on the schedule.
func (b Backoff) next(d time.Duration) time.Duration {
	if d = time.Duration(float64(d) * b.Factor); d > b.Max {
		d = b.Max
	}
	return d
}

// jittered spreads d over ±Jitter×d using rnd (a uniform [0,1) source).
func (b Backoff) jittered(d time.Duration, rnd func() float64) time.Duration {
	if b.Jitter <= 0 || rnd == nil {
		return d
	}
	return time.Duration(float64(d) * (1 + b.Jitter*(2*rnd()-1)))
}

// Client talks to a vsserved instance. The zero HTTP client and backoff
// are usable defaults; only Base is required.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:8324".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Poll is the legacy fixed Wait interval; when set it becomes the
	// backoff's initial delay (Backoff wins if both are set).
	Poll time.Duration
	// Backoff shapes Wait's polling and transient-error retries:
	// exponential with jitter, except that a server Retry-After hint (429
	// overload, 503 drain) overrides the computed delay for that attempt.
	Backoff Backoff
	// Hedge, when positive, races a second identical request against any
	// idempotent GET still unanswered after this long, taking whichever
	// response lands first — tail latency insurance when a fleet daemon
	// is slow or mid-restart. Non-GET requests are never hedged.
	Hedge time.Duration
	// Trace, when valid, is sent as a W3C traceparent header on every
	// request (each with a fresh span ID under the same trace), so the
	// server's spans join the client's trace end to end.
	Trace telemetry.TraceContext

	// Test seams: sleep (nil: timer-based, honoring ctx) and rnd (nil:
	// math/rand/v2) let tests pin the backoff schedule under a fake clock.
	sleep func(ctx context.Context, d time.Duration) error
	rnd   func() float64
}

func (c *Client) sleepFn() func(context.Context, time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

func (c *Client) rndFn() func() float64 {
	if c.rnd != nil {
		return c.rnd
	}
	return rand.Float64
}

// backoff returns the effective Wait schedule: Backoff with defaults
// applied, the legacy Poll standing in for an unset initial delay.
func (c *Client) backoff() Backoff {
	b := c.Backoff
	if b.Initial <= 0 && c.Poll > 0 {
		b.Initial = c.Poll
	}
	return b.withDefaults()
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// APIError is a non-2xx response: the decoded error message plus the
// status code (and Retry-After for 429s).
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// do issues a request, hedging idempotent GETs when Hedge is set.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	if method == http.MethodGet && c.Hedge > 0 {
		return c.doHedged(ctx, path)
	}
	return c.doOnce(ctx, method, path, body)
}

// doHedged races a second identical GET against the first if it has not
// answered within the hedge delay (or errored transiently), returning
// whichever definitive response arrives first. The straggler is reaped
// in the background; a definitive response from either attempt (success
// or an API error — both attempts would see the same one) wins
// immediately.
func (c *Client) doHedged(ctx context.Context, path string) (*http.Response, error) {
	type result struct {
		resp   *http.Response
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	issue := func(hedged bool) {
		go func() {
			resp, err := c.doOnce(ctx, http.MethodGet, path, nil)
			ch <- result{resp, err, hedged}
		}()
	}
	issue(false)
	inflight, hedgeSent := 1, false
	timer := time.NewTimer(c.Hedge)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			if !hedgeSent {
				hedgeSent = true
				inflight++
				mClientHedged.Add(1)
				issue(true)
			}
		case r := <-ch:
			inflight--
			var ae *APIError
			definitive := r.err == nil || errors.As(r.err, &ae)
			if definitive || inflight == 0 {
				if inflight > 0 {
					// Reap the straggler so its connection is reusable.
					go func() {
						if s := <-ch; s.resp != nil {
							io.Copy(io.Discard, s.resp.Body)
							s.resp.Body.Close()
						}
					}()
				}
				if r.err == nil && r.hedged {
					mClientHedgeW.Add(1)
				}
				return r.resp, r.err
			}
			// Transient failure with the hedge not yet out: send it now
			// rather than waiting for the timer.
			if !hedgeSent {
				hedgeSent = true
				inflight++
				mClientHedged.Add(1)
				issue(true)
			}
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Trace.Valid() {
		req.Header.Set("traceparent", c.Trace.Child().Traceparent())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var eb errorBody
	if derr := json.NewDecoder(io.LimitReader(resp.Body, MaxRequestBody)).Decode(&eb); derr == nil && eb.Error != "" {
		apiErr.Message = eb.Error
	} else {
		apiErr.Message = resp.Status
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	return nil, apiErr
}

func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches the output bytes of a done job.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Stats fetches the raw per-job stats document (JSON bytes, served
// verbatim so a terminal job's stats are byte-identical on every read).
func (c *Client) Stats(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/stats", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Evaluate fetches GET /v1/designs:evaluate with the given query
// parameters and returns the design's canonical-JSON metrics.
func (c *Client) Evaluate(ctx context.Context, params url.Values) ([]byte, error) {
	path := "/v1/designs:evaluate"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// retryableWait reports whether a Wait poll error is worth retrying:
// transport failures (the daemon may be mid-restart) and explicit
// back-off responses (429 overload, 503 drain). Definitive API errors —
// unknown job, bad request — fail immediately.
func retryableWait(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return true // transport-level: connection refused, reset, timeout
	}
	return ae.StatusCode == http.StatusTooManyRequests ||
		ae.StatusCode == http.StatusServiceUnavailable
}

// Wait polls until the job reaches a terminal state (or ctx expires).
// Polling follows the client's Backoff — exponential with jitter, so a
// long-running job is probed ever less often — and transient errors
// (transport failures, 429, 503) retry on the same schedule instead of
// failing the wait. A Retry-After hint from the server overrides the
// computed delay for that attempt.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	b := c.backoff()
	sleep, rnd := c.sleepFn(), c.rndFn()
	delay := b.Initial
	var last JobStatus
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil:
			last = st
			if st.State.Terminal() {
				return st, nil
			}
		case !retryableWait(err):
			return last, err
		default:
			if ctx.Err() != nil {
				return last, ctx.Err()
			}
			mClientRetries.Add(1)
		}
		d := b.jittered(delay, rnd)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			d = ae.RetryAfter // the server knows better than the schedule
		}
		if serr := sleep(ctx, d); serr != nil {
			return last, serr
		}
		delay = b.next(delay)
	}
}

// Get fetches an arbitrary API path (hedged like any idempotent GET)
// and returns the raw response body — the escape hatch for endpoints
// without a typed helper, e.g. the fleet status document.
func (c *Client) Get(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Run submits a job, waits for it and returns its result bytes. A failed
// or cancelled job comes back as an error.
func (c *Client) Run(ctx context.Context, req JobRequest) ([]byte, JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, st, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		if st.State == StateFailed {
			return nil, st, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
		}
		return nil, st, fmt.Errorf("job %s %s", st.ID, st.State)
	}
	res, err := c.Result(ctx, st.ID)
	return res, st, err
}
