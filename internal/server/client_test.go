package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWaitClient wires a Client to srv with an instrumented clock: sleeps
// are recorded instead of elapsing and the jitter source is pinned, so the
// backoff schedule is exact and the test runs in microseconds.
func fakeWaitClient(srv *httptest.Server, b Backoff, slept *[]time.Duration) *Client {
	return &Client{
		Base:    srv.URL,
		Backoff: b,
		sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
		rnd: func() float64 { return 0.5 }, // 1 + J*(2*0.5-1) = 1: jitter-neutral
	}
}

func statusHandler(t *testing.T, reply func(poll int) (int, JobStatus, http.Header)) http.Handler {
	t.Helper()
	var polls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code, st, hdr := reply(int(polls.Add(1)))
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(code)
		if code == http.StatusOK {
			json.NewEncoder(w).Encode(st)
		} else {
			json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
		}
	})
}

// TestWaitBackoffSchedule pins the exponential polling schedule: each
// delay doubles from Initial and saturates at Max.
func TestWaitBackoffSchedule(t *testing.T) {
	srv := httptest.NewServer(statusHandler(t, func(poll int) (int, JobStatus, http.Header) {
		if poll < 7 {
			return http.StatusOK, JobStatus{ID: "j1", State: StateRunning}, nil
		}
		return http.StatusOK, JobStatus{ID: "j1", State: StateDone}, nil
	}))
	defer srv.Close()

	var slept []time.Duration
	c := fakeWaitClient(srv, Backoff{Initial: 100 * time.Millisecond, Max: time.Second}, &slept)
	st, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestWaitRetryAfterOverride pins that a 429's Retry-After hint replaces
// the computed delay for that attempt, and that the poll retries rather
// than failing.
func TestWaitRetryAfterOverride(t *testing.T) {
	srv := httptest.NewServer(statusHandler(t, func(poll int) (int, JobStatus, http.Header) {
		if poll == 1 {
			return http.StatusTooManyRequests, JobStatus{}, http.Header{"Retry-After": {"7"}}
		}
		return http.StatusOK, JobStatus{ID: "j1", State: StateDone}, nil
	}))
	defer srv.Close()

	var slept []time.Duration
	c := fakeWaitClient(srv, Backoff{Initial: 100 * time.Millisecond}, &slept)
	if _, err := c.Wait(context.Background(), "j1"); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept = %v, want exactly [7s] from Retry-After", slept)
	}
}

// TestWaitDefinitiveErrorFailsFast pins that a non-retryable API error
// (unknown job) fails the wait immediately instead of polling forever.
func TestWaitDefinitiveErrorFailsFast(t *testing.T) {
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := fakeWaitClient(srv, Backoff{}, &slept)
	_, err := c.Wait(context.Background(), "nope")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if n := polls.Load(); n != 1 {
		t.Fatalf("polled %d times, want 1", n)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v, want no sleeps", slept)
	}
}

// TestBackoffJitterBounds pins the jitter envelope: ±Jitter×delay, and
// negative Jitter disables it.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Jitter: 0.2}.withDefaults()
	d := time.Second
	if got := b.jittered(d, func() float64 { return 0 }); got != 800*time.Millisecond {
		t.Errorf("rnd=0: %v, want 800ms", got)
	}
	if got := b.jittered(d, func() float64 { return 0.999 }); got <= d || got > 1200*time.Millisecond {
		t.Errorf("rnd→1: %v, want in (1s, 1.2s]", got)
	}
	off := Backoff{Jitter: -1}.withDefaults()
	if got := off.jittered(d, func() float64 { return 0 }); got != d {
		t.Errorf("jitter disabled: %v, want %v", got, d)
	}
}

// TestHedgedGetWins pins the hedge path: when the first GET stalls past
// the hedge delay, the racing second request's response is returned —
// well before the stalled one would have answered.
func TestHedgedGetWins(t *testing.T) {
	var reqs atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			<-release // first attempt stalls until the test ends
		}
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateDone})
	}))
	defer srv.Close()
	defer close(release)

	c := &Client{Base: srv.URL, Hedge: 10 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		st, err := c.Status(context.Background(), "j1")
		if err == nil && st.State != StateDone {
			err = errors.New("unexpected state " + string(st.State))
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hedged Status: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hedged GET never returned; hedge did not fire")
	}
	if n := reqs.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + hedge)", n)
	}
}

// TestHedgedGetDefinitiveError pins that a definitive API error from
// either attempt wins immediately — hedging must not mask real errors
// behind the straggler.
func TestHedgedGetDefinitiveError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Hedge: 50 * time.Millisecond}
	_, err := c.Status(context.Background(), "nope")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
}
