package server

import (
	"context"
	"errors"

	"voltstack/internal/explore"
	"voltstack/internal/telemetry"
)

// The dispatcher seam lets a fleet coordinator shard jobs across worker
// daemons without the job engine knowing anything about HTTP, heartbeats
// or work-stealing. The Manager keeps full ownership of job lifecycle,
// journaling and caching; a Dispatcher only evaluates points (or whole
// jobs) somewhere else and hands the bytes back.
//
// The contract that makes sharding invisible: a dispatched point's
// metrics must be the canonical JSON that the local evaluation path
// (EvaluateDesign / Space.EvaluateContext) would have produced for the
// same RemotePoint.Key. Delivered points enter the same per-point cache
// and checkpoint stream as locally computed ones, and the final merge
// replays them through explore's Precomputed machinery — so the merged
// result is byte-identical to a standalone run, whoever computed what.

// ErrNoWorkers reports that a Dispatcher currently has nobody to
// dispatch to. The Manager treats it as "compute locally instead" — the
// job does not fail, points already delivered stay delivered, and the
// leftover points run on the local evaluation path.
var ErrNoWorkers = errors.New("server: no live workers to dispatch to")

// RemotePoint identifies one sweep point to evaluate remotely: the
// design's index in Space.Designs() order plus its content-address (the
// pdngrid.CacheFingerprint-derived per-point cache key). The key pins
// the work unit's identity end to end: the worker verifies it against
// its own build before computing, and the result lands in every cache
// tier under the same address.
type RemotePoint struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
}

// DispatchJob carries the job identity a Dispatcher needs for telemetry:
// the job ID and its trace context (so the coordinator's fan-out spans
// join the submitter's trace).
type DispatchJob struct {
	ID    string
	Trace telemetry.TraceContext
}

// Dispatcher evaluates work somewhere other than this process. Both
// methods may return ErrNoWorkers to make the Manager fall back to local
// computation.
type Dispatcher interface {
	// EvaluatePoints evaluates the given sweep points of req (normalized)
	// and calls deliver once per finished point with its canonical-JSON
	// metrics. deliver may be called concurrently. A non-nil error means
	// some points were not delivered; the Manager computes the leftovers
	// locally (points delivered before the error still count).
	EvaluatePoints(ctx context.Context, job DispatchJob, req JobRequest, points []RemotePoint, deliver func(p RemotePoint, metrics []byte)) error

	// ForwardJob runs a whole non-shardable job (experiment, em-mc) on
	// one worker and returns its result bytes.
	ForwardJob(ctx context.Context, job DispatchJob, req JobRequest) ([]byte, error)
}

// SweepSpace maps a sweep request onto its explore.Space exactly as the
// job engine does, normalizing first. Fleet workers use it to rebuild
// the coordinator's design enumeration; identical normalized requests
// produce identical Designs() orderings on every daemon.
func SweepSpace(req JobRequest) explore.Space {
	// Normalize writes through the Sweep pointer and into its slices;
	// deep-copy so the caller's request is left untouched.
	if req.Sweep != nil {
		s := *req.Sweep
		s.PadFractions = append([]float64(nil), s.PadFractions...)
		s.ConverterCount = append([]int(nil), s.ConverterCount...)
		s.TSVs = append([]string(nil), s.TSVs...)
		req.Sweep = &s
	}
	req.Experiments = append([]string(nil), req.Experiments...)
	req.Normalize()
	return buildSpace(req)
}

// SweepPointKey is the content address of one design point — the same
// key computeSweep and EvaluateDesign use, exported so fleet daemons can
// verify a dispatched unit's identity against their own build before
// computing it.
func SweepPointKey(sp explore.Space, d explore.Design) (string, error) {
	return pointKey(sp, d)
}
