package server

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"voltstack/internal/rescache"
	"voltstack/internal/telemetry"
)

// copySnapshot copies a journal directory tree as it exists right now —
// the moral equivalent of the disk state left behind by a crash at that
// instant.
func copySnapshot(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestJournalCancelCrashRecovery pins crash recovery under concurrent
// cancellation: the daemon dies right after a DELETE was acknowledged but
// before the running job noticed its tripped context. On restart the job
// must adopt as cancelled — it must neither resume (no fresh solver work)
// nor report a second terminal state.
func TestJournalCancelCrashRecovery(t *testing.T) {
	telemetry.Enable()
	stateDir := t.TempDir()
	started := make(chan struct{})
	release := make(chan struct{})
	cache1, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr1, err := NewManager(Config{
		Cache:    cache1,
		StateDir: stateDir,
		// The job ignores its context: it stands in for a solve that has
		// not reached a cancellation point yet when the crash hits.
		testJobStart: func(ctx context.Context, j *Job) {
			close(started)
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr1.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The DELETE: Cancel persists the intent to the journal before
	// tripping the job's context, so the crash window below is covered.
	if _, ok := mgr1.Cancel(j.ID()); !ok {
		t.Fatal("cancel of a running job refused")
	}

	// Crash now — snapshot the journal exactly as it is mid-cancellation,
	// with the job still nominally running.
	snap := t.TempDir()
	copySnapshot(t, stateDir, snap)

	// Restart on the snapshot with an empty cache. The adopted job must be
	// terminal-cancelled immediately: not queued, not resumed, no work.
	evals0 := cEvalPoints.Value()
	cache2, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := NewManager(Config{Cache: cache2, StateDir: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	j2, ok := mgr2.Get(j.ID())
	if !ok {
		t.Fatal("cancelled job missing after restart")
	}
	select {
	case <-j2.Done():
	default:
		t.Fatal("adopted cancelled job is not terminal")
	}
	st := j2.Status()
	if st.State != StateCancelled {
		t.Fatalf("adopted state = %s, want cancelled", st.State)
	}
	if st.Resumed {
		t.Error("cancelled job was resumed")
	}
	if _, err := mgr2.Result(j2); err == nil {
		t.Error("cancelled job served a result")
	}
	if fresh := cEvalPoints.Value() - evals0; fresh != 0 {
		t.Errorf("restart evaluated %d points of a cancelled job, want 0", fresh)
	}

	// A second restart of the same journal must not flip the story: the
	// terminal state reported once stays the state reported always.
	mgr2.Close()
	mgr3, err := NewManager(Config{Cache: cache2, StateDir: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	j3, ok := mgr3.Get(j.ID())
	if !ok {
		t.Fatal("cancelled job missing after second restart")
	}
	if st := j3.Status(); st.State != StateCancelled {
		t.Errorf("second restart state = %s, want cancelled", st.State)
	}

	// Let the first manager's stuck job go so Close can join it.
	close(release)
	mgr1.Close()
}
