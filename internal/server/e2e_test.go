package server

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"voltstack/internal/core"
	"voltstack/internal/rescache"
	"voltstack/internal/telemetry"
)

// Solver-work counters used to prove that cached replays do zero new
// model evaluations. NewCounter returns the process-registry instrument
// the solvers themselves increment.
var (
	cSolves     = telemetry.NewCounter("pdngrid_solves_total")
	cPCGIters   = telemetry.NewCounter("sparse_pcg_iterations_total")
	cEvalPoints = telemetry.NewCounter("explore_points_total")
)

// Acceptance (a)+(b): a job submitted over loopback renders exactly the
// bytes the CLI pipeline produces, and an identical resubmission is
// served from the result cache with zero new solver work.
func TestE2EExperimentParityAndCacheHit(t *testing.T) {
	telemetry.Enable()
	cache, err := rescache.New(rescache.Config{Dir: filepath.Join(t.TempDir(), "cache")})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(Config{Cache: cache, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := Start("127.0.0.1:0", mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Base: srv.URL(), Poll: 20 * time.Millisecond}
	ctx := context.Background()

	req := JobRequest{Kind: KindExperiment, Experiments: []string{"fig5a"}, CSV: true, Coarse: true}
	res, st, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.CacheHit {
		t.Error("first submission reported a cache hit")
	}

	// The CLI pipeline: same study construction as vsexplore with
	// -exp fig5a -csv -coarse (defaults: seed 1, workers GOMAXPROCS).
	s := core.NewStudy().Coarse()
	want, err := core.RunExperiment(s, "fig5a", true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, []byte(want)) {
		t.Fatalf("served fig5a CSV differs from the CLI rendering:\n got %q\nwant %q", res, want)
	}

	// Text mode concatenates each rendering plus a blank line, exactly
	// like vsexplore's print loop.
	res2, _, err := c.Run(ctx, JobRequest{Kind: KindExperiment, Experiments: []string{"table1", "table2"}})
	if err != nil {
		t.Fatalf("text job: %v", err)
	}
	t1, _ := core.RunExperiment(s, "table1", false)
	t2, _ := core.RunExperiment(s, "table2", false)
	if want := t1 + "\n" + t2 + "\n"; string(res2) != want {
		t.Errorf("text concatenation differs from the CLI print loop:\n got %q\nwant %q", res2, want)
	}

	// Resubmission: byte-identical result, cache-hit flag, and — the
	// point of content addressing — zero new solver iterations.
	solves0, iters0 := cSolves.Value(), cPCGIters.Value()
	resAgain, stAgain, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !stAgain.CacheHit {
		t.Error("identical resubmission not served from the cache")
	}
	if !bytes.Equal(resAgain, res) {
		t.Error("cached replay is not byte-identical")
	}
	if ds, di := cSolves.Value()-solves0, cPCGIters.Value()-iters0; ds != 0 || di != 0 {
		t.Errorf("cached replay did solver work: %d PDN solves, %d PCG iterations", ds, di)
	}
}

// Acceptance (c): kill the daemon mid-sweep, restart it on the same
// state dir with an empty cache, and the job resumes from its checkpoint
// — evaluating only the missing points — with output identical to an
// uninterrupted run.
func TestE2ESweepResumeAfterKill(t *testing.T) {
	telemetry.Enable()
	stateDir := t.TempDir()
	req := sweepRequest() // 3 designs, workers=1 → strict index order

	killReady := make(chan struct{})
	release := make(chan struct{})
	var points atomic.Int64
	cache1, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr1, err := NewManager(Config{
		Cache:    cache1,
		StateDir: stateDir,
		testOnPoint: func(_ string, _ int) {
			if points.Add(1) == 2 {
				close(killReady) // two points checkpointed; hold the worker
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := Start("127.0.0.1:0", mgr1)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Client{Base: srv1.URL(), Poll: 20 * time.Millisecond}
	st, err := c1.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	<-killReady
	// Simulate the kill: cancel the manager's base context first so the
	// serial evaluation loop stops before dispatching point 3, then let
	// the held worker go and join everything.
	mgr1.cancel()
	close(release)
	srv1.Close()

	// Restart on the same journal with a fresh, empty cache: the only
	// replay source is the checkpoint. Exactly one point (the third) may
	// be evaluated fresh.
	cache2, err := rescache.New(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	evals0 := cEvalPoints.Value()
	mgr2, err := NewManager(Config{Cache: cache2, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	srv2, err := Start("127.0.0.1:0", mgr2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2 := &Client{Base: srv2.URL(), Poll: 20 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	stDone, err := c2.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait for resumed job: %v", err)
	}
	if stDone.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", stDone.State, stDone.Error)
	}
	if !stDone.Resumed {
		t.Error("resumed job not flagged as resumed")
	}
	if stDone.Completed != 3 || stDone.Total != 3 {
		t.Errorf("resumed progress %d/%d, want 3/3", stDone.Completed, stDone.Total)
	}
	if fresh := cEvalPoints.Value() - evals0; fresh != 1 {
		t.Errorf("resume evaluated %d points fresh, want 1 (checkpoint replay for the rest)", fresh)
	}

	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// An uninterrupted run of the identical space must produce the same
	// bytes.
	norm := req
	norm.Normalize()
	sp := buildSpace(norm)
	direct, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := rescache.CanonicalJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed sweep result differs from an uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// A second manager sharing only the disk cache (not the journal) replays
// every point from the content-addressed cache: same bytes, no PDN
// solves.
func TestE2ESweepPointCacheSharedAcrossDaemons(t *testing.T) {
	telemetry.Enable()
	cacheDir := filepath.Join(t.TempDir(), "cache")
	req := sweepRequest()

	cache1, err := rescache.New(rescache.Config{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	mgr1, err := NewManager(Config{Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := mgr1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	res1, err := mgr1.Result(j1)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	mgr1.Close()

	// New daemon, same cache dir, and a different seed: the seed changes
	// the job-level key (it matters for Monte Carlo jobs) but no sweep
	// point depends on it, so this forces the per-point replay path
	// rather than a whole-job hit.
	cache2, err := rescache.New(rescache.Config{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := NewManager(Config{Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	solves0 := cSolves.Value()
	req2 := req
	req2.Seed = 5
	j2, err := mgr2.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	res2, err := mgr2.Result(j2)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if !bytes.Equal(res1, res2) {
		t.Error("sweep results differ across daemons sharing the point cache")
	}
	if ds := cSolves.Value() - solves0; ds != 0 {
		t.Errorf("second daemon did %d PDN solves, want 0 (all points cached on disk)", ds)
	}
}
